// Package des provides the discrete-event simulation core shared by the
// stochastic-activity-network simulator and the specialized component
// simulators: a future-event list implemented as a binary heap, a simulation
// clock, and cancellable event handles.
//
// Time is a float64 in hours, consistent with the rest of the repository.
package des

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// Handler is the callback invoked when an event fires. The engine passes the
// event's scheduled time (which equals the current clock).
type Handler func(now float64)

// Event is a scheduled occurrence. Events are ordered by time, then by
// priority (higher first), then by insertion sequence for determinism.
type Event struct {
	time     float64
	priority int
	seq      uint64
	index    int // heap index, -1 once removed
	handler  Handler
	canceled bool
}

// Time returns the time at which the event is scheduled to fire.
func (e *Event) Time() float64 { return e.time }

// Sequence returns the engine-assigned insertion sequence, the tiebreaker
// among events scheduled at the same time. Checkpointing code records it so
// a restored run re-schedules tied events in their original relative order.
func (e *Event) Sequence() uint64 { return e.seq }

// Canceled reports whether the event has been canceled.
func (e *Event) Canceled() bool { return e.canceled }

// eventHeap implements heap.Interface over events.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x interface{}) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event engine. It is not safe for
// concurrent use; run one Engine per replication (optionally in parallel
// goroutines, each with its own Engine).
type Engine struct {
	now     float64
	queue   eventHeap
	seq     uint64
	stopped bool
	events  uint64 // fired events, for diagnostics

	// slab batches Event allocations. Simulations that reschedule heavily
	// (marking-dependent delays resampled on every rate change) create many
	// short-lived events; carving them out of chunks instead of one
	// allocation each keeps the scheduling hot path off the allocator.
	// Events are never reused, so handles stay valid after firing or
	// cancellation exactly as before.
	slab []Event
}

// newEvent carves one event out of the current slab.
func (e *Engine) newEvent() *Event {
	if len(e.slab) == 0 {
		e.slab = make([]Event, 256)
	}
	ev := &e.slab[0]
	e.slab = e.slab[1:]
	return ev
}

// Common scheduling errors.
var (
	ErrPastEvent  = errors.New("des: cannot schedule an event in the past")
	ErrNilHandler = errors.New("des: nil event handler")
)

// NewEngine returns an engine with the clock at 0.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time in hours.
func (e *Engine) Now() float64 { return e.now }

// Pending returns the number of scheduled (non-canceled) events. Cancel
// removes events from the heap immediately, so the queue length is exact —
// no canceled residents to filter out.
func (e *Engine) Pending() int { return len(e.queue) }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.events }

// Schedule registers handler to run at absolute time t with priority 0.
func (e *Engine) Schedule(t float64, handler Handler) (*Event, error) {
	return e.ScheduleWithPriority(t, 0, handler)
}

// ScheduleAfter registers handler to run delay hours from now.
func (e *Engine) ScheduleAfter(delay float64, handler Handler) (*Event, error) {
	return e.Schedule(e.now+delay, handler)
}

// ScheduleWithPriority registers handler at absolute time t. Among events at
// the same time, higher priority fires first; this is how instantaneous
// activities preempt timed ones in the SAN simulator.
func (e *Engine) ScheduleWithPriority(t float64, priority int, handler Handler) (*Event, error) {
	if handler == nil {
		return nil, ErrNilHandler
	}
	if math.IsNaN(t) {
		return nil, fmt.Errorf("des: NaN event time")
	}
	if t < e.now {
		return nil, fmt.Errorf("%w: t=%v now=%v", ErrPastEvent, t, e.now)
	}
	ev := e.newEvent()
	*ev = Event{time: t, priority: priority, seq: e.seq, handler: handler}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev, nil
}

// Cancel marks the event so it will not fire. Canceling an already-fired or
// already-canceled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled {
		return
	}
	ev.canceled = true
	if ev.index >= 0 {
		heap.Remove(&e.queue, ev.index)
		ev.index = -1
	}
}

// Stop halts Run after the currently executing event handler returns.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the next pending event, if any, advancing the clock to its
// time. It reports whether an event was executed.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.time
		e.events++
		ev.handler(e.now)
		return true
	}
	return false
}

// Run executes events in time order until the clock would exceed horizon, the
// event list empties, or Stop is called. The clock is left at
// min(horizon, last event time); if events remain beyond the horizon they are
// not executed. Run returns the number of events executed.
func (e *Engine) Run(horizon float64) uint64 {
	if math.IsNaN(horizon) || horizon < e.now {
		return 0
	}
	e.stopped = false
	executed := uint64(0)
	for !e.stopped {
		// Peek for horizon check.
		var next *Event
		for len(e.queue) > 0 {
			if e.queue[0].canceled {
				heap.Pop(&e.queue)
				continue
			}
			next = e.queue[0]
			break
		}
		if next == nil || next.time > horizon {
			break
		}
		heap.Pop(&e.queue)
		e.now = next.time
		e.events++
		executed++
		next.handler(e.now)
	}
	if e.now < horizon {
		e.now = horizon
	}
	return executed
}

// ResumeAt prepares the engine to continue a checkpointed run: the pending
// queue is cleared, the clock is set to t, and the fired-event counter to
// fired. It is the restore counterpart of the SAN simulator's snapshot
// support; the caller re-schedules the pending events afterwards at their
// recorded absolute times.
func (e *Engine) ResumeAt(t float64, fired uint64) error {
	if math.IsNaN(t) || t < 0 {
		return fmt.Errorf("des: invalid resume time %v", t)
	}
	e.Reset()
	e.now = t
	e.events = fired
	return nil
}

// Reset clears all pending events and returns the clock to 0 so the engine
// can be reused for another replication.
func (e *Engine) Reset() {
	e.queue = e.queue[:0]
	e.now = 0
	e.seq = 0
	e.stopped = false
	e.events = 0
}
