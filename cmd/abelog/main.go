// Command abelog generates the calibrated synthetic ABE failure logs and
// runs the paper's log-analysis pipeline over them (Tables 1-4), or analyzes
// an existing log file in the same format. With -calibrate it runs the full
// internal/calibrate pipeline and prints every derived model parameter with
// its value, source table, and derivation (the provenance record behind
// abesim -experiment paper_full); add -json for the machine-readable
// calibration report.
//
// Usage:
//
//	abelog -table 1                  # generate synthetic logs, print Table 1
//	abelog -table 4 -disks 480
//	abelog -calibrate [-json]        # derived model parameters with provenance
//	abelog -write-san san.log -write-compute compute.log
//	abelog -analyze san.log          # analyze an existing log file
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/calibrate"
	"repro/internal/experiments"
	"repro/internal/loganalysis"
	"repro/internal/loggen"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("abelog: ")

	var (
		table        = flag.Int("table", 0, "table to reproduce (1-4); 0 prints summary rates")
		seed         = flag.Uint64("seed", 0, "log generation seed (0 = calibrated default)")
		disks        = flag.Int("disks", 480, "disk population for the survival analysis")
		calibrateOut = flag.Bool("calibrate", false, "run the full calibration pipeline and print derived parameters with provenance")
		jsonOut      = flag.Bool("json", false, "with -calibrate: emit the machine-readable calibration report")
		writeSAN     = flag.String("write-san", "", "write the synthetic SAN log to this file")
		writeCompute = flag.String("write-compute", "", "write the synthetic compute log to this file")
		analyze      = flag.String("analyze", "", "analyze an existing log file instead of generating one")
	)
	flag.Parse()

	// Reject contradictory flag combinations instead of silently picking one
	// mode: -analyze works on a single log file (calibration needs the
	// SAN/compute pair), -calibrate replaces the table output, and -json only
	// shapes the calibration report.
	if *analyze != "" && (*calibrateOut || *table != 0) {
		log.Fatal("-analyze works on a single log file and cannot be combined with -calibrate or -table")
	}
	if *calibrateOut && *table != 0 {
		log.Fatal("-calibrate and -table are mutually exclusive")
	}
	if *jsonOut && !*calibrateOut {
		log.Fatal("-json is only supported with -calibrate")
	}

	if *analyze != "" {
		analyzeFile(*analyze, *disks)
		return
	}

	cfg := loggen.ABEConfig()
	if *seed != 0 {
		cfg.Seed = *seed
	}
	logs, err := loggen.Generate(cfg)
	if err != nil {
		log.Fatalf("generating logs: %v", err)
	}
	if *writeSAN != "" {
		writeLog(*writeSAN, logs.SAN)
	}
	if *writeCompute != "" {
		writeLog(*writeCompute, logs.Compute)
	}

	if *calibrateOut {
		cal, err := calibrate.Calibrate(logs, *disks)
		if err != nil {
			log.Fatalf("calibrating: %v", err)
		}
		if *jsonOut {
			doc, err := report.ToJSON(cal.Report())
			if err != nil {
				log.Fatalf("encoding calibration report: %v", err)
			}
			fmt.Print(doc)
			return
		}
		fmt.Println(cal.Table().Render())
		fmt.Printf("calibrated configuration: %s (validated)\n", cal.Config.Name)
		return
	}

	if *table >= 1 && *table <= 4 {
		out, err := experiments.Run(fmt.Sprintf("table%d", *table), experiments.Options{Seed: cfg.Seed})
		if err != nil {
			log.Fatalf("table %d: %v", *table, err)
		}
		fmt.Println(out)
		return
	}

	rates, err := loganalysis.DeriveRates(logs, *disks)
	if err != nil {
		log.Fatalf("deriving rates: %v", err)
	}
	fmt.Printf("CFS availability (from SAN log):       %.4f\n", rates.CFSAvailability)
	fmt.Printf("Outages per month:                     %.2f (mean %.1f h)\n", rates.OutagesPerMonth, rates.MeanOutageHours)
	fmt.Printf("Jobs per hour:                         %.2f\n", rates.JobsPerHour)
	fmt.Printf("Transient job failure fraction:        %.4f\n", rates.TransientJobFailureFraction)
	fmt.Printf("Other job failure fraction:            %.4f\n", rates.OtherJobFailureFraction)
	fmt.Printf("Disk Weibull shape (MLE):              %.4f\n", rates.DiskWeibullShape)
	fmt.Printf("Disk MTBF implied by fit (hours):      %.0f\n", rates.DiskMTBFHours)
	fmt.Printf("Disk replacements per week:            %.2f\n", rates.DiskReplacementsPerWeek)
}

func analyzeFile(path string, disks int) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatalf("opening %s: %v", path, err)
	}
	defer f.Close()
	events, err := loganalysis.Parse(f)
	if err != nil {
		log.Fatalf("parsing %s: %v", path, err)
	}
	if rep, err := loganalysis.AnalyzeOutages(events); err == nil {
		fmt.Printf("outages: %d, downtime %.1f h, availability %.4f\n", len(rep.Outages), rep.DowntimeHours, rep.Availability)
	}
	if rep, err := loganalysis.AnalyzeDisks(events, disks); err == nil {
		fmt.Printf("disk failures: %d (%.2f/week), weibull shape %.4f\n", rep.TotalFailures, rep.PerWeek, rep.Fit.Shape)
	}
	if stats, err := loganalysis.AnalyzeJobs(events); err == nil {
		fmt.Printf("jobs: %d submitted, %d transient failures, %d other failures\n", stats.TotalJobs, stats.TransientFailures, stats.OtherFailures)
	}
}

func writeLog(path string, events []loggen.Event) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatalf("creating %s: %v", path, err)
	}
	defer f.Close()
	if err := loggen.Write(f, events); err != nil {
		log.Fatalf("writing %s: %v", path, err)
	}
	log.Printf("wrote %d events to %s", len(events), path)
}
