package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/rng"
	"repro/internal/san"
)

func mustUniform(t testing.TB, lo, hi float64) dist.Uniform {
	t.Helper()
	u, err := dist.NewUniform(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func mustDet(t testing.TB, v float64) dist.Deterministic {
	t.Helper()
	d, err := dist.NewDeterministic(v)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRepairableConfigValidate(t *testing.T) {
	good := RepairableConfig{MTBFHours: 100, Repair: mustDet(t, 1)}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if err := (RepairableConfig{MTBFHours: 0, Repair: mustDet(t, 1)}).Validate(); err == nil {
		t.Error("zero MTBF accepted")
	}
	if err := (RepairableConfig{MTBFHours: 10}).Validate(); err == nil {
		t.Error("nil repair accepted")
	}
}

func TestBuildRepairableAvailability(t *testing.T) {
	m := san.NewModel("repairable")
	downCounter := m.AddPlace("down_counter", 0)
	cfg := RepairableConfig{MTBFHours: 100, Repair: mustDet(t, 10)}
	if err := BuildRepairable(m, "comp", cfg, downCounter); err != nil {
		t.Fatal(err)
	}
	if err := BuildRepairable(m, "comp2", cfg, nil); err == nil {
		t.Error("nil counter accepted")
	}
	if err := BuildRepairable(m, "comp3", RepairableConfig{}, downCounter); err == nil {
		t.Error("invalid config accepted")
	}
	rewards := []san.RewardVariable{
		san.UpFraction("avail", func(mr san.MarkingReader) bool { return mr.Tokens(downCounter) == 0 }),
	}
	res, err := san.RunReplications(m, rewards, san.Options{Mission: 20000, Replications: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := 100.0 / 110.0
	if math.Abs(res.Mean("avail")-want) > 0.01 {
		t.Errorf("availability = %v, want ~%v", res.Mean("avail"), want)
	}
}

func TestPairConfigValidate(t *testing.T) {
	good := PairConfig{
		HWMTBFHours: 1440, HWRepair: mustUniform(t, 12, 36),
		SWMTBFHours: 1440, SWRepair: mustUniform(t, 2, 6),
		PropagationProb: 0.015,
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := good
	bad.PropagationProb = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("propagation > 1 accepted")
	}
	bad = good
	bad.HWMTBFHours = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero hw MTBF accepted")
	}
	bad = good
	bad.Spare = true
	if err := bad.Validate(); err == nil {
		t.Error("spare without activation time accepted")
	}
	bad.SpareActivationHours = 8
	if err := bad.Validate(); err != nil {
		t.Errorf("valid spare config rejected: %v", err)
	}
}

func TestFailoverPairMasksSingleFailures(t *testing.T) {
	// With no correlation and fast repairs relative to failures, single
	// member failures are masked and the pair is essentially always up.
	m := san.NewModel("pair")
	pairsOut := m.AddPlace("pairs_out", 0)
	cfg := PairConfig{
		HWMTBFHours: 2000, HWRepair: mustDet(t, 4),
		SWMTBFHours: 2000, SWRepair: mustDet(t, 1),
		PropagationProb: 0,
	}
	if _, err := BuildFailoverPair(m, "oss", cfg, pairsOut); err != nil {
		t.Fatal(err)
	}
	rewards := []san.RewardVariable{
		san.UpFraction("pair_avail", func(mr san.MarkingReader) bool { return mr.Tokens(pairsOut) == 0 }),
	}
	res, err := san.RunReplications(m, rewards, san.Options{Mission: 8760, Replications: 30, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Mean("pair_avail"); got < 0.9999 {
		t.Errorf("pair availability = %v, want ~1 when single faults are masked", got)
	}
}

func TestFailoverPairCorrelatedFailuresCauseOutage(t *testing.T) {
	// With propagation probability 1, every failure takes both members down,
	// so outages must be visible. The availability should be close to the
	// two-state value MTBF/(MTBF+MTTR) for the hw+sw superposition.
	m := san.NewModel("pair-corr")
	pairsOut := m.AddPlace("pairs_out", 0)
	cfg := PairConfig{
		HWMTBFHours: 500, HWRepair: mustDet(t, 24),
		SWMTBFHours: 500, SWRepair: mustDet(t, 24),
		PropagationProb: 1,
	}
	if _, err := BuildFailoverPair(m, "oss", cfg, pairsOut); err != nil {
		t.Fatal(err)
	}
	rewards := []san.RewardVariable{
		san.UpFraction("pair_avail", func(mr san.MarkingReader) bool { return mr.Tokens(pairsOut) == 0 }),
	}
	res, err := san.RunReplications(m, rewards, san.Options{Mission: 8760, Replications: 40, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Mean("pair_avail")
	if got > 0.95 || got < 0.75 {
		t.Errorf("pair availability with full correlation = %v, want noticeable outages (0.75-0.95)", got)
	}
}

func TestFailoverPairDoubleFaultAccounting(t *testing.T) {
	// Deterministic failure injection: both servers fail at the same instant
	// (deterministic lifetimes), so the pair goes down exactly once and
	// recovers after the deterministic repair.
	m := san.NewModel("pair-det")
	pairsOut := m.AddPlace("pairs_out", 0)
	// Deterministic "exponential" is not available through PairConfig (it
	// draws exponential lifetimes), so instead use propagation 1 with one
	// rare process: the first failure at ~t drags the partner down too.
	cfg := PairConfig{
		HWMTBFHours: 100, HWRepair: mustDet(t, 50),
		SWMTBFHours: 1e9, SWRepair: mustDet(t, 1),
		PropagationProb: 1,
	}
	pp, err := BuildFailoverPair(m, "oss", cfg, pairsOut)
	if err != nil {
		t.Fatal(err)
	}
	rewards := []san.RewardVariable{
		san.UpFraction("pair_avail", func(mr san.MarkingReader) bool { return mr.Tokens(pairsOut) == 0 }),
		{Name: "final_up_count", Mode: san.InstantAtEnd, Rate: func(mr san.MarkingReader) float64 {
			return float64(mr.Tokens(pp.UpCount))
		}},
		{Name: "final_pairs_out", Mode: san.InstantAtEnd, Rate: func(mr san.MarkingReader) float64 {
			return float64(mr.Tokens(pairsOut))
		}},
	}
	sim, err := san.NewSimulator(m, rewards, rng.NewStream(77, "pair-det"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(5000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rewards["pair_avail"] >= 1 || res.Rewards["pair_avail"] <= 0 {
		t.Errorf("pair availability = %v, want in (0,1)", res.Rewards["pair_avail"])
	}
	// The counter must never go negative or exceed 1 for a single pair; the
	// final state must be consistent with the up count.
	if out := res.Rewards["final_pairs_out"]; out != 0 && out != 1 {
		t.Errorf("final pairs_out = %v, want 0 or 1", out)
	}
	if up, out := res.Rewards["final_up_count"], res.Rewards["final_pairs_out"]; up > 0 && out != 0 {
		t.Errorf("inconsistent final state: up_count=%v pairs_out=%v", up, out)
	}
}

func TestSpareImprovesAvailability(t *testing.T) {
	build := func(spare bool) float64 {
		m := san.NewModel("pair-spare")
		pairsOut := m.AddPlace("pairs_out", 0)
		cfg := PairConfig{
			HWMTBFHours: 400, HWRepair: mustDet(t, 30),
			SWMTBFHours: 1e9, SWRepair: mustDet(t, 1),
			PropagationProb: 1,
			Spare:           spare,
		}
		if spare {
			cfg.SpareActivationHours = 6
		}
		if _, err := BuildFailoverPair(m, "oss", cfg, pairsOut); err != nil {
			t.Fatal(err)
		}
		rewards := []san.RewardVariable{
			san.UpFraction("pair_avail", func(mr san.MarkingReader) bool { return mr.Tokens(pairsOut) == 0 }),
		}
		res, err := san.RunReplications(m, rewards, san.Options{Mission: 8760, Replications: 40, Seed: 21})
		if err != nil {
			t.Fatal(err)
		}
		return res.Mean("pair_avail")
	}
	without := build(false)
	with := build(true)
	if !(with > without) {
		t.Errorf("spare did not improve availability: %v vs %v", with, without)
	}
	// With a 6 h activation against a 30 h repair the outage time should
	// shrink by well over half.
	lossWithout := 1 - without
	lossWith := 1 - with
	if lossWith > 0.6*lossWithout {
		t.Errorf("spare reduced outage only from %v to %v", lossWithout, lossWith)
	}
}

func TestTransientConfigValidate(t *testing.T) {
	good := TransientConfig{EventsPerHour: 0.12, OutageLoHours: 0.03, OutageHiHours: 0.15}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if err := (TransientConfig{EventsPerHour: 0, OutageLoHours: 0.1, OutageHiHours: 0.2}).Validate(); err == nil {
		t.Error("zero rate accepted")
	}
	if err := (TransientConfig{EventsPerHour: 1, OutageLoHours: 0.3, OutageHiHours: 0.2}).Validate(); err == nil {
		t.Error("inverted outage range accepted")
	}
}

func TestBuildTransientSource(t *testing.T) {
	m := san.NewModel("transient")
	cfg := TransientConfig{EventsPerHour: 0.5, OutageLoHours: 0.05, OutageHiHours: 0.1}
	tp, err := BuildTransientSource(m, "client_nw", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildTransientSource(m, "bad", TransientConfig{}); err == nil {
		t.Error("invalid config accepted")
	}
	rewards := []san.RewardVariable{
		san.CompletionCount("events", tp.EventActivity),
		san.UpFraction("clean", func(mr san.MarkingReader) bool { return mr.Tokens(tp.Active) == 0 }),
	}
	res, err := san.RunReplications(m, rewards, san.Options{Mission: 8760, Replications: 20, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	events := res.Mean("events")
	// Expected events per year: rate 0.5/h over the ~99.99% of time the
	// source is idle ≈ 0.5*8760*(1-eps) ≈ 4350.
	if events < 3800 || events > 4500 {
		t.Errorf("transient events per year = %v, want ~4300", events)
	}
	clean := res.Mean("clean")
	// Fraction of time without a transient in progress: 1 - rate*meanOutage
	// ≈ 1 - 0.5*0.075 ≈ 0.963.
	if math.Abs(clean-0.963) > 0.01 {
		t.Errorf("clean fraction = %v, want ~0.963", clean)
	}
}

// Property: for any valid pair configuration the pairs-out counter stays
// consistent: availability lies in [0,1] and the final counter value is 0 or
// 1 for a single pair.
func TestQuickPairCounterConsistency(t *testing.T) {
	f := func(seed uint64, propSeed, mtbfSeed uint8, spare bool) bool {
		prop := float64(propSeed%100) / 100.0
		mtbf := 200 + float64(mtbfSeed)*10
		m := san.NewModel("prop-pair")
		pairsOut := m.AddPlace("pairs_out", 0)
		cfg := PairConfig{
			HWMTBFHours: mtbf, HWRepair: mustDet(t, 20),
			SWMTBFHours: mtbf, SWRepair: mustDet(t, 3),
			PropagationProb: prop,
			Spare:           spare,
		}
		if spare {
			cfg.SpareActivationHours = 6
		}
		if _, err := BuildFailoverPair(m, "oss", cfg, pairsOut); err != nil {
			return false
		}
		rewards := []san.RewardVariable{
			san.UpFraction("avail", func(mr san.MarkingReader) bool { return mr.Tokens(pairsOut) == 0 }),
			{Name: "final_out", Mode: san.InstantAtEnd, Rate: func(mr san.MarkingReader) float64 {
				return float64(mr.Tokens(pairsOut))
			}},
		}
		sim, err := san.NewSimulator(m, rewards, rng.NewStream(seed, "prop"))
		if err != nil {
			return false
		}
		res, err := sim.Run(4000)
		if err != nil {
			return false
		}
		avail := res.Rewards["avail"]
		out := res.Rewards["final_out"]
		return avail >= 0 && avail <= 1 && (out == 0 || out == 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
