package statespace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/san"
)

// This file derives the incidence matrix of a compiled model and computes
// its place invariants (P-invariants, nonnegative left null space) and
// transition invariants (T-invariants, nonnegative right null space) over
// the rationals with the classic Farkas tableau. A P-invariant y with
// y·C = 0 gives y·M = y·M0 in every reachable marking M, so every place p
// with y_p > 0 is bounded by (y·M0)/y_p — a boundedness certificate that
// holds without exploring a single state.
//
// Columns of C are (activity, case) pairs. Arc effects are exact; gate
// transforms are probed at several base markings — a gate whose token delta
// is the same at every base contributes that constant delta, while a
// marking-dependent gate pins the places it touches out of the invariant
// space (their coefficients are forced to zero), keeping every reported
// invariant sound for the arc-visible part of the net.

// incidenceColumn is one (activity, case) column of the incidence matrix.
type incidenceColumn struct {
	effect []int64 // token delta per place index
	exact  bool    // false when a non-constant gate makes the column partial
}

// pInvariant is one place invariant: coefficient per place and the conserved
// weighted sum c0 = y·M0.
type pInvariant struct {
	coeffs []int64
	c0     int64
}

// invariantResult carries the invariant computation outcome into the
// certificate assembly.
type invariantResult struct {
	pInvariants []pInvariant
	tInvariants int
	skipped     bool   // budgets exceeded or gates unprobeable
	skipReason  string // why, for logging in refusals if needed
}

// boundFor returns the tightest invariant bound for place index pi, with its
// rendered invariant evidence, or ok=false when no invariant covers it.
func (r invariantResult) boundFor(pi int, cm *san.CompiledModel) (int, string, bool) {
	best := int64(-1)
	evidence := ""
	for _, inv := range r.pInvariants {
		if inv.coeffs[pi] <= 0 {
			continue
		}
		b := inv.c0 / inv.coeffs[pi]
		if best < 0 || b < best {
			best = b
			evidence = renderInvariant(inv, cm)
		}
	}
	if best < 0 {
		return 0, "", false
	}
	return int(best), evidence, true
}

// uncoveredPlaces returns the sorted names of places no P-invariant bounds.
func (r invariantResult) uncoveredPlaces(cm *san.CompiledModel) []string {
	var idx []int
	for _, p := range cm.Model().Places() {
		pi := p.Index()
		covered := false
		for _, inv := range r.pInvariants {
			if inv.coeffs[pi] > 0 {
				covered = true
				break
			}
		}
		if !covered {
			idx = append(idx, pi)
		}
	}
	return sortedPlaceNames(cm, idx)
}

// renderInvariant renders "2·a + b = 5" evidence for a P-invariant.
func renderInvariant(inv pInvariant, cm *san.CompiledModel) string {
	places := cm.Model().Places()
	var terms []string
	for pi, c := range inv.coeffs {
		if c == 0 {
			continue
		}
		if c == 1 {
			terms = append(terms, places[pi].Name())
		} else {
			terms = append(terms, fmt.Sprintf("%d·%s", c, places[pi].Name()))
		}
	}
	return fmt.Sprintf("%s = %d", strings.Join(terms, " + "), inv.c0)
}

// computeInvariants builds the incidence matrix and runs Farkas both ways.
// Budget overruns and unprobeable gates downgrade to an empty result instead
// of failing: invariants are evidence and refusal-classification aids, not a
// solver precondition (exploration supplies the exhaustive bounds).
func computeInvariants(cm *san.CompiledModel, opts Options) invariantResult {
	model := cm.Model()
	nPlaces := model.NumPlaces()
	if nPlaces > opts.MaxInvariantPlaces {
		return invariantResult{skipped: true, skipReason: fmt.Sprintf("%d places exceed the %d-place invariant budget", nPlaces, opts.MaxInvariantPlaces)}
	}

	cols, pinned, ok := incidenceMatrix(cm)
	if !ok {
		return invariantResult{skipped: true, skipReason: "a gate transform could not be probed"}
	}
	if len(cols) > opts.MaxInvariantColumns {
		return invariantResult{skipped: true, skipReason: fmt.Sprintf("%d columns exceed the %d-column invariant budget", len(cols), opts.MaxInvariantColumns)}
	}

	res := invariantResult{}
	initial := cm.InitialMarking()

	// P-invariants: Farkas over rows = places (pinned places excluded, which
	// forces their coefficients to zero), columns = (activity, case) pairs.
	// For an unpinned place every column's effect on it is arc-exact even
	// when the column carries a non-constant gate, because pinning covers
	// exactly the places such gates touch.
	prows := make([]farkasRow, 0, nPlaces)
	for pi := 0; pi < nPlaces; pi++ {
		if pinned[pi] {
			continue
		}
		row := farkasRow{d: make([]int64, len(cols)), y: make([]int64, nPlaces)}
		for j, col := range cols {
			row.d[j] = col.effect[pi]
		}
		row.y[pi] = 1
		prows = append(prows, row)
	}
	pvs, ok := farkas(prows, opts.MaxFarkasRows)
	if !ok {
		return invariantResult{skipped: true, skipReason: "P-invariant tableau exceeded the row budget"}
	}
	for _, y := range pvs {
		var c0 int64
		for pi, c := range y {
			c0 += c * int64(initial[pi])
		}
		res.pInvariants = append(res.pInvariants, pInvariant{coeffs: y, c0: c0})
	}

	// T-invariants: Farkas on the transpose. Columns with non-constant gates
	// have partial effects, so they are excluded (their firing count is
	// forced to zero in any reported invariant).
	trows := make([]farkasRow, 0, len(cols))
	for j, col := range cols {
		if !col.exact {
			continue
		}
		row := farkasRow{d: make([]int64, nPlaces), y: make([]int64, len(cols))}
		copy(row.d, col.effect)
		row.y[j] = 1
		trows = append(trows, row)
	}
	tvs, ok := farkas(trows, opts.MaxFarkasRows)
	if !ok {
		// Keep the P-invariants; only the T count is lost.
		return res
	}
	res.tInvariants = len(tvs)
	return res
}

// incidenceMatrix derives the (activity, case) columns and the set of places
// pinned out of the invariant space by non-constant gates. ok is false when
// a gate transform panicked at every probe base, leaving its written-place
// set unknown.
func incidenceMatrix(cm *san.CompiledModel) (cols []incidenceColumn, pinned []bool, ok bool) {
	model := cm.Model()
	nPlaces := model.NumPlaces()
	pinned = make([]bool, nPlaces)
	bases := probeBases(cm.InitialMarking())

	pin := func(touched []bool) {
		for pi, t := range touched {
			if t {
				pinned[pi] = true
			}
		}
	}

	for _, a := range model.Activities() {
		// The input side is shared by every case of the activity.
		base := make([]int64, nPlaces)
		baseExact := true
		for _, arc := range a.InputArcs() {
			base[arc.Place.Index()] -= int64(arc.Mult)
		}
		for _, g := range a.InputGates() {
			if g.Transform == nil {
				continue
			}
			delta, touched, constant, probed := probeGate(g.Transform, bases, nPlaces)
			if !probed {
				return nil, nil, false
			}
			if !constant {
				pin(touched)
				baseExact = false
				continue
			}
			for pi := range delta {
				base[pi] += delta[pi]
			}
		}

		cases := a.Cases()
		if len(cases) == 0 {
			col := incidenceColumn{effect: append([]int64(nil), base...), exact: baseExact}
			cols = append(cols, col)
			continue
		}
		for _, c := range cases {
			eff := append([]int64(nil), base...)
			exact := baseExact
			for _, arc := range c.OutputArcs {
				eff[arc.Place.Index()] += int64(arc.Mult)
			}
			for _, og := range c.OutputGates {
				if og.Transform == nil {
					continue
				}
				delta, touched, constant, probed := probeGate(og.Transform, bases, nPlaces)
				if !probed {
					return nil, nil, false
				}
				if !constant {
					pin(touched)
					exact = false
					continue
				}
				for pi := range delta {
					eff[pi] += delta[pi]
				}
			}
			cols = append(cols, incidenceColumn{effect: eff, exact: exact})
		}
	}
	return cols, pinned, true
}

// probeBases returns the markings gate transforms are probed at: enough
// spread (empty, initial, shifted, saturated) to expose marking-dependent
// deltas on the gates this repository builds.
func probeBases(initial []int) [][]int {
	n := len(initial)
	mk := func(f func(i int) int) []int {
		m := make([]int, n)
		for i := range m {
			v := f(i)
			if v < 0 {
				v = 0
			}
			m[i] = v
		}
		return m
	}
	return [][]int{
		mk(func(int) int { return 0 }),
		mk(func(i int) int { return initial[i] }),
		mk(func(i int) int { return initial[i] + 1 }),
		mk(func(i int) int { return initial[i] + 2 }),
		mk(func(int) int { return 1 }),
		mk(func(int) int { return 2 }),
	}
}

// probeWriter records the token deltas and touched places of a gate
// transform run against a scratch marking.
type probeWriter struct {
	cur     []int
	touched []bool
}

func (w *probeWriter) Tokens(p *san.Place) int { return w.cur[p.Index()] }

func (w *probeWriter) SetTokens(p *san.Place, n int) {
	w.cur[p.Index()] = n
	w.touched[p.Index()] = true
}

func (w *probeWriter) Add(p *san.Place, delta int) { w.SetTokens(p, w.Tokens(p)+delta) }

// probeGate runs the transform at every base and classifies its effect.
// probed is false when the transform panicked at every base (its touched set
// is then unknown and no pinning would be sound).
func probeGate(f san.GateFunc, bases [][]int, nPlaces int) (delta []int64, touched []bool, constant, probed bool) {
	touched = make([]bool, nPlaces)
	constant = true
	ran := 0
	for _, base := range bases {
		w := &probeWriter{cur: append([]int(nil), base...), touched: make([]bool, nPlaces)}
		if !runGateProbe(f, w) {
			continue
		}
		ran++
		d := make([]int64, nPlaces)
		for pi := range d {
			d[pi] = int64(w.cur[pi] - base[pi])
			if w.touched[pi] {
				touched[pi] = true
			}
		}
		if delta == nil {
			delta = d
			continue
		}
		for pi := range d {
			if d[pi] != delta[pi] {
				constant = false
			}
		}
	}
	if ran == 0 {
		return nil, nil, false, false
	}
	if ran < len(bases) {
		// A transform that panics at some bases is marking-dependent in a
		// way probing cannot pin down; treat it as non-constant.
		constant = false
	}
	return delta, touched, constant, true
}

// runGateProbe runs the transform, absorbing panics (gates may assume model
// invariants that synthetic probe markings violate).
func runGateProbe(f san.GateFunc, w *probeWriter) (ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	f(w)
	return true
}

// farkasRow is one row of the Farkas tableau: the remaining effect part d
// and the accumulated coefficient part y.
type farkasRow struct {
	d []int64
	y []int64
}

// farkas computes the minimal generating set of the nonnegative left null
// space of the matrix whose rows are the d parts, returning the y parts of
// the all-zero-d rows. ok is false when the tableau exceeds maxRows.
func farkas(rows []farkasRow, maxRows int) (invariants [][]int64, ok bool) {
	if len(rows) == 0 {
		return nil, true
	}
	nCols := len(rows[0].d)
	for j := 0; j < nCols; j++ {
		var zero, pos, neg []farkasRow
		for _, r := range rows {
			switch {
			case r.d[j] == 0:
				zero = append(zero, r)
			case r.d[j] > 0:
				pos = append(pos, r)
			default:
				neg = append(neg, r)
			}
		}
		if len(zero)+len(pos)*len(neg) > maxRows {
			return nil, false
		}
		next := zero
		for _, rp := range pos {
			for _, rn := range neg {
				comb, fits := combineRows(rp, rn, j)
				if !fits {
					return nil, false
				}
				next = append(next, comb)
			}
		}
		rows = next
	}
	for _, r := range rows {
		zero := true
		for _, c := range r.y {
			if c != 0 {
				zero = false
				break
			}
		}
		if !zero {
			invariants = append(invariants, r.y)
		}
	}
	sort.Slice(invariants, func(i, j int) bool {
		for k := range invariants[i] {
			if invariants[i][k] != invariants[j][k] {
				return invariants[i][k] < invariants[j][k]
			}
		}
		return false
	})
	return invariants, true
}

// farkasOverflowLimit aborts the tableau before int64 arithmetic can wrap.
const farkasOverflowLimit = int64(1) << 40

// combineRows forms the nonnegative combination of a positive and a negative
// row that cancels column j, normalized by the gcd of all entries. fits is
// false on overflow risk.
func combineRows(rp, rn farkasRow, j int) (farkasRow, bool) {
	a := rp.d[j]  // > 0
	b := -rn.d[j] // > 0
	g := gcd64(a, b)
	a, b = a/g, b/g
	comb := farkasRow{d: make([]int64, len(rp.d)), y: make([]int64, len(rp.y))}
	g = 0
	mix := func(dst, x, y []int64) bool {
		for i := range dst {
			v := b*x[i] + a*y[i]
			if v > farkasOverflowLimit || v < -farkasOverflowLimit {
				return false
			}
			dst[i] = v
			g = gcd64(g, abs64(v))
		}
		return true
	}
	if !mix(comb.d, rp.d, rn.d) || !mix(comb.y, rp.y, rn.y) {
		return farkasRow{}, false
	}
	if g > 1 {
		for i := range comb.d {
			comb.d[i] /= g
		}
		for i := range comb.y {
			comb.y[i] /= g
		}
	}
	return comb, true
}

func gcd64(a, b int64) int64 {
	a, b = abs64(a), abs64(b)
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
