package statespace

import (
	"fmt"
	"math"

	"repro/internal/san"
)

// This file is the first consumer of the generated CTMC: a uniformization
// transient solver and a power-iteration steady-state solver, generalizing
// the hand-built birth-death chain behind rareevent.BirthDeathHitProbability
// to any certified model. With Λ an upper bound on the total exit rate,
// P = I + Q/Λ is stochastic and
//
//	π(T)  = Σ_n pois(n; ΛT) · v_n,            v_n = v_{n-1} P
//	L_s(T) = ∫₀ᵀ π_s(t) dt = (1/Λ) Σ_n P(N > n) · v_n[s]
//
// (the second from ∫₀ᵀ pois(n; Λt) dt = P(N > n)/Λ with N ~ Poisson(ΛT)).
// Rate rewards integrate against the sojourn vector L, impulse rewards
// accumulate at rate Σ_edges rate·impulse while the source state is
// occupied, exactly the quantities the simulator estimates.

// ErrSolve reports a numerical-solver failure (never a certificate refusal —
// those happen before the solver runs).
var ErrSolve = fmt.Errorf("statespace: solve failed")

// maxUniformizationConstant bounds ΛT: beyond it the Poisson series needs
// too many terms for the solver to beat simulation.
const maxUniformizationConstant = 1e6

// csr is the uniformized transition matrix P = I + Q/Λ in compressed sparse
// row form, with self-loop edges excluded from the dynamics (they do not
// move probability) but retained in the impulse flux.
type csr struct {
	rowStart []int
	colIdx   []int
	val      []float64
	stay     []float64 // diagonal: 1 - exit_s/Λ
}

// step computes dst = v·P.
func (m *csr) step(dst, v []float64) {
	for i := range dst {
		dst[i] = v[i] * m.stay[i]
	}
	for s := range m.stay {
		if v[s] == 0 {
			continue
		}
		for k := m.rowStart[s]; k < m.rowStart[s+1]; k++ {
			dst[m.colIdx[k]] += v[s] * m.val[k]
		}
	}
}

// buildCSR merges the generator's parallel edges into the uniformized matrix
// at rate lambda. Off-diagonal mass comes from edges with From != To; the
// exit rate likewise excludes self-loops (a self-loop edge leaves the
// distribution unchanged).
func (g *Generator) buildCSR(lambda float64) *csr {
	n := len(g.States)
	m := &csr{rowStart: make([]int, n+1), stay: make([]float64, n)}
	for s := 0; s < n; s++ {
		m.rowStart[s] = len(m.colIdx)
		// Merge parallel edges per destination, preserving first-seen
		// destination order for deterministic accumulation.
		offset := map[int]int{}
		exit := 0.0
		for _, t := range g.Transitions[s] {
			if t.To == s {
				continue
			}
			exit += t.Rate
			if k, ok := offset[t.To]; ok {
				m.val[k] += t.Rate / lambda
				continue
			}
			offset[t.To] = len(m.colIdx)
			m.colIdx = append(m.colIdx, t.To)
			m.val = append(m.val, t.Rate/lambda)
		}
		m.stay[s] = 1 - exit/lambda
	}
	m.rowStart[n] = len(m.colIdx)
	return m
}

// maxExitRate returns the largest total outgoing rate (self-loops excluded).
func (g *Generator) maxExitRate() float64 {
	maxExit := 0.0
	for s := range g.Transitions {
		exit := 0.0
		for _, t := range g.Transitions[s] {
			if t.To != s {
				exit += t.Rate
			}
		}
		if exit > maxExit {
			maxExit = exit
		}
	}
	return maxExit
}

// impulseFlux returns, per state, the impulse-reward accumulation rate of
// reward ri while the state is occupied: Σ over outgoing edges (self-loops
// included) of rate · impulse.
func (g *Generator) impulseFlux(ri int) []float64 {
	flux := make([]float64, len(g.States))
	for s := range g.Transitions {
		for _, t := range g.Transitions[s] {
			if ri < len(t.Impulses) {
				flux[s] += t.Rate * t.Impulses[ri]
			}
		}
	}
	return flux
}

// solveTransientBaseline computes every reward variable at mission time T by
// uniformization and returns them keyed by reward name — the exact analogue
// of one simulated replication's Result.Rewards, in expectation. It is the
// sequential reference implementation behind SolveTransient (solve_fast.go
// holds the production kernels); Options.Baseline routes solves here.
func (g *Generator) solveTransientBaseline(T float64) (map[string]float64, error) {
	if !(T > 0) || math.IsInf(T, 0) {
		return nil, fmt.Errorf("%w: mission time %v", ErrSolve, T)
	}
	n := len(g.States)
	pi := make([]float64, n)      // π(T)
	sojourn := make([]float64, n) // L(T)
	for _, sp := range g.Initial {
		pi[sp.State] = sp.Prob
	}

	lambda := g.maxExitRate()
	if lambda == 0 {
		// No timed behavior: the chain sits in its initial distribution.
		for s, p := range pi {
			sojourn[s] = p * T
		}
		return g.evalRewards(pi, sojourn, T)
	}
	lt := lambda * T
	if lt > maxUniformizationConstant {
		return nil, fmt.Errorf("%w: uniformization constant %v too large", ErrSolve, lt)
	}

	P := g.buildCSR(lambda)
	v := make([]float64, n)
	for _, sp := range g.Initial {
		v[sp.State] = sp.Prob
	}
	next := make([]float64, n)

	// Iteratively updated Poisson weights in log space (the leading weights
	// underflow for large ΛT).
	logWeight := -lt // log PMF at n=0
	w := math.Exp(logWeight)
	accumulated := w
	out := make([]float64, n)
	for s := range v {
		out[s] = w * v[s]
		// P(N > 0) = 1 - w.
		sojourn[s] = (1 - accumulated) * v[s] / lambda
	}
	copy(pi, out)
	// usedTime tracks Σ tail_m/λ added to the sojourn vector so far; the
	// identity Σ_m P(N > m)/λ = E[N]/λ = T gives the remainder in closed
	// form when the iteration stops early.
	usedTime := (1 - accumulated) / lambda

	const tol = 1e-12
	// Steady-state detection: once v_n stops changing (the embedded chain
	// reached stationarity within ssTol), every remaining Poisson term
	// multiplies the same vector, so the rest of the series collapses to the
	// leftover probability mass (for π) and leftover expected time (for L).
	// Missions are typically many mixing times long (ΛT in the tens of
	// thousands for an 8760 h year), so this turns O(ΛT) matrix-vector
	// products into O(Λ·t_mix).
	const ssTol = 1e-13
	maxIter := int(lt + 12*math.Sqrt(lt+1) + 50)
	for it := 1; it <= maxIter; it++ {
		P.step(next, v)
		v, next = next, v
		logWeight += math.Log(lt) - math.Log(float64(it))
		w = math.Exp(logWeight)
		accumulated += w
		tail := 1 - accumulated
		if tail < 0 {
			tail = 0
		}
		for s := range v {
			pi[s] += w * v[s]
			sojourn[s] += tail * v[s] / lambda
		}
		usedTime += tail / lambda
		if it > int(lt) && 1-accumulated < tol {
			break
		}
		diff := 0.0
		for s := range v {
			diff += math.Abs(v[s] - next[s])
		}
		if diff < ssTol {
			remMass := 1 - accumulated
			if remMass < 0 {
				remMass = 0
			}
			remTime := T - usedTime
			if remTime < 0 {
				remTime = 0
			}
			for s := range v {
				pi[s] += remMass * v[s]
				sojourn[s] += remTime * v[s]
			}
			break
		}
	}
	return g.evalRewards(pi, sojourn, T)
}

// solveSteadyStateBaseline computes the long-run value of every reward
// variable: the stationary expectation of rate rewards plus the stationary
// impulse flux for accumulated-mode rewards (per unit time). The embedded
// uniformized chain is iterated at 1.05× the maximal exit rate so it is
// aperiodic whenever the CTMC is irreducible over its recurrent classes. It
// is the sequential reference implementation behind SolveSteadyState.
func (g *Generator) solveSteadyStateBaseline() (map[string]float64, error) {
	n := len(g.States)
	pi := make([]float64, n)
	for _, sp := range g.Initial {
		pi[sp.State] = sp.Prob
	}
	lambda := g.maxExitRate()
	if lambda > 0 {
		P := g.buildCSR(lambda * 1.05)
		next := make([]float64, n)
		const tol = 1e-14
		maxIter := 5_000_000
		converged := false
		for it := 0; it < maxIter; it++ {
			P.step(next, pi)
			diff := 0.0
			for s := range next {
				diff += math.Abs(next[s] - pi[s])
			}
			pi, next = next, pi
			if diff < tol {
				converged = true
				break
			}
		}
		if !converged {
			return nil, fmt.Errorf("%w: steady-state power iteration did not converge within %d steps", ErrSolve, maxIter)
		}
	}
	return g.longRunRewards(pi)
}

// longRunRewards folds a stationary distribution into the reward variables:
// rate expectation plus impulse flux under π. The sojourn vector of a unit
// horizon under π is π itself.
func (g *Generator) longRunRewards(pi []float64) (map[string]float64, error) {
	out := make(map[string]float64, len(g.cm.Rewards()))
	for ri, rv := range g.cm.Rewards() {
		rates, err := g.stateRates(ri)
		if err != nil {
			return nil, err
		}
		total := 0.0
		for s := range pi {
			total += pi[s] * rates[s]
		}
		if len(rv.Impulses) > 0 {
			flux := g.impulseFlux(ri)
			for s := range pi {
				total += pi[s] * flux[s]
			}
		}
		out[rv.Name] = total
	}
	return out, nil
}

// stateRates evaluates reward ri's rate function in every state, with panic
// recovery.
func (g *Generator) stateRates(ri int) ([]float64, error) {
	rv := g.cm.Rewards()[ri]
	rates := make([]float64, len(g.States))
	if rv.Rate == nil {
		return rates, nil
	}
	for s, mark := range g.States {
		r, err := evalRewardRate(rv, mark)
		if err != nil {
			return nil, err
		}
		rates[s] = r
	}
	return rates, nil
}

func evalRewardRate(rv san.RewardVariable, mark []int) (r float64, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("%w: reward %q rate panicked: %v", ErrSolve, rv.Name, rec)
		}
	}()
	return rv.Rate(markingVec(mark)), nil
}

// evalRewards folds the transient distribution π(T) and sojourn vector L(T)
// into the reward variables, following the simulator's semantics: a
// time-averaged reward is (∫rate + impulses)/T, an accumulated reward is
// ∫rate + impulses, an instant-of-time reward is the rate expectation under
// π(T).
func (g *Generator) evalRewards(pi, sojourn []float64, T float64) (map[string]float64, error) {
	out := make(map[string]float64, len(g.cm.Rewards()))
	for ri, rv := range g.cm.Rewards() {
		rates, err := g.stateRates(ri)
		if err != nil {
			return nil, err
		}
		switch rv.Mode {
		case san.InstantAtEnd:
			total := 0.0
			for s := range pi {
				total += pi[s] * rates[s]
			}
			out[rv.Name] = total
		default:
			total := g.InitialImpulses[ri]
			for s := range sojourn {
				total += sojourn[s] * rates[s]
			}
			if len(rv.Impulses) > 0 {
				flux := g.impulseFlux(ri)
				for s := range sojourn {
					total += sojourn[s] * flux[s]
				}
			}
			if rv.Mode == san.TimeAveraged {
				total /= T
			}
			out[rv.Name] = total
		}
	}
	return out, nil
}
