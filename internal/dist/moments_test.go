package dist

import (
	"math"
	"testing"
)

// numericRawMoment integrates E[X^k] = int_0^inf k*x^(k-1)*(1-F(x)) dx by
// composite Simpson on [0, upper], where upper caps all but a negligible
// tail. Every family under test is supported on [0, inf) with a usable CDF.
func numericRawMoment(t *testing.T, d Distribution, k int) float64 {
	t.Helper()
	cdf, ok := d.(CDFer)
	if !ok {
		t.Fatalf("%s does not implement CDFer", Describe(d))
	}
	q, ok := d.(Quantiler)
	if !ok {
		t.Fatalf("%s does not implement Quantiler", Describe(d))
	}
	upper := q.Quantile(1 - 1e-12)
	if math.IsInf(upper, 1) || upper <= 0 {
		t.Fatalf("%s: unusable integration bound %v", Describe(d), upper)
	}
	f := func(x float64) float64 {
		return float64(k) * math.Pow(x, float64(k-1)) * (1 - cdf.CDF(x))
	}
	const n = 200000 // even
	h := upper / n
	sum := f(0) + f(upper)
	for i := 1; i < n; i++ {
		x := float64(i) * h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3
}

// TestThirdMomentsAgainstNumericIntegration pins every closed-form third
// moment (and Empirical's new variance) to a quadrature of the same
// distribution's CDF.
func TestThirdMomentsAgainstNumericIntegration(t *testing.T) {
	mustDist := func(d Distribution, err error) Distribution {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	cases := []struct {
		name string
		d    Distribution
	}{
		{"exponential", mustDist(asDist(NewExponentialFromMean(12)))},
		{"uniform", mustDist(asDist(NewUniform(12, 36)))},
		{"uniform-from-zero", mustDist(asDist(NewUniform(0, 5)))},
		{"weibull-wearout", mustDist(asDist(NewWeibull(1.5, 40)))},
		{"weibull-infant", mustDist(asDist(NewWeibull(0.8, 40)))},
		{"gamma", mustDist(asDist(NewGamma(2.5, 3)))},
		{"erlang", mustDist(asDist(NewErlang(4, 0.5)))},
		{"lognormal", mustDist(asDist(NewLognormal(1.2, 0.5)))},
		{"empirical", mustDist(asDist(NewEmpirical([]float64{1, 2, 2, 3, 4, 4, 5, 8, 13, 21})))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m1, m2, m3, ok := RawMoments(tc.d)
			if !ok {
				t.Fatalf("RawMoments(%s) not available", Describe(tc.d))
			}
			for k, analytic := range map[int]float64{1: m1, 2: m2, 3: m3} {
				numeric := numericRawMoment(t, tc.d, k)
				if rel := math.Abs(analytic-numeric) / numeric; rel > 1e-4 {
					t.Errorf("%s: E[X^%d] analytic %v vs numeric %v (rel err %v)",
						Describe(tc.d), k, analytic, numeric, rel)
				}
			}
		})
	}
}

// TestDeterministicThirdMoment checks the point mass directly; its step CDF
// needs no quadrature.
func TestDeterministicThirdMoment(t *testing.T) {
	d, err := NewDeterministic(17)
	if err != nil {
		t.Fatal(err)
	}
	m1, m2, m3, ok := RawMoments(d)
	if !ok {
		t.Fatal("RawMoments(deterministic) not available")
	}
	if m1 != 17 || m2 != 17*17 || m3 != 17*17*17 {
		t.Fatalf("deterministic raw moments = %v, %v, %v", m1, m2, m3)
	}
}

// TestEmpiricalVariance pins the interpolant variance against a direct
// segment-mixture computation and checks the degenerate cases.
func TestEmpiricalVariance(t *testing.T) {
	e, err := NewEmpirical([]float64{2, 4, 10})
	if err != nil {
		t.Fatal(err)
	}
	// Mixture of U[2,4] and U[4,10], weight 1/2 each:
	// E[X] = (3 + 7)/2 = 5; E[X^2] = ((4+8+16)/3 + (16+40+100)/3)/2 = 92/3.
	if got, want := e.Mean(), 5.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("mean = %v, want %v", got, want)
	}
	if got, want := e.Variance(), 92.0/3-25.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("variance = %v, want %v", got, want)
	}

	single, err := NewEmpirical([]float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if single.Variance() != 0 {
		t.Fatalf("single-point variance = %v, want 0", single.Variance())
	}
	if single.ThirdMoment() != 343 {
		t.Fatalf("single-point third moment = %v, want 343", single.ThirdMoment())
	}

	tied, err := NewEmpirical([]float64{3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if tied.Variance() != 0 {
		t.Fatalf("tied-sample variance = %v, want 0", tied.Variance())
	}
}

// TestRawMomentsUnavailable confirms the helper reports ok=false for
// families without closed-form higher moments instead of guessing.
func TestRawMomentsUnavailable(t *testing.T) {
	parts := []Component{
		{Weight: 0.5, Dist: mustExponential(t, 1)},
		{Weight: 0.5, Dist: mustExponential(t, 10)},
	}
	mix, err := NewMixture(parts...)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, ok := RawMoments(mix); ok {
		t.Fatal("RawMoments(mixture) = ok, want unavailable")
	}
}

func mustExponential(t *testing.T, mean float64) Distribution {
	t.Helper()
	d, err := NewExponentialFromMean(mean)
	if err != nil {
		t.Fatal(err)
	}
	return d
}
