package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// noDeterminism enforces the determinism contract inside the deterministic
// package set: no wall-clock reads, no global math/rand generators, and no
// map iteration in unspecified order. A map range is allowed when it is
// annotated //lint:sorted (the author asserts order cannot leak into
// output) or when it only collects keys that the same function later sorts.
func noDeterminism(p *Package) []Finding {
	var findings []Finding
	for _, file := range p.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				findings = append(findings, Finding{
					Pos:     p.Fset.Position(imp.Pos()),
					Rule:    "nodeterminism",
					Message: "import of " + path + " in a deterministic package; draw randomness from the seeded rng streams",
				})
			}
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			findings = append(findings, noDeterminismFunc(p, fd)...)
		}
	}
	return findings
}

func noDeterminismFunc(p *Package, fd *ast.FuncDecl) []Finding {
	var findings []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			if f := calleeFunc(p.Info, node); f != nil && f.Pkg() != nil && f.Pkg().Path() == "time" && f.Name() == "Now" {
				findings = append(findings, Finding{
					Pos:     p.Fset.Position(node.Pos()),
					Rule:    "nodeterminism",
					Message: "time.Now in a deterministic package; simulated time must come from the event clock",
				})
			}
		case *ast.RangeStmt:
			tv, ok := p.Info.Types[node.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if p.sortedAnnotated(node.Pos()) || keyCollectThenSort(p, fd, node) {
				return true
			}
			findings = append(findings, Finding{
				Pos:     p.Fset.Position(node.Pos()),
				Rule:    "nodeterminism",
				Message: "map iteration order is unspecified; sort the keys first or annotate //lint:sorted with a justification",
			})
		}
		return true
	})
	return findings
}

// keyCollectThenSort recognizes the canonical deterministic idiom
//
//	for k := range m { keys = append(keys, k) }
//	sort.Strings(keys)
//
// the range body is a single append of the range key to a slice, and the
// enclosing function later passes that slice to a sorting call.
func keyCollectThenSort(p *Package, fd *ast.FuncDecl, rng *ast.RangeStmt) bool {
	key, ok := rng.Key.(*ast.Ident)
	if !ok || rng.Value != nil || rng.Body == nil || len(rng.Body.List) != 1 {
		return false
	}
	assign, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	slice, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	if fn, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || fn.Name != "append" {
		return false
	}
	dst, ok := call.Args[0].(*ast.Ident)
	if !ok || dst.Name != slice.Name {
		return false
	}
	if arg, ok := call.Args[1].(*ast.Ident); !ok || arg.Name != key.Name {
		return false
	}
	sliceObj := p.Info.ObjectOf(slice)
	if sliceObj == nil {
		return false
	}
	// Look for a later sorting call taking the collected slice.
	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		name := ""
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
			if base, ok := fun.X.(*ast.Ident); ok {
				name = base.Name + "." + name
			}
		}
		if !strings.Contains(strings.ToLower(name), "sort") {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && p.Info.ObjectOf(id) == sliceObj {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}
