package rareevent

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/dist"
	"repro/internal/san"
)

// buildBirthDeath constructs the M/M/1-style SAN: a single place n holding
// the population, a birth activity at constant rate lambda (always enabled),
// and a death activity at constant rate mu enabled while n >= 1. The rare
// event is n reaching top; exponential delays make the chain Markov, so the
// uniformization answer is exact. The cap gate stops births at top so the
// importance cannot overshoot the last level.
func buildBirthDeath(t testing.TB, lambda, mu float64, top int) (*san.Model, san.ImportanceFunc) {
	t.Helper()
	m := san.NewModel("birthdeath")
	n := m.AddPlace("n", 0)
	birthDelay, err := dist.NewExponentialFromRate(lambda)
	if err != nil {
		t.Fatal(err)
	}
	deathDelay, err := dist.NewExponentialFromRate(mu)
	if err != nil {
		t.Fatal(err)
	}
	m.AddTimedActivity("birth", birthDelay).
		AddInputGate(&san.InputGate{
			Name:    "cap",
			Reads:   []*san.Place{n},
			Enabled: func(mr san.MarkingReader) bool { return mr.Tokens(n) < top },
		}).
		AddOutputArc(n, 1)
	m.AddTimedActivity("death", deathDelay).AddInputArc(n, 1)
	importance := func(mr san.MarkingReader) float64 { return float64(mr.Tokens(n)) }
	return m, importance
}

func TestBirthDeathHitProbabilityValidation(t *testing.T) {
	if _, err := BirthDeathHitProbability(nil, nil, 1); err == nil {
		t.Error("empty rates accepted")
	}
	if _, err := BirthDeathHitProbability([]float64{1}, []float64{1, 2}, 1); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := BirthDeathHitProbability([]float64{1}, []float64{0}, -1); err == nil {
		t.Error("negative horizon accepted")
	}
	if _, err := BirthDeathHitProbability([]float64{-1}, []float64{0}, 1); err == nil {
		t.Error("negative rate accepted")
	}
	p, err := BirthDeathHitProbability([]float64{0, 0}, []float64{0, 1}, 5)
	if err != nil || p != 0 {
		t.Errorf("all-zero birth rates: p=%v err=%v", p, err)
	}
}

func TestBirthDeathHitProbabilityPureBirth(t *testing.T) {
	// With a single state step (K=1) the hit time is Exp(lambda):
	// P(hit by T) = 1 - exp(-lambda T).
	lambda, T := 0.3, 2.0
	p, err := BirthDeathHitProbability([]float64{lambda}, []float64{0}, T)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - math.Exp(-lambda*T)
	if math.Abs(p-want) > 1e-9 {
		t.Errorf("p = %v, want %v", p, want)
	}

	// K=2 with distinct rates: hypoexponential CDF
	// P = 1 - (l2 e^{-l1 T} - l1 e^{-l2 T})/(l2 - l1).
	l1, l2 := 0.5, 1.25
	p2, err := BirthDeathHitProbability([]float64{l1, l2}, []float64{0, 0}, T)
	if err != nil {
		t.Fatal(err)
	}
	want2 := 1 - (l2*math.Exp(-l1*T)-l1*math.Exp(-l2*T))/(l2-l1)
	if math.Abs(p2-want2) > 1e-9 {
		t.Errorf("p2 = %v, want %v", p2, want2)
	}
}

func TestOptionsValidation(t *testing.T) {
	m, imp := buildBirthDeath(t, 1, 4, 3)
	bad := []Options{
		{Mission: 0, Levels: []float64{1}, Effort: []int{10}},
		{Mission: 10, Levels: nil, Effort: nil},
		{Mission: 10, Levels: []float64{2, 1}, Effort: []int{10, 10}},
		{Mission: 10, Levels: []float64{1, 2}, Effort: []int{10}},
		{Mission: 10, Levels: []float64{1}, Effort: []int{0}},
	}
	for i, opts := range bad {
		if _, err := Run(m, imp, opts); err == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
	}
	if _, err := Run(m, nil, Options{Mission: 10, Levels: []float64{1}, Effort: []int{10}}); err == nil {
		t.Error("nil importance accepted")
	}
}

// TestSplittingMatchesAnalyticBirthDeath is the headline correctness check:
// on a birth-death chain whose transient hit probability is computable by
// uniformization, the splitting estimate must agree with the exact answer
// within its confidence interval, and so must long-run naive Monte Carlo.
func TestSplittingMatchesAnalyticBirthDeath(t *testing.T) {
	const (
		lambda = 1.0
		mu     = 4.0
		top    = 6
		T      = 10.0
	)
	m, imp := buildBirthDeath(t, lambda, mu, top)

	birth := make([]float64, top)
	death := make([]float64, top)
	for i := 0; i < top; i++ {
		birth[i] = lambda
		death[i] = mu
	}
	exact, err := BirthDeathHitProbability(birth, death, T)
	if err != nil {
		t.Fatal(err)
	}
	if exact <= 0 || exact > 0.1 {
		t.Fatalf("test parameters no longer give a rare event: exact = %v", exact)
	}

	split, err := Run(m, imp, Options{
		Mission: T,
		Levels:  UniformSplittingLevels(top),
		Effort:  FixedEffort(top, 400),
		Seed:    11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if split.Probability <= 0 {
		t.Fatalf("splitting found no events: %+v", split.Stages)
	}
	// 2x the half width keeps the deterministic-seed test robust while still
	// catching estimator bias.
	if diff := math.Abs(split.Probability - exact); diff > 2*split.Interval.HalfWidth {
		t.Errorf("splitting %v vs exact %v: |diff| %v > 2*halfwidth %v",
			split.Probability, exact, diff, split.Interval.HalfWidth)
	}

	// With all-exponential delays, memoryless resampling on restore is
	// exactly distribution-preserving: the resampled estimate must agree
	// with the analytic answer too.
	resampled, err := Run(m, imp, Options{
		Mission:           T,
		Levels:            UniformSplittingLevels(top),
		Effort:            FixedEffort(top, 400),
		Seed:              17,
		ResampleOnRestore: func(*san.Activity) bool { return true },
	})
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(resampled.Probability - exact); diff > 2*resampled.Interval.HalfWidth {
		t.Errorf("resampled splitting %v vs exact %v: |diff| %v > 2*halfwidth %v",
			resampled.Probability, exact, diff, resampled.Interval.HalfWidth)
	}

	naive, err := RunNaive(m, imp, NaiveOptions{
		Mission:         T,
		Level:           float64(top),
		EventBudget:     1 << 62, // run to MaxReplications
		MaxReplications: 30000,
		Seed:            11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if naive.Hits == 0 {
		t.Fatalf("naive MC saw no events at p=%v with %d reps", exact, naive.Replications)
	}
	if diff := math.Abs(naive.Probability - exact); diff > 2*naive.Interval.HalfWidth {
		t.Errorf("naive %v vs exact %v: |diff| %v > 2*halfwidth %v",
			naive.Probability, exact, diff, naive.Interval.HalfWidth)
	}
	// And the two estimators must agree with each other.
	if diff := math.Abs(naive.Probability - split.Probability); diff > 2*(naive.Interval.HalfWidth+split.Interval.HalfWidth) {
		t.Errorf("splitting %v and naive %v disagree beyond combined CIs", split.Probability, naive.Probability)
	}
}

// TestSplittingDeterministicAcrossParallelism checks the whole engine —
// per-trajectory seeding, snapshot pooling, and reductions — is bit-identical
// regardless of worker count.
func TestSplittingDeterministicAcrossParallelism(t *testing.T) {
	m, imp := buildBirthDeath(t, 1, 3, 4)
	var baseline *Estimate
	for _, par := range []int{1, 4, 16} {
		est, err := Run(m, imp, Options{
			Mission:     8,
			Levels:      UniformSplittingLevels(4),
			Effort:      FixedEffort(4, 120),
			Seed:        5,
			Parallelism: par,
		})
		if err != nil {
			t.Fatal(err)
		}
		est.Options.Parallelism = 0 // normalize the only field allowed to differ
		if baseline == nil {
			baseline = est
			continue
		}
		if !reflect.DeepEqual(baseline, est) {
			t.Errorf("parallelism %d changed the estimate: %+v vs %+v", par, est, baseline)
		}
	}
	if baseline.TotalEvents == 0 {
		t.Error("no events simulated")
	}
}

func TestSplittingExtinctionReportsZeroWithBound(t *testing.T) {
	// Tiny effort on a very rare event: some stage will produce no hits.
	// The estimate must be zero with a positive conservative half width and
	// no error.
	m, imp := buildBirthDeath(t, 0.01, 50, 5)
	est, err := Run(m, imp, Options{
		Mission: 5,
		Levels:  UniformSplittingLevels(5),
		Effort:  FixedEffort(5, 5),
		Seed:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.Probability != 0 {
		t.Errorf("probability = %v, want 0", est.Probability)
	}
	if !(est.Interval.HalfWidth > 0) {
		t.Errorf("half width = %v, want > 0", est.Interval.HalfWidth)
	}
	if len(est.Stages) == len(est.Options.Levels) {
		// Possible only if the last stage had zero hits; earlier extinction
		// truncates the stage list.
		last := est.Stages[len(est.Stages)-1]
		if last.Hits != 0 {
			t.Errorf("expected a zero-hit stage, got %+v", est.Stages)
		}
	}
}

func TestNaiveBudgetMetering(t *testing.T) {
	m, imp := buildBirthDeath(t, 1, 2, 3)
	est, err := RunNaive(m, imp, NaiveOptions{
		Mission:     10,
		Level:       3,
		EventBudget: 2000,
		Seed:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.TotalEvents < 2000 {
		t.Errorf("stopped before the budget: %d events", est.TotalEvents)
	}
	// One batch beyond the budget at most.
	if est.Replications%naiveBatchSize != 0 && est.Replications != est.Replications/naiveBatchSize*naiveBatchSize {
		t.Errorf("replications %d not in whole batches", est.Replications)
	}
	if est.Interval.N != est.Replications {
		t.Errorf("interval N %d != replications %d", est.Interval.N, est.Replications)
	}
}

func TestHelpers(t *testing.T) {
	if got := UniformSplittingLevels(3); !reflect.DeepEqual(got, []float64{1, 2, 3}) {
		t.Errorf("UniformSplittingLevels = %v", got)
	}
	if got := FixedEffort(2, 7); !reflect.DeepEqual(got, []int{7, 7}) {
		t.Errorf("FixedEffort = %v", got)
	}
}
