// Package phfit mirrors the repository's phase-type fitting package in the
// fixture module: it is listed in the fixture's deterministic package set,
// so a certified fit bound computed with wall-clock reads, global math/rand,
// or unordered map iteration is a violation here.
package phfit

import (
	"math/rand" // want nodeterminism
	"sort"
	"time"
)

// SeededBound draws grid jitter from the global generator — a fit bound
// would differ across runs.
func SeededBound(points []float64) float64 {
	i := rand.Intn(len(points))
	return points[i]
}

// StampedEvidence embeds the wall clock in fit evidence.
func StampedEvidence() string {
	return "fitted at " + time.Now().String() // want nodeterminism
}

// WorstBound folds per-activity bounds in map order; the maximum is
// order-insensitive, but the rule demands the annotation burden stays on
// provably safe code, so the unannotated range is flagged.
func WorstBound(bounds map[string]float64) float64 {
	worst := 0.0
	for _, b := range bounds { // want nodeterminism
		if b > worst {
			worst = b
		}
	}
	return worst
}

// SortedActivities is the canonical fix: collect, sort, then fold in sorted
// order, which the rule recognizes without an annotation.
func SortedActivities(bounds map[string]float64) []string {
	names := make([]string, 0, len(bounds))
	for name := range bounds {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
