// Package raid models the storage hardware of the ABE cluster file system:
// RAID6 (m+k) tiers of disks behind DDN storage units with redundant RAID
// controllers. It provides both a stochastic-activity-network submodel
// builder (used by the composed CFS model and by the Figure 2/3 experiments)
// and analytic approximations used as baselines and cross-checks.
//
// The ABE scratch partition is 2 DataDirect Networks S2A9550 units, each
// with 8 FC ports x 3 tiers of (8+2) 250 GB SATA disks in RAID6 — 480 disks
// for 96 TB usable. Blue Waters-style systems move to (8+3).
package raid

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/san"
)

// Defaults matching the ABE cluster as described in the paper (Section 3).
const (
	// DefaultDataDisks and DefaultParityDisks give the (8+2) RAID6 geometry.
	DefaultDataDisks   = 8
	DefaultParityDisks = 2
	// DefaultTiersPerDDN: each S2A9550 has 8 ports x 3 tiers.
	DefaultTiersPerDDN = 24
	// DefaultDiskCapacityGB is the ABE-era disk size (250 GB).
	DefaultDiskCapacityGB = 250.0
	// DefaultDiskMTBFHours is the MTBF the paper estimates by matching the
	// observed replacement rate (300,000 h, AFR 2.92%).
	DefaultDiskMTBFHours = 300000.0
	// DefaultDiskShape is the Weibull shape fitted to the ABE disk logs.
	DefaultDiskShape = 0.7
	// DefaultReplaceHours is the disk replacement time used for the ABE
	// configuration (1-12 h range in Table 5; 4 h in the figure labels).
	DefaultReplaceHours = 4.0
	// DefaultControllerMTBFHours is the per-controller hardware MTBF. The
	// paper's Table 5 reports 1-2 hardware failures per 720 hours for the
	// CFS as a whole; spread over the dozen-plus major hardware components
	// (OSS servers, RAID controllers, FC ports/switches) this corresponds to
	// roughly one failure per controller-year, which keeps the RAID6
	// storage-availability at ~1 for the ABE configuration as the paper
	// observes (Figure 2, first data point).
	DefaultControllerMTBFHours = 8760.0
	// Controller repairs take 12-36 hours (vendor part procurement).
	DefaultControllerRepairLoHours = 12.0
	DefaultControllerRepairHiHours = 36.0
)

// Validation errors.
var (
	ErrBadGeometry = errors.New("raid: invalid tier geometry")
	ErrBadConfig   = errors.New("raid: invalid storage configuration")
)

// TierGeometry is the RAID layout of one tier: Data+Parity disks, tolerating
// up to Parity concurrent disk failures.
type TierGeometry struct {
	Data   int
	Parity int
}

// Disks returns the total number of disks in a tier.
func (g TierGeometry) Disks() int { return g.Data + g.Parity }

// String renders the geometry as "8+2".
func (g TierGeometry) String() string { return fmt.Sprintf("%d+%d", g.Data, g.Parity) }

// Validate checks the geometry.
func (g TierGeometry) Validate() error {
	if g.Data < 1 || g.Parity < 0 {
		return fmt.Errorf("%w: %s", ErrBadGeometry, g)
	}
	return nil
}

// DiskConfig describes the disk failure/replacement process.
type DiskConfig struct {
	// ShapeBeta is the Weibull shape parameter (0.6-1.0 in the paper).
	// Shape 1 makes the lifetime exponential, the memoryless regime the
	// lumped tier representation requires.
	ShapeBeta float64
	// MTBFHours is the mean time between failures of one disk.
	MTBFHours float64
	// ReplaceHours is the mean replacement/rebuild time.
	ReplaceHours float64
	// ErlangReplaceStages, when >= 2, draws the replacement time from an
	// Erlang with this many exponential stages and mean ReplaceHours — the
	// multi-stage swap-and-rebuild process, with variance between the
	// deterministic default and the fully exponential form. It takes
	// precedence over ExponentialReplace. The tier family is then not
	// lumpable (the per-replica delay is non-exponential), but the verdict
	// reports the exact phase-type remedy san.ExpandPhases applies to the
	// flat form.
	ErlangReplaceStages int
	// ExponentialReplace draws the replacement time from an exponential with
	// mean ReplaceHours instead of the deterministic default. Required (with
	// ShapeBeta 1) for the lumped tier representation, and the regime the
	// closed-form TierUnavailabilityExponential baseline is exact in.
	ExponentialReplace bool
	// CapacityGB is the per-disk capacity used for usable-space accounting.
	CapacityGB float64
}

// replaceDist returns the replacement-time distribution.
func (d DiskConfig) replaceDist() (dist.Distribution, error) {
	if d.ErlangReplaceStages >= 2 {
		return dist.NewErlang(d.ErlangReplaceStages, float64(d.ErlangReplaceStages)/d.ReplaceHours)
	}
	if d.ExponentialReplace {
		return dist.NewExponentialFromMean(d.ReplaceHours)
	}
	return dist.NewDeterministic(d.ReplaceHours)
}

// AFR returns the annualized failure rate fraction implied by MTBFHours.
func (d DiskConfig) AFR() float64 { return dist.HoursPerYear / d.MTBFHours }

// Validate checks the disk parameters.
func (d DiskConfig) Validate() error {
	if !(d.ShapeBeta > 0) || !(d.MTBFHours > 0) || !(d.ReplaceHours > 0) || !(d.CapacityGB > 0) {
		return fmt.Errorf("%w: disk %+v", ErrBadConfig, d)
	}
	if d.ErlangReplaceStages < 0 || d.ErlangReplaceStages == 1 {
		return fmt.Errorf("%w: ErlangReplaceStages must be 0 (off) or >= 2, got %d", ErrBadConfig, d.ErlangReplaceStages)
	}
	return nil
}

// ControllerConfig describes one RAID controller of a DDN unit. Controllers
// are deployed as fail-over pairs; the unit is unavailable only when both
// members are down.
type ControllerConfig struct {
	// MTBFHours is the mean time between hardware failures of one
	// controller (720/1.5 = 480 h for the paper's 1-2 per month).
	MTBFHours float64
	// RepairLoHours and RepairHiHours bound the uniform repair time.
	RepairLoHours float64
	RepairHiHours float64
	// ExponentialRepair draws the repair time from an exponential matching
	// the uniform window's mean instead of the uniform itself. Required for
	// the lumped controller-pair representation (memorylessness).
	ExponentialRepair bool
}

// repairDist returns the repair-time distribution.
func (c ControllerConfig) repairDist() (dist.Distribution, error) {
	if c.ExponentialRepair {
		return dist.NewExponentialFromMean(c.RepairLoHours + (c.RepairHiHours-c.RepairLoHours)/2)
	}
	return dist.NewUniform(c.RepairLoHours, c.RepairHiHours)
}

// Validate checks the controller parameters.
func (c ControllerConfig) Validate() error {
	if !(c.MTBFHours > 0) || !(c.RepairLoHours > 0) || c.RepairHiHours < c.RepairLoHours {
		return fmt.Errorf("%w: controller %+v", ErrBadConfig, c)
	}
	return nil
}

// StorageConfig describes the full storage subsystem: a number of DDN units,
// each with redundant controllers and a set of RAID tiers.
type StorageConfig struct {
	DDNUnits    int
	TiersPerDDN int
	Geometry    TierGeometry
	Disk        DiskConfig
	Controller  ControllerConfig

	// Lumped opts the builder into the counted (lumped) representation for
	// every replicated family whose distributions are exponential: identical
	// controller pairs collapse to per-state counts across all DDN units,
	// and identical tiers collapse to a population over failed-disk counts.
	// Families that are not memoryless (Weibull-aged disks, uniform repairs,
	// crew-capped replacement) keep their exact flat expansion; see
	// LumpsControllers and LumpsTiers for the per-family conditions.
	Lumped bool

	// RepairCrews, when positive, caps the number of concurrent disk
	// replacements across all DDN units: a failed disk waits for one of the
	// shared crew tokens before its replacement clock starts. Zero means
	// unlimited (every disk is replaced independently, the paper's
	// assumption).
	RepairCrews int
}

// controllerVerdict derives the controller-pair lumpability from the
// distributions BuildStorage actually draws from (Lumped left false; the
// exported accessors fill it in).
func (c StorageConfig) controllerVerdict() san.LumpabilityVerdict {
	life, err := dist.NewExponentialFromMean(c.Controller.MTBFHours)
	delays := []san.NamedDelay{{Label: "controller_lifetime", Delay: life}}
	if err != nil {
		delays[0].Delay = nil
	}
	repair, err := c.Controller.repairDist()
	if err != nil {
		repair = nil
	}
	delays = append(delays, san.NamedDelay{Label: "controller_repair", Delay: repair})
	return san.DeriveLumpability("controller_pairs", c.DDNUnits, false, delays)
}

// tierVerdict derives the RAID-tier lumpability from the disk distributions
// plus the shared-crew coupling (Lumped left false; the exported accessors
// fill it in).
func (c StorageConfig) tierVerdict() san.LumpabilityVerdict {
	life, err := dist.NewWeibullFromMTBF(c.Disk.ShapeBeta, c.Disk.MTBFHours)
	delays := []san.NamedDelay{{Label: "disk_lifetime", Delay: life}}
	if err != nil {
		delays[0].Delay = nil
	}
	replace, err := c.Disk.replaceDist()
	if err != nil {
		replace = nil
	}
	delays = append(delays, san.NamedDelay{Label: "disk_replace", Delay: replace})
	var structural []string
	if c.RepairCrews > 0 {
		structural = append(structural,
			fmt.Sprintf("%s: %d shared repair crews couple tiers across DDN units", san.ReasonCrewCoupling, c.RepairCrews))
	}
	return san.DeriveLumpability("raid_tiers", c.DDNUnits*c.TiersPerDDN, false, delays, structural...)
}

// ControllerLumpability returns the derived lumpability verdict of the
// controller-pair family, with Lumped reflecting the representation
// BuildStorage would choose for this configuration.
func (c StorageConfig) ControllerLumpability() san.LumpabilityVerdict {
	v := c.controllerVerdict()
	v.Lumped = c.Lumped && v.Lumpable
	return v
}

// TierLumpability returns the derived lumpability verdict of the RAID-tier
// family, with Lumped reflecting the representation BuildStorage would
// choose for this configuration.
func (c StorageConfig) TierLumpability() san.LumpabilityVerdict {
	v := c.tierVerdict()
	v.Lumped = c.Lumped && v.Lumpable
	return v
}

// LumpsControllers reports whether BuildStorage will use the lumped
// controller-pair representation: opted in, and the derived verdict admits
// it (exponential repairs; lifetimes are exponential by construction).
func (c StorageConfig) LumpsControllers() bool {
	return c.Lumped && c.controllerVerdict().Lumpable
}

// LumpsTiers reports whether BuildStorage will use the lumped tier
// representation: opted in, and the derived verdict admits it — exponential
// disk lifetimes (shape 1) and replacements, and no shared-crew cap (a
// global crew couples tiers, which breaks the per-tier replica symmetry).
func (c StorageConfig) LumpsTiers() bool {
	return c.Lumped && c.tierVerdict().Lumpable
}

// DefaultDisk returns the ABE disk configuration.
func DefaultDisk() DiskConfig {
	return DiskConfig{
		ShapeBeta:    DefaultDiskShape,
		MTBFHours:    DefaultDiskMTBFHours,
		ReplaceHours: DefaultReplaceHours,
		CapacityGB:   DefaultDiskCapacityGB,
	}
}

// DefaultController returns the ABE controller configuration.
func DefaultController() ControllerConfig {
	return ControllerConfig{
		MTBFHours:     DefaultControllerMTBFHours,
		RepairLoHours: DefaultControllerRepairLoHours,
		RepairHiHours: DefaultControllerRepairHiHours,
	}
}

// ABEStorage returns the storage configuration of the ABE scratch partition:
// 2 S2A9550 units, 24 (8+2) tiers each, 480 disks, 96 TB usable.
func ABEStorage() StorageConfig {
	return StorageConfig{
		DDNUnits:    2,
		TiersPerDDN: DefaultTiersPerDDN,
		Geometry:    TierGeometry{Data: DefaultDataDisks, Parity: DefaultParityDisks},
		Disk:        DefaultDisk(),
		Controller:  DefaultController(),
	}
}

// Validate checks the whole storage configuration.
func (c StorageConfig) Validate() error {
	if c.DDNUnits < 1 || c.TiersPerDDN < 1 {
		return fmt.Errorf("%w: %d DDN units x %d tiers", ErrBadConfig, c.DDNUnits, c.TiersPerDDN)
	}
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if err := c.Disk.Validate(); err != nil {
		return err
	}
	if c.RepairCrews < 0 {
		return fmt.Errorf("%w: negative repair crews %d", ErrBadConfig, c.RepairCrews)
	}
	return c.Controller.Validate()
}

// TotalTiers returns the number of RAID tiers in the subsystem.
func (c StorageConfig) TotalTiers() int { return c.DDNUnits * c.TiersPerDDN }

// TotalDisks returns the number of disks in the subsystem.
func (c StorageConfig) TotalDisks() int { return c.TotalTiers() * c.Geometry.Disks() }

// UsableTB returns the usable capacity in terabytes (data disks only).
func (c StorageConfig) UsableTB() float64 {
	return float64(c.TotalTiers()*c.Geometry.Data) * c.Disk.CapacityGB / 1000.0
}

// ScaledToDisks returns a copy of the configuration with the number of DDN
// units chosen so the total disk count is at least disks (keeping the tier
// geometry and tiers-per-DDN fixed). This is how the Figure 3 sweep scales
// the ABE system.
func (c StorageConfig) ScaledToDisks(disks int) (StorageConfig, error) {
	if disks < 1 {
		return StorageConfig{}, fmt.Errorf("%w: target disk count %d", ErrBadConfig, disks)
	}
	perDDN := c.TiersPerDDN * c.Geometry.Disks()
	units := (disks + perDDN - 1) / perDDN
	out := c
	out.DDNUnits = units
	return out, nil
}

// ScaledToUsableTB returns a copy of the configuration scaled (by adding DDN
// units and growing per-disk capacity) to reach the target usable capacity,
// assuming the given annual disk-capacity growth over years. This mirrors
// the Figure 2 x-axis, which scales the ABE system by storage size.
func (c StorageConfig) ScaledToUsableTB(targetTB, annualCapacityGrowth float64, years float64) (StorageConfig, error) {
	if !(targetTB > 0) {
		return StorageConfig{}, fmt.Errorf("%w: target capacity %v TB", ErrBadConfig, targetTB)
	}
	out := c
	out.Disk.CapacityGB = c.Disk.CapacityGB * math.Pow(1+annualCapacityGrowth, years)
	perDDNTB := float64(c.TiersPerDDN*c.Geometry.Data) * out.Disk.CapacityGB / 1000.0
	units := int(math.Ceil(targetTB / perDDNTB))
	if units < 1 {
		units = 1
	}
	out.DDNUnits = units
	return out, nil
}

// ---------------------------------------------------------------------------
// SAN submodel builder
// ---------------------------------------------------------------------------

// StoragePlaces exposes the shared state of the storage submodel to the rest
// of the composed CFS model and to reward variables.
type StoragePlaces struct {
	// TiersFailed counts RAID tiers currently in the data-unavailable state
	// (more than Parity disks concurrently failed).
	TiersFailed *san.Place
	// DDNFailed counts DDN units whose controller fail-over pair is entirely
	// down.
	DDNFailed *san.Place
	// DisksDown counts disks currently awaiting replacement.
	DisksDown *san.Place
	// ReplaceActivities lists the names of every disk-replacement activity,
	// for completion-count rewards (disk replacement rate).
	ReplaceActivities []string
	// TierFailedDisks lists the per-tier concurrently-failed-disk places in
	// build order (flat tiers only; empty when tiers are lumped). The
	// rare-event experiments derive their importance function (maximum
	// concurrent failures in any tier) from these.
	TierFailedDisks []*san.Place
	// RepairCrews is the shared crew-token place when Config.RepairCrews > 0
	// (nil otherwise): its marking is the number of idle crews.
	RepairCrews *san.Place
	// LumpedTiers holds the counted tier population when the tiers were
	// built in lumped form (nil otherwise): state "f<k>" counts tiers with
	// exactly k disks concurrently failed.
	LumpedTiers *san.LumpedPlaces
	// LumpedControllers holds the counted controller-pair population when
	// the controllers were built in lumped form (nil otherwise): state
	// "c<k>" counts DDN units with exactly k controllers down.
	LumpedControllers *san.LumpedPlaces
	// Config echoes the configuration the submodel was built from.
	Config StorageConfig
}

// Operational reports whether the storage subsystem is fully operational in
// marking m: no failed tier and no DDN unit without a working controller.
func (sp *StoragePlaces) Operational(m san.MarkingReader) bool {
	return m.Tokens(sp.TiersFailed) == 0 && m.Tokens(sp.DDNFailed) == 0
}

// BuildStorage adds the storage subsystem (all DDN units, controllers,
// tiers, and disks) to model under the given namespace prefix and returns
// the shared places. It mirrors the DDN_UNITS / RAID_CONTROLLER /
// RAID6_TIERS composition of the paper's Figure 1. With cfg.Lumped, each
// replicated family whose distributions are exponential is built in lumped
// (counted) form instead of being expanded per component — exact under
// strong lumpability, and orders of magnitude smaller at petascale.
func BuildStorage(m *san.Model, prefix string, cfg StorageConfig) (*StoragePlaces, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sp := &StoragePlaces{Config: cfg}
	// Declare the replicated families with their derived verdicts so
	// san.Analyze reports why each family was (or was not) lumped.
	ctrlFam := cfg.ControllerLumpability()
	ctrlFam.Family = san.Qualify(prefix, "controller_pairs")
	m.DeclareFamily(ctrlFam)
	tierFam := cfg.TierLumpability()
	tierFam.Family = san.Qualify(prefix, "tiers")
	m.DeclareFamily(tierFam)
	var err error
	sp.TiersFailed, err = m.AddPlaceErr(san.Qualify(prefix, "tiers_failed"), 0)
	if err != nil {
		return nil, err
	}
	sp.DDNFailed, err = m.AddPlaceErr(san.Qualify(prefix, "ddn_failed"), 0)
	if err != nil {
		return nil, err
	}
	sp.DisksDown, err = m.AddPlaceErr(san.Qualify(prefix, "disks_down"), 0)
	if err != nil {
		return nil, err
	}
	// DisksDown feeds consumers outside the compiled model — the rare-event
	// importance/level functions and backlog monitors read it directly, no
	// in-model gate or reward does. Declaring the reader keeps san.Analyze
	// from flagging the counter as unread state.
	m.DeclareExternalReader("rare-event importance / backlog monitors", sp.DisksDown)
	if cfg.RepairCrews > 0 {
		sp.RepairCrews, err = m.AddPlaceErr(san.Qualify(prefix, "repair_crews"), cfg.RepairCrews)
		if err != nil {
			return nil, err
		}
	}

	diskLife, err := dist.NewWeibullFromMTBF(cfg.Disk.ShapeBeta, cfg.Disk.MTBFHours)
	if err != nil {
		return nil, err
	}
	diskReplace, err := cfg.Disk.replaceDist()
	if err != nil {
		return nil, err
	}
	ctrlLife, err := dist.NewExponentialFromMean(cfg.Controller.MTBFHours)
	if err != nil {
		return nil, err
	}
	ctrlRepair, err := cfg.Controller.repairDist()
	if err != nil {
		return nil, err
	}

	lumpCtrl := cfg.LumpsControllers()
	lumpTiers := cfg.LumpsTiers()
	if lumpCtrl {
		class, err := controllerPairClass(1/cfg.Controller.MTBFHours, 1/ctrlRepair.Mean(), sp)
		if err != nil {
			return nil, err
		}
		sp.LumpedControllers, err = san.ReplicateLumped(m, san.Qualify(prefix, "controller_pairs"), cfg.DDNUnits, class)
		if err != nil {
			return nil, err
		}
	}
	if lumpTiers {
		class, names, err := tierClass(cfg.Geometry, 1/cfg.Disk.MTBFHours, 1/cfg.Disk.ReplaceHours, sp)
		if err != nil {
			return nil, err
		}
		sp.LumpedTiers, err = san.ReplicateLumped(m, san.Qualify(prefix, "tiers"), cfg.TotalTiers(), class)
		if err != nil {
			return nil, err
		}
		for _, name := range names {
			sp.ReplaceActivities = append(sp.ReplaceActivities, sp.LumpedTiers.ActivityName(name))
		}
	}
	if !lumpCtrl || !lumpTiers {
		err = san.Replicate(m, san.Qualify(prefix, "ddn"), cfg.DDNUnits, func(m *san.Model, ddnPrefix string, _ int) error {
			if !lumpCtrl {
				if err := buildControllerPair(m, ddnPrefix, ctrlLife, ctrlRepair, sp); err != nil {
					return err
				}
			}
			if lumpTiers {
				return nil
			}
			return san.Replicate(m, san.Qualify(ddnPrefix, "tier"), cfg.TiersPerDDN, func(m *san.Model, tierPrefix string, _ int) error {
				return buildTier(m, tierPrefix, cfg.Geometry, diskLife, diskReplace, sp)
			})
		})
		if err != nil {
			return nil, err
		}
	}
	return sp, nil
}

// controllerPairClass is the replica class of one DDN unit's redundant
// controller pair for ReplicateLumped: local state c<k> is "k controllers
// down", failures arrive per up controller, repairs proceed per down
// controller, and the DDNFailed counter tracks entries into / exits from the
// both-down state — the lumped equivalent of buildControllerPair's gates.
func controllerPairClass(lambda, mu float64, sp *StoragePlaces) (san.ReplicaClass, error) {
	class := san.ReplicaClass{States: []string{"c0", "c1", "c2"}, Initial: "c0"}
	add := func(name, from, to string, rate float64, effect san.GateFunc) error {
		d, err := dist.NewExponentialFromRate(rate)
		if err != nil {
			return err
		}
		class.Transitions = append(class.Transitions, san.ReplicaTransition{
			Name: name, From: from, To: to, Delay: d, Effect: effect,
		})
		return nil
	}
	steps := []struct {
		name, from, to string
		rate           float64
		effect         san.GateFunc
	}{
		{"fail_first", "c0", "c1", 2 * lambda, nil},
		{"fail_second", "c1", "c2", lambda, func(mw san.MarkingWriter) { mw.Add(sp.DDNFailed, 1) }},
		{"repair_second", "c2", "c1", 2 * mu, func(mw san.MarkingWriter) { mw.Add(sp.DDNFailed, -1) }},
		{"repair_first", "c1", "c0", mu, nil},
	}
	for _, s := range steps {
		if err := add(s.name, s.from, s.to, s.rate, s.effect); err != nil {
			return san.ReplicaClass{}, err
		}
	}
	return class, nil
}

// tierClass is the replica class of one RAID (m+k) tier with exponential
// disk lifetimes and replacements for ReplicateLumped: local state f<k> is
// "k disks concurrently failed", a birth-death chain with failure rate
// (disks-k) x lambda and replacement rate k x mu per tier. Effects maintain
// the shared DisksDown counter and the TiersFailed counter at the
// parity-boundary crossings, mirroring buildTier's gates. The returned
// transition names of the replacement steps feed the disk-replacement-count
// reward (each aggregate completion is exactly one disk replaced).
func tierClass(g TierGeometry, lambda, mu float64, sp *StoragePlaces) (san.ReplicaClass, []string, error) {
	disks := g.Disks()
	parity := g.Parity
	class := san.ReplicaClass{Initial: "f0"}
	for k := 0; k <= disks; k++ {
		class.States = append(class.States, fmt.Sprintf("f%d", k))
	}
	var replaceNames []string
	for k := 0; k < disks; k++ {
		fail, err := dist.NewExponentialFromRate(float64(disks-k) * lambda)
		if err != nil {
			return san.ReplicaClass{}, nil, err
		}
		tierFails := k+1 == parity+1
		class.Transitions = append(class.Transitions, san.ReplicaTransition{
			Name: fmt.Sprintf("fail_from_%d", k),
			From: fmt.Sprintf("f%d", k), To: fmt.Sprintf("f%d", k+1),
			Delay: fail,
			Effect: func(mw san.MarkingWriter) {
				mw.Add(sp.DisksDown, 1)
				if tierFails {
					mw.Add(sp.TiersFailed, 1)
				}
			},
		})
	}
	for k := 1; k <= disks; k++ {
		replace, err := dist.NewExponentialFromRate(float64(k) * mu)
		if err != nil {
			return san.ReplicaClass{}, nil, err
		}
		tierRecovers := k == parity+1
		name := fmt.Sprintf("replace_from_%d", k)
		class.Transitions = append(class.Transitions, san.ReplicaTransition{
			Name: name,
			From: fmt.Sprintf("f%d", k), To: fmt.Sprintf("f%d", k-1),
			Delay: replace,
			Effect: func(mw san.MarkingWriter) {
				if tierRecovers {
					mw.Add(sp.TiersFailed, -1)
				}
				mw.Add(sp.DisksDown, -1)
			},
		})
		replaceNames = append(replaceNames, name)
	}
	return class, replaceNames, nil
}

// buildControllerPair models the redundant RAID controllers of one DDN unit.
// The unit becomes unavailable only when both controllers are down, matching
// the paper's fail-over-pair assumption.
func buildControllerPair(m *san.Model, prefix string, life, repair dist.Distribution, sp *StoragePlaces) error {
	pairDown, err := m.AddPlaceErr(san.Qualify(prefix, "controllers_down"), 0)
	if err != nil {
		return err
	}
	return san.Replicate(m, san.Qualify(prefix, "controller"), 2, func(m *san.Model, cPrefix string, _ int) error {
		up, err := m.AddPlaceErr(san.Qualify(cPrefix, "up"), 1)
		if err != nil {
			return err
		}
		down, err := m.AddPlaceErr(san.Qualify(cPrefix, "down"), 0)
		if err != nil {
			return err
		}
		m.AddTimedActivity(san.Qualify(cPrefix, "fail"), life).
			AddInputArc(up, 1).
			AddOutputArc(down, 1).
			AddOutputGate(&san.OutputGate{
				Name: san.Qualify(cPrefix, "fail_og"),
				Transform: func(mw san.MarkingWriter) {
					mw.Add(pairDown, 1)
					if mw.Tokens(pairDown) == 2 {
						mw.Add(sp.DDNFailed, 1)
					}
				},
			})
		m.AddTimedActivity(san.Qualify(cPrefix, "repair"), repair).
			AddInputArc(down, 1).
			AddOutputArc(up, 1).
			AddOutputGate(&san.OutputGate{
				Name: san.Qualify(cPrefix, "repair_og"),
				Transform: func(mw san.MarkingWriter) {
					if mw.Tokens(pairDown) == 2 {
						mw.Add(sp.DDNFailed, -1)
					}
					mw.Add(pairDown, -1)
				},
			})
		return nil
	})
}

// buildTier models one RAID (m+k) tier: each disk fails with a Weibull
// lifetime and is replaced (good-as-new) after the replacement delay. The
// tier is considered failed while more than Parity disks are concurrently
// down. When the storage places carry a shared crew place, a failed disk
// must claim a crew token before its replacement clock starts: an
// instantaneous start activity guards on (and consumes) the crew, and the
// timed replacement returns it — the SAN encoding of a bounded repair
// queue. Waiting disks are served in model order at each crew release.
func buildTier(m *san.Model, prefix string, g TierGeometry, life, replace dist.Distribution, sp *StoragePlaces) error {
	failedDisks, err := m.AddPlaceErr(san.Qualify(prefix, "failed_disks"), 0)
	if err != nil {
		return err
	}
	sp.TierFailedDisks = append(sp.TierFailedDisks, failedDisks)
	parity := g.Parity
	crews := sp.RepairCrews
	return san.Replicate(m, san.Qualify(prefix, "disk"), g.Disks(), func(m *san.Model, dPrefix string, _ int) error {
		up, err := m.AddPlaceErr(san.Qualify(dPrefix, "up"), 1)
		if err != nil {
			return err
		}
		down, err := m.AddPlaceErr(san.Qualify(dPrefix, "down"), 0)
		if err != nil {
			return err
		}
		m.AddTimedActivity(san.Qualify(dPrefix, "fail"), life).
			AddInputArc(up, 1).
			AddOutputArc(down, 1).
			AddOutputGate(&san.OutputGate{
				Name: san.Qualify(dPrefix, "fail_og"),
				Transform: func(mw san.MarkingWriter) {
					mw.Add(sp.DisksDown, 1)
					mw.Add(failedDisks, 1)
					if mw.Tokens(failedDisks) == parity+1 {
						mw.Add(sp.TiersFailed, 1)
					}
				},
			})
		// The place the timed replacement draws from: the down disk directly
		// when crews are unlimited, or a repairing place fed by the
		// crew-claiming start activity when they are capped.
		replaceFrom := down
		if crews != nil {
			repairing, err := m.AddPlaceErr(san.Qualify(dPrefix, "repairing"), 0)
			if err != nil {
				return err
			}
			m.AddInstantaneousActivity(san.Qualify(dPrefix, "start_replace")).
				AddInputArc(down, 1).
				AddInputArc(crews, 1).
				AddOutputArc(repairing, 1)
			replaceFrom = repairing
		}
		replaceName := san.Qualify(dPrefix, "replace")
		act := m.AddTimedActivity(replaceName, replace).
			AddInputArc(replaceFrom, 1).
			AddOutputArc(up, 1)
		if crews != nil {
			act.AddOutputArc(crews, 1)
		}
		act.AddOutputGate(&san.OutputGate{
			Name: san.Qualify(dPrefix, "replace_og"),
			Transform: func(mw san.MarkingWriter) {
				if mw.Tokens(failedDisks) == parity+1 {
					mw.Add(sp.TiersFailed, -1)
				}
				mw.Add(failedDisks, -1)
				mw.Add(sp.DisksDown, -1)
			},
		})
		sp.ReplaceActivities = append(sp.ReplaceActivities, replaceName)
		return nil
	})
}

// ---------------------------------------------------------------------------
// Reward variables
// ---------------------------------------------------------------------------

// AvailabilityReward returns the time-averaged storage availability reward
// (the measure plotted in Figure 2).
func (sp *StoragePlaces) AvailabilityReward(name string) san.RewardVariable {
	return san.UpFraction(name, sp.Operational)
}

// ReplacementCountReward returns the accumulated count of disk replacements
// over the mission (convert to per-week with 168/mission — Figure 3).
func (sp *StoragePlaces) ReplacementCountReward(name string) san.RewardVariable {
	return san.CompletionCount(name, sp.ReplaceActivities...)
}

// MaxFailedDisksImportance returns the importance function used by the
// rare-event splitting experiments: the maximum number of concurrently
// failed disks in any single tier. Data loss — some tier with more than
// Parity disks down — corresponds to importance >= Parity+1, so the natural
// splitting levels are 1, 2, ..., Parity+1. For lumped tiers the maximum is
// read off the per-count populations: the highest k whose f<k> counting
// place is occupied.
func (sp *StoragePlaces) MaxFailedDisksImportance() san.ImportanceFunc {
	if sp.LumpedTiers != nil {
		states := sp.LumpedTiers.StatePlaces()
		return func(m san.MarkingReader) float64 {
			for k := len(states) - 1; k >= 1; k-- {
				if m.Tokens(states[k]) > 0 {
					return float64(k)
				}
			}
			return 0
		}
	}
	places := sp.TierFailedDisks
	return func(m san.MarkingReader) float64 {
		worst := 0
		for _, p := range places {
			if n := m.Tokens(p); n > worst {
				worst = n
			}
		}
		return float64(worst)
	}
}

// DataLossLevels returns the splitting levels for the configuration's
// geometry: one level per additional concurrent failure, up to the first
// data-losing count Parity+1.
func (c StorageConfig) DataLossLevels() []float64 {
	levels := make([]float64, c.Geometry.Parity+1)
	for i := range levels {
		levels[i] = float64(i + 1)
	}
	return levels
}

// ---------------------------------------------------------------------------
// Analytic approximations
// ---------------------------------------------------------------------------

// TierUnavailabilityExponential returns the steady-state unavailability of a
// single (m+k) tier under exponential disk lifetimes (MTBF hours) and
// exponential replacement (MTTR hours) with independent per-disk repair.
// It solves the birth-death chain on the number of failed disks; the tier is
// unavailable in states with more than Parity failures. This is the baseline
// the SAN simulation is cross-checked against for shape=1 disks.
func TierUnavailabilityExponential(g TierGeometry, mtbfHours, mttrHours float64) (float64, error) {
	if err := g.Validate(); err != nil {
		return 0, err
	}
	if !(mtbfHours > 0) || !(mttrHours > 0) {
		return 0, fmt.Errorf("%w: mtbf %v mttr %v", ErrBadConfig, mtbfHours, mttrHours)
	}
	n := g.Disks()
	lambda := 1 / mtbfHours
	mu := 1 / mttrHours
	// Unnormalized steady-state probabilities pi_i via detailed balance:
	// pi_{i+1} = pi_i * (n-i)*lambda / ((i+1)*mu).
	pi := make([]float64, n+1)
	pi[0] = 1
	for i := 0; i < n; i++ {
		pi[i+1] = pi[i] * float64(n-i) * lambda / (float64(i+1) * mu)
	}
	var norm, unavail float64
	for i, p := range pi {
		norm += p
		if i > g.Parity {
			unavail += p
		}
	}
	return unavail / norm, nil
}

// StorageUnavailabilityExponential combines independent tier unavailability
// across all tiers of a configuration (ignoring controllers), assuming the
// subsystem is unavailable when any tier is unavailable.
func StorageUnavailabilityExponential(cfg StorageConfig, mttrHours float64) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	u, err := TierUnavailabilityExponential(cfg.Geometry, cfg.Disk.MTBFHours, mttrHours)
	if err != nil {
		return 0, err
	}
	avail := math.Pow(1-u, float64(cfg.TotalTiers()))
	return 1 - avail, nil
}

// ExpectedReplacementsPerWeek returns the long-run expected number of disk
// replacements per week for the configuration: each disk alternates between
// a lifetime with mean MTBF and a replacement of ReplaceHours, so its
// renewal rate is 1/(MTBF+ReplaceHours).
func ExpectedReplacementsPerWeek(cfg StorageConfig) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	perDisk := dist.HoursPerWeek / (cfg.Disk.MTBFHours + cfg.Disk.ReplaceHours)
	return perDisk * float64(cfg.TotalDisks()), nil
}
