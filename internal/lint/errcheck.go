package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// errCheck flags discarded error returns in non-test code: bare call
// statements whose result includes an error, and blank-identifier
// assignments of an error result. Formatting to an in-memory sink (fmt
// printers, strings.Builder, bytes.Buffer) cannot fail and is allowed.
func errCheck(p *Package) []Finding {
	var findings []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.DeferStmt, *ast.GoStmt:
				// A deferred/concurrent call's result is unobtainable;
				// flagging it would only force noise like `defer func() {
				// _ = f() }()`.
				return false
			case *ast.ExprStmt:
				call, ok := stmt.X.(*ast.CallExpr)
				if !ok || !returnsError(p.Info, call) || allowlisted(p.Info, call) {
					return true
				}
				findings = append(findings, Finding{
					Pos:     p.Fset.Position(call.Pos()),
					Rule:    "errcheck",
					Message: "error return discarded; handle it or make the impossibility explicit",
				})
			case *ast.AssignStmt:
				findings = append(findings, blankErrAssigns(p, stmt)...)
			}
			return true
		})
	}
	return findings
}

// blankErrAssigns flags `x, _ := f()` where the blank slot is f's error.
func blankErrAssigns(p *Package, stmt *ast.AssignStmt) []Finding {
	if len(stmt.Rhs) != 1 {
		return nil
	}
	call, ok := stmt.Rhs[0].(*ast.CallExpr)
	if !ok || allowlisted(p.Info, call) {
		return nil
	}
	tv, ok := p.Info.Types[call]
	if !ok {
		return nil
	}
	tuple, ok := tv.Type.(*types.Tuple)
	if !ok || tuple.Len() != len(stmt.Lhs) {
		return nil
	}
	var findings []Finding
	for i, lhs := range stmt.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" || !isErrorType(tuple.At(i).Type()) {
			continue
		}
		findings = append(findings, Finding{
			Pos:     p.Fset.Position(id.Pos()),
			Rule:    "errcheck",
			Message: "error result assigned to blank identifier; handle it or make the impossibility explicit",
		})
	}
	return findings
}

// returnsError reports whether the call's result is or includes an error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// allowlisted reports calls whose error return is unconditionally nil: the
// fmt print family and writes to in-memory string/byte sinks.
func allowlisted(info *types.Info, call *ast.CallExpr) bool {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil {
		return false
	}
	if f.Pkg().Path() == "fmt" && (strings.HasPrefix(f.Name(), "Print") || strings.HasPrefix(f.Name(), "Fprint")) {
		return true
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}
