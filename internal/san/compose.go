package san

import (
	"fmt"
	"strings"
)

// SubmodelBuilder adds the places and activities of one atomic submodel to
// the composed model m. Every name it creates must be namespaced with prefix
// (use Qualify). Shared state is expressed by capturing *Place values of the
// enclosing composition scope, mirroring the state-sharing of a Möbius Join.
type SubmodelBuilder func(m *Model, prefix string) error

// Qualify joins a namespace prefix and a local name into a hierarchical
// place/activity name.
func Qualify(prefix, name string) string {
	if prefix == "" {
		return name
	}
	return prefix + "/" + name
}

// Join composes submodels under a common namespace. Each builder receives
// the same model and a prefix of the form "<prefix>/<label>"; places created
// outside the builders (in the caller's scope) and captured by several
// builders play the role of the shared state variables of a Möbius Join
// node.
func Join(m *Model, prefix string, subs map[string]SubmodelBuilder) error {
	// Deterministic order: sort labels so composition is reproducible.
	labels := make([]string, 0, len(subs))
	for label := range subs {
		labels = append(labels, label)
	}
	sortStrings(labels)
	for _, label := range labels {
		if err := subs[label](m, Qualify(prefix, label)); err != nil {
			return fmt.Errorf("san: join %q submodel %q: %w", prefix, label, err)
		}
	}
	return nil
}

// ReplicateBuilder builds instance index of a replicated submodel.
type ReplicateBuilder func(m *Model, prefix string, index int) error

// Replicate composes n identical copies of a submodel, namespaced
// "<prefix>[i]". As with Join, shared places are the ones the builder
// captures from the enclosing scope rather than creates per instance.
func Replicate(m *Model, prefix string, n int, build ReplicateBuilder) error {
	if n < 0 {
		return fmt.Errorf("san: replicate %q with negative count %d", prefix, n)
	}
	for i := 0; i < n; i++ {
		if err := build(m, fmt.Sprintf("%s[%d]", prefix, i), i); err != nil {
			return fmt.Errorf("san: replicate %q instance %d: %w", prefix, i, err)
		}
	}
	return nil
}

// sortStrings is a tiny insertion sort to avoid importing sort for a handful
// of labels in the hot path of model construction.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// CompositionNode describes one node of a replicate/join composition tree,
// used to render the model structure (the paper's Figure 1).
type CompositionNode struct {
	Label    string
	Kind     string // "join", "replicate", "atomic"
	Count    int    // meaningful for replicate nodes
	Children []*CompositionNode
	// Annotation, when non-empty, is rendered after the node header — model
	// builders use it to mark lumped replicate nodes and to attach the
	// model_stats view to the root.
	Annotation string
}

// Annotate sets the node annotation and returns the node for chaining.
func (n *CompositionNode) Annotate(a string) *CompositionNode {
	n.Annotation = a
	return n
}

// NewJoinNode returns a join composition node.
func NewJoinNode(label string, children ...*CompositionNode) *CompositionNode {
	return &CompositionNode{Label: label, Kind: "join", Children: children}
}

// NewReplicateNode returns a replicate composition node over a single child.
func NewReplicateNode(label string, count int, child *CompositionNode) *CompositionNode {
	return &CompositionNode{Label: label, Kind: "replicate", Count: count, Children: []*CompositionNode{child}}
}

// NewAtomicNode returns a leaf node for an atomic SAN submodel.
func NewAtomicNode(label string) *CompositionNode {
	return &CompositionNode{Label: label, Kind: "atomic"}
}

// Render returns an indented textual rendering of the composition tree.
func (n *CompositionNode) Render() string {
	var b strings.Builder
	n.render(&b, 0)
	return b.String()
}

func (n *CompositionNode) render(b *strings.Builder, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	suffix := ""
	if n.Annotation != "" {
		suffix = " " + n.Annotation
	}
	switch n.Kind {
	case "replicate":
		fmt.Fprintf(b, "Replicate(%s, n=%d)%s\n", n.Label, n.Count, suffix)
	case "join":
		fmt.Fprintf(b, "Join(%s)%s\n", n.Label, suffix)
	default:
		fmt.Fprintf(b, "SAN(%s)%s\n", n.Label, suffix)
	}
	for _, c := range n.Children {
		c.render(b, depth+1)
	}
}

// Leaves returns the atomic submodel labels in depth-first order.
func (n *CompositionNode) Leaves() []string {
	if n.Kind == "atomic" {
		return []string{n.Label}
	}
	var out []string
	for _, c := range n.Children {
		out = append(out, c.Leaves()...)
	}
	return out
}
