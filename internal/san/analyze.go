package san

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/dist"
)

// ErrModelAnalysis reports a compiled model that failed strict structural
// analysis (CompileStrict): it contains a vanishing loop or a statically-dead
// activity.
var ErrModelAnalysis = errors.New("san: model failed structural analysis")

// Reason prefixes for lumpability verdicts. Every reason string produced by
// DelayLumpability or the model builders starts with one of these, so tests
// and reports can classify failures without parsing free text.
const (
	// ReasonNonExponential marks a transition whose delay distribution is not
	// memoryless (uniform, empirical, ...): the count x rate aggregation of
	// exact strong lumping does not apply.
	ReasonNonExponential = "non-exponential transition"
	// ReasonAgedState marks a component that carries age across the lumping
	// boundary: a Weibull lifetime with shape != 1 or a deterministic timer
	// (e.g. spare activation). Replicas with different ages are not
	// exchangeable, so the per-state counts are not a lumped chain.
	ReasonAgedState = "aged state"
	// ReasonCrewCoupling marks replicas coupled through a shared resource
	// (the repair-crew tokens): the coupling breaks the replica symmetry
	// that lumping counts on.
	ReasonCrewCoupling = "crew coupling"
)

// DelayLumpability classifies one delay distribution of a replicated family
// for exact strong lumping. It returns "" when the delay is memoryless
// (exponential, or Weibull with shape exactly 1) and a reason string —
// prefixed with ReasonAgedState or ReasonNonExponential — otherwise.
func DelayLumpability(label string, d dist.Distribution) string {
	switch v := d.(type) {
	case dist.Exponential:
		return ""
	case dist.Weibull:
		if v.Shape() == 1 {
			return "" // shape-1 Weibull is the exponential
		}
		return fmt.Sprintf("%s: %s %s retains component age", ReasonAgedState, label, dist.Describe(d))
	case dist.Deterministic:
		return fmt.Sprintf("%s: %s %s is a timer, not memoryless", ReasonAgedState, label, dist.Describe(d))
	case nil:
		return fmt.Sprintf("%s: %s has no delay distribution", ReasonNonExponential, label)
	default:
		// Gamma/Sum delays with an exact finite phase-type form are still
		// non-memoryless here (lumping and the CTMC tier need exponentials as
		// written), but the verdict names the remedy: ExpandPhases rewrites
		// them into that many exponential stages.
		if k, ok := PhaseExpandable(d); ok {
			return fmt.Sprintf("%s: %s %s (exactly expandable into %d exponential phases)",
				ReasonNonExponential, label, dist.Describe(d), k)
		}
		return fmt.Sprintf("%s: %s %s", ReasonNonExponential, label, dist.Describe(d))
	}
}

// NamedDelay labels one per-replica delay distribution of a family for
// verdict derivation. An ordered slice (not a map) so derived verdicts list
// reasons in a deterministic order.
type NamedDelay struct {
	Label string
	Delay dist.Distribution
}

// LumpabilityVerdict is the derived lumpability answer for one replicated
// family of a composed model, with the reasons lumping fails when it does.
type LumpabilityVerdict struct {
	// Family names the replicated family (e.g. "oss_pairs", "raid_tiers").
	Family string `json:"family"`
	// Count is the number of replicas in the family.
	Count int `json:"count"`
	// Lumped reports whether the model was actually built with the lumped
	// (counted) representation of this family.
	Lumped bool `json:"lumped"`
	// Lumpable reports whether exact strong lumping applies to the family.
	Lumpable bool `json:"lumpable"`
	// Reasons lists why lumping fails, each prefixed with one of the Reason*
	// constants. Empty when Lumpable.
	Reasons []string `json:"reasons,omitempty"`
}

// DeriveLumpability builds the verdict of one replicated family from its
// per-replica delay distributions plus structural failure reasons the caller
// derives from its configuration (e.g. crew coupling). It replaces
// hand-maintained boolean predicates: the verdict is false exactly when some
// delay is not memoryless or a structural reason is present.
func DeriveLumpability(family string, count int, lumped bool, delays []NamedDelay, structural ...string) LumpabilityVerdict {
	v := LumpabilityVerdict{Family: family, Count: count, Lumped: lumped, Lumpable: true}
	for _, nd := range delays {
		if r := DelayLumpability(nd.Label, nd.Delay); r != "" {
			v.Reasons = append(v.Reasons, r)
			v.Lumpable = false
		}
	}
	for _, s := range structural {
		if s != "" {
			v.Reasons = append(v.Reasons, s)
			v.Lumpable = false
		}
	}
	return v
}

// DeclareFamily records the lumpability verdict of a replicated family on
// the model, for Analyze to report. Model builders call it once per family
// at composition time (the layer that knows the replica count and the chosen
// representation).
func (m *Model) DeclareFamily(v LumpabilityVerdict) {
	m.families = append(m.families, v)
}

// Families returns the declared replicated-family verdicts in declaration
// order.
func (m *Model) Families() []LumpabilityVerdict {
	return append([]LumpabilityVerdict(nil), m.families...)
}

// VanishingLoop describes a set of instantaneous activities that can fire
// each other (or themselves) forever at one time instant — the structural
// defect that otherwise only surfaces at runtime as ErrUnstableModel.
type VanishingLoop struct {
	// Activities lists the activity names on the loop, sorted.
	Activities []string `json:"activities"`
	// Kind is "always-enabled" (no enabling inputs at all),
	// "self-sustaining" (the activity's own outputs keep it enabled), or
	// "cycle" (a token cycle through several instantaneous activities).
	Kind string `json:"kind"`
	// Definite reports whether the loop must fire forever whenever reached
	// (no input-gate predicate could break it). Non-definite loops are
	// possible vanishing loops the analysis cannot rule out.
	Definite bool `json:"definite"`
}

// DeadActivity describes an activity that can never fire because one of its
// input places can never hold enough tokens: the place's initial marking is
// below the arc multiplicity and no activity output arc or gate
// transformation ever adds tokens to it.
type DeadActivity struct {
	Activity string `json:"activity"`
	Place    string `json:"place"`
}

// AnalysisReport is the result of static structural analysis of a compiled
// model: the pre-flight checks the paper's Möbius workflow runs on the
// composed model before choosing a solver.
type AnalysisReport struct {
	// Model is the model name.
	Model string `json:"model"`
	// Places, Activities, and Instantaneous are model-size counters.
	Places        int `json:"places"`
	Activities    int `json:"activities"`
	Instantaneous int `json:"instantaneous"`
	// VanishingLoops lists instantaneous-activity loops (see VanishingLoop).
	VanishingLoops []VanishingLoop `json:"vanishing_loops,omitempty"`
	// DeadActivities lists activities that can never fire.
	DeadActivities []DeadActivity `json:"dead_activities,omitempty"`
	// UnreadPlaces lists places some activity or gate writes but nothing —
	// no enabling condition, gate, reward, case probability, delay function,
	// or declared external reader — ever reads: wasted state that inflates
	// the marking (and can block lumping) without influencing any measure.
	// Places kept for importance functions or external monitors are excused
	// by declaring the consumer with Model.DeclareExternalReader.
	UnreadPlaces []string `json:"unread_places,omitempty"`
	// ExternalReaders echoes the declared out-of-model readers whose reads
	// were folded into the analysis.
	ExternalReaders []ExternalReader `json:"external_readers,omitempty"`
	// Families are the declared replicated-family lumpability verdicts.
	Families []LumpabilityVerdict `json:"families,omitempty"`
	// Clean reports the strict-mode outcome: no vanishing loops and no dead
	// activities. Unread places are advisory and do not affect Clean.
	Clean bool `json:"clean"`
}

// probeMarking is the instrumented marking Analyze executes gate and reward
// closures against: it records every place read and written, tolerates
// negative token counts (optionally clamping at zero so decrement-then-test
// branches are reachable from a zero base), and never panics.
type probeMarking struct {
	tokens []int
	clamp  bool
	reads  []bool
	writes []bool
}

func (pm *probeMarking) Tokens(p *Place) int {
	if p == nil || p.index < 0 || p.index >= len(pm.tokens) {
		return 0
	}
	pm.reads[p.index] = true
	return pm.tokens[p.index]
}

func (pm *probeMarking) SetTokens(p *Place, n int) {
	if p == nil || p.index < 0 || p.index >= len(pm.tokens) {
		return
	}
	pm.writes[p.index] = true
	pm.tokens[p.index] = n
}

func (pm *probeMarking) Add(p *Place, delta int) {
	if p == nil || p.index < 0 || p.index >= len(pm.tokens) {
		return
	}
	pm.writes[p.index] = true
	pm.tokens[p.index] += delta
	if pm.clamp && pm.tokens[p.index] < 0 {
		pm.tokens[p.index] = 0
	}
}

// probeSet aggregates read/write discovery across several probe executions.
type probeSet struct {
	n      int
	reads  []bool
	writes []bool
	// opaque is set when a probed closure panicked: its effects are unknown,
	// so every place must be treated as both read and written.
	opaque bool
}

func newProbeSet(n int) *probeSet {
	return &probeSet{n: n, reads: make([]bool, n), writes: make([]bool, n)}
}

// baseMarkings returns the synthetic markings closures are probed under:
// all-zero, the initial marking, all-one, and all-two, each with and without
// clamping. Diverse bases improve branch coverage of conditional gate logic
// (e.g. "decrement, then act only when the count hits zero").
func baseMarkings(initial []int) [][]int {
	n := len(initial)
	uniform := func(v int) []int {
		out := make([]int, n)
		for i := range out {
			out[i] = v
		}
		return out
	}
	return [][]int{uniform(0), append([]int(nil), initial...), uniform(1), uniform(2)}
}

// probe runs fn against each base marking (with and without clamping) and
// folds the recorded reads and writes into ps. A panicking closure marks the
// whole set opaque.
func (ps *probeSet) probe(bases [][]int, fn func(pm *probeMarking)) {
	for _, base := range bases {
		for _, clamp := range []bool{false, true} {
			pm := &probeMarking{
				tokens: append([]int(nil), base...),
				clamp:  clamp,
				reads:  make([]bool, ps.n),
				writes: make([]bool, ps.n),
			}
			if !runProbe(pm, fn) {
				ps.opaque = true
				return
			}
			for i := range pm.reads {
				ps.reads[i] = ps.reads[i] || pm.reads[i]
				ps.writes[i] = ps.writes[i] || pm.writes[i]
			}
		}
	}
}

// runProbe executes fn(pm), converting panics into a false return so an
// exotic closure degrades the analysis instead of crashing it.
func runProbe(pm *probeMarking, fn func(pm *probeMarking)) (ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	fn(pm)
	return true
}

// Analyze runs static structural analysis over a compiled model: vanishing
// loops among instantaneous activities, statically-dead activities, places
// written but never read, and the declared replicated-family lumpability
// verdicts. It executes gate, reward, probability, and delay closures
// against instrumented markings (never the simulator), so it is safe to call
// on any compiled model; conditional writes hidden behind branches no probe
// marking reaches can be missed, which is why strict mode is exercised by
// tests against every shipped configuration.
func Analyze(cm *CompiledModel) AnalysisReport {
	model := cm.model
	nPlaces := model.NumPlaces()
	rep := AnalysisReport{
		Model:         model.Name(),
		Places:        nPlaces,
		Activities:    model.NumActivities(),
		Instantaneous: len(cm.instantaneous),
		Families:      model.Families(),
	}

	ps := newProbeSet(nPlaces)
	bases := baseMarkings(cm.initial)
	probeReader := func(fn func(r MarkingReader)) {
		ps.probe(bases, func(pm *probeMarking) { fn(pm) })
	}
	written := make([]bool, nPlaces) // by output arcs or gate transforms
	read := make([]bool, nPlaces)    // by any enabling condition, gate, reward, probability, or delay

	for _, a := range model.activities {
		for _, arc := range a.inputArcs {
			read[arc.Place.index] = true
		}
		for _, g := range a.inputGates {
			for _, p := range g.Reads {
				read[p.index] = true
			}
			if g.Enabled != nil {
				pred := g.Enabled
				probeReader(func(r MarkingReader) { pred(r) })
			}
			if g.Transform != nil {
				tr := g.Transform
				ps.probe(bases, func(pm *probeMarking) { tr(pm) })
			}
		}
		if a.kind == Timed && a.delay != nil {
			delay := a.delay
			probeReader(func(r MarkingReader) { delay(r) })
		}
		for _, c := range a.cases {
			for _, arc := range c.OutputArcs {
				written[arc.Place.index] = true
			}
			for _, og := range c.OutputGates {
				if og != nil && og.Transform != nil {
					tr := og.Transform
					ps.probe(bases, func(pm *probeMarking) { tr(pm) })
				}
			}
			if c.Probability != nil {
				prob := c.Probability
				probeReader(func(r MarkingReader) { prob(r) })
			}
		}
	}
	for _, rv := range cm.rewards {
		if rv.Rate != nil {
			rate := rv.Rate
			probeReader(func(r MarkingReader) { rate(r) })
		}
		for _, name := range sortedKeys(rv.Impulses) {
			fn := rv.Impulses[name]
			probeReader(func(r MarkingReader) { fn(r) })
		}
	}
	for i := 0; i < nPlaces; i++ {
		if ps.opaque {
			written[i] = true
			read[i] = true
			continue
		}
		written[i] = written[i] || ps.writes[i]
		read[i] = read[i] || ps.reads[i]
	}
	// Declared external readers (rare-event importance functions, monitors)
	// count as reads: the places they watch are kept state, not waste.
	for _, er := range model.externalReads {
		rec := ExternalReader{Name: er.name}
		for _, p := range er.places {
			if p == nil || p.index < 0 || p.index >= nPlaces {
				continue
			}
			read[p.index] = true
			rec.Places = append(rec.Places, p.name)
		}
		sort.Strings(rec.Places)
		rep.ExternalReaders = append(rep.ExternalReaders, rec)
	}
	sort.Slice(rep.ExternalReaders, func(i, j int) bool {
		return rep.ExternalReaders[i].Name < rep.ExternalReaders[j].Name
	})

	rep.DeadActivities = deadActivities(model, written)
	rep.VanishingLoops = vanishingLoops(cm, ps)
	for _, p := range model.places {
		if written[p.index] && !read[p.index] {
			rep.UnreadPlaces = append(rep.UnreadPlaces, p.name)
		}
	}
	sort.Strings(rep.UnreadPlaces)
	rep.Clean = len(rep.VanishingLoops) == 0 && len(rep.DeadActivities) == 0
	return rep
}

// deadActivities finds activities with an input place that can never hold
// enough tokens: nothing ever writes it and its initial marking is below the
// arc multiplicity.
func deadActivities(model *Model, written []bool) []DeadActivity {
	var out []DeadActivity
	for _, a := range model.activities {
		for _, arc := range a.inputArcs {
			p := arc.Place
			if !written[p.index] && p.initial < arc.Mult {
				out = append(out, DeadActivity{Activity: a.name, Place: p.name})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Activity != out[j].Activity {
			return out[i].Activity < out[j].Activity
		}
		return out[i].Place < out[j].Place
	})
	return out
}

// vanishingLoops finds instantaneous activities that can fire forever at one
// instant: activities with no enabling inputs, activities whose own case
// outputs keep them enabled, and token cycles through several instantaneous
// activities.
func vanishingLoops(cm *CompiledModel, ps *probeSet) []VanishingLoop {
	var out []VanishingLoop
	for _, a := range cm.instantaneous {
		hasPredicate := false
		for _, g := range a.inputGates {
			if g.Enabled != nil {
				hasPredicate = true
			}
		}
		if len(a.inputArcs) == 0 {
			out = append(out, VanishingLoop{
				Activities: []string{a.name},
				Kind:       "always-enabled",
				Definite:   !hasPredicate,
			})
			continue
		}
		if sustaining, all := selfSustaining(a); sustaining {
			out = append(out, VanishingLoop{
				Activities: []string{a.name},
				Kind:       "self-sustaining",
				Definite:   all && !hasPredicate,
			})
		}
	}
	out = append(out, instantaneousCycles(cm, ps)...)
	sort.Slice(out, func(i, j int) bool {
		return strings.Join(out[i].Activities, ",") < strings.Join(out[j].Activities, ",")
	})
	return out
}

// selfSustaining reports whether some case of a returns at least the
// consumed multiplicity to every input place (the firing re-enables the
// activity), and whether every case does (the loop is then unavoidable).
func selfSustaining(a *Activity) (some, all bool) {
	cases := a.cases
	if len(cases) == 0 {
		cases = []Case{{}}
	}
	all = true
	for _, c := range cases {
		returned := make(map[*Place]int)
		for _, arc := range c.OutputArcs {
			returned[arc.Place] += arc.Mult
		}
		sustains := true
		for _, arc := range a.inputArcs {
			if returned[arc.Place] < arc.Mult {
				sustains = false
				break
			}
		}
		if sustains {
			some = true
		} else {
			all = false
		}
	}
	if !some {
		all = false
	}
	return some, all
}

// instantaneousCycles finds strongly connected components of two or more
// instantaneous activities in the token-flow graph (an edge a -> b when
// firing a can add tokens to an input place of b).
func instantaneousCycles(cm *CompiledModel, ps *probeSet) []VanishingLoop {
	inst := cm.instantaneous
	if len(inst) < 2 {
		return nil
	}
	idx := make(map[*Activity]int, len(inst))
	for i, a := range inst {
		idx[a] = i
	}
	// outputs[i] is the set of place indexes firing inst[i] can write.
	outputs := make([]map[int]bool, len(inst))
	for i, a := range inst {
		outputs[i] = make(map[int]bool)
		for _, c := range a.cases {
			for _, arc := range c.OutputArcs {
				outputs[i][arc.Place.index] = true
			}
			for _, og := range c.OutputGates {
				if og != nil && og.Transform != nil {
					// Gate writes were discovered by probing; attribute the
					// union to every gate-bearing activity (conservative).
					for pi, w := range ps.writes {
						if w {
							outputs[i][pi] = true
						}
					}
				}
			}
		}
	}
	adj := make([][]int, len(inst))
	for i := range inst {
		for j, b := range inst {
			if i == j {
				continue
			}
			for _, arc := range b.inputArcs {
				if outputs[i][arc.Place.index] {
					adj[i] = append(adj[i], j)
					break
				}
			}
		}
	}
	var loops []VanishingLoop
	for _, comp := range stronglyConnected(adj) {
		if len(comp) < 2 {
			continue
		}
		names := make([]string, len(comp))
		for i, v := range comp {
			names[i] = inst[v].name
		}
		sort.Strings(names)
		loops = append(loops, VanishingLoop{Activities: names, Kind: "cycle", Definite: false})
	}
	return loops
}

// stronglyConnected returns the strongly connected components of the graph
// (Tarjan, iterative enough for the small instantaneous subgraph).
func stronglyConnected(adj [][]int) [][]int {
	n := len(adj)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var comps [][]int
	next := 0
	var strongconnect func(v int)
	strongconnect = func(v int) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if index[w] == -1 {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			comps = append(comps, comp)
		}
	}
	for v := 0; v < n; v++ {
		if index[v] == -1 {
			strongconnect(v)
		}
	}
	return comps
}

// sortedKeys returns the keys of m in sorted order, so map-backed APIs are
// iterated deterministically (the determinism contract sanlint enforces).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Render returns the analysis report as indented text, the form
// `abesim -analyze` prints.
func (r AnalysisReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "analysis: %s\n", r.Model)
	fmt.Fprintf(&b, "  places %d, activities %d (%d instantaneous)\n", r.Places, r.Activities, r.Instantaneous)
	if len(r.VanishingLoops) == 0 {
		b.WriteString("  vanishing loops: none\n")
	} else {
		b.WriteString("  vanishing loops:\n")
		for _, l := range r.VanishingLoops {
			definite := "possible"
			if l.Definite {
				definite = "definite"
			}
			fmt.Fprintf(&b, "    - %s (%s, %s)\n", strings.Join(l.Activities, " -> "), l.Kind, definite)
		}
	}
	if len(r.DeadActivities) == 0 {
		b.WriteString("  dead activities: none\n")
	} else {
		b.WriteString("  dead activities:\n")
		for _, d := range r.DeadActivities {
			fmt.Fprintf(&b, "    - %s (input place %s can never be tokened)\n", d.Activity, d.Place)
		}
	}
	if len(r.UnreadPlaces) > 0 {
		fmt.Fprintf(&b, "  unread places (advisory): %s\n", strings.Join(r.UnreadPlaces, ", "))
	}
	for _, er := range r.ExternalReaders {
		fmt.Fprintf(&b, "  external reader: %s reads %s\n", er.Name, strings.Join(er.Places, ", "))
	}
	if len(r.Families) > 0 {
		b.WriteString("  families:\n")
		b.WriteString(RenderVerdicts(r.Families, "    "))
	}
	fmt.Fprintf(&b, "  clean: %v\n", r.Clean)
	return b.String()
}

// RenderVerdicts renders a list of lumpability verdicts as indented text,
// one "- family n=count built=form lumpable=bool" line per family with its
// failure reasons beneath. Shared by AnalysisReport.Render and the abesim
// -analyze output.
func RenderVerdicts(vs []LumpabilityVerdict, indent string) string {
	var b strings.Builder
	for _, f := range vs {
		form := "flat"
		if f.Lumped {
			form = "lumped"
		}
		fmt.Fprintf(&b, "%s- %s n=%d built=%s lumpable=%v\n", indent, f.Family, f.Count, form, f.Lumpable)
		for _, reason := range f.Reasons {
			fmt.Fprintf(&b, "%s    %s\n", indent, reason)
		}
	}
	return b.String()
}

// CompileStrict compiles the model and rejects it when static analysis finds
// a vanishing loop or a dead activity — the pre-flight mode tests run every
// shipped configuration through, so structural defects fail at compile time
// instead of surfacing mid-study as ErrUnstableModel (or never, for dead
// activities).
func CompileStrict(model *Model, rewards []RewardVariable) (*CompiledModel, error) {
	cm, err := Compile(model, rewards)
	if err != nil {
		return nil, err
	}
	rep := Analyze(cm)
	if rep.Clean {
		return cm, nil
	}
	var defects []string
	for _, l := range rep.VanishingLoops {
		defects = append(defects, fmt.Sprintf("vanishing loop {%s} (%s)", strings.Join(l.Activities, ", "), l.Kind))
	}
	for _, d := range rep.DeadActivities {
		defects = append(defects, fmt.Sprintf("dead activity %s (input place %s never tokened)", d.Activity, d.Place))
	}
	return nil, fmt.Errorf("%w: %s: %s", ErrModelAnalysis, model.Name(), strings.Join(defects, "; "))
}
