package statespace

import (
	"bytes"
	"encoding/binary"
)

// markIndex interns markings as varint-packed byte strings in one contiguous
// arena, indexed by an open-addressed table of 64-bit FNV-1a hash buckets
// with collision-checked equality. It replaces the reference explorer's
// map[string]int: interning a marking costs one pack into a reusable scratch
// buffer and one probe — no per-state string allocation, no 8-bytes-per-place
// key — and the packed arena is the only long-lived per-state storage.
//
// State indices are assigned in insertion order, so the optimized explorer's
// numbering is exactly the discovery order the reference explorer produces.
type markIndex struct {
	table  []int32 // open-addressed slots holding state index + 1; 0 = empty
	mask   uint64
	hashes []uint64 // per state: its packed-marking hash
	ends   []int32  // per state: end offset of its packed bytes in arena
	arena  []byte
}

func newMarkIndex() *markIndex {
	const initialSlots = 1024 // power of two
	return &markIndex{table: make([]int32, initialSlots), mask: initialSlots - 1}
}

// packMarking appends the canonical varint encoding of mark to dst. Token
// counts are non-negative (the guarded writer refuses negative markings), so
// unsigned varints are total.
func packMarking(dst []byte, mark []int) []byte {
	for _, v := range mark {
		dst = binary.AppendUvarint(dst, uint64(v))
	}
	return dst
}

// unpackMarking decodes n token counts from a packed marking.
func unpackMarking(packed []byte, n int) []int {
	mark := make([]int, n)
	for i := range mark {
		v, k := binary.Uvarint(packed)
		mark[i] = int(v)
		packed = packed[k:]
	}
	return mark
}

// FNV-1a, 64 bit.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func hashBytes(b []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// packedOf returns state si's packed marking (a view into the arena).
func (mi *markIndex) packedOf(si int) []byte {
	start := int32(0)
	if si > 0 {
		start = mi.ends[si-1]
	}
	return mi.arena[start:mi.ends[si]]
}

// lookup probes for a packed marking, comparing bytes on every hash match —
// a 64-bit collision can alias buckets but never states.
func (mi *markIndex) lookup(packed []byte, h uint64) (int, bool) {
	slot := h & mi.mask
	for {
		v := mi.table[slot]
		if v == 0 {
			return 0, false
		}
		si := int(v - 1)
		if mi.hashes[si] == h && bytes.Equal(mi.packedOf(si), packed) {
			return si, true
		}
		slot = (slot + 1) & mi.mask
	}
}

// insert adds a marking known (via lookup) to be absent and returns its new
// state index. The packed bytes are copied into the arena, so callers may
// reuse their scratch buffer.
func (mi *markIndex) insert(packed []byte, h uint64) int {
	si := len(mi.hashes)
	mi.hashes = append(mi.hashes, h)
	mi.arena = append(mi.arena, packed...)
	mi.ends = append(mi.ends, int32(len(mi.arena)))
	// Grow at 75% occupancy; growth rehashes from the hashes array, so the
	// arena is never re-read.
	if (len(mi.hashes)+1)*4 >= len(mi.table)*3 {
		mi.grow()
	} else {
		mi.place(h, int32(si+1))
	}
	return si
}

func (mi *markIndex) place(h uint64, v int32) {
	slot := h & mi.mask
	for mi.table[slot] != 0 {
		slot = (slot + 1) & mi.mask
	}
	mi.table[slot] = v
}

func (mi *markIndex) grow() {
	mi.table = make([]int32, 2*len(mi.table))
	mi.mask = uint64(len(mi.table) - 1)
	for si, h := range mi.hashes {
		mi.place(h, int32(si+1))
	}
}
