package loggen

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{OutageStart, OutageEnd, DiskFailed, DiskReplaced, JobSubmit, JobEnd, MountFailure}
	for _, k := range kinds {
		s := k.String()
		if strings.HasPrefix(s, "EventKind(") {
			t.Errorf("kind %d has no string", k)
		}
		parsed, err := ParseEventKind(s)
		if err != nil || parsed != k {
			t.Errorf("ParseEventKind(%q) = %v, %v", s, parsed, err)
		}
	}
	if _, err := ParseEventKind("BOGUS"); err == nil {
		t.Error("bogus kind parsed")
	}
	if EventKind(0).String() == "OUTAGE_START" {
		t.Error("zero kind aliases a valid kind")
	}
}

func TestABEConfigValid(t *testing.T) {
	cfg := ABEConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("ABE log config invalid: %v", err)
	}
	if cfg.ComputeDays != 143 {
		t.Errorf("compute window = %d days, want 143 (05/13-10/02)", cfg.ComputeDays)
	}
	if got := cfg.SANLogStart(); got != time.Date(2007, 9, 5, 0, 0, 0, 0, time.UTC) {
		t.Errorf("SAN log start = %v, want 2007-09-05", got)
	}
	if !cfg.SANLogEnd().After(cfg.SANLogStart()) {
		t.Error("SAN window empty")
	}
	if !cfg.ComputeLogEnd().After(cfg.Start) {
		t.Error("compute window empty")
	}
}

func TestConfigValidation(t *testing.T) {
	mutations := map[string]func(*Config){
		"zero start":        func(c *Config) { c.Start = time.Time{} },
		"zero days":         func(c *Config) { c.ComputeDays = 0 },
		"negative offset":   func(c *Config) { c.SANStartOffsetDays = -1 },
		"no nodes":          func(c *Config) { c.ComputeNodes = 0 },
		"no disks":          func(c *Config) { c.Disks = 0 },
		"zero jobs":         func(c *Config) { c.JobsPerHour = 0 },
		"bad probabilities": func(c *Config) { c.TransientJobFailureProb = 0.9; c.OtherJobFailureProb = 0.2 },
		"zero outages":      func(c *Config) { c.OutagesPerMonth = 0 },
		"no causes":         func(c *Config) { c.OutageCauseWeights = nil },
		"bad disk":          func(c *Config) { c.DiskShape = 0 },
		"bad bursts":        func(c *Config) { c.MountFailureBurstsPerMonth = 0 },
	}
	for name, mutate := range mutations {
		cfg := ABEConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
	if _, err := Generate(Config{}); err == nil {
		t.Error("Generate accepted zero config")
	}
}

func TestGenerateReproducible(t *testing.T) {
	cfg := ABEConfig()
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.SAN) != len(b.SAN) || len(a.Compute) != len(b.Compute) {
		t.Fatalf("same seed produced different log sizes: %d/%d vs %d/%d",
			len(a.SAN), len(a.Compute), len(b.SAN), len(b.Compute))
	}
	for i := range a.SAN {
		if !a.SAN[i].Time.Equal(b.SAN[i].Time) || a.SAN[i].Kind != b.SAN[i].Kind {
			t.Fatalf("SAN event %d differs", i)
		}
	}
}

func TestGenerateCalibration(t *testing.T) {
	logs, err := Generate(ABEConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Events are sorted.
	for i := 1; i < len(logs.SAN); i++ {
		if logs.SAN[i].Time.Before(logs.SAN[i-1].Time) {
			t.Fatal("SAN log not sorted")
		}
	}
	for i := 1; i < len(logs.Compute); i++ {
		if logs.Compute[i].Time.Before(logs.Compute[i-1].Time) {
			t.Fatal("compute log not sorted")
		}
	}

	counts := map[EventKind]int{}
	for _, e := range logs.SAN {
		counts[e.Kind]++
	}
	for _, e := range logs.Compute {
		counts[e.Kind]++
	}
	// ~44k jobs over 143 days at 12.85/hour.
	if counts[JobSubmit] < 40000 || counts[JobSubmit] > 48000 {
		t.Errorf("jobs = %d, want ~44000 (Table 3)", counts[JobSubmit])
	}
	if counts[JobEnd] != counts[JobSubmit] {
		t.Errorf("job ends %d != submits %d", counts[JobEnd], counts[JobSubmit])
	}
	// Roughly 5-10 outages over the ~3 month SAN window (Table 1 lists 10
	// over a slightly longer horizon).
	if counts[OutageStart] < 3 || counts[OutageStart] > 15 {
		t.Errorf("outages = %d, want a Table 1-like handful", counts[OutageStart])
	}
	if counts[OutageEnd] != counts[OutageStart] {
		t.Errorf("outage ends %d != starts %d", counts[OutageEnd], counts[OutageStart])
	}
	// ~11 disk failures over the SAN window (Table 4); allow a wide band
	// because the count is small.
	if counts[DiskFailed] < 3 || counts[DiskFailed] > 30 {
		t.Errorf("disk failures = %d, want roughly 11 (Table 4)", counts[DiskFailed])
	}
	if counts[DiskReplaced] > counts[DiskFailed] {
		t.Errorf("replacements %d exceed failures %d", counts[DiskReplaced], counts[DiskFailed])
	}
	// Mount failure bursts exist (Table 2).
	if counts[MountFailure] == 0 {
		t.Error("no mount failures generated")
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	e := Event{
		Time:   time.Date(2007, 7, 21, 23, 3, 0, 0, time.UTC),
		Source: "san",
		Node:   "lustre-cfs",
		Kind:   OutageStart,
		Attrs:  map[string]string{"cause": CauseIOHardware, "note": "dual FC path lost"},
	}
	line := FormatEvent(e)
	if !strings.Contains(line, `cause="I/O hardware"`) {
		t.Errorf("formatted line missing quoted cause: %s", line)
	}
	parsed, err := ParseEvent(line)
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.Time.Equal(e.Time) || parsed.Source != e.Source || parsed.Node != e.Node || parsed.Kind != e.Kind {
		t.Errorf("round trip mismatch: %+v vs %+v", parsed, e)
	}
	if parsed.Attrs["cause"] != CauseIOHardware || parsed.Attrs["note"] != "dual FC path lost" {
		t.Errorf("attrs mismatch: %+v", parsed.Attrs)
	}
}

func TestParseEventErrors(t *testing.T) {
	cases := []string{
		"",
		"2007-07-21T23:03:00Z san lustre-cfs",
		"notatime san lustre-cfs OUTAGE_START",
		"2007-07-21T23:03:00Z san lustre-cfs BOGUS_KIND",
		`2007-07-21T23:03:00Z san lustre-cfs OUTAGE_START cause=unquoted`,
		`2007-07-21T23:03:00Z san lustre-cfs OUTAGE_START cause="unterminated`,
	}
	for _, line := range cases {
		if _, err := ParseEvent(line); err == nil {
			t.Errorf("ParseEvent(%q) succeeded", line)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	cfg := ABEConfig()
	cfg.ComputeDays = 5
	cfg.SANStartOffsetDays = 0
	cfg.SANDays = 5
	logs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.WriteString("# synthetic ABE SAN log\n\n")
	if err := Write(&buf, logs.SAN); err != nil {
		t.Fatal(err)
	}
	events, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(logs.SAN) {
		t.Fatalf("round trip lost events: %d vs %d", len(events), len(logs.SAN))
	}
	for i := range events {
		if events[i].Kind != logs.SAN[i].Kind || !events[i].Time.Equal(logs.SAN[i].Time.Truncate(time.Second)) {
			t.Fatalf("event %d mismatch: %+v vs %+v", i, events[i], logs.SAN[i])
		}
	}
	if _, err := Read(strings.NewReader("garbage line\n")); err == nil {
		t.Error("garbage accepted")
	}
}

// Property: formatted events always parse back with the same kind, source,
// node, and attribute set.
func TestQuickFormatParse(t *testing.T) {
	f := func(nodeSeed uint16, kindSeed uint8, key, value string) bool {
		kind := EventKind(int(kindSeed%7) + 1)
		e := Event{
			Time:   time.Date(2007, 6, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(nodeSeed) * time.Minute),
			Source: "compute",
			Node:   "c" + strings.Repeat("0", int(nodeSeed%3)+1),
			Kind:   kind,
			Attrs:  map[string]string{},
		}
		// Quoted attribute values cannot themselves contain quotes or
		// newlines in this simple format; skip such inputs.
		if strings.ContainsAny(key, "=\" \n") || strings.ContainsAny(value, "\"\n") || key == "" {
			return true
		}
		e.Attrs[key] = value
		parsed, err := ParseEvent(FormatEvent(e))
		if err != nil {
			return false
		}
		return parsed.Kind == e.Kind && parsed.Node == e.Node && parsed.Attrs[key] == value
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
