package lint

import (
	"bufio"
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// fixtureConfig lints the miniature module under testdata, which carries a
// stand-in san package so every rule can resolve its targets.
func fixtureConfig(t *testing.T) Config {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src", "fixture"))
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Root:              root,
		ModulePath:        "fixture",
		DeterministicPkgs: []string{"fixture/san", "fixture/det", "fixture/phfit"},
		SANPath:           "fixture/san",
		DistPath:          "fixture/dist",
	}
}

// wantMarkers scans the fixture sources for `// want <rule>` comments and
// returns the expected findings as "file:line rule" keys.
func wantMarkers(t *testing.T, root string) map[string]bool {
	t.Helper()
	want := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			text := sc.Text()
			idx := strings.Index(text, "// want ")
			if idx < 0 {
				continue
			}
			rule := strings.TrimSpace(text[idx+len("// want "):])
			want[fmt.Sprintf("%s:%d %s", path, line, rule)] = true
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// TestFixtureFindings runs every rule over the fixture module and requires
// the findings to match the `// want` markers exactly — every marked line
// is found, and nothing unmarked is flagged.
func TestFixtureFindings(t *testing.T) {
	cfg := fixtureConfig(t)
	findings, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, f := range findings {
		got[fmt.Sprintf("%s:%d %s", f.Pos.Filename, f.Pos.Line, f.Rule)] = true
	}
	want := wantMarkers(t, cfg.Root)
	if len(want) == 0 {
		t.Fatal("no want markers found in fixtures")
	}
	var missing, extra []string
	for k := range want {
		if !got[k] {
			missing = append(missing, k)
		}
	}
	for k := range got {
		if !want[k] {
			extra = append(extra, k)
		}
	}
	sort.Strings(missing)
	sort.Strings(extra)
	if len(missing) > 0 || len(extra) > 0 {
		t.Fatalf("finding mismatch\nmissing (marked but not reported):\n  %s\nextra (reported but not marked):\n  %s",
			strings.Join(missing, "\n  "), strings.Join(extra, "\n  "))
	}
}

// TestFindingsSortedAndRendered pins the output order and line format the
// sanlint command prints.
func TestFindingsSortedAndRendered(t *testing.T) {
	findings, err := Run(fixtureConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) < 2 {
		t.Fatalf("expected several findings, got %d", len(findings))
	}
	for i := 1; i < len(findings); i++ {
		a, b := findings[i-1], findings[i]
		if a.Pos.Filename > b.Pos.Filename || (a.Pos.Filename == b.Pos.Filename && a.Pos.Line > b.Pos.Line) {
			t.Fatalf("findings out of order: %s before %s", a, b)
		}
	}
	line := findings[0].String()
	if !strings.Contains(line, ".go:") || strings.Count(line, ": ") < 2 {
		t.Fatalf("unexpected rendering %q", line)
	}
}

// TestRenderGolden pins both output forms on a fixed findings slice: the
// text lines sanlint prints by default and the JSON array behind -json.
func TestRenderGolden(t *testing.T) {
	findings := []Finding{
		{
			Pos:     token.Position{Filename: "a/b.go", Line: 12, Column: 3},
			Rule:    "floatorder",
			Message: "float accumulation in map iteration order is not associative",
		},
		{
			Pos:     token.Position{Filename: "c/d.go", Line: 7, Column: 1},
			Rule:    "nodeterminism",
			Message: "time.Now in a deterministic package",
		},
	}
	wantText := "a/b.go:12:3: floatorder: float accumulation in map iteration order is not associative"
	if got := findings[0].String(); got != wantText {
		t.Errorf("text rendering:\n got %q\nwant %q", got, wantText)
	}
	gotJSON, err := RenderJSON(findings)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := `[
  {
    "file": "a/b.go",
    "line": 12,
    "column": 3,
    "rule": "floatorder",
    "message": "float accumulation in map iteration order is not associative"
  },
  {
    "file": "c/d.go",
    "line": 7,
    "column": 1,
    "rule": "nodeterminism",
    "message": "time.Now in a deterministic package"
  }
]
`
	if gotJSON != wantJSON {
		t.Errorf("JSON rendering:\n got %s\nwant %s", gotJSON, wantJSON)
	}
	empty, err := RenderJSON(nil)
	if err != nil {
		t.Fatal(err)
	}
	if empty != "[]\n" {
		t.Errorf("clean module must render as an empty array, got %q", empty)
	}
}

// TestFixtureJSONRoundTrip renders the fixture findings as JSON and checks
// the documents agree field-for-field with the text findings.
func TestFixtureJSONRoundTrip(t *testing.T) {
	findings, err := Run(fixtureConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	doc, err := RenderJSON(findings)
	if err != nil {
		t.Fatal(err)
	}
	var parsed []JSONFinding
	if err := json.Unmarshal([]byte(doc), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, doc)
	}
	if len(parsed) != len(findings) {
		t.Fatalf("got %d JSON findings, want %d", len(parsed), len(findings))
	}
	rules := map[string]int{}
	for i, jf := range parsed {
		f := findings[i]
		if jf.File != f.Pos.Filename || jf.Line != f.Pos.Line || jf.Column != f.Pos.Column ||
			jf.Rule != f.Rule || jf.Message != f.Message {
			t.Errorf("finding %d mismatch: %+v vs %s", i, jf, f)
		}
		rules[jf.Rule]++
	}
	if rules["floatorder"] == 0 {
		t.Error("fixture must exercise the floatorder rule")
	}
}

// TestRepoIsLintClean certifies the repository itself: the violations
// sanlint surfaced when it was introduced are fixed or annotated, and stay
// that way.
func TestRepoIsLintClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not found: %v", err)
	}
	findings, err := Run(DefaultConfig(root))
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) > 0 {
		var lines []string
		for _, f := range findings {
			lines = append(lines, f.String())
		}
		t.Fatalf("repository is not lint-clean:\n  %s", strings.Join(lines, "\n  "))
	}
}
