package san

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/rng"
)

func mustExp(t testing.TB, mean float64) dist.Exponential {
	t.Helper()
	e, err := dist.NewExponentialFromMean(mean)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func mustDet(t testing.TB, v float64) dist.Deterministic {
	t.Helper()
	d, err := dist.NewDeterministic(v)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// buildFailRepair constructs the canonical two-state component model:
// up --fail--> down --repair--> up.
func buildFailRepair(t testing.TB, mttf, mttr float64) (*Model, *Place) {
	t.Helper()
	m := NewModel("component")
	up := m.AddPlace("up", 1)
	down := m.AddPlace("down", 0)
	m.AddTimedActivity("fail", mustExp(t, mttf)).AddInputArc(up, 1).AddOutputArc(down, 1)
	m.AddTimedActivity("repair", mustExp(t, mttr)).AddInputArc(down, 1).AddOutputArc(up, 1)
	return m, up
}

func TestModelConstruction(t *testing.T) {
	m := NewModel("test")
	if m.Name() != "test" {
		t.Errorf("Name = %q", m.Name())
	}
	p := m.AddPlace("p", 3)
	if p.Name() != "p" || p.Initial() != 3 {
		t.Errorf("place = %q/%d", p.Name(), p.Initial())
	}
	if m.Place("p") != p || m.Place("missing") != nil {
		t.Error("Place lookup broken")
	}
	if m.NumPlaces() != 1 || len(m.Places()) != 1 {
		t.Error("place counts wrong")
	}
	a := m.AddTimedActivity("act", mustDet(t, 1))
	if m.Activity("act") != a || m.NumActivities() != 1 || len(m.Activities()) != 1 {
		t.Error("activity bookkeeping broken")
	}
	if a.Kind() != Timed || a.Kind().String() != "timed" {
		t.Errorf("Kind = %v", a.Kind())
	}
	inst := m.AddInstantaneousActivity("inst")
	if inst.Kind() != Instantaneous || inst.Kind().String() != "instantaneous" {
		t.Errorf("Kind = %v", inst.Kind())
	}
	if ActivityKind(0).String() == "timed" {
		t.Error("zero kind should not be valid")
	}
	im := m.InitialMarking()
	if len(im) != 1 || im[0] != 3 {
		t.Errorf("InitialMarking = %v", im)
	}
}

func TestDuplicateNamesRejected(t *testing.T) {
	m := NewModel("dup")
	m.AddPlace("p", 0)
	if _, err := m.AddPlaceErr("p", 0); err == nil {
		t.Error("duplicate place accepted")
	}
	if _, err := m.AddPlaceErr("neg", -1); err == nil {
		t.Error("negative initial marking accepted")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("AddPlace duplicate did not panic")
			}
		}()
		m.AddPlace("p", 0)
	}()
	m.AddTimedActivity("a", mustDet(t, 1))
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate activity did not panic")
			}
		}()
		m.AddTimedActivity("a", mustDet(t, 1))
	}()
}

func TestValidate(t *testing.T) {
	good, _ := buildFailRepair(t, 100, 10)
	if err := good.Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}

	// Timed activity without delay.
	bad := NewModel("bad")
	bad.AddPlace("p", 1)
	bad.addActivity("nodelay", Timed, nil)
	if err := bad.Validate(); err == nil {
		t.Error("model with missing delay validated")
	}

	// Foreign place.
	other := NewModel("other")
	foreign := other.AddPlace("foreign", 0)
	m2 := NewModel("m2")
	m2.AddTimedActivity("a", mustDet(t, 1)).AddInputArc(foreign, 1)
	if err := m2.Validate(); err == nil {
		t.Error("foreign place accepted")
	}

	// Non-positive multiplicity.
	m3 := NewModel("m3")
	p3 := m3.AddPlace("p", 1)
	m3.AddTimedActivity("a", mustDet(t, 1)).AddInputArc(p3, 0)
	if err := m3.Validate(); err == nil {
		t.Error("zero multiplicity accepted")
	}

	// Case probabilities that do not sum to one.
	m4 := NewModel("m4")
	p4 := m4.AddPlace("p", 1)
	act := m4.AddTimedActivity("a", mustDet(t, 1)).AddInputArc(p4, 1)
	act.AddCase(Case{Probability: func(MarkingReader) float64 { return 0.3 }})
	act.AddCase(Case{Probability: func(MarkingReader) float64 { return 0.3 }})
	if err := m4.Validate(); err == nil {
		t.Error("case probabilities summing to 0.6 accepted")
	}

	// Gate reading a foreign place.
	m5 := NewModel("m5")
	p5 := m5.AddPlace("p", 1)
	m5.AddTimedActivity("a", mustDet(t, 1)).AddInputArc(p5, 1).
		AddInputGate(&InputGate{Name: "g", Reads: []*Place{foreign}, Enabled: func(MarkingReader) bool { return true }})
	if err := m5.Validate(); err == nil {
		t.Error("gate reading foreign place accepted")
	}
}

func TestSimulatorValidation(t *testing.T) {
	m, up := buildFailRepair(t, 100, 10)
	stream := rng.NewStream(1, "t")
	if _, err := NewSimulator(nil, nil, stream); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := NewSimulator(m, nil, nil); err == nil {
		t.Error("nil stream accepted")
	}
	badReward := []RewardVariable{{Name: "", Mode: TimeAveraged, Rate: func(MarkingReader) float64 { return 1 }}}
	if _, err := NewSimulator(m, badReward, stream); err == nil {
		t.Error("empty reward name accepted")
	}
	noContent := []RewardVariable{{Name: "x", Mode: TimeAveraged}}
	if _, err := NewSimulator(m, noContent, stream); err == nil {
		t.Error("reward without rate or impulses accepted")
	}
	badMode := []RewardVariable{{Name: "x", Rate: func(MarkingReader) float64 { return 1 }}}
	if _, err := NewSimulator(m, badMode, stream); err == nil {
		t.Error("reward without mode accepted")
	}
	badImpulse := []RewardVariable{{Name: "x", Mode: Accumulated, Impulses: map[string]ImpulseFunc{"nope": func(MarkingReader) float64 { return 1 }}}}
	if _, err := NewSimulator(m, badImpulse, stream); err == nil {
		t.Error("impulse on unknown activity accepted")
	}
	instMix := []RewardVariable{{Name: "x", Mode: InstantAtEnd, Rate: func(MarkingReader) float64 { return 1 },
		Impulses: map[string]ImpulseFunc{"fail": func(MarkingReader) float64 { return 1 }}}}
	if _, err := NewSimulator(m, instMix, stream); err == nil {
		t.Error("instant-of-time reward with impulses accepted")
	}
	good := []RewardVariable{UpFraction("avail", func(mr MarkingReader) bool { return mr.Tokens(up) == 1 })}
	if _, err := NewSimulator(m, good, stream); err != nil {
		t.Errorf("valid simulator rejected: %v", err)
	}
}

func TestRunRejectsBadMission(t *testing.T) {
	m, _ := buildFailRepair(t, 100, 10)
	sim, err := NewSimulator(m, nil, rng.NewStream(1, "t"))
	if err != nil {
		t.Fatal(err)
	}
	for _, mission := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := sim.Run(mission); err == nil {
			t.Errorf("Run(%v) succeeded", mission)
		}
	}
}

func TestAvailabilityMatchesAnalytic(t *testing.T) {
	// Two-state model: availability = MTTF/(MTTF+MTTR) = 100/110.
	m, up := buildFailRepair(t, 100, 10)
	rewards := []RewardVariable{UpFraction("avail", func(mr MarkingReader) bool { return mr.Tokens(up) == 1 })}
	res, err := RunReplications(m, rewards, Options{Mission: 20000, Replications: 60, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	want := 100.0 / 110.0
	got := res.Mean("avail")
	if math.Abs(got-want) > 0.01 {
		t.Errorf("availability = %v, want ~%v", got, want)
	}
	ci, err := res.Interval("avail")
	if err != nil {
		t.Fatal(err)
	}
	if ci.HalfWidth <= 0 || ci.HalfWidth > 0.05 {
		t.Errorf("unexpected CI half width %v", ci.HalfWidth)
	}
	if res.TotalEvents == 0 {
		t.Error("no events executed")
	}
	if _, err := res.Interval("nope"); err == nil {
		t.Error("unknown reward interval succeeded")
	}
	if !math.IsNaN(res.Mean("nope")) {
		t.Error("unknown reward mean should be NaN")
	}
}

func TestDeterministicCycleAvailability(t *testing.T) {
	// up 10h, down 5h, repeating: over a 30h mission availability = 20/30.
	m := NewModel("det")
	up := m.AddPlace("up", 1)
	down := m.AddPlace("down", 0)
	m.AddTimedActivity("fail", mustDet(t, 10)).AddInputArc(up, 1).AddOutputArc(down, 1)
	m.AddTimedActivity("repair", mustDet(t, 5)).AddInputArc(down, 1).AddOutputArc(up, 1)
	sim, err := NewSimulator(m, []RewardVariable{
		UpFraction("avail", func(mr MarkingReader) bool { return mr.Tokens(up) == 1 }),
		CompletionCount("failures", "fail"),
		{Name: "final_up", Mode: InstantAtEnd, Rate: func(mr MarkingReader) float64 { return float64(mr.Tokens(up)) }},
	}, rng.NewStream(3, "det"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(30)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rewards["avail"]; math.Abs(got-20.0/30.0) > 1e-9 {
		t.Errorf("availability = %v, want %v", got, 20.0/30.0)
	}
	if got := res.Rewards["failures"]; got != 2 {
		t.Errorf("failures = %v, want 2 (at t=10 and t=25)", got)
	}
	// Up at 15, fails again at 25, and the repair completing exactly at the
	// t=30 horizon is executed (inclusive horizon), so the component ends up.
	if got := res.Rewards["final_up"]; got != 1 {
		t.Errorf("final_up = %v, want 1", got)
	}
	if res.FinalTime != 30 {
		t.Errorf("FinalTime = %v", res.FinalTime)
	}
}

func TestSourceActivityKeepsFiring(t *testing.T) {
	// An activity with no input arcs must fire repeatedly (job arrivals).
	m := NewModel("source")
	count := m.AddPlace("count", 0)
	m.AddTimedActivity("arrive", mustDet(t, 1)).AddOutputArc(count, 1)
	sim, err := NewSimulator(m, []RewardVariable{CompletionCount("arrivals", "arrive")}, rng.NewStream(1, "src"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(100.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rewards["arrivals"]; got != 100 {
		t.Errorf("arrivals = %v, want 100", got)
	}
}

func TestInputGateEnabling(t *testing.T) {
	// Activity gated on a threshold: fires only while gatePlace >= 2.
	m := NewModel("gate")
	gatePlace := m.AddPlace("level", 0)
	fired := m.AddPlace("fired", 0)
	m.AddTimedActivity("tick", mustDet(t, 1)).AddOutputArc(gatePlace, 1)
	m.AddTimedActivity("gated", mustDet(t, 0.6)).
		AddInputGate(&InputGate{
			Name:    "atLeast2",
			Reads:   []*Place{gatePlace},
			Enabled: func(mr MarkingReader) bool { return mr.Tokens(gatePlace) >= 2 },
		}).
		AddOutputArc(fired, 1)
	sim, err := NewSimulator(m, []RewardVariable{
		{Name: "fired", Mode: InstantAtEnd, Rate: func(mr MarkingReader) float64 { return float64(mr.Tokens(fired)) }},
	}, rng.NewStream(2, "gate"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(3.5)
	if err != nil {
		t.Fatal(err)
	}
	// level reaches 2 at t=2; gated becomes enabled then and fires at 2.6 and 3.2.
	if got := res.Rewards["fired"]; got != 2 {
		t.Errorf("gated activity fired %v times, want 2", got)
	}
}

func TestInputGateTransformAndOutputGate(t *testing.T) {
	// Input gate transform drains a place; output gate sets another.
	m := NewModel("gates")
	pool := m.AddPlace("pool", 5)
	drained := m.AddPlace("drained", 0)
	flag := m.AddPlace("flag", 0)
	m.AddTimedActivity("act", mustDet(t, 1)).
		AddInputGate(&InputGate{
			Name:    "drain",
			Reads:   []*Place{pool},
			Enabled: func(mr MarkingReader) bool { return mr.Tokens(pool) > 0 },
			Transform: func(mw MarkingWriter) {
				mw.Add(drained, mw.Tokens(pool))
				mw.SetTokens(pool, 0)
			},
		}).
		AddOutputGate(&OutputGate{Name: "setFlag", Transform: func(mw MarkingWriter) { mw.SetTokens(flag, 1) }})
	sim, err := NewSimulator(m, []RewardVariable{
		{Name: "drained", Mode: InstantAtEnd, Rate: func(mr MarkingReader) float64 { return float64(mr.Tokens(drained)) }},
		{Name: "flag", Mode: InstantAtEnd, Rate: func(mr MarkingReader) float64 { return float64(mr.Tokens(flag)) }},
	}, rng.NewStream(4, "gates"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rewards["drained"] != 5 || res.Rewards["flag"] != 1 {
		t.Errorf("rewards = %v, want drained=5 flag=1", res.Rewards)
	}
}

func TestCasesSplitProbability(t *testing.T) {
	// 30/70 split between two cases, verified against completion counts.
	m := NewModel("cases")
	left := m.AddPlace("left", 0)
	right := m.AddPlace("right", 0)
	act := m.AddTimedActivity("branch", mustDet(t, 1))
	act.AddCase(Case{
		Probability: func(MarkingReader) float64 { return 0.3 },
		OutputArcs:  []Arc{{Place: left, Mult: 1}},
	})
	act.AddCase(Case{
		Probability: func(MarkingReader) float64 { return 0.7 },
		OutputArcs:  []Arc{{Place: right, Mult: 1}},
	})
	sim, err := NewSimulator(m, []RewardVariable{
		{Name: "left", Mode: InstantAtEnd, Rate: func(mr MarkingReader) float64 { return float64(mr.Tokens(left)) }},
		{Name: "right", Mode: InstantAtEnd, Rate: func(mr MarkingReader) float64 { return float64(mr.Tokens(right)) }},
	}, rng.NewStream(5, "cases"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(20000)
	if err != nil {
		t.Fatal(err)
	}
	total := res.Rewards["left"] + res.Rewards["right"]
	if total < 19990 || total > 20000 {
		t.Fatalf("total branches = %v", total)
	}
	frac := res.Rewards["left"] / total
	if math.Abs(frac-0.3) > 0.02 {
		t.Errorf("left fraction = %v, want ~0.3", frac)
	}
}

func TestNilProbabilityCaseGetsRemainder(t *testing.T) {
	m := NewModel("nilcase")
	a := m.AddPlace("a", 0)
	b := m.AddPlace("b", 0)
	act := m.AddTimedActivity("branch", mustDet(t, 1))
	act.AddCase(Case{
		Probability: func(MarkingReader) float64 { return 0.25 },
		OutputArcs:  []Arc{{Place: a, Mult: 1}},
	})
	act.AddCase(Case{OutputArcs: []Arc{{Place: b, Mult: 1}}}) // remainder: 0.75
	sim, err := NewSimulator(m, []RewardVariable{
		{Name: "a", Mode: InstantAtEnd, Rate: func(mr MarkingReader) float64 { return float64(mr.Tokens(a)) }},
		{Name: "b", Mode: InstantAtEnd, Rate: func(mr MarkingReader) float64 { return float64(mr.Tokens(b)) }},
	}, rng.NewStream(6, "nilcase"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(10000)
	if err != nil {
		t.Fatal(err)
	}
	frac := res.Rewards["a"] / (res.Rewards["a"] + res.Rewards["b"])
	if math.Abs(frac-0.25) > 0.03 {
		t.Errorf("case-a fraction = %v, want ~0.25", frac)
	}
}

func TestInstantaneousActivity(t *testing.T) {
	// A token arriving in "trigger" is immediately moved to "sink" by an
	// instantaneous activity.
	m := NewModel("inst")
	trigger := m.AddPlace("trigger", 0)
	sink := m.AddPlace("sink", 0)
	m.AddTimedActivity("produce", mustDet(t, 2)).AddOutputArc(trigger, 1)
	m.AddInstantaneousActivity("move").AddInputArc(trigger, 1).AddOutputArc(sink, 1)
	sim, err := NewSimulator(m, []RewardVariable{
		TokenTimeAverage("avg_trigger", trigger),
		{Name: "sink", Mode: InstantAtEnd, Rate: func(mr MarkingReader) float64 { return float64(mr.Tokens(sink)) }},
	}, rng.NewStream(7, "inst"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(10.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rewards["sink"]; got != 5 {
		t.Errorf("sink = %v, want 5", got)
	}
	if got := res.Rewards["avg_trigger"]; got != 0 {
		t.Errorf("average trigger tokens = %v, want 0 (instantaneous drain)", got)
	}
}

func TestUnstableInstantaneousLoopDetected(t *testing.T) {
	// Two instantaneous activities that keep toggling a token form an
	// unstable (vanishing) loop; the simulator must stop rather than hang.
	m := NewModel("unstable")
	a := m.AddPlace("a", 1)
	b := m.AddPlace("b", 0)
	kick := m.AddPlace("kick", 0)
	m.AddTimedActivity("start", mustDet(t, 1)).AddOutputArc(kick, 1)
	m.AddInstantaneousActivity("ab").AddInputArc(a, 1).AddInputArc(kick, 1).AddOutputArc(b, 1).AddOutputArc(kick, 1)
	m.AddInstantaneousActivity("ba").AddInputArc(b, 1).AddInputArc(kick, 1).AddOutputArc(a, 1).AddOutputArc(kick, 1)
	sim, err := NewSimulator(m, nil, rng.NewStream(8, "unstable"))
	if err != nil {
		t.Fatal(err)
	}
	// The run terminates (does not hang) and surfaces the instability: a
	// truncated run must not masquerade as a successful replication.
	if _, err := sim.Run(10); !errors.Is(err, ErrUnstableModel) {
		t.Fatalf("Run error = %v, want ErrUnstableModel", err)
	}
}

func TestReactivation(t *testing.T) {
	// With reactivation, the delay distribution is resampled on marking
	// change. Here the delay function depends on the marking: once "boost"
	// holds a token the activity becomes much faster. Without reactivation
	// the originally sampled (slow) time would stand.
	m := NewModel("react")
	boost := m.AddPlace("boost", 0)
	done := m.AddPlace("done", 0)
	m.AddTimedActivity("boosting", mustDet(t, 1)).AddOutputArc(boost, 1)
	slowFast := m.AddTimedActivityFunc("work", func(mr MarkingReader) dist.Distribution {
		if mr.Tokens(boost) > 0 {
			return mustDet(t, 0.5)
		}
		return mustDet(t, 100)
	})
	slowFast.AddOutputArc(done, 1)
	slowFast.AddInputGate(&InputGate{
		Name:    "watchBoost",
		Reads:   []*Place{boost},
		Enabled: func(MarkingReader) bool { return true },
	})
	slowFast.SetReactivation(true)
	sim, err := NewSimulator(m, []RewardVariable{
		{Name: "done", Mode: InstantAtEnd, Rate: func(mr MarkingReader) float64 { return float64(mr.Tokens(done)) }},
	}, rng.NewStream(9, "react"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rewards["done"]; got < 1 {
		t.Errorf("done = %v, want >=1 (reactivation should speed up the activity)", got)
	}
}

func TestMarkingWriterRejectsNegative(t *testing.T) {
	m := NewModel("neg")
	p := m.AddPlace("p", 0)
	mk := newMarking(m.InitialMarking())
	defer func() {
		if recover() == nil {
			t.Error("negative SetTokens did not panic")
		}
	}()
	mk.SetTokens(p, -1)
}

func TestRunReplicationsValidation(t *testing.T) {
	m, _ := buildFailRepair(t, 100, 10)
	if _, err := RunReplications(m, nil, Options{Replications: 1}); err == nil {
		t.Error("1 replication accepted")
	}
	bad := []RewardVariable{{Name: "x", Mode: TimeAveraged}}
	if _, err := RunReplications(m, bad, Options{Replications: 4}); err == nil {
		t.Error("bad reward accepted")
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := (Options{}).Validate(); err != nil {
		t.Errorf("zero options (all defaults) rejected: %v", err)
	}
	valid := Options{Mission: 100, Replications: 4, Confidence: 0.9, Seed: 7, Parallelism: 2, PHFitTolerance: 0.1}
	if err := valid.Validate(); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
	invalid := map[string]Options{
		"negative mission":     {Mission: -1},
		"NaN mission":          {Mission: math.NaN()},
		"infinite mission":     {Mission: math.Inf(1)},
		"one replication":      {Replications: 1},
		"negative reps":        {Replications: -4},
		"confidence 1":         {Confidence: 1},
		"confidence above 1":   {Confidence: 1.5},
		"NaN confidence":       {Confidence: math.NaN()},
		"negative confidence":  {Confidence: -0.5},
		"negative parallelism": {Parallelism: -1},
		"negative fit tol":     {PHFitTolerance: -0.1},
		"fit tol of 1":         {PHFitTolerance: 1},
		"fit tol above 1":      {PHFitTolerance: 1.5},
		"NaN fit tol":          {PHFitTolerance: math.NaN()},
	}
	m, _ := buildFailRepair(t, 100, 10)
	for name, opts := range invalid {
		if err := opts.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, opts)
		}
		if _, err := RunReplications(m, nil, opts); err == nil {
			t.Errorf("%s: RunReplications accepted %+v", name, opts)
		}
	}
}

func TestOptionsWithDefaults(t *testing.T) {
	def := (Options{}).WithDefaults()
	if def.Mission != 8760 || def.Replications != 100 || def.Confidence != 0.95 || def.Seed != 1 || def.Parallelism < 1 {
		t.Errorf("unexpected defaults: %+v", def)
	}
	// Explicit values survive untouched.
	set := Options{Mission: 10, Replications: 3, Confidence: 0.8, Seed: 42, Parallelism: 2}
	if got := set.WithDefaults(); got != set {
		t.Errorf("WithDefaults changed explicit options: %+v", got)
	}
}

func TestSimulatorResetReproducesRun(t *testing.T) {
	m, up := buildFailRepair(t, 50, 5)
	rewards := []RewardVariable{UpFraction("avail", func(mr MarkingReader) bool { return mr.Tokens(up) == 1 })}
	const seed = 91
	sim, err := NewSimulator(m, rewards, rng.NewStream(seed, "first"))
	if err != nil {
		t.Fatal(err)
	}
	first, err := sim.Run(5000)
	if err != nil {
		t.Fatal(err)
	}
	// Resetting onto a stream with the same seed must replay the replication
	// bit-for-bit: Reset swaps only the stream, so any residue would be a bug.
	if err := sim.Reset(rng.NewStream(seed, "again")); err != nil {
		t.Fatal(err)
	}
	again, err := sim.Run(5000)
	if err != nil {
		t.Fatal(err)
	}
	if first.Rewards["avail"] != again.Rewards["avail"] || first.Events != again.Events {
		t.Errorf("Reset did not reproduce the run: %+v vs %+v", first, again)
	}
	// And it must match a freshly constructed simulator with the same seed.
	fresh, err := NewSimulator(m, rewards, rng.NewStream(seed, "fresh"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := fresh.Run(5000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rewards["avail"] != first.Rewards["avail"] {
		t.Errorf("Reset run diverged from fresh simulator: %v vs %v", res.Rewards["avail"], first.Rewards["avail"])
	}
	if err := sim.Reset(nil); err == nil {
		t.Error("nil stream accepted by Reset")
	}
}

func TestReplicationSeedsContract(t *testing.T) {
	opts := Options{Mission: 1000, Replications: 8, Seed: 13}
	seeds := ReplicationSeeds(opts)
	if len(seeds) != 8 {
		t.Fatalf("seeds = %d, want 8", len(seeds))
	}
	if got := ReplicationSeeds(opts); !equalSeeds(got, seeds) {
		t.Error("ReplicationSeeds not deterministic")
	}
	// Running each replication standalone with the published seeds and
	// folding the results in index order must reproduce RunReplications — the
	// contract sweep engines rely on.
	m, up := buildFailRepair(t, 50, 5)
	rewards := []RewardVariable{UpFraction("avail", func(mr MarkingReader) bool { return mr.Tokens(up) == 1 })}
	study, err := RunReplications(m, rewards, opts)
	if err != nil {
		t.Fatal(err)
	}
	manual := NewStudyResult(rewards, opts.WithDefaults())
	for rep, seed := range seeds {
		sim, err := NewSimulator(m, rewards, ReplicationStream(seed, rep))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(opts.Mission)
		if err != nil {
			t.Fatal(err)
		}
		manual.Add(res)
	}
	if got, want := manual.Summaries["avail"].Mean(), study.Mean("avail"); got != want {
		t.Errorf("manual reduction mean %v != RunReplications %v", got, want)
	}
	if manual.TotalEvents != study.TotalEvents {
		t.Errorf("manual events %d != study %d", manual.TotalEvents, study.TotalEvents)
	}
}

func equalSeeds(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRunReplicationsDeterministicAcrossParallelism(t *testing.T) {
	m, up := buildFailRepair(t, 50, 5)
	rewards := []RewardVariable{UpFraction("avail", func(mr MarkingReader) bool { return mr.Tokens(up) == 1 })}
	seq, err := RunReplications(m, rewards, Options{Mission: 2000, Replications: 16, Seed: 11, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunReplications(m, rewards, Options{Mission: 2000, Replications: 16, Seed: 11, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(seq.Mean("avail")-par.Mean("avail")) > 1e-12 {
		t.Errorf("parallelism changed results: %v vs %v", seq.Mean("avail"), par.Mean("avail"))
	}
}

func TestComposeHelpers(t *testing.T) {
	m := NewModel("composed")
	shared := m.AddPlace("shared/clock", 0)
	// Replicate three components that all feed the shared place.
	err := Replicate(m, "component", 3, func(m *Model, prefix string, index int) error {
		up, err := m.AddPlaceErr(Qualify(prefix, "up"), 1)
		if err != nil {
			return err
		}
		m.AddTimedActivity(Qualify(prefix, "fail"), mustDet(t, float64(index+1))).
			AddInputArc(up, 1).AddOutputArc(shared, 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = Join(m, "cfs", map[string]SubmodelBuilder{
		"meta": func(m *Model, prefix string) error {
			m.AddPlace(Qualify(prefix, "up"), 1)
			return nil
		},
		"data": func(m *Model, prefix string) error {
			m.AddPlace(Qualify(prefix, "up"), 1)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Place("component[0]/up") == nil || m.Place("component[2]/up") == nil {
		t.Error("replicated places missing")
	}
	if m.Place("cfs/meta/up") == nil || m.Place("cfs/data/up") == nil {
		t.Error("joined places missing")
	}
	if err := m.Validate(); err != nil {
		t.Errorf("composed model invalid: %v", err)
	}
	if err := Replicate(m, "x", -1, nil); err == nil {
		t.Error("negative replicate count accepted")
	}
	// Builder errors propagate.
	err = Join(m, "bad", map[string]SubmodelBuilder{
		"dup": func(m *Model, prefix string) error {
			_, err := m.AddPlaceErr("shared/clock", 0)
			return err
		},
	})
	if err == nil {
		t.Error("join builder error not propagated")
	}
	if got := Qualify("", "x"); got != "x" {
		t.Errorf("Qualify empty prefix = %q", got)
	}
}

func TestCompositionTreeRendering(t *testing.T) {
	tree := NewJoinNode("CLUSTER",
		NewAtomicNode("CLIENT"),
		NewJoinNode("CFS_UNIT",
			NewAtomicNode("OSS"),
			NewAtomicNode("OSS_SAN_NW"),
			NewAtomicNode("SAN"),
			NewReplicateNode("DDN_UNITS", 2,
				NewJoinNode("DDN",
					NewAtomicNode("RAID_CONTROLLER"),
					NewReplicateNode("RAID6_TIERS", 24, NewAtomicNode("RAID6_TIER")),
				),
			),
		),
	)
	out := tree.Render()
	for _, want := range []string{"Join(CLUSTER)", "SAN(CLIENT)", "Replicate(DDN_UNITS, n=2)", "Replicate(RAID6_TIERS, n=24)"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered tree missing %q:\n%s", want, out)
		}
	}
	leaves := tree.Leaves()
	if len(leaves) != 6 {
		t.Errorf("leaves = %v, want 6 atomic submodels", leaves)
	}
}

func TestRewardModeString(t *testing.T) {
	if TimeAveraged.String() != "time-averaged" || Accumulated.String() != "accumulated" || InstantAtEnd.String() != "instant-at-end" {
		t.Error("RewardMode strings wrong")
	}
	if RewardMode(0).String() == "time-averaged" {
		t.Error("zero mode should not alias a valid mode")
	}
}

// Property: in a closed token ring (tokens only move between places), the
// total token count is conserved and availability-style rewards stay in
// [0,1].
func TestQuickTokenConservationAndRewardBounds(t *testing.T) {
	f := func(seed uint64, nPlaces, tokens uint8) bool {
		n := int(nPlaces%5) + 2
		k := int(tokens%4) + 1
		m := NewModel("ring")
		places := make([]*Place, n)
		for i := range places {
			init := 0
			if i == 0 {
				init = k
			}
			places[i] = m.AddPlace(Qualify("p", itoa(i)), init)
		}
		for i := range places {
			next := places[(i+1)%n]
			m.AddTimedActivity(Qualify("move", itoa(i)), mustExp(t, float64(i+1))).
				AddInputArc(places[i], 1).AddOutputArc(next, 1)
		}
		total := func(mr MarkingReader) int {
			sum := 0
			for _, p := range places {
				sum += mr.Tokens(p)
			}
			return sum
		}
		rewards := []RewardVariable{
			UpFraction("frac_p0_nonempty", func(mr MarkingReader) bool { return mr.Tokens(places[0]) > 0 }),
			{Name: "final_total", Mode: InstantAtEnd, Rate: func(mr MarkingReader) float64 { return float64(total(mr)) }},
		}
		sim, err := NewSimulator(m, rewards, rng.NewStream(seed, "ring"))
		if err != nil {
			return false
		}
		res, err := sim.Run(50)
		if err != nil {
			return false
		}
		if int(res.Rewards["final_total"]) != k {
			return false
		}
		frac := res.Rewards["frac_p0_nonempty"]
		return frac >= 0 && frac <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// itoa is a tiny helper converting an int to a string without importing
// strconv in every call site of the property test.
func itoa(i int) string {
	if i < 0 {
		return "-" + itoa(-i)
	}
	if i < 10 {
		return string(rune('0' + i))
	}
	return itoa(i/10) + string(rune('0'+i%10))
}

// TestStudyDeterministicAcrossParallelism is the regression test for the
// nondeterministic-aggregation bug: same-seed studies must be bit-identical
// regardless of Parallelism, both in the per-reward Welford summaries and in
// the event totals.
func TestStudyDeterministicAcrossParallelism(t *testing.T) {
	m, up := buildFailRepair(t, 50, 5)
	rewards := []RewardVariable{
		UpFraction("avail", func(mr MarkingReader) bool { return mr.Tokens(up) == 1 }),
		CompletionCount("repairs", "repair"),
	}
	var base *StudyResult
	for _, par := range []int{1, 4, 16} {
		res, err := RunReplications(m, rewards, Options{
			Mission: 500, Replications: 40, Seed: 99, Parallelism: par,
		})
		if err != nil {
			t.Fatal(err)
		}
		res.Options.Parallelism = 0 // the only field allowed to differ
		if base == nil {
			base = res
			continue
		}
		if !reflect.DeepEqual(base.Summaries, res.Summaries) {
			t.Errorf("parallelism %d changed summaries: %+v vs %+v", par, res.Summaries["avail"], base.Summaries["avail"])
		}
		if base.TotalEvents != res.TotalEvents {
			t.Errorf("parallelism %d changed TotalEvents: %d vs %d", par, res.TotalEvents, base.TotalEvents)
		}
	}
}

// buildCaseCounter returns a model whose single repeating activity selects
// between two cases with the given probability functions (nil = share the
// leftover mass), dropping a token into the corresponding counter place.
func buildCaseCounter(t testing.TB, pa, pb func(MarkingReader) float64) (*Model, *Place, *Place) {
	t.Helper()
	m := NewModel("cases")
	clock := m.AddPlace("clock", 1)
	a := m.AddPlace("a", 0)
	b := m.AddPlace("b", 0)
	act := m.AddTimedActivity("tick", mustDet(t, 1)).AddInputArc(clock, 1)
	act.AddCase(Case{Probability: pa, OutputArcs: []Arc{{Place: a, Mult: 1}, {Place: clock, Mult: 1}}})
	act.AddCase(Case{Probability: pb, OutputArcs: []Arc{{Place: b, Mult: 1}, {Place: clock, Mult: 1}}})
	return m, a, b
}

func TestSelectCaseClampsNegativeProbability(t *testing.T) {
	// A negative explicit probability must be treated as 0, so the nil case
	// absorbs the full mass and the negative case is never selected.
	m, a, b := buildCaseCounter(t, func(MarkingReader) float64 { return -0.5 }, nil)
	sim, err := NewSimulator(m, []RewardVariable{
		{Name: "a", Mode: InstantAtEnd, Rate: func(mr MarkingReader) float64 { return float64(mr.Tokens(a)) }},
		{Name: "b", Mode: InstantAtEnd, Rate: func(mr MarkingReader) float64 { return float64(mr.Tokens(b)) }},
	}, rng.NewStream(21, "neg"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(200.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rewards["a"] != 0 {
		t.Errorf("negative-probability case selected %v times", res.Rewards["a"])
	}
	if res.Rewards["b"] != 200 {
		t.Errorf("nil case selected %v times, want 200", res.Rewards["b"])
	}
}

func TestSelectCaseOverUnityMassUsesRelativeWeights(t *testing.T) {
	// Explicit probabilities summing to 4 (3 + 1): the old code always chose
	// the first case because the cumulative sum reached the uniform draw
	// immediately, silently starving the tail. With over-unity mass the draw
	// is scaled to the total, so selection degrades to 3:1 relative weights.
	// Validate catches static over-unity sums, so the ill-formed values are
	// marking-dependent: well-formed in the zero-marking probe state, 3+1
	// once tokens have accumulated (every firing after the first).
	var m *Model
	var a, b *Place
	total := func(mr MarkingReader) float64 { return float64(mr.Tokens(a) + mr.Tokens(b)) }
	m, a, b = buildCaseCounter(t,
		func(mr MarkingReader) float64 {
			if total(mr) > 0 {
				return 3
			}
			return 0.75
		},
		func(mr MarkingReader) float64 {
			if total(mr) > 0 {
				return 1
			}
			return 0.25
		})
	sim, err := NewSimulator(m, []RewardVariable{
		{Name: "a", Mode: InstantAtEnd, Rate: func(mr MarkingReader) float64 { return float64(mr.Tokens(a)) }},
		{Name: "b", Mode: InstantAtEnd, Rate: func(mr MarkingReader) float64 { return float64(mr.Tokens(b)) }},
	}, rng.NewStream(22, "over"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(2000.5)
	if err != nil {
		t.Fatal(err)
	}
	na, nb := res.Rewards["a"], res.Rewards["b"]
	if na+nb != 2000 {
		t.Fatalf("selected %v+%v cases, want 2000", na, nb)
	}
	if nb == 0 {
		t.Fatal("tail case starved despite 1/4 of the relative mass")
	}
	frac := nb / (na + nb)
	if frac < 0.2 || frac > 0.3 {
		t.Errorf("tail case fraction = %v, want ~0.25", frac)
	}
}

func TestUnstableLoopInInitialMarkingReturnsError(t *testing.T) {
	// A vanishing loop live from t=0 is caught during initialization.
	m := NewModel("unstable0")
	a := m.AddPlace("a", 1)
	b := m.AddPlace("b", 0)
	m.AddInstantaneousActivity("ab").AddInputArc(a, 1).AddOutputArc(b, 1)
	m.AddInstantaneousActivity("ba").AddInputArc(b, 1).AddOutputArc(a, 1)
	sim, err := NewSimulator(m, nil, rng.NewStream(9, "unstable0"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(10); !errors.Is(err, ErrUnstableModel) {
		t.Fatalf("Run error = %v, want ErrUnstableModel", err)
	}
}

// monitoredFailRepair builds the fail/repair model with an availability
// reward and a monitor-ready importance function (tokens in down).
func monitoredFailRepair(t testing.TB) (*Model, []RewardVariable, ImportanceFunc) {
	t.Helper()
	m, up := buildFailRepair(t, 30, 3)
	down := m.Place("down")
	rewards := []RewardVariable{
		UpFraction("avail", func(mr MarkingReader) bool { return mr.Tokens(up) == 1 }),
		CompletionCount("repairs", "repair"),
	}
	imp := func(mr MarkingReader) float64 { return float64(mr.Tokens(down)) }
	return m, rewards, imp
}

// TestSnapshotReplayBitIdentical verifies that a snapshot captures the
// complete replication state: restoring it (with the original RNG state)
// into a fresh simulator must replay the remainder of the trajectory
// bit-for-bit, yielding the same rewards and event count as the
// uninterrupted run.
func TestSnapshotReplayBitIdentical(t *testing.T) {
	m, rewards, imp := monitoredFailRepair(t)
	const mission = 400

	var snap *Snapshot
	sim1, err := NewSimulator(m, rewards, rng.NewStream(33, "orig"))
	if err != nil {
		t.Fatal(err)
	}
	full, err := sim1.RunMonitored(mission, &Monitor{
		Importance: imp,
		Threshold:  1,
		OnCross:    func(_ float64, s *Snapshot) { snap = s },
	})
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("no crossing observed; pick a longer mission")
	}
	if snap.Time <= 0 || snap.Time >= mission {
		t.Fatalf("crossing time %v outside (0, %v)", snap.Time, mission)
	}

	// A different seed: RunFrom must restore the stream from the snapshot.
	sim2, err := NewSimulator(m, rewards, rng.NewStream(12345, "replay"))
	if err != nil {
		t.Fatal(err)
	}
	replay, err := sim2.RunFrom(snap, mission, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full, replay) {
		t.Errorf("replayed result differs:\nfull   = %+v\nreplay = %+v", full, replay)
	}
}

func TestRunFromValidation(t *testing.T) {
	m, rewards, _ := monitoredFailRepair(t)
	sim, err := NewSimulator(m, rewards, rng.NewStream(1, "v"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.RunFrom(nil, 10, nil, nil); err == nil {
		t.Error("nil snapshot accepted")
	}
	good := &Snapshot{
		Time:      1,
		Tokens:    make([]int, m.NumPlaces()),
		Scheduled: []float64{math.NaN(), math.NaN()},
		RateAccum: make([]float64, 2),
		LastRate:  make([]float64, 2),
		Impulses:  make([]float64, 2),
		RNG:       rng.NewStream(4, "s").State(),
	}
	good.Tokens[0] = 1
	bad := good.Clone()
	bad.Tokens = bad.Tokens[:1]
	if _, err := sim.RunFrom(bad, 10, nil, nil); err == nil {
		t.Error("wrong place count accepted")
	}
	bad2 := good.Clone()
	bad2.Scheduled = bad2.Scheduled[:1]
	if _, err := sim.RunFrom(bad2, 10, nil, nil); err == nil {
		t.Error("wrong activity count accepted")
	}
	bad3 := good.Clone()
	bad3.RateAccum = nil
	if _, err := sim.RunFrom(bad3, 10, nil, nil); err == nil {
		t.Error("wrong reward count accepted")
	}
	bad4 := good.Clone()
	bad4.RNG = [4]uint64{}
	if _, err := sim.RunFrom(bad4, 10, nil, nil); err == nil {
		t.Error("degenerate RNG state accepted")
	}
	bad5 := good.Clone()
	bad5.Scheduled[0] = 0.5 // before snapshot time
	if _, err := sim.RunFrom(bad5, 10, nil, nil); err == nil {
		t.Error("pending event in the past accepted")
	}
	if _, err := sim.RunFrom(good, 0.5, nil, nil); err == nil {
		t.Error("mission before snapshot time accepted")
	}
	if _, err := sim.RunFrom(good, 10, nil, nil); err != nil {
		t.Errorf("valid snapshot rejected: %v", err)
	}
}

func TestMonitorCrossingAtTimeZero(t *testing.T) {
	// The initial marking already satisfies the threshold: OnCross must fire
	// at t=0 and StopOnCross must prevent any event from executing.
	m := NewModel("t0")
	p := m.AddPlace("p", 5)
	q := m.AddPlace("q", 0)
	m.AddTimedActivity("move", mustDet(t, 1)).AddInputArc(p, 1).AddOutputArc(q, 1)
	sim, err := NewSimulator(m, nil, rng.NewStream(2, "t0"))
	if err != nil {
		t.Fatal(err)
	}
	crossedAt := -1.0
	res, err := sim.RunMonitored(10, &Monitor{
		Importance:  func(mr MarkingReader) float64 { return float64(mr.Tokens(p)) },
		Threshold:   3,
		OnCross:     func(now float64, _ *Snapshot) { crossedAt = now },
		StopOnCross: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if crossedAt != 0 {
		t.Errorf("crossed at %v, want 0", crossedAt)
	}
	if res.Events != 0 {
		t.Errorf("events = %d, want 0 (absorbing crossing at t=0)", res.Events)
	}
}

func TestMonitorCrossesOnceAndSnapshotIsDeep(t *testing.T) {
	m, rewards, imp := monitoredFailRepair(t)
	sim, err := NewSimulator(m, rewards, rng.NewStream(44, "once"))
	if err != nil {
		t.Fatal(err)
	}
	crossings := 0
	var snap *Snapshot
	if _, err := sim.RunMonitored(2000, &Monitor{
		Importance: imp,
		Threshold:  1,
		OnCross: func(_ float64, s *Snapshot) {
			crossings++
			snap = s
		},
	}); err != nil {
		t.Fatal(err)
	}
	// The component fails ~dozens of times over 2000 h, but only the first
	// upcrossing may fire.
	if crossings != 1 {
		t.Errorf("crossings = %d, want 1", crossings)
	}
	clone := snap.Clone()
	clone.Tokens[0]++
	clone.Reseed(7)
	if snap.Tokens[0] == clone.Tokens[0] {
		t.Error("Clone aliases Tokens")
	}
	if snap.RNG == clone.RNG {
		t.Error("Reseed did not change the clone's RNG state")
	}
}

func TestSelectCaseUnderUnityMassUsesRelativeWeights(t *testing.T) {
	// Explicit probabilities summing to 0.5 (0.2 + 0.3) with no nil case to
	// absorb the leftovers: the old code gave the whole missing mass to the
	// last case (selected 80% of the time); selection must renormalize to
	// the 2:3 relative weights. As above, the values are marking-dependent
	// so Validate's static-sum check does not reject the model.
	var m *Model
	var a, b *Place
	total := func(mr MarkingReader) float64 { return float64(mr.Tokens(a) + mr.Tokens(b)) }
	m, a, b = buildCaseCounter(t,
		func(mr MarkingReader) float64 {
			if total(mr) > 0 {
				return 0.2
			}
			return 0.4
		},
		func(mr MarkingReader) float64 {
			if total(mr) > 0 {
				return 0.3
			}
			return 0.6
		})
	sim, err := NewSimulator(m, []RewardVariable{
		{Name: "a", Mode: InstantAtEnd, Rate: func(mr MarkingReader) float64 { return float64(mr.Tokens(a)) }},
		{Name: "b", Mode: InstantAtEnd, Rate: func(mr MarkingReader) float64 { return float64(mr.Tokens(b)) }},
	}, rng.NewStream(23, "under"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(2000.5)
	if err != nil {
		t.Fatal(err)
	}
	na, nb := res.Rewards["a"], res.Rewards["b"]
	if na+nb != 2000 {
		t.Fatalf("selected %v+%v cases, want 2000", na, nb)
	}
	frac := nb / (na + nb)
	if frac < 0.55 || frac > 0.65 {
		t.Errorf("second case fraction = %v, want ~0.6 (renormalized 0.3/0.5)", frac)
	}
}

// TestSnapshotReplayPreservesTieOrder pins the engine's same-time tiebreak
// across snapshot/restore: two deterministic activities competing for one
// shared token complete at the same instant, and the one scheduled first in
// the original run must win in the replay too, even though it has the higher
// activity index.
func TestSnapshotReplayPreservesTieOrder(t *testing.T) {
	m := NewModel("tie")
	shared := m.AddPlace("shared", 1)
	trigA := m.AddPlace("trig_a", 0)
	trigB := m.AddPlace("trig_b", 0)
	wonA := m.AddPlace("won_a", 0)
	wonB := m.AddPlace("won_b", 0)
	// B's trigger arrives at t=1, A's at t=2; both then complete at t=10,
	// so B is scheduled first (lower engine sequence) despite A's lower
	// activity index.
	m.AddTimedActivity("arm_b", mustDet(t, 1)).AddOutputArc(trigB, 1)
	m.AddTimedActivity("arm_a", mustDet(t, 2)).AddOutputArc(trigA, 1)
	m.AddTimedActivity("a", mustDet(t, 8)).AddInputArc(trigA, 1).AddInputArc(shared, 1).AddOutputArc(wonA, 1)
	m.AddTimedActivity("b", mustDet(t, 9)).AddInputArc(trigB, 1).AddInputArc(shared, 1).AddOutputArc(wonB, 1)
	rewards := []RewardVariable{
		{Name: "won_a", Mode: InstantAtEnd, Rate: func(mr MarkingReader) float64 { return float64(mr.Tokens(wonA)) }},
		{Name: "won_b", Mode: InstantAtEnd, Rate: func(mr MarkingReader) float64 { return float64(mr.Tokens(wonB)) }},
	}

	var snap *Snapshot
	sim1, err := NewSimulator(m, rewards, rng.NewStream(3, "tie"))
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot at t=2 (A's trigger arrival), when both ties are pending.
	full, err := sim1.RunMonitored(20, &Monitor{
		Importance: func(mr MarkingReader) float64 { return float64(mr.Tokens(trigA)) },
		Threshold:  1,
		OnCross:    func(_ float64, s *Snapshot) { snap = s },
	})
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.Time != 2 {
		t.Fatalf("expected snapshot at t=2, got %+v", snap)
	}
	if full.Rewards["won_b"] != 1 || full.Rewards["won_a"] != 0 {
		t.Fatalf("original run: b (scheduled first) should win the tie: %+v", full.Rewards)
	}

	sim2, err := NewSimulator(m, rewards, rng.NewStream(999, "tie-replay"))
	if err != nil {
		t.Fatal(err)
	}
	replay, err := sim2.RunFrom(snap, 20, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full, replay) {
		t.Errorf("replay diverged on tied events:\nfull   = %+v\nreplay = %+v", full, replay)
	}
}
