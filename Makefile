GO ?= go
# BENCHTIME tunes the bench target (e.g. BENCHTIME=1x for a CI smoke pass).
BENCHTIME ?= 1s

.PHONY: all build lint test race vet bench bench-all cover examples clean

all: build vet lint test

build:
	$(GO) build ./...

# Static analysis: the determinism contract (no wall clock, no global rand,
# no unordered map iteration in the deterministic packages) and the model
# invariants (no mutation after Compile, options validated before use, no
# discarded errors). Exits non-zero on any finding.
lint:
	$(GO) run ./cmd/sanlint ./...

# -shuffle=on randomizes test order so inter-test state dependencies cannot
# hide; the determinism contract means every test must pass in any order.
test:
	$(GO) test -shuffle=on ./...

# Race-check the packages with concurrent replication runners, the sharded
# sweep engine, the snapshot/clone machinery of the rare-event engine, the
# calibration pipeline feeding the sweep (paper_full), the discrete-event
# core, the checkpoint/restore machinery, and the experiment drivers.
# The experiments package exceeds Go's default 10m test-binary deadline
# under the race detector, so the timeout is set explicitly.
race:
	$(GO) test -race -timeout 30m ./internal/san/... ./internal/statespace/... ./internal/sweep/... ./internal/rareevent/... ./internal/calibrate/... ./internal/des/... ./internal/checkpoint/... ./internal/experiments/...

vet:
	$(GO) vet ./...

# Perf trajectory: run the sweep + petascale benchmarks (the sharded Figure 4
# sweep and the flat-vs-lumped petascale point) and emit both the raw
# benchstat-compatible text and a machine-readable BENCH_sweep.json. The
# output is captured to the file first (not piped through tee) so a failing
# benchmark fails the target instead of being masked by the pipe's exit
# status.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkFigure4Sweep|BenchmarkPetascalePoint|BenchmarkSolverVsSimulation|BenchmarkFitSolverVsSimulation|BenchmarkExploreSolve|BenchmarkSweepSolveCache' -benchmem -benchtime $(BENCHTIME) -timeout 60m . > BENCH_sweep.txt || { cat BENCH_sweep.txt; exit 1; }
	cat BENCH_sweep.txt
	$(GO) run ./cmd/benchjson -in BENCH_sweep.txt -out BENCH_sweep.json

# Every benchmark in the repository (slow).
bench-all:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

# Smoke-run every example binary end-to-end.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/disk_sensitivity
	$(GO) run ./examples/raid_tradeoff
	$(GO) run ./examples/petascale_scaling
	$(GO) run ./examples/log_analysis
	$(GO) run ./examples/calibrated_abe
	$(GO) run ./examples/rare_event
	$(GO) run ./examples/shared_repair_crew

# Smoke-run the single-shot paper reproduction (tiny replication counts) and
# check it emits one valid JSON document.
paper-smoke:
	$(GO) run ./cmd/abesim -experiment paper_full -quick -replications 4 -mission 2190 -json > /dev/null

clean:
	$(GO) clean ./...
	rm -f coverage.out BENCH_sweep.txt BENCH_sweep.json
