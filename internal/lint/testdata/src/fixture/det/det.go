// Package det exercises the nodeterminism rule: it is listed in the
// fixture's deterministic package set, so wall-clock reads, global
// math/rand, and unordered map iteration are violations here.
package det

import (
	"math/rand" // want nodeterminism
	"sort"
	"time"
)

// Stamp reads the wall clock.
func Stamp() string {
	return time.Now().String() // want nodeterminism
}

// Pick sums map values in unspecified order and draws from the global
// generator.
func Pick(m map[string]int) int {
	total := 0
	for _, v := range m { // want nodeterminism
		total += v
	}
	return total + rand.Intn(3)
}

// SortedKeys uses the collect-then-sort idiom, which the rule recognizes
// without an annotation.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Union is order-insensitive by construction, so the range is annotated.
func Union(a, b map[string]bool) map[string]bool {
	out := map[string]bool{}
	// Set union: insertion order cannot be observed.
	for k := range a { //lint:sorted
		out[k] = true
	}
	//lint:sorted set union again, annotation on the line above
	for k := range b {
		out[k] = true
	}
	return out
}

// SliceRange iterates a slice, which is ordered and always fine.
func SliceRange(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
