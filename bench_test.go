package repro

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (plus the ablations listed in DESIGN.md). Each benchmark
// regenerates the corresponding artifact end to end — log generation and
// analysis for Tables 1-4, model construction for Figure 1, and replicated
// Monte Carlo simulation for Figures 2-4 — using the Quick experiment
// options so a full `go test -bench=.` pass stays tractable. The rendered
// outputs (the rows/series the paper reports) are recorded in
// EXPERIMENTS.md; these benchmarks measure the cost of regenerating them and
// guard against regressions in the pipeline.

import (
	"testing"

	"repro/internal/abe"
	"repro/internal/experiments"
	"repro/internal/raid"
	"repro/internal/san"
	"repro/internal/statespace"
	"repro/internal/sweep"
)

// benchOptions keeps per-iteration cost bounded: quick sweeps, few
// replications, half-year missions for the heavier composed-model studies.
func benchOptions() experiments.Options {
	return experiments.Options{Quick: true, Replications: 8, MissionHours: 4380, Seed: 1}
}

func runExperiment(b *testing.B, name string) {
	b.Helper()
	opts := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := experiments.Run(name, opts)
		if err != nil {
			b.Fatalf("experiment %s: %v", name, err)
		}
		if out == "" {
			b.Fatalf("experiment %s produced no output", name)
		}
	}
}

// BenchmarkTable1OutageLog regenerates Table 1 (Lustre-FS outage list and
// availability) from synthetic SAN logs.
func BenchmarkTable1OutageLog(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable2MountFailures regenerates Table 2 (per-day Lustre mount
// failures reported by compute nodes).
func BenchmarkTable2MountFailures(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkTable3JobStats regenerates Table 3 (job execution statistics).
func BenchmarkTable3JobStats(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkTable4DiskSurvival regenerates Table 4 (disk failure log and the
// censored Weibull survival fit).
func BenchmarkTable4DiskSurvival(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkTable5ParameterSpace regenerates Table 5 (model parameters for
// the ABE and petascale configurations).
func BenchmarkTable5ParameterSpace(b *testing.B) { runExperiment(b, "table5") }

// BenchmarkFigure1ModelComposition builds and validates the composed
// replicate/join CFS model (Figure 1).
func BenchmarkFigure1ModelComposition(b *testing.B) { runExperiment(b, "figure1") }

// BenchmarkFigure2StorageAvailability regenerates Figure 2 (storage
// availability versus storage size for several disk/RAID configurations).
func BenchmarkFigure2StorageAvailability(b *testing.B) { runExperiment(b, "figure2") }

// BenchmarkFigure3DiskReplacement regenerates Figure 3 (disks replaced per
// week versus number of disks for several AFRs).
func BenchmarkFigure3DiskReplacement(b *testing.B) { runExperiment(b, "figure3") }

// BenchmarkFigure4AvailabilityAndCU regenerates Figure 4 (storage/CFS
// availability, cluster utility, and the spare-OSS alternative versus scale).
func BenchmarkFigure4AvailabilityAndCU(b *testing.B) { runExperiment(b, "figure4") }

// BenchmarkAblationCorrelation sweeps the correlated-failure propagation
// probability at petascale (the design factor the paper blames for the CFS
// availability drop).
func BenchmarkAblationCorrelation(b *testing.B) { runExperiment(b, "ablation-correlation") }

// BenchmarkAblationAnalyticVsSim cross-checks the SAN simulation against the
// analytic birth-death tier model for exponential disks.
func BenchmarkAblationAnalyticVsSim(b *testing.B) { runExperiment(b, "ablation-analytic") }

// BenchmarkExtensionCheckpoint runs the future-work extension: the
// checkpoint/restart efficiency implied by the measured CFS dependability at
// ABE and petascale sizes.
func BenchmarkExtensionCheckpoint(b *testing.B) { runExperiment(b, "extension-checkpoint") }

// BenchmarkFigure4Sweep compares the two ways of running the Figure 4
// scaling study at equal replication counts and identical per-point seeds:
// "sharded" schedules every (configuration, replication) job of the whole
// sweep over one shared worker pool with per-configuration cached models and
// simulators (internal/sweep), while "per-config" evaluates each point with
// its own abe.Evaluate — a fresh pool, model, and simulator set per
// configuration. Both produce bit-identical measures; the benchmark isolates
// the scheduling and caching win.
func BenchmarkFigure4Sweep(b *testing.B) {
	opts := san.Options{Mission: 2190, Replications: 8, Seed: 1}
	figure4Points := func() []sweep.Point {
		return experiments.Figure4Points(opts.Seed, experiments.Figure4ScaleFactors(true))
	}
	b.Run("sharded", func(b *testing.B) {
		points := figure4Points()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := sweep.Run(points, opts)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Points) != len(points) {
				b.Fatalf("points = %d, want %d", len(res.Points), len(points))
			}
		}
	})
	b.Run("per-config", func(b *testing.B) {
		points := figure4Points()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, pt := range points {
				ptOpts := opts
				ptOpts.Seed = pt.Seed
				if _, err := abe.Evaluate(pt.Config, ptOpts); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	// The pre-sweep evaluation loop: a fresh Simulator per replication (so
	// the O(model) dependency and impulse indexes are re-derived every time)
	// and a serial reduction per configuration. Kept as the historical
	// baseline the sharded engine is measured against.
	b.Run("per-replication-simulators", func(b *testing.B) {
		points := figure4Points()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, pt := range points {
				ptOpts := opts
				ptOpts.Seed = pt.Seed
				ptOpts = ptOpts.WithDefaults()
				model := san.NewModel(pt.Config.Name)
				mp, err := abe.Build(model, pt.Config)
				if err != nil {
					b.Fatal(err)
				}
				rewards := mp.Rewards()
				study := san.NewStudyResult(rewards, ptOpts)
				for rep, seed := range san.ReplicationSeeds(ptOpts) {
					sim, err := san.NewSimulator(model, rewards, san.ReplicationStream(seed, rep))
					if err != nil {
						b.Fatal(err)
					}
					res, err := sim.Run(ptOpts.Mission)
					if err != nil {
						b.Fatal(err)
					}
					study.Add(res)
				}
				if _, err := abe.MeasuresFromStudy(pt.Config, study); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkPetascalePoint measures the largest Figure 4 point — the x10
// petascale configuration, 81 OSS pairs / 20 DDN units / 4800 disks — in
// its exponential-forms variant (Table 5's rate parameters taken
// literally), evaluated flat and lumped. The two representations are
// stochastically equivalent (strong lumpability; pinned by
// abe.TestLumpedBuildMatchesFlat and the closed-form exponential
// availability checks), but the lumped model replaces ~11k per-component
// places/activities with a few dozen counted populations: the acceptance
// target is >= 3x wall-clock and a materially lower events/rep metric.
// Weibull-aged disks (the default petascale disk model) have no exact
// lumping and always run flat — that regime is covered by the other
// benchmarks.
func BenchmarkPetascalePoint(b *testing.B) {
	base := abe.Petascale().WithExponentialForms()
	opts := san.Options{Mission: 8760, Replications: 4, Seed: 1}
	for _, tc := range []struct {
		name string
		cfg  abe.Config
	}{
		{"flat", base},
		{"lumped", base.WithLumping(true)},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			var events, reps uint64
			for i := 0; i < b.N; i++ {
				model := san.NewModel(tc.cfg.Name)
				mp, err := abe.Build(model, tc.cfg)
				if err != nil {
					b.Fatal(err)
				}
				study, err := san.RunReplications(model, mp.Rewards(), opts)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := abe.MeasuresFromStudy(tc.cfg, study); err != nil {
					b.Fatal(err)
				}
				events += study.TotalEvents
				reps += uint64(opts.Replications)
			}
			b.ReportMetric(float64(events)/float64(reps), "events/rep")
		})
	}
}

// BenchmarkSolverVsSimulation measures the two tiers the sweep engine now
// selects between on the exponential-forms figure4 cross-check point (the
// largest configuration whose composed model passes the structural
// certificate): "uniformization" runs certification plus the exact transient
// solve end to end through sweep.Run, "simulation" forces the same model
// through a full 60-replication study. The comparison is at unequal
// accuracy: the solver's answer is exact (zero variance), while 60
// replications leave a ~4e-2 CFS-availability half-width (reported as the
// cfs_hw metric). At matched accuracy the solver wins by orders of
// magnitude — halving a simulation half-width costs 4x the replications, so
// closing a 4e-2 interval to even 1e-3 needs ~1600x the simulated work —
// which is why the sweep engine always prefers a certified analytic answer
// regardless of the raw wall-clock ratio on small models.
func BenchmarkSolverVsSimulation(b *testing.B) {
	opts := san.Options{Mission: 8760, Replications: 60, Confidence: 0.95, Seed: 1}
	pair := experiments.Figure4CrossCheckPoints(opts.Seed)
	for _, tc := range []struct {
		name   string
		point  sweep.Point
		method string
	}{
		{"uniformization", pair[0], sweep.MethodUniformization},
		{"simulation", pair[1], sweep.MethodSimulation},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			var hw float64
			for i := 0; i < b.N; i++ {
				res, err := sweep.Run([]sweep.Point{tc.point}, opts)
				if err != nil {
					b.Fatal(err)
				}
				if got := res.Points[0].Solver.Method; got != tc.method {
					b.Fatalf("solved by %q, want %q (reasons %v)", got, tc.method, res.Points[0].Solver.Reasons)
				}
				hw = res.Points[0].Measures.Intervals[abe.RewardCFSAvailability].HalfWidth
			}
			b.ReportMetric(hw, "cfs_hw")
		})
	}
}

// BenchmarkFitSolverVsSimulation is the approximate-tier counterpart of
// BenchmarkSolverVsSimulation: the Weibull-disk mini configuration has no
// exact phase-type form, so "uniformization-approx" runs certification,
// the certified phase-type fit (tolerance experiments.Figure4FitTolerance),
// and the exact transient solve of the surrogate end to end through
// sweep.Run, while "simulation" forces the original Weibull model through
// a full 60-replication study. The accuracy comparison carries one extra
// term: the analytic answer is exact for the surrogate and within the
// certified Kolmogorov bound of the original, while the simulation's
// half-width (cfs_hw) shrinks only as 1/sqrt(replications).
func BenchmarkFitSolverVsSimulation(b *testing.B) {
	opts := san.Options{Mission: 8760, Replications: 60, Confidence: 0.95, Seed: 1,
		PHFitTolerance: experiments.Figure4FitTolerance}
	pair := experiments.Figure4WeibullCrossCheckPoints(opts.Seed)
	for _, tc := range []struct {
		name   string
		point  sweep.Point
		method string
	}{
		{"uniformization-approx", pair[0], sweep.MethodUniformizationApprox},
		{"simulation", pair[1], sweep.MethodSimulation},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			var hw float64
			for i := 0; i < b.N; i++ {
				res, err := sweep.Run([]sweep.Point{tc.point}, opts)
				if err != nil {
					b.Fatal(err)
				}
				if got := res.Points[0].Solver.Method; got != tc.method {
					b.Fatalf("solved by %q, want %q (reasons %v)", got, tc.method, res.Points[0].Solver.Reasons)
				}
				hw = res.Points[0].Measures.Intervals[abe.RewardCFSAvailability].HalfWidth
			}
			b.ReportMetric(hw, "cfs_hw")
		})
	}
}

// BenchmarkAblationSpareOSS isolates the standby-spare OSS design choice at
// petascale (Figure 4's fourth series) without the rest of the sweep.
func BenchmarkAblationSpareOSS(b *testing.B) {
	opts := san.Options{Mission: 4380, Replications: 8, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		base, err := abe.Evaluate(abe.Petascale(), opts)
		if err != nil {
			b.Fatal(err)
		}
		spare, err := abe.Evaluate(abe.Petascale().WithSpareOSS(true), opts)
		if err != nil {
			b.Fatal(err)
		}
		if spare.CFSAvailability < base.CFSAvailability-0.05 {
			b.Fatalf("spare OSS regressed availability: %v vs %v", spare.CFSAvailability, base.CFSAvailability)
		}
	}
}

// BenchmarkAblationReplicationCount measures the cost of the ABE composed
// model per replication count, the knob that trades confidence-interval
// width against runtime.
func BenchmarkAblationReplicationCount(b *testing.B) {
	for _, reps := range []int{4, 16, 64} {
		reps := reps
		b.Run(benchName("replications", reps), func(b *testing.B) {
			cfg := abe.ABE()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := abe.Evaluate(cfg, san.Options{Mission: 4380, Replications: reps, Seed: 2}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkModelConstruction measures building (not simulating) the composed
// model at ABE and petascale sizes — the fixed cost every study pays.
func BenchmarkModelConstruction(b *testing.B) {
	for _, tc := range []struct {
		name string
		cfg  abe.Config
	}{
		{"ABE", abe.ABE()},
		{"Petascale", abe.Petascale()},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				model := san.NewModel(tc.cfg.Name)
				if _, err := abe.Build(model, tc.cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStorageSimulationPerDisk measures the raw simulation throughput
// of the storage submodel as the disk count grows (Figure 2/3 inner loop).
func BenchmarkStorageSimulationPerDisk(b *testing.B) {
	for _, disks := range []int{480, 4800} {
		disks := disks
		b.Run(benchName("disks", disks), func(b *testing.B) {
			cfg, err := raid.ABEStorage().ScaledToDisks(disks)
			if err != nil {
				b.Fatal(err)
			}
			model := san.NewModel("bench-storage")
			sp, err := raid.BuildStorage(model, "storage", cfg)
			if err != nil {
				b.Fatal(err)
			}
			rewards := []san.RewardVariable{sp.AvailabilityReward("availability")}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := san.RunReplications(model, rewards, san.Options{Mission: 8760, Replications: 4, Seed: uint64(i + 1)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// miniWeibullCertifySolve runs the MiniWeibull certify+solve path once, the
// way the sweep's solver pre-pass executes it for one point: fresh model
// build, the certified approximate fitting tier at the figure4 tolerance,
// and the exact transient solve of the surrogate at the one-year mission.
func miniWeibullCertifySolve(b *testing.B, opts statespace.Options) {
	b.Helper()
	cfg := abe.MiniWeibull()
	model := san.NewModel(cfg.Name)
	mp, err := abe.Build(model, cfg)
	if err != nil {
		b.Fatal(err)
	}
	gen, cert, rep, err := statespace.CertifyFitted(model, mp.Rewards(), experiments.Figure4FitTolerance, opts)
	if err != nil {
		b.Fatal(err)
	}
	if !cert.Certified() || len(rep.Fits) == 0 {
		b.Fatalf("refused: %s", cert.Summary())
	}
	if _, err := gen.SolveTransient(8760); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkExploreSolve measures the MiniWeibull certify+solve path — the
// sweep's analytic tier on the Weibull-disk cross-check configuration (a
// 27k-state, 304k-edge CTMC after phase-type fitting) — before and after this
// optimization round, at two granularities.
//
// The sweep-scale pair is the headline: "sweep-prepr" replays the pre-PR
// solver pre-pass over three fingerprint-identical MiniWeibull points (the
// cross-check-twin workload: every duplicate paid a full sequential
// certify+solve on the reference implementations), while "sweep-cached" runs
// the same three points through sweep.Run — interned parallel exploration,
// gather solver kernels, and the content-addressed solve cache deduplicating
// the duplicates to one computation.
//
// The point-scale pair isolates the kernels without the cache on a single
// point: "point-baseline" is the sequential reference path (string-keyed
// interning, scatter SpMV), "point-optimized" the production path. The two
// produce the same chain (pinned by the statespace differential tests); the
// solve is dominated by a power iteration to stationarity whose SpMV runs at
// the single-thread issue-width floor, so the kernel-only win is smaller
// than the sweep-scale one.
func BenchmarkExploreSolve(b *testing.B) {
	const dupPoints = 3
	b.Run("sweep-prepr", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for p := 0; p < dupPoints; p++ {
				miniWeibullCertifySolve(b, statespace.Options{Baseline: true})
			}
		}
	})
	b.Run("sweep-cached", func(b *testing.B) {
		opts := san.Options{Mission: 8760, Replications: 8, Seed: 1,
			PHFitTolerance: experiments.Figure4FitTolerance}
		points := make([]sweep.Point, dupPoints)
		for p := range points {
			points[p] = sweep.Point{Label: benchName("dup", p), Config: abe.MiniWeibull()}
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := sweep.Run(points, opts)
			if err != nil {
				b.Fatal(err)
			}
			for _, pt := range res.Points {
				if pt.Solver.Method != sweep.MethodUniformizationApprox {
					b.Fatalf("point %q solved by %q, want uniformization-approx", pt.Label, pt.Solver.Method)
				}
			}
		}
	})
	b.Run("point-baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			miniWeibullCertifySolve(b, statespace.Options{Baseline: true})
		}
	})
	b.Run("point-optimized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			miniWeibullCertifySolve(b, statespace.Options{})
		}
	})
}

// BenchmarkSweepSolveCache measures the sweep's content-addressed solve cache
// on analytic points: "unique" sweeps four fingerprint-distinct mini
// configurations (every point certifies and solves — all misses), "duplicate"
// sweeps four copies of the same configuration (one miss, three hits sharing
// its memoized outcome). Both sweeps produce full reports; the gap is the
// certify+solve work the cache deduplicates.
func BenchmarkSweepSolveCache(b *testing.B) {
	opts := san.Options{Mission: 8760, Replications: 8, Seed: 1}
	uniquePoints := func() []sweep.Point {
		points := make([]sweep.Point, 4)
		for i := range points {
			cfg := abe.MiniExponential()
			// Distinct disk MTBFs give every point its own fingerprint
			// without changing the model's shape or state space.
			cfg.Storage.Disk.MTBFHours = 1000 + 100*float64(i)
			points[i] = sweep.Point{Label: benchName("unique", i), Config: cfg}
		}
		return points
	}
	duplicatePoints := func() []sweep.Point {
		points := make([]sweep.Point, 4)
		for i := range points {
			points[i] = sweep.Point{Label: benchName("dup", i), Config: abe.MiniExponential()}
		}
		return points
	}
	for _, tc := range []struct {
		name   string
		points func() []sweep.Point
	}{
		{"unique", uniquePoints},
		{"duplicate", duplicatePoints},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			points := tc.points()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := sweep.Run(points, opts)
				if err != nil {
					b.Fatal(err)
				}
				for _, pt := range res.Points {
					if pt.Solver.Method != sweep.MethodUniformization {
						b.Fatalf("point %q solved by %q, want uniformization", pt.Label, pt.Solver.Method)
					}
				}
			}
		})
	}
}

// benchName formats sub-benchmark labels without fmt in the hot path.
func benchName(prefix string, n int) string {
	digits := ""
	if n == 0 {
		digits = "0"
	}
	for n > 0 {
		digits = string(rune('0'+n%10)) + digits
		n /= 10
	}
	return prefix + "-" + digits
}
