package core

import (
	"strings"
	"testing"

	"repro/internal/abe"
	"repro/internal/loggen"
	"repro/internal/san"
)

// quickOpts keeps simulation-backed tests fast.
func quickOpts() san.Options {
	return san.Options{Mission: 4380, Replications: 8, Seed: 7}
}

func TestCalibrateFromLogs(t *testing.T) {
	logs, err := loggen.Generate(loggen.ABEConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg, rates, err := CalibrateFromLogs(logs, abe.ABE(), 480)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Storage.Disk.ShapeBeta != rates.DiskWeibullShape {
		t.Errorf("calibrated shape %v != derived %v", cfg.Storage.Disk.ShapeBeta, rates.DiskWeibullShape)
	}
	if cfg.Storage.Disk.MTBFHours != rates.DiskMTBFHours {
		t.Errorf("calibrated MTBF %v != derived %v", cfg.Storage.Disk.MTBFHours, rates.DiskMTBFHours)
	}
	if cfg.Workload.JobsPerHour != rates.JobsPerHour {
		t.Errorf("calibrated job rate %v != derived %v", cfg.Workload.JobsPerHour, rates.JobsPerHour)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("calibrated config invalid: %v", err)
	}
	if _, _, err := CalibrateFromLogs(nil, abe.ABE(), 480); err == nil {
		t.Error("nil logs accepted")
	}
}

func TestCompareDesigns(t *testing.T) {
	designs := []DesignChoice{
		{Name: "ABE (8+2)", Config: abe.ABE()},
		{Name: "ABE with spare OSS", Config: abe.ABE().WithSpareOSS(true)},
	}
	table, measures, err := CompareDesigns(designs, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(measures) != 2 {
		t.Fatalf("measures = %d, want 2", len(measures))
	}
	out := table.Render()
	if !strings.Contains(out, "ABE (8+2)") || !strings.Contains(out, "spare OSS") {
		t.Errorf("comparison table missing designs:\n%s", out)
	}
	if _, _, err := CompareDesigns(nil, quickOpts()); err != ErrNoDesigns {
		t.Errorf("empty designs error = %v, want ErrNoDesigns", err)
	}
	bad := []DesignChoice{{Name: "bad", Config: abe.Config{}}}
	if _, _, err := CompareDesigns(bad, quickOpts()); err == nil {
		t.Error("invalid design accepted")
	}
}

func TestScalingStudy(t *testing.T) {
	fig, measures, err := ScalingStudy(abe.ABE(), []float64{1, 5}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(measures) != 2 {
		t.Fatalf("measures = %d, want 2", len(measures))
	}
	cfs := fig.SeriesY("CFS-Availability")
	if len(cfs) != 2 {
		t.Fatalf("CFS series = %v", cfs)
	}
	if !(cfs[1] < cfs[0]) {
		t.Errorf("availability should decrease with scale: %v", cfs)
	}
	if _, _, err := ScalingStudy(abe.ABE(), nil, quickOpts()); err == nil {
		t.Error("empty factors accepted")
	}
}

func TestRecommendSpareOSS(t *testing.T) {
	// At petascale the paper finds ~3% improvement; with few replications we
	// only require a positive, sensible delta and a non-empty finding.
	rec, err := RecommendSpareOSS(abe.Petascale(), san.Options{Mission: 8760, Replications: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Delta <= 0 || rec.Delta > 0.1 {
		t.Errorf("spare OSS delta = %v, want a small positive improvement", rec.Delta)
	}
	if !strings.Contains(rec.Finding, "standby-spare OSS") {
		t.Errorf("finding = %q", rec.Finding)
	}
	if _, err := RecommendSpareOSS(abe.Config{}, quickOpts()); err == nil {
		t.Error("invalid config accepted")
	}
}
