package calibrate

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/abe"
	"repro/internal/loggen"
)

func TestCalibrateFromABELogs(t *testing.T) {
	cfg := loggen.ABEConfig()
	logs, err := loggen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := Calibrate(logs, cfg.Disks)
	if err != nil {
		t.Fatal(err)
	}
	if err := cal.Config.Validate(); err != nil {
		t.Fatalf("calibrated config invalid: %v", err)
	}
	if !strings.Contains(cal.Config.Name, "log-calibrated") {
		t.Errorf("calibrated config name %q should mark its origin", cal.Config.Name)
	}

	// The calibrated fields must come from the derived rates, not the base.
	if cal.Config.Storage.Disk.ShapeBeta != cal.Rates.DiskWeibullShape {
		t.Errorf("disk shape %v != derived %v", cal.Config.Storage.Disk.ShapeBeta, cal.Rates.DiskWeibullShape)
	}
	if cal.Config.Storage.Disk.MTBFHours != cal.Rates.DiskMTBFHours {
		t.Errorf("disk MTBF %v != derived %v", cal.Config.Storage.Disk.MTBFHours, cal.Rates.DiskMTBFHours)
	}
	if cal.Config.Workload.JobsPerHour != cal.Rates.JobsPerHour {
		t.Errorf("job rate %v != derived %v", cal.Config.Workload.JobsPerHour, cal.Rates.JobsPerHour)
	}
	if got, want := cal.Config.Infrastructure.FabricMTBFHours, 720/cal.Rates.OutagesPerMonth; math.Abs(got-want) > 1e-9 {
		t.Errorf("fabric MTBF %v != 720/outage rate %v", got, want)
	}
	lo, hi := cal.Config.Infrastructure.FabricRepairLoHours, cal.Config.Infrastructure.FabricRepairHiHours
	if !(lo > 0) || hi < lo {
		t.Errorf("fabric repair range [%v, %v] invalid", lo, hi)
	}
	if got := (lo + hi) / 2; math.Abs(got-cal.Rates.MeanOutageHours) > 1e-9 {
		t.Errorf("Uniform fabric repair mean %v != empirical mean outage %v", got, cal.Rates.MeanOutageHours)
	}

	// Fitted distributions round numbers through exactly.
	if got := cal.DiskLifetime.Mean(); math.Abs(got-cal.Rates.DiskMTBFHours) > 1e-6*cal.Rates.DiskMTBFHours {
		t.Errorf("disk lifetime mean %v != fitted MTBF %v", got, cal.Rates.DiskMTBFHours)
	}
	if cal.DiskLifetime.Shape() != cal.Rates.DiskWeibullShape {
		t.Errorf("disk lifetime shape %v != fitted %v", cal.DiskLifetime.Shape(), cal.Rates.DiskWeibullShape)
	}
	if cal.OutageDuration.N() != len(cal.Outages.Outages) {
		t.Errorf("outage duration sample n=%d, want %d", cal.OutageDuration.N(), len(cal.Outages.Outages))
	}
	// The synthetic generator replaces disks 4 h after each failure, so the
	// observed repair lags must recover that constant.
	if !cal.HasDiskRepair {
		t.Fatal("ABE logs contain replacements; repair distribution missing")
	}
	if got := cal.DiskRepair.Mean(); math.Abs(got-4) > 0.5 {
		t.Errorf("mean observed disk repair lag %v h, want ~4 (generator constant)", got)
	}
	if got := cal.Config.Storage.Disk.ReplaceHours; math.Abs(got-4) > 0.5 {
		t.Errorf("calibrated replace hours %v, want ~4", got)
	}

	// Provenance: every entry has a source, and the core parameters are
	// present with the values applied to the config.
	if len(cal.Provenance) < 10 {
		t.Fatalf("provenance has %d entries, want the full parameter set", len(cal.Provenance))
	}
	byName := map[string]Parameter{}
	for _, p := range cal.Provenance {
		if p.Source == "" {
			t.Errorf("parameter %q missing source", p.Name)
		}
		byName[p.Name] = p
	}
	for name, want := range map[string]float64{
		"disk_weibull_shape":        cal.Config.Storage.Disk.ShapeBeta,
		"disk_mtbf_hours":           cal.Config.Storage.Disk.MTBFHours,
		"jobs_per_hour":             cal.Config.Workload.JobsPerHour,
		"fabric_mtbf_hours":         cal.Config.Infrastructure.FabricMTBFHours,
		"transient_events_per_hour": cal.Config.Workload.TransientEventsPerHour,
	} {
		p, ok := byName[name]
		if !ok {
			t.Errorf("provenance missing %q", name)
			continue
		}
		if p.Value != want {
			t.Errorf("provenance %q = %v, config holds %v", name, p.Value, want)
		}
	}
	if byName["disk_weibull_shape"].Source != SourceSurvival || byName["jobs_per_hour"].Source != SourceJobs ||
		byName["fabric_mtbf_hours"].Source != SourceOutages {
		t.Errorf("provenance sources misattributed: %+v", byName)
	}

	// Rendering and serialization.
	if out := cal.Table().Render(); !strings.Contains(out, "disk_weibull_shape") || !strings.Contains(out, SourceSurvival) {
		t.Errorf("provenance table missing entries:\n%s", out)
	}
	rep := cal.Report()
	if rep.Population != cfg.Disks || len(rep.Parameters) != len(cal.Provenance) {
		t.Errorf("report %+v inconsistent with calibration", rep)
	}
	if rep.DiskLifetime.Name != "weibull" || rep.OutageDuration.Name != "empirical" || rep.DiskRepair == nil {
		t.Errorf("report distributions: %+v", rep)
	}
}

func TestCalibrateDeterministic(t *testing.T) {
	logs, err := loggen.Generate(loggen.ABEConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, err := Calibrate(logs, 480)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Calibrate(logs, 480)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Provenance, b.Provenance) {
		t.Error("calibration provenance not deterministic")
	}
	if !reflect.DeepEqual(a.Config, b.Config) {
		t.Error("calibrated config not deterministic")
	}
}

// TestCalibrateWithoutTransientFailures pins the unidentifiable-parameter
// behavior: a log with no transient job failures cannot identify the
// transient event rate, so the base value stands (overriding with 0 would
// fail abe.Config validation) and no provenance entry is recorded.
func TestCalibrateWithoutTransientFailures(t *testing.T) {
	day := func(d, h int) time.Time { return time.Date(2007, 7, d, h, 0, 0, 0, time.UTC) }
	san := []loggen.Event{
		{Time: day(1, 0), Source: "san", Node: "lustre-cfs", Kind: loggen.OutageStart, Attrs: map[string]string{"cause": loggen.CauseIOHardware}},
		{Time: day(1, 6), Source: "san", Node: "lustre-cfs", Kind: loggen.OutageEnd},
		{Time: day(3, 0), Source: "san", Node: "d1", Kind: loggen.DiskFailed, Attrs: map[string]string{"age_hours": "500"}},
		{Time: day(3, 4), Source: "san", Node: "d1", Kind: loggen.DiskReplaced},
		{Time: day(20, 0), Source: "san", Node: "lustre-cfs", Kind: loggen.OutageStart, Attrs: map[string]string{"cause": loggen.CauseNetwork}},
		{Time: day(20, 2), Source: "san", Node: "lustre-cfs", Kind: loggen.OutageEnd},
	}
	compute := []loggen.Event{
		{Time: day(1, 0), Node: "c1", Kind: loggen.JobSubmit, Attrs: map[string]string{"job": "1"}},
		{Time: day(1, 5), Node: "c1", Kind: loggen.JobEnd, Attrs: map[string]string{"job": "1", "status": loggen.JobOK}},
		{Time: day(10, 0), Node: "c2", Kind: loggen.JobSubmit, Attrs: map[string]string{"job": "2"}},
		{Time: day(10, 5), Node: "c2", Kind: loggen.JobEnd, Attrs: map[string]string{"job": "2", "status": loggen.JobFailedFileSystem}},
		{Time: day(19, 0), Node: "c3", Kind: loggen.JobSubmit, Attrs: map[string]string{"job": "3"}},
		{Time: day(19, 5), Node: "c3", Kind: loggen.JobEnd, Attrs: map[string]string{"job": "3", "status": loggen.JobOK}},
	}
	base := abe.ABE()
	cal, err := CalibrateWith(&loggen.Logs{SAN: san, Compute: compute}, 10, base)
	if err != nil {
		t.Fatalf("calibration without transient failures failed: %v", err)
	}
	if got := cal.Config.Workload.TransientEventsPerHour; got != base.Workload.TransientEventsPerHour {
		t.Errorf("transient event rate %v, want base %v (not identifiable from this log)", got, base.Workload.TransientEventsPerHour)
	}
	for _, p := range cal.Provenance {
		if p.Name == "transient_events_per_hour" {
			t.Errorf("unidentifiable parameter recorded as derived: %+v", p)
		}
	}
}

func TestCalibrateErrors(t *testing.T) {
	if _, err := Calibrate(nil, 480); err == nil {
		t.Error("nil logs accepted")
	}
	logs, err := loggen.Generate(loggen.ABEConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Calibrate(logs, 0); err == nil {
		t.Error("zero population accepted")
	}
	bad := abe.Config{}
	if _, err := CalibrateWith(logs, 480, bad); err == nil {
		t.Error("invalid base configuration accepted")
	}
	// A population below the number of distinct failed disks must surface the
	// loganalysis under-censoring error, not silently calibrate.
	if _, err := Calibrate(logs, 1); err == nil {
		t.Error("impossible disk population accepted")
	}
}

// denseLogConfig is a log-generator configuration with enough failure events
// for the round trip to have statistical power: a longer SAN window and a
// much higher disk failure rate than ABE's 300,000 h MTBF (which yields only
// a handful of failures in 87 days, far too few to re-identify the Weibull).
func denseLogConfig() loggen.Config {
	cfg := loggen.ABEConfig()
	cfg.Seed = 1
	cfg.SANDays = 180
	cfg.DiskMTBFHours = 40000
	cfg.DiskShape = 0.7
	cfg.OutagesPerMonth = 6
	return cfg
}

// TestCalibrationRoundTrip closes the loop: logs -> calibrate -> regenerate
// logs under the calibrated parameters -> re-derive rates, which must match
// the calibration inputs within statistical tolerance.
func TestCalibrationRoundTrip(t *testing.T) {
	base := denseLogConfig()
	logs, err := loggen.Generate(base)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := Calibrate(logs, base.Disks)
	if err != nil {
		t.Fatal(err)
	}

	regenCfg := cal.LogConfig(base)
	if err := regenCfg.Validate(); err != nil {
		t.Fatalf("round-trip generator config invalid: %v", err)
	}
	regen, err := loggen.Generate(regenCfg)
	if err != nil {
		t.Fatal(err)
	}
	recal, err := Calibrate(regen, base.Disks)
	if err != nil {
		t.Fatal(err)
	}

	in, out := cal.Rates, recal.Rates
	relErr := func(a, b float64) float64 {
		if a == 0 {
			return math.Abs(b)
		}
		return math.Abs(b-a) / math.Abs(a)
	}
	// Absolute tolerance for the availability (a number near 1).
	if math.Abs(out.CFSAvailability-in.CFSAvailability) > 0.02 {
		t.Errorf("availability drifted: %v -> %v", in.CFSAvailability, out.CFSAvailability)
	}
	// Relative tolerances sized to the sampling noise of each estimate.
	for _, c := range []struct {
		name    string
		in, out float64
		tol     float64
	}{
		{"jobs_per_hour", in.JobsPerHour, out.JobsPerHour, 0.05},
		{"transient_job_failure_fraction", in.TransientJobFailureFraction, out.TransientJobFailureFraction, 0.20},
		{"other_job_failure_fraction", in.OtherJobFailureFraction, out.OtherJobFailureFraction, 0.50},
		{"outages_per_month", in.OutagesPerMonth, out.OutagesPerMonth, 0.35},
		{"mean_outage_hours", in.MeanOutageHours, out.MeanOutageHours, 0.40},
		{"disk_mtbf_hours", in.DiskMTBFHours, out.DiskMTBFHours, 0.60},
		{"disk_replacements_per_week", in.DiskReplacementsPerWeek, out.DiskReplacementsPerWeek, 0.35},
	} {
		if got := relErr(c.in, c.out); got > c.tol {
			t.Errorf("%s drifted %.0f%% (> %.0f%%): %v -> %v", c.name, got*100, c.tol*100, c.in, c.out)
		}
	}
	// The Weibull shape is the noisiest estimate; require the re-fit to stay
	// in the infant-mortality regime near the input.
	if math.Abs(out.DiskWeibullShape-in.DiskWeibullShape) > 0.25 {
		t.Errorf("disk shape drifted: %v -> %v", in.DiskWeibullShape, out.DiskWeibullShape)
	}
}

// TestCalibrateWithoutMountFailures pins the explicit handling of a failed
// mount-failure analysis: mount failures only feed the synthetic-log round
// trip, so compute logs without them (or an analysis error) must leave
// Mounts empty without aborting the calibration.
func TestCalibrateWithoutMountFailures(t *testing.T) {
	cfg := loggen.ABEConfig()
	logs, err := loggen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	kept := logs.Compute[:0:0]
	for _, e := range logs.Compute {
		if e.Kind != loggen.MountFailure {
			kept = append(kept, e)
		}
	}
	logs.Compute = kept
	cal, err := Calibrate(logs, cfg.Disks)
	if err != nil {
		t.Fatalf("calibration must survive missing mount-failure events: %v", err)
	}
	if len(cal.Mounts) != 0 {
		t.Fatalf("expected no mount-failure days, got %d", len(cal.Mounts))
	}
}
