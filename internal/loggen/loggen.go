// Package loggen generates synthetic ABE-style failure and event logs.
//
// The original study is parameterized from NCSA's proprietary compute-node
// and SAN logs, which are not publicly available. This package substitutes a
// synthetic log whose statistics are calibrated to the summaries the paper
// publishes (Table 1 outage list, Table 2 mount-failure bursts, Table 3 job
// statistics, Table 4 disk failures and Weibull shape), so that the analysis
// pipeline in package loganalysis exercises the same path the authors
// describe: raw events -> temporal/causal filtering -> failure rates ->
// model parameters.
package loggen

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/dist"
	"repro/internal/rng"
)

// EventKind enumerates the log record types.
type EventKind int

// Supported record types (enums start at 1 so the zero value is invalid).
const (
	// OutageStart/OutageEnd bracket a CFS-visible outage in the SAN log.
	OutageStart EventKind = iota + 1
	OutageEnd
	// DiskFailed and DiskReplaced track individual disk incidents.
	DiskFailed
	DiskReplaced
	// JobSubmit and JobEnd track batch jobs in the compute log.
	JobSubmit
	JobEnd
	// MountFailure is a Lustre mount failure reported by one compute node.
	MountFailure
)

// String implements fmt.Stringer; the strings double as the on-disk tokens.
func (k EventKind) String() string {
	switch k {
	case OutageStart:
		return "OUTAGE_START"
	case OutageEnd:
		return "OUTAGE_END"
	case DiskFailed:
		return "DISK_FAILED"
	case DiskReplaced:
		return "DISK_REPLACED"
	case JobSubmit:
		return "JOB_SUBMIT"
	case JobEnd:
		return "JOB_END"
	case MountFailure:
		return "MOUNT_FAILURE"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// ParseEventKind converts an on-disk token back to an EventKind.
func ParseEventKind(s string) (EventKind, error) {
	for k := OutageStart; k <= MountFailure; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("loggen: unknown event kind %q", s)
}

// Outage causes as reported in Table 1.
const (
	CauseIOHardware = "I/O hardware"
	CauseBatch      = "Batch system"
	CauseNetwork    = "Network"
	CauseFileSystem = "File system"
)

// Job failure reasons recorded in JOB_END events.
const (
	JobOK               = "ok"
	JobFailedTransient  = "transient"
	JobFailedFileSystem = "filesystem"
)

// Event is one log record. Events are kept in memory as structs and
// round-tripped through the textual format by Format/Parse in the
// loganalysis package.
type Event struct {
	// Time is the event timestamp.
	Time time.Time
	// Source is "san" or "compute".
	Source string
	// Node identifies the reporting component (compute node, disk, DDN).
	Node string
	// Kind is the record type.
	Kind EventKind
	// Attrs carries kind-specific attributes (cause, job id, status).
	Attrs map[string]string
}

// Logs bundles the two log streams the paper analyzes.
type Logs struct {
	// SAN holds the storage-area-network log (outages, disk incidents),
	// covering cfg.SANLogStart..cfg.End.
	SAN []Event
	// Compute holds the compute-node log (jobs, mount failures), covering
	// cfg.Start..cfg.ComputeLogEnd.
	Compute []Event
}

// Config calibrates the synthetic log generator.
type Config struct {
	// Seed makes generation reproducible.
	Seed uint64
	// Start is the beginning of the compute log window.
	Start time.Time
	// ComputeDays is the length of the compute log window in days.
	ComputeDays int
	// SANStartOffsetDays is the offset of the SAN log start from Start.
	SANStartOffsetDays int
	// SANDays is the length of the SAN log window in days.
	SANDays int
	// ComputeNodes is the number of compute nodes.
	ComputeNodes int
	// Disks is the number of disks in the scratch partition.
	Disks int
	// JobsPerHour is the job submission rate.
	JobsPerHour float64
	// TransientJobFailureProb is the probability a job fails due to a
	// transient network error.
	TransientJobFailureProb float64
	// OtherJobFailureProb is the probability a job fails due to file-system
	// or software errors.
	OtherJobFailureProb float64
	// OutagesPerMonth is the rate of CFS-visible outages in the SAN log.
	OutagesPerMonth float64
	// OutageCauseWeights gives the relative frequency of each outage cause.
	OutageCauseWeights map[string]float64
	// OutageMeanHours/OutageSpreadHours parameterize outage durations
	// (lognormal, matching the skewed durations of Table 1).
	OutageMeanHours   float64
	OutageSpreadHours float64
	// DiskShape and DiskMTBFHours parameterize the Weibull disk lifetimes.
	DiskShape     float64
	DiskMTBFHours float64
	// MountFailureBurstsPerMonth is the rate of mount-failure bursts
	// (Table 2) and MountFailureMaxNodes bounds how many nodes one burst
	// affects.
	MountFailureBurstsPerMonth float64
	MountFailureMaxNodes       int
}

// ABEConfig returns a generator configuration calibrated to the ABE logs as
// summarized in the paper: a 143-day compute log from 05/13/2007, an
// 87-day SAN log from 09/05/2007, 44k jobs with ~2.8%/0.4% failure split,
// ~2 outages per month dominated by I/O hardware, and 480 Weibull(0.7)
// disks at 300,000 h MTBF.
func ABEConfig() Config {
	return Config{
		Seed:                    20070513,
		Start:                   time.Date(2007, 5, 13, 0, 0, 0, 0, time.UTC),
		ComputeDays:             143,
		SANStartOffsetDays:      115, // 09/05/2007
		SANDays:                 87,  // through 11/30/2007
		ComputeNodes:            1200,
		Disks:                   480,
		JobsPerHour:             12.85,
		TransientJobFailureProb: 0.028,
		OtherJobFailureProb:     0.0042,
		OutagesPerMonth:         2.0,
		OutageCauseWeights: map[string]float64{
			CauseIOHardware: 0.6,
			CauseBatch:      0.1,
			CauseNetwork:    0.1,
			CauseFileSystem: 0.2,
		},
		OutageMeanHours:            6.5,
		OutageSpreadHours:          5.0,
		DiskShape:                  0.7,
		DiskMTBFHours:              300000,
		MountFailureBurstsPerMonth: 4,
		MountFailureMaxNodes:       600,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Start.IsZero():
		return errors.New("loggen: zero start time")
	case c.ComputeDays < 1 || c.SANDays < 1 || c.SANStartOffsetDays < 0:
		return fmt.Errorf("loggen: invalid windows compute=%d san=%d offset=%d", c.ComputeDays, c.SANDays, c.SANStartOffsetDays)
	case c.ComputeNodes < 1 || c.Disks < 1:
		return fmt.Errorf("loggen: invalid population nodes=%d disks=%d", c.ComputeNodes, c.Disks)
	case !(c.JobsPerHour > 0):
		return fmt.Errorf("loggen: invalid job rate %v", c.JobsPerHour)
	case c.TransientJobFailureProb < 0 || c.OtherJobFailureProb < 0 ||
		c.TransientJobFailureProb+c.OtherJobFailureProb > 1:
		return fmt.Errorf("loggen: invalid job failure probabilities %v/%v", c.TransientJobFailureProb, c.OtherJobFailureProb)
	case !(c.OutagesPerMonth > 0) || !(c.OutageMeanHours > 0) || !(c.OutageSpreadHours > 0):
		return fmt.Errorf("loggen: invalid outage parameters")
	case len(c.OutageCauseWeights) == 0:
		return errors.New("loggen: no outage causes")
	case !(c.DiskShape > 0) || !(c.DiskMTBFHours > 0):
		return fmt.Errorf("loggen: invalid disk parameters shape=%v mtbf=%v", c.DiskShape, c.DiskMTBFHours)
	case !(c.MountFailureBurstsPerMonth > 0) || c.MountFailureMaxNodes < 1:
		return fmt.Errorf("loggen: invalid mount-failure parameters")
	}
	return nil
}

// SANLogStart returns the start of the SAN log window.
func (c Config) SANLogStart() time.Time {
	return c.Start.AddDate(0, 0, c.SANStartOffsetDays)
}

// SANLogEnd returns the end of the SAN log window.
func (c Config) SANLogEnd() time.Time {
	return c.SANLogStart().AddDate(0, 0, c.SANDays)
}

// ComputeLogEnd returns the end of the compute log window.
func (c Config) ComputeLogEnd() time.Time {
	return c.Start.AddDate(0, 0, c.ComputeDays)
}

// Generate produces the synthetic SAN and compute logs for cfg. Both slices
// are sorted by timestamp.
func Generate(cfg Config) (*Logs, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	stream := rng.NewStream(cfg.Seed, "loggen")
	logs := &Logs{}

	if err := generateOutages(cfg, stream.Split("outages"), logs); err != nil {
		return nil, err
	}
	if err := generateDiskIncidents(cfg, stream.Split("disks"), logs); err != nil {
		return nil, err
	}
	if err := generateJobs(cfg, stream.Split("jobs"), logs); err != nil {
		return nil, err
	}
	if err := generateMountFailures(cfg, stream.Split("mounts"), logs); err != nil {
		return nil, err
	}

	sort.Slice(logs.SAN, func(i, j int) bool { return logs.SAN[i].Time.Before(logs.SAN[j].Time) })
	sort.Slice(logs.Compute, func(i, j int) bool { return logs.Compute[i].Time.Before(logs.Compute[j].Time) })
	return logs, nil
}

// generateOutages emits OUTAGE_START/OUTAGE_END pairs over the SAN window
// (the source of Table 1).
func generateOutages(cfg Config, s *rng.Stream, logs *Logs) error {
	inter, err := dist.NewExponentialFromMean(720 / cfg.OutagesPerMonth)
	if err != nil {
		return err
	}
	duration, err := dist.NewLognormalFromMoments(cfg.OutageMeanHours, cfg.OutageSpreadHours)
	if err != nil {
		return err
	}
	causes, weights := causeSlices(cfg.OutageCauseWeights)

	start := cfg.SANLogStart()
	end := cfg.SANLogEnd()
	now := start
	for {
		now = now.Add(hoursToDuration(inter.Sample(s)))
		if !now.Before(end) {
			return nil
		}
		cause := pickWeighted(s, causes, weights)
		outageEnd := now.Add(hoursToDuration(duration.Sample(s)))
		if outageEnd.After(end) {
			outageEnd = end
		}
		logs.SAN = append(logs.SAN,
			Event{Time: now, Source: "san", Node: "lustre-cfs", Kind: OutageStart, Attrs: map[string]string{"cause": cause}},
			Event{Time: outageEnd, Source: "san", Node: "lustre-cfs", Kind: OutageEnd, Attrs: map[string]string{"cause": cause}},
		)
		now = outageEnd
	}
}

// generateDiskIncidents emits DISK_FAILED/DISK_REPLACED pairs over the SAN
// window (the source of Table 4). ABE was newly deployed in 2007, so the
// disk population is treated as new at the start of the SAN log window; with
// an infant-mortality Weibull (shape < 1) this front-loads failures exactly
// the way the paper's survival analysis observes.
func generateDiskIncidents(cfg Config, s *rng.Stream, logs *Logs) error {
	life, err := dist.NewWeibullFromMTBF(cfg.DiskShape, cfg.DiskMTBFHours)
	if err != nil {
		return err
	}
	start := cfg.SANLogStart()
	end := cfg.SANLogEnd()
	windowHours := end.Sub(start).Hours()
	const replaceHours = 4.0
	for d := 0; d < cfg.Disks; d++ {
		name := fmt.Sprintf("ddn%d-tier%d-disk%d", d/240, (d/10)%24, d%10)
		// Simulate this disk slot's renewal process across the window: a new
		// disk at t=0, replaced (good as new) a few hours after each failure.
		t := 0.0
		for {
			lifetime := life.Sample(s)
			failAt := t + lifetime
			if failAt > windowHours {
				break
			}
			logs.SAN = append(logs.SAN, Event{
				Time: start.Add(hoursToDuration(failAt)), Source: "san", Node: name, Kind: DiskFailed,
				Attrs: map[string]string{"age_hours": fmt.Sprintf("%.1f", lifetime)},
			})
			replaceAt := failAt + replaceHours
			if replaceAt <= windowHours {
				logs.SAN = append(logs.SAN, Event{
					Time: start.Add(hoursToDuration(replaceAt)), Source: "san", Node: name, Kind: DiskReplaced,
					Attrs: map[string]string{},
				})
			}
			t = replaceAt
		}
	}
	return nil
}

// generateJobs emits JOB_SUBMIT/JOB_END pairs over the compute window (the
// source of Table 3).
func generateJobs(cfg Config, s *rng.Stream, logs *Logs) error {
	inter, err := dist.NewExponentialFromMean(1 / cfg.JobsPerHour)
	if err != nil {
		return err
	}
	runtime, err := dist.NewLognormalFromMoments(6, 8)
	if err != nil {
		return err
	}
	end := cfg.ComputeLogEnd()
	now := cfg.Start
	id := 0
	for {
		now = now.Add(hoursToDuration(inter.Sample(s)))
		if !now.Before(end) {
			return nil
		}
		id++
		node := fmt.Sprintf("c%04d", s.Intn(cfg.ComputeNodes))
		jobID := fmt.Sprintf("%d", id)
		logs.Compute = append(logs.Compute, Event{
			Time: now, Source: "compute", Node: node, Kind: JobSubmit,
			Attrs: map[string]string{"job": jobID},
		})
		status := JobOK
		switch u := s.Float64(); {
		case u < cfg.TransientJobFailureProb:
			status = JobFailedTransient
		case u < cfg.TransientJobFailureProb+cfg.OtherJobFailureProb:
			status = JobFailedFileSystem
		}
		finish := now.Add(hoursToDuration(runtime.Sample(s)))
		if finish.After(end) {
			finish = end
		}
		logs.Compute = append(logs.Compute, Event{
			Time: finish, Source: "compute", Node: node, Kind: JobEnd,
			Attrs: map[string]string{"job": jobID, "status": status},
		})
	}
}

// generateMountFailures emits bursts of MOUNT_FAILURE events (the source of
// Table 2): on burst days, a random subset of compute nodes reports a Lustre
// mount failure within a short window.
func generateMountFailures(cfg Config, s *rng.Stream, logs *Logs) error {
	inter, err := dist.NewExponentialFromMean(720 / cfg.MountFailureBurstsPerMonth)
	if err != nil {
		return err
	}
	end := cfg.ComputeLogEnd()
	now := cfg.Start
	for {
		now = now.Add(hoursToDuration(inter.Sample(s)))
		if !now.Before(end) {
			return nil
		}
		// Burst sizes are heavy-tailed: mostly a handful of nodes, sometimes
		// hundreds (mirroring Table 2's 2..591 range).
		size := int(math.Ceil(math.Pow(s.Float64(), 3) * float64(cfg.MountFailureMaxNodes)))
		if size < 1 {
			size = 1
		}
		perm := s.Perm(cfg.ComputeNodes)
		if size > len(perm) {
			size = len(perm)
		}
		for i := 0; i < size; i++ {
			offset := hoursToDuration(s.Float64() * 0.5)
			logs.Compute = append(logs.Compute, Event{
				Time: now.Add(offset), Source: "compute", Node: fmt.Sprintf("c%04d", perm[i]),
				Kind: MountFailure, Attrs: map[string]string{},
			})
		}
	}
}

func causeSlices(weights map[string]float64) ([]string, []float64) {
	causes := make([]string, 0, len(weights))
	for c := range weights {
		causes = append(causes, c)
	}
	sort.Strings(causes)
	w := make([]float64, len(causes))
	for i, c := range causes {
		w[i] = weights[c]
	}
	return causes, w
}

func pickWeighted(s *rng.Stream, values []string, weights []float64) string {
	var total float64
	for _, w := range weights {
		total += w
	}
	u := s.Float64() * total
	cum := 0.0
	for i, w := range weights {
		cum += w
		if u < cum {
			return values[i]
		}
	}
	return values[len(values)-1]
}

func hoursToDuration(h float64) time.Duration {
	return time.Duration(h * float64(time.Hour))
}
