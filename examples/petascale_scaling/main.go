// The petascale_scaling example reproduces the paper's headline scaling
// study (Figure 4): it evaluates the ABE cluster-file-system design at its
// current scale and as it is scaled toward a petaflop-petabyte system,
// reporting storage availability, CFS availability, cluster utility, and the
// gain from a standby-spare OSS at each scale.
package main

import (
	"fmt"
	"log"

	"repro/internal/abe"
	"repro/internal/core"
	"repro/internal/san"
)

func main() {
	log.SetFlags(0)

	opts := san.Options{
		Mission:      8760,
		Replications: 40,
		Seed:         2008,
	}

	fmt.Println("Scaling the ABE CFS design toward petascale (Figure 4 reproduction)")
	fmt.Println()
	fmt.Printf("%-8s  %-12s  %-12s  %-10s  %-12s  %-12s\n",
		"scale", "storage", "CFS avail", "CU", "CFS+spare", "disks/week")

	for _, factor := range []float64{1, 2, 4, 6, 8, 10} {
		cfg := abe.ABE().ScaledBy(factor)
		base, err := abe.Evaluate(cfg, opts)
		if err != nil {
			log.Fatal(err)
		}
		spare, err := abe.Evaluate(cfg.WithSpareOSS(true), opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8.0fx %-12.5f  %-12.4f  %-10.4f  %-12.4f  %-12.2f\n",
			factor, base.StorageAvailability, base.CFSAvailability, base.ClusterUtility,
			spare.CFSAvailability, base.DiskReplacementsPerWeek)
	}

	fmt.Println()
	rec, err := core.RecommendSpareOSS(abe.Petascale(), opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("design recommendation:", rec.Finding)
}
