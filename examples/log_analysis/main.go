// The log_analysis example runs the paper's Section 3 pipeline end to end:
// it generates the calibrated synthetic ABE failure logs (the stand-in for
// NCSA's proprietary logs), analyzes them to reproduce Tables 1-4, derives
// the model parameters, and feeds the calibrated parameters back into the
// dependability model to check that the modeled availability matches the
// availability observed in the log — the paper's validation loop.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/abe"
	"repro/internal/core"
	"repro/internal/loganalysis"
	"repro/internal/loggen"
	"repro/internal/san"
)

func main() {
	log.SetFlags(0)

	logs, err := loggen.Generate(loggen.ABEConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d SAN events and %d compute events\n\n", len(logs.SAN), len(logs.Compute))

	outages, err := loganalysis.AnalyzeOutages(logs.SAN)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Table 1: %d outages, %.1f h downtime, availability %.4f\n",
		len(outages.Outages), outages.DowntimeHours, outages.Availability)

	mounts, err := loganalysis.AnalyzeMountFailures(logs.Compute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Table 2: mount-failure bursts on %d days\n", len(mounts))

	jobs, err := loganalysis.AnalyzeJobs(logs.Compute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Table 3: %d jobs, %d transient failures, %d other failures (ratio %.1f)\n",
		jobs.TotalJobs, jobs.TransientFailures, jobs.OtherFailures, jobs.FailureRatio())

	disks, err := loganalysis.AnalyzeDisks(logs.SAN, 480)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Table 4: %d disk failures (%.2f/week), Weibull shape %.4f ± %.4f\n\n",
		disks.TotalFailures, disks.PerWeek, disks.Fit.Shape, disks.Fit.ShapeStdErr)

	// Calibrate the model from the logs and validate it against the observed
	// availability.
	cfg, rates, err := core.CalibrateFromLogs(logs, abe.ABE(), 480)
	if err != nil {
		log.Fatal(err)
	}
	measures, err := abe.Evaluate(cfg, san.Options{Mission: 8760, Replications: 40, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("log-observed CFS availability:   %.4f\n", rates.CFSAvailability)
	fmt.Printf("model-predicted CFS availability: %.4f (|diff| = %.4f)\n",
		measures.CFSAvailability, math.Abs(measures.CFSAvailability-rates.CFSAvailability))
	fmt.Printf("model-predicted disks/week:       %.2f (log observed %.2f)\n",
		measures.DiskReplacementsPerWeek, rates.DiskReplacementsPerWeek)
}
