package abe

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/raid"
	"repro/internal/rng"
	"repro/internal/san"
)

func TestABEConfigMatchesPaper(t *testing.T) {
	cfg := ABE()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("ABE config invalid: %v", err)
	}
	if cfg.ScratchOSSPairs != 8 || cfg.MetadataOSSPairs != 1 {
		t.Errorf("OSS pairs = %d+%d, want 8 scratch + 1 metadata (Section 3.1)", cfg.ScratchOSSPairs, cfg.MetadataOSSPairs)
	}
	if cfg.Storage.TotalDisks() != 480 {
		t.Errorf("disks = %d, want 480", cfg.Storage.TotalDisks())
	}
	if got := cfg.Storage.Disk.ShapeBeta; got != 0.7 {
		t.Errorf("Weibull shape = %v, want 0.7 (Table 4 fit)", got)
	}
	if got := cfg.Storage.Disk.MTBFHours; got != 300000 {
		t.Errorf("disk MTBF = %v, want 300000 h (Section 5.1)", got)
	}
	if cfg.Workload.ComputeNodes != 1200 {
		t.Errorf("compute nodes = %d, want 1200", cfg.Workload.ComputeNodes)
	}
	if cfg.Workload.JobsPerHour < 12 || cfg.Workload.JobsPerHour > 15 {
		t.Errorf("job rate = %v, want within Table 5's 12-15 per hour", cfg.Workload.JobsPerHour)
	}
	if cfg.TotalOSSPairs() != 9 {
		t.Errorf("TotalOSSPairs = %d, want 9", cfg.TotalOSSPairs())
	}
}

func TestPetascaleConfig(t *testing.T) {
	cfg := Petascale()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("petascale config invalid: %v", err)
	}
	if cfg.ScratchOSSPairs != 80 {
		t.Errorf("scratch OSS pairs = %d, want 80 (Table 5 upper range)", cfg.ScratchOSSPairs)
	}
	if cfg.Storage.DDNUnits != 20 {
		t.Errorf("DDN units = %d, want 20", cfg.Storage.DDNUnits)
	}
	if cfg.Storage.TotalDisks() != 4800 {
		t.Errorf("disks = %d, want 4800", cfg.Storage.TotalDisks())
	}
	if cfg.Workload.ComputeNodes != 32000 {
		t.Errorf("compute nodes = %d, want 32000", cfg.Workload.ComputeNodes)
	}
	// Metadata servers and shared fabric do not scale.
	if cfg.MetadataOSSPairs != 1 {
		t.Errorf("metadata pairs = %d, want 1", cfg.MetadataOSSPairs)
	}
	if cfg.Infrastructure != ABE().Infrastructure {
		t.Error("shared infrastructure should not scale")
	}
	// Transient error rate scales with the I/O subsystem.
	if got, want := cfg.Workload.TransientEventsPerHour, 10*ABE().Workload.TransientEventsPerHour; math.Abs(got-want) > 1e-9 {
		t.Errorf("transient rate = %v, want %v", got, want)
	}
}

func TestScaledBy(t *testing.T) {
	cfg := ABE().ScaledBy(2.5)
	if cfg.ScratchOSSPairs != 20 {
		t.Errorf("scratch pairs = %d, want 20", cfg.ScratchOSSPairs)
	}
	if cfg.Storage.DDNUnits != 5 {
		t.Errorf("DDN units = %d, want 5", cfg.Storage.DDNUnits)
	}
	if cfg.Workload.ComputeNodes != 3000 {
		t.Errorf("compute nodes = %d, want 3000", cfg.Workload.ComputeNodes)
	}
	// Non-positive factors are treated as identity.
	same := ABE().ScaledBy(0)
	if same.ScratchOSSPairs != 8 {
		t.Errorf("ScaledBy(0) changed the configuration: %+v", same)
	}
	// Tiny factors never drop below one component.
	tiny := ABE().ScaledBy(0.01)
	if tiny.ScratchOSSPairs < 1 || tiny.Storage.DDNUnits < 1 || tiny.Workload.ComputeNodes < 1 {
		t.Errorf("ScaledBy(0.01) produced empty subsystems: %+v", tiny)
	}
}

func TestConfigModifiers(t *testing.T) {
	base := ABE()
	withSpare := base.WithSpareOSS(true)
	if !withSpare.OSS.SpareOSS || base.OSS.SpareOSS {
		t.Error("WithSpareOSS did not copy-on-write")
	}
	g := raid.TierGeometry{Data: 8, Parity: 3}
	withGeom := base.WithGeometry(g)
	if withGeom.Storage.Geometry != g || base.Storage.Geometry == g {
		t.Error("WithGeometry did not copy-on-write")
	}
	withDisk, err := base.WithDisk(0.6, 0.0876, 4)
	if err != nil {
		t.Fatal(err)
	}
	if withDisk.Storage.Disk.ShapeBeta != 0.6 {
		t.Errorf("shape = %v, want 0.6", withDisk.Storage.Disk.ShapeBeta)
	}
	if math.Abs(withDisk.Storage.Disk.MTBFHours-100000) > 1 {
		t.Errorf("MTBF = %v, want ~100000 for AFR 8.76%%", withDisk.Storage.Disk.MTBFHours)
	}
	if _, err := base.WithDisk(0.7, 0, 4); err == nil {
		t.Error("zero AFR accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	mutations := map[string]func(*Config){
		"no scratch pairs":     func(c *Config) { c.ScratchOSSPairs = 0 },
		"no metadata pairs":    func(c *Config) { c.MetadataOSSPairs = 0 },
		"bad OSS hw mtbf":      func(c *Config) { c.OSS.HWMTBFHours = 0 },
		"bad OSS repair range": func(c *Config) { c.OSS.HWRepairHiHours = 1 },
		"bad propagation":      func(c *Config) { c.OSS.PropagationProb = 2 },
		"spare without delay":  func(c *Config) { c.OSS.SpareOSS = true; c.OSS.SpareActivationHours = 0 },
		"bad storage":          func(c *Config) { c.Storage.DDNUnits = 0 },
		"bad fabric":           func(c *Config) { c.Infrastructure.FabricMTBFHours = 0 },
		"bad fabric repair":    func(c *Config) { c.Infrastructure.FabricRepairHiHours = 0.1 },
		"no compute nodes":     func(c *Config) { c.Workload.ComputeNodes = 0 },
		"bad job rate":         func(c *Config) { c.Workload.JobsPerHour = 0 },
		"bad transient rate":   func(c *Config) { c.Workload.TransientEventsPerHour = 0 },
		"bad transient window": func(c *Config) { c.Workload.TransientOutageHiHours = 0.01 },
		"bad job exposure":     func(c *Config) { c.Workload.JobCFSExposure = 1.5 },
		"negative kills":       func(c *Config) { c.Workload.JobsKilledPerTransient = -1 },
		"bad sw repair range":  func(c *Config) { c.OSS.SWRepairLoHours = 0 },
		"bad sw mtbf":          func(c *Config) { c.OSS.SWMTBFHours = -1 },
		"bad transient lo":     func(c *Config) { c.Workload.TransientOutageLoHours = 0 },
	}
	for name, mutate := range mutations {
		cfg := ABE()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid config", name)
		}
	}
}

func TestBuildStructure(t *testing.T) {
	cfg := ABE()
	m := san.NewModel("abe")
	mp, err := Build(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("composed model invalid: %v", err)
	}
	// Expected structural landmarks.
	for _, place := range []string{
		"cfs/oss_pairs_out",
		"cfs/shared_out",
		"cfs/oss/metadata[0]/up_count",
		"cfs/oss/scratch[7]/server[1]/up",
		"cfs/oss_san_nw/up",
		"cfs/ddn_units/tiers_failed",
		"cfs/ddn_units/ddn[1]/tier[23]/disk[9]/up",
		"client/network/active",
	} {
		if m.Place(place) == nil {
			t.Errorf("missing place %q", place)
		}
	}
	// 480 disks => 480 replace activities.
	if got := len(mp.Storage.ReplaceActivities); got != 480 {
		t.Errorf("replace activities = %d, want 480", got)
	}
	// Rewards validate against the model.
	if _, err := san.NewSimulator(m, mp.Rewards(), newStream()); err != nil {
		t.Fatalf("rewards invalid: %v", err)
	}
	// Building twice into the same model must fail cleanly.
	if _, err := Build(m, cfg); err == nil {
		t.Error("duplicate build accepted")
	}
	// Invalid configuration is rejected before touching the model.
	bad := cfg
	bad.ScratchOSSPairs = 0
	if _, err := Build(san.NewModel("bad"), bad); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestCompositionTreeMirrorsFigure1(t *testing.T) {
	tree := CompositionTree(ABE())
	out := tree.Render()
	for _, want := range []string{
		"Join(CLUSTER)",
		"SAN(CLIENT)",
		"Join(CFS_UNIT)",
		"Replicate(OSS, n=9)",
		"SAN(OSS_SAN_NW)",
		"Replicate(DDN_UNITS, n=2)",
		"Replicate(RAID6_TIERS, n=24)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("composition tree missing %q:\n%s", want, out)
		}
	}
	if len(tree.Leaves()) != 6 {
		t.Errorf("leaves = %v, want 6 atomic submodels", tree.Leaves())
	}
}

func TestEvaluateABEAnchorsToLogAnalysis(t *testing.T) {
	// The ABE configuration must reproduce the availability observed in the
	// outage log (Table 1: 0.97-0.98) and the paper's other ABE-scale
	// observations: storage availability ~1, 0-2 disk replacements per week,
	// CU slightly below CFS availability, and transient job failures several
	// times more common than CFS-caused ones (Table 3).
	measures, err := Evaluate(ABE(), san.Options{Mission: 8760, Replications: 40, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if measures.CFSAvailability < 0.96 || measures.CFSAvailability > 0.985 {
		t.Errorf("ABE CFS availability = %v, want within the observed 0.97-0.98 band", measures.CFSAvailability)
	}
	if measures.StorageAvailability < 0.999 {
		t.Errorf("ABE storage availability = %v, want ~1", measures.StorageAvailability)
	}
	if measures.DiskReplacementsPerWeek < 0.1 || measures.DiskReplacementsPerWeek > 2 {
		t.Errorf("disk replacements per week = %v, want within 0-2", measures.DiskReplacementsPerWeek)
	}
	if !(measures.ClusterUtility < measures.CFSAvailability) {
		t.Errorf("CU %v should be below CFS availability %v", measures.ClusterUtility, measures.CFSAvailability)
	}
	if measures.ClusterUtility < 0.94 || measures.ClusterUtility > 0.99 {
		t.Errorf("ABE CU = %v, want ~0.968 (Table 3)", measures.ClusterUtility)
	}
	ratio := measures.LostJobsTransientPerYear / math.Max(measures.LostJobsCFSPerYear, 1)
	if ratio < 3 {
		t.Errorf("transient/CFS job-failure ratio = %v, want >= 3 (Table 3 shows ~5x)", ratio)
	}
	if len(measures.Intervals) == 0 {
		t.Error("no confidence intervals reported")
	}
	ci, ok := measures.Intervals[RewardCFSAvailability]
	if !ok || ci.HalfWidth <= 0 {
		t.Errorf("CFS availability interval missing or degenerate: %+v", ci)
	}
	if measures.String() == "" {
		t.Error("String() empty")
	}
}

func TestEvaluateScalingTrendsMatchFigure4(t *testing.T) {
	// Figure 4's qualitative content: CFS availability drops as the system
	// scales to petascale, storage availability stays ~1, CU drops further,
	// and a standby-spare OSS recovers a few percent of availability.
	opts := san.Options{Mission: 8760, Replications: 30, Seed: 23}
	abeMeasures, err := Evaluate(ABE(), opts)
	if err != nil {
		t.Fatal(err)
	}
	peta, err := Evaluate(Petascale(), opts)
	if err != nil {
		t.Fatal(err)
	}
	petaSpare, err := Evaluate(Petascale().WithSpareOSS(true), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !(peta.CFSAvailability < abeMeasures.CFSAvailability-0.02) {
		t.Errorf("petascale CFS availability %v should be clearly below ABE's %v", peta.CFSAvailability, abeMeasures.CFSAvailability)
	}
	if peta.CFSAvailability < 0.85 || peta.CFSAvailability > 0.95 {
		t.Errorf("petascale CFS availability = %v, want ~0.91 (Figure 4)", peta.CFSAvailability)
	}
	if peta.StorageAvailability < 0.995 {
		t.Errorf("petascale storage availability = %v, want ~1 for the ABE disk configuration", peta.StorageAvailability)
	}
	if !(petaSpare.CFSAvailability > peta.CFSAvailability+0.01) {
		t.Errorf("spare OSS should improve availability by a few percent: %v vs %v", petaSpare.CFSAvailability, peta.CFSAvailability)
	}
	if !(peta.ClusterUtility < abeMeasures.ClusterUtility) {
		t.Errorf("CU should decrease with scale: %v vs %v", peta.ClusterUtility, abeMeasures.ClusterUtility)
	}
	if !(peta.DiskReplacementsPerWeek > 5*abeMeasures.DiskReplacementsPerWeek) {
		t.Errorf("disk replacements should grow ~10x with 10x disks: %v vs %v", peta.DiskReplacementsPerWeek, abeMeasures.DiskReplacementsPerWeek)
	}
}

// Property: for any moderate scale factor, the derived measures stay within
// their mathematical bounds.
func TestQuickMeasureBounds(t *testing.T) {
	f := func(factorSeed uint8, seed uint64) bool {
		factor := 1 + float64(factorSeed%8)
		cfg := ABE().ScaledBy(factor)
		// Keep the property cheap: shrink the mission and replication count.
		m, err := Evaluate(cfg, san.Options{Mission: 1000, Replications: 4, Seed: seed, Parallelism: 2})
		if err != nil {
			return false
		}
		inUnit := func(x float64) bool { return x >= 0 && x <= 1 }
		return inUnit(m.StorageAvailability) && inUnit(m.CFSAvailability) && inUnit(m.ClusterUtility) &&
			m.DiskReplacementsPerWeek >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func newStream() *rng.Stream { return rng.NewStream(99, "abe-test") }

func TestIntervalUnitsMatchHeadlineMeasures(t *testing.T) {
	// The disk-replacement and lost-job headline fields are rescaled to
	// per-week/per-year units; their confidence intervals must be published
	// in the same units (the interval center equals the headline value).
	m, err := Evaluate(ABE(), san.Options{Mission: 4380, Replications: 8, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		reward   string
		headline float64
	}{
		{RewardDiskReplacements, m.DiskReplacementsPerWeek},
		{RewardLostJobsCFS, m.LostJobsCFSPerYear},
		{RewardLostJobsTransient, m.LostJobsTransientPerYear},
		{RewardStorageAvailability, m.StorageAvailability},
		{RewardCFSAvailability, m.CFSAvailability},
	}
	for _, c := range checks {
		ci, ok := m.Intervals[c.reward]
		if !ok {
			t.Errorf("interval for %q missing", c.reward)
			continue
		}
		if ci.Mean != c.headline {
			t.Errorf("%q interval center %v != headline %v (interval left in mission-total units?)",
				c.reward, ci.Mean, c.headline)
		}
	}
	// The rescaled interval must still be a genuine interval.
	if ci := m.Intervals[RewardDiskReplacements]; !(ci.HalfWidth > 0) {
		t.Errorf("disk-replacement interval degenerate: %+v", ci)
	}
}

// syntheticStudy builds a study whose required rewards have the given
// constant per-replication values, for exercising MeasuresFromStudy edge
// cases without a simulation.
func syntheticStudy(t *testing.T, mission float64, values map[string]float64) *san.StudyResult {
	t.Helper()
	rewards := make([]san.RewardVariable, 0, len(values))
	for name := range values {
		rewards = append(rewards, san.RewardVariable{Name: name})
	}
	opts := san.Options{Mission: mission, Replications: 2, Confidence: 0.95, Seed: 1, Parallelism: 1}
	study := san.NewStudyResult(rewards, opts)
	for rep := 0; rep < 2; rep++ {
		res := san.Result{Rewards: make(map[string]float64, len(values)), FinalTime: mission}
		for name, v := range values {
			// Offset the second replication slightly so intervals are finite.
			res.Rewards[name] = v * (1 + 0.01*float64(rep))
		}
		study.Add(res)
	}
	return study
}

func requiredRewardValues() map[string]float64 {
	return map[string]float64{
		RewardStorageAvailability: 0.999,
		RewardCFSAvailability:     0.97,
		RewardDiskReplacements:    10,
		RewardLostJobsCFS:         100,
		RewardLostJobsTransient:   300,
	}
}

func TestMeasuresFromStudyMissingReward(t *testing.T) {
	values := requiredRewardValues()
	delete(values, RewardCFSAvailability)
	study := syntheticStudy(t, 8760, values)
	_, err := MeasuresFromStudy(ABE(), study)
	if !errors.Is(err, ErrMissingReward) {
		t.Fatalf("missing reward error = %v, want ErrMissingReward", err)
	}
	if err != nil && !strings.Contains(err.Error(), RewardCFSAvailability) {
		t.Errorf("error %q does not name the missing reward", err)
	}
	// A complete study succeeds and never returns NaN measures.
	full, err := MeasuresFromStudy(ABE(), syntheticStudy(t, 8760, requiredRewardValues()))
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(full.CFSAvailability) || math.IsNaN(full.ClusterUtility) {
		t.Errorf("NaN measures from a complete study: %+v", full)
	}
}

func TestClusterUtilityClamped(t *testing.T) {
	// Negative accumulated job losses (an estimator pathology) would push the
	// raw CU ratio above 1; it must be clamped to the unit interval.
	over := requiredRewardValues()
	over[RewardLostJobsCFS] = -1e6
	over[RewardLostJobsTransient] = -1e6
	m, err := MeasuresFromStudy(ABE(), syntheticStudy(t, 8760, over))
	if err != nil {
		t.Fatal(err)
	}
	if m.ClusterUtility != 1 {
		t.Errorf("CU = %v, want clamped to 1", m.ClusterUtility)
	}
	// Catastrophic losses push it below 0; clamped at 0.
	under := requiredRewardValues()
	under[RewardLostJobsCFS] = 1e9
	m, err = MeasuresFromStudy(ABE(), syntheticStudy(t, 8760, under))
	if err != nil {
		t.Fatal(err)
	}
	if m.ClusterUtility != 0 {
		t.Errorf("CU = %v, want clamped to 0", m.ClusterUtility)
	}
}

// TestLumpedBuildMatchesFlat pins the tentpole equivalence on the full
// composed model: the exponential-forms configuration built flat and lumped
// must agree on every reward mean within pooled confidence intervals, while
// the lumped model is drastically smaller and fires materially fewer events
// (the transient window is lumped away, everything else keeps its exact
// jump statistics).
func TestLumpedBuildMatchesFlat(t *testing.T) {
	cfg := ABE().WithExponentialForms()
	opts := san.Options{Mission: 8760, Replications: 24, Seed: 29}

	run := func(lumped bool) (*san.StudyResult, san.ModelStats) {
		model := san.NewModel("equiv")
		mp, err := Build(model, cfg.WithLumping(lumped))
		if err != nil {
			t.Fatal(err)
		}
		study, err := san.RunReplications(model, mp.Rewards(), opts)
		if err != nil {
			t.Fatal(err)
		}
		return study, model.Stats()
	}
	flat, flatStats := run(false)
	lumped, lumpedStats := run(true)

	// The lumped composed model is orders of magnitude smaller: counted
	// populations replace per-component expansion everywhere.
	if lumpedStats.Activities*10 > flatStats.Activities || lumpedStats.Places*10 > flatStats.Places {
		t.Errorf("lumped model not materially smaller: %+v vs flat %+v", lumpedStats, flatStats)
	}
	// And it fires materially fewer events for the same measures.
	if !(lumped.TotalEvents < flat.TotalEvents*9/10) {
		t.Errorf("lumped events %d not materially below flat %d", lumped.TotalEvents, flat.TotalEvents)
	}
	for _, reward := range []string{
		RewardStorageAvailability, RewardCFSAvailability, RewardDiskReplacements,
		RewardLostJobsCFS, RewardLostJobsTransient, RewardOSSPairsDown,
	} {
		fci, err := flat.Interval(reward)
		if err != nil {
			t.Fatal(err)
		}
		lci, err := lumped.Interval(reward)
		if err != nil {
			t.Fatal(err)
		}
		pooled := math.Sqrt(fci.HalfWidth*fci.HalfWidth + lci.HalfWidth*lci.HalfWidth)
		if math.Abs(fci.Mean-lci.Mean) > 3*pooled {
			t.Errorf("%s: flat %v vs lumped %v beyond pooled interval %v", reward, fci.Mean, lci.Mean, pooled)
		}
	}
}

func TestWithExponentialFormsAndLumping(t *testing.T) {
	base := ABE()
	exp := base.WithExponentialForms()
	if base.OSS.ExponentialRepairs || base.Lumped {
		t.Error("modifiers mutated the base config")
	}
	if !exp.OSS.ExponentialRepairs || exp.Storage.Disk.ShapeBeta != 1 ||
		!exp.Storage.Disk.ExponentialReplace || !exp.Storage.Controller.ExponentialRepair {
		t.Errorf("WithExponentialForms incomplete: %+v", exp)
	}
	if err := exp.Validate(); err != nil {
		t.Fatal(err)
	}
	lumped := exp.WithLumping(true)
	if !lumped.Lumped || exp.Lumped {
		t.Error("WithLumping did not copy-on-write")
	}
	if !lumped.LumpsOSSPairs() {
		t.Error("exponential-forms config should lump OSS pairs")
	}
	// The spare's deterministic activation forces flat pairs even when lumped.
	if lumped.WithSpareOSS(true).LumpsOSSPairs() {
		t.Error("spared OSS pairs must stay flat")
	}
	// The default (uniform-repair, Weibull-disk) config lumps nothing even
	// with the opt-in: representation never changes the distributions.
	plainLumped := base.WithLumping(true)
	if plainLumped.LumpsOSSPairs() || plainLumped.storageConfig().LumpsTiers() || plainLumped.storageConfig().LumpsControllers() {
		t.Error("non-exponential families must keep their flat expansion")
	}
}

func TestModelStats(t *testing.T) {
	flat, err := ABE().ModelStats()
	if err != nil {
		t.Fatal(err)
	}
	if flat.Lumped || flat.Places != flat.FlatPlaces || flat.Activities != flat.FlatActivities {
		t.Errorf("flat config stats inconsistent: %+v", flat)
	}
	if flat.Places == 0 || flat.Activities == 0 {
		t.Errorf("empty stats: %+v", flat)
	}
	lumped, err := ABE().WithExponentialForms().WithLumping(true).ModelStats()
	if err != nil {
		t.Fatal(err)
	}
	if !lumped.Lumped {
		t.Errorf("lumped flag lost: %+v", lumped)
	}
	if lumped.Places >= lumped.FlatPlaces || lumped.Activities >= lumped.FlatActivities {
		t.Errorf("lumped stats not smaller than flat expansion: %+v", lumped)
	}
	// The flat expansion of the exponential-forms config matches the flat
	// default in size (distribution swaps do not change the structure).
	if lumped.FlatPlaces != flat.FlatPlaces || lumped.FlatActivities != flat.FlatActivities {
		t.Errorf("flat expansion sizes differ: %+v vs %+v", lumped, flat)
	}
	// A direct storage-level opt-in (Config.Lumped left false) still counts
	// as lumped, and its flat comparison clears the storage flag too.
	storageOnly := ABE()
	storageOnly.Storage.Disk.ShapeBeta = 1
	storageOnly.Storage.Disk.ExponentialReplace = true
	storageOnly.Storage.Lumped = true
	if !storageOnly.LumpsAnything() {
		t.Error("storage-level lumping opt-in not detected")
	}
	if storageOnly.FlatConfig().LumpsAnything() {
		t.Error("FlatConfig left a lumping opt-in set")
	}
	so, err := storageOnly.ModelStats()
	if err != nil {
		t.Fatal(err)
	}
	if !so.Lumped || so.Places >= so.FlatPlaces || so.Activities >= so.FlatActivities {
		t.Errorf("storage-only lumped stats inconsistent: %+v", so)
	}
}

func TestCompositionTreeLumpedAnnotations(t *testing.T) {
	plain := CompositionTree(ABE()).Render()
	if strings.Contains(plain, "[lumped]") {
		t.Errorf("flat config tree claims lumping:\n%s", plain)
	}
	lumped := CompositionTree(ABE().WithExponentialForms().WithLumping(true)).Render()
	for _, want := range []string{
		"Replicate(OSS, n=9) [lumped]",
		"SAN(RAID_CONTROLLER) [lumped]",
		"Replicate(RAID6_TIERS, n=24) [lumped]",
	} {
		if !strings.Contains(lumped, want) {
			t.Errorf("lumped tree missing %q:\n%s", want, lumped)
		}
	}
	// Weibull disks stay individual even under the lumping opt-in.
	partial := CompositionTree(ABE().WithLumping(true)).Render()
	if strings.Contains(partial, "RAID6_TIERS, n=24) [lumped]") {
		t.Errorf("Weibull tiers annotated as lumped:\n%s", partial)
	}
}

// TestMiniErlangConfig pins the shipped previously-refused configuration:
// it validates, builds, and carries the Erlang fabric-repair knob; the
// degenerate stage counts are rejected at validation.
func TestMiniErlangConfig(t *testing.T) {
	cfg := MiniErlang()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("MiniErlang invalid: %v", err)
	}
	if cfg.Infrastructure.ErlangRepairStages != 3 {
		t.Fatalf("ErlangRepairStages = %d, want 3", cfg.Infrastructure.ErlangRepairStages)
	}
	m := san.NewModel(cfg.Name)
	mp, err := Build(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := san.Compile(m, mp.Rewards()); err != nil {
		t.Fatal(err)
	}

	bad := MiniErlang()
	bad.Infrastructure.ErlangRepairStages = 1
	if err := bad.Validate(); !errors.Is(err, ErrBadConfig) {
		t.Errorf("single-stage Erlang must be rejected with ErrBadConfig, got %v", err)
	}
	bad.Infrastructure.ErlangRepairStages = -1
	if err := bad.Validate(); !errors.Is(err, ErrBadConfig) {
		t.Errorf("negative stage count must be rejected with ErrBadConfig, got %v", err)
	}
}
