// The rare_event example walks through estimating a rare data-loss
// probability with the RESTART-style multilevel importance-splitting engine.
//
// The paper's headline measures are availabilities of highly redundant
// storage, where the interesting event — enough simultaneous disk failures
// in one RAID tier to lose data — is so rare that naive Monte Carlo needs
// millions of replications to see one. Importance splitting decomposes the
// probability into a product of per-level conditionals (1 disk down, 2 down,
// ...), each estimated by restarting cloned trajectories from snapshots
// taken at the previous level crossing.
//
// The example estimates P(data loss within a year) for a single (8+4) RAID
// tier three ways — multilevel splitting, naive Monte Carlo at the same
// simulated-event budget, and (because the example's disks are exponential
// with exponential repairs) the exact birth-death answer by uniformization —
// and prints the comparison.
package main

import (
	"fmt"
	"log"

	"repro/internal/dist"
	"repro/internal/rareevent"
	"repro/internal/san"
)

const (
	disks     = 12   // 8 data + 4 parity
	parity    = 4    // data loss at parity+1 concurrent failures
	mtbfHours = 6000 // per-disk exponential lifetime
	mttrHours = 48   // per-disk exponential repair
	mission   = 8760.0
)

// buildTier constructs the tier as an explicit birth-death SAN: a counter of
// failed disks, a marking-dependent failure activity (rate (N-n)/MTBF), and
// a marking-dependent repair activity (rate n/MTTR). Both delays are
// re-evaluated whenever the counter changes (reactivation), which makes the
// model an exact continuous-time Markov chain — so uniformization gives the
// exact answer to validate both estimators against.
func buildTier() (*san.Model, *san.Place, error) {
	m := san.NewModel("tier")
	failed := m.AddPlace("failed_disks", 0)

	fail := m.AddTimedActivityFunc("fail", func(mr san.MarkingReader) dist.Distribution {
		up := disks - mr.Tokens(failed)
		d, err := dist.NewExponentialFromRate(float64(up) / mtbfHours)
		if err != nil {
			panic(err)
		}
		return d
	})
	fail.SetReactivation(true)
	fail.AddInputGate(&san.InputGate{
		Name:    "some_disk_up",
		Reads:   []*san.Place{failed},
		Enabled: func(mr san.MarkingReader) bool { return mr.Tokens(failed) < disks },
	})
	fail.AddOutputArc(failed, 1)

	repair := m.AddTimedActivityFunc("repair", func(mr san.MarkingReader) dist.Distribution {
		d, err := dist.NewExponentialFromRate(float64(mr.Tokens(failed)) / mttrHours)
		if err != nil {
			panic(err)
		}
		return d
	})
	repair.SetReactivation(true)
	repair.AddInputArc(failed, 1)

	if err := m.Validate(); err != nil {
		return nil, nil, err
	}
	return m, failed, nil
}

func main() {
	log.SetFlags(0)

	model, failed, err := buildTier()
	if err != nil {
		log.Fatal(err)
	}
	importance := func(mr san.MarkingReader) float64 { return float64(mr.Tokens(failed)) }
	top := parity + 1

	fmt.Printf("P(data loss within %.0f h) for one %d-disk tier tolerating %d failures\n", mission, disks, parity)
	fmt.Printf("disk MTBF %d h, repair %d h (both exponential)\n\n", mtbfHours, mttrHours)

	// Exact answer: the tier is a birth-death chain on the failed-disk count
	// with birth rate (N-n)/MTBF and death rate n/MTTR, absorbed at top.
	birth := make([]float64, top)
	death := make([]float64, top)
	for n := 0; n < top; n++ {
		birth[n] = float64(disks-n) / mtbfHours
		death[n] = float64(n) / mttrHours
	}
	exact, err := rareevent.BirthDeathHitProbability(birth, death, mission)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact (uniformization):            %.3e\n", exact)

	// Multilevel splitting: one level per additional concurrent failure.
	// All delays are exponential, so memoryless resampling on restore is
	// exact and keeps clones of one snapshot independent.
	split, err := rareevent.Run(model, importance, rareevent.Options{
		Mission:           mission,
		Levels:            rareevent.UniformSplittingLevels(top),
		Effort:            rareevent.FixedEffort(top, 1000),
		Seed:              7,
		ResampleOnRestore: func(*san.Activity) bool { return true },
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("multilevel splitting:              %.3e ± %.3e (%d trajectories, %d events)\n",
		split.Probability, split.Interval.HalfWidth, split.Interval.N, split.TotalEvents)
	for _, sr := range split.Stages {
		fmt.Printf("  level %.0f: %4d/%4d crossed (conditional p=%.4f)\n",
			sr.Level, sr.Hits, sr.Trials, sr.ConditionalProbability())
	}

	// Naive Monte Carlo at the same simulated-event budget.
	naive, err := rareevent.RunNaive(model, importance, rareevent.NaiveOptions{
		Mission:     mission,
		Level:       float64(top),
		EventBudget: split.TotalEvents,
		Seed:        7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive MC (equal budget):           %.3e ± %.3e (%d replications, %d hits)\n",
		naive.Probability, naive.Interval.HalfWidth, naive.Replications, naive.Hits)

	ratio := naive.Interval.HalfWidth / split.Interval.HalfWidth
	fmt.Printf("\nCI narrowing factor at equal cost: %.0fx\n", ratio)
}
