package raid

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/rng"
	"repro/internal/san"
	"repro/internal/stats"
)

func TestTierGeometry(t *testing.T) {
	g := TierGeometry{Data: 8, Parity: 2}
	if g.Disks() != 10 {
		t.Errorf("Disks = %d, want 10", g.Disks())
	}
	if g.String() != "8+2" {
		t.Errorf("String = %q", g.String())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("valid geometry rejected: %v", err)
	}
	if err := (TierGeometry{Data: 0, Parity: 2}).Validate(); err == nil {
		t.Error("zero data disks accepted")
	}
	if err := (TierGeometry{Data: 8, Parity: -1}).Validate(); err == nil {
		t.Error("negative parity accepted")
	}
}

func TestDiskConfig(t *testing.T) {
	d := DefaultDisk()
	if err := d.Validate(); err != nil {
		t.Fatalf("default disk invalid: %v", err)
	}
	if math.Abs(d.AFR()-0.0292) > 0.001 {
		t.Errorf("default AFR = %v, want ~0.0292", d.AFR())
	}
	d.MTBFHours = 0
	if err := d.Validate(); err == nil {
		t.Error("zero MTBF accepted")
	}
}

func TestControllerConfig(t *testing.T) {
	c := DefaultController()
	if err := c.Validate(); err != nil {
		t.Fatalf("default controller invalid: %v", err)
	}
	c.RepairHiHours = c.RepairLoHours - 1
	if err := c.Validate(); err == nil {
		t.Error("inverted repair range accepted")
	}
}

func TestABEStorageConfig(t *testing.T) {
	cfg := ABEStorage()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("ABE config invalid: %v", err)
	}
	if cfg.TotalDisks() != 480 {
		t.Errorf("TotalDisks = %d, want 480 (paper Section 3.2)", cfg.TotalDisks())
	}
	if cfg.TotalTiers() != 48 {
		t.Errorf("TotalTiers = %d, want 48", cfg.TotalTiers())
	}
	if math.Abs(cfg.UsableTB()-96) > 0.01 {
		t.Errorf("UsableTB = %v, want 96", cfg.UsableTB())
	}
}

func TestStorageConfigValidate(t *testing.T) {
	cfg := ABEStorage()
	cfg.DDNUnits = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero DDN units accepted")
	}
	cfg = ABEStorage()
	cfg.Geometry.Data = 0
	if err := cfg.Validate(); err == nil {
		t.Error("bad geometry accepted")
	}
	cfg = ABEStorage()
	cfg.Disk.ReplaceHours = 0
	if err := cfg.Validate(); err == nil {
		t.Error("bad disk accepted")
	}
	cfg = ABEStorage()
	cfg.Controller.MTBFHours = 0
	if err := cfg.Validate(); err == nil {
		t.Error("bad controller accepted")
	}
}

func TestScaledToDisks(t *testing.T) {
	cfg := ABEStorage()
	scaled, err := cfg.ScaledToDisks(4800)
	if err != nil {
		t.Fatal(err)
	}
	if scaled.DDNUnits != 20 {
		t.Errorf("DDNUnits = %d, want 20", scaled.DDNUnits)
	}
	if scaled.TotalDisks() != 4800 {
		t.Errorf("TotalDisks = %d, want 4800", scaled.TotalDisks())
	}
	// Rounds up when the target is not a multiple of a DDN unit.
	scaled, err = cfg.ScaledToDisks(500)
	if err != nil {
		t.Fatal(err)
	}
	if scaled.DDNUnits != 3 {
		t.Errorf("DDNUnits = %d, want 3", scaled.DDNUnits)
	}
	if _, err := cfg.ScaledToDisks(0); err == nil {
		t.Error("zero disks accepted")
	}
}

func TestScaledToUsableTB(t *testing.T) {
	cfg := ABEStorage()
	// Same capacity per disk (0 years of growth): 12x the capacity needs 12x
	// the DDN units.
	scaled, err := cfg.ScaledToUsableTB(96*12, 0.33, 0)
	if err != nil {
		t.Fatal(err)
	}
	if scaled.DDNUnits != 24 {
		t.Errorf("DDNUnits = %d, want 24", scaled.DDNUnits)
	}
	// With 4 years of 33% capacity growth, 12 PB needs far fewer units than
	// it would at 250 GB/disk.
	petascale, err := cfg.ScaledToUsableTB(12000, 0.33, 4)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := cfg.ScaledToUsableTB(12000, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if petascale.DDNUnits >= naive.DDNUnits {
		t.Errorf("capacity growth should reduce the units needed: %d vs %d", petascale.DDNUnits, naive.DDNUnits)
	}
	if petascale.UsableTB() < 12000 {
		t.Errorf("scaled capacity %v TB < target", petascale.UsableTB())
	}
	if _, err := cfg.ScaledToUsableTB(-1, 0.33, 4); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestBuildStorageStructure(t *testing.T) {
	m := san.NewModel("storage-test")
	cfg := StorageConfig{
		DDNUnits:    2,
		TiersPerDDN: 3,
		Geometry:    TierGeometry{Data: 8, Parity: 2},
		Disk:        DefaultDisk(),
		Controller:  DefaultController(),
	}
	sp, err := BuildStorage(m, "storage", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("built model invalid: %v", err)
	}
	// 2 DDN x 3 tiers x 10 disks = 60 disks, one replace activity each.
	if len(sp.ReplaceActivities) != 60 {
		t.Errorf("replace activities = %d, want 60", len(sp.ReplaceActivities))
	}
	// Places: 3 global counters + per DDN (1 pairDown + 2x2 controller) +
	// per tier (1 + 10x2 disks).
	wantPlaces := 3 + 2*(1+4) + 6*(1+20)
	if m.NumPlaces() != wantPlaces {
		t.Errorf("NumPlaces = %d, want %d", m.NumPlaces(), wantPlaces)
	}
	// Activities: per controller 2 (fail/repair) x 2 x 2 DDN = 8, per disk 2 x 60 = 120.
	if m.NumActivities() != 128 {
		t.Errorf("NumActivities = %d, want 128", m.NumActivities())
	}
	if m.Place("storage/ddn[1]/tier[2]/disk[9]/up") == nil {
		t.Error("expected hierarchical place names")
	}
	for _, name := range sp.ReplaceActivities {
		if !strings.Contains(name, "replace") {
			t.Errorf("unexpected replace activity name %q", name)
		}
	}
	// Rebuilding under the same prefix must fail (duplicate names).
	if _, err := BuildStorage(m, "storage", cfg); err == nil {
		t.Error("duplicate prefix accepted")
	}
	// Invalid config rejected.
	bad := cfg
	bad.DDNUnits = 0
	if _, err := BuildStorage(san.NewModel("x"), "s", bad); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestStorageSimulationHighReliability(t *testing.T) {
	// With ABE-like parameters at small scale the storage availability must
	// be essentially 1 and the replacement count must match the analytic
	// renewal rate.
	m := san.NewModel("abe-small")
	cfg := StorageConfig{
		DDNUnits:    1,
		TiersPerDDN: 4,
		Geometry:    TierGeometry{Data: 8, Parity: 2},
		Disk:        DiskConfig{ShapeBeta: 1.0, MTBFHours: 50000, ReplaceHours: 4, CapacityGB: 250},
		Controller:  DefaultController(),
	}
	sp, err := BuildStorage(m, "storage", cfg)
	if err != nil {
		t.Fatal(err)
	}
	rewards := []san.RewardVariable{
		sp.AvailabilityReward("storage_availability"),
		sp.ReplacementCountReward("replacements"),
	}
	res, err := san.RunReplications(m, rewards, san.Options{Mission: 8760, Replications: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	avail := res.Mean("storage_availability")
	if avail < 0.999 {
		t.Errorf("storage availability = %v, want ~1 at this scale", avail)
	}
	// Expected replacements per year: 40 disks * 8760/50004 ≈ 7.0.
	wantPerYear := float64(cfg.TotalDisks()) * 8760 / (cfg.Disk.MTBFHours + cfg.Disk.ReplaceHours)
	got := res.Mean("replacements")
	if math.Abs(got-wantPerYear)/wantPerYear > 0.25 {
		t.Errorf("replacements per year = %v, want ~%v", got, wantPerYear)
	}
}

func TestStorageSimulationTierFailureInjection(t *testing.T) {
	// Failure injection: disks that live a deterministic 10 hours and take
	// 100 hours to replace guarantee that a (1+1) tier loses redundancy, so
	// the tier must be observed failed and availability must drop well below
	// 1.
	m := san.NewModel("inject")
	sp := &StoragePlaces{}
	var err error
	sp.TiersFailed, err = m.AddPlaceErr("tiers_failed", 0)
	if err != nil {
		t.Fatal(err)
	}
	sp.DDNFailed, _ = m.AddPlaceErr("ddn_failed", 0)
	sp.DisksDown, _ = m.AddPlaceErr("disks_down", 0)
	life, _ := dist.NewDeterministic(10)
	replace, _ := dist.NewDeterministic(100)
	if err := buildTier(m, "tier", TierGeometry{Data: 1, Parity: 1}, life, replace, sp); err != nil {
		t.Fatal(err)
	}
	rewards := []san.RewardVariable{
		sp.AvailabilityReward("avail"),
		san.CompletionCount("tier_failures", findActivities(m, "fail")...),
	}
	sim, err := san.NewSimulator(m, rewards, newTestStream())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(200)
	if err != nil {
		t.Fatal(err)
	}
	// Both disks fail at t=10 and stay down until t=110: at least 100 of the
	// 200 hours are unavailable.
	if got := res.Rewards["avail"]; got > 0.55 {
		t.Errorf("availability = %v, want <= 0.55 under forced double failure", got)
	}
	if got := res.Rewards["tier_failures"]; got < 2 {
		t.Errorf("disk failures = %v, want >= 2", got)
	}
}

func TestControllerDoubleFaultCausesDDNFailure(t *testing.T) {
	// Failure injection for the controller pair: both controllers fail
	// deterministically and take long to repair, so the DDN must be counted
	// as failed for part of the mission.
	m := san.NewModel("ctrl-inject")
	sp := &StoragePlaces{}
	sp.TiersFailed, _ = m.AddPlaceErr("tiers_failed", 0)
	sp.DDNFailed, _ = m.AddPlaceErr("ddn_failed", 0)
	sp.DisksDown, _ = m.AddPlaceErr("disks_down", 0)
	life, _ := dist.NewDeterministic(10)
	repair, _ := dist.NewDeterministic(50)
	if err := buildControllerPair(m, "ddn", life, repair, sp); err != nil {
		t.Fatal(err)
	}
	sim, err := san.NewSimulator(m, []san.RewardVariable{sp.AvailabilityReward("avail")}, newTestStream())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(60)
	if err != nil {
		t.Fatal(err)
	}
	// Both fail at t=10, repaired at t=60: 50 of 60 hours unavailable.
	if got := res.Rewards["avail"]; math.Abs(got-10.0/60.0) > 1e-9 {
		t.Errorf("availability = %v, want %v", got, 10.0/60.0)
	}
}

func TestTierUnavailabilityExponential(t *testing.T) {
	// RAID0 (no parity) single-disk tier: unavailability = MTTR/(MTBF+MTTR).
	u, err := TierUnavailabilityExponential(TierGeometry{Data: 1, Parity: 0}, 1000, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := 10.0 / 1010.0
	if math.Abs(u-want) > 1e-12 {
		t.Errorf("single-disk unavailability = %v, want %v", u, want)
	}
	// More parity is strictly better.
	u2, _ := TierUnavailabilityExponential(TierGeometry{Data: 8, Parity: 2}, 100000, 4)
	u3, _ := TierUnavailabilityExponential(TierGeometry{Data: 8, Parity: 3}, 100000, 4)
	if !(u3 < u2) {
		t.Errorf("8+3 unavailability %v should be < 8+2 %v", u3, u2)
	}
	if u2 <= 0 || u2 >= 1 {
		t.Errorf("unavailability out of range: %v", u2)
	}
	if _, err := TierUnavailabilityExponential(TierGeometry{Data: 0}, 100, 1); err == nil {
		t.Error("bad geometry accepted")
	}
	if _, err := TierUnavailabilityExponential(TierGeometry{Data: 1}, 0, 1); err == nil {
		t.Error("zero MTBF accepted")
	}
}

func TestStorageUnavailabilityExponentialMonotoneInScale(t *testing.T) {
	small := ABEStorage()
	small.Disk.ShapeBeta = 1.0
	big, err := small.ScaledToDisks(4800)
	if err != nil {
		t.Fatal(err)
	}
	uSmall, err := StorageUnavailabilityExponential(small, small.Disk.ReplaceHours)
	if err != nil {
		t.Fatal(err)
	}
	uBig, err := StorageUnavailabilityExponential(big, big.Disk.ReplaceHours)
	if err != nil {
		t.Fatal(err)
	}
	if !(uBig > uSmall) {
		t.Errorf("unavailability should grow with scale: %v vs %v", uSmall, uBig)
	}
	bad := small
	bad.DDNUnits = 0
	if _, err := StorageUnavailabilityExponential(bad, 4); err == nil {
		t.Error("bad config accepted")
	}
}

func TestExpectedReplacementsPerWeek(t *testing.T) {
	cfg := ABEStorage()
	perWeek, err := ExpectedReplacementsPerWeek(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The paper observes 0-2 replacements per week on ABE; the analytic value
	// for 480 disks at 300,000 h MTBF is ~0.27/week.
	if perWeek < 0.1 || perWeek > 2 {
		t.Errorf("ABE replacements per week = %v, want within the paper's 0-2 band", perWeek)
	}
	scaled, _ := cfg.ScaledToDisks(4800)
	scaledPerWeek, _ := ExpectedReplacementsPerWeek(scaled)
	if math.Abs(scaledPerWeek-10*perWeek)/scaledPerWeek > 0.01 {
		t.Errorf("10x disks should give 10x replacements: %v vs %v", scaledPerWeek, perWeek)
	}
	bad := cfg
	bad.Disk.MTBFHours = -1
	if _, err := ExpectedReplacementsPerWeek(bad); err == nil {
		t.Error("bad config accepted")
	}
}

// Property: analytic tier unavailability is within (0,1), decreases with
// added parity, and increases with MTTR.
func TestQuickTierUnavailabilityProperties(t *testing.T) {
	f := func(dataSeed, paritySeed uint8, mtbfSeed, mttrSeed uint16) bool {
		g := TierGeometry{Data: int(dataSeed%12) + 1, Parity: int(paritySeed % 4)}
		mtbf := 1000 + float64(mtbfSeed)
		mttr := 1 + float64(mttrSeed%200)
		u, err := TierUnavailabilityExponential(g, mtbf, mttr)
		if err != nil {
			return false
		}
		if u <= 0 || u >= 1 {
			return false
		}
		better, err := TierUnavailabilityExponential(TierGeometry{Data: g.Data, Parity: g.Parity + 1}, mtbf, mttr)
		if err != nil || better >= u {
			return false
		}
		slower, err := TierUnavailabilityExponential(g, mtbf, mttr*2)
		if err != nil || slower <= u {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// findActivities returns the names of activities containing substr.
func findActivities(m *san.Model, substr string) []string {
	var out []string
	for _, a := range m.Activities() {
		if strings.Contains(a.Name(), substr) {
			out = append(out, a.Name())
		}
	}
	return out
}

// newTestStream returns a deterministic stream for single-run simulations in
// this package's tests.
func newTestStream() *rng.Stream {
	return rng.NewStream(123, "raid-test")
}

// lumpableStorage returns a fully exponential storage configuration in
// lumped form: shape-1 disks with exponential replacement and exponential
// controller repairs.
func lumpableStorage(ddnUnits, tiersPerDDN int, g TierGeometry, mtbf, mttr float64) StorageConfig {
	return StorageConfig{
		DDNUnits:    ddnUnits,
		TiersPerDDN: tiersPerDDN,
		Geometry:    g,
		Disk: DiskConfig{
			ShapeBeta: 1, MTBFHours: mtbf, ReplaceHours: mttr,
			ExponentialReplace: true, CapacityGB: 250,
		},
		Controller: ControllerConfig{
			MTBFHours: 1e9, RepairLoHours: 12, RepairHiHours: 36,
			ExponentialRepair: true,
		},
		Lumped: true,
	}
}

func TestLumpingPredicates(t *testing.T) {
	cfg := lumpableStorage(2, 3, TierGeometry{Data: 2, Parity: 1}, 1000, 48)
	if !cfg.LumpsTiers() || !cfg.LumpsControllers() {
		t.Errorf("fully exponential config should lump: tiers=%v controllers=%v", cfg.LumpsTiers(), cfg.LumpsControllers())
	}
	weibull := cfg
	weibull.Disk.ShapeBeta = 0.7
	if weibull.LumpsTiers() {
		t.Error("Weibull-aged disks must stay flat")
	}
	detReplace := cfg
	detReplace.Disk.ExponentialReplace = false
	if detReplace.LumpsTiers() {
		t.Error("deterministic replacement must stay flat")
	}
	crews := cfg
	crews.RepairCrews = 1
	if crews.LumpsTiers() {
		t.Error("crew-capped replacement must stay flat (the crew couples tiers)")
	}
	uniformCtrl := cfg
	uniformCtrl.Controller.ExponentialRepair = false
	if uniformCtrl.LumpsControllers() {
		t.Error("uniform controller repair must stay flat")
	}
	off := cfg
	off.Lumped = false
	if off.LumpsTiers() || off.LumpsControllers() {
		t.Error("lumping without the opt-in")
	}
	bad := cfg
	bad.RepairCrews = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative repair crews accepted")
	}
}

// TestLumpedStorageMatchesClosedForm validates the lumped tier population
// against the exact steady-state answer: for exponential lifetimes and
// replacements the per-tier birth-death chain has the closed-form
// unavailability of TierUnavailabilityExponential, and independent tiers
// compose as StorageUnavailabilityExponential.
func TestLumpedStorageMatchesClosedForm(t *testing.T) {
	cfg := lumpableStorage(1, 4, TierGeometry{Data: 2, Parity: 1}, 1000, 48)
	want, err := StorageUnavailabilityExponential(cfg, cfg.Disk.ReplaceHours)
	if err != nil {
		t.Fatal(err)
	}

	m := san.NewModel("lumped-closed-form")
	sp, err := BuildStorage(m, "storage", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sp.LumpedTiers == nil || sp.LumpedControllers == nil {
		t.Fatal("expected lumped tiers and controllers")
	}
	res, err := san.RunReplications(m, []san.RewardVariable{
		sp.AvailabilityReward("avail"),
	}, san.Options{Mission: 50000, Replications: 32, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	got := 1 - res.Mean("avail")
	if math.Abs(got-want)/want > 0.15 {
		t.Errorf("lumped storage unavailability = %v, closed form says %v", got, want)
	}
}

// TestLumpedStorageMatchesFlat pins the lumping equivalence on the storage
// submodel: the same fully exponential configuration built flat and lumped
// agrees on availability and replacement counts within pooled confidence
// intervals, with a model-size reduction that grows with scale.
func TestLumpedStorageMatchesFlat(t *testing.T) {
	lumpedCfg := lumpableStorage(2, 4, TierGeometry{Data: 4, Parity: 1}, 2000, 24)
	flatCfg := lumpedCfg
	flatCfg.Lumped = false
	opts := san.Options{Mission: 8760, Replications: 32, Seed: 11}

	run := func(cfg StorageConfig) ([2]stats.Interval, *san.Model) {
		m := san.NewModel("storage-equiv")
		sp, err := BuildStorage(m, "storage", cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := san.RunReplications(m, []san.RewardVariable{
			sp.AvailabilityReward("avail"),
			sp.ReplacementCountReward("replacements"),
		}, opts)
		if err != nil {
			t.Fatal(err)
		}
		availCI, err := res.Interval("avail")
		if err != nil {
			t.Fatal(err)
		}
		replCI, err := res.Interval("replacements")
		if err != nil {
			t.Fatal(err)
		}
		return [2]stats.Interval{availCI, replCI}, m
	}
	flat, flatModel := run(flatCfg)
	lumped, lumpedModel := run(lumpedCfg)
	if fs, ls := flatModel.Stats(), lumpedModel.Stats(); ls.Places >= fs.Places || ls.Activities >= fs.Activities {
		t.Errorf("lumped storage not smaller: %+v vs %+v", ls, fs)
	}
	for i, name := range []string{"avail", "replacements"} {
		pooled := math.Sqrt(flat[i].HalfWidth*flat[i].HalfWidth + lumped[i].HalfWidth*lumped[i].HalfWidth)
		if math.Abs(flat[i].Mean-lumped[i].Mean) > 3*pooled {
			t.Errorf("%s: flat %v vs lumped %v beyond pooled interval %v", name, flat[i].Mean, lumped[i].Mean, pooled)
		}
	}
	// The analytic renewal rate anchors the replacement count in absolute
	// terms (mean lifetime + mean replacement is distribution-free).
	wantPerYear := float64(lumpedCfg.TotalDisks()) * 8760 / (lumpedCfg.Disk.MTBFHours + lumpedCfg.Disk.ReplaceHours)
	if math.Abs(lumped[1].Mean-wantPerYear)/wantPerYear > 0.2 {
		t.Errorf("lumped replacements per year = %v, want ~%v", lumped[1].Mean, wantPerYear)
	}
}

// TestRepairCrewsCapBacklog exercises the shared-repair-crew knob: under
// overload a single crew builds a strictly larger replacement backlog than
// unlimited crews, and the crew place never over-allocates.
func TestRepairCrewsCapBacklog(t *testing.T) {
	base := StorageConfig{
		DDNUnits:    2,
		TiersPerDDN: 1,
		Geometry:    TierGeometry{Data: 2, Parity: 1},
		Disk:        DiskConfig{ShapeBeta: 1, MTBFHours: 100, ReplaceHours: 25, CapacityGB: 250},
		Controller:  ControllerConfig{MTBFHours: 1e9, RepairLoHours: 1, RepairHiHours: 2},
	}
	opts := san.Options{Mission: 4000, Replications: 24, Seed: 9}

	backlog := func(crews int) (float64, float64) {
		cfg := base
		cfg.RepairCrews = crews
		m := san.NewModel("crews")
		sp, err := BuildStorage(m, "storage", cfg)
		if err != nil {
			t.Fatal(err)
		}
		if (crews > 0) != (sp.RepairCrews != nil) {
			t.Fatalf("RepairCrews place presence wrong for %d crews", crews)
		}
		rewards := []san.RewardVariable{
			san.TokenTimeAverage("backlog", sp.DisksDown),
		}
		if sp.RepairCrews != nil {
			// Time-averaged busy crews: initial tokens minus idle tokens. It
			// can never exceed the crew count.
			crewPlace := sp.RepairCrews
			rewards = append(rewards, san.RewardVariable{
				Name: "busy_crews",
				Mode: san.TimeAveraged,
				Rate: func(mr san.MarkingReader) float64 {
					busy := crews - mr.Tokens(crewPlace)
					if busy < 0 {
						t.Errorf("crew place over-allocated: %d idle of %d", mr.Tokens(crewPlace), crews)
					}
					return float64(busy)
				},
			})
		}
		res, err := san.RunReplications(m, rewards, opts)
		if err != nil {
			t.Fatal(err)
		}
		busy := 0.0
		if sp.RepairCrews != nil {
			busy = res.Mean("busy_crews")
		}
		return res.Mean("backlog"), busy
	}

	unlimited, _ := backlog(0)
	capped, busy := backlog(1)
	if !(capped > 1.5*unlimited) {
		t.Errorf("1-crew backlog %v should clearly exceed unlimited backlog %v", capped, unlimited)
	}
	if busy <= 0 || busy > 1 {
		t.Errorf("time-averaged busy crews = %v, want in (0, 1] for one crew", busy)
	}
}

// TestDiskErlangReplace pins the Erlang replacement knob: validation
// rejects the degenerate stage counts, the replacement distribution becomes
// an Erlang of the configured mean, and the tier verdict names the exact
// phase-type remedy instead of a bare refusal.
func TestDiskErlangReplace(t *testing.T) {
	d := DefaultDisk()
	d.ErlangReplaceStages = 4
	if err := d.Validate(); err != nil {
		t.Fatalf("Erlang replacement rejected: %v", err)
	}
	rd, err := d.replaceDist()
	if err != nil {
		t.Fatal(err)
	}
	g, ok := rd.(dist.Gamma)
	if !ok {
		t.Fatalf("replaceDist returned %T, want dist.Gamma", rd)
	}
	if math.Abs(g.Mean()-d.ReplaceHours) > 1e-9 {
		t.Errorf("Erlang replacement mean = %v, want %v", g.Mean(), d.ReplaceHours)
	}
	d.ErlangReplaceStages = 1
	if err := d.Validate(); err == nil {
		t.Error("single-stage Erlang accepted; that is the exponential form")
	}
	d.ErlangReplaceStages = -2
	if err := d.Validate(); err == nil {
		t.Error("negative stage count accepted")
	}

	cfg := ABEStorage()
	cfg.Disk.ErlangReplaceStages = 4
	v := cfg.TierLumpability()
	if v.Lumpable {
		t.Error("Erlang replacement must break tier lumpability")
	}
	found := false
	for _, r := range v.Reasons {
		if strings.Contains(r, "disk_replace") && strings.Contains(r, "exactly expandable into 4 exponential phases") {
			found = true
		}
	}
	if !found {
		t.Errorf("tier verdict must name the phase-type remedy, got %v", v.Reasons)
	}
}
