package dist

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/rng"
)

// sampleMoments draws n values from d on a seeded stream and returns the
// sample mean and variance.
func sampleMoments(t *testing.T, d Distribution, n int, seed uint64) (mean, variance float64) {
	t.Helper()
	s := rng.NewStream(seed, "dist-test")
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := d.Sample(s)
		if math.IsNaN(v) || v < 0 {
			t.Fatalf("%s: sample %d = %v", Describe(d), i, v)
		}
		sum += v
		sumSq += v * v
	}
	mean = sum / float64(n)
	variance = sumSq/float64(n) - mean*mean
	return mean, variance
}

// varier is the optional analytic-variance interface the families implement.
type varier interface {
	Variance() float64
}

// TestSeededMoments validates every sampler against its analytic mean (2%
// relative tolerance) and variance (5%) on a fixed seed.
func TestSeededMoments(t *testing.T) {
	mustDist := func(d Distribution, err error) Distribution {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	empValues := []float64{1, 2, 2, 3, 4, 4, 5, 8, 13, 21}
	emp := mustDist(asDist(NewEmpirical(empValues)))
	cases := []struct {
		name string
		d    Distribution
	}{
		{"exponential", mustDist(asDist(NewExponentialFromMean(120)))},
		{"exponential-rate", mustDist(asDist(NewExponentialFromRate(0.25)))},
		{"weibull-infant", mustDist(asDist(NewWeibull(0.71, 1000)))},
		{"weibull-wearout", mustDist(asDist(NewWeibull(1.5, 500)))},
		{"weibull-mtbf", mustDist(asDist(NewWeibullFromMTBF(0.8, 250000)))},
		{"lognormal", mustDist(asDist(NewLognormal(1.2, 0.5)))},
		{"lognormal-moments", mustDist(asDist(NewLognormalFromMoments(6, 8)))},
		{"uniform", mustDist(asDist(NewUniform(12, 36)))},
		{"deterministic", mustDist(asDist(NewDeterministic(17)))},
		{"gamma-heavy", mustDist(asDist(NewGamma(0.5, 40)))},
		{"gamma", mustDist(asDist(NewGamma(2.5, 40)))},
		{"erlang", mustDist(asDist(NewErlang(3, 0.05)))},
		{"mixture", mustDist(asDist(NewMixture(
			Component{Weight: 3, Dist: mustDist(asDist(NewExponentialFromMean(4)))},
			Component{Weight: 1, Dist: mustDist(asDist(NewUniform(48, 96)))},
		)))},
		{"empirical", emp},
	}
	const n = 400000
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mean, variance := sampleMoments(t, tc.d, n, 1000+uint64(i))
			wantMean := tc.d.Mean()
			if relErr(mean, wantMean) > 0.02 {
				t.Errorf("%s: sample mean %v, analytic %v", Describe(tc.d), mean, wantMean)
			}
			v, ok := tc.d.(varier)
			if !ok {
				return
			}
			wantVar := v.Variance()
			if wantVar == 0 {
				if variance != 0 {
					t.Errorf("%s: sample variance %v, want 0", Describe(tc.d), variance)
				}
				return
			}
			if relErr(variance, wantVar) > 0.05 {
				t.Errorf("%s: sample variance %v, analytic %v", Describe(tc.d), variance, wantVar)
			}
		})
	}
}

// asDist adapts a concrete (T, error) constructor result to (Distribution,
// error) so the table above can share one must-helper.
func asDist[T Distribution](d T, err error) (Distribution, error) { return d, err }

func relErr(got, want float64) float64 {
	return math.Abs(got-want) / math.Abs(want)
}

// TestSamplingIsDeterministic checks that equal seeds give identical
// sequences — the property common random numbers depend on.
func TestSamplingIsDeterministic(t *testing.T) {
	w, err := NewWeibull(1.5, 1000)
	if err != nil {
		t.Fatal(err)
	}
	a := rng.NewStream(7, "a")
	b := rng.NewStream(7, "b")
	for i := 0; i < 1000; i++ {
		if va, vb := w.Sample(a), w.Sample(b); va != vb {
			t.Fatalf("draw %d diverged: %v vs %v", i, va, vb)
		}
	}
}

// quantileFamily pairs a distribution with both optional interfaces for the
// round-trip test.
type quantileFamily interface {
	Distribution
	Quantiler
	CDFer
}

// TestQuantileRoundTrip checks CDF(Quantile(p)) == p across the families
// with continuous, strictly increasing CDFs, and that quantiles are
// monotone.
func TestQuantileRoundTrip(t *testing.T) {
	mustQ := func(d Distribution, err error) quantileFamily {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		q, ok := d.(quantileFamily)
		if !ok {
			t.Fatalf("%T does not implement Quantiler+CDFer", d)
		}
		return q
	}
	emp := mustQ(asDist(NewEmpirical([]float64{2, 5, 7.5, 11, 20, 42})))
	families := []quantileFamily{
		mustQ(asDist(NewExponentialFromMean(100))),
		mustQ(asDist(NewWeibull(0.71, 1000))),
		mustQ(asDist(NewWeibull(2, 300))),
		mustQ(asDist(NewLognormalFromMoments(6, 8))),
		mustQ(asDist(NewUniform(12, 36))),
		mustQ(asDist(NewGamma(0.5, 10))),
		mustQ(asDist(NewGamma(4, 25))),
		mustQ(asDist(NewMixture(
			Component{Weight: 1, Dist: mustQ(asDist(NewExponentialFromMean(5)))},
			Component{Weight: 1, Dist: mustQ(asDist(NewLognormalFromMoments(40, 10)))},
		))),
		emp,
	}
	ps := []float64{0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}
	for _, d := range families {
		prev := math.Inf(-1)
		for _, p := range ps {
			x := d.Quantile(p)
			if math.IsNaN(x) {
				t.Errorf("%s: Quantile(%v) = NaN", Describe(d), p)
				continue
			}
			if x < prev {
				t.Errorf("%s: quantile not monotone at p=%v: %v < %v", Describe(d), p, x, prev)
			}
			prev = x
			if got := d.CDF(x); math.Abs(got-p) > 1e-6 {
				t.Errorf("%s: CDF(Quantile(%v)) = %v", Describe(d), p, got)
			}
		}
		for _, p := range []float64{-0.1, 1.1, math.NaN()} {
			if x := d.Quantile(p); !math.IsNaN(x) {
				t.Errorf("%s: Quantile(%v) = %v, want NaN", Describe(d), p, x)
			}
		}
	}
}

// TestDeterministicQuantile covers the step-CDF family excluded from the
// continuous round trip.
func TestDeterministicQuantile(t *testing.T) {
	d, err := NewDeterministic(5)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Quantile(0.3); got != 5 {
		t.Errorf("Quantile(0.3) = %v", got)
	}
	if got := d.CDF(4.999); got != 0 {
		t.Errorf("CDF(4.999) = %v", got)
	}
	if got := d.CDF(5); got != 1 {
		t.Errorf("CDF(5) = %v", got)
	}
	if got := d.Sample(nil); got != 5 {
		t.Errorf("Sample = %v", got)
	}
}

// TestGammaCDFMatchesExponential pins the incomplete-gamma evaluation to the
// closed form it must reduce to at shape 1.
func TestGammaCDFMatchesExponential(t *testing.T) {
	g, err := NewGamma(1, 50)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewExponentialFromMean(50)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.1, 1, 10, 50, 100, 400, 1000} {
		if got, want := g.CDF(x), e.CDF(x); math.Abs(got-want) > 1e-12 {
			t.Errorf("CDF(%v) = %v, want %v", x, got, want)
		}
	}
}

// TestErlangIsGammaWithIntegerShape checks the Erlang constructor maps
// (k, rate) onto the gamma parameterization.
func TestErlangIsGammaWithIntegerShape(t *testing.T) {
	g, err := NewErlang(4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if g.Shape() != 4 || g.Scale() != 2 {
		t.Errorf("Erlang(4, 0.5) = shape %v scale %v", g.Shape(), g.Scale())
	}
	if got := g.Mean(); got != 8 {
		t.Errorf("mean = %v", got)
	}
}

// TestWeibullFromMTBFMatchesMean checks the derived scale reproduces the
// requested MTBF for infant-mortality, exponential, and wear-out shapes.
func TestWeibullFromMTBFMatchesMean(t *testing.T) {
	for _, shape := range []float64{0.5, 0.71, 1.0, 1.5, 3.0} {
		w, err := NewWeibullFromMTBF(shape, 250000)
		if err != nil {
			t.Fatal(err)
		}
		if relErr(w.Mean(), 250000) > 1e-12 {
			t.Errorf("shape %v: mean %v, want 250000", shape, w.Mean())
		}
	}
}

// TestAFRToMTBFHours checks the round trip with the AFR = HoursPerYear/MTBF
// convention the RAID configuration uses.
func TestAFRToMTBFHours(t *testing.T) {
	mtbf, err := AFRToMTBFHours(HoursPerYear / 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(mtbf, 1e6) > 1e-12 {
		t.Errorf("MTBF = %v, want 1e6", mtbf)
	}
	for _, afr := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := AFRToMTBFHours(afr); !errors.Is(err, ErrInvalidParam) {
			t.Errorf("AFRToMTBFHours(%v) error = %v, want ErrInvalidParam", afr, err)
		}
	}
}

// TestInvalidParameters exercises every constructor's rejection paths.
func TestInvalidParameters(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	okExp, err := NewExponentialFromMean(1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		err  error
	}{
		{"exp mean 0", errOf(asDist(NewExponentialFromMean(0)))},
		{"exp mean neg", errOf(asDist(NewExponentialFromMean(-3)))},
		{"exp mean nan", errOf(asDist(NewExponentialFromMean(nan)))},
		{"exp mean inf", errOf(asDist(NewExponentialFromMean(inf)))},
		{"exp rate 0", errOf(asDist(NewExponentialFromRate(0)))},
		{"weibull shape 0", errOf(asDist(NewWeibull(0, 1)))},
		{"weibull scale neg", errOf(asDist(NewWeibull(1, -1)))},
		{"weibull mtbf nan", errOf(asDist(NewWeibullFromMTBF(1, nan)))},
		{"lognormal sigma 0", errOf(asDist(NewLognormal(0, 0)))},
		{"lognormal mu inf", errOf(asDist(NewLognormal(inf, 1)))},
		{"lognormal mean neg", errOf(asDist(NewLognormalFromMoments(-6, 8)))},
		{"lognormal sd 0", errOf(asDist(NewLognormalFromMoments(6, 0)))},
		{"uniform inverted", errOf(asDist(NewUniform(36, 12)))},
		{"uniform empty", errOf(asDist(NewUniform(5, 5)))},
		{"uniform nan", errOf(asDist(NewUniform(nan, 12)))},
		{"deterministic neg", errOf(asDist(NewDeterministic(-1)))},
		{"deterministic inf", errOf(asDist(NewDeterministic(inf)))},
		{"gamma shape 0", errOf(asDist(NewGamma(0, 1)))},
		{"gamma scale nan", errOf(asDist(NewGamma(1, nan)))},
		{"erlang k 0", errOf(asDist(NewErlang(0, 1)))},
		{"erlang rate neg", errOf(asDist(NewErlang(2, -1)))},
		{"mixture empty", errOf(asDist(NewMixture()))},
		{"mixture nil dist", errOf(asDist(NewMixture(Component{Weight: 1})))},
		{"mixture weight 0", errOf(asDist(NewMixture(Component{Weight: 0, Dist: okExp})))},
		{"empirical empty", errOf(asDist(NewEmpirical(nil)))},
		{"empirical nan", errOf(asDist(NewEmpirical([]float64{1, nan})))},
		{"empirical neg", errOf(asDist(NewEmpirical([]float64{1, -2})))},
	}
	for _, tc := range cases {
		if !errors.Is(tc.err, ErrInvalidParam) {
			t.Errorf("%s: error = %v, want ErrInvalidParam", tc.name, tc.err)
		}
	}
}

func errOf(_ Distribution, err error) error { return err }

// TestEmpiricalQuantiles pins the type-7 interpolation to hand-computed
// values.
func TestEmpiricalQuantiles(t *testing.T) {
	e, err := NewEmpirical([]float64{4, 1, 3, 2, 5}) // sorted: 1 2 3 4 5
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ p, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.625, 3.5}, {1, 5},
	} {
		if got := e.Quantile(tc.p); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := e.Mean(); math.Abs(got-3) > 1e-12 {
		t.Errorf("Mean = %v, want 3", got)
	}
	single, err := NewEmpirical([]float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if got := single.Quantile(0.5); got != 7 {
		t.Errorf("single-point Quantile = %v", got)
	}
	if got := single.CDF(7); got != 1 {
		t.Errorf("single-point CDF(7) = %v", got)
	}
	if got := single.CDF(6.9); got != 0 {
		t.Errorf("single-point CDF(6.9) = %v", got)
	}
}

// TestMixtureComponentsNormalized checks weight normalization and the
// reported component weights.
func TestMixtureComponentsNormalized(t *testing.T) {
	a, err := NewDeterministic(10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewDeterministic(100)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMixture(Component{Weight: 3, Dist: a}, Component{Weight: 1, Dist: b})
	if err != nil {
		t.Fatal(err)
	}
	comps := m.Components()
	if math.Abs(comps[0].Weight-0.75) > 1e-12 || math.Abs(comps[1].Weight-0.25) > 1e-12 {
		t.Errorf("weights = %v, %v", comps[0].Weight, comps[1].Weight)
	}
	if got, want := m.Mean(), 0.75*10+0.25*100; math.Abs(got-want) > 1e-12 {
		t.Errorf("mean = %v, want %v", got, want)
	}
	// A mixture of point masses has a step CDF; check the plateaus.
	if got := m.CDF(50); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("CDF(50) = %v", got)
	}
}

// TestDescribe checks the reporting format is stable and sorted.
func TestDescribe(t *testing.T) {
	w, err := NewWeibull(1.5, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if got := Describe(w); got != "weibull(scale=1000, shape=1.5)" {
		t.Errorf("Describe = %q", got)
	}
	if !strings.Contains(Describe(w), w.Name()) {
		t.Error("Describe does not contain family name")
	}
}

// TestLognormalFromMomentsRecoversMoments checks the moment-matching
// parameterization analytically (no sampling noise).
func TestLognormalFromMomentsRecoversMoments(t *testing.T) {
	l, err := NewLognormalFromMoments(6, 8)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(l.Mean(), 6) > 1e-12 {
		t.Errorf("mean = %v, want 6", l.Mean())
	}
	if relErr(math.Sqrt(l.Variance()), 8) > 1e-12 {
		t.Errorf("stddev = %v, want 8", math.Sqrt(l.Variance()))
	}
}

func TestSum(t *testing.T) {
	exp, err := NewExponentialFromMean(10)
	if err != nil {
		t.Fatal(err)
	}
	uni, err := NewUniform(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := NewSum(exp, uni)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sum.Mean(), 12.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	if sum.Name() != "sum" {
		t.Errorf("Name = %q", sum.Name())
	}
	params := sum.Params()
	if len(params) != 3 { // exponential mean + uniform lo/hi
		t.Errorf("Params = %v, want 3 entries", params)
	}
	// Seeded sample mean converges to the sum of means, and every draw is
	// at least the uniform's lower bound.
	s := rng.NewStream(11, "sum-test")
	total := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		x := sum.Sample(s)
		if x < 1 {
			t.Fatalf("sample %v below the uniform part's lower bound", x)
		}
		total += x
	}
	if mean := total / n; math.Abs(mean-12) > 0.3 {
		t.Errorf("sample mean = %v, want ~12", mean)
	}
	// Fewer than two parts or nil parts are rejected.
	if _, err := NewSum(exp); err == nil {
		t.Error("one-part sum accepted")
	}
	if _, err := NewSum(exp, nil); err == nil {
		t.Error("nil part accepted")
	}
}
