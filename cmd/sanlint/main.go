// Command sanlint statically checks this module against the determinism
// contract and the model-construction invariants: no nondeterminism sources
// in the deterministic packages, no builder mutations after Compile, no raw
// san.Options field reads before validation, no discarded errors. It prints
// one line per finding and exits 1 when any exist, which is how `make lint`
// gates CI before the tests run.
//
// Usage: sanlint [-json] [packages] — package arguments are accepted for
// familiarity (`sanlint ./...`) but the whole module rooted at the nearest
// go.mod is always analyzed; partial certification is not meaningful.
// With -json the findings are printed as a JSON array (file, line, column,
// rule, message) for CI annotation; the exit code is the same either way.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "print findings as a JSON array instead of text lines")
	flag.Parse()
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sanlint:", err)
		os.Exit(2)
	}
	findings, err := lint.Run(lint.DefaultConfig(root))
	if err != nil {
		fmt.Fprintln(os.Stderr, "sanlint:", err)
		os.Exit(2)
	}
	if *jsonOut {
		doc, err := lint.RenderJSON(findings)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sanlint:", err)
			os.Exit(2)
		}
		fmt.Print(doc)
	} else {
		for _, f := range findings {
			fmt.Println(f.String())
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "sanlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// moduleRoot walks upward from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
