package phfit

import "math"

// This file carries the regularized lower incomplete gamma function the
// chain CDFs are built from (the Erlang CDF is P(k, rate*x)), in both plain
// and log form. The log form exists because the distinct-rate
// hypoexponential CDF multiplies a huge rate-ratio power by a tiny P value:
// the factors overflow and underflow individually while their product is
// well-scaled, so the product is assembled in log space.

const (
	gammaMaxIter = 500
	gammaEps     = 3e-15
)

// regularizedGammaP computes P(a, x) = gamma(a, x)/Gamma(a) by series
// expansion for x < a+1 and via the Lentz continued fraction for the
// complement otherwise (Numerical Recipes 6.2).
func regularizedGammaP(a, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x < a+1 {
		lg, _ := math.Lgamma(a)
		return gammaPSeriesSum(a, x) * math.Exp(-x+a*math.Log(x)-lg)
	}
	return 1 - gammaQContinuedFraction(a, x)
}

// logRegularizedGammaP computes ln P(a, x) without underflow: the series
// branch keeps the well-scaled series sum and the exponent separate, and
// the continued-fraction branch uses log1p of the (small) complement.
func logRegularizedGammaP(a, x float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	if x < a+1 {
		lg, _ := math.Lgamma(a)
		return math.Log(gammaPSeriesSum(a, x)) + (-x + a*math.Log(x) - lg)
	}
	return math.Log1p(-gammaQContinuedFraction(a, x))
}

// gammaPSeriesSum evaluates the power-series factor of P(a, x), convergent
// for x < a+1; the caller applies the exp(-x + a ln x - lnGamma(a)) scale.
func gammaPSeriesSum(a, x float64) float64 {
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < gammaMaxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*gammaEps {
			break
		}
	}
	return sum
}

// gammaQContinuedFraction evaluates Q(a, x) = 1 - P(a, x) by the modified
// Lentz continued fraction, convergent for x >= a+1.
func gammaQContinuedFraction(a, x float64) float64 {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= gammaMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}
