// Package delays exercises the distliteral rule: distribution values must
// come from the dist.New* constructors, never from composite literals.
package delays

import "fixture/dist"

// Bad constructs distributions literally, bypassing validation.
func Bad() []dist.Distribution {
	e := dist.Exponential{RateVal: 2} // want distliteral
	u := &dist.Uniform{Lo: 1, Hi: 3}  // want distliteral
	zs := []dist.Distribution{
		dist.Exponential{}, // want distliteral
	}
	return append(zs, e, u)
}

// Good obtains every distribution from a constructor; argument records like
// dist.Component carry no invariants of their own and stay constructible.
func Good() []dist.Distribution {
	c := dist.Component{Weight: 1, Dist: dist.NewExponential(4)}
	return []dist.Distribution{c.Dist, dist.NewUniform(1, 3)}
}
