// Command abesim regenerates the paper's evaluation: every table and figure
// plus the ablation studies, using the reimplemented SAN simulator and the
// ABE/petascale configurations. The rare_event_dataloss experiment
// demonstrates the multilevel importance-splitting engine: it estimates a
// data-loss probability far below naive Monte Carlo's resolution and reports
// how much narrower the splitting confidence interval is at equal
// simulated-event budget.
//
// The figure4 experiment runs the paper's headline scaling study as one
// sharded multi-configuration sweep (internal/sweep): base and spare-OSS
// variants of every scale factor share a single worker pool with per-point
// cached models and simulators, and the result is bit-identical for any
// parallelism. With -json it emits the sweep's machine-readable report —
// per-point measures with unit-scaled confidence intervals — instead of the
// rendered figure. -json works for every experiment: stdout is exactly one
// valid JSON document (with -all, an object mapping experiment name to
// report), so the output pipes straight into jq or a plotting script.
//
// The paper_full experiment closes the measured-data loop in one run:
// generate the synthetic ABE logs, analyze them (Tables 1-4), calibrate the
// stochastic model from the analysis via internal/calibrate (Table 5 with
// per-parameter provenance), run the Figure 4/5 scaling sweep from the
// *derived* configuration, and round-trip the calibration (regenerate logs
// under the calibrated parameters, re-derive the rates). Its -json document
// extends the sweep report schema with "calibration", "tables", and
// "round_trip" sections and is bit-identical across -parallelism.
//
// Usage:
//
//	abesim -experiment figure4 [-replications 60] [-mission 8760] [-seed 1] [-quick] [-json] [-parallelism N]
//	abesim -experiment paper_full -json
//	abesim -experiment figure4 -quick -cpuprofile cpu.pprof -memprofile mem.pprof
//	abesim -experiment rare_event_dataloss -quick
//	abesim -list
//	abesim -all -quick
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("abesim: ")

	var (
		name         = flag.String("experiment", "", "experiment to run (see -list)")
		list         = flag.Bool("list", false, "list available experiments and exit")
		all          = flag.Bool("all", false, "run every experiment")
		replications = flag.Int("replications", 0, "replications per design point (0 = default)")
		mission      = flag.Float64("mission", 0, "mission time per replication in hours (0 = one year)")
		seed         = flag.Uint64("seed", 0, "random seed (0 = default)")
		parallelism  = flag.Int("parallelism", 0, "simulation worker goroutines (0 = GOMAXPROCS; results are bit-identical across settings)")
		quick        = flag.Bool("quick", false, "fewer replications and sweep points")
		jsonOut      = flag.Bool("json", false, "emit machine-readable JSON instead of rendered text")
		analyze      = flag.Bool("analyze", false, "statically analyze the experiment's model configurations and include the result (text, or an \"analysis\" JSON section)")
		cpuprofile   = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memprofile   = flag.String("memprofile", "", "write a pprof heap profile taken after the run to this file")
	)
	flag.Parse()

	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return
	}

	opts := experiments.Options{
		Replications: *replications,
		MissionHours: *mission,
		Seed:         *seed,
		Parallelism:  *parallelism,
		Quick:        *quick,
	}

	names := []string{*name}
	if *all {
		names = experiments.Names()
	} else if *name == "" {
		flag.Usage()
		os.Exit(2)
	}

	// Profiling brackets the experiment work only (flag parsing and output
	// encoding included, process startup excluded). The profiles are written
	// on success; a failing run exits without them.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("cpu profile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpu profile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				log.Fatalf("cpu profile: %v", err)
			}
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				log.Fatalf("heap profile: %v", err)
			}
			// Collect garbage first so the profile shows live retained
			// memory, not whatever the last GC cycle left behind.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatalf("heap profile: %v", err)
			}
			if err := f.Close(); err != nil {
				log.Fatalf("heap profile: %v", err)
			}
		}()
	}

	if err := run(names, opts, *jsonOut, *analyze); err != nil {
		log.Fatal(err)
	}
}

// run executes the selected experiments. It returns instead of exiting so
// main's profile-writing defers fire on success.
func run(names []string, opts experiments.Options, jsonOut, analyze bool) error {
	// With -json, stdout is exactly one valid JSON document: the experiment's
	// report alone, or — for several experiments — an envelope object mapping
	// experiment name to report.
	envelope := make(map[string]json.RawMessage, len(names))
	for _, n := range names {
		artifact, err := experiments.RunArtifact(n, opts)
		if err != nil {
			return fmt.Errorf("experiment %q: %v", n, err)
		}
		var analysis *experiments.ExperimentAnalysis
		if analyze {
			analysis, err = experiments.AnalyzeExperiment(n, opts)
			if err != nil {
				return fmt.Errorf("experiment %q: %v", n, err)
			}
		}
		if jsonOut {
			doc, err := artifact.JSON()
			if err != nil {
				return fmt.Errorf("experiment %q: encoding JSON: %v", n, err)
			}
			if analysis != nil {
				doc, err = withAnalysis(doc, analysis)
				if err != nil {
					return fmt.Errorf("experiment %q: %v", n, err)
				}
			}
			if len(names) == 1 {
				fmt.Print(doc)
				return nil
			}
			envelope[n] = json.RawMessage(doc)
			continue
		}
		fmt.Printf("### %s\n\n%s\n", n, artifact.Render())
		if analysis != nil {
			fmt.Printf("%s\n", analysis.Render())
		}
	}
	if jsonOut {
		out, err := json.MarshalIndent(envelope, "", "  ")
		if err != nil {
			return fmt.Errorf("encoding JSON envelope: %v", err)
		}
		fmt.Println(string(out))
	}
	return nil
}

// withAnalysis splices an "analysis" section into an experiment's JSON
// report document. Decoding into a key-indexed map and re-encoding keeps
// the output one valid document with sorted keys, so reports stay
// byte-identical for identical inputs.
func withAnalysis(doc string, analysis *experiments.ExperimentAnalysis) (string, error) {
	var report map[string]json.RawMessage
	if err := json.Unmarshal([]byte(doc), &report); err != nil {
		return "", fmt.Errorf("parsing report for analysis section: %w", err)
	}
	raw, err := json.Marshal(analysis)
	if err != nil {
		return "", fmt.Errorf("encoding analysis section: %w", err)
	}
	report["analysis"] = raw
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out) + "\n", nil
}
