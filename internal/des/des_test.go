package des

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleAndRunOrder(t *testing.T) {
	e := NewEngine()
	var order []string
	mustSchedule := func(at float64, name string) {
		t.Helper()
		if _, err := e.Schedule(at, func(float64) { order = append(order, name) }); err != nil {
			t.Fatal(err)
		}
	}
	mustSchedule(5, "c")
	mustSchedule(1, "a")
	mustSchedule(3, "b")
	n := e.Run(10)
	if n != 3 {
		t.Fatalf("Run executed %d events, want 3", n)
	}
	if got := []string{"a", "b", "c"}; !equal(order, got) {
		t.Errorf("order = %v, want %v", order, got)
	}
	if e.Now() != 10 {
		t.Errorf("Now = %v, want 10 (horizon)", e.Now())
	}
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestTieBreakByPriorityThenSeq(t *testing.T) {
	e := NewEngine()
	var order []string
	add := func(pri int, name string) {
		if _, err := e.ScheduleWithPriority(2, pri, func(float64) { order = append(order, name) }); err != nil {
			t.Fatal(err)
		}
	}
	add(0, "low-first")
	add(5, "high")
	add(0, "low-second")
	e.Run(10)
	want := []string{"high", "low-first", "low-second"}
	if !equal(order, want) {
		t.Errorf("order = %v, want %v", order, want)
	}
}

func TestScheduleErrors(t *testing.T) {
	e := NewEngine()
	if _, err := e.Schedule(1, nil); err != ErrNilHandler {
		t.Errorf("nil handler error = %v, want ErrNilHandler", err)
	}
	if _, err := e.Schedule(math.NaN(), func(float64) {}); err == nil {
		t.Error("NaN time accepted")
	}
	e.Schedule(5, func(float64) {})
	e.Run(10)
	if _, err := e.Schedule(3, func(float64) {}); err == nil {
		t.Error("past event accepted")
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev, err := e.Schedule(1, func(float64) { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	e.Cancel(ev)
	// Cancel removes the event from the heap immediately, so Pending is
	// exact — not an upper bound over canceled residents.
	if n := e.Pending(); n != 0 {
		t.Errorf("Pending = %d immediately after Cancel, want 0", n)
	}
	e.Cancel(ev) // double-cancel is a no-op
	e.Cancel(nil)
	if n := e.Run(10); n != 0 {
		t.Errorf("Run executed %d events after cancel, want 0", n)
	}
	if fired {
		t.Error("canceled event fired")
	}
	if !ev.Canceled() {
		t.Error("Canceled() = false after cancel")
	}
}

func TestCancelFromHandler(t *testing.T) {
	e := NewEngine()
	var later *Event
	fired := false
	later, _ = e.Schedule(5, func(float64) { fired = true })
	e.Schedule(1, func(float64) { e.Cancel(later) })
	e.Run(10)
	if fired {
		t.Error("event canceled from another handler still fired")
	}
}

func TestScheduleAfterAndNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []float64
	var chain func(now float64)
	count := 0
	chain = func(now float64) {
		times = append(times, now)
		count++
		if count < 5 {
			if _, err := e.ScheduleAfter(2, chain); err != nil {
				t.Errorf("nested ScheduleAfter: %v", err)
			}
		}
	}
	e.ScheduleAfter(1, chain)
	e.Run(100)
	want := []float64{1, 3, 5, 7, 9}
	if len(times) != len(want) {
		t.Fatalf("times = %v, want %v", times, want)
	}
	for i := range want {
		if math.Abs(times[i]-want[i]) > 1e-12 {
			t.Errorf("times[%d] = %v, want %v", i, times[i], want[i])
		}
	}
}

func TestRunHorizonLeavesFutureEvents(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(1, func(float64) { fired++ })
	e.Schedule(20, func(float64) { fired++ })
	e.Run(10)
	if fired != 1 {
		t.Errorf("fired = %d, want 1 (event beyond horizon must not run)", fired)
	}
	if e.Now() != 10 {
		t.Errorf("Now = %v, want 10", e.Now())
	}
	// Continue past the horizon.
	e.Run(30)
	if fired != 2 {
		t.Errorf("fired = %d after extending horizon, want 2", fired)
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(1, func(float64) { fired++; e.Stop() })
	e.Schedule(2, func(float64) { fired++ })
	e.Run(10)
	if fired != 1 {
		t.Errorf("fired = %d, want 1 (Stop should halt the run)", fired)
	}
}

func TestStepAndCounters(t *testing.T) {
	e := NewEngine()
	e.Schedule(1, func(float64) {})
	e.Schedule(2, func(float64) {})
	if e.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", e.Pending())
	}
	if !e.Step() {
		t.Fatal("Step returned false with pending events")
	}
	if e.Now() != 1 {
		t.Errorf("Now = %v, want 1", e.Now())
	}
	if e.Fired() != 1 {
		t.Errorf("Fired = %d, want 1", e.Fired())
	}
	e.Step()
	if e.Step() {
		t.Error("Step returned true with empty queue")
	}
}

func TestReset(t *testing.T) {
	e := NewEngine()
	e.Schedule(5, func(float64) {})
	e.Run(10)
	e.Reset()
	if e.Now() != 0 || e.Pending() != 0 || e.Fired() != 0 {
		t.Errorf("Reset left state: now=%v pending=%d fired=%d", e.Now(), e.Pending(), e.Fired())
	}
	// Engine is reusable after reset.
	fired := false
	e.Schedule(1, func(float64) { fired = true })
	e.Run(2)
	if !fired {
		t.Error("engine unusable after Reset")
	}
}

func TestRunWithInvalidHorizon(t *testing.T) {
	e := NewEngine()
	e.Schedule(1, func(float64) {})
	if n := e.Run(math.NaN()); n != 0 {
		t.Errorf("Run(NaN) executed %d events", n)
	}
	e.Run(5)
	if n := e.Run(1); n != 0 {
		t.Errorf("Run with horizon before now executed %d events", n)
	}
}

// Property: events always fire in non-decreasing time order regardless of the
// insertion order.
func TestQuickEventOrdering(t *testing.T) {
	f := func(raw []float64) bool {
		e := NewEngine()
		var valid []float64
		for _, r := range raw {
			v := math.Abs(r)
			if math.IsNaN(v) || math.IsInf(v, 0) || v > 1e9 {
				continue
			}
			valid = append(valid, v)
		}
		var fired []float64
		for _, v := range valid {
			v := v
			if _, err := e.Schedule(v, func(now float64) { fired = append(fired, now) }); err != nil {
				return false
			}
		}
		e.Run(math.Inf(1))
		if len(fired) != len(valid) {
			return false
		}
		if !sort.Float64sAreSorted(fired) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.Schedule(float64(j%97), func(float64) {})
		}
		e.Run(1000)
	}
}

func TestResumeAt(t *testing.T) {
	e := NewEngine()
	if _, err := e.Schedule(1, func(float64) {}); err != nil {
		t.Fatal(err)
	}
	if err := e.ResumeAt(5, 42); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 5 || e.Fired() != 42 || e.Pending() != 0 {
		t.Errorf("after ResumeAt: now=%v fired=%d pending=%d", e.Now(), e.Fired(), e.Pending())
	}
	// Events re-scheduled at absolute times relative to the restored clock.
	fired := 0.0
	if _, err := e.Schedule(7, func(now float64) { fired = now }); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Schedule(4, func(float64) {}); err == nil {
		t.Error("scheduling before the restored clock accepted")
	}
	e.Run(10)
	if fired != 7 || e.Fired() != 43 {
		t.Errorf("fired=%v events=%d", fired, e.Fired())
	}
	if err := e.ResumeAt(-1, 0); err == nil {
		t.Error("negative resume time accepted")
	}
	if err := e.ResumeAt(math.NaN(), 0); err == nil {
		t.Error("NaN resume time accepted")
	}
}
