// Package abe assembles the paper's composed dependability model of the ABE
// cluster file system (Figure 1) from the storage, cluster, and SAN
// substrates, defines the reward measures of Section 4.2 (storage
// availability, CFS availability, cluster utility, disk replacement rate),
// and provides the ABE and petascale configurations used throughout the
// evaluation (Table 5, Figures 2-4).
package abe

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/dist"
	"repro/internal/raid"
	"repro/internal/san"
	"repro/internal/stats"
)

// Reward-variable names produced by the composed model.
const (
	RewardStorageAvailability = "storage_availability"
	RewardCFSAvailability     = "cfs_availability"
	RewardDiskReplacements    = "disk_replacements"
	RewardLostJobsCFS         = "lost_jobs_cfs"
	RewardLostJobsTransient   = "lost_jobs_transient"
	RewardOSSPairsDown        = "oss_pairs_down_time_avg"
)

// ErrBadConfig reports an invalid cluster configuration.
var ErrBadConfig = errors.New("abe: invalid configuration")

// ErrMissingReward reports a study that lacks one of the reward variables the
// derived measures are built from — a reward-wiring typo that would otherwise
// surface as silent NaN availabilities.
var ErrMissingReward = errors.New("abe: required reward missing from study")

// OSSConfig parameterizes the metadata/file-server (OSS) fail-over pairs.
type OSSConfig struct {
	// HWMTBFHours is the per-server hardware MTBF. Table 5's "1-2 hardware
	// failures per 720 hours" is read per fail-over pair, i.e. ~0.5-1 per
	// month per server.
	HWMTBFHours float64
	// HWRepairLoHours/HWRepairHiHours bound hardware repair (12-36 h).
	HWRepairLoHours float64
	HWRepairHiHours float64
	// SWMTBFHours is the per-server software-failure MTBF.
	SWMTBFHours float64
	// SWRepairLoHours/SWRepairHiHours bound software repair (2-6 h, fsck).
	SWRepairLoHours float64
	SWRepairHiHours float64
	// PropagationProb is the correlated-failure probability p.
	PropagationProb float64
	// SpareOSS enables the standby-spare OSS design alternative.
	SpareOSS bool
	// SpareActivationHours is the state-transfer time onto the spare.
	SpareActivationHours float64
	// ExponentialRepairs draws the hardware and software repair times from
	// exponentials matching the uniform windows' means instead of the
	// uniforms themselves — the memoryless regime required for lumped OSS
	// pairs (Table 5 reports only rates for these processes).
	ExponentialRepairs bool
}

// Validate checks the OSS parameters.
func (c OSSConfig) Validate() error {
	if !(c.HWMTBFHours > 0) || !(c.SWMTBFHours > 0) {
		return fmt.Errorf("%w: OSS MTBFs %+v", ErrBadConfig, c)
	}
	if !(c.HWRepairLoHours > 0) || c.HWRepairHiHours < c.HWRepairLoHours ||
		!(c.SWRepairLoHours > 0) || c.SWRepairHiHours < c.SWRepairLoHours {
		return fmt.Errorf("%w: OSS repair ranges %+v", ErrBadConfig, c)
	}
	if c.PropagationProb < 0 || c.PropagationProb > 1 {
		return fmt.Errorf("%w: propagation probability %v", ErrBadConfig, c.PropagationProb)
	}
	if c.SpareOSS && !(c.SpareActivationHours > 0) {
		return fmt.Errorf("%w: spare OSS without activation time", ErrBadConfig)
	}
	return nil
}

// InfrastructureConfig parameterizes the shared, scale-independent parts of
// the CFS: the SAN fabric between the OSSes and the DDN units and the
// cluster-wide file-system software. Outages of these components affect the
// whole CFS regardless of how many file servers are deployed (Table 1's
// network / file-system / batch outages).
type InfrastructureConfig struct {
	// FabricMTBFHours is the mean time between outages of the OSS-DDN
	// network fabric and other shared components.
	FabricMTBFHours float64
	// FabricRepairLoHours/FabricRepairHiHours bound the repair time.
	FabricRepairLoHours float64
	FabricRepairHiHours float64
	// ExponentialRepair replaces the uniform fabric repair window with an
	// exponential of the same mean — part of the fully memoryless regime
	// WithExponentialForms selects.
	ExponentialRepair bool
	// ErlangRepairStages, when >= 2, draws the fabric repair from an Erlang
	// with this many exponential stages and the same mean as the configured
	// window — the paper's multi-stage repair shape (diagnose, dispatch, fix)
	// with a realistic low variance, unlike the single exponential. It takes
	// precedence over ExponentialRepair and over the uniform window. Erlang
	// delays are non-memoryless as written but carry an exact phase-type
	// form, so the certificate tier certifies such configurations after
	// san.ExpandPhases instead of refusing them.
	ErlangRepairStages int
}

// Validate checks the infrastructure parameters.
func (c InfrastructureConfig) Validate() error {
	if !(c.FabricMTBFHours > 0) || !(c.FabricRepairLoHours > 0) || c.FabricRepairHiHours < c.FabricRepairLoHours {
		return fmt.Errorf("%w: infrastructure %+v", ErrBadConfig, c)
	}
	if c.ErlangRepairStages < 0 || c.ErlangRepairStages == 1 {
		return fmt.Errorf("%w: ErlangRepairStages must be 0 (off) or >= 2, got %d", ErrBadConfig, c.ErlangRepairStages)
	}
	return nil
}

// WorkloadConfig parameterizes the CLIENT submodel: the compute-node job
// stream and the transient errors of the COTS network between the compute
// nodes and the CFS.
type WorkloadConfig struct {
	// ComputeNodes is the number of compute nodes (1200 for ABE).
	ComputeNodes int
	// JobsPerHour is the job submission rate (12-15 per hour, Table 5).
	JobsPerHour float64
	// TransientEventsPerHour is the rate of transient network-error events
	// at the reference (ABE) scale; it is scaled with the number of
	// OSS-client network paths when the system grows.
	TransientEventsPerHour float64
	// TransientOutageLoHours/TransientOutageHiHours bound the short
	// unavailability each transient event induces.
	TransientOutageLoHours float64
	TransientOutageHiHours float64
	// JobsKilledPerTransient is the expected number of running jobs killed
	// by one transient event (calibrated to Table 3).
	JobsKilledPerTransient float64
	// JobCFSExposure is the fraction of jobs arriving during a CFS outage
	// that actually fail (the batch system holds the rest).
	JobCFSExposure float64
	// ExponentialOutages replaces the uniform transient-outage window with
	// an exponential of the same mean and keeps the on-off source form even
	// under lumping (the impulse-only collapse draws a non-memoryless
	// renewal). With every other distribution already exponential this makes
	// the composed model a CTMC the statespace certificate tier can solve
	// exactly. It is a separate opt-in from WithExponentialForms because the
	// on-off window re-adds event traffic the impulse-only collapse exists
	// to remove.
	ExponentialOutages bool
}

// Validate checks the workload parameters.
func (c WorkloadConfig) Validate() error {
	if c.ComputeNodes < 1 || !(c.JobsPerHour > 0) {
		return fmt.Errorf("%w: workload %+v", ErrBadConfig, c)
	}
	if !(c.TransientEventsPerHour > 0) || !(c.TransientOutageLoHours > 0) ||
		c.TransientOutageHiHours < c.TransientOutageLoHours {
		return fmt.Errorf("%w: transient parameters %+v", ErrBadConfig, c)
	}
	if c.JobsKilledPerTransient < 0 || c.JobCFSExposure < 0 || c.JobCFSExposure > 1 {
		return fmt.Errorf("%w: job failure parameters %+v", ErrBadConfig, c)
	}
	return nil
}

// Config is the full configuration of the composed CFS model.
type Config struct {
	// Name labels the configuration in reports.
	Name string
	// ScratchOSSPairs is the number of fail-over pairs serving /cfs/scratch
	// (8 on ABE, scaled up to 80 for petascale).
	ScratchOSSPairs int
	// MetadataOSSPairs is the number of metadata server pairs (1 on ABE).
	MetadataOSSPairs int
	// OSS holds the file-server failure/repair parameters.
	OSS OSSConfig
	// Storage describes the DDN units, RAID tiers, and disks.
	Storage raid.StorageConfig
	// Infrastructure describes the shared SAN fabric.
	Infrastructure InfrastructureConfig
	// Workload describes the client job stream and transient errors.
	Workload WorkloadConfig
	// Lumped opts Build into the symmetry-aware lumped representation: every
	// replicated family whose distributions are exponential (OSS fail-over
	// pairs with ExponentialRepairs and no spare, RAID controller pairs with
	// exponential repair, RAID tiers with shape-1 disks and exponential
	// replacement) is composed as a counted population instead of being
	// expanded per component, and the client transient source collapses to
	// its impulse-only form. Exact under strong lumpability; families whose
	// distributions are not memoryless (Weibull-aged disks, uniform repair
	// windows, deterministic spare activation) keep their flat expansion.
	Lumped bool
}

// ABE returns the configuration of the ABE cluster as described in
// Section 3 of the paper and calibrated against its log analysis:
// 1200 compute nodes, 8 scratch OSS pairs plus 1 metadata pair, 2 DDN units
// (480 disks, 96 TB), Weibull(0.7) disks with 300,000 h MTBF, and failure/
// repair rates from Table 5.
func ABE() Config {
	return Config{
		Name:             "ABE",
		ScratchOSSPairs:  8,
		MetadataOSSPairs: 1,
		OSS: OSSConfig{
			HWMTBFHours:          1440, // 0.5 failures/month per server => 1/month per pair
			HWRepairLoHours:      12,
			HWRepairHiHours:      36,
			SWMTBFHours:          1440,
			SWRepairLoHours:      2,
			SWRepairHiHours:      6,
			PropagationProb:      0.02,
			SpareOSS:             false,
			SpareActivationHours: 8,
		},
		Storage: raid.ABEStorage(),
		Infrastructure: InfrastructureConfig{
			FabricMTBFHours:     584, // ~15 shared outages per year (Table 1 pace)
			FabricRepairLoHours: 8,
			FabricRepairHiHours: 16,
		},
		Workload: WorkloadConfig{
			ComputeNodes:           1200,
			JobsPerHour:            12.85, // 44085 jobs over the 143-day log window
			TransientEventsPerHour: 0.12,
			TransientOutageLoHours: 0.05, // 3 minutes
			TransientOutageHiHours: 0.20, // 12 minutes
			JobsKilledPerTransient: 3.0,
			JobCFSExposure:         0.15,
		},
	}
}

// Petascale returns the Blue Waters-class configuration the paper scales to:
// roughly ten times the ABE I/O subsystem (80 scratch OSS pairs, 20 DDN
// units, 4800 disks) serving 32,000 compute nodes, with an (8+3) upgrade
// left to the caller (see WithGeometry).
func Petascale() Config {
	cfg := ABE().ScaledBy(10)
	cfg.Name = "Petascale"
	cfg.Workload.ComputeNodes = 32000
	return cfg
}

// MiniExponential returns the smallest fully memoryless configuration: one
// scratch and one metadata OSS pair, a single DDN unit with one (2+1) RAID
// tier, exponential forms everywhere (including the fabric repair and the
// transient-outage window), and lumping enabled. Every family certifies
// under the statespace tier, so the whole composed model is a CTMC small
// enough for exact uniformization — the cross-check point where analytic
// answers are validated against simulation confidence intervals. The
// transient-outage window is widened (mean 1.25 h instead of 7.5 min) to
// keep the uniformization constant small; the model is a solver-validation
// configuration, not a calibrated ABE point.
func MiniExponential() Config {
	cfg := ABE().WithExponentialForms().WithLumping(true)
	cfg.Name = "ABE mini (exponential)"
	cfg.ScratchOSSPairs = 1
	cfg.MetadataOSSPairs = 1
	cfg.Storage.DDNUnits = 1
	cfg.Storage.TiersPerDDN = 1
	cfg.Storage.Geometry = raid.TierGeometry{Data: 2, Parity: 1}
	// Disks fail and are replaced far faster than the calibrated ABE point:
	// concurrent-failure storage outages then show up within a 60-replication
	// year, so the simulated cross-check interval has nonzero width for the
	// analytic answer to land in (a 300000 h MTBF tier never loses two of
	// three disks at once in a simulated year).
	cfg.Storage.Disk.MTBFHours = 1000
	cfg.Storage.Disk.ReplaceHours = 48
	cfg.Workload.ExponentialOutages = true
	cfg.Workload.TransientOutageLoHours = 0.5
	cfg.Workload.TransientOutageHiHours = 2.0
	return cfg
}

// MiniErlang is MiniExponential with the shared-fabric repair drawn from a
// three-stage Erlang of the same mean instead of a single exponential — the
// paper's multi-stage repair shape. The Erlang delay is non-memoryless as
// written, so the certificate tier used to refuse this configuration
// (`non-memoryless`) and fall back to simulation; san.ExpandPhases rewrites
// the repair into three exponential phases exactly, and the configuration is
// now certified after expansion and answered analytically, with the
// expansion evidence recorded in the solver certificate. It is the
// cross-check point where the expanded analytic answer is validated against
// forced-simulation confidence intervals.
func MiniErlang() Config {
	cfg := MiniExponential()
	cfg.Name = "ABE mini (Erlang repair)"
	cfg.Infrastructure.ErlangRepairStages = 3
	return cfg
}

// MiniWeibull is MiniExponential with the disk lifetimes drawn from the
// wear-out Weibull (shape 1.5) of the same MTBF instead of an exponential —
// a delay with no exact finite phase-type form. The certificate tier refuses
// this configuration as built (`non-memoryless`) and exact expansion cannot
// fix it (`non-expandable`); only the certified approximate fitting tier
// (san.FitPhases, opted into via san.Options.PHFitTolerance) answers it
// analytically, on a moment-matched phase-type surrogate with a
// machine-checked CDF distance bound per disk. It is the cross-check point
// where the approximate analytic answer is validated against
// forced-simulation confidence intervals widened by the certified bound.
// Note the Weibull disks defeat lumping, so the point evaluates flat.
func MiniWeibull() Config {
	cfg := MiniExponential()
	cfg.Name = "ABE mini (Weibull disks)"
	cfg.Storage.Disk.ShapeBeta = 1.5
	return cfg
}

// ScaledBy returns a copy of the configuration with the I/O subsystem scaled
// by the given factor: the number of scratch OSS pairs and DDN units grows
// proportionally, compute nodes grow proportionally, and the transient-error
// rate grows with the number of OSS-client network paths. The metadata
// server count and the shared fabric stay fixed, as in the paper's scaling
// study.
func (c Config) ScaledBy(factor float64) Config {
	if factor <= 0 {
		factor = 1
	}
	out := c
	out.Name = fmt.Sprintf("%s x%.2g", c.Name, factor)
	out.ScratchOSSPairs = int(math.Round(float64(c.ScratchOSSPairs) * factor))
	if out.ScratchOSSPairs < 1 {
		out.ScratchOSSPairs = 1
	}
	out.Storage.DDNUnits = int(math.Round(float64(c.Storage.DDNUnits) * factor))
	if out.Storage.DDNUnits < 1 {
		out.Storage.DDNUnits = 1
	}
	out.Workload.ComputeNodes = int(math.Round(float64(c.Workload.ComputeNodes) * factor))
	if out.Workload.ComputeNodes < 1 {
		out.Workload.ComputeNodes = 1
	}
	out.Workload.TransientEventsPerHour = c.Workload.TransientEventsPerHour * factor
	return out
}

// WithSpareOSS returns a copy of the configuration with the standby-spare
// OSS design alternative enabled or disabled.
func (c Config) WithSpareOSS(enabled bool) Config {
	out := c
	out.OSS.SpareOSS = enabled
	return out
}

// WithGeometry returns a copy of the configuration using the given RAID
// geometry (e.g. 8+3 for Blue Waters).
func (c Config) WithGeometry(g raid.TierGeometry) Config {
	out := c
	out.Storage.Geometry = g
	return out
}

// WithLumping returns a copy of the configuration with the lumped
// representation enabled or disabled. Lumping changes only how the model is
// represented, never which distributions it draws from: families whose
// delays are not exponential keep their flat expansion.
func (c Config) WithLumping(enabled bool) Config {
	out := c
	out.Lumped = enabled
	return out
}

// WithExponentialForms returns a copy of the configuration with every
// repair/lifetime distribution replaced by the exponential of the same mean:
// shape-1 disks with exponential replacement, exponential OSS and controller
// repairs. This is the fully memoryless variant of the model — the regime
// Table 5's rate parameters describe directly, where the closed-form
// exponential availability baselines are exact and every replicated family
// admits lumping.
func (c Config) WithExponentialForms() Config {
	out := c
	out.OSS.ExponentialRepairs = true
	out.Storage.Disk.ShapeBeta = 1
	out.Storage.Disk.ExponentialReplace = true
	out.Storage.Controller.ExponentialRepair = true
	out.Infrastructure.ExponentialRepair = true
	return out
}

// WithDisk returns a copy of the configuration with the given disk failure
// parameters (Weibull shape, MTBF via AFR, replacement time) — the tuple the
// Figure 2/3 series are labeled with.
func (c Config) WithDisk(shape, afr, replaceHours float64) (Config, error) {
	mtbf, err := dist.AFRToMTBFHours(afr)
	if err != nil {
		return Config{}, err
	}
	out := c
	out.Storage.Disk.ShapeBeta = shape
	out.Storage.Disk.MTBFHours = mtbf
	out.Storage.Disk.ReplaceHours = replaceHours
	return out, nil
}

// Validate checks the full configuration.
func (c Config) Validate() error {
	if c.ScratchOSSPairs < 1 || c.MetadataOSSPairs < 1 {
		return fmt.Errorf("%w: OSS pair counts %d/%d", ErrBadConfig, c.ScratchOSSPairs, c.MetadataOSSPairs)
	}
	if err := c.OSS.Validate(); err != nil {
		return err
	}
	if err := c.Storage.Validate(); err != nil {
		return err
	}
	if err := c.Infrastructure.Validate(); err != nil {
		return err
	}
	return c.Workload.Validate()
}

// TotalOSSPairs returns the number of modeled OSS fail-over pairs.
func (c Config) TotalOSSPairs() int { return c.ScratchOSSPairs + c.MetadataOSSPairs }

// ---------------------------------------------------------------------------
// Model construction
// ---------------------------------------------------------------------------

// ModelPlaces exposes the shared state of the composed model for rewards and
// tests.
type ModelPlaces struct {
	// Storage is the DDN/RAID submodel state.
	Storage *raid.StoragePlaces
	// OSSPairsOut counts OSS fail-over pairs currently causing an outage.
	OSSPairsOut *san.Place
	// SharedOut counts shared-infrastructure components currently failed.
	SharedOut *san.Place
	// Transient is the client-side transient error source.
	Transient *cluster.TransientPlaces
	// Config echoes the configuration the model was built from.
	Config Config
}

// CFSOperational reports whether the cluster file system can serve clients
// in marking m: every OSS pair, the shared fabric, and the storage subsystem
// must be operational (the paper's CFS availability definition).
func (mp *ModelPlaces) CFSOperational(m san.MarkingReader) bool {
	return m.Tokens(mp.OSSPairsOut) == 0 &&
		m.Tokens(mp.SharedOut) == 0 &&
		mp.Storage.Operational(m)
}

// Build adds the full composed CFS model for cfg to m and returns its shared
// places. The composition mirrors Figure 1: CLIENT joined with CFS_UNIT,
// which is itself the join of OSS, OSS_SAN_NW, SAN, and the replicated
// DDN_UNITS.
func Build(m *san.Model, cfg Config) (*ModelPlaces, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	mp := &ModelPlaces{Config: cfg}
	var err error
	mp.OSSPairsOut, err = m.AddPlaceErr("cfs/oss_pairs_out", 0)
	if err != nil {
		return nil, err
	}
	mp.SharedOut, err = m.AddPlaceErr("cfs/shared_out", 0)
	if err != nil {
		return nil, err
	}

	pairCfg, err := cfg.pairConfig()
	if err != nil {
		return nil, err
	}

	// OSS: metadata pairs and scratch file-server pairs. With lumping on and
	// a fully exponential pair (ExponentialRepairs, no spare), each group is
	// one counted population; otherwise every pair expands flat.
	buildPairs := func(prefix string, n int) error {
		fam := pairCfg.Lumpability()
		fam.Family = prefix
		fam.Count = n
		fam.Lumped = cfg.Lumped && fam.Lumpable
		m.DeclareFamily(fam)
		if cfg.Lumped && pairCfg.Lumpable() {
			_, err := cluster.BuildFailoverPairsLumped(m, prefix, n, pairCfg, mp.OSSPairsOut)
			return err
		}
		return san.Replicate(m, prefix, n, func(m *san.Model, pairPrefix string, _ int) error {
			_, err := cluster.BuildFailoverPair(m, pairPrefix, pairCfg, mp.OSSPairsOut)
			return err
		})
	}
	if err := buildPairs("cfs/oss/metadata", cfg.MetadataOSSPairs); err != nil {
		return nil, err
	}
	if err := buildPairs("cfs/oss/scratch", cfg.ScratchOSSPairs); err != nil {
		return nil, err
	}

	// OSS_SAN_NW / SAN: shared fabric between the OSSes and the DDN units.
	var fabricRepair dist.Distribution
	if stages := cfg.Infrastructure.ErlangRepairStages; stages >= 2 {
		fabricRepair, err = cluster.ErlangRepair(stages,
			cfg.Infrastructure.FabricRepairLoHours, cfg.Infrastructure.FabricRepairHiHours)
	} else if cfg.Infrastructure.ExponentialRepair {
		fabricRepair, err = dist.NewExponentialFromMean(
			(cfg.Infrastructure.FabricRepairLoHours + cfg.Infrastructure.FabricRepairHiHours) / 2)
	} else {
		fabricRepair, err = dist.NewUniform(cfg.Infrastructure.FabricRepairLoHours, cfg.Infrastructure.FabricRepairHiHours)
	}
	if err != nil {
		return nil, err
	}
	err = cluster.BuildRepairable(m, "cfs/oss_san_nw", cluster.RepairableConfig{
		MTBFHours: cfg.Infrastructure.FabricMTBFHours,
		Repair:    fabricRepair,
	}, mp.SharedOut)
	if err != nil {
		return nil, err
	}

	// DDN_UNITS: controllers and RAID6 tiers of disks. Config.Lumped opts
	// the storage families into their lumped forms where exact.
	mp.Storage, err = raid.BuildStorage(m, "cfs/ddn_units", cfg.storageConfig())
	if err != nil {
		return nil, err
	}

	// CLIENT: transient errors of the compute-node <-> CFS network. Nothing
	// reads the transient window place (transient errors kill jobs via
	// impulses but do not enter the CFS availability predicate), so the
	// lumped form collapses the on/off source to one impulse-carrying
	// renewal activity with the identical inter-event law.
	transientCfg := cluster.TransientConfig{
		EventsPerHour:      cfg.Workload.TransientEventsPerHour,
		OutageLoHours:      cfg.Workload.TransientOutageLoHours,
		OutageHiHours:      cfg.Workload.TransientOutageHiHours,
		ExponentialOutages: cfg.Workload.ExponentialOutages,
	}
	m.DeclareFamily(transientVerdict(cfg))
	if cfg.Lumped && !cfg.Workload.ExponentialOutages {
		mp.Transient, err = cluster.BuildTransientImpulseSource(m, "client/network", transientCfg)
	} else {
		mp.Transient, err = cluster.BuildTransientSource(m, "client/network", transientCfg)
	}
	if err != nil {
		return nil, err
	}
	return mp, nil
}

// transientVerdict is the declared verdict of the client transient source:
// not a replica population, but its impulse-only collapse (enabled whenever
// Config.Lumped is set) is exact for the same reason lumping is — no reward
// or enabling condition reads the on/off window place, so replacing the
// two-activity on/off source with one impulse-carrying renewal activity
// preserves every measure. Under ExponentialOutages the on-off form is kept
// even when lumping (the collapse's renewal interval is a non-memoryless
// sum, which would forfeit the solver certificate).
func transientVerdict(cfg Config) san.LumpabilityVerdict {
	return san.LumpabilityVerdict{
		Family:   "client/network",
		Count:    1,
		Lumped:   cfg.Lumped && !cfg.Workload.ExponentialOutages,
		Lumpable: true,
	}
}

// pairConfig materializes the OSS fail-over-pair configuration, choosing
// uniform or exponential repair distributions per OSSConfig.
func (c Config) pairConfig() (cluster.PairConfig, error) {
	var hwRepair, swRepair dist.Distribution
	var err error
	if c.OSS.ExponentialRepairs {
		hwRepair, err = dist.NewExponentialFromMean(c.OSS.HWRepairLoHours + (c.OSS.HWRepairHiHours-c.OSS.HWRepairLoHours)/2)
		if err != nil {
			return cluster.PairConfig{}, err
		}
		swRepair, err = dist.NewExponentialFromMean(c.OSS.SWRepairLoHours + (c.OSS.SWRepairHiHours-c.OSS.SWRepairLoHours)/2)
		if err != nil {
			return cluster.PairConfig{}, err
		}
	} else {
		hwRepair, err = dist.NewUniform(c.OSS.HWRepairLoHours, c.OSS.HWRepairHiHours)
		if err != nil {
			return cluster.PairConfig{}, err
		}
		swRepair, err = dist.NewUniform(c.OSS.SWRepairLoHours, c.OSS.SWRepairHiHours)
		if err != nil {
			return cluster.PairConfig{}, err
		}
	}
	return cluster.PairConfig{
		HWMTBFHours:          c.OSS.HWMTBFHours,
		HWRepair:             hwRepair,
		SWMTBFHours:          c.OSS.SWMTBFHours,
		SWRepair:             swRepair,
		PropagationProb:      c.OSS.PropagationProb,
		Spare:                c.OSS.SpareOSS,
		SpareActivationHours: c.OSS.SpareActivationHours,
	}, nil
}

// LumpsOSSPairs reports whether Build will compose the OSS fail-over pairs
// in lumped form for this configuration. It derives the answer from the
// same cluster.PairConfig.Lumpable check Build itself applies, so the
// predicate cannot drift from the build path.
func (c Config) LumpsOSSPairs() bool {
	if !c.Lumped {
		return false
	}
	pc, err := c.pairConfig()
	return err == nil && pc.Lumpable()
}

// LumpabilityVerdicts returns the derived lumpability verdicts of the four
// replicated (or collapsible) families of the composed model, in a fixed
// order: OSS fail-over pairs, RAID controller pairs, RAID tiers, and the
// client transient source. Each verdict carries the reasons lumping fails
// when it does; the boolean predicates (LumpsOSSPairs and the raid Lumps*
// methods) are projections of the same derivations, so the two views cannot
// drift apart.
func (c Config) LumpabilityVerdicts() []san.LumpabilityVerdict {
	oss := san.LumpabilityVerdict{Family: "oss_pairs", Count: c.TotalOSSPairs()}
	if pc, err := c.pairConfig(); err != nil {
		oss.Reasons = []string{san.ReasonNonExponential + ": pair configuration invalid: " + err.Error()}
	} else {
		v := pc.Lumpability()
		oss.Lumpable = v.Lumpable
		oss.Reasons = v.Reasons
	}
	oss.Lumped = c.Lumped && oss.Lumpable
	s := c.storageConfig()
	return []san.LumpabilityVerdict{oss, s.ControllerLumpability(), s.TierLumpability(), transientVerdict(c)}
}

// LumpsAnything reports whether Build composes any part of the model in
// lumped form — any of the storage families, the OSS pairs, or the
// impulse-only transient source (which lumps whenever the model-level
// opt-in is set). It is the condition under which the built model differs
// from FlatConfig's expansion.
func (c Config) LumpsAnything() bool {
	s := c.storageConfig()
	return c.Lumped || s.LumpsControllers() || s.LumpsTiers()
}

// FlatConfig returns the configuration with every lumping opt-in cleared —
// the exact flat expansion ModelStats compares against. Distributions are
// untouched.
func (c Config) FlatConfig() Config {
	out := c
	out.Lumped = false
	out.Storage.Lumped = false
	return out
}

// storageConfig returns the storage configuration Build hands to
// raid.BuildStorage, with the model-level lumping opt-in propagated.
func (c Config) storageConfig() raid.StorageConfig {
	out := c.Storage
	out.Lumped = out.Lumped || c.Lumped
	return out
}

// Rewards returns the reward variables estimated on the composed model: the
// two availabilities, the disk replacement count, the expected job losses
// (used to derive the cluster utility CU), and the time-averaged number of
// OSS pairs down.
func (mp *ModelPlaces) Rewards() []san.RewardVariable {
	cfg := mp.Config
	lostPerHourWhenDown := cfg.Workload.JobsPerHour * cfg.Workload.JobCFSExposure
	rewards := []san.RewardVariable{
		mp.Storage.AvailabilityReward(RewardStorageAvailability),
		san.UpFraction(RewardCFSAvailability, mp.CFSOperational),
		mp.Storage.ReplacementCountReward(RewardDiskReplacements),
		{
			Name: RewardLostJobsCFS,
			Mode: san.Accumulated,
			Rate: func(m san.MarkingReader) float64 {
				if mp.CFSOperational(m) {
					return 0
				}
				return lostPerHourWhenDown
			},
		},
		{
			Name: RewardLostJobsTransient,
			Mode: san.Accumulated,
			Impulses: map[string]san.ImpulseFunc{
				mp.Transient.EventActivity: func(san.MarkingReader) float64 {
					return cfg.Workload.JobsKilledPerTransient
				},
			},
		},
		san.TokenTimeAverage(RewardOSSPairsDown, mp.OSSPairsOut),
	}
	return rewards
}

// CompositionTree returns the replicate/join composition tree of the model
// (the paper's Figure 1) for the given configuration. Replicate nodes that
// Build composes in lumped (counted) form are annotated "[lumped]"; the
// rest expand flat.
func CompositionTree(cfg Config) *san.CompositionNode {
	lumpMark := func(lumped bool) string {
		if lumped {
			return "[lumped]"
		}
		return ""
	}
	storage := cfg.storageConfig()
	return san.NewJoinNode("CLUSTER",
		san.NewAtomicNode("CLIENT"),
		san.NewJoinNode("CFS_UNIT",
			san.NewReplicateNode("OSS", cfg.TotalOSSPairs(), san.NewAtomicNode("OSS_PAIR")).
				Annotate(lumpMark(cfg.LumpsOSSPairs())),
			san.NewAtomicNode("OSS_SAN_NW"),
			san.NewAtomicNode("SAN"),
			san.NewReplicateNode("DDN_UNITS", cfg.Storage.DDNUnits,
				san.NewJoinNode("DDN",
					san.NewAtomicNode("RAID_CONTROLLER").
						Annotate(lumpMark(storage.LumpsControllers())),
					san.NewReplicateNode("RAID6_TIERS", cfg.Storage.TiersPerDDN, san.NewAtomicNode("RAID6_TIER")).
						Annotate(lumpMark(storage.LumpsTiers())),
				),
			),
		),
	)
}

// ModelStats is the model_stats view of a configuration: the size of the
// model Build composes for it, next to the size of its flat expansion. For
// a non-lumped configuration the two coincide.
type ModelStats struct {
	// Places and Activities are the size of the model as built for the
	// configuration (lumped where the configuration opts in and the
	// distributions allow).
	Places     int
	Activities int
	// FlatPlaces and FlatActivities are the size of the flat expansion of
	// the same configuration.
	FlatPlaces     int
	FlatActivities int
	// Lumped reports whether any family was composed in lumped form.
	Lumped bool
}

// ModelStats builds the configuration's model (and, when lumping changed
// anything, its flat expansion via FlatConfig) and returns the size
// comparison.
func (c Config) ModelStats() (ModelStats, error) {
	build := func(cfg Config) (san.ModelStats, error) {
		model := san.NewModel(cfg.Name)
		if _, err := Build(model, cfg); err != nil {
			return san.ModelStats{}, err
		}
		return model.Stats(), nil
	}
	built, err := build(c)
	if err != nil {
		return ModelStats{}, err
	}
	out := ModelStats{
		Places: built.Places, Activities: built.Activities,
		FlatPlaces: built.Places, FlatActivities: built.Activities,
		Lumped: c.LumpsAnything(),
	}
	if out.Lumped {
		flat, err := build(c.FlatConfig())
		if err != nil {
			return ModelStats{}, err
		}
		out.FlatPlaces = flat.Places
		out.FlatActivities = flat.Activities
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

// Measures are the derived measures of Section 4.2 for one configuration.
type Measures struct {
	// Config echoes the evaluated configuration.
	Config Config
	// StorageAvailability is the fraction of time all DDN units and tiers
	// are operational.
	StorageAvailability float64
	// CFSAvailability is the fraction of time the whole CFS can serve
	// clients.
	CFSAvailability float64
	// ClusterUtility is CU = 1 - failedJobs/totalJobs.
	ClusterUtility float64
	// DiskReplacementsPerWeek is the expected number of disks replaced per
	// week to sustain availability.
	DiskReplacementsPerWeek float64
	// LostJobsPerYear splits the expected annual job losses by cause.
	LostJobsTransientPerYear float64
	LostJobsCFSPerYear       float64
	// Intervals holds the confidence intervals of the reward means, in the
	// same units as the headline fields above: the disk-replacement interval
	// is per week and the lost-job intervals are per year, matching
	// DiskReplacementsPerWeek and LostJobs*PerYear; the availability
	// intervals are dimensionless fractions.
	Intervals map[string]stats.Interval
	// MissionHours is the mission time each replication covered.
	MissionHours float64
	// Replications is the number of replications used.
	Replications int
}

// Evaluate builds the composed model for cfg, runs a replicated terminating
// simulation, and derives the paper's measures.
func Evaluate(cfg Config, opts san.Options) (Measures, error) {
	model := san.NewModel(cfg.Name)
	mp, err := Build(model, cfg)
	if err != nil {
		return Measures{}, err
	}
	study, err := san.RunReplications(model, mp.Rewards(), opts)
	if err != nil {
		return Measures{}, err
	}
	return MeasuresFromStudy(cfg, study)
}

// MeasuresFromStudy derives the paper's measures from a completed study of
// the composed model for cfg. Evaluate uses it after running the replications
// itself; sweep engines that schedule the replications of many configurations
// over one shared worker pool reduce each configuration's results into a
// san.StudyResult and derive the measures here.
func MeasuresFromStudy(cfg Config, study *san.StudyResult) (Measures, error) {
	mission := study.Options.Mission
	if !(mission > 0) || math.IsInf(mission, 0) {
		// A hand-assembled study that skipped san.Options.WithDefaults would
		// otherwise turn the per-week/per-year unit scales into Inf/NaN.
		return Measures{}, fmt.Errorf("abe: study mission %v must be a positive finite duration", mission)
	}
	totalJobs := cfg.Workload.JobsPerHour * mission
	if !(totalJobs > 0) {
		// Guaranteed by Config.Validate for Evaluate/sweep callers; a
		// hand-assembled study with an unvalidated config would otherwise
		// publish ClusterUtility = 1 - 0/0 = NaN (the clamp passes NaN
		// through).
		return Measures{}, fmt.Errorf("%w: job rate %v over mission %v h yields no jobs",
			ErrBadConfig, cfg.Workload.JobsPerHour, mission)
	}
	// Require every reward the measures are built from: study.Mean returns
	// NaN for an unknown name, so a reward-wiring typo would otherwise yield
	// silent NaN availabilities.
	for _, name := range []string{
		RewardStorageAvailability, RewardCFSAvailability, RewardDiskReplacements,
		RewardLostJobsCFS, RewardLostJobsTransient,
	} {
		if _, ok := study.Summaries[name]; !ok {
			return Measures{}, fmt.Errorf("%w: %q", ErrMissingReward, name)
		}
	}
	lostTransient := study.Mean(RewardLostJobsTransient)
	lostCFS := study.Mean(RewardLostJobsCFS)
	// CU = 1 - failedJobs/totalJobs is an expectation ratio estimated from
	// finite replications, so clamp it to its mathematical range: sampling
	// noise can push the raw ratio below 0 (catastrophic short missions) or
	// above 1 (impulse accounting quirks at tiny job counts).
	cu := 1 - (lostTransient+lostCFS)/totalJobs
	cu = math.Min(1, math.Max(0, cu))
	// The same mission-total -> per-week/per-year factors rescale both the
	// headline fields and (below) their confidence intervals, keeping the
	// interval center bit-identical to the headline value.
	weekScale := dist.HoursPerWeek / mission
	yearScale := dist.HoursPerYear / mission
	m := Measures{
		Config:                   cfg,
		StorageAvailability:      study.Mean(RewardStorageAvailability),
		CFSAvailability:          study.Mean(RewardCFSAvailability),
		ClusterUtility:           cu,
		DiskReplacementsPerWeek:  study.Mean(RewardDiskReplacements) * weekScale,
		LostJobsTransientPerYear: lostTransient * yearScale,
		LostJobsCFSPerYear:       lostCFS * yearScale,
		Intervals:                make(map[string]stats.Interval, len(study.Summaries)),
		MissionHours:             mission,
		Replications:             study.Options.Replications,
	}
	// The headline rate measures are rescaled from mission totals to
	// per-week/per-year units; their confidence intervals must be scaled by
	// the same factors or the reported uncertainty is in the wrong units.
	unitScale := map[string]float64{
		RewardDiskReplacements:  weekScale,
		RewardLostJobsCFS:       yearScale,
		RewardLostJobsTransient: yearScale,
	}
	for name := range study.Summaries {
		ci, err := study.Interval(name)
		if err != nil {
			return Measures{}, fmt.Errorf("abe: interval for %q: %w", name, err)
		}
		if f, ok := unitScale[name]; ok {
			ci.Mean *= f
			ci.HalfWidth *= f
		}
		m.Intervals[name] = ci
	}
	return m, nil
}

// String renders the headline measures.
func (m Measures) String() string {
	return fmt.Sprintf("%s: storage=%.5f cfs=%.4f cu=%.4f disks/week=%.2f",
		m.Config.Name, m.StorageAvailability, m.CFSAvailability, m.ClusterUtility, m.DiskReplacementsPerWeek)
}
