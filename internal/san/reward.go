package san

import (
	"errors"
	"fmt"
)

// RewardMode selects how a reward variable is accumulated over a terminating
// simulation of length T (the mission time).
type RewardMode int

// Supported reward accumulation modes.
const (
	// TimeAveraged integrates a rate reward over [0, T] and divides by T —
	// the interval-of-time averaged reward used for availability measures.
	TimeAveraged RewardMode = iota + 1
	// Accumulated integrates a rate reward (and sums impulse rewards) over
	// [0, T] without normalizing — used for counts such as disks replaced.
	Accumulated
	// InstantAtEnd evaluates a rate reward in the final marking at time T.
	InstantAtEnd
)

// String implements fmt.Stringer.
func (m RewardMode) String() string {
	switch m {
	case TimeAveraged:
		return "time-averaged"
	case Accumulated:
		return "accumulated"
	case InstantAtEnd:
		return "instant-at-end"
	default:
		return fmt.Sprintf("RewardMode(%d)", int(m))
	}
}

// RateFunc maps a marking to a reward rate.
type RateFunc func(m MarkingReader) float64

// ImpulseFunc maps the marking at an activity completion to an impulse
// reward contribution.
type ImpulseFunc func(m MarkingReader) float64

// RewardVariable defines one measure estimated by the simulator.
type RewardVariable struct {
	// Name identifies the measure in results (e.g. "cfs_availability").
	Name string
	// Mode selects the accumulation semantics.
	Mode RewardMode
	// Rate is the rate reward (may be nil for pure impulse rewards).
	Rate RateFunc
	// Impulses maps activity names to impulse rewards earned each time that
	// activity completes.
	Impulses map[string]ImpulseFunc
}

// ErrBadReward reports an ill-formed reward variable.
var ErrBadReward = errors.New("san: invalid reward variable")

// validate checks the reward variable against the model it will be evaluated
// on.
func (rv RewardVariable) validate(m *Model) error {
	if rv.Name == "" {
		return fmt.Errorf("%w: empty name", ErrBadReward)
	}
	switch rv.Mode {
	case TimeAveraged, Accumulated, InstantAtEnd:
	default:
		return fmt.Errorf("%w: %q has unknown mode %v", ErrBadReward, rv.Name, rv.Mode)
	}
	if rv.Rate == nil && len(rv.Impulses) == 0 {
		return fmt.Errorf("%w: %q defines neither rate nor impulse rewards", ErrBadReward, rv.Name)
	}
	if rv.Mode == InstantAtEnd && len(rv.Impulses) > 0 {
		return fmt.Errorf("%w: %q mixes impulse rewards with instant-of-time mode", ErrBadReward, rv.Name)
	}
	// Sorted names so a reward referencing several unknown activities fails
	// with the same message on every run.
	for _, actName := range sortedKeys(rv.Impulses) {
		if m.Activity(actName) == nil {
			return fmt.Errorf("%w: %q references unknown activity %q", ErrBadReward, rv.Name, actName)
		}
	}
	return nil
}

// UpFraction is a convenience constructor for the most common reward in this
// repository: the time-averaged fraction of time a predicate over the
// marking holds (an availability).
func UpFraction(name string, predicate Predicate) RewardVariable {
	return RewardVariable{
		Name: name,
		Mode: TimeAveraged,
		Rate: func(m MarkingReader) float64 {
			if predicate(m) {
				return 1
			}
			return 0
		},
	}
}

// CompletionCount is a convenience constructor counting completions of a set
// of activities over the mission (e.g. disks replaced).
func CompletionCount(name string, activityNames ...string) RewardVariable {
	impulses := make(map[string]ImpulseFunc, len(activityNames))
	for _, an := range activityNames {
		impulses[an] = func(MarkingReader) float64 { return 1 }
	}
	return RewardVariable{Name: name, Mode: Accumulated, Impulses: impulses}
}

// TokenTimeAverage is a convenience constructor for the time-averaged token
// count of a place (e.g. mean number of failed servers).
func TokenTimeAverage(name string, p *Place) RewardVariable {
	return RewardVariable{
		Name: name,
		Mode: TimeAveraged,
		Rate: func(m MarkingReader) float64 { return float64(m.Tokens(p)) },
	}
}
