// Package sweep runs multi-configuration simulation studies — the paper's
// Figure 4/5 scaling sweeps and the design-comparison tables — behind one
// shared worker pool.
//
// Evaluating a sweep point by point (a fresh abe.Evaluate per configuration)
// pays three avoidable costs: a worker pool is spun up and drained per
// configuration (so every configuration's slowest replication idles the whole
// pool), the composed model is rebuilt per evaluation, and a Simulator —
// whose dependency and impulse indexes are O(model) to derive — used to be
// rebuilt per replication. The sweep engine instead schedules the flat list
// of (configuration, replication) jobs over a single pool: models are built
// once per configuration and shared read-only, each worker keeps one
// Simulator per configuration and Resets it onto every replication's private
// stream, and slow large-scale configurations overlap with fast small ones.
//
// Determinism contract: seeds are derived per (configuration index,
// replication index) and outcomes are reduced in (configuration, replication)
// order, so a sweep is bit-identical across Parallelism settings, and every
// point is bit-identical to a standalone abe.Evaluate with the point's
// derived seed (see PointSeeds) — the same contract san.RunReplications
// provides for single studies.
package sweep

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/abe"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/san"
	"repro/internal/statespace"
	"repro/internal/stats"
)

// ErrNoPoints is returned by Run when the sweep is empty.
var ErrNoPoints = errors.New("sweep: no points to evaluate")

// Point is one configuration of a sweep.
type Point struct {
	// Label names the point in results and reports; empty means Config.Name.
	Label string
	// Config is the composed-model configuration evaluated at this point.
	Config abe.Config
	// Seed, when nonzero, pins the point's study seed explicitly — the
	// common-random-numbers technique: giving every design alternative the
	// same seed makes their comparison sharper than independent draws. Zero
	// (the default) derives an independent seed from the sweep seed and the
	// point index (see PointSeeds).
	Seed uint64
	// ForceSimulation opts the point out of the analytic solver tier even
	// when its model certifies: the point simulates, and the solver section
	// records the override. Cross-check points use it to simulate the exact
	// configuration the solver answers analytically, so the two tiers can be
	// compared on the same model.
	ForceSimulation bool
}

// label returns the effective label of the point.
func (p Point) label() string {
	if p.Label != "" {
		return p.Label
	}
	return p.Config.Name
}

// Solver records how a sweep point was answered: by the certified
// uniformization solver (exact, zero variance), by the same solver on a
// certified approximate phase-type surrogate (MethodUniformizationApprox,
// with the per-activity fit bounds in the certificate's Approximations), or
// by simulation — with the structural certificate or the structured refusal
// reasons as evidence.
type Solver struct {
	// Method is MethodUniformization, MethodUniformizationApprox, or
	// MethodSimulation.
	Method string
	// Reasons explains a simulation choice: the certificate's structured
	// refusals, a solver error, or the point's ForceSimulation override.
	// Empty when the solver answered analytically.
	Reasons []string
	// Certificate is the structural certificate when certification ran (it
	// is skipped under ForceSimulation).
	Certificate *san.Certificate
	// Cache is CacheMiss when this point's solver outcome was computed during
	// the sweep and CacheHit when it was shared from an earlier point (or a
	// warm SolveCache) with the same content fingerprint, mission, solver
	// tier, and fit tolerance. Empty under ForceSimulation, where no solver
	// work is cacheable. Labels are assigned in point order, never by
	// execution timing, and a hit is byte-identical to a recompute.
	Cache string
}

// Solver methods.
const (
	MethodUniformization = "uniformization"
	// MethodUniformizationApprox marks an analytic answer computed on a
	// certified approximate phase-type surrogate of the model: exact for the
	// surrogate (zero-width intervals), within the per-activity CDF bounds
	// recorded in Certificate.Approximations of the true model. Never
	// reported as plain uniformization.
	MethodUniformizationApprox = "uniformization-approx"
	MethodSimulation           = "simulation"
)

// PointResult is the outcome of one sweep point.
type PointResult struct {
	// Label is the effective point label.
	Label string
	// Seed is the study seed the point was evaluated with; a standalone
	// abe.Evaluate with this seed (and the sweep's options) reproduces
	// Measures bit-identically.
	Seed uint64
	// Measures are the derived measures of the point's configuration.
	Measures abe.Measures
	// ModelStats is the model_stats view of the point: the size of the
	// model as evaluated (lumped where the configuration opts in) next to
	// its flat expansion.
	ModelStats abe.ModelStats
	// Solver records whether the point was answered analytically or by
	// simulation, and why.
	Solver Solver
}

// Result is the outcome of a sweep.
type Result struct {
	// Points holds one result per input point, in input order.
	Points []PointResult
	// Options echoes the effective sweep-level study options.
	Options san.Options
	// TotalEvents is the number of activity completions across every
	// replication of every point.
	TotalEvents uint64
}

// PointSeeds returns the n per-point study seeds Run derives from the sweep
// seed, in point order. Tests and callers use it to reproduce a single sweep
// point with a standalone abe.Evaluate.
func PointSeeds(seed uint64, n int) []uint64 {
	master := rng.NewStream(seed, "sweep-master")
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = master.Uint64()
	}
	return seeds
}

// pointPlan is the per-point schedule plus the lazily built shared model.
type pointPlan struct {
	opts     san.Options // effective study options (Seed = the point's seed)
	repSeeds []uint64

	// The composed model is built and compiled at most once, by whichever
	// worker first draws a job for the point, and is then shared read-only;
	// each worker still owns its private Simulator, which is cheap to derive
	// from the compiled model.
	buildOnce sync.Once
	compiled  *san.CompiledModel
	rewards   []san.RewardVariable
	buildErr  error
}

// build composes and compiles the model for cfg once.
func (pp *pointPlan) build(cfg abe.Config) {
	pp.buildOnce.Do(func() {
		model := san.NewModel(cfg.Name)
		mp, err := abe.Build(model, cfg)
		if err != nil {
			pp.buildErr = err
			return
		}
		rewards := mp.Rewards()
		cm, err := san.Compile(model, rewards)
		if err != nil {
			pp.buildErr = err
			return
		}
		pp.compiled = cm
		pp.rewards = rewards
	})
}

// hasPrefix reports whether any refusal string starts with the given
// san.Refusal* classification prefix.
func hasPrefix(refusals []string, prefix string) bool {
	for _, r := range refusals {
		if strings.HasPrefix(r, prefix) {
			return true
		}
	}
	return false
}

// expandedCertify builds a fresh model for cfg, runs the phase-type
// expansion pass over it, and certifies the expanded image
// (statespace.CertifyExpanded). The fresh build keeps the point's original
// compiled model untouched for the simulation fallback.
func expandedCertify(cfg abe.Config) (*statespace.Generator, san.Certificate, *san.ExpansionReport, error) {
	model := san.NewModel(cfg.Name)
	mp, err := abe.Build(model, cfg)
	if err != nil {
		return nil, san.Certificate{}, nil, err
	}
	return statespace.CertifyExpanded(model, mp.Rewards(), statespace.Options{})
}

// fittedCertify builds a fresh model for cfg and runs the certified
// approximate tier (statespace.CertifyFitted): exact expansion first, then
// phase-type fitting within tol on the non-expandable remainder. The fresh
// build keeps the point's original compiled model untouched for the
// simulation fallback.
func fittedCertify(cfg abe.Config, tol float64) (*statespace.Generator, san.Certificate, *san.FitReport, error) {
	model := san.NewModel(cfg.Name)
	mp, err := abe.Build(model, cfg)
	if err != nil {
		return nil, san.Certificate{}, nil, err
	}
	return statespace.CertifyFitted(model, mp.Rewards(), tol, statespace.Options{})
}

// Run evaluates every point of the sweep under the given study options
// (opts.Seed is the sweep-level master seed; opts.Parallelism sizes the
// shared worker pool). It returns per-point measures in input order. Solver
// outcomes are deduplicated within the sweep through a fresh SolveCache.
func Run(points []Point, opts san.Options) (*Result, error) {
	return RunWithCache(points, opts, nil)
}

// RunWithCache is Run with a caller-held solve cache: points whose
// (fingerprint, mission, solver tier, fit tolerance) key is already in the
// cache — from an earlier point of this sweep or from a previous sweep —
// reuse the memoized solver outcome instead of re-certifying and re-solving.
// A nil cache gets a fresh one. Cached reuse is invisible in the results
// except for the per-point Solver.Cache label: a hit returns the exact
// rewards, method, reasons, and certificate the original computation
// produced.
func RunWithCache(points []Point, opts san.Options, cache *SolveCache) (*Result, error) {
	if len(points) == 0 {
		return nil, ErrNoPoints
	}
	if cache == nil {
		cache = NewSolveCache()
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.WithDefaults()

	// Validate configurations eagerly so a typo in point 7 fails before any
	// simulation effort is spent on points 0-6.
	for i, pt := range points {
		if err := pt.Config.Validate(); err != nil {
			return nil, fmt.Errorf("sweep: point %d (%s): %w", i, pt.label(), err)
		}
	}

	derived := PointSeeds(opts.Seed, len(points))
	plans := make([]*pointPlan, len(points))
	seeds := make([]uint64, len(points))
	for i, pt := range points {
		seeds[i] = derived[i]
		if pt.Seed != 0 {
			seeds[i] = pt.Seed
		}
		ptOpts := opts
		ptOpts.Seed = seeds[i]
		ptOpts = ptOpts.WithDefaults()
		plans[i] = &pointPlan{opts: ptOpts, repSeeds: san.ReplicationSeeds(ptOpts)}
	}

	// Solver tier: certify every point up front and answer certified points
	// by uniformization — exact, zero variance, no replications. Points
	// whose certificate is refused (or whose solve fails numerically)
	// simulate, with the structured reasons recorded; ForceSimulation skips
	// certification outright. Outcomes are memoized in the solve cache by
	// content fingerprint, so duplicate configurations — common-random-number
	// design comparisons, repeated calibrated sweeps — certify and solve
	// once; the sync.Once per entry makes concurrent duplicates block on the
	// first computation instead of racing it. The pre-pass runs the points on
	// opts.Parallelism workers; every memoized object is shared read-only
	// afterwards.
	analytic := make([]map[string]float64, len(points))
	solverInfo := make([]Solver, len(points))
	keys := make([]solveKey, len(points))
	hasKey := make([]bool, len(points))
	preErr := make([]error, len(points))
	prior := cache.snapshot()
	tier := solverTier(opts)
	idxCh := make(chan int, len(points))
	for i := range points {
		idxCh <- i
	}
	close(idxCh)
	preWorkers := opts.Parallelism
	if preWorkers > len(points) {
		preWorkers = len(points)
	}
	if preWorkers < 1 {
		preWorkers = 1
	}
	var preWG sync.WaitGroup
	for w := 0; w < preWorkers; w++ {
		preWG.Add(1)
		go func() {
			defer preWG.Done()
			for i := range idxCh {
				pt := points[i]
				if pt.ForceSimulation {
					solverInfo[i] = Solver{Method: MethodSimulation, Reasons: []string{"forced: point requests simulation"}}
					continue
				}
				pp := plans[i]
				pp.build(pt.Config)
				if pp.buildErr != nil {
					preErr[i] = pp.buildErr
					continue
				}
				k := solveKey{
					fingerprint: pp.compiled.Fingerprint(),
					mission:     pp.opts.Mission,
					tier:        tier,
					fitTol:      opts.PHFitTolerance,
				}
				keys[i], hasKey[i] = k, true
				e := cache.entry(k)
				e.once.Do(func() {
					e.rewards, e.solver, e.err = solvePoint(pt.Config, pp.compiled, pp.opts.Mission, opts.PHFitTolerance)
				})
				if e.err != nil {
					preErr[i] = e.err
					continue
				}
				analytic[i] = e.rewards
				solverInfo[i] = e.solver
			}
		}()
	}
	preWG.Wait()
	for i, err := range preErr {
		if err != nil {
			return nil, fmt.Errorf("sweep: point %d (%s): %w", i, points[i].label(), err)
		}
	}
	// Hit/miss labels, assigned in point order against the cache's pre-sweep
	// contents: the lowest-indexed point holding a key not already in the
	// cache is the miss, every later holder is a hit — regardless of which
	// worker actually computed the entry.
	seen := make(map[solveKey]bool, len(points))
	for i := range points {
		if !hasKey[i] {
			continue
		}
		if prior[keys[i]] || seen[keys[i]] {
			solverInfo[i].Cache = CacheHit
		} else {
			solverInfo[i].Cache = CacheMiss
		}
		seen[keys[i]] = true
	}

	// One flat job list over the whole sweep, enqueued configuration-major.
	// The channel is FIFO, so each worker draws a nondecreasing sequence of
	// point indexes — a single-slot simulator cache per worker never
	// revisits an evicted point. Analytically answered points enqueue no
	// jobs.
	type sweepJob struct {
		point int
		rep   int
		seed  uint64
	}
	type repOutcome struct {
		res san.Result
		err error
	}
	total := 0
	outcomes := make([][]repOutcome, len(points))
	for i, pp := range plans {
		if analytic[i] != nil {
			continue
		}
		outcomes[i] = make([]repOutcome, pp.opts.Replications)
		total += pp.opts.Replications
	}
	jobs := make(chan sweepJob, total)
	for i, pp := range plans {
		if analytic[i] != nil {
			continue
		}
		for rep, seed := range pp.repSeeds {
			jobs <- sweepJob{point: i, rep: rep, seed: seed}
		}
	}
	close(jobs)

	workers := opts.Parallelism
	if workers > total {
		workers = total
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cachedPoint := -1
			var sim *san.Simulator
			for job := range jobs {
				pp := plans[job.point]
				pp.build(points[job.point].Config)
				if pp.buildErr != nil {
					outcomes[job.point][job.rep] = repOutcome{err: pp.buildErr}
					continue
				}
				stream := san.ReplicationStream(job.seed, job.rep)
				if cachedPoint != job.point {
					var err error
					sim, err = pp.compiled.NewSimulator(stream)
					if err != nil {
						outcomes[job.point][job.rep] = repOutcome{err: err}
						continue
					}
					cachedPoint = job.point
				} else if err := sim.Reset(stream); err != nil {
					outcomes[job.point][job.rep] = repOutcome{err: err}
					continue
				}
				res, err := sim.Run(pp.opts.Mission)
				outcomes[job.point][job.rep] = repOutcome{res: res, err: err}
			}
		}()
	}
	wg.Wait()

	// Reduce in (point, replication) order — the same order-sensitivity
	// argument as san.RunReplications, extended to the whole sweep.
	result := &Result{Options: opts, Points: make([]PointResult, 0, len(points))}
	for i, pt := range points {
		pp := plans[i]
		if pp.buildErr != nil {
			return nil, fmt.Errorf("sweep: point %d (%s): %w", i, pt.label(), pp.buildErr)
		}
		study := san.NewStudyResult(pp.rewards, pp.opts)
		if analytic[i] != nil {
			// Synthesize the study from the exact analytic answer: two
			// identical replications give the exact mean, zero variance, and
			// zero-width intervals through the unchanged reduction path.
			res := san.Result{Rewards: analytic[i], FinalTime: pp.opts.Mission}
			study.Add(res)
			study.Add(res)
		} else {
			for rep, out := range outcomes[i] {
				if out.err != nil {
					return nil, fmt.Errorf("sweep: point %d (%s) replication %d: %w", i, pt.label(), rep, out.err)
				}
				study.Add(out.res)
			}
		}
		m, err := abe.MeasuresFromStudy(pt.Config, study)
		if err != nil {
			return nil, fmt.Errorf("sweep: point %d (%s): %w", i, pt.label(), err)
		}
		// The model_stats view: size as evaluated next to the flat
		// expansion. Flat points read it off the already-built model; lumped
		// points (in any of their forms, including a direct Storage.Lumped
		// opt-in) pay one extra flat-expansion build for the comparison —
		// the lumped rebuild inside ModelStats is a few dozen objects.
		var ms abe.ModelStats
		if pt.Config.LumpsAnything() {
			var err error
			ms, err = pt.Config.ModelStats()
			if err != nil {
				return nil, fmt.Errorf("sweep: point %d (%s) model stats: %w", i, pt.label(), err)
			}
		} else {
			built := pp.compiled.Stats()
			ms = abe.ModelStats{
				Places: built.Places, Activities: built.Activities,
				FlatPlaces: built.Places, FlatActivities: built.Activities,
			}
		}
		result.TotalEvents += study.TotalEvents
		result.Points = append(result.Points, PointResult{
			Label: pt.label(), Seed: seeds[i], Measures: m, ModelStats: ms, Solver: solverInfo[i],
		})
	}
	return result, nil
}

// ---------------------------------------------------------------------------
// Machine-readable report
// ---------------------------------------------------------------------------

// Report is the machine-readable form of a sweep result (see Result.Report).
// The schema is documented in ROADMAP.md; it deliberately excludes execution
// details such as Parallelism so reports are byte-identical however the sweep
// was scheduled.
type Report struct {
	MissionHours float64       `json:"mission_hours"`
	Replications int           `json:"replications"`
	Confidence   float64       `json:"confidence"`
	Seed         uint64        `json:"seed"`
	TotalEvents  uint64        `json:"total_events"`
	Points       []ReportPoint `json:"points"`
}

// ReportPoint is one sweep point of a Report.
type ReportPoint struct {
	Label                    string                    `json:"label"`
	Seed                     uint64                    `json:"seed"`
	OSSPairs                 int                       `json:"oss_pairs"`
	TotalDisks               int                       `json:"total_disks"`
	StorageAvailability      float64                   `json:"storage_availability"`
	CFSAvailability          float64                   `json:"cfs_availability"`
	ClusterUtility           float64                   `json:"cluster_utility"`
	DiskReplacementsPerWeek  float64                   `json:"disk_replacements_per_week"`
	LostJobsTransientPerYear float64                   `json:"lost_jobs_transient_per_year"`
	LostJobsCFSPerYear       float64                   `json:"lost_jobs_cfs_per_year"`
	ModelStats               ReportModelStats          `json:"model_stats"`
	Solver                   ReportSolver              `json:"solver"`
	Intervals                map[string]ReportInterval `json:"intervals"`
}

// ReportSolver records how the point was answered: "uniformization" when the
// structural certificate proved the solver preconditions and the point's
// measures are exact (zero-width intervals), "uniformization-approx" when the
// answer is exact for a certified approximate phase-type surrogate (the
// per-activity CDF distance bounds are in the certificate's approximations),
// "simulation" otherwise — with the certificate's structured refusals (or the
// ForceSimulation override, or a numerical solver error) as the reasons.
// The cache field is "miss" when the point's solver outcome was computed
// during the sweep, "hit" when it was shared from a fingerprint-identical
// point (or a warm cache), and absent under ForceSimulation; a hit is
// byte-identical to a recompute in every other field.
type ReportSolver struct {
	Method      string           `json:"method"`
	Cache       string           `json:"cache,omitempty"`
	Reasons     []string         `json:"reasons,omitempty"`
	Certificate *san.Certificate `json:"certificate,omitempty"`
}

// ReportModelStats is the model_stats view of a point: the size of the
// model as evaluated (lumped where the configuration opted in) next to its
// flat expansion.
type ReportModelStats struct {
	Places         int  `json:"places"`
	Activities     int  `json:"activities"`
	FlatPlaces     int  `json:"flat_places"`
	FlatActivities int  `json:"flat_activities"`
	Lumped         bool `json:"lumped"`
}

// ReportInterval is a confidence interval in a Report, in the same units as
// the headline field it accompanies.
type ReportInterval struct {
	Mean       float64 `json:"mean"`
	HalfWidth  float64 `json:"half_width"`
	Confidence float64 `json:"confidence"`
	N          int     `json:"n"`
}

func reportInterval(ci stats.Interval) ReportInterval {
	return ReportInterval{Mean: ci.Mean, HalfWidth: ci.HalfWidth, Confidence: ci.Confidence, N: ci.N}
}

// Report returns the machine-readable form of the result.
func (r *Result) Report() Report {
	rep := Report{
		MissionHours: r.Options.Mission,
		Replications: r.Options.Replications,
		Confidence:   r.Options.Confidence,
		Seed:         r.Options.Seed,
		TotalEvents:  r.TotalEvents,
		Points:       make([]ReportPoint, 0, len(r.Points)),
	}
	for _, pt := range r.Points {
		m := pt.Measures
		p := ReportPoint{
			Label:                    pt.Label,
			Seed:                     pt.Seed,
			OSSPairs:                 m.Config.TotalOSSPairs(),
			TotalDisks:               m.Config.Storage.TotalDisks(),
			StorageAvailability:      m.StorageAvailability,
			CFSAvailability:          m.CFSAvailability,
			ClusterUtility:           m.ClusterUtility,
			DiskReplacementsPerWeek:  m.DiskReplacementsPerWeek,
			LostJobsTransientPerYear: m.LostJobsTransientPerYear,
			LostJobsCFSPerYear:       m.LostJobsCFSPerYear,
			ModelStats: ReportModelStats{
				Places:         pt.ModelStats.Places,
				Activities:     pt.ModelStats.Activities,
				FlatPlaces:     pt.ModelStats.FlatPlaces,
				FlatActivities: pt.ModelStats.FlatActivities,
				Lumped:         pt.ModelStats.Lumped,
			},
			Solver: ReportSolver{
				Method:      pt.Solver.Method,
				Cache:       pt.Solver.Cache,
				Reasons:     pt.Solver.Reasons,
				Certificate: pt.Solver.Certificate,
			},
			Intervals: make(map[string]ReportInterval, len(m.Intervals)),
		}
		// Map-to-map copy; JSON encoding sorts the keys, so visit order
		// never reaches the report bytes.
		for name, ci := range m.Intervals { //lint:sorted
			p.Intervals[name] = reportInterval(ci)
		}
		rep.Points = append(rep.Points, p)
	}
	return rep
}

// JSON returns the sweep result as indented JSON (map keys sorted, execution
// details excluded), suitable for diffing and downstream plotting.
func (r *Result) JSON() (string, error) { return report.ToJSON(r.Report()) }

// Table renders the sweep as a design-comparison style text table.
func (r *Result) Table(title string) report.Table {
	t := report.Table{
		Title: title,
		Headers: []string{
			"Point", "Storage availability", "CFS availability", "Cluster utility", "Disks replaced/week",
		},
	}
	for _, pt := range r.Points {
		m := pt.Measures
		t.AddRow(pt.Label,
			fmt.Sprintf("%.5f", m.StorageAvailability),
			fmt.Sprintf("%.4f", m.CFSAvailability),
			fmt.Sprintf("%.4f", m.ClusterUtility),
			fmt.Sprintf("%.2f", m.DiskReplacementsPerWeek),
		)
	}
	return t
}
