package rareevent

import (
	"fmt"
	"math"
)

// BirthDeathHitProbability returns the probability that a birth-death chain
// on states {0, ..., K} starting in state 0 reaches the absorbing state K
// within the horizon (hours). birth[i] is the rate of i -> i+1 for
// 0 <= i < K (so K = len(birth)); death[i] is the rate of i -> i-1 for
// 1 <= i < K and must have length K with death[0] ignored.
//
// The transient solution is computed by uniformization: with Λ an upper
// bound on the total exit rate, P = I + Q/Λ is a stochastic matrix and
//
//	π(T) = Σ_n e^{-ΛT} (ΛT)^n / n! · π(0) Pⁿ
//
// truncated when the Poisson tail drops below 1e-12. This is the exact
// answer the splitting and naive Monte Carlo estimators are validated
// against on models whose SAN encoding is a birth-death chain.
//
// internal/statespace generalizes the same uniformization scheme (same Λ
// bound, Poisson truncation, and tolerance) from hand-coded birth-death
// chains to any compiled SAN model that passes its structural certificate;
// Generator.SolveTransient on such a chain reproduces this function to
// floating-point accuracy (pinned by the statespace golden tests).
func BirthDeathHitProbability(birth, death []float64, horizon float64) (float64, error) {
	k := len(birth)
	if k < 1 {
		return 0, fmt.Errorf("%w: empty birth rates", ErrBadOptions)
	}
	if len(death) != k {
		return 0, fmt.Errorf("%w: %d death rates for %d birth rates", ErrBadOptions, len(death), k)
	}
	if !(horizon > 0) || math.IsInf(horizon, 0) {
		return 0, fmt.Errorf("%w: horizon %v", ErrBadOptions, horizon)
	}
	for i, r := range birth {
		if r < 0 || math.IsNaN(r) {
			return 0, fmt.Errorf("%w: birth[%d] = %v", ErrBadOptions, i, r)
		}
	}
	for i, r := range death {
		if r < 0 || math.IsNaN(r) {
			return 0, fmt.Errorf("%w: death[%d] = %v", ErrBadOptions, i, r)
		}
	}

	// Uniformization rate: max total exit rate over transient states.
	lambda := 0.0
	for i := 0; i < k; i++ {
		total := birth[i]
		if i > 0 {
			total += death[i]
		}
		if total > lambda {
			lambda = total
		}
	}
	if lambda == 0 {
		return 0, nil
	}
	lt := lambda * horizon
	if lt > 1e6 {
		return 0, fmt.Errorf("%w: uniformization constant %v too large", ErrBadOptions, lt)
	}

	// One step of the uniformized DTMC; state K is absorbing.
	step := func(pi []float64) []float64 {
		next := make([]float64, k+1)
		next[k] = pi[k]
		for i := 0; i < k; i++ {
			if pi[i] == 0 {
				continue
			}
			up := birth[i] / lambda
			down := 0.0
			if i > 0 {
				down = death[i] / lambda
			}
			stay := 1 - up - down
			next[i] += pi[i] * stay
			next[i+1] += pi[i] * up
			if i > 0 {
				next[i-1] += pi[i] * down
			}
		}
		return next
	}

	// Accumulate Σ_n Poisson(n; ΛT) π_n[K] with iteratively updated Poisson
	// weights. For large ΛT the leading weights underflow; track the log
	// weight and exponentiate per term instead.
	pi := make([]float64, k+1)
	pi[0] = 1
	logWeight := -lt // log PMF at n=0
	answer := math.Exp(logWeight) * pi[k]
	accumulated := math.Exp(logWeight)
	const tol = 1e-12
	maxIter := int(lt + 12*math.Sqrt(lt+1) + 50)
	for n := 1; n <= maxIter; n++ {
		pi = step(pi)
		logWeight += math.Log(lt) - math.Log(float64(n))
		w := math.Exp(logWeight)
		answer += w * pi[k]
		accumulated += w
		if n > int(lt) && 1-accumulated < tol {
			break
		}
	}
	return answer, nil
}

// UniformSplittingLevels returns the integer importance levels 1..top — the
// natural choice when the importance function counts discrete components
// (failed disks in a tier, customers in a queue).
func UniformSplittingLevels(top int) []float64 {
	levels := make([]float64, top)
	for i := range levels {
		levels[i] = float64(i + 1)
	}
	return levels
}

// FixedEffort returns an Effort slice assigning n trajectories to every
// level.
func FixedEffort(levels int, n int) []int {
	effort := make([]int, levels)
	for i := range effort {
		effort[i] = n
	}
	return effort
}
