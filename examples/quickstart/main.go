// The quickstart example builds a tiny stochastic activity network by hand —
// a single fail-over pair in front of one RAID6 tier — simulates it, and
// prints the availability with a 95% confidence interval. It is the smallest
// end-to-end use of the modeling stack (places, activities, gates, rewards,
// replicated simulation) that the full ABE model is composed from.
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/dist"
	"repro/internal/raid"
	"repro/internal/san"
)

func main() {
	log.SetFlags(0)

	model := san.NewModel("quickstart")

	// A shared counter place records how many subsystems are currently down;
	// the system is available while it reads zero.
	subsystemsDown := model.AddPlace("subsystems_down", 0)

	// One OSS fail-over pair with hardware and software failure processes
	// and a small correlated-failure probability.
	hwRepair, err := dist.NewUniform(12, 36)
	if err != nil {
		log.Fatal(err)
	}
	swRepair, err := dist.NewUniform(2, 6)
	if err != nil {
		log.Fatal(err)
	}
	_, err = cluster.BuildFailoverPair(model, "oss", cluster.PairConfig{
		HWMTBFHours:     1440,
		HWRepair:        hwRepair,
		SWMTBFHours:     1440,
		SWRepair:        swRepair,
		PropagationProb: 0.02,
	}, subsystemsDown)
	if err != nil {
		log.Fatal(err)
	}

	// One DDN unit with a single (8+2) RAID6 tier of Weibull disks.
	storage, err := raid.BuildStorage(model, "storage", raid.StorageConfig{
		DDNUnits:    1,
		TiersPerDDN: 1,
		Geometry:    raid.TierGeometry{Data: 8, Parity: 2},
		Disk:        raid.DefaultDisk(),
		Controller:  raid.DefaultController(),
	})
	if err != nil {
		log.Fatal(err)
	}

	// The system is up while the OSS pair is up and the storage is
	// operational.
	systemUp := func(m san.MarkingReader) bool {
		return m.Tokens(subsystemsDown) == 0 && storage.Operational(m)
	}
	rewards := []san.RewardVariable{
		san.UpFraction("system_availability", systemUp),
		storage.ReplacementCountReward("disk_replacements"),
	}

	study, err := san.RunReplications(model, rewards, san.Options{
		Mission:      8760, // one year
		Replications: 100,
		Seed:         42,
	})
	if err != nil {
		log.Fatal(err)
	}

	avail, err := study.Interval("system_availability")
	if err != nil {
		log.Fatal(err)
	}
	repl, err := study.Interval("disk_replacements")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("model: %d places, %d activities\n", model.NumPlaces(), model.NumActivities())
	fmt.Printf("system availability over one year: %s\n", avail)
	fmt.Printf("disk replacements per year:        %s\n", repl)
}
