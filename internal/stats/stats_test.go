package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	s := NewSummary()
	if s.N() != 0 || s.Mean() != 0 || s.Variance() != 0 {
		t.Fatal("empty summary not zeroed")
	}
	s.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N() != 8 {
		t.Errorf("N = %d, want 8", s.N())
	}
	if got := s.Mean(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Unbiased variance of the classic sample is 32/7.
	if got := s.Variance(); math.Abs(got-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, 32.0/7.0)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", s.Min(), s.Max())
	}
	if got := s.Sum(); got != 40 {
		t.Errorf("Sum = %v, want 40", got)
	}
}

func TestConfidenceIntervalKnownValue(t *testing.T) {
	// Sample of 10 values with mean 10, stddev 2: CI halfwidth =
	// t_{0.975,9} * 2/sqrt(10) = 2.262157 * 0.632456 = 1.43064.
	s := NewSummary()
	base := []float64{8, 9, 9.5, 10, 10, 10, 10.5, 11, 11, 11}
	// Rescale to stddev exactly 2 around mean 10.
	tmp := NewSummary()
	tmp.AddAll(base)
	scale := 2 / tmp.StdDev()
	for _, v := range base {
		s.Add(10 + (v-tmp.Mean())*scale)
	}
	ci, err := s.ConfidenceInterval(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ci.Mean-10) > 1e-9 {
		t.Errorf("CI mean = %v, want 10", ci.Mean)
	}
	want := 2.262157 * 2 / math.Sqrt(10)
	if math.Abs(ci.HalfWidth-want) > 1e-3 {
		t.Errorf("CI halfwidth = %v, want %v", ci.HalfWidth, want)
	}
	if !ci.Contains(10) || ci.Contains(100) {
		t.Error("Contains misbehaves")
	}
	if ci.Lower() >= ci.Upper() {
		t.Error("Lower >= Upper")
	}
	if ci.String() == "" {
		t.Error("String empty")
	}
}

func TestConfidenceIntervalErrors(t *testing.T) {
	s := NewSummary()
	s.Add(1)
	if _, err := s.ConfidenceInterval(0.95); err == nil {
		t.Error("CI with 1 observation succeeded")
	}
	s.Add(2)
	if _, err := s.ConfidenceInterval(1.5); err == nil {
		t.Error("CI with confidence 1.5 succeeded")
	}
}

func TestRelativeHalfWidth(t *testing.T) {
	s := NewSummary()
	for i := 0; i < 100; i++ {
		s.Add(100 + float64(i%10))
	}
	r := s.RelativeHalfWidth(0.95)
	if r <= 0 || r > 0.05 {
		t.Errorf("relative half width = %v, want small positive", r)
	}
	empty := NewSummary()
	if !math.IsInf(empty.RelativeHalfWidth(0.95), 1) {
		t.Error("empty RelativeHalfWidth not +Inf")
	}
}

func TestStudentTQuantileTable(t *testing.T) {
	cases := []struct {
		p, df, want float64
	}{
		{0.975, 1, 12.706},
		{0.975, 5, 2.571},
		{0.975, 9, 2.262},
		{0.975, 30, 2.042},
		{0.95, 10, 1.812},
		{0.995, 20, 2.845},
		{0.5, 7, 0},
	}
	for _, tc := range cases {
		got := StudentTQuantile(tc.p, tc.df)
		if math.Abs(got-tc.want) > 0.01 {
			t.Errorf("StudentTQuantile(%v, %v) = %v, want %v", tc.p, tc.df, got, tc.want)
		}
	}
	if !math.IsInf(StudentTQuantile(1, 5), 1) || !math.IsInf(StudentTQuantile(0, 5), -1) {
		t.Error("extreme quantiles not infinite")
	}
	if !math.IsNaN(StudentTQuantile(0.5, 0)) {
		t.Error("df=0 should be NaN")
	}
}

func TestStudentTCDFSymmetry(t *testing.T) {
	for _, df := range []float64{1, 3, 10, 50} {
		for _, x := range []float64{0.1, 0.7, 1.5, 3} {
			a := StudentTCDF(x, df)
			b := StudentTCDF(-x, df)
			if math.Abs(a+b-1) > 1e-9 {
				t.Errorf("CDF symmetry violated at x=%v df=%v: %v + %v != 1", x, df, a, b)
			}
		}
		if math.Abs(StudentTCDF(0, df)-0.5) > 1e-12 {
			t.Errorf("CDF(0) != 0.5 for df=%v", df)
		}
	}
}

func TestStudentTApproachesNormal(t *testing.T) {
	// For large df the 97.5% quantile approaches 1.96.
	got := StudentTQuantile(0.975, 1e6)
	if math.Abs(got-1.95996) > 1e-3 {
		t.Errorf("t quantile with huge df = %v, want ~1.96", got)
	}
}

func TestRegularizedIncompleteBeta(t *testing.T) {
	// I_x(1,1) = x.
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if got := RegularizedIncompleteBeta(1, 1, x); math.Abs(got-x) > 1e-10 {
			t.Errorf("I_%v(1,1) = %v", x, got)
		}
	}
	// I_x(2,2) = 3x^2 - 2x^3.
	for _, x := range []float64{0.2, 0.5, 0.8} {
		want := 3*x*x - 2*x*x*x
		if got := RegularizedIncompleteBeta(2, 2, x); math.Abs(got-want) > 1e-10 {
			t.Errorf("I_%v(2,2) = %v, want %v", x, got, want)
		}
	}
	if RegularizedIncompleteBeta(2, 3, 0) != 0 || RegularizedIncompleteBeta(2, 3, 1) != 1 {
		t.Error("boundary values incorrect")
	}
}

func TestBatchMeans(t *testing.T) {
	bm, err := NewBatchMeans(10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		bm.Add(float64(i % 10))
	}
	if bm.Batches() != 10 {
		t.Errorf("Batches = %d, want 10", bm.Batches())
	}
	if got := bm.Mean(); math.Abs(got-4.5) > 1e-12 {
		t.Errorf("Mean = %v, want 4.5", got)
	}
	ci, err := bm.ConfidenceInterval(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if ci.HalfWidth != 0 {
		t.Errorf("identical batches should give zero halfwidth, got %v", ci.HalfWidth)
	}
	if _, err := NewBatchMeans(0); err == nil {
		t.Error("NewBatchMeans(0) succeeded")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 42} {
		h.Add(v)
	}
	counts := h.Counts()
	want := []int{2, 1, 1, 0, 1}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("bin %d = %d, want %d", i, counts[i], want[i])
		}
	}
	under, over := h.OutOfRange()
	if under != 1 || over != 2 {
		t.Errorf("out of range = (%d,%d), want (1,2)", under, over)
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d, want 8", h.Total())
	}
	if got := h.BinCenter(0); got != 1 {
		t.Errorf("BinCenter(0) = %v, want 1", got)
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("NewHistogram(5,5,3) succeeded")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("NewHistogram with 0 bins succeeded")
	}
}

func TestLinearRegressionExact(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{3, 5, 7, 9, 11} // y = 2x + 1
	fit, err := LinearRegression(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 1e-12 || math.Abs(fit.Intercept-1) > 1e-12 {
		t.Errorf("fit = %+v, want slope 2 intercept 1", fit)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
}

func TestLinearRegressionErrors(t *testing.T) {
	if _, err := LinearRegression([]float64{1}, []float64{1}); err == nil {
		t.Error("regression with 1 point succeeded")
	}
	if _, err := LinearRegression([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("regression with mismatched lengths succeeded")
	}
	if _, err := LinearRegression([]float64{3, 3, 3}, []float64{1, 2, 3}); err == nil {
		t.Error("regression with constant x succeeded")
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	yPos := []float64{2, 4, 6, 8, 10}
	yNeg := []float64{10, 8, 6, 4, 2}
	if r, err := Pearson(x, yPos); err != nil || math.Abs(r-1) > 1e-9 {
		t.Errorf("Pearson positive = %v (%v), want 1", r, err)
	}
	if r, err := Pearson(x, yNeg); err != nil || math.Abs(r+1) > 1e-9 {
		t.Errorf("Pearson negative = %v (%v), want -1", r, err)
	}
}

func TestQuantile(t *testing.T) {
	sample := []float64{5, 1, 3, 2, 4}
	if q, err := Quantile(sample, 0.5); err != nil || q != 3 {
		t.Errorf("median = %v (%v), want 3", q, err)
	}
	if q, _ := Quantile(sample, 0); q != 1 {
		t.Errorf("q0 = %v, want 1", q)
	}
	if q, _ := Quantile(sample, 1); q != 5 {
		t.Errorf("q1 = %v, want 5", q)
	}
	if q, _ := Quantile(sample, 0.25); q != 2 {
		t.Errorf("q0.25 = %v, want 2", q)
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("Quantile(nil) succeeded")
	}
	// Ensure input not modified.
	if sample[0] != 5 {
		t.Error("Quantile modified its input")
	}
}

// Property: summary mean always lies within [min, max] and variance >= 0.
func TestQuickSummaryInvariants(t *testing.T) {
	f := func(xs []float64) bool {
		s := NewSummary()
		clean := xs[:0]
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				continue
			}
			clean = append(clean, x)
			s.Add(x)
		}
		if len(clean) == 0 {
			return true
		}
		if s.Variance() < 0 {
			return false
		}
		return s.Mean() >= s.Min()-1e-9 && s.Mean() <= s.Max()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Student-t CDF is monotone non-decreasing in its argument.
func TestQuickStudentTMonotone(t *testing.T) {
	f := func(a, b float64, dfSeed uint8) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		df := float64(dfSeed%60) + 1
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		if math.Abs(lo) > 50 || math.Abs(hi) > 50 {
			return true
		}
		return StudentTCDF(lo, df) <= StudentTCDF(hi, df)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.025, -1.959964},
		{0.995, 2.575829},
		{0.841344746, 1}, // Phi(1)
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); math.Abs(got-c.want) > 1e-5 {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("boundary quantiles should be infinite")
	}
	if !math.IsNaN(NormalQuantile(math.NaN())) {
		t.Error("NaN probability should propagate")
	}
}

func TestBinomialProportionInterval(t *testing.T) {
	ci, err := BinomialProportionInterval(50, 100, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Mean != 0.5 || ci.N != 100 {
		t.Errorf("ci = %+v", ci)
	}
	want := 1.959964 * math.Sqrt(0.25/100)
	if math.Abs(ci.HalfWidth-want) > 1e-5 {
		t.Errorf("half width = %v, want %v", ci.HalfWidth, want)
	}

	// Zero hits: rule-of-three fallback ln(1/0.05)/n ~= 3/n.
	zero, err := BinomialProportionInterval(0, 1000, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if zero.Mean != 0 {
		t.Errorf("mean = %v", zero.Mean)
	}
	if math.Abs(zero.HalfWidth-math.Log(20)/1000) > 1e-12 {
		t.Errorf("zero-hit half width = %v", zero.HalfWidth)
	}

	// All hits mirrors the zero-hit bound.
	all, err := BinomialProportionInterval(1000, 1000, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if all.Mean != 1 || all.HalfWidth != zero.HalfWidth {
		t.Errorf("all-hit ci = %+v", all)
	}

	for _, bad := range []struct{ h, n int }{{-1, 10}, {11, 10}, {0, 0}} {
		if _, err := BinomialProportionInterval(bad.h, bad.n, 0.95); err == nil {
			t.Errorf("counts %d/%d accepted", bad.h, bad.n)
		}
	}
	if _, err := BinomialProportionInterval(1, 10, 1.5); err == nil {
		t.Error("confidence 1.5 accepted")
	}
}

func TestProductBinomialInterval(t *testing.T) {
	// Single stage reduces to a binomial proportion with delta-method width.
	one, err := ProductBinomialInterval([]SplittingStage{{Trials: 200, Hits: 50}}, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(one.Mean-0.25) > 1e-12 {
		t.Errorf("mean = %v", one.Mean)
	}
	wantRel := (1 - 0.25) / (200 * 0.25)
	wantHalf := 1.959964 * 0.25 * math.Sqrt(wantRel)
	if math.Abs(one.HalfWidth-wantHalf) > 1e-5 {
		t.Errorf("half width = %v, want %v", one.HalfWidth, wantHalf)
	}

	// Two stages multiply and the relative variances add.
	two, err := ProductBinomialInterval([]SplittingStage{
		{Trials: 100, Hits: 20},
		{Trials: 100, Hits: 10},
	}, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(two.Mean-0.02) > 1e-12 {
		t.Errorf("mean = %v", two.Mean)
	}
	rel := (1-0.2)/(100*0.2) + (1-0.1)/(100*0.1)
	if math.Abs(two.HalfWidth-1.959964*0.02*math.Sqrt(rel)) > 1e-5 {
		t.Errorf("half width = %v", two.HalfWidth)
	}
	if two.N != 200 {
		t.Errorf("N = %d", two.N)
	}

	// A zero-hit stage collapses the estimate to 0 with the conservative
	// product bound as half width.
	zero, err := ProductBinomialInterval([]SplittingStage{
		{Trials: 100, Hits: 20},
		{Trials: 50, Hits: 0},
	}, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if zero.Mean != 0 {
		t.Errorf("mean = %v", zero.Mean)
	}
	wantBound := 0.2 * math.Log(20) / 50
	if math.Abs(zero.HalfWidth-wantBound) > 1e-12 {
		t.Errorf("bound = %v, want %v", zero.HalfWidth, wantBound)
	}

	if _, err := ProductBinomialInterval(nil, 0.95); err == nil {
		t.Error("empty stages accepted")
	}
	if _, err := ProductBinomialInterval([]SplittingStage{{Trials: 0, Hits: 0}}, 0.95); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := ProductBinomialInterval([]SplittingStage{{Trials: 10, Hits: 5}}, 0); err == nil {
		t.Error("confidence 0 accepted")
	}
}
