package experiments

import (
	"fmt"
	"strings"

	"repro/internal/abe"
	"repro/internal/san"
	"repro/internal/statespace"
)

// ConfigAnalysis is the static analysis of one experiment configuration:
// the per-family lumpability verdicts (cheap, derived from the
// configuration alone) and, for the first point of each distinct model
// shape, the full structural report from san.Analyze.
type ConfigAnalysis struct {
	Label    string                   `json:"label"`
	Verdicts []san.LumpabilityVerdict `json:"verdicts"`
	// Report is the structural analysis of the compiled model. Scaling a
	// configuration replicates families without changing the activity
	// structure, so the report is computed once per distinct design variant
	// (at its first, smallest point) and omitted on the scaled repeats.
	Report *san.AnalysisReport `json:"report,omitempty"`
	// Certificate is the solver-tier structural certificate
	// (statespace.Certify) of the same reference-scale model the Report
	// covers: either a proof that the certified uniformization solver may
	// answer the configuration, or the structured refusals explaining why it
	// must simulate.
	Certificate *san.Certificate `json:"certificate,omitempty"`
}

// ExperimentAnalysis is the -analyze section of an abesim run: the static
// analyses of the configurations the named experiment evaluates.
type ExperimentAnalysis struct {
	Experiment string           `json:"experiment"`
	Configs    []ConfigAnalysis `json:"configs"`
	// Clean aggregates the structural reports: true when every analyzed
	// model is free of vanishing loops and dead activities.
	Clean bool `json:"clean"`
}

// analyzeConfig builds and compiles the configuration, runs the full
// structural analysis, and runs the solver-tier certificate pipeline.
func analyzeConfig(cfg abe.Config) (*san.AnalysisReport, *san.Certificate, error) {
	m := san.NewModel(cfg.Name)
	mp, err := abe.Build(m, cfg)
	if err != nil {
		return nil, nil, err
	}
	cm, err := san.Compile(m, mp.Rewards())
	if err != nil {
		return nil, nil, err
	}
	rep := san.Analyze(cm)
	_, cert := statespace.Certify(cm, statespace.Options{})
	if !cert.Certified() && hasRefusalPrefix(cert.Refusals, san.RefusalNonMemoryless) {
		// The original model is non-memoryless; retry on a fresh build with
		// the phase-type expansion pass applied. The expanded certificate is
		// adopted only when the pass actually rewrote something — otherwise
		// the original refusals stand.
		fresh := san.NewModel(cfg.Name)
		fmp, err := abe.Build(fresh, cfg)
		if err != nil {
			return nil, nil, err
		}
		_, exCert, exRep, err := statespace.CertifyExpanded(fresh, fmp.Rewards(), statespace.Options{})
		if err == nil && len(exRep.Expanded) > 0 {
			cert = exCert
		}
	}
	return &rep, &cert, nil
}

// hasRefusalPrefix reports whether any refusal starts with the given reason.
func hasRefusalPrefix(refusals []string, prefix string) bool {
	for _, r := range refusals {
		if strings.HasPrefix(r, prefix) {
			return true
		}
	}
	return false
}

// AnalyzeExperiment statically analyzes the model configurations the named
// experiment runs, without simulating anything. For the sweep-backed
// figure4 experiment every sweep point contributes its verdicts, and each
// distinct design variant (base, spare OSS) contributes one structural
// report at its reference scale. Every other experiment is analyzed against
// the ABE reference composition in its flat and lumped forms.
func AnalyzeExperiment(name string, opts Options) (*ExperimentAnalysis, error) {
	opts = opts.withDefaults()
	out := &ExperimentAnalysis{Experiment: name, Clean: true}
	switch name {
	case "figure4":
		factors := Figure4ScaleFactors(opts.Quick)
		// The cross-check pair shares one model, so analyze its config once.
		points := append(Figure4Points(opts.Seed, factors), Figure4CrossCheckPoints(opts.Seed)[0])
		points = append(points, Figure4ErlangCrossCheckPoints(opts.Seed)[0])
		seenVariant := map[string]bool{} // keyed by the distinct model shapes
		for _, pt := range points {
			cfg := pt.Config
			label := pt.Label
			if label == "" {
				label = cfg.Name
			}
			ca := ConfigAnalysis{Label: label, Verdicts: cfg.LumpabilityVerdicts()}
			variant := fmt.Sprintf("spare=%v exp=%v erlang=%d",
				cfg.OSS.SpareOSS, cfg.Workload.ExponentialOutages, cfg.Infrastructure.ErlangRepairStages)
			if !seenVariant[variant] {
				seenVariant[variant] = true
				rep, cert, err := analyzeConfig(cfg)
				if err != nil {
					return nil, fmt.Errorf("experiments: analyzing %q: %w", label, err)
				}
				ca.Report = rep
				ca.Certificate = cert
			}
			out.Configs = append(out.Configs, ca)
		}
	default:
		for _, variant := range []struct {
			label string
			cfg   abe.Config
		}{
			{"abe", abe.ABE()},
			{"abe lumped", abe.ABE().WithLumping(true)},
		} {
			rep, cert, err := analyzeConfig(variant.cfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: analyzing %q: %w", variant.label, err)
			}
			out.Configs = append(out.Configs, ConfigAnalysis{
				Label:       variant.label,
				Verdicts:    variant.cfg.LumpabilityVerdicts(),
				Report:      rep,
				Certificate: cert,
			})
		}
	}
	for _, ca := range out.Configs {
		if ca.Report != nil && !ca.Report.Clean {
			out.Clean = false
		}
	}
	return out, nil
}

// Render formats the analysis as text, one block per configuration.
func (a *ExperimentAnalysis) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "static analysis (%s):\n", a.Experiment)
	for _, ca := range a.Configs {
		fmt.Fprintf(&b, "%s\n", ca.Label)
		if len(ca.Verdicts) > 0 {
			b.WriteString("  families:\n")
			b.WriteString(san.RenderVerdicts(ca.Verdicts, "    "))
		}
		if ca.Report != nil {
			b.WriteString(indentLines(ca.Report.Render(), "  "))
		}
		if ca.Certificate != nil {
			fmt.Fprintf(&b, "  solver certificate: %s\n", ca.Certificate.Summary())
		}
	}
	fmt.Fprintf(&b, "clean: %v\n", a.Clean)
	return b.String()
}

// indentLines prefixes every non-empty line.
func indentLines(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		if l != "" {
			lines[i] = prefix + l
		}
	}
	return strings.Join(lines, "\n") + "\n"
}
