// Command shared_repair_crew demonstrates the bounded-repair-crew scenario:
// the paper's storage models replace every failed disk independently, but a
// real operations team has a finite number of technicians shared across all
// DDN units. The raid.StorageConfig.RepairCrews knob caps concurrent
// replacements with a shared crew place: a failed disk claims a crew token
// (instantaneous start activity) before its replacement clock runs and
// returns it on completion.
//
// The demo overloads a small storage system (short disk lifetimes, slow
// replacements) and compares unlimited crews against a single shared crew:
// the replacement backlog — the time-averaged number of disks awaiting or
// under replacement — grows sharply once the crew saturates, and the tier
// failure exposure (and hence storage unavailability) grows with it.
package main

import (
	"fmt"
	"log"

	"repro/internal/raid"
	"repro/internal/report"
	"repro/internal/san"
)

func main() {
	log.SetFlags(0)

	base := raid.StorageConfig{
		DDNUnits:    2,
		TiersPerDDN: 2,
		Geometry:    raid.TierGeometry{Data: 4, Parity: 1},
		// Deliberately brutal parameters so the crew matters: 20 disks with
		// 500 h lifetimes generate ~0.038 replacements/hour against a single
		// crew's 1/30 per hour service rate — a saturated repair queue.
		Disk:       raid.DiskConfig{ShapeBeta: 1, MTBFHours: 500, ReplaceHours: 30, CapacityGB: 250},
		Controller: raid.ControllerConfig{MTBFHours: 1e9, RepairLoHours: 1, RepairHiHours: 2},
	}
	opts := san.Options{Mission: 8760, Replications: 40, Seed: 7}

	table := report.Table{
		Title: fmt.Sprintf("Shared repair crews: %d disks, disk MTBF %.0f h, replacement %.0f h, mission %.0f h",
			base.TotalDisks(), base.Disk.MTBFHours, base.Disk.ReplaceHours, opts.Mission),
		Headers: []string{
			"Repair crews", "Backlog (mean disks down)", "Busy crews (mean)",
			"Storage availability", "Replacements/year",
		},
	}

	for _, crews := range []int{0, 1, 2} {
		cfg := base
		cfg.RepairCrews = crews
		model := san.NewModel("shared_repair_crew")
		sp, err := raid.BuildStorage(model, "storage", cfg)
		if err != nil {
			log.Fatal(err)
		}
		rewards := []san.RewardVariable{
			sp.AvailabilityReward("availability"),
			sp.ReplacementCountReward("replacements"),
			san.TokenTimeAverage("backlog", sp.DisksDown),
		}
		if sp.RepairCrews != nil {
			crewPlace := sp.RepairCrews
			idle := crews
			rewards = append(rewards, san.RewardVariable{
				Name: "busy_crews",
				Mode: san.TimeAveraged,
				Rate: func(mr san.MarkingReader) float64 {
					return float64(idle - mr.Tokens(crewPlace))
				},
			})
		}
		study, err := san.RunReplications(model, rewards, opts)
		if err != nil {
			log.Fatal(err)
		}
		label := "unlimited"
		busy := "n/a"
		if crews > 0 {
			label = fmt.Sprintf("%d", crews)
			busy = fmt.Sprintf("%.2f", study.Mean("busy_crews"))
		}
		table.AddRow(
			label,
			fmt.Sprintf("%.2f", study.Mean("backlog")),
			busy,
			fmt.Sprintf("%.4f", study.Mean("availability")),
			fmt.Sprintf("%.1f", study.Mean("replacements")),
		)
	}
	fmt.Print(table.Render())
	fmt.Println("\nWith one shared crew the backlog is no longer the independent-repair")
	fmt.Println("value (arrival rate x replacement time): disks queue behind the busy")
	fmt.Println("crew, concurrent-failure exposure rises, and storage availability drops.")
}
