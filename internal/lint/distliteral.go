package lint

import (
	"go/ast"
	"go/types"
)

// distLiteral enforces constructor discipline for distribution values:
// outside the dist package itself, a composite literal of a dist-defined
// type implementing dist.Distribution bypasses the New* constructors'
// validation (positive rates and shapes, ordered bounds, normalized mixture
// weights) and can mint a delay no calibration produced — and static passes
// (san.ExpandPhases, the lumpability predicates) reason about distributions
// on the premise that those invariants hold. Every distribution value must
// come from a constructor. Plain argument records the dist package exports
// (e.g. the Component branches handed to NewMixture, which validates them)
// do not implement Distribution and stay constructible.
func distLiteral(p *Package, distPath string) []Finding {
	if distPath == "" || p.Path == distPath {
		return nil
	}
	var findings []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			tv, ok := p.Info.Types[cl]
			if !ok {
				return true
			}
			named, ok := types.Unalias(tv.Type).(*types.Named)
			if !ok {
				return true
			}
			obj := named.Obj()
			if obj.Pkg() == nil || obj.Pkg().Path() != distPath {
				return true
			}
			if !implementsDistribution(named, obj.Pkg()) {
				return true
			}
			findings = append(findings, Finding{
				Pos:  p.Fset.Position(cl.Pos()),
				Rule: "distliteral",
				Message: "composite literal of " + obj.Pkg().Name() + "." + obj.Name() +
					" bypasses constructor validation; use the " + obj.Pkg().Name() + ".New* constructors",
			})
			return true
		})
	}
	return findings
}

// implementsDistribution reports whether the named type (by value or
// pointer) satisfies the Distribution interface its own package declares.
// A dist package without such an interface makes every literal suspect.
func implementsDistribution(named *types.Named, distPkg *types.Package) bool {
	tn, _ := distPkg.Scope().Lookup("Distribution").(*types.TypeName)
	if tn == nil {
		return true
	}
	iface, ok := types.Unalias(tn.Type()).Underlying().(*types.Interface)
	if !ok {
		return true
	}
	return types.Implements(named, iface) || types.Implements(types.NewPointer(named), iface)
}
