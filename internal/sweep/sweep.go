// Package sweep runs multi-configuration simulation studies — the paper's
// Figure 4/5 scaling sweeps and the design-comparison tables — behind one
// shared worker pool.
//
// Evaluating a sweep point by point (a fresh abe.Evaluate per configuration)
// pays three avoidable costs: a worker pool is spun up and drained per
// configuration (so every configuration's slowest replication idles the whole
// pool), the composed model is rebuilt per evaluation, and a Simulator —
// whose dependency and impulse indexes are O(model) to derive — used to be
// rebuilt per replication. The sweep engine instead schedules the flat list
// of (configuration, replication) jobs over a single pool: models are built
// once per configuration and shared read-only, each worker keeps one
// Simulator per configuration and Resets it onto every replication's private
// stream, and slow large-scale configurations overlap with fast small ones.
//
// Determinism contract: seeds are derived per (configuration index,
// replication index) and outcomes are reduced in (configuration, replication)
// order, so a sweep is bit-identical across Parallelism settings, and every
// point is bit-identical to a standalone abe.Evaluate with the point's
// derived seed (see PointSeeds) — the same contract san.RunReplications
// provides for single studies.
package sweep

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/abe"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/san"
	"repro/internal/statespace"
	"repro/internal/stats"
)

// ErrNoPoints is returned by Run when the sweep is empty.
var ErrNoPoints = errors.New("sweep: no points to evaluate")

// Point is one configuration of a sweep.
type Point struct {
	// Label names the point in results and reports; empty means Config.Name.
	Label string
	// Config is the composed-model configuration evaluated at this point.
	Config abe.Config
	// Seed, when nonzero, pins the point's study seed explicitly — the
	// common-random-numbers technique: giving every design alternative the
	// same seed makes their comparison sharper than independent draws. Zero
	// (the default) derives an independent seed from the sweep seed and the
	// point index (see PointSeeds).
	Seed uint64
	// ForceSimulation opts the point out of the analytic solver tier even
	// when its model certifies: the point simulates, and the solver section
	// records the override. Cross-check points use it to simulate the exact
	// configuration the solver answers analytically, so the two tiers can be
	// compared on the same model.
	ForceSimulation bool
}

// label returns the effective label of the point.
func (p Point) label() string {
	if p.Label != "" {
		return p.Label
	}
	return p.Config.Name
}

// Solver records how a sweep point was answered: by the certified
// uniformization solver (exact, zero variance), by the same solver on a
// certified approximate phase-type surrogate (MethodUniformizationApprox,
// with the per-activity fit bounds in the certificate's Approximations), or
// by simulation — with the structural certificate or the structured refusal
// reasons as evidence.
type Solver struct {
	// Method is MethodUniformization, MethodUniformizationApprox, or
	// MethodSimulation.
	Method string
	// Reasons explains a simulation choice: the certificate's structured
	// refusals, a solver error, or the point's ForceSimulation override.
	// Empty when the solver answered analytically.
	Reasons []string
	// Certificate is the structural certificate when certification ran (it
	// is skipped under ForceSimulation).
	Certificate *san.Certificate
}

// Solver methods.
const (
	MethodUniformization = "uniformization"
	// MethodUniformizationApprox marks an analytic answer computed on a
	// certified approximate phase-type surrogate of the model: exact for the
	// surrogate (zero-width intervals), within the per-activity CDF bounds
	// recorded in Certificate.Approximations of the true model. Never
	// reported as plain uniformization.
	MethodUniformizationApprox = "uniformization-approx"
	MethodSimulation           = "simulation"
)

// PointResult is the outcome of one sweep point.
type PointResult struct {
	// Label is the effective point label.
	Label string
	// Seed is the study seed the point was evaluated with; a standalone
	// abe.Evaluate with this seed (and the sweep's options) reproduces
	// Measures bit-identically.
	Seed uint64
	// Measures are the derived measures of the point's configuration.
	Measures abe.Measures
	// ModelStats is the model_stats view of the point: the size of the
	// model as evaluated (lumped where the configuration opts in) next to
	// its flat expansion.
	ModelStats abe.ModelStats
	// Solver records whether the point was answered analytically or by
	// simulation, and why.
	Solver Solver
}

// Result is the outcome of a sweep.
type Result struct {
	// Points holds one result per input point, in input order.
	Points []PointResult
	// Options echoes the effective sweep-level study options.
	Options san.Options
	// TotalEvents is the number of activity completions across every
	// replication of every point.
	TotalEvents uint64
}

// PointSeeds returns the n per-point study seeds Run derives from the sweep
// seed, in point order. Tests and callers use it to reproduce a single sweep
// point with a standalone abe.Evaluate.
func PointSeeds(seed uint64, n int) []uint64 {
	master := rng.NewStream(seed, "sweep-master")
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = master.Uint64()
	}
	return seeds
}

// pointPlan is the per-point schedule plus the lazily built shared model.
type pointPlan struct {
	opts     san.Options // effective study options (Seed = the point's seed)
	repSeeds []uint64

	// The composed model is built and compiled at most once, by whichever
	// worker first draws a job for the point, and is then shared read-only;
	// each worker still owns its private Simulator, which is cheap to derive
	// from the compiled model.
	buildOnce sync.Once
	compiled  *san.CompiledModel
	rewards   []san.RewardVariable
	buildErr  error
}

// build composes and compiles the model for cfg once.
func (pp *pointPlan) build(cfg abe.Config) {
	pp.buildOnce.Do(func() {
		model := san.NewModel(cfg.Name)
		mp, err := abe.Build(model, cfg)
		if err != nil {
			pp.buildErr = err
			return
		}
		rewards := mp.Rewards()
		cm, err := san.Compile(model, rewards)
		if err != nil {
			pp.buildErr = err
			return
		}
		pp.compiled = cm
		pp.rewards = rewards
	})
}

// hasPrefix reports whether any refusal string starts with the given
// san.Refusal* classification prefix.
func hasPrefix(refusals []string, prefix string) bool {
	for _, r := range refusals {
		if strings.HasPrefix(r, prefix) {
			return true
		}
	}
	return false
}

// expandedCertify builds a fresh model for cfg, runs the phase-type
// expansion pass over it, and certifies the expanded image
// (statespace.CertifyExpanded). The fresh build keeps the point's original
// compiled model untouched for the simulation fallback.
func expandedCertify(cfg abe.Config) (*statespace.Generator, san.Certificate, *san.ExpansionReport, error) {
	model := san.NewModel(cfg.Name)
	mp, err := abe.Build(model, cfg)
	if err != nil {
		return nil, san.Certificate{}, nil, err
	}
	return statespace.CertifyExpanded(model, mp.Rewards(), statespace.Options{})
}

// fittedCertify builds a fresh model for cfg and runs the certified
// approximate tier (statespace.CertifyFitted): exact expansion first, then
// phase-type fitting within tol on the non-expandable remainder. The fresh
// build keeps the point's original compiled model untouched for the
// simulation fallback.
func fittedCertify(cfg abe.Config, tol float64) (*statespace.Generator, san.Certificate, *san.FitReport, error) {
	model := san.NewModel(cfg.Name)
	mp, err := abe.Build(model, cfg)
	if err != nil {
		return nil, san.Certificate{}, nil, err
	}
	return statespace.CertifyFitted(model, mp.Rewards(), tol, statespace.Options{})
}

// Run evaluates every point of the sweep under the given study options
// (opts.Seed is the sweep-level master seed; opts.Parallelism sizes the
// shared worker pool). It returns per-point measures in input order.
func Run(points []Point, opts san.Options) (*Result, error) {
	if len(points) == 0 {
		return nil, ErrNoPoints
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.WithDefaults()

	// Validate configurations eagerly so a typo in point 7 fails before any
	// simulation effort is spent on points 0-6.
	for i, pt := range points {
		if err := pt.Config.Validate(); err != nil {
			return nil, fmt.Errorf("sweep: point %d (%s): %w", i, pt.label(), err)
		}
	}

	derived := PointSeeds(opts.Seed, len(points))
	plans := make([]*pointPlan, len(points))
	seeds := make([]uint64, len(points))
	for i, pt := range points {
		seeds[i] = derived[i]
		if pt.Seed != 0 {
			seeds[i] = pt.Seed
		}
		ptOpts := opts
		ptOpts.Seed = seeds[i]
		ptOpts = ptOpts.WithDefaults()
		plans[i] = &pointPlan{opts: ptOpts, repSeeds: san.ReplicationSeeds(ptOpts)}
	}

	// Solver tier: certify every point up front and answer certified points
	// by uniformization — exact, zero variance, no replications. Points
	// whose certificate is refused (or whose solve fails numerically)
	// simulate, with the structured reasons recorded; ForceSimulation skips
	// certification outright. The certificate pipeline fails fast on
	// non-memoryless models, so this pre-pass costs at most one bounded
	// exploration (comparable to a fraction of one replication) per point.
	analytic := make([]map[string]float64, len(points))
	solverInfo := make([]Solver, len(points))
	for i, pt := range points {
		if pt.ForceSimulation {
			solverInfo[i] = Solver{Method: MethodSimulation, Reasons: []string{"forced: point requests simulation"}}
			continue
		}
		pp := plans[i]
		pp.build(pt.Config)
		if pp.buildErr != nil {
			return nil, fmt.Errorf("sweep: point %d (%s): %w", i, pt.label(), pp.buildErr)
		}
		gen, cert := statespace.Certify(pp.compiled, statespace.Options{})
		if !cert.Certified() && hasPrefix(cert.Refusals, san.RefusalNonMemoryless) {
			// Phase-type expansion retry: rebuild the point's model fresh
			// (ExpandPhases mutates its input and the simulation fallback
			// must keep the original compiled model bit-identical), expand,
			// and certify the expanded image. When the pass rewrote nothing
			// the original certificate stands; when it did, the expanded
			// certificate — evidence, refusals, and all — replaces it.
			exGen, exCert, rep, err := expandedCertify(pt.Config)
			if err != nil {
				return nil, fmt.Errorf("sweep: point %d (%s): %w", i, pt.label(), err)
			}
			if len(rep.Expanded) > 0 {
				gen, cert = exGen, exCert
			}
		}
		if !cert.Certified() && hasPrefix(cert.Refusals, san.RefusalNonMemoryless) && opts.PHFitTolerance > 0 {
			// Approximate-fitting retry, opted into via PHFitTolerance: some
			// delay has no exact phase form, so rebuild once more and run the
			// certified fitting tier over the non-expandable remainder. Only
			// an image that actually adopted surrogates replaces the standing
			// certificate; the answer is then labeled uniformization-approx,
			// never plain uniformization.
			fitGen, fitCert, rep, err := fittedCertify(pt.Config, opts.PHFitTolerance)
			if err != nil {
				return nil, fmt.Errorf("sweep: point %d (%s): %w", i, pt.label(), err)
			}
			if len(rep.Fits) > 0 {
				gen, cert = fitGen, fitCert
			}
		}
		c := cert
		solverInfo[i].Certificate = &c
		if !cert.Certified() {
			solverInfo[i].Method = MethodSimulation
			solverInfo[i].Reasons = cert.Refusals
			continue
		}
		rewards, err := gen.SolveTransient(pp.opts.Mission)
		if err != nil {
			solverInfo[i].Method = MethodSimulation
			solverInfo[i].Reasons = []string{err.Error()}
			continue
		}
		if len(cert.Approximations) > 0 {
			solverInfo[i].Method = MethodUniformizationApprox
		} else {
			solverInfo[i].Method = MethodUniformization
		}
		analytic[i] = rewards
	}

	// One flat job list over the whole sweep, enqueued configuration-major.
	// The channel is FIFO, so each worker draws a nondecreasing sequence of
	// point indexes — a single-slot simulator cache per worker never
	// revisits an evicted point. Analytically answered points enqueue no
	// jobs.
	type sweepJob struct {
		point int
		rep   int
		seed  uint64
	}
	type repOutcome struct {
		res san.Result
		err error
	}
	total := 0
	outcomes := make([][]repOutcome, len(points))
	for i, pp := range plans {
		if analytic[i] != nil {
			continue
		}
		outcomes[i] = make([]repOutcome, pp.opts.Replications)
		total += pp.opts.Replications
	}
	jobs := make(chan sweepJob, total)
	for i, pp := range plans {
		if analytic[i] != nil {
			continue
		}
		for rep, seed := range pp.repSeeds {
			jobs <- sweepJob{point: i, rep: rep, seed: seed}
		}
	}
	close(jobs)

	workers := opts.Parallelism
	if workers > total {
		workers = total
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cachedPoint := -1
			var sim *san.Simulator
			for job := range jobs {
				pp := plans[job.point]
				pp.build(points[job.point].Config)
				if pp.buildErr != nil {
					outcomes[job.point][job.rep] = repOutcome{err: pp.buildErr}
					continue
				}
				stream := san.ReplicationStream(job.seed, job.rep)
				if cachedPoint != job.point {
					var err error
					sim, err = pp.compiled.NewSimulator(stream)
					if err != nil {
						outcomes[job.point][job.rep] = repOutcome{err: err}
						continue
					}
					cachedPoint = job.point
				} else if err := sim.Reset(stream); err != nil {
					outcomes[job.point][job.rep] = repOutcome{err: err}
					continue
				}
				res, err := sim.Run(pp.opts.Mission)
				outcomes[job.point][job.rep] = repOutcome{res: res, err: err}
			}
		}()
	}
	wg.Wait()

	// Reduce in (point, replication) order — the same order-sensitivity
	// argument as san.RunReplications, extended to the whole sweep.
	result := &Result{Options: opts, Points: make([]PointResult, 0, len(points))}
	for i, pt := range points {
		pp := plans[i]
		if pp.buildErr != nil {
			return nil, fmt.Errorf("sweep: point %d (%s): %w", i, pt.label(), pp.buildErr)
		}
		study := san.NewStudyResult(pp.rewards, pp.opts)
		if analytic[i] != nil {
			// Synthesize the study from the exact analytic answer: two
			// identical replications give the exact mean, zero variance, and
			// zero-width intervals through the unchanged reduction path.
			res := san.Result{Rewards: analytic[i], FinalTime: pp.opts.Mission}
			study.Add(res)
			study.Add(res)
		} else {
			for rep, out := range outcomes[i] {
				if out.err != nil {
					return nil, fmt.Errorf("sweep: point %d (%s) replication %d: %w", i, pt.label(), rep, out.err)
				}
				study.Add(out.res)
			}
		}
		m, err := abe.MeasuresFromStudy(pt.Config, study)
		if err != nil {
			return nil, fmt.Errorf("sweep: point %d (%s): %w", i, pt.label(), err)
		}
		// The model_stats view: size as evaluated next to the flat
		// expansion. Flat points read it off the already-built model; lumped
		// points (in any of their forms, including a direct Storage.Lumped
		// opt-in) pay one extra flat-expansion build for the comparison —
		// the lumped rebuild inside ModelStats is a few dozen objects.
		var ms abe.ModelStats
		if pt.Config.LumpsAnything() {
			var err error
			ms, err = pt.Config.ModelStats()
			if err != nil {
				return nil, fmt.Errorf("sweep: point %d (%s) model stats: %w", i, pt.label(), err)
			}
		} else {
			built := pp.compiled.Stats()
			ms = abe.ModelStats{
				Places: built.Places, Activities: built.Activities,
				FlatPlaces: built.Places, FlatActivities: built.Activities,
			}
		}
		result.TotalEvents += study.TotalEvents
		result.Points = append(result.Points, PointResult{
			Label: pt.label(), Seed: seeds[i], Measures: m, ModelStats: ms, Solver: solverInfo[i],
		})
	}
	return result, nil
}

// ---------------------------------------------------------------------------
// Machine-readable report
// ---------------------------------------------------------------------------

// Report is the machine-readable form of a sweep result (see Result.Report).
// The schema is documented in ROADMAP.md; it deliberately excludes execution
// details such as Parallelism so reports are byte-identical however the sweep
// was scheduled.
type Report struct {
	MissionHours float64       `json:"mission_hours"`
	Replications int           `json:"replications"`
	Confidence   float64       `json:"confidence"`
	Seed         uint64        `json:"seed"`
	TotalEvents  uint64        `json:"total_events"`
	Points       []ReportPoint `json:"points"`
}

// ReportPoint is one sweep point of a Report.
type ReportPoint struct {
	Label                    string                    `json:"label"`
	Seed                     uint64                    `json:"seed"`
	OSSPairs                 int                       `json:"oss_pairs"`
	TotalDisks               int                       `json:"total_disks"`
	StorageAvailability      float64                   `json:"storage_availability"`
	CFSAvailability          float64                   `json:"cfs_availability"`
	ClusterUtility           float64                   `json:"cluster_utility"`
	DiskReplacementsPerWeek  float64                   `json:"disk_replacements_per_week"`
	LostJobsTransientPerYear float64                   `json:"lost_jobs_transient_per_year"`
	LostJobsCFSPerYear       float64                   `json:"lost_jobs_cfs_per_year"`
	ModelStats               ReportModelStats          `json:"model_stats"`
	Solver                   ReportSolver              `json:"solver"`
	Intervals                map[string]ReportInterval `json:"intervals"`
}

// ReportSolver records how the point was answered: "uniformization" when the
// structural certificate proved the solver preconditions and the point's
// measures are exact (zero-width intervals), "uniformization-approx" when the
// answer is exact for a certified approximate phase-type surrogate (the
// per-activity CDF distance bounds are in the certificate's approximations),
// "simulation" otherwise — with the certificate's structured refusals (or the
// ForceSimulation override, or a numerical solver error) as the reasons.
type ReportSolver struct {
	Method      string           `json:"method"`
	Reasons     []string         `json:"reasons,omitempty"`
	Certificate *san.Certificate `json:"certificate,omitempty"`
}

// ReportModelStats is the model_stats view of a point: the size of the
// model as evaluated (lumped where the configuration opted in) next to its
// flat expansion.
type ReportModelStats struct {
	Places         int  `json:"places"`
	Activities     int  `json:"activities"`
	FlatPlaces     int  `json:"flat_places"`
	FlatActivities int  `json:"flat_activities"`
	Lumped         bool `json:"lumped"`
}

// ReportInterval is a confidence interval in a Report, in the same units as
// the headline field it accompanies.
type ReportInterval struct {
	Mean       float64 `json:"mean"`
	HalfWidth  float64 `json:"half_width"`
	Confidence float64 `json:"confidence"`
	N          int     `json:"n"`
}

func reportInterval(ci stats.Interval) ReportInterval {
	return ReportInterval{Mean: ci.Mean, HalfWidth: ci.HalfWidth, Confidence: ci.Confidence, N: ci.N}
}

// Report returns the machine-readable form of the result.
func (r *Result) Report() Report {
	rep := Report{
		MissionHours: r.Options.Mission,
		Replications: r.Options.Replications,
		Confidence:   r.Options.Confidence,
		Seed:         r.Options.Seed,
		TotalEvents:  r.TotalEvents,
		Points:       make([]ReportPoint, 0, len(r.Points)),
	}
	for _, pt := range r.Points {
		m := pt.Measures
		p := ReportPoint{
			Label:                    pt.Label,
			Seed:                     pt.Seed,
			OSSPairs:                 m.Config.TotalOSSPairs(),
			TotalDisks:               m.Config.Storage.TotalDisks(),
			StorageAvailability:      m.StorageAvailability,
			CFSAvailability:          m.CFSAvailability,
			ClusterUtility:           m.ClusterUtility,
			DiskReplacementsPerWeek:  m.DiskReplacementsPerWeek,
			LostJobsTransientPerYear: m.LostJobsTransientPerYear,
			LostJobsCFSPerYear:       m.LostJobsCFSPerYear,
			ModelStats: ReportModelStats{
				Places:         pt.ModelStats.Places,
				Activities:     pt.ModelStats.Activities,
				FlatPlaces:     pt.ModelStats.FlatPlaces,
				FlatActivities: pt.ModelStats.FlatActivities,
				Lumped:         pt.ModelStats.Lumped,
			},
			Solver: ReportSolver{
				Method:      pt.Solver.Method,
				Reasons:     pt.Solver.Reasons,
				Certificate: pt.Solver.Certificate,
			},
			Intervals: make(map[string]ReportInterval, len(m.Intervals)),
		}
		// Map-to-map copy; JSON encoding sorts the keys, so visit order
		// never reaches the report bytes.
		for name, ci := range m.Intervals { //lint:sorted
			p.Intervals[name] = reportInterval(ci)
		}
		rep.Points = append(rep.Points, p)
	}
	return rep
}

// JSON returns the sweep result as indented JSON (map keys sorted, execution
// details excluded), suitable for diffing and downstream plotting.
func (r *Result) JSON() (string, error) { return report.ToJSON(r.Report()) }

// Table renders the sweep as a design-comparison style text table.
func (r *Result) Table(title string) report.Table {
	t := report.Table{
		Title: title,
		Headers: []string{
			"Point", "Storage availability", "CFS availability", "Cluster utility", "Disks replaced/week",
		},
	}
	for _, pt := range r.Points {
		m := pt.Measures
		t.AddRow(pt.Label,
			fmt.Sprintf("%.5f", m.StorageAvailability),
			fmt.Sprintf("%.4f", m.CFSAvailability),
			fmt.Sprintf("%.4f", m.ClusterUtility),
			fmt.Sprintf("%.2f", m.DiskReplacementsPerWeek),
		)
	}
	return t
}
