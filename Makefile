GO ?= go

.PHONY: all build test race vet bench cover examples clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the packages with concurrent replication runners, the sharded
# sweep engine, the snapshot/clone machinery of the rare-event engine, and
# the calibration pipeline feeding the sweep (paper_full).
race:
	$(GO) test -race ./internal/san/... ./internal/sweep/... ./internal/rareevent/... ./internal/calibrate/...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

# Smoke-run every example binary end-to-end.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/disk_sensitivity
	$(GO) run ./examples/raid_tradeoff
	$(GO) run ./examples/petascale_scaling
	$(GO) run ./examples/log_analysis
	$(GO) run ./examples/calibrated_abe
	$(GO) run ./examples/rare_event

# Smoke-run the single-shot paper reproduction (tiny replication counts) and
# check it emits one valid JSON document.
paper-smoke:
	$(GO) run ./cmd/abesim -experiment paper_full -quick -replications 4 -mission 2190 -json > /dev/null

clean:
	$(GO) clean ./...
	rm -f coverage.out
