package san

import (
	"errors"

	"repro/internal/rng"
)

// ModelStats summarizes the size of a model — the quantity the lumping layer
// exists to shrink. Reports publish it as the "model_stats" view so the
// flat-vs-lumped trade is visible next to every result.
type ModelStats struct {
	// Places is the number of places (state variables).
	Places int
	// Activities is the number of activities (event sources).
	Activities int
}

// Stats returns the size of the model.
func (m *Model) Stats() ModelStats {
	return ModelStats{Places: m.NumPlaces(), Activities: m.NumActivities()}
}

// CompiledModel is the immutable, simulation-ready form of a Model: the
// validated structure plus the derived indexes every replication needs — the
// place-to-dependent-activities index, the per-activity impulse-reward
// bindings, the instantaneous-activity list, and the initial marking. It is
// built once by Compile and then shared read-only by any number of
// Simulators (one per worker goroutine), so the O(model) index derivation is
// paid per study, not per worker or per replication.
//
// The Model must not be mutated after Compile: the compiled indexes snapshot
// the structure at compile time and would silently go stale.
type CompiledModel struct {
	model   *Model
	rewards []RewardVariable
	initial []int

	// dependents[placeIndex] lists activities whose enabling can change when
	// that place's marking changes.
	dependents [][]*Activity

	// impulsesByActivity[activityIndex] lists the impulse rewards earned when
	// that activity completes, pre-resolved from the reward variables'
	// name-keyed maps so the hot path avoids string lookups.
	impulsesByActivity [][]impulseBinding

	// instantaneous caches the model's instantaneous activities so the
	// vanishing-marking resolution step does not scan every activity when (as
	// in the CFS models) there are none.
	instantaneous []*Activity
}

// Compile validates the model and reward variables and derives the
// simulation indexes. The returned CompiledModel is immutable and safe for
// concurrent use.
func Compile(model *Model, rewards []RewardVariable) (*CompiledModel, error) {
	if model == nil {
		return nil, errors.New("san: nil model")
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	for _, rv := range rewards {
		if err := rv.validate(model); err != nil {
			return nil, err
		}
	}
	cm := &CompiledModel{
		model:   model,
		rewards: rewards,
		initial: model.InitialMarking(),
	}
	cm.buildDependents()
	cm.buildImpulseIndex()
	for _, a := range model.activities {
		if a.kind == Instantaneous {
			cm.instantaneous = append(cm.instantaneous, a)
		}
	}
	return cm, nil
}

// Model returns the underlying model. Callers must treat it as read-only.
func (cm *CompiledModel) Model() *Model { return cm.model }

// Rewards returns the reward variables the model was compiled with.
func (cm *CompiledModel) Rewards() []RewardVariable { return cm.rewards }

// Stats returns the size of the compiled model.
func (cm *CompiledModel) Stats() ModelStats { return cm.model.Stats() }

// NewSimulator returns a simulator over the compiled model drawing
// randomness from stream. Unlike the package-level NewSimulator it performs
// no validation or index derivation, so it is cheap enough to call per
// worker (or even per replication).
func (cm *CompiledModel) NewSimulator(stream *rng.Stream) (*Simulator, error) {
	if stream == nil {
		return nil, errors.New("san: nil random stream")
	}
	return &Simulator{
		cm:             cm,
		stream:         stream,
		maxInstFirings: 10000,
		seenGeneration: make([]uint64, cm.model.NumActivities()),
	}, nil
}

// buildImpulseIndex resolves the name-keyed impulse maps of every reward
// variable to activity indices once, so completions do not perform string
// map lookups.
func (cm *CompiledModel) buildImpulseIndex() {
	cm.impulsesByActivity = make([][]impulseBinding, cm.model.NumActivities())
	for ri, rv := range cm.rewards {
		// Sorted names so the per-activity binding order (and with it the
		// floating-point accumulation order at each completion) is the same
		// on every run.
		for _, actName := range sortedKeys(rv.Impulses) {
			a := cm.model.Activity(actName)
			if a == nil {
				continue // validated earlier; defensive
			}
			cm.impulsesByActivity[a.index] = append(cm.impulsesByActivity[a.index], impulseBinding{rewardIndex: ri, fn: rv.Impulses[actName]})
		}
	}
}

// buildDependents indexes, for each place, the activities whose enabling
// condition reads that place (through input arcs or declared gate reads).
func (cm *CompiledModel) buildDependents() {
	cm.dependents = make([][]*Activity, cm.model.NumPlaces())
	add := func(p *Place, a *Activity) {
		for _, existing := range cm.dependents[p.index] {
			if existing == a {
				return
			}
		}
		cm.dependents[p.index] = append(cm.dependents[p.index], a)
	}
	for _, a := range cm.model.activities {
		for _, arc := range a.inputArcs {
			add(arc.Place, a)
		}
		for _, g := range a.inputGates {
			for _, p := range g.Reads {
				add(p, a)
			}
		}
	}
}
