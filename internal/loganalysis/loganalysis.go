// Package loganalysis implements the failure-log analysis pipeline of the
// paper's Section 3.3: it parses SAN and compute logs, applies temporal and
// causal filtering to extract failure events, and computes the summaries the
// paper publishes — the outage/availability table (Table 1), per-day Lustre
// mount-failure counts (Table 2), job execution statistics (Table 3), and
// the disk-failure survival analysis (Table 4). The derived rates are what
// parameterize the stochastic model (Table 5).
package loganalysis

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"time"

	"repro/internal/loggen"
	"repro/internal/survival"
)

// ErrEmptyLog reports an analysis invoked on an empty event set.
var ErrEmptyLog = errors.New("loganalysis: empty log")

// Parse reads a textual log stream into events (convenience wrapper over
// loggen.Read so callers only import this package).
func Parse(r io.Reader) ([]loggen.Event, error) {
	return loggen.Read(r)
}

// ---------------------------------------------------------------------------
// Table 1: outages and availability
// ---------------------------------------------------------------------------

// Outage is one CFS-visible outage extracted from the SAN log.
type Outage struct {
	Cause string
	Start time.Time
	End   time.Time
}

// Hours returns the outage duration in hours.
func (o Outage) Hours() float64 { return o.End.Sub(o.Start).Hours() }

// OutageReport is the availability summary derived from the SAN log.
type OutageReport struct {
	// Outages lists the extracted outages in start order.
	Outages []Outage
	// WindowStart/WindowEnd bound the observation window.
	WindowStart time.Time
	WindowEnd   time.Time
	// DowntimeHours is the total (coalesced) downtime.
	DowntimeHours float64
	// RawOutageHours is the sum of the individual outage durations before
	// coalescing. When outages overlap, RawOutageHours exceeds DowntimeHours.
	RawOutageHours float64
	// Availability is 1 - downtime/window.
	Availability float64
	// DowntimeByCause attributes each outage's raw (uncoalesced) duration to
	// its cause. Invariant: the per-cause hours sum to RawOutageHours, so with
	// overlapping mixed-cause outages the sum over causes can exceed the
	// coalesced DowntimeHours — the split answers "how long was each cause
	// active", not "how much wall-clock downtime does each cause own".
	DowntimeByCause map[string]float64
}

// MeanOutageHours is the mean duration of the individual outages. It is
// computed from the raw per-outage durations: coalescing is a wall-clock
// downtime concept, and dividing coalesced downtime by the uncoalesced outage
// count would understate the mean whenever outages overlap.
func (r OutageReport) MeanOutageHours() float64 {
	if len(r.Outages) == 0 {
		return 0
	}
	return r.RawOutageHours / float64(len(r.Outages))
}

// OutageDurations returns the raw per-outage durations in hours, in outage
// order — the empirical sample the calibration pipeline fits outage-duration
// distributions from.
func (r OutageReport) OutageDurations() []float64 {
	durations := make([]float64, len(r.Outages))
	for i, o := range r.Outages {
		durations[i] = o.Hours()
	}
	return durations
}

// AnalyzeOutages extracts outages from SAN-log events and computes the CFS
// availability over the log window. Overlapping outages are coalesced
// (causal filtering: a network blip reported during an I/O hardware outage
// is not double-counted); an OUTAGE_START without a matching OUTAGE_END is
// closed at the window end.
func AnalyzeOutages(events []loggen.Event) (OutageReport, error) {
	if len(events) == 0 {
		return OutageReport{}, ErrEmptyLog
	}
	sorted := sortedByTime(events)
	windowStart := sorted[0].Time
	windowEnd := sorted[len(sorted)-1].Time

	var outages []Outage
	open := map[string]int{} // node -> index of the outage still awaiting its end record
	for _, e := range sorted {
		switch e.Kind {
		case loggen.OutageStart:
			if _, inProgress := open[e.Node]; !inProgress {
				outages = append(outages, Outage{Cause: e.Attrs["cause"], Start: e.Time, End: windowEnd})
				open[e.Node] = len(outages) - 1
			}
		case loggen.OutageEnd:
			if idx, inProgress := open[e.Node]; inProgress {
				outages[idx].End = e.Time
				delete(open, e.Node)
			}
		}
	}
	if len(outages) == 0 {
		return OutageReport{}, fmt.Errorf("loganalysis: no outage records in log covering %s..%s", windowStart, windowEnd)
	}

	report := OutageReport{
		Outages:         outages,
		WindowStart:     windowStart,
		WindowEnd:       windowEnd,
		DowntimeByCause: map[string]float64{},
	}
	// Coalesce overlapping outages for total downtime while attributing
	// per-cause downtime to each outage individually.
	sort.Slice(outages, func(i, j int) bool { return outages[i].Start.Before(outages[j].Start) })
	var mergedEnd time.Time
	for _, o := range outages {
		report.DowntimeByCause[o.Cause] += o.Hours()
		report.RawOutageHours += o.Hours()
		start := o.Start
		if start.Before(mergedEnd) {
			start = mergedEnd
		}
		if o.End.After(start) {
			report.DowntimeHours += o.End.Sub(start).Hours()
		}
		if o.End.After(mergedEnd) {
			mergedEnd = o.End
		}
	}
	window := windowEnd.Sub(windowStart).Hours()
	if window <= 0 {
		return OutageReport{}, errors.New("loganalysis: degenerate observation window")
	}
	report.Availability = 1 - report.DowntimeHours/window
	return report, nil
}

// ---------------------------------------------------------------------------
// Table 2: Lustre mount failures per day
// ---------------------------------------------------------------------------

// MountFailureDay aggregates the compute nodes that reported a Lustre mount
// failure on one calendar day.
type MountFailureDay struct {
	Date  time.Time // midnight UTC of the day
	Nodes int       // distinct nodes that reported at least one failure
}

// AnalyzeMountFailures aggregates MOUNT_FAILURE events per day, counting
// each node at most once per day (temporal filtering of repeated reports
// from the same node during one incident).
func AnalyzeMountFailures(events []loggen.Event) ([]MountFailureDay, error) {
	if len(events) == 0 {
		return nil, ErrEmptyLog
	}
	perDay := map[time.Time]map[string]bool{}
	for _, e := range events {
		if e.Kind != loggen.MountFailure {
			continue
		}
		day := e.Time.UTC().Truncate(24 * time.Hour)
		if perDay[day] == nil {
			perDay[day] = map[string]bool{}
		}
		perDay[day][e.Node] = true
	}
	days := make([]MountFailureDay, 0, len(perDay))
	for day, nodes := range perDay {
		days = append(days, MountFailureDay{Date: day, Nodes: len(nodes)})
	}
	sort.Slice(days, func(i, j int) bool { return days[i].Date.Before(days[j].Date) })
	return days, nil
}

// ---------------------------------------------------------------------------
// Table 3: job statistics
// ---------------------------------------------------------------------------

// JobStats summarizes job submissions and failures (the paper's Table 3).
type JobStats struct {
	TotalJobs         int
	TransientFailures int
	OtherFailures     int
	WindowStart       time.Time
	WindowEnd         time.Time
}

// FailureRatio returns how many times more likely a transient failure is
// than another failure (the paper reports ~5x). A log with transient failures
// but no other failures yields +Inf — transient failures dominate without
// bound — which keeps "no other failures" distinguishable from "no transient
// failures" (ratio 0). A log with no failures at all yields 0.
func (s JobStats) FailureRatio() float64 {
	if s.OtherFailures == 0 {
		if s.TransientFailures > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return float64(s.TransientFailures) / float64(s.OtherFailures)
}

// JobFailureFraction returns failed jobs (any cause) over submitted jobs.
func (s JobStats) JobFailureFraction() float64 {
	if s.TotalJobs == 0 {
		return 0
	}
	return float64(s.TransientFailures+s.OtherFailures) / float64(s.TotalJobs)
}

// ClusterUtility returns the paper's CU measure derived from the log:
// 1 - failedJobs/totalJobs.
func (s JobStats) ClusterUtility() float64 { return 1 - s.JobFailureFraction() }

// AnalyzeJobs computes job statistics from compute-log events.
func AnalyzeJobs(events []loggen.Event) (JobStats, error) {
	if len(events) == 0 {
		return JobStats{}, ErrEmptyLog
	}
	stats := JobStats{}
	first, last := time.Time{}, time.Time{}
	for _, e := range events {
		if first.IsZero() || e.Time.Before(first) {
			first = e.Time
		}
		if e.Time.After(last) {
			last = e.Time
		}
		switch e.Kind {
		case loggen.JobSubmit:
			stats.TotalJobs++
		case loggen.JobEnd:
			switch e.Attrs["status"] {
			case loggen.JobFailedTransient:
				stats.TransientFailures++
			case loggen.JobFailedFileSystem:
				stats.OtherFailures++
			}
		}
	}
	if stats.TotalJobs == 0 {
		return JobStats{}, errors.New("loganalysis: no job records in compute log")
	}
	stats.WindowStart = first
	stats.WindowEnd = last
	return stats, nil
}

// ---------------------------------------------------------------------------
// Table 4: disk failures and survival analysis
// ---------------------------------------------------------------------------

// DiskFailureDay aggregates disk failures per calendar day.
type DiskFailureDay struct {
	Date     time.Time
	Failures int
}

// DiskReport is the disk-failure summary and Weibull fit (Table 4).
type DiskReport struct {
	// ByDay lists the failure counts per day with at least one failure.
	ByDay []DiskFailureDay
	// TotalFailures is the number of DISK_FAILED records.
	TotalFailures int
	// Replacements is the number of DISK_REPLACED records.
	Replacements int
	// PerWeek is the average number of failures per week over the window.
	PerWeek float64
	// RepairHours lists the observed failure-to-replacement lags per disk
	// incident, in event order — the empirical sample the calibration
	// pipeline fits replacement-time distributions from.
	RepairHours []float64
	// Fit is the censored Weibull fit over the disk population.
	Fit survival.WeibullFit
}

// AnalyzeDisks aggregates disk incidents and performs the survival analysis.
// population is the number of monitored disk slots (480 for ABE's scratch
// partition); it must cover every slot that reports a failure, or the risk
// set would be silently under-censored, so a log naming more distinct failed
// slots than the population is an error. Exposure is counted per disk
// incident: each slot is a renewal process, so a replaced disk that fails
// again contributes a second failure observation, the working replacement
// disk at the window end contributes a right-censored observation at its own
// age, and slots that never failed are right-censored at the window length.
// Failure ages are taken from the log's age_hours attribute when present,
// otherwise from the slot's last renewal (replacement) time.
func AnalyzeDisks(events []loggen.Event, population int) (DiskReport, error) {
	if len(events) == 0 {
		return DiskReport{}, ErrEmptyLog
	}
	if population < 1 {
		return DiskReport{}, fmt.Errorf("loganalysis: invalid disk population %d", population)
	}
	sorted := sortedByTime(events)
	windowStart := sorted[0].Time
	windowEnd := sorted[len(sorted)-1].Time
	windowHours := windowEnd.Sub(windowStart).Hours()

	report := DiskReport{}
	perDay := map[time.Time]int{}
	var obs []survival.Observation
	// Per-slot renewal state: when the slot's current disk was installed
	// (window start for the original population) and the failure, if any,
	// still awaiting its replacement record.
	lastRenewal := map[string]time.Time{}
	pendingFail := map[string]time.Time{}
	failedDisks := map[string]bool{}
	for _, e := range sorted {
		switch e.Kind {
		case loggen.DiskFailed:
			report.TotalFailures++
			day := e.Time.UTC().Truncate(24 * time.Hour)
			perDay[day]++
			failedDisks[e.Node] = true
			installed := windowStart
			if t, ok := lastRenewal[e.Node]; ok {
				installed = t
			}
			age := e.Time.Sub(installed).Hours()
			if s, ok := e.Attrs["age_hours"]; ok {
				if parsed, err := strconv.ParseFloat(s, 64); err == nil && parsed > 0 {
					age = parsed
				}
			}
			if age <= 0 {
				age = 1
			}
			obs = append(obs, survival.Observation{Time: age, Event: true})
			pendingFail[e.Node] = e.Time
		case loggen.DiskReplaced:
			report.Replacements++
			if failedAt, ok := pendingFail[e.Node]; ok {
				report.RepairHours = append(report.RepairHours, e.Time.Sub(failedAt).Hours())
				delete(pendingFail, e.Node)
			}
			lastRenewal[e.Node] = e.Time
		}
	}
	if report.TotalFailures == 0 {
		return DiskReport{}, errors.New("loganalysis: no disk failures in log")
	}
	if population < len(failedDisks) {
		return DiskReport{}, fmt.Errorf("loganalysis: impossible disk population %d: log names %d distinct failed disks",
			population, len(failedDisks))
	}
	for day, n := range perDay {
		report.ByDay = append(report.ByDay, DiskFailureDay{Date: day, Failures: n})
	}
	sort.Slice(report.ByDay, func(i, j int) bool { return report.ByDay[i].Date.Before(report.ByDay[j].Date) })
	if windowHours > 0 {
		report.PerWeek = float64(report.TotalFailures) / (windowHours / 168)
	}

	// Right-censor the working replacement disks: a slot whose last failure
	// was repaired holds a new disk that survived from its installation to
	// the window end. Iterate in sorted node order so the observation list is
	// deterministic.
	replacedNodes := make([]string, 0, len(lastRenewal))
	for node := range lastRenewal {
		replacedNodes = append(replacedNodes, node)
	}
	sort.Strings(replacedNodes)
	for _, node := range replacedNodes {
		if _, stillDown := pendingFail[node]; stillDown {
			continue
		}
		// An orphan DISK_REPLACED with no preceding failure leaves the slot in
		// the never-failed pool below; censoring it here too would count the
		// slot twice.
		if !failedDisks[node] {
			continue
		}
		if age := windowEnd.Sub(lastRenewal[node]).Hours(); age > 0 {
			obs = append(obs, survival.Observation{Time: age, Event: false})
		}
	}
	// Right-censor the disks that survived the whole window. Their exposure
	// is at least the window length; without per-disk install dates we use
	// the window length itself, which matches the paper's treatment of the
	// truncated observation period.
	censorTime := windowHours
	if censorTime <= 0 {
		censorTime = 1
	}
	for i := len(failedDisks); i < population; i++ {
		obs = append(obs, survival.Observation{Time: censorTime, Event: false})
	}
	fit, err := survival.FitWeibull(obs)
	if err != nil {
		return DiskReport{}, fmt.Errorf("loganalysis: weibull fit: %w", err)
	}
	report.Fit = fit
	return report, nil
}

// ---------------------------------------------------------------------------
// Model-parameter extraction (Table 5 inputs)
// ---------------------------------------------------------------------------

// DerivedRates are the model parameters extracted from the logs, feeding the
// stochastic model of Section 4. The JSON tags are part of the machine-
// readable calibration report emitted by abesim -experiment paper_full.
type DerivedRates struct {
	// OutagesPerMonth is the observed CFS outage rate.
	OutagesPerMonth float64 `json:"outages_per_month"`
	// MeanOutageHours is the mean raw (uncoalesced) outage duration.
	MeanOutageHours float64 `json:"mean_outage_hours"`
	// CFSAvailability is the availability from the outage log.
	CFSAvailability float64 `json:"cfs_availability"`
	// TransientJobFailureFraction and OtherJobFailureFraction are per-job
	// failure probabilities.
	TransientJobFailureFraction float64 `json:"transient_job_failure_fraction"`
	OtherJobFailureFraction     float64 `json:"other_job_failure_fraction"`
	// JobsPerHour is the observed submission rate.
	JobsPerHour float64 `json:"jobs_per_hour"`
	// DiskWeibullShape and DiskMTBFHours come from the survival analysis.
	DiskWeibullShape float64 `json:"disk_weibull_shape"`
	DiskMTBFHours    float64 `json:"disk_mtbf_hours"`
	// DiskReplacementsPerWeek is the observed replacement pace.
	DiskReplacementsPerWeek float64 `json:"disk_replacements_per_week"`
}

// DeriveRates runs the full pipeline over both logs and returns the model
// parameters.
func DeriveRates(logs *loggen.Logs, diskPopulation int) (DerivedRates, error) {
	if logs == nil {
		return DerivedRates{}, ErrEmptyLog
	}
	outages, err := AnalyzeOutages(logs.SAN)
	if err != nil {
		return DerivedRates{}, err
	}
	jobs, err := AnalyzeJobs(logs.Compute)
	if err != nil {
		return DerivedRates{}, err
	}
	disks, err := AnalyzeDisks(logs.SAN, diskPopulation)
	if err != nil {
		return DerivedRates{}, err
	}
	return DeriveRatesFromReports(outages, jobs, disks), nil
}

// DeriveRatesFromReports computes the model parameters from already-run
// analyses, so callers that need the underlying reports too (the calibration
// pipeline) do not pay for a second pass over the logs.
func DeriveRatesFromReports(outages OutageReport, jobs JobStats, disks DiskReport) DerivedRates {
	sanWindowHours := outages.WindowEnd.Sub(outages.WindowStart).Hours()
	jobWindowHours := jobs.WindowEnd.Sub(jobs.WindowStart).Hours()
	rates := DerivedRates{
		CFSAvailability:             outages.Availability,
		TransientJobFailureFraction: float64(jobs.TransientFailures) / float64(jobs.TotalJobs),
		OtherJobFailureFraction:     float64(jobs.OtherFailures) / float64(jobs.TotalJobs),
		DiskWeibullShape:            disks.Fit.Shape,
		DiskMTBFHours:               disks.Fit.MTBF(),
		DiskReplacementsPerWeek:     disks.PerWeek,
	}
	if sanWindowHours > 0 {
		rates.OutagesPerMonth = float64(len(outages.Outages)) / (sanWindowHours / 720)
	}
	rates.MeanOutageHours = outages.MeanOutageHours()
	if jobWindowHours > 0 {
		rates.JobsPerHour = float64(jobs.TotalJobs) / jobWindowHours
	}
	return rates
}

// sortedByTime returns a copy of events sorted by timestamp.
func sortedByTime(events []loggen.Event) []loggen.Event {
	out := make([]loggen.Event, len(events))
	copy(out, events)
	sort.Slice(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	return out
}
