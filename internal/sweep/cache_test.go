package sweep

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/abe"
)

// cachePoints mixes duplicate analytic configurations (MiniExponential
// certifies and solves) with a simulated point, so one sweep exercises the
// miss, hit, and refusal paths of the solve cache at once.
func cachePoints() []Point {
	return []Point{
		{Label: "mini-a", Config: abe.MiniExponential()},
		{Label: "abe-sim", Config: abe.ABE()},
		{Label: "mini-b", Config: abe.MiniExponential()},
		{Label: "mini-c", Config: abe.MiniExponential()},
	}
}

// solverCaches unmarshals the per-point solver cache labels from a sweep's
// JSON report.
func solverCaches(t *testing.T, res *Result) []string {
	t.Helper()
	text, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Points []struct {
			Solver struct {
				Method string `json:"method"`
				Cache  string `json:"cache"`
			} `json:"solver"`
		} `json:"points"`
	}
	if err := json.Unmarshal([]byte(text), &doc); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	labels := make([]string, len(doc.Points))
	for i, p := range doc.Points {
		labels[i] = p.Solver.Cache
	}
	return labels
}

// withoutCacheLabels strips the cache labels so results can be compared for
// the everything-else-identical property of a hit.
func withoutCacheLabels(points []PointResult) []PointResult {
	out := append([]PointResult(nil), points...)
	for i := range out {
		out[i].Solver.Cache = ""
	}
	return out
}

func TestSweepCacheLabelsDuplicatePoints(t *testing.T) {
	res, err := Run(cachePoints(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	// The first holder of each fingerprint is the miss; later duplicates are
	// hits. The refused ABE point is computed (and cached) too.
	want := []string{CacheMiss, CacheMiss, CacheHit, CacheHit}
	got := make([]string, len(res.Points))
	for i, pt := range res.Points {
		got[i] = pt.Solver.Cache
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cache labels = %v, want %v", got, want)
	}
	if !reflect.DeepEqual(solverCaches(t, res), want) {
		t.Errorf("JSON cache labels = %v, want %v", solverCaches(t, res), want)
	}
	// A hit shares the miss's exact outcome: identical method, certificate,
	// and (seed aside) identical exact measures.
	a, b, c := res.Points[0], res.Points[2], res.Points[3]
	for _, dup := range []PointResult{b, c} {
		if dup.Solver.Method != a.Solver.Method {
			t.Errorf("duplicate point method %q != %q", dup.Solver.Method, a.Solver.Method)
		}
		if !reflect.DeepEqual(dup.Measures, a.Measures) {
			t.Errorf("duplicate point measures differ:\n%+v\n%+v", dup.Measures, a.Measures)
		}
	}
	if a.Solver.Method != MethodUniformization {
		t.Errorf("MiniExponential method = %q, want uniformization", a.Solver.Method)
	}
	if res.Points[1].Solver.Method != MethodSimulation {
		t.Errorf("ABE point method = %q, want simulation", res.Points[1].Solver.Method)
	}
}

func TestSweepCacheWarmReuseAcrossSweeps(t *testing.T) {
	opts := testOpts()
	cold, err := Run(cachePoints(), opts)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewSolveCache()
	first, err := RunWithCache(cachePoints(), opts, cache)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunWithCache(cachePoints(), opts, cache)
	if err != nil {
		t.Fatal(err)
	}
	// The warm sweep reuses every memoized outcome.
	want := []string{CacheHit, CacheHit, CacheHit, CacheHit}
	got := make([]string, len(second.Points))
	for i, pt := range second.Points {
		got[i] = pt.Solver.Cache
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("warm sweep cache labels = %v, want %v", got, want)
	}
	// A hit is bit-identical to a recompute: cache labels aside, the warm
	// sweep and a cold Run agree exactly.
	if !reflect.DeepEqual(withoutCacheLabels(second.Points), withoutCacheLabels(cold.Points)) {
		t.Error("warm sweep results differ from a cold recompute")
	}
	if !reflect.DeepEqual(withoutCacheLabels(first.Points), withoutCacheLabels(cold.Points)) {
		t.Error("caller-cache sweep results differ from a cold Run")
	}
}

func TestSweepCacheBitIdenticalAcrossParallelism(t *testing.T) {
	opts := testOpts()
	opts.Parallelism = 1
	seq, err := Run(cachePoints(), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallelism = 4
	par, err := Run(cachePoints(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Points, par.Points) {
		t.Error("cached sweep results differ across Parallelism")
	}
	seqJSON, err := seq.JSON()
	if err != nil {
		t.Fatal(err)
	}
	parJSON, err := par.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if seqJSON != parJSON {
		t.Error("cached sweep JSON differs across Parallelism")
	}
}

func TestSweepCacheForceSimulationUnlabeled(t *testing.T) {
	points := []Point{
		{Label: "analytic", Config: abe.MiniExponential()},
		{Label: "forced", Config: abe.MiniExponential(), ForceSimulation: true},
	}
	res, err := Run(points, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Points[0].Solver.Cache; got != CacheMiss {
		t.Errorf("analytic point cache = %q, want miss", got)
	}
	// A forced point does no cacheable solver work: no label in the result
	// and no cache field in its JSON (omitempty).
	if got := res.Points[1].Solver.Cache; got != "" {
		t.Errorf("forced point cache = %q, want empty", got)
	}
	if labels := solverCaches(t, res); labels[1] != "" {
		t.Errorf("forced point JSON cache = %q, want absent", labels[1])
	}
}

func TestSweepCacheFitTierKeysSeparately(t *testing.T) {
	// The same configuration under a different solver cascade (fit tolerance
	// enabled) must key separately: a warm cache from the plain cascade must
	// not answer for the fitted one.
	cache := NewSolveCache()
	plain := testOpts()
	point := []Point{{Config: abe.MiniWeibull()}}
	first, err := RunWithCache(point, plain, cache)
	if err != nil {
		t.Fatal(err)
	}
	if first.Points[0].Solver.Method != MethodSimulation {
		t.Fatalf("plain cascade method = %q, want simulation", first.Points[0].Solver.Method)
	}
	fit := testOpts()
	fit.PHFitTolerance = 0.1
	second, err := RunWithCache(point, fit, cache)
	if err != nil {
		t.Fatal(err)
	}
	if got := second.Points[0].Solver.Cache; got != CacheMiss {
		t.Errorf("fitted cascade cache = %q, want miss (distinct tier key)", got)
	}
	if second.Points[0].Solver.Method != MethodUniformizationApprox {
		t.Errorf("fitted cascade method = %q, want uniformization-approx", second.Points[0].Solver.Method)
	}
}
