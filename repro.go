// Package repro reproduces "Scaling File Systems to Support Petascale
// Clusters: A Dependability Analysis to Support Informed Design Choices"
// (Gaonkar, Rozier, Tong, Sanders — DSN 2008 / UIUC CRHC-08-01).
//
// It re-implements, in pure Go with only the standard library, the stack the
// paper builds on: a stochastic-activity-network (SAN) modeling formalism
// and Monte Carlo simulator (the role Möbius plays in the original study),
// the failure-log analysis pipeline of NCSA's ABE cluster (on calibrated
// synthetic logs), the RAID6/DDN storage and OSS fail-over submodels, the
// composed cluster-file-system dependability model, and an experiment
// harness that regenerates every table and figure of the evaluation.
//
// This file is the stable facade for downstream users; the full APIs live in
// the internal packages (internal/abe, internal/san, internal/experiments,
// ...) and are exercised by the examples/ programs.
package repro

import (
	"repro/internal/abe"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/loganalysis"
	"repro/internal/loggen"
	"repro/internal/san"
)

// Version identifies the reproduction release.
const Version = "1.0.0"

// EvaluationOptions tunes the simulation studies run through this facade.
type EvaluationOptions struct {
	// Replications per design point; 0 selects a sensible default.
	Replications int
	// MissionHours per replication; 0 selects one year.
	MissionHours float64
	// Seed makes studies reproducible; 0 selects 1.
	Seed uint64
	// Quick trades accuracy for speed (benchmarks, smoke tests).
	Quick bool
}

func (o EvaluationOptions) sanOptions() san.Options {
	return san.Options{
		Mission:      o.MissionHours,
		Replications: o.Replications,
		Seed:         o.Seed,
		Confidence:   0.95,
	}
}

func (o EvaluationOptions) experimentOptions() experiments.Options {
	return experiments.Options{
		Replications: o.Replications,
		MissionHours: o.MissionHours,
		Seed:         o.Seed,
		Quick:        o.Quick,
	}
}

// ABEConfig returns the configuration of NCSA's ABE cluster file system as
// described in the paper's Section 3 and Table 5.
func ABEConfig() abe.Config { return abe.ABE() }

// PetascaleConfig returns the Blue Waters-class petascale configuration the
// paper scales the ABE design to.
func PetascaleConfig() abe.Config { return abe.Petascale() }

// Evaluate runs the composed dependability model for cfg and returns the
// paper's reward measures (storage availability, CFS availability, cluster
// utility, disk replacement rate) with 95% confidence intervals.
func Evaluate(cfg abe.Config, opts EvaluationOptions) (abe.Measures, error) {
	return abe.Evaluate(cfg, opts.sanOptions())
}

// ExperimentNames lists the table/figure experiments understood by
// RunExperiment (table1..table5, figure1..figure4, ablations).
func ExperimentNames() []string { return experiments.Names() }

// RunExperiment regenerates one of the paper's tables or figures and returns
// its rendered text output.
func RunExperiment(name string, opts EvaluationOptions) (string, error) {
	return experiments.Run(name, opts.experimentOptions())
}

// GenerateABELogs produces the calibrated synthetic failure logs substituted
// for NCSA's proprietary ABE logs (see DESIGN.md, substitutions).
func GenerateABELogs() (*loggen.Logs, error) {
	return loggen.Generate(loggen.ABEConfig())
}

// AnalyzeLogs runs the paper's log-analysis pipeline over a set of logs,
// returning the derived model parameters (availability, failure fractions,
// disk Weibull fit).
func AnalyzeLogs(logs *loggen.Logs, diskPopulation int) (loganalysis.DerivedRates, error) {
	return loganalysis.DeriveRates(logs, diskPopulation)
}

// CalibrateFromLogs applies log-derived rates to a base configuration,
// mirroring the paper's data-driven modeling approach.
func CalibrateFromLogs(logs *loggen.Logs, base abe.Config, diskPopulation int) (abe.Config, loganalysis.DerivedRates, error) {
	return core.CalibrateFromLogs(logs, base, diskPopulation)
}

// ReproducePaper runs the whole paper in one shot from the (synthetic)
// measured logs — analyze (Tables 1-4), calibrate the model with provenance
// (Table 5), run the scaling sweep from the derived parameters, and round-
// trip the calibration — and returns the machine-readable JSON document
// (the "paper_full" experiment; see internal/calibrate for the schema).
func ReproducePaper(opts EvaluationOptions) (string, error) {
	res, err := experiments.PaperFull(opts.experimentOptions())
	if err != nil {
		return "", err
	}
	return res.JSON()
}

// CompareDesigns evaluates several design alternatives side by side and
// returns a rendered comparison table.
func CompareDesigns(designs map[string]abe.Config, opts EvaluationOptions) (string, error) {
	choices := make([]core.DesignChoice, 0, len(designs))
	// Keep a deterministic order: sorted by name.
	names := make([]string, 0, len(designs))
	for name := range designs {
		names = append(names, name)
	}
	sortStrings(names)
	for _, name := range names {
		choices = append(choices, core.DesignChoice{Name: name, Config: designs[name]})
	}
	table, _, err := core.CompareDesigns(choices, opts.sanOptions())
	if err != nil {
		return "", err
	}
	return table.Render(), nil
}

// sortStrings is a minimal insertion sort to keep the facade free of extra
// imports.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
