package san

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/rng"
)

// TestAnalyzeCleanModel: a plain fail/repair model has no findings and
// CompileStrict accepts it.
func TestAnalyzeCleanModel(t *testing.T) {
	m := NewModel("clean")
	up := m.AddPlace("up", 1)
	down := m.AddPlace("down", 0)
	m.AddTimedActivity("fail", mustExp(t, 100)).AddInputArc(up, 1).AddOutputArc(down, 1)
	m.AddTimedActivity("repair", mustExp(t, 10)).AddInputArc(down, 1).AddOutputArc(up, 1)
	rewards := []RewardVariable{UpFraction("avail", func(r MarkingReader) bool { return r.Tokens(up) > 0 })}
	cm, err := CompileStrict(m, rewards)
	if err != nil {
		t.Fatalf("CompileStrict: %v", err)
	}
	rep := Analyze(cm)
	if !rep.Clean || len(rep.VanishingLoops) != 0 || len(rep.DeadActivities) != 0 || len(rep.UnreadPlaces) != 0 {
		t.Fatalf("expected clean report, got %+v", rep)
	}
	if rep.Places != 2 || rep.Activities != 2 || rep.Instantaneous != 0 {
		t.Fatalf("wrong counters: %+v", rep)
	}
}

// TestAnalyzeVanishingCycle: two instantaneous activities passing a token
// back and forth are the static form of the runtime ErrUnstableModel loop.
func TestAnalyzeVanishingCycle(t *testing.T) {
	m := NewModel("cycle")
	a := m.AddPlace("a", 1)
	b := m.AddPlace("b", 0)
	m.AddInstantaneousActivity("ping").AddInputArc(a, 1).AddOutputArc(b, 1)
	m.AddInstantaneousActivity("pong").AddInputArc(b, 1).AddOutputArc(a, 1)
	cm, err := Compile(m, nil)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	rep := Analyze(cm)
	if len(rep.VanishingLoops) != 1 || rep.Clean {
		t.Fatalf("expected one vanishing loop, got %+v", rep.VanishingLoops)
	}
	l := rep.VanishingLoops[0]
	if l.Kind != "cycle" || strings.Join(l.Activities, ",") != "ping,pong" {
		t.Fatalf("wrong loop: %+v", l)
	}
	if _, err := CompileStrict(m, nil); !errors.Is(err, ErrModelAnalysis) {
		t.Fatalf("CompileStrict error = %v, want ErrModelAnalysis", err)
	}
}

// TestAnalyzeVanishingCycleMatchesRuntime: the statically detected loop is
// exactly the model the simulator rejects at runtime with ErrUnstableModel.
func TestAnalyzeVanishingCycleMatchesRuntime(t *testing.T) {
	m := NewModel("cycle-runtime")
	a := m.AddPlace("a", 1)
	b := m.AddPlace("b", 0)
	m.AddInstantaneousActivity("ping").AddInputArc(a, 1).AddOutputArc(b, 1)
	m.AddInstantaneousActivity("pong").AddInputArc(b, 1).AddOutputArc(a, 1)
	cm, err := Compile(m, nil)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if rep := Analyze(cm); len(rep.VanishingLoops) == 0 {
		t.Fatal("static analysis missed the loop")
	}
	sim, err := cm.NewSimulator(rng.NewStream(1, "cycle"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(10); !errors.Is(err, ErrUnstableModel) {
		t.Fatalf("Run error = %v, want ErrUnstableModel", err)
	}
}

// TestAnalyzeSelfSustaining: an instantaneous activity whose output returns
// its own enabling token fires forever once enabled.
func TestAnalyzeSelfSustaining(t *testing.T) {
	m := NewModel("self")
	p := m.AddPlace("p", 1)
	m.AddInstantaneousActivity("spin").AddInputArc(p, 1).AddOutputArc(p, 1)
	cm, err := Compile(m, nil)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	rep := Analyze(cm)
	if len(rep.VanishingLoops) != 1 {
		t.Fatalf("expected one loop, got %+v", rep.VanishingLoops)
	}
	l := rep.VanishingLoops[0]
	if l.Kind != "self-sustaining" || !l.Definite {
		t.Fatalf("wrong loop: %+v", l)
	}
}

// TestAnalyzeAlwaysEnabled: an instantaneous activity with no enabling
// inputs at all can never stop firing.
func TestAnalyzeAlwaysEnabled(t *testing.T) {
	m := NewModel("always")
	sink := m.AddPlace("sink", 0)
	m.AddInstantaneousActivity("source").AddOutputArc(sink, 1)
	cm, err := Compile(m, nil)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	rep := Analyze(cm)
	if len(rep.VanishingLoops) != 1 || rep.VanishingLoops[0].Kind != "always-enabled" || !rep.VanishingLoops[0].Definite {
		t.Fatalf("expected definite always-enabled loop, got %+v", rep.VanishingLoops)
	}
	// A gate predicate makes the loop breakable, so no longer definite.
	m2 := NewModel("always-gated")
	sink2 := m2.AddPlace("sink", 0)
	m2.AddInstantaneousActivity("source").
		AddInputGate(&InputGate{Name: "g", Reads: []*Place{sink2}, Enabled: func(r MarkingReader) bool { return r.Tokens(sink2) < 1 }}).
		AddOutputArc(sink2, 1)
	cm2, err := Compile(m2, nil)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	rep2 := Analyze(cm2)
	if len(rep2.VanishingLoops) != 1 || rep2.VanishingLoops[0].Definite {
		t.Fatalf("expected possible (non-definite) loop, got %+v", rep2.VanishingLoops)
	}
}

// TestAnalyzeDeadActivity: an input place with no writer and insufficient
// initial marking makes the activity statically dead; a gate transform that
// tokens the place (discovered by probing) revives it.
func TestAnalyzeDeadActivity(t *testing.T) {
	m := NewModel("dead")
	trigger := m.AddPlace("trigger", 0)
	done := m.AddPlace("done", 0)
	m.AddTimedActivity("never", mustExp(t, 1)).AddInputArc(trigger, 1).AddOutputArc(done, 1)
	cm, err := Compile(m, nil)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	rep := Analyze(cm)
	if len(rep.DeadActivities) != 1 || rep.Clean {
		t.Fatalf("expected one dead activity, got %+v", rep.DeadActivities)
	}
	if d := rep.DeadActivities[0]; d.Activity != "never" || d.Place != "trigger" {
		t.Fatalf("wrong dead activity: %+v", d)
	}
	if _, err := CompileStrict(m, nil); !errors.Is(err, ErrModelAnalysis) {
		t.Fatalf("CompileStrict error = %v, want ErrModelAnalysis", err)
	}

	// Same structure, but a gate transform on another activity writes the
	// trigger place: probing must discover the write and clear the finding.
	m2 := NewModel("dead-revived")
	trigger2 := m2.AddPlace("trigger", 0)
	done2 := m2.AddPlace("done", 0)
	pulse := m2.AddPlace("pulse", 1)
	m2.AddTimedActivity("never", mustExp(t, 1)).AddInputArc(trigger2, 1).AddOutputArc(done2, 1)
	m2.AddTimedActivity("pulser", mustExp(t, 5)).
		AddInputArc(pulse, 1).
		AddOutputGate(&OutputGate{Name: "og", Transform: func(w MarkingWriter) { w.Add(trigger2, 1) }})
	cm2, err := Compile(m2, nil)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if rep2 := Analyze(cm2); len(rep2.DeadActivities) != 0 {
		t.Fatalf("gate write not discovered, dead: %+v", rep2.DeadActivities)
	}
}

// TestAnalyzeDeadActivityMultiplicity: an initial marking below the arc
// multiplicity is just as dead as an empty one.
func TestAnalyzeDeadActivityMultiplicity(t *testing.T) {
	m := NewModel("dead-mult")
	pool := m.AddPlace("pool", 1)
	out := m.AddPlace("out", 0)
	m.AddTimedActivity("pair_consume", mustExp(t, 1)).AddInputArc(pool, 2).AddOutputArc(out, 1)
	cm, err := Compile(m, nil)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	rep := Analyze(cm)
	if len(rep.DeadActivities) != 1 {
		t.Fatalf("expected dead activity, got %+v", rep.DeadActivities)
	}
}

// TestAnalyzeUnreadPlace: a written-but-never-read place is reported as
// advisory and does not affect Clean.
func TestAnalyzeUnreadPlace(t *testing.T) {
	m := NewModel("unread")
	up := m.AddPlace("up", 1)
	down := m.AddPlace("down", 0)
	counter := m.AddPlace("counter", 0)
	m.AddTimedActivity("fail", mustExp(t, 100)).AddInputArc(up, 1).
		AddOutputArc(down, 1).AddOutputArc(counter, 1)
	m.AddTimedActivity("repair", mustExp(t, 10)).AddInputArc(down, 1).AddOutputArc(up, 1)
	cm, err := Compile(m, nil)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	rep := Analyze(cm)
	if len(rep.UnreadPlaces) != 1 || rep.UnreadPlaces[0] != "counter" {
		t.Fatalf("expected counter unread, got %v", rep.UnreadPlaces)
	}
	if !rep.Clean {
		t.Fatal("unread places must not affect Clean")
	}
	// A reward reading the place (discovered by probing) clears the finding.
	rewards := []RewardVariable{TokenTimeAverage("failures", counter)}
	cm2, err := Compile(m, rewards)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if rep2 := Analyze(cm2); len(rep2.UnreadPlaces) != 0 {
		t.Fatalf("reward read not discovered, unread: %v", rep2.UnreadPlaces)
	}
}

// TestDelayLumpability pins the reason taxonomy the verdicts are built from.
func TestDelayLumpability(t *testing.T) {
	exp := mustExp(t, 10)
	if r := DelayLumpability("x", exp); r != "" {
		t.Fatalf("exponential classified %q", r)
	}
	w1, err := dist.NewWeibullFromMTBF(1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if r := DelayLumpability("x", w1); r != "" {
		t.Fatalf("shape-1 weibull classified %q", r)
	}
	w07, err := dist.NewWeibullFromMTBF(0.7, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if r := DelayLumpability("x", w07); !strings.HasPrefix(r, ReasonAgedState) {
		t.Fatalf("aged weibull classified %q", r)
	}
	det, err := dist.NewDeterministic(4)
	if err != nil {
		t.Fatal(err)
	}
	if r := DelayLumpability("x", det); !strings.HasPrefix(r, ReasonAgedState) {
		t.Fatalf("deterministic classified %q", r)
	}
	uni, err := dist.NewUniform(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if r := DelayLumpability("x", uni); !strings.HasPrefix(r, ReasonNonExponential) {
		t.Fatalf("uniform classified %q", r)
	}
	if r := DelayLumpability("x", nil); !strings.HasPrefix(r, ReasonNonExponential) {
		t.Fatalf("nil classified %q", r)
	}
}

// TestDeriveLumpability: the verdict is false exactly when a delay is not
// memoryless or a structural reason is present, and reasons accumulate in
// order.
func TestDeriveLumpability(t *testing.T) {
	exp := mustExp(t, 10)
	uni, err := dist.NewUniform(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	good := DeriveLumpability("fam", 8, true, []NamedDelay{{Label: "a", Delay: exp}})
	if !good.Lumpable || len(good.Reasons) != 0 || good.Count != 8 || !good.Lumped {
		t.Fatalf("good verdict wrong: %+v", good)
	}
	bad := DeriveLumpability("fam", 8, false,
		[]NamedDelay{{Label: "a", Delay: exp}, {Label: "b", Delay: uni}},
		ReasonCrewCoupling+": 4 crews")
	if bad.Lumpable || len(bad.Reasons) != 2 {
		t.Fatalf("bad verdict wrong: %+v", bad)
	}
	if !strings.HasPrefix(bad.Reasons[0], ReasonNonExponential) || !strings.HasPrefix(bad.Reasons[1], ReasonCrewCoupling) {
		t.Fatalf("reason order wrong: %v", bad.Reasons)
	}
}

// TestAnalyzeFamiliesAndGolden: declared families appear in the report in
// declaration order, and the rendered text matches the golden form abesim
// prints.
func TestAnalyzeFamiliesAndGolden(t *testing.T) {
	m := NewModel("golden")
	up := m.AddPlace("up", 1)
	down := m.AddPlace("down", 0)
	m.AddTimedActivity("fail", mustExp(t, 100)).AddInputArc(up, 1).AddOutputArc(down, 1)
	m.AddTimedActivity("repair", mustExp(t, 10)).AddInputArc(down, 1).AddOutputArc(up, 1)
	uni, err := dist.NewUniform(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	m.DeclareFamily(DeriveLumpability("servers", 4, true, []NamedDelay{{Label: "repair", Delay: mustExp(t, 10)}}))
	m.DeclareFamily(DeriveLumpability("routers", 2, false, []NamedDelay{{Label: "reroute", Delay: uni}}))
	cm, err := Compile(m, nil)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	rep := Analyze(cm)
	if len(rep.Families) != 2 || rep.Families[0].Family != "servers" || rep.Families[1].Family != "routers" {
		t.Fatalf("families wrong: %+v", rep.Families)
	}
	const golden = `analysis: golden
  places 2, activities 2 (0 instantaneous)
  vanishing loops: none
  dead activities: none
  families:
    - servers n=4 built=lumped lumpable=true
    - routers n=2 built=flat lumpable=false
        non-exponential transition: reroute uniform(hi=6, lo=2)
  clean: true
`
	if got := rep.Render(); got != golden {
		t.Fatalf("render mismatch:\n--- got ---\n%s--- want ---\n%s", got, golden)
	}
	// The report must marshal to JSON with the documented section names.
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"model"`, `"families"`, `"clean"`} {
		if !strings.Contains(string(raw), key) {
			t.Fatalf("JSON missing %s: %s", key, raw)
		}
	}
}

// TestRewardValidationErrorDeterministic pins the sorted-key validation fix:
// a reward referencing several unknown impulse activities must name the
// alphabetically first one on every run, not a map-order-dependent pick.
func TestRewardValidationErrorDeterministic(t *testing.T) {
	one := func(MarkingReader) float64 { return 1 }
	for i := 0; i < 20; i++ {
		m := NewModel("reward-det")
		up := m.AddPlace("up", 1)
		m.AddTimedActivity("fail", mustExp(t, 100)).AddInputArc(up, 1)
		bad := RewardVariable{
			Name: "r", Mode: Accumulated,
			Impulses: map[string]ImpulseFunc{"zz_missing": one, "aa_missing": one, "mm_missing": one},
		}
		_, err := Compile(m, []RewardVariable{bad})
		if err == nil || !strings.Contains(err.Error(), `"aa_missing"`) {
			t.Fatalf("iteration %d: error %v, want mention of aa_missing", i, err)
		}
	}
}
