package loggen

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// timeLayout is the on-disk timestamp format (RFC3339, UTC).
const timeLayout = time.RFC3339

// FormatEvent renders one event as a single log line:
//
//	2007-07-21T23:03:00Z san lustre-cfs OUTAGE_START cause="I/O hardware"
//
// Attribute keys are emitted in sorted order so output is deterministic.
func FormatEvent(e Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s %s %s", e.Time.UTC().Format(timeLayout), e.Source, e.Node, e.Kind)
	keys := make([]string, 0, len(e.Attrs))
	for k := range e.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%q", k, e.Attrs[k])
	}
	return b.String()
}

// Write serializes events, one line each, to w.
func Write(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for _, e := range events {
		if _, err := bw.WriteString(FormatEvent(e)); err != nil {
			return fmt.Errorf("loggen: write: %w", err)
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("loggen: write: %w", err)
		}
	}
	return bw.Flush()
}

// ParseEvent parses one log line produced by FormatEvent.
func ParseEvent(line string) (Event, error) {
	fields := strings.SplitN(strings.TrimSpace(line), " ", 5)
	if len(fields) < 4 {
		return Event{}, fmt.Errorf("loggen: malformed log line %q", line)
	}
	ts, err := time.Parse(timeLayout, fields[0])
	if err != nil {
		return Event{}, fmt.Errorf("loggen: bad timestamp in %q: %w", line, err)
	}
	kind, err := ParseEventKind(fields[3])
	if err != nil {
		return Event{}, fmt.Errorf("loggen: %q: %w", line, err)
	}
	e := Event{Time: ts, Source: fields[1], Node: fields[2], Kind: kind, Attrs: map[string]string{}}
	if len(fields) == 5 {
		attrs, err := parseAttrs(fields[4])
		if err != nil {
			return Event{}, fmt.Errorf("loggen: %q: %w", line, err)
		}
		e.Attrs = attrs
	}
	return e, nil
}

// parseAttrs parses `key="value"` pairs separated by spaces. Values are
// Go-quoted strings, so they may contain spaces and escaped characters.
func parseAttrs(s string) (map[string]string, error) {
	attrs := make(map[string]string)
	rest := strings.TrimSpace(s)
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq <= 0 || eq+1 >= len(rest) || rest[eq+1] != '"' {
			return nil, fmt.Errorf("malformed attribute list %q", s)
		}
		key := rest[:eq]
		quoted, err := strconv.QuotedPrefix(rest[eq+1:])
		if err != nil {
			return nil, fmt.Errorf("unterminated attribute value in %q: %w", s, err)
		}
		value, err := strconv.Unquote(quoted)
		if err != nil {
			return nil, fmt.Errorf("bad attribute value in %q: %w", s, err)
		}
		attrs[key] = value
		rest = strings.TrimSpace(rest[eq+1+len(quoted):])
	}
	return attrs, nil
}

// Read parses a whole log stream (one event per line, blank lines and lines
// starting with '#' ignored).
func Read(r io.Reader) ([]Event, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var events []Event
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		e, err := ParseEvent(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		events = append(events, e)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("loggen: read: %w", err)
	}
	return events, nil
}
