package rng

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewStreamDeterministic(t *testing.T) {
	a := NewStream(42, "a")
	b := NewStream(42, "b")
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: streams with equal seeds diverged: %d != %d", i, got, want)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := NewStream(1, "a")
	b := NewStream(2, "b")
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with distinct seeds produced %d identical draws out of 1000", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewStream(7, "parent")
	// Record what the parent would have produced without splitting, after the
	// single draw Split consumes.
	probe := NewStream(7, "probe")
	probe.Uint64()
	var expect [64]uint64
	for i := range expect {
		expect[i] = probe.Uint64()
	}

	child := parent.Split("child")
	for i := range expect {
		if got := parent.Uint64(); got != expect[i] {
			t.Fatalf("parent draw %d perturbed by Split: got %d want %d", i, got, expect[i])
		}
	}
	// Child should not replay the parent's sequence.
	parent2 := NewStream(7, "parent2")
	parent2.Uint64()
	matches := 0
	for i := 0; i < 256; i++ {
		if child.Uint64() == parent2.Uint64() {
			matches++
		}
	}
	if matches > 2 {
		t.Fatalf("child stream replays parent sequence (%d matches)", matches)
	}
}

func TestFloat64Range(t *testing.T) {
	s := NewStream(99, "range")
	for i := 0; i < 100000; i++ {
		u := s.Float64()
		if u < 0 || u >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", u)
		}
	}
}

func TestOpenFloat64Range(t *testing.T) {
	s := NewStream(123, "open")
	for i := 0; i < 100000; i++ {
		u := s.OpenFloat64()
		if u <= 0 || u >= 1 {
			t.Fatalf("OpenFloat64 out of (0,1): %v", u)
		}
	}
}

func TestFloat64Moments(t *testing.T) {
	s := NewStream(2024, "moments")
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		u := s.Float64()
		sum += u
		sumSq += u * u
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
	if math.Abs(variance-1.0/12.0) > 0.005 {
		t.Errorf("uniform variance = %v, want ~%v", variance, 1.0/12.0)
	}
}

func TestIntnBounds(t *testing.T) {
	s := NewStream(5, "intn")
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 8000 || c > 12000 {
			t.Errorf("Intn(7): value %d drawn %d times out of 70000, expected ~10000", v, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	s := NewStream(1, "panic")
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	s.Intn(0)
}

func TestBoolProbabilities(t *testing.T) {
	s := NewStream(77, "bool")
	if s.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !s.Bool(1) {
		t.Error("Bool(1) returned false")
	}
	if s.Bool(-0.5) {
		t.Error("Bool(-0.5) returned true")
	}
	if !s.Bool(1.5) {
		t.Error("Bool(1.5) returned false")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency = %v, want ~0.3", frac)
	}
}

func TestNormalMoments(t *testing.T) {
	s := NewStream(31415, "normal")
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := s.Normal()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := NewStream(8, "perm")
	p := s.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid or duplicate value %d", v)
		}
		seen[v] = true
	}
}

func TestStateRestoreRoundTrip(t *testing.T) {
	s := NewStream(100, "ckpt")
	for i := 0; i < 10; i++ {
		s.Uint64()
	}
	saved := s.State()
	var want [16]uint64
	for i := range want {
		want[i] = s.Uint64()
	}
	if err := s.Restore(saved); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	for i := range want {
		if got := s.Uint64(); got != want[i] {
			t.Fatalf("draw %d after Restore: got %d want %d", i, got, want[i])
		}
	}
}

func TestRestoreRejectsZeroState(t *testing.T) {
	s := NewStream(1, "zero")
	if err := s.Restore([4]uint64{}); err != ErrDegenerateSeed {
		t.Fatalf("Restore(zero) error = %v, want ErrDegenerateSeed", err)
	}
}

func TestSeedReproducible(t *testing.T) {
	s := NewStream(5, "seed")
	s.Uint64()
	s.Seed(1234)
	a := s.Uint64()
	s.Seed(1234)
	b := s.Uint64()
	if a != b {
		t.Fatalf("Seed is not reproducible: %d vs %d", a, b)
	}
}

func TestStreamSatisfiesRandSource(t *testing.T) {
	var src rand.Source = NewStream(9, "source")
	r := rand.New(src)
	v := r.Float64()
	if v < 0 || v >= 1 {
		t.Fatalf("rand.New(Stream).Float64() out of range: %v", v)
	}
}

func TestStringAndLabel(t *testing.T) {
	s := NewStream(3, "disk-7")
	if s.Label() != "disk-7" {
		t.Errorf("Label() = %q, want %q", s.Label(), "disk-7")
	}
	if got := s.String(); got != "rng.Stream(disk-7)" {
		t.Errorf("String() = %q", got)
	}
}

// Property: Float64 always lies in [0,1) and Intn(n) in [0,n) for any seed.
func TestQuickRangeProperties(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		s := NewStream(seed, "quick")
		bound := int(n%1000) + 1
		for i := 0; i < 50; i++ {
			u := s.Float64()
			if u < 0 || u >= 1 {
				return false
			}
			v := s.Intn(bound)
			if v < 0 || v >= bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: splitting never yields a degenerate (all-zero) child state.
func TestQuickSplitNonDegenerate(t *testing.T) {
	f := func(seed uint64) bool {
		s := NewStream(seed, "p")
		for i := 0; i < 10; i++ {
			c := s.Split("c")
			st := c.State()
			if st[0]|st[1]|st[2]|st[3] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := NewStream(1, "bench")
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Uint64()
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	s := NewStream(1, "bench")
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += s.Float64()
	}
	_ = sink
}
