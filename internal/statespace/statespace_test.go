package statespace_test

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/rareevent"
	"repro/internal/san"
	"repro/internal/statespace"
)

func mustExpRate(t *testing.T, rate float64) dist.Exponential {
	t.Helper()
	d, err := dist.NewExponentialFromRate(rate)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// buildBirthDeath builds the lumped replica population whose down-count is a
// birth-death chain on {0..n}: n replicas failing at rate lambda and
// repairing at rate mu, with repair gated off in the all-down state so it is
// absorbing, plus a hit-probability reward.
func buildBirthDeath(t *testing.T, n int, lambda, mu float64) *san.CompiledModel {
	t.Helper()
	m := san.NewModel("bd")
	lp, err := san.ReplicateLumped(m, "pool", n, san.ReplicaClass{
		States:  []string{"up", "down"},
		Initial: "up",
		Transitions: []san.ReplicaTransition{
			{Name: "fail", From: "up", To: "down", Delay: mustExpRate(t, lambda)},
			{Name: "repair", From: "down", To: "up", Delay: mustExpRate(t, mu)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	down := lp.State("down")
	m.Activity(lp.ActivityName("repair")).AddInputGate(&san.InputGate{
		Name:    "absorb",
		Reads:   []*san.Place{down},
		Enabled: func(mr san.MarkingReader) bool { return mr.Tokens(down) < n },
	})
	cm, err := san.Compile(m, []san.RewardVariable{{
		Name: "hit", Mode: san.InstantAtEnd,
		Rate: func(mr san.MarkingReader) float64 {
			if mr.Tokens(down) == n {
				return 1
			}
			return 0
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	return cm
}

// TestGoldenBirthDeath pins the generated CTMC of a lumped replica
// birth-death population against the hand-built chain behind
// rareevent.BirthDeathHitProbability: same state count, the exact aggregate
// rates, and the same transient answer.
func TestGoldenBirthDeath(t *testing.T) {
	const (
		n       = 4
		lambda  = 1.0 / 1000
		mu      = 1.0 / 24
		horizon = 8760.0
	)
	cm := buildBirthDeath(t, n, lambda, mu)
	gen, cert := statespace.Certify(cm, statespace.Options{})
	if !cert.Certified() {
		t.Fatalf("refused: %s", cert.Summary())
	}
	if len(gen.States) != n+1 {
		t.Fatalf("got %d states, want %d", len(gen.States), n+1)
	}

	// The generated rates must be exactly the lumped count x rate values.
	// Map each state to its down-count (state order is BFS, not count order).
	down := cm.Model().Place("pool/state/down")
	perFail := mustExpRate(t, lambda).Rate()
	perRepair := mustExpRate(t, mu).Rate()
	for s, mark := range gen.States {
		k := mark[down.Index()]
		wantFail, wantRepair := 0.0, 0.0
		if k < n {
			wantFail = mustExpRate(t, perFail*float64(n-k)).Rate()
		}
		if k > 0 && k < n {
			wantRepair = mustExpRate(t, perRepair*float64(k)).Rate()
		}
		gotFail, gotRepair := 0.0, 0.0
		for _, tr := range gen.Transitions[s] {
			switch tr.Activity {
			case "pool/fail":
				gotFail += tr.Rate
			case "pool/repair":
				gotRepair += tr.Rate
			default:
				t.Fatalf("unexpected activity %q", tr.Activity)
			}
		}
		if gotFail != wantFail || gotRepair != wantRepair {
			t.Fatalf("state down=%d: rates fail=%v repair=%v, want %v/%v", k, gotFail, gotRepair, wantFail, wantRepair)
		}
	}

	// Transient hit probability must agree with the reference uniformization.
	birth := make([]float64, n)
	death := make([]float64, n)
	for i := 0; i < n; i++ {
		birth[i] = mustExpRate(t, perFail*float64(n-i)).Rate()
		if i > 0 {
			death[i] = mustExpRate(t, perRepair*float64(i)).Rate()
		}
	}
	want, err := rareevent.BirthDeathHitProbability(birth, death, horizon)
	if err != nil {
		t.Fatal(err)
	}
	got, err := gen.SolveTransient(horizon)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got["hit"]-want) > 1e-9*math.Max(1, math.Abs(want)) {
		t.Fatalf("hit probability %v, reference %v", got["hit"], want)
	}

	// The population invariant up + down = n must bound both places.
	if cert.PInvariants == 0 {
		t.Fatal("no P-invariants found for a closed population")
	}
	for _, pb := range cert.PlaceBounds {
		if pb.Bound != n || pb.Proof != san.ProofPInvariant {
			t.Fatalf("place %q: bound %d proof %q, want %d via %s (invariant %q)",
				pb.Place, pb.Bound, pb.Proof, n, san.ProofPInvariant, pb.Invariant)
		}
		if pb.Invariant == "" {
			t.Fatalf("place %q: missing invariant evidence", pb.Place)
		}
	}
}

// TestTransientMatchesClosedForm checks the solver against the closed-form
// interval availability of a two-state machine starting up:
// A(T) = mu/(l+mu) + l/(l+mu) · (1 - e^{-(l+mu)T}) / ((l+mu)·T).
func TestTransientMatchesClosedForm(t *testing.T) {
	const (
		lambda = 0.01
		mu     = 0.2
		T      = 500.0
	)
	m := san.NewModel("machine")
	up := m.AddPlace("up", 1)
	dn := m.AddPlace("down", 0)
	m.AddTimedActivity("fail", mustExpRate(t, lambda)).AddInputArc(up, 1).AddOutputArc(dn, 1)
	m.AddTimedActivity("repair", mustExpRate(t, mu)).AddInputArc(dn, 1).AddOutputArc(up, 1)
	cm, err := san.Compile(m, []san.RewardVariable{
		san.UpFraction("avail", func(mr san.MarkingReader) bool { return mr.Tokens(up) == 1 }),
		san.CompletionCount("repairs", "repair"),
	})
	if err != nil {
		t.Fatal(err)
	}
	gen, cert := statespace.Certify(cm, statespace.Options{})
	if !cert.Certified() {
		t.Fatalf("refused: %s", cert.Summary())
	}
	got, err := gen.SolveTransient(T)
	if err != nil {
		t.Fatal(err)
	}
	s := lambda + mu
	want := mu/s + lambda/s*(1-math.Exp(-s*T))/(s*T)
	if math.Abs(got["avail"]-want) > 1e-10 {
		t.Fatalf("availability %v, closed form %v", got["avail"], want)
	}
	// Expected repairs over [0, T]: mu · E[time down].
	wantRepairs := mu * (1 - want) * T
	if math.Abs(got["repairs"]-wantRepairs) > 1e-8*wantRepairs {
		t.Fatalf("repairs %v, closed form %v", got["repairs"], wantRepairs)
	}

	// Steady state: availability tends to mu/(l+mu), repair flux to
	// mu · l/(l+mu).
	ss, err := gen.SolveSteadyState()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ss["avail"]-mu/s) > 1e-9 {
		t.Fatalf("steady availability %v, want %v", ss["avail"], mu/s)
	}
	if math.Abs(ss["repairs"]-mu*lambda/s) > 1e-9 {
		t.Fatalf("steady repair flux %v, want %v", ss["repairs"], mu*lambda/s)
	}
}

// TestVanishingCaseBranching checks that instantaneous-case probabilities
// become transition-probability mass: a timed firing hands a token to an
// instantaneous router that sends it left with probability 0.4.
func TestVanishingCaseBranching(t *testing.T) {
	m := san.NewModel("router")
	src := m.AddPlace("src", 1)
	mid := m.AddPlace("mid", 0)
	left := m.AddPlace("left", 0)
	right := m.AddPlace("right", 0)
	m.AddTimedActivity("go", mustExpRate(t, 2)).AddInputArc(src, 1).AddOutputArc(mid, 1)
	m.AddInstantaneousActivity("route").
		AddInputArc(mid, 1).
		AddCase(san.Case{
			Probability: func(san.MarkingReader) float64 { return 0.4 },
			OutputArcs:  []san.Arc{{Place: left, Mult: 1}},
		}).
		AddCase(san.Case{
			OutputArcs: []san.Arc{{Place: right, Mult: 1}},
		})
	cm, err := san.Compile(m, []san.RewardVariable{
		{Name: "left", Mode: san.InstantAtEnd, Rate: func(mr san.MarkingReader) float64 { return float64(mr.Tokens(left)) }},
		{Name: "routed", Mode: san.Accumulated, Impulses: map[string]san.ImpulseFunc{
			"route": func(san.MarkingReader) float64 { return 1 },
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	gen, cert := statespace.Certify(cm, statespace.Options{})
	if !cert.Certified() {
		t.Fatalf("refused: %s", cert.Summary())
	}
	if len(gen.States) != 3 {
		t.Fatalf("got %d tangible states, want 3 (vanishing mid eliminated)", len(gen.States))
	}
	got, err := gen.SolveTransient(50)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got["left"]-0.4) > 1e-12 {
		t.Fatalf("left mass %v, want 0.4", got["left"])
	}
	if math.Abs(got["routed"]-1) > 1e-12 {
		t.Fatalf("routed impulses %v, want 1", got["routed"])
	}
}

// TestRefuseNonMemoryless: a uniform delay is refused with the structured
// non-memoryless reason, never silently solved.
func TestRefuseNonMemoryless(t *testing.T) {
	m := san.NewModel("u")
	up := m.AddPlace("up", 1)
	dn := m.AddPlace("down", 0)
	u, err := dist.NewUniform(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	m.AddTimedActivity("fail", mustExpRate(t, 0.01)).AddInputArc(up, 1).AddOutputArc(dn, 1)
	m.AddTimedActivity("repair", u).AddInputArc(dn, 1).AddOutputArc(up, 1)
	cm, err := san.Compile(m, []san.RewardVariable{san.TokenTimeAverage("down", dn)})
	if err != nil {
		t.Fatal(err)
	}
	gen, cert := statespace.Certify(cm, statespace.Options{})
	if gen != nil || cert.Certified() || cert.Memoryless {
		t.Fatalf("uniform delay certified: %s", cert.Summary())
	}
	requireRefusalPrefix(t, cert, san.RefusalNonMemoryless)
}

// TestRefuseVanishingLoop: an instantaneous cycle is refused before any
// exploration runs.
func TestRefuseVanishingLoop(t *testing.T) {
	m := san.NewModel("loop")
	a := m.AddPlace("a", 1)
	b := m.AddPlace("b", 0)
	m.AddInstantaneousActivity("ab").AddInputArc(a, 1).AddOutputArc(b, 1)
	m.AddInstantaneousActivity("ba").AddInputArc(b, 1).AddOutputArc(a, 1)
	sink := m.AddPlace("sink", 0)
	m.AddTimedActivity("drain", mustExpRate(t, 1)).AddInputArc(a, 1).AddOutputArc(sink, 1)
	cm, err := san.Compile(m, []san.RewardVariable{san.TokenTimeAverage("sink", sink)})
	if err != nil {
		t.Fatal(err)
	}
	gen, cert := statespace.Certify(cm, statespace.Options{})
	if gen != nil || cert.VanishingFree {
		t.Fatalf("vanishing loop certified: %s", cert.Summary())
	}
	requireRefusalPrefix(t, cert, san.RefusalVanishingLoop)
}

// TestRefuseUnbounded: a token source with no conserving invariant blows the
// state budget and is classified unbounded (not merely over budget).
func TestRefuseUnbounded(t *testing.T) {
	m := san.NewModel("src")
	q := m.AddPlace("queue", 0)
	m.AddTimedActivity("arrive", mustExpRate(t, 1)).AddOutputArc(q, 1)
	cm, err := san.Compile(m, []san.RewardVariable{san.TokenTimeAverage("queue", q)})
	if err != nil {
		t.Fatal(err)
	}
	gen, cert := statespace.Certify(cm, statespace.Options{MaxStates: 32})
	if gen != nil || cert.Bounded {
		t.Fatalf("token source certified: %s", cert.Summary())
	}
	requireRefusalPrefix(t, cert, san.RefusalUnbounded)
}

// TestRefuseUnboundedTruncatesPlaceList: with more uncovered places than
// the refusal lists, the truncation is explicit — the refusal ends with
// "... and N more" instead of silently reading as a complete list.
func TestRefuseUnboundedTruncatesPlaceList(t *testing.T) {
	m := san.NewModel("many-sources")
	const sources = 11
	rewards := make([]san.RewardVariable, 0, sources)
	for i := 0; i < sources; i++ {
		q := m.AddPlace(fmt.Sprintf("queue%02d", i), 0)
		m.AddTimedActivity(fmt.Sprintf("arrive%02d", i), mustExpRate(t, 1)).AddOutputArc(q, 1)
		rewards = append(rewards, san.TokenTimeAverage(q.Name(), q))
	}
	cm, err := san.Compile(m, rewards)
	if err != nil {
		t.Fatal(err)
	}
	gen, cert := statespace.Certify(cm, statespace.Options{MaxStates: 32})
	if gen != nil || cert.Bounded {
		t.Fatalf("token sources certified: %s", cert.Summary())
	}
	requireRefusalPrefix(t, cert, san.RefusalUnbounded)
	var refusal string
	for _, r := range cert.Refusals {
		if strings.HasPrefix(r, san.RefusalUnbounded) {
			refusal = r
		}
	}
	if !strings.Contains(refusal, "... and 3 more") {
		t.Fatalf("refusal must state the truncation (11 uncovered, 8 listed): %q", refusal)
	}
	if strings.Count(refusal, "queue") != 8 {
		t.Fatalf("refusal must list exactly 8 places: %q", refusal)
	}
}

// TestRefuseBudget: a provably finite model larger than the state budget is
// refused as a budget problem, with every place invariant-covered.
func TestRefuseBudget(t *testing.T) {
	cm := buildBirthDeath(t, 30, 0.001, 0.04)
	gen, cert := statespace.Certify(cm, statespace.Options{MaxStates: 10})
	if gen != nil || cert.Bounded {
		t.Fatalf("over-budget model certified: %s", cert.Summary())
	}
	requireRefusalPrefix(t, cert, san.RefusalBudget)
}

// TestRefuseNegativeMarking: a gate driving a place negative is an
// exploration refusal mirroring the simulator's negative-token panic.
func TestRefuseNegativeMarking(t *testing.T) {
	m := san.NewModel("neg")
	p := m.AddPlace("p", 1)
	q := m.AddPlace("q", 0)
	m.AddTimedActivity("bad", mustExpRate(t, 1)).
		AddInputArc(p, 1).
		AddOutputGate(&san.OutputGate{Name: "og", Transform: func(mw san.MarkingWriter) {
			mw.Add(q, -3)
		}})
	cm, err := san.Compile(m, []san.RewardVariable{san.TokenTimeAverage("q", q)})
	if err != nil {
		t.Fatal(err)
	}
	gen, cert := statespace.Certify(cm, statespace.Options{})
	if gen != nil || cert.Bounded {
		t.Fatalf("negative-marking model certified: %s", cert.Summary())
	}
	requireRefusalPrefix(t, cert, san.RefusalExploration)
}

func requireRefusalPrefix(t *testing.T, cert san.Certificate, prefix string) {
	t.Helper()
	for _, r := range cert.Refusals {
		if strings.HasPrefix(r, prefix) {
			return
		}
	}
	t.Fatalf("no refusal with prefix %q in %v", prefix, cert.Refusals)
}
