// Package det exercises the nodeterminism rule: it is listed in the
// fixture's deterministic package set, so wall-clock reads, global
// math/rand, and unordered map iteration are violations here.
package det

import (
	"math/rand" // want nodeterminism
	"sort"
	"time"
)

// Stamp reads the wall clock.
func Stamp() string {
	return time.Now().String() // want nodeterminism
}

// Pick sums map values in unspecified order and draws from the global
// generator.
func Pick(m map[string]int) int {
	total := 0
	for _, v := range m { // want nodeterminism
		total += v
	}
	return total + rand.Intn(3)
}

// SortedKeys uses the collect-then-sort idiom, which the rule recognizes
// without an annotation.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Union is order-insensitive by construction, so the range is annotated.
func Union(a, b map[string]bool) map[string]bool {
	out := map[string]bool{}
	// Set union: insertion order cannot be observed.
	for k := range a { //lint:sorted
		out[k] = true
	}
	//lint:sorted set union again, annotation on the line above
	for k := range b {
		out[k] = true
	}
	return out
}

// SliceRange iterates a slice, which is ordered and always fine.
func SliceRange(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// Welford is a float-folding accumulator, the floatorder rule's Add target.
type Welford struct{ mean float64 }

// Add folds one observation.
func (w *Welford) Add(x float64) { w.mean += x }

// Count folds integers.
func (w *Welford) Count(n int) {}

// SumFloats folds floats in map order: order-sensitive bit-for-bit.
func SumFloats(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want nodeterminism
		total += v // want floatorder
	}
	return total
}

// SumFloatsExplicit spells the fold as a self-referential addition.
func SumFloatsExplicit(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want nodeterminism
		total = total + v // want floatorder
	}
	return total
}

// FoldChannel folds floats in goroutine-completion order.
func FoldChannel(ch chan float64) {
	var w Welford
	for v := range ch {
		w.Add(v) // want floatorder
	}
}

// CountChannel folds integers from a channel; integer addition is
// associative, so completion order cannot reach the result.
func CountChannel(ch chan int) int {
	total := 0
	n := 0
	var w Welford
	for v := range ch {
		total += v
		n++
		w.Count(1)
	}
	return total + n
}

// SumFloatsSorted asserts the order cannot leak (e.g. the result feeds a
// tolerance check, not an output); both rules honor the annotation.
func SumFloatsSorted(m map[string]float64) float64 {
	var total float64
	for _, v := range m { //lint:sorted
		total += v
	}
	return total
}

// IndexOrderReduction is the canonical fix: store into indexed slots in the
// unordered phase, fold in index order afterwards.
func IndexOrderReduction(results chan struct {
	I int
	V float64
}) float64 {
	slots := make([]float64, 8)
	for r := range results {
		slots[r.I] = r.V
	}
	var total float64
	for _, v := range slots {
		total += v
	}
	return total
}
