package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// floatOrder guards the reduction-order class of bug the sweep engine once
// had (a Welford fold over replication results in goroutine-completion
// order): floating-point addition is not associative, so accumulating floats
// in an unspecified order changes the result bit-for-bit even when every
// element is visited exactly once. Inside the deterministic package set the
// pass flags float accumulation — `x += e`, `x = x + e`, or an Add call
// whose argument carries floats — inside a map range (iteration order
// unspecified) or a channel range (goroutine completion order).
//
// The index-order-reduction idiom is not flagged, because it does not
// accumulate inside the loop: workers store into indexed slots
// (`out[i] = v`) and a later loop folds the slots in index order. A range
// annotated //lint:sorted (or an annotated accumulation line) is exempt:
// the author asserts the visit order cannot reach any output.
func floatOrder(p *Package) []Finding {
	var findings []Finding
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok || rng.Body == nil {
					return true
				}
				kind := unorderedRangeKind(p, rng)
				if kind == "" || p.sortedAnnotated(rng.Pos()) {
					return true
				}
				findings = append(findings, floatAccumulations(p, rng, kind)...)
				return true
			})
		}
	}
	return findings
}

// unorderedRangeKind classifies the range's visit order: "map iteration" for
// map ranges, "channel receive" for channel ranges, empty for ordered
// ranges (slices, arrays, strings, integers).
func unorderedRangeKind(p *Package, rng *ast.RangeStmt) string {
	tv, ok := p.Info.Types[rng.X]
	if !ok {
		return ""
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		return "map iteration"
	case *types.Chan:
		return "channel receive"
	}
	return ""
}

// floatAccumulations collects the float accumulation statements in the range
// body: compound float assignments, self-referential float additions, and
// Add calls fed float-carrying values.
func floatAccumulations(p *Package, rng *ast.RangeStmt, kind string) []Finding {
	var findings []Finding
	flag := func(pos token.Pos, what string) {
		if p.sortedAnnotated(pos) {
			return
		}
		findings = append(findings, Finding{
			Pos:  p.Fset.Position(pos),
			Rule: "floatorder",
			Message: what + " in " + kind + " order is not associative; " +
				"reduce in index order or annotate //lint:sorted with a justification",
		})
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			if accumulatesFloat(p, node) {
				flag(node.Pos(), "float accumulation")
			}
		case *ast.CallExpr:
			if f := calleeFunc(p.Info, node); f != nil && f.Name() == "Add" && anyArgCarriesFloat(p, node) {
				flag(node.Pos(), "Add of float-carrying values")
			}
		}
		return true
	})
	return findings
}

// accumulatesFloat reports whether the assignment folds a float into one of
// its own targets: `x += e` / `x -= e` on a float, or `x = x + e` where the
// right-hand side reads x.
func accumulatesFloat(p *Package, assign *ast.AssignStmt) bool {
	switch assign.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		return len(assign.Lhs) == 1 && isFloat(p.Info.TypeOf(assign.Lhs[0]))
	case token.ASSIGN:
		for i, lhs := range assign.Lhs {
			if i >= len(assign.Rhs) || !isFloat(p.Info.TypeOf(lhs)) {
				continue
			}
			bin, ok := ast.Unparen(assign.Rhs[i]).(*ast.BinaryExpr)
			if !ok || (bin.Op != token.ADD && bin.Op != token.SUB) {
				continue
			}
			obj := lhsObject(p, lhs)
			if obj == nil {
				continue
			}
			if readsObject(p, bin, obj) {
				return true
			}
		}
	}
	return false
}

// lhsObject resolves the assigned identifier (possibly behind a selector,
// as in s.total += v) to its object.
func lhsObject(p *Package, lhs ast.Expr) types.Object {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		return p.Info.ObjectOf(e)
	case *ast.SelectorExpr:
		return p.Info.ObjectOf(e.Sel)
	}
	return nil
}

// readsObject reports whether the expression mentions the object.
func readsObject(p *Package, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && p.Info.ObjectOf(id) == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

// anyArgCarriesFloat reports whether any call argument's type carries a
// float (so an order-sensitive fold could hide behind the call). Integer
// Add calls — sync.WaitGroup.Add(1), counters — never match.
func anyArgCarriesFloat(p *Package, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if carriesFloat(p.Info.TypeOf(arg), 0) {
			return true
		}
	}
	return false
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// carriesFloat reports whether the type is a float or aggregates floats
// (struct fields, map/slice/array elements, pointers), to bounded depth.
func carriesFloat(t types.Type, depth int) bool {
	if t == nil || depth > 3 {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsFloat != 0
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if carriesFloat(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Map:
		return carriesFloat(u.Elem(), depth+1)
	case *types.Slice:
		return carriesFloat(u.Elem(), depth+1)
	case *types.Array:
		return carriesFloat(u.Elem(), depth+1)
	case *types.Pointer:
		return carriesFloat(u.Elem(), depth+1)
	}
	return false
}
