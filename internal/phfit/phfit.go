// Package phfit fits certified approximate phase-type surrogates for the
// non-memoryless delays the exact expansion pass (san.ExpandPhases) cannot
// touch: Weibull wear-out, uniform repair windows, lognormal outages,
// empirical samples, and deterministic timers have no exact finite
// phase-type form, but a moment-matched acyclic phase-type distribution can
// stand in for them — and the substitution is only admissible here when its
// distance to the original is *proven* small.
//
// Every fit therefore returns, alongside the surrogate, a certified upper
// bound on a CDF distance:
//
//   - For continuous targets the bound is on the Kolmogorov (sup-norm CDF)
//     distance, evaluated on a deterministic bracketing grid: both CDFs are
//     monotone, so on a cell [a, b] the sup of |F-G| is at most
//     max(F(b)-G(a), G(b)-F(a)), and the max over cells plus the tail term
//     is a rigorous upper bound (up to float rounding), never an estimate.
//   - For a deterministic point mass the Kolmogorov metric is useless — any
//     continuous CDF is at sup-distance >= 1/2 from a unit step — so the
//     fit is certified in a relative Lévy metric instead: the smallest
//     epsilon such that the surrogate puts at most epsilon probability
//     below (1-epsilon)d and at most epsilon above (1+epsilon)d, computed
//     by bisection. The metric is named in the result so a report can never
//     silently conflate the two.
//
// The fit families mirror the classical moment-matching constructions:
// hypoexponential chains (k-1 equal stages plus one slower stage) matching
// mean and variance for squared coefficients of variation below 1, the
// closest-integer-shape Erlang as the chain's degenerate equal-rate case,
// two-branch hyperexponentials matching three moments (with a two-moment
// balanced-means fallback) for squared coefficients of variation above 1,
// and high-order Erlangs for point masses with the order chosen from the
// tolerance. A target whose achievable bound exceeds the caller's tolerance
// is refused with ErrNonFittable — the caller falls back to simulation,
// never to an uncertified surrogate.
package phfit

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/dist"
)

// MaxPhases bounds the surrogate size, matching the exact expansion pass's
// chain budget: beyond it the state-space blow-up defeats the point of
// solving the model numerically.
const MaxPhases = 64

// Metric names recorded in fit results. Every consumer that prints a bound
// must print the metric with it.
const (
	// MetricKolmogorov is the sup-norm distance between CDFs.
	MetricKolmogorov = "kolmogorov"
	// MetricLevy is the relative Lévy metric used for point masses: the
	// smallest eps with F(d(1-eps)) <= eps and 1-F(d(1+eps)) <= eps.
	MetricLevy = "levy"
)

// ErrNonFittable reports that no surrogate in the supported families meets
// the caller's tolerance (or that the target exposes no usable moments or
// CDF). It classifies the refusal; it never accompanies a usable fit.
var ErrNonFittable = errors.New("phfit: no phase-type surrogate within tolerance")

// gridPoints is the per-CDF quantile count of the bracketing grid. The grid
// bound is valid for any grid; this many points from each CDF keeps the
// slack (the bound's excess over the true sup distance) near 2/gridPoints.
const gridPoints = 512

// mergeRelTol collapses a two-rate chain to an Erlang when the stage rates
// agree to this relative precision; the distinct-rate CDF formula divides by
// the rate gap and loses all precision there.
const mergeRelTol = 1e-9

// Surrogate is a fitted acyclic phase-type distribution in one of two
// shapes: a sequential chain of exponential stages (k-1 stages at rate1
// followed by one at rate2; rate1 == rate2 is the Erlang, k == 1 a single
// exponential) or a two-branch hyperexponential mixture (rate1 with
// probability p, rate2 otherwise). The zero value is not a valid surrogate;
// values come from Fit.
type Surrogate struct {
	mixture      bool
	k            int
	rate1, rate2 float64
	p            float64
}

// Mixture reports whether the surrogate is a two-branch hyperexponential
// (true) or a sequential chain (false).
func (s Surrogate) Mixture() bool { return s.mixture }

// Phases returns the number of exponential phases the surrogate occupies: 2
// for a mixture, the chain length otherwise.
func (s Surrogate) Phases() int {
	if s.mixture {
		return 2
	}
	return s.k
}

// Rates returns the stage rates of a chain surrogate in the order the
// stages elapse, or the two branch rates of a mixture.
func (s Surrogate) Rates() []float64 {
	if s.mixture {
		return []float64{s.rate1, s.rate2}
	}
	rates := make([]float64, s.k)
	for i := 0; i < s.k-1; i++ {
		rates[i] = s.rate1
	}
	rates[s.k-1] = s.rate2
	return rates
}

// BranchProbability returns the probability of the rate1 branch of a
// mixture surrogate, and 0 for chains.
func (s Surrogate) BranchProbability() float64 {
	if !s.mixture {
		return 0
	}
	return s.p
}

// Family names the surrogate's distribution family for evidence strings.
func (s Surrogate) Family() string {
	switch {
	case s.mixture:
		return "hyperexponential"
	case s.k == 1:
		return "exponential"
	case s.rate1 == s.rate2:
		return "erlang"
	default:
		return "hypoexponential"
	}
}

// Mean returns the surrogate's expected value.
func (s Surrogate) Mean() float64 {
	if s.mixture {
		return s.p/s.rate1 + (1-s.p)/s.rate2
	}
	return float64(s.k-1)/s.rate1 + 1/s.rate2
}

// CDF evaluates the surrogate's cumulative distribution function.
func (s Surrogate) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	switch {
	case s.mixture:
		return clamp01(-s.p*math.Expm1(-s.rate1*x) - (1-s.p)*math.Expm1(-s.rate2*x))
	case s.k == 1:
		return clamp01(-math.Expm1(-s.rate2 * x))
	case s.rate1 == s.rate2:
		return clamp01(regularizedGammaP(float64(s.k), s.rate1*x))
	default:
		// Erlang(k-1, rate1) convolved with Exp(rate2), rate1 > rate2:
		//   F(x) = P(m, r1 x) - e^(-r2 x) (r1/(r1-r2))^m P(m, (r1-r2) x)
		// with m = k-1 and P the regularized lower incomplete gamma. The
		// second term is assembled in log space: the ratio power overflows
		// long before the product stops being meaningful.
		m := float64(s.k - 1)
		gap := s.rate1 - s.rate2
		logTerm := -s.rate2*x + m*math.Log(s.rate1/gap) + logRegularizedGammaP(m, gap*x)
		return clamp01(regularizedGammaP(m, s.rate1*x) - math.Exp(logTerm))
	}
}

// Quantile inverts the CDF by bisection (no closed form exists for chains).
func (s Surrogate) Quantile(p float64) float64 {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return math.NaN()
	}
	if p == 0 {
		return 0
	}
	if p == 1 {
		return math.Inf(1)
	}
	lo, hi := 0.0, s.Mean()+1
	for s.CDF(hi) < p {
		lo = hi
		hi *= 2
		if math.IsInf(hi, 1) {
			return math.Inf(1)
		}
	}
	for i := 0; i < 200; i++ {
		mid := lo + (hi-lo)/2
		if mid <= lo || mid >= hi {
			break
		}
		if s.CDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// Describe renders the surrogate for evidence strings.
func (s Surrogate) Describe() string {
	switch {
	case s.mixture:
		return fmt.Sprintf("hyperexponential(p=%g at rate %g/h, else rate %g/h)", s.p, s.rate1, s.rate2)
	case s.k == 1:
		return fmt.Sprintf("exponential(rate=%g/h)", s.rate2)
	case s.rate1 == s.rate2:
		return fmt.Sprintf("erlang(k=%d, rate=%g/h)", s.k, s.rate1)
	default:
		return fmt.Sprintf("hypoexponential(%d stages at rate %g/h + 1 at rate %g/h)", s.k-1, s.rate1, s.rate2)
	}
}

// Result is one certified fit: the surrogate, the metric it is certified
// in, the proven distance bound, the tolerance it was proven against, and
// the raw moments of the original that the construction matched.
type Result struct {
	Surrogate Surrogate
	// Metric is MetricKolmogorov or MetricLevy.
	Metric string
	// Bound is the certified upper bound on the metric distance between the
	// original distribution and the surrogate.
	Bound float64
	// Tolerance is the caller's tolerance the bound was proven against.
	Tolerance float64
	// MomentsMatched counts the leading raw moments the construction
	// matches exactly (before float rounding): 3 for the three-moment
	// hyperexponential, 2 for two-moment chains and the balanced-means
	// fallback, 1 for the tolerance-ordered Erlang of a point mass.
	MomentsMatched int
	// TargetMoments holds the original's first three raw moments.
	TargetMoments [3]float64
}

// cdfQuantiler is the capability the bound certification needs from the
// original distribution.
type cdfQuantiler interface {
	dist.CDFer
	dist.Quantiler
}

// Fit fits a phase-type surrogate for d and certifies its distance bound
// against tol (in (0, 1)). It returns ErrNonFittable (wrapped, with the
// achievable bound in the message) when no supported surrogate meets tol,
// and a plain error for unusable tolerances.
func Fit(d dist.Distribution, tol float64) (Result, error) {
	if math.IsNaN(tol) || tol <= 0 || tol >= 1 {
		return Result{}, fmt.Errorf("phfit: tolerance must be in (0, 1), got %v", tol)
	}
	if det, ok := d.(dist.Deterministic); ok {
		return fitDeterministic(det, tol)
	}
	target, ok := d.(cdfQuantiler)
	if !ok {
		return Result{}, fmt.Errorf("%w: %s exposes no CDF/quantile to certify a bound against", ErrNonFittable, dist.Describe(d))
	}
	m1, m2, m3, ok := dist.RawMoments(d)
	if !ok {
		return Result{}, fmt.Errorf("%w: %s exposes no closed-form moments to match", ErrNonFittable, dist.Describe(d))
	}
	if !(m1 > 0) || math.IsInf(m1, 1) {
		return Result{}, fmt.Errorf("%w: %s has unusable mean %v", ErrNonFittable, dist.Describe(d), m1)
	}
	v := m2 - m1*m1
	cv2 := v / (m1 * m1)
	var (
		sur     Surrogate
		matched int
	)
	switch {
	case math.Abs(cv2-1) <= 1e-9:
		sur = Surrogate{k: 1, rate1: 1 / m1, rate2: 1 / m1}
		matched = 2
	case cv2 < 1:
		if cv2 < 1/float64(MaxPhases) {
			return Result{}, fmt.Errorf(
				"%w: %s has squared coefficient of variation %.4g; matching it needs more than the %d-phase budget",
				ErrNonFittable, dist.Describe(d), cv2, MaxPhases)
		}
		k := int(math.Ceil(1/cv2 - 1e-12))
		if k < 2 {
			k = 2
		}
		// k-1 stages of mean a plus one of mean b: m1 = (k-1)a + b,
		// v = (k-1)a^2 + b^2; the smaller root keeps both means positive
		// for 1/k <= cv2 < 1.
		s := math.Sqrt(math.Max(0, (float64(k)*v-m1*m1)/float64(k-1)))
		a := (m1 - s) / float64(k)
		b := (m1 + float64(k-1)*s) / float64(k)
		if (b-a)/b <= mergeRelTol {
			rate := float64(k) / m1
			sur = Surrogate{k: k, rate1: rate, rate2: rate}
		} else {
			sur = Surrogate{k: k, rate1: 1 / a, rate2: 1 / b}
		}
		matched = 2
	default:
		sur, matched = fitHyper(m1, m2, m3, cv2)
	}
	bound := kolmogorovBound(target, sur)
	res := Result{
		Surrogate:      sur,
		Metric:         MetricKolmogorov,
		Bound:          bound,
		Tolerance:      tol,
		MomentsMatched: matched,
		TargetMoments:  [3]float64{m1, m2, m3},
	}
	if bound > tol {
		return Result{}, fmt.Errorf(
			"%w: best %s for %s has certified %s distance %.4g > tolerance %.4g",
			ErrNonFittable, sur.Family(), dist.Describe(d), res.Metric, bound, tol)
	}
	return res, nil
}

// fitHyper fits a two-branch hyperexponential for cv2 > 1: three-moment
// matching via the two-atom Stieltjes construction when feasible, the
// two-moment balanced-means mixture otherwise.
func fitHyper(m1, m2, m3, cv2 float64) (Surrogate, int) {
	// Normalized moments mu_k = m_k/k! turn the branch means x1, x2 into
	// the atoms of a two-point measure with weights p, 1-p matching
	// mu_k = p x1^k + (1-p) x2^k; the atoms solve x^2 = alpha x + beta.
	mu1, mu2, mu3 := m1, m2/2, m3/6
	denom := mu2 - mu1*mu1 // > 0 exactly when cv2 > 1
	alpha := (mu3 - mu1*mu2) / denom
	beta := mu2 - alpha*mu1
	if disc := alpha*alpha + 4*beta; disc > 0 {
		root := math.Sqrt(disc)
		x1 := (alpha + root) / 2 // slower branch (larger mean)
		x2 := (alpha - root) / 2
		if x2 > 0 && x1 > x2 {
			p := (mu1 - x2) / (x1 - x2)
			if p > 0 && p < 1 {
				return Surrogate{mixture: true, p: p, rate1: 1 / x1, rate2: 1 / x2}, 3
			}
		}
	}
	// Balanced means: both branches contribute m1/2 to the mean, leaving p
	// to absorb the variance.
	p := (1 + math.Sqrt((cv2-1)/(cv2+1))) / 2
	return Surrogate{mixture: true, p: p, rate1: 2 * p / m1, rate2: 2 * (1 - p) / m1}, 2
}

// fitDeterministic fits a point mass at its value d with an Erlang(k, k/d)
// — mean d, width shrinking as 1/sqrt(k) — choosing the smallest order
// whose certified relative Lévy distance meets tol.
func fitDeterministic(det dist.Deterministic, tol float64) (Result, error) {
	d := det.Mean()
	if !(d > 0) {
		return Result{}, fmt.Errorf("%w: deterministic(0) is a zero delay, not a fittable timer", ErrNonFittable)
	}
	best := math.Inf(1)
	for k := 1; k <= MaxPhases; k++ {
		rate := float64(k) / d
		sur := Surrogate{k: k, rate1: rate, rate2: rate}
		bound := levyBound(sur, d)
		if bound < best {
			best = bound
		}
		if bound <= tol {
			return Result{
				Surrogate:      sur,
				Metric:         MetricLevy,
				Bound:          bound,
				Tolerance:      tol,
				MomentsMatched: 1,
				TargetMoments:  [3]float64{d, d * d, d * d * d},
			}, nil
		}
	}
	return Result{}, fmt.Errorf(
		"%w: erlang(%d) for deterministic(%g) has certified %s distance %.4g > tolerance %.4g",
		ErrNonFittable, MaxPhases, d, MetricLevy, best, tol)
}

// levyBound certifies the relative Lévy distance between sur and the point
// mass at d: the returned eps satisfies sur.CDF(d(1-eps)) <= eps and
// 1 - sur.CDF(d(1+eps)) <= eps (the predicate is monotone in eps, so the
// upper bisection endpoint is a certified upper bound).
func levyBound(sur Surrogate, d float64) float64 {
	ok := func(eps float64) bool {
		return sur.CDF(d*(1-eps)) <= eps && 1-sur.CDF(d*(1+eps)) <= eps
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 80; i++ {
		mid := lo + (hi-lo)/2
		if mid <= lo || mid >= hi {
			break
		}
		if ok(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// kolmogorovBound certifies an upper bound on sup_x |F(x) - G(x)| between
// the target F and the surrogate G on a deterministic bracketing grid drawn
// from both CDFs' quantiles. Monotonicity bounds each cell [a, b] by
// max(F(b)-G(a), G(b)-F(a)) and the tail beyond the last point by
// max(1-F, 1-G) there, so the result is an upper bound for any grid; the
// grid density only controls its slack.
func kolmogorovBound(target cdfQuantiler, sur Surrogate) float64 {
	xs := make([]float64, 0, 2*gridPoints+4)
	for i := 1; i < gridPoints; i++ {
		p := float64(i) / gridPoints
		xs = append(xs, target.Quantile(p), sur.Quantile(p))
	}
	// Tail anchors push the final cell far enough out that its bound term
	// max(1-F, 1-G) is negligible against any usable tolerance.
	for _, p := range []float64{1 - 1e-6, 1 - 1e-9} {
		xs = append(xs, target.Quantile(p), sur.Quantile(p))
	}
	sort.Float64s(xs)
	bound, prev := 0.0, 0.0
	fPrev, gPrev := 0.0, 0.0
	for _, x := range xs {
		if !(x > prev) || math.IsInf(x, 1) {
			continue
		}
		fx, gx := target.CDF(x), sur.CDF(x)
		if cell := math.Max(fx-gPrev, gx-fPrev); cell > bound {
			bound = cell
		}
		prev, fPrev, gPrev = x, fx, gx
	}
	if tail := math.Max(1-fPrev, 1-gPrev); tail > bound {
		bound = tail
	}
	return bound
}

// clamp01 confines float-rounded CDF values to [0, 1].
func clamp01(x float64) float64 {
	switch {
	case x < 0:
		return 0
	case x > 1:
		return 1
	default:
		return x
	}
}
