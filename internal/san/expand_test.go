package san

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/dist"
)

func mustErlang(t *testing.T, k int, rate float64) dist.Distribution {
	t.Helper()
	d, err := dist.NewErlang(k, rate)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func mustUniform(t *testing.T, lo, hi float64) dist.Distribution {
	t.Helper()
	d, err := dist.NewUniform(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func mustExpRate(t *testing.T, rate float64) dist.Exponential {
	t.Helper()
	d, err := dist.NewExponentialFromRate(rate)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestExpandPhasesErlangStructure pins the chain the pass builds for a
// 3-stage Erlang: two fresh phase places, a gate-guarded first stage, one
// pass-through middle stage, and the original activity as the final stage
// with an extra input arc and an exponential delay.
func TestExpandPhasesErlangStructure(t *testing.T) {
	m := NewModel("expand-structure")
	pending := m.AddPlace("pending", 1)
	done := m.AddPlace("done", 0)
	m.AddTimedActivity("repair", mustErlang(t, 3, 0.5)).
		AddInputArc(pending, 1).
		AddOutputArc(done, 1)

	rep, err := ExpandPhases(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Refusals) != 0 {
		t.Fatalf("unexpected refusals: %v", rep.Refusals)
	}
	if len(rep.Expanded) != 1 || !strings.Contains(rep.Expanded[0], `activity "repair"`) {
		t.Fatalf("expected one evidence entry for repair, got %v", rep.Expanded)
	}
	if !strings.Contains(rep.Expanded[0], "3 exponential phase(s)") {
		t.Fatalf("evidence must state the phase count: %q", rep.Expanded[0])
	}
	wantTouched := []string{"repair", "repair/phase1", "repair/phase2"}
	if got := rep.Touched(); len(got) != len(wantTouched) {
		t.Fatalf("touched = %v, want %v", got, wantTouched)
	} else {
		for i := range got {
			if got[i] != wantTouched[i] {
				t.Fatalf("touched = %v, want %v", got, wantTouched)
			}
		}
	}
	// Two fresh phase places, two new stage activities.
	if m.NumPlaces() != 4 {
		t.Fatalf("NumPlaces = %d, want 4", m.NumPlaces())
	}
	if m.NumActivities() != 3 {
		t.Fatalf("NumActivities = %d, want 3", m.NumActivities())
	}
	for _, name := range []string{"repair/phase1", "repair/phase2"} {
		if m.Activity(name) == nil {
			t.Fatalf("stage activity %q missing", name)
		}
		if m.Place(name) == nil {
			t.Fatalf("phase place %q missing", name)
		}
	}
	// The first stage is gate-guarded (checks, does not consume) and the
	// final stage is the original activity with the extra chain arc.
	first := m.Activity("repair/phase1")
	if len(first.inputArcs) != 0 || len(first.inputGates) != 1 {
		t.Fatalf("first stage must have no input arcs and one gate, got %d arcs, %d gates",
			len(first.inputArcs), len(first.inputGates))
	}
	final := m.Activity("repair")
	if len(final.inputArcs) != 2 {
		t.Fatalf("final stage must keep its arc and gain the chain arc, got %d arcs", len(final.inputArcs))
	}
	if _, ok := final.fixedDelay.(dist.Exponential); !ok {
		t.Fatalf("final stage delay must be exponential, got %T", final.fixedDelay)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("expanded model invalid: %v", err)
	}
	// Idempotence: everything is memoryless now, a second run is a no-op.
	rep2, err := ExpandPhases(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Expanded) != 0 || len(rep2.Refusals) != 0 {
		t.Fatalf("second pass must be a no-op, got %v / %v", rep2.Expanded, rep2.Refusals)
	}
}

// TestExpandPhasesSingleStageSwap pins the k == 1 special case: a shape-1
// Gamma is the exponential, so the delay is swapped in place with no new
// places or activities and no structural preconditions.
func TestExpandPhasesSingleStageSwap(t *testing.T) {
	g, err := dist.NewGamma(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel("expand-swap")
	p := m.AddPlace("p", 1)
	q := m.AddPlace("q", 0)
	// Even structurally hostile contexts (another consumer of p) are fine:
	// the swap does not build a chain.
	m.AddTimedActivity("swap", g).AddInputArc(p, 1).AddOutputArc(q, 1)
	m.AddTimedActivity("rival", mustExpRate(t, 1)).AddInputArc(p, 1).AddOutputArc(q, 1)

	rep, err := ExpandPhases(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Expanded) != 1 || len(rep.Refusals) != 0 {
		t.Fatalf("expected exactly one expansion, got %v / %v", rep.Expanded, rep.Refusals)
	}
	if m.NumPlaces() != 2 || m.NumActivities() != 2 {
		t.Fatalf("swap must not add places or activities: %d places, %d activities",
			m.NumPlaces(), m.NumActivities())
	}
	fd, ok := m.Activity("swap").fixedDelay.(dist.Exponential)
	if !ok {
		t.Fatalf("delay not swapped to exponential: %T", m.Activity("swap").fixedDelay)
	}
	if got := fd.Rate(); got != 0.5 {
		t.Fatalf("swapped rate = %v, want 0.5 (1/scale)", got)
	}
}

// TestExpandPhasesRefusals pins the classification of every delay the pass
// must leave alone: each case gets a RefusalNonExpandable reason naming the
// distribution or the failed structural precondition, and the model keeps
// its shape.
func TestExpandPhasesRefusals(t *testing.T) {
	cases := []struct {
		name  string
		build func(t *testing.T, m *Model)
		want  string
	}{
		{
			name: "no finite phase form",
			build: func(t *testing.T, m *Model) {
				p := m.AddPlace("p", 1)
				m.AddTimedActivity("a", mustUniform(t, 1, 2)).AddInputArc(p, 1)
			},
			want: "no exact finite phase-type form",
		},
		{
			name: "marking-dependent delay",
			build: func(t *testing.T, m *Model) {
				p := m.AddPlace("p", 1)
				u := mustUniform(t, 1, 2)
				m.AddTimedActivityFunc("a", func(MarkingReader) dist.Distribution { return u }).
					AddInputArc(p, 1)
			},
			want: "marking-dependent delay is not statically expandable",
		},
		{
			name: "reactivation",
			build: func(t *testing.T, m *Model) {
				p := m.AddPlace("p", 1)
				a := m.AddTimedActivity("a", mustErlang(t, 2, 1)).AddInputArc(p, 1)
				a.SetReactivation(true)
			},
			want: "reactivation resamples",
		},
		{
			name: "input gate",
			build: func(t *testing.T, m *Model) {
				p := m.AddPlace("p", 1)
				m.AddTimedActivity("a", mustErlang(t, 2, 1)).
					AddInputGate(&InputGate{
						Name:    "g",
						Reads:   []*Place{p},
						Enabled: func(mr MarkingReader) bool { return mr.Tokens(p) > 0 },
					})
			},
			want: "input-gate enabling cannot be proven stable",
		},
		{
			name: "shared consumer",
			build: func(t *testing.T, m *Model) {
				p := m.AddPlace("p", 1)
				q := m.AddPlace("q", 0)
				m.AddTimedActivity("a", mustErlang(t, 2, 1)).AddInputArc(p, 1).AddOutputArc(q, 1)
				m.AddTimedActivity("rival", mustExpRate(t, 1)).AddInputArc(p, 1).AddOutputArc(q, 1)
			},
			want: `input place "p" has other consumers`,
		},
		{
			name: "gate transform writes input place",
			build: func(t *testing.T, m *Model) {
				p := m.AddPlace("p", 1)
				q := m.AddPlace("q", 1)
				r := m.AddPlace("r", 0)
				m.AddTimedActivity("a", mustErlang(t, 2, 1)).AddInputArc(p, 1).AddOutputArc(r, 1)
				m.AddTimedActivity("refill", mustExpRate(t, 1)).AddInputArc(q, 1).
					AddCase(Case{OutputGates: []*OutputGate{{
						Name:      "og",
						Transform: func(mw MarkingWriter) { mw.Add(p, 1) },
					}}})
			},
			want: `input place "p" is written by a gate transform`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := NewModel("refusal-" + tc.name)
			tc.build(t, m)
			before := m.NumActivities()
			rep, err := ExpandPhases(m)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Expanded) != 0 {
				t.Fatalf("nothing may expand, got %v", rep.Expanded)
			}
			if len(rep.Refusals) != 1 {
				t.Fatalf("expected one refusal, got %v", rep.Refusals)
			}
			r := rep.Refusals[0]
			if !strings.HasPrefix(r, RefusalNonExpandable) {
				t.Fatalf("refusal %q must carry the %q prefix", r, RefusalNonExpandable)
			}
			if !strings.Contains(r, tc.want) {
				t.Fatalf("refusal %q must mention %q", r, tc.want)
			}
			if m.NumActivities() != before {
				t.Fatalf("refused model must keep its shape: %d -> %d activities", before, m.NumActivities())
			}
		})
	}
}

// TestExpansionReportVerifyTamper pins the proof obligation: a touched
// activity whose delay is not memoryless after the pass is an
// ErrExpansionUnsound, as is a touched activity missing from the model.
func TestExpansionReportVerifyTamper(t *testing.T) {
	m := NewModel("verify-tamper")
	p := m.AddPlace("p", 1)
	q := m.AddPlace("q", 0)
	m.AddTimedActivity("a", mustErlang(t, 2, 1)).AddInputArc(p, 1).AddOutputArc(q, 1)
	rep, err := ExpandPhases(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Verify(m); err != nil {
		t.Fatalf("fresh expansion must verify: %v", err)
	}
	m.Activity("a").fixedDelay = mustUniform(t, 1, 2)
	if err := rep.Verify(m); !errors.Is(err, ErrExpansionUnsound) {
		t.Fatalf("tampered delay must fail verification with ErrExpansionUnsound, got %v", err)
	}
	rep2 := &ExpansionReport{touched: []string{"ghost"}}
	if err := rep2.Verify(m); !errors.Is(err, ErrExpansionUnsound) {
		t.Fatalf("missing touched activity must fail verification, got %v", err)
	}
}

// TestReplicaClassExpandPhases pins the lumped-form chain: phase states
// become local states, the final stage keeps the transition's name,
// destination, and effect, and exponential competitors are replicated from
// every phase state.
func TestReplicaClassExpandPhases(t *testing.T) {
	fired := 0
	c := ReplicaClass{
		States:  []string{"up", "down"},
		Initial: "up",
		Transitions: []ReplicaTransition{
			{Name: "fail", From: "up", To: "down", Delay: mustExpRate(t, 0.01)},
			{Name: "repair", From: "down", To: "up", Delay: mustErlang(t, 3, 0.5),
				Effect: func(MarkingWriter) { fired++ }},
			{Name: "scrap", From: "down", To: "up", Delay: mustExpRate(t, 0.001)},
		},
	}
	out, evidence, err := c.ExpandPhases()
	if err != nil {
		t.Fatal(err)
	}
	if len(evidence) != 1 || !strings.Contains(evidence[0], `transition "repair"`) {
		t.Fatalf("expected one evidence entry for repair, got %v", evidence)
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("expanded class invalid: %v", err)
	}
	// 2 original states + 2 phase states.
	if len(out.States) != 4 {
		t.Fatalf("States = %v, want 4 entries", out.States)
	}
	byName := map[string]ReplicaTransition{}
	for _, tr := range out.Transitions {
		byName[tr.Name] = tr
	}
	final, ok := byName["repair"]
	if !ok {
		t.Fatalf("final stage must keep the name \"repair\": %v", out.Transitions)
	}
	if final.From != "repair/phase2" || final.To != "up" || final.Effect == nil {
		t.Fatalf("final stage misplaced: %+v", final)
	}
	if _, ok := byName["repair/phase1"]; !ok {
		t.Fatalf("first stage missing: %v", out.Transitions)
	}
	// "scrap" shares the chain's From state ("down"), so it is replicated
	// from both phase states; "fail" leaves "up" and must not be.
	for _, want := range []string{"scrap@repair/phase1", "scrap@repair/phase2"} {
		tr, ok := byName[want]
		if !ok {
			t.Fatalf("competitor %q not replicated: %v", want, out.Transitions)
		}
		if tr.To != "up" {
			t.Fatalf("replicated competitor %q must keep its destination, got %q", want, tr.To)
		}
	}
	for name := range byName {
		if strings.HasPrefix(name, "fail@") {
			t.Fatalf("transition %q wrongly replicated: it does not leave the chain's From state", name)
		}
	}
}

// TestReplicaClassExpandPhasesRefusals pins the lumped-form refusals: no
// finite phase form, two chains out of one state, and a non-exponential
// competitor racing a chain.
func TestReplicaClassExpandPhasesRefusals(t *testing.T) {
	cases := []struct {
		name string
		c    ReplicaClass
		want string
	}{
		{
			name: "no finite phase form",
			c: ReplicaClass{
				States: []string{"a", "b"}, Initial: "a",
				Transitions: []ReplicaTransition{
					{Name: "t", From: "a", To: "b", Delay: mustUniform(t, 1, 2)},
				},
			},
			want: "no exact finite phase-type form",
		},
		{
			name: "two chains out of one state",
			c: ReplicaClass{
				States: []string{"a", "b"}, Initial: "a",
				Transitions: []ReplicaTransition{
					{Name: "t1", From: "a", To: "b", Delay: mustErlang(t, 2, 1)},
					{Name: "t2", From: "a", To: "b", Delay: mustErlang(t, 3, 1)},
				},
			},
			want: "both need phase chains",
		},
		{
			// A non-phase-type competitor is refused by the same phase-form
			// check whether or not it races a chain: the class can never
			// become all-exponential with it present.
			name: "non-phase-type competitor of a chain",
			c: ReplicaClass{
				States: []string{"a", "b"}, Initial: "a",
				Transitions: []ReplicaTransition{
					{Name: "t1", From: "a", To: "b", Delay: mustErlang(t, 2, 1)},
					{Name: "t2", From: "a", To: "b", Delay: mustUniform(t, 1, 2)},
				},
			},
			want: "no exact finite phase-type form",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := tc.c.ExpandPhases()
			if err == nil {
				t.Fatal("expected a refusal error")
			}
			if !errors.Is(err, ErrNonExponential) {
				t.Fatalf("refusal must wrap ErrNonExponential: %v", err)
			}
			if !strings.Contains(err.Error(), RefusalNonExpandable) {
				t.Fatalf("refusal %v must carry %q", err, RefusalNonExpandable)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("refusal %v must mention %q", err, tc.want)
			}
		})
	}
}

// TestReplicaClassExpandSingleStageCompetitor pins the race with a
// single-stage expandable competitor: the shape-1 Gamma is swapped for its
// exponential both on its own transition and on every per-phase copy.
func TestReplicaClassExpandSingleStageCompetitor(t *testing.T) {
	g, err := dist.NewGamma(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	c := ReplicaClass{
		States: []string{"a", "b"}, Initial: "a",
		Transitions: []ReplicaTransition{
			{Name: "chain", From: "a", To: "b", Delay: mustErlang(t, 2, 1)},
			{Name: "swap", From: "a", To: "b", Delay: g},
		},
	}
	out, evidence, err := c.ExpandPhases()
	if err != nil {
		t.Fatal(err)
	}
	if len(evidence) != 2 {
		t.Fatalf("both transitions must report evidence, got %v", evidence)
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("expanded class invalid: %v", err)
	}
	for _, tr := range out.Transitions {
		e, ok := tr.Delay.(dist.Exponential)
		if !ok {
			t.Fatalf("transition %q delay not exponential: %T", tr.Name, tr.Delay)
		}
		if strings.HasPrefix(tr.Name, "swap") && e.Rate() != 0.25 {
			t.Fatalf("swapped competitor %q rate = %v, want 0.25 (1/scale)", tr.Name, e.Rate())
		}
	}
	if _, ok := func() (ReplicaTransition, bool) {
		for _, tr := range out.Transitions {
			if tr.Name == "swap@chain/phase1" {
				return tr, true
			}
		}
		return ReplicaTransition{}, false
	}(); !ok {
		t.Fatalf("per-phase competitor copy missing: %v", out.Transitions)
	}
}

// TestReplicaClassExpandLumpedAcceptance closes the loop: an Erlang class
// is rejected by ReplicateLumped as written, and accepted after expansion.
func TestReplicaClassExpandLumpedAcceptance(t *testing.T) {
	c := ReplicaClass{
		States:  []string{"up", "down"},
		Initial: "up",
		Transitions: []ReplicaTransition{
			{Name: "fail", From: "up", To: "down", Delay: mustExpRate(t, 0.01)},
			{Name: "repair", From: "down", To: "up", Delay: mustErlang(t, 2, 0.5)},
		},
	}
	m := NewModel("lump-reject")
	if _, err := ReplicateLumped(m, "pool", 4, c); !errors.Is(err, ErrNonExponential) {
		t.Fatalf("unexpanded Erlang class must be rejected, got %v", err)
	}
	out, evidence, err := c.ExpandPhases()
	if err != nil {
		t.Fatal(err)
	}
	if len(evidence) != 1 {
		t.Fatalf("expected one evidence entry, got %v", evidence)
	}
	m2 := NewModel("lump-accept")
	lp, err := ReplicateLumped(m2, "pool", 4, out)
	if err != nil {
		t.Fatalf("expanded class must lump: %v", err)
	}
	if lp.State("repair/phase1") == nil {
		t.Fatal("phase state must have a counting place")
	}
	if err := m2.Validate(); err != nil {
		t.Fatalf("lumped model invalid: %v", err)
	}
}
