// Package errs exercises the errcheck rule.
package errs

import (
	"errors"
	"fmt"
	"strings"
)

func fail() error { return errors.New("boom") }

func pair() (int, error) { return 0, nil }

// Discard drops the error of a bare call statement.
func Discard() {
	fail() // want errcheck
}

// Blank discards the error half of a pair.
func Blank() int {
	n, _ := pair() // want errcheck
	return n
}

// Handled checks everything: allowed.
func Handled() (int, error) {
	if err := fail(); err != nil {
		return 0, err
	}
	return pair()
}

// Allowed writes to in-memory sinks and defers a close-like call, none of
// which the rule flags.
func Allowed() string {
	var b strings.Builder
	b.WriteString("ok")
	fmt.Fprintf(&b, "%d", 1)
	fmt.Println("hello")
	defer fail()
	return b.String()
}
