package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/rareevent"
	"repro/internal/rng"
	"repro/internal/san"
)

func mustExp(t testing.TB, mean float64) dist.Exponential {
	t.Helper()
	e, err := dist.NewExponentialFromMean(mean)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func mustUniform(t testing.TB, lo, hi float64) dist.Uniform {
	t.Helper()
	u, err := dist.NewUniform(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func mustDet(t testing.TB, v float64) dist.Deterministic {
	t.Helper()
	d, err := dist.NewDeterministic(v)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRepairableConfigValidate(t *testing.T) {
	good := RepairableConfig{MTBFHours: 100, Repair: mustDet(t, 1)}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if err := (RepairableConfig{MTBFHours: 0, Repair: mustDet(t, 1)}).Validate(); err == nil {
		t.Error("zero MTBF accepted")
	}
	if err := (RepairableConfig{MTBFHours: 10}).Validate(); err == nil {
		t.Error("nil repair accepted")
	}
}

func TestBuildRepairableAvailability(t *testing.T) {
	m := san.NewModel("repairable")
	downCounter := m.AddPlace("down_counter", 0)
	cfg := RepairableConfig{MTBFHours: 100, Repair: mustDet(t, 10)}
	if err := BuildRepairable(m, "comp", cfg, downCounter); err != nil {
		t.Fatal(err)
	}
	if err := BuildRepairable(m, "comp2", cfg, nil); err == nil {
		t.Error("nil counter accepted")
	}
	if err := BuildRepairable(m, "comp3", RepairableConfig{}, downCounter); err == nil {
		t.Error("invalid config accepted")
	}
	rewards := []san.RewardVariable{
		san.UpFraction("avail", func(mr san.MarkingReader) bool { return mr.Tokens(downCounter) == 0 }),
	}
	res, err := san.RunReplications(m, rewards, san.Options{Mission: 20000, Replications: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := 100.0 / 110.0
	if math.Abs(res.Mean("avail")-want) > 0.01 {
		t.Errorf("availability = %v, want ~%v", res.Mean("avail"), want)
	}
}

func TestPairConfigValidate(t *testing.T) {
	good := PairConfig{
		HWMTBFHours: 1440, HWRepair: mustUniform(t, 12, 36),
		SWMTBFHours: 1440, SWRepair: mustUniform(t, 2, 6),
		PropagationProb: 0.015,
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := good
	bad.PropagationProb = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("propagation > 1 accepted")
	}
	bad = good
	bad.HWMTBFHours = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero hw MTBF accepted")
	}
	bad = good
	bad.Spare = true
	if err := bad.Validate(); err == nil {
		t.Error("spare without activation time accepted")
	}
	bad.SpareActivationHours = 8
	if err := bad.Validate(); err != nil {
		t.Errorf("valid spare config rejected: %v", err)
	}
}

func TestFailoverPairMasksSingleFailures(t *testing.T) {
	// With no correlation and fast repairs relative to failures, single
	// member failures are masked and the pair is essentially always up.
	m := san.NewModel("pair")
	pairsOut := m.AddPlace("pairs_out", 0)
	cfg := PairConfig{
		HWMTBFHours: 2000, HWRepair: mustDet(t, 4),
		SWMTBFHours: 2000, SWRepair: mustDet(t, 1),
		PropagationProb: 0,
	}
	if _, err := BuildFailoverPair(m, "oss", cfg, pairsOut); err != nil {
		t.Fatal(err)
	}
	rewards := []san.RewardVariable{
		san.UpFraction("pair_avail", func(mr san.MarkingReader) bool { return mr.Tokens(pairsOut) == 0 }),
	}
	res, err := san.RunReplications(m, rewards, san.Options{Mission: 8760, Replications: 30, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Mean("pair_avail"); got < 0.9999 {
		t.Errorf("pair availability = %v, want ~1 when single faults are masked", got)
	}
}

func TestFailoverPairCorrelatedFailuresCauseOutage(t *testing.T) {
	// With propagation probability 1, every failure takes both members down,
	// so outages must be visible. The availability should be close to the
	// two-state value MTBF/(MTBF+MTTR) for the hw+sw superposition.
	m := san.NewModel("pair-corr")
	pairsOut := m.AddPlace("pairs_out", 0)
	cfg := PairConfig{
		HWMTBFHours: 500, HWRepair: mustDet(t, 24),
		SWMTBFHours: 500, SWRepair: mustDet(t, 24),
		PropagationProb: 1,
	}
	if _, err := BuildFailoverPair(m, "oss", cfg, pairsOut); err != nil {
		t.Fatal(err)
	}
	rewards := []san.RewardVariable{
		san.UpFraction("pair_avail", func(mr san.MarkingReader) bool { return mr.Tokens(pairsOut) == 0 }),
	}
	res, err := san.RunReplications(m, rewards, san.Options{Mission: 8760, Replications: 40, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Mean("pair_avail")
	if got > 0.95 || got < 0.75 {
		t.Errorf("pair availability with full correlation = %v, want noticeable outages (0.75-0.95)", got)
	}
}

func TestFailoverPairDoubleFaultAccounting(t *testing.T) {
	// Deterministic failure injection: both servers fail at the same instant
	// (deterministic lifetimes), so the pair goes down exactly once and
	// recovers after the deterministic repair.
	m := san.NewModel("pair-det")
	pairsOut := m.AddPlace("pairs_out", 0)
	// Deterministic "exponential" is not available through PairConfig (it
	// draws exponential lifetimes), so instead use propagation 1 with one
	// rare process: the first failure at ~t drags the partner down too.
	cfg := PairConfig{
		HWMTBFHours: 100, HWRepair: mustDet(t, 50),
		SWMTBFHours: 1e9, SWRepair: mustDet(t, 1),
		PropagationProb: 1,
	}
	pp, err := BuildFailoverPair(m, "oss", cfg, pairsOut)
	if err != nil {
		t.Fatal(err)
	}
	rewards := []san.RewardVariable{
		san.UpFraction("pair_avail", func(mr san.MarkingReader) bool { return mr.Tokens(pairsOut) == 0 }),
		{Name: "final_up_count", Mode: san.InstantAtEnd, Rate: func(mr san.MarkingReader) float64 {
			return float64(mr.Tokens(pp.UpCount))
		}},
		{Name: "final_pairs_out", Mode: san.InstantAtEnd, Rate: func(mr san.MarkingReader) float64 {
			return float64(mr.Tokens(pairsOut))
		}},
	}
	sim, err := san.NewSimulator(m, rewards, rng.NewStream(77, "pair-det"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(5000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rewards["pair_avail"] >= 1 || res.Rewards["pair_avail"] <= 0 {
		t.Errorf("pair availability = %v, want in (0,1)", res.Rewards["pair_avail"])
	}
	// The counter must never go negative or exceed 1 for a single pair; the
	// final state must be consistent with the up count.
	if out := res.Rewards["final_pairs_out"]; out != 0 && out != 1 {
		t.Errorf("final pairs_out = %v, want 0 or 1", out)
	}
	if up, out := res.Rewards["final_up_count"], res.Rewards["final_pairs_out"]; up > 0 && out != 0 {
		t.Errorf("inconsistent final state: up_count=%v pairs_out=%v", up, out)
	}
}

func TestSpareImprovesAvailability(t *testing.T) {
	build := func(spare bool) float64 {
		m := san.NewModel("pair-spare")
		pairsOut := m.AddPlace("pairs_out", 0)
		cfg := PairConfig{
			HWMTBFHours: 400, HWRepair: mustDet(t, 30),
			SWMTBFHours: 1e9, SWRepair: mustDet(t, 1),
			PropagationProb: 1,
			Spare:           spare,
		}
		if spare {
			cfg.SpareActivationHours = 6
		}
		if _, err := BuildFailoverPair(m, "oss", cfg, pairsOut); err != nil {
			t.Fatal(err)
		}
		rewards := []san.RewardVariable{
			san.UpFraction("pair_avail", func(mr san.MarkingReader) bool { return mr.Tokens(pairsOut) == 0 }),
		}
		res, err := san.RunReplications(m, rewards, san.Options{Mission: 8760, Replications: 40, Seed: 21})
		if err != nil {
			t.Fatal(err)
		}
		return res.Mean("pair_avail")
	}
	without := build(false)
	with := build(true)
	if !(with > without) {
		t.Errorf("spare did not improve availability: %v vs %v", with, without)
	}
	// With a 6 h activation against a 30 h repair the outage time should
	// shrink by well over half.
	lossWithout := 1 - without
	lossWith := 1 - with
	if lossWith > 0.6*lossWithout {
		t.Errorf("spare reduced outage only from %v to %v", lossWithout, lossWith)
	}
}

func TestTransientConfigValidate(t *testing.T) {
	good := TransientConfig{EventsPerHour: 0.12, OutageLoHours: 0.03, OutageHiHours: 0.15}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if err := (TransientConfig{EventsPerHour: 0, OutageLoHours: 0.1, OutageHiHours: 0.2}).Validate(); err == nil {
		t.Error("zero rate accepted")
	}
	if err := (TransientConfig{EventsPerHour: 1, OutageLoHours: 0.3, OutageHiHours: 0.2}).Validate(); err == nil {
		t.Error("inverted outage range accepted")
	}
}

func TestBuildTransientSource(t *testing.T) {
	m := san.NewModel("transient")
	cfg := TransientConfig{EventsPerHour: 0.5, OutageLoHours: 0.05, OutageHiHours: 0.1}
	tp, err := BuildTransientSource(m, "client_nw", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildTransientSource(m, "bad", TransientConfig{}); err == nil {
		t.Error("invalid config accepted")
	}
	rewards := []san.RewardVariable{
		san.CompletionCount("events", tp.EventActivity),
		san.UpFraction("clean", func(mr san.MarkingReader) bool { return mr.Tokens(tp.Active) == 0 }),
	}
	res, err := san.RunReplications(m, rewards, san.Options{Mission: 8760, Replications: 20, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	events := res.Mean("events")
	// Expected events per year: rate 0.5/h over the ~99.99% of time the
	// source is idle ≈ 0.5*8760*(1-eps) ≈ 4350.
	if events < 3800 || events > 4500 {
		t.Errorf("transient events per year = %v, want ~4300", events)
	}
	clean := res.Mean("clean")
	// Fraction of time without a transient in progress: 1 - rate*meanOutage
	// ≈ 1 - 0.5*0.075 ≈ 0.963.
	if math.Abs(clean-0.963) > 0.01 {
		t.Errorf("clean fraction = %v, want ~0.963", clean)
	}
}

// ulpOne is the spacing of float64 values around 1.0.
const ulpOne = 0x1p-52

// Property: for any valid pair configuration the pairs-out counter stays
// consistent: availability lies in [0,1] and the final counter value is 0 or
// 1 for a single pair.
func TestQuickPairCounterConsistency(t *testing.T) {
	f := func(seed uint64, propSeed, mtbfSeed uint8, spare bool) bool {
		prop := float64(propSeed%100) / 100.0
		mtbf := 200 + float64(mtbfSeed)*10
		m := san.NewModel("prop-pair")
		pairsOut := m.AddPlace("pairs_out", 0)
		cfg := PairConfig{
			HWMTBFHours: mtbf, HWRepair: mustDet(t, 20),
			SWMTBFHours: mtbf, SWRepair: mustDet(t, 3),
			PropagationProb: prop,
			Spare:           spare,
		}
		if spare {
			cfg.SpareActivationHours = 6
		}
		if _, err := BuildFailoverPair(m, "oss", cfg, pairsOut); err != nil {
			return false
		}
		rewards := []san.RewardVariable{
			san.UpFraction("avail", func(mr san.MarkingReader) bool { return mr.Tokens(pairsOut) == 0 }),
			{Name: "final_out", Mode: san.InstantAtEnd, Rate: func(mr san.MarkingReader) float64 {
				return float64(mr.Tokens(pairsOut))
			}},
		}
		sim, err := san.NewSimulator(m, rewards, rng.NewStream(seed, "prop"))
		if err != nil {
			return false
		}
		res, err := sim.Run(4000)
		if err != nil {
			return false
		}
		avail := res.Rewards["avail"]
		out := res.Rewards["final_out"]
		// The up-time accumulator sums interval lengths in float64, so an
		// always-up run can land an ulp above 1 (e.g. 1+2e-16); allow that
		// rounding without weakening the invariant.
		return avail >= 0 && avail <= 1+4*ulpOne && (out == 0 || out == 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// lumpablePairConfig returns a fully exponential pair configuration for the
// lumping tests.
func lumpablePairConfig(t testing.TB, hwMTBF, swMTBF, hwRepair, swRepair, p float64) PairConfig {
	t.Helper()
	return PairConfig{
		HWMTBFHours: hwMTBF, HWRepair: mustExp(t, hwRepair),
		SWMTBFHours: swMTBF, SWRepair: mustExp(t, swRepair),
		PropagationProb: p,
	}
}

func TestPairLumpable(t *testing.T) {
	good := lumpablePairConfig(t, 1000, 1000, 24, 4, 0.02)
	if !good.Lumpable() {
		t.Error("fully exponential pair not lumpable")
	}
	uniform := good
	uniform.HWRepair = mustUniform(t, 12, 36)
	if uniform.Lumpable() {
		t.Error("uniform repair reported lumpable")
	}
	spared := good
	spared.Spare = true
	spared.SpareActivationHours = 8
	if spared.Lumpable() {
		t.Error("spared pair reported lumpable")
	}
	// FailoverPairClass refuses the non-lumpable forms instead of mis-lumping.
	m := san.NewModel("guard")
	out := m.AddPlace("out", 0)
	if _, err := FailoverPairClass(uniform, out); err == nil {
		t.Error("uniform repair accepted by FailoverPairClass")
	}
	if _, err := FailoverPairClass(good, nil); err == nil {
		t.Error("nil pairs-out accepted")
	}
	if _, err := BuildFailoverPairsLumped(m, "pairs", 0, good, out); err == nil {
		t.Error("zero pair count accepted")
	}
}

// TestLumpedPairMatchesUniformization validates the lumped fail-over-pair
// class against an exact transient answer: with symmetric hardware/software
// rates, equal exponential repairs, and no propagation, the number of down
// servers in a pair is a birth-death chain, so the probability that the pair
// is ever fully down within the horizon is computable by uniformization.
func TestLumpedPairMatchesUniformization(t *testing.T) {
	const (
		mtbf    = 2000.0 // per kind, so each server fails at 1/1000 per hour
		repair  = 24.0
		horizon = 8760.0
		reps    = 2000
	)
	lambdaServer := 2.0 / mtbf
	mu := 1.0 / repair
	want, err := rareevent.BirthDeathHitProbability(
		[]float64{2 * lambdaServer, lambdaServer},
		[]float64{0, mu},
		horizon,
	)
	if err != nil {
		t.Fatal(err)
	}

	m := san.NewModel("pair-uniformization")
	pairsOut := m.AddPlace("pairs_out", 0)
	cfg := lumpablePairConfig(t, mtbf, mtbf, repair, repair, 0)
	lp, err := BuildFailoverPairsLumped(m, "pair", 1, cfg, pairsOut)
	if err != nil {
		t.Fatal(err)
	}
	// Importance: number of down servers (1 for the one-down states, 2 for
	// the fully-down states).
	oneDown := []*san.Place{lp.State("uh"), lp.State("us")}
	twoDown := []*san.Place{lp.State("hh"), lp.State("hs"), lp.State("ss")}
	importance := func(mr san.MarkingReader) float64 {
		n := 0
		for _, p := range oneDown {
			n += mr.Tokens(p)
		}
		for _, p := range twoDown {
			n += 2 * mr.Tokens(p)
		}
		return float64(n)
	}

	cm, err := san.Compile(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for rep := 0; rep < reps; rep++ {
		sim, err := cm.NewSimulator(rng.NewStream(uint64(rep+1), "pair-bd"))
		if err != nil {
			t.Fatal(err)
		}
		crossed := false
		if _, err := sim.RunMonitored(horizon, &san.Monitor{
			Importance:  importance,
			Threshold:   2,
			OnCross:     func(float64, *san.Snapshot) { crossed = true },
			StopOnCross: true,
		}); err != nil {
			t.Fatal(err)
		}
		if crossed {
			hits++
		}
	}
	got := float64(hits) / reps
	se := math.Sqrt(want * (1 - want) / reps)
	if math.Abs(got-want) > 4*se {
		t.Errorf("P(pair fully down by %v h) = %v, uniformization says %v (+/- %v)", horizon, got, want, se)
	}
}

// TestLumpedPairsMatchFlat pins the strong-lumping equivalence on the full
// pair class (asymmetric rates, correlated failures): n pairs built flat and
// lumped agree on availability and the time-averaged pairs-down count within
// pooled confidence intervals, while the lumped model size is independent of
// n.
func TestLumpedPairsMatchFlat(t *testing.T) {
	const n = 6
	cfg := lumpablePairConfig(t, 500, 700, 24, 4, 0.1)
	opts := san.Options{Mission: 8760, Replications: 32, Seed: 13}

	build := func(lumped bool) (*san.Model, []san.RewardVariable) {
		m := san.NewModel("pairs")
		pairsOut := m.AddPlace("pairs_out", 0)
		if lumped {
			if _, err := BuildFailoverPairsLumped(m, "oss", n, cfg, pairsOut); err != nil {
				t.Fatal(err)
			}
		} else {
			err := san.Replicate(m, "oss", n, func(m *san.Model, prefix string, _ int) error {
				_, err := BuildFailoverPair(m, prefix, cfg, pairsOut)
				return err
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		return m, []san.RewardVariable{
			san.UpFraction("avail", func(mr san.MarkingReader) bool { return mr.Tokens(pairsOut) == 0 }),
			san.TokenTimeAverage("pairs_down", pairsOut),
		}
	}

	flatModel, flatRewards := build(false)
	lumpedModel, lumpedRewards := build(true)
	if fs, ls := flatModel.Stats(), lumpedModel.Stats(); ls.Activities >= fs.Activities || ls.Places >= fs.Places {
		t.Errorf("lumped model not smaller: lumped %+v vs flat %+v", ls, fs)
	}
	flatStudy, err := san.RunReplications(flatModel, flatRewards, opts)
	if err != nil {
		t.Fatal(err)
	}
	lumpedStudy, err := san.RunReplications(lumpedModel, lumpedRewards, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, reward := range []string{"avail", "pairs_down"} {
		fci, err := flatStudy.Interval(reward)
		if err != nil {
			t.Fatal(err)
		}
		lci, err := lumpedStudy.Interval(reward)
		if err != nil {
			t.Fatal(err)
		}
		pooled := math.Sqrt(fci.HalfWidth*fci.HalfWidth + lci.HalfWidth*lci.HalfWidth)
		if math.Abs(fci.Mean-lci.Mean) > 3*pooled {
			t.Errorf("%s: flat %v vs lumped %v differ beyond pooled interval %v", reward, fci.Mean, lci.Mean, pooled)
		}
	}
}

func TestBuildTransientImpulseSource(t *testing.T) {
	m := san.NewModel("transient-lumped")
	cfg := TransientConfig{EventsPerHour: 0.5, OutageLoHours: 0.05, OutageHiHours: 0.1}
	tp, err := BuildTransientImpulseSource(m, "client_nw", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Active != nil {
		t.Error("impulse-only source should not expose a window place")
	}
	if _, err := BuildTransientImpulseSource(m, "bad", TransientConfig{}); err == nil {
		t.Error("invalid config accepted")
	}
	// One activity instead of two, one event per error instead of two, and
	// the same renewal law as the flat source's event activity.
	if got := m.Stats(); got.Activities != 1 {
		t.Errorf("activities = %d, want 1", got.Activities)
	}
	res, err := san.RunReplications(m, []san.RewardVariable{
		san.CompletionCount("events", tp.EventActivity),
	}, san.Options{Mission: 8760, Replications: 20, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	events := res.Mean("events")
	// Same expectation band as TestBuildTransientSource's flat form.
	if events < 3800 || events > 4500 {
		t.Errorf("transient events per year = %v, want ~4300", events)
	}
}

// TestErlangRepair pins the multi-stage repair constructor: the window's
// mean is preserved, the shape is the stage count, and degenerate inputs
// are rejected.
func TestErlangRepair(t *testing.T) {
	d, err := ErlangRepair(3, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	g, ok := d.(dist.Gamma)
	if !ok {
		t.Fatalf("ErlangRepair returned %T, want dist.Gamma", d)
	}
	if g.Shape() != 3 {
		t.Errorf("shape = %v, want 3", g.Shape())
	}
	if math.Abs(g.Mean()-12) > 1e-12 {
		t.Errorf("mean = %v, want 12 (window midpoint)", g.Mean())
	}
	if _, err := ErlangRepair(1, 8, 16); err == nil {
		t.Error("single-stage Erlang accepted; that is the exponential, use it directly")
	}
	if _, err := ErlangRepair(3, -16, 8); err == nil {
		t.Error("non-positive mean accepted")
	}
}
