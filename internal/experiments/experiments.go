// Package experiments regenerates every table and figure of the paper's
// evaluation from the reimplemented substrates: the log-analysis tables
// (Tables 1-4), the parameter table (Table 5), the composed-model figure
// (Figure 1), and the simulation studies (Figures 2-4), plus the ablations
// called out in DESIGN.md.
package experiments

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"repro/internal/abe"
	"repro/internal/checkpoint"
	"repro/internal/loganalysis"
	"repro/internal/loggen"
	"repro/internal/raid"
	"repro/internal/rareevent"
	"repro/internal/report"
	"repro/internal/san"
	"repro/internal/sweep"
)

// Options controls the cost/accuracy trade-off of the simulation studies.
type Options struct {
	// Replications per design point (default 60, or 12 in Quick mode).
	Replications int
	// MissionHours per replication (default one year).
	MissionHours float64
	// Seed for reproducibility (default 1).
	Seed uint64
	// Parallelism is the number of worker goroutines for the simulation
	// studies (0 = GOMAXPROCS). Results are bit-identical across settings.
	Parallelism int
	// Quick trades accuracy for speed (fewer replications, fewer sweep
	// points); intended for benchmarks and CI.
	Quick bool
}

func (o Options) withDefaults() Options {
	if o.Replications == 0 {
		if o.Quick {
			o.Replications = 12
		} else {
			o.Replications = 60
		}
	}
	if o.MissionHours == 0 {
		o.MissionHours = 8760
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

func (o Options) sanOptions() san.Options {
	return san.Options{
		Mission:      o.MissionHours,
		Replications: o.Replications,
		Confidence:   0.95,
		Seed:         o.Seed,
		Parallelism:  o.Parallelism,
	}
}

// ErrUnknownExperiment is returned by Run for unrecognized experiment names.
var ErrUnknownExperiment = errors.New("experiments: unknown experiment")

// ---------------------------------------------------------------------------
// Tables 1-4: log analysis on the synthetic ABE logs
// ---------------------------------------------------------------------------

// abeLogs generates the calibrated synthetic ABE logs (see loggen for why a
// synthetic substitute is used).
func abeLogs(seed uint64) (*loggen.Logs, error) {
	cfg := loggen.ABEConfig()
	if seed != 0 {
		cfg.Seed = seed
	}
	return loggen.Generate(cfg)
}

// Table1Outages reproduces Table 1: the outage list of the Lustre-FS with
// per-outage cause and duration, plus the availability estimate the paper
// derives from it (0.97-0.98).
func Table1Outages(opts Options) (report.Table, error) {
	opts = opts.withDefaults()
	logs, err := abeLogs(opts.Seed)
	if err != nil {
		return report.Table{}, err
	}
	return table1FromLogs(logs)
}

// table1FromLogs builds Table 1 from an already-generated log set.
func table1FromLogs(logs *loggen.Logs) (report.Table, error) {
	rep, err := loganalysis.AnalyzeOutages(logs.SAN)
	if err != nil {
		return report.Table{}, err
	}
	return table1FromReport(rep), nil
}

// table1FromReport builds Table 1 from an already-run outage analysis, so
// paper_full renders the exact analysis it calibrated from.
func table1FromReport(rep loganalysis.OutageReport) report.Table {
	t := report.Table{
		Title:   "Table 1: User notification of outage of the Lustre-FS (synthetic ABE log)",
		Headers: []string{"Cause of Failure", "Start time", "End time", "Hours"},
	}
	for _, o := range rep.Outages {
		t.AddRow(o.Cause, o.Start.Format("01/02/06 15:04"), o.End.Format("01/02/06 15:04"), fmt.Sprintf("%05.2f", o.Hours()))
	}
	t.AddRow("TOTAL", "", "", fmt.Sprintf("%.2f", rep.DowntimeHours))
	t.AddRow("Availability", "", "", fmt.Sprintf("%.4f", rep.Availability))
	return t
}

// Table2MountFailures reproduces Table 2: Lustre mount failures reported by
// compute nodes, aggregated per day.
func Table2MountFailures(opts Options) (report.Table, error) {
	opts = opts.withDefaults()
	logs, err := abeLogs(opts.Seed)
	if err != nil {
		return report.Table{}, err
	}
	return table2FromLogs(logs)
}

// table2FromLogs builds Table 2 from an already-generated log set.
func table2FromLogs(logs *loggen.Logs) (report.Table, error) {
	days, err := loganalysis.AnalyzeMountFailures(logs.Compute)
	if err != nil {
		return report.Table{}, err
	}
	return table2FromDays(days), nil
}

// table2FromDays builds Table 2 from an already-run mount-failure analysis.
func table2FromDays(days []loganalysis.MountFailureDay) report.Table {
	t := report.Table{
		Title:   "Table 2: Lustre mount failure notification by compute nodes (synthetic ABE log)",
		Headers: []string{"Date", "Nodes reporting mount failure"},
	}
	for _, d := range days {
		t.AddRow(d.Date.Format("01/02/06"), d.Nodes)
	}
	return t
}

// Table3JobStats reproduces Table 3: job execution statistics.
func Table3JobStats(opts Options) (report.Table, error) {
	opts = opts.withDefaults()
	logs, err := abeLogs(opts.Seed)
	if err != nil {
		return report.Table{}, err
	}
	return table3FromLogs(logs)
}

// table3FromLogs builds Table 3 from an already-generated log set.
func table3FromLogs(logs *loggen.Logs) (report.Table, error) {
	stats, err := loganalysis.AnalyzeJobs(logs.Compute)
	if err != nil {
		return report.Table{}, err
	}
	return table3FromStats(stats), nil
}

// table3FromStats builds Table 3 from an already-run job analysis.
func table3FromStats(stats loganalysis.JobStats) report.Table {
	t := report.Table{
		Title:   "Table 3: Job execution statistics for the ABE cluster (synthetic log)",
		Headers: []string{"Measure", "Value"},
	}
	t.AddRow("Total jobs submitted", stats.TotalJobs)
	t.AddRow("Total failures due to transient network errors", stats.TransientFailures)
	t.AddRow("Total failures due to other/file system errors", stats.OtherFailures)
	t.AddRow("Transient:other failure ratio", fmt.Sprintf("%.1f", stats.FailureRatio()))
	t.AddRow("Cluster utility (CU) from the log", fmt.Sprintf("%.4f", stats.ClusterUtility()))
	return t
}

// Table4DiskSurvival reproduces Table 4: the disk failure log and the
// Weibull survival analysis (the paper fits shape 0.6963571 +/- 0.1923109 on
// n=480 disks).
func Table4DiskSurvival(opts Options) (report.Table, error) {
	opts = opts.withDefaults()
	logs, err := abeLogs(opts.Seed)
	if err != nil {
		return report.Table{}, err
	}
	return table4FromLogs(logs, loggen.ABEConfig().Disks)
}

// table4FromLogs builds Table 4 from an already-generated log set and disk
// population.
func table4FromLogs(logs *loggen.Logs, population int) (report.Table, error) {
	disks, err := loganalysis.AnalyzeDisks(logs.SAN, population)
	if err != nil {
		return report.Table{}, err
	}
	return table4FromReport(disks, population), nil
}

// table4FromReport builds Table 4 from an already-run disk analysis.
func table4FromReport(disks loganalysis.DiskReport, population int) report.Table {
	t := report.Table{
		Title:   fmt.Sprintf("Table 4: Disk failure log and Weibull survival analysis (synthetic ABE log, n=%d)", population),
		Headers: []string{"Date", "Number of failed disks"},
	}
	for _, d := range disks.ByDay {
		t.AddRow(d.Date.Format("01/02/06"), d.Failures)
	}
	t.AddRow("Total failures", disks.TotalFailures)
	t.AddRow("Failures per week", fmt.Sprintf("%.2f", disks.PerWeek))
	t.AddRow("Weibull shape (MLE)", fmt.Sprintf("%.7f", disks.Fit.Shape))
	t.AddRow("Weibull shape std err", fmt.Sprintf("%.7f", disks.Fit.ShapeStdErr))
	t.AddRow("Implied MTBF (hours)", fmt.Sprintf("%.0f", disks.Fit.MTBF()))
	t.AddRow("Implied AFR", fmt.Sprintf("%.2f%%", disks.Fit.AFR()*100))
	return t
}

// Table5Parameters reproduces Table 5: the simulation model parameters and
// their ranges, checked against the ABE and petascale configurations.
func Table5Parameters() report.Table {
	abeCfg := abe.ABE()
	peta := abe.Petascale()
	t := report.Table{
		Title:   "Table 5: ABE cluster's simulation model parameters",
		Headers: []string{"Model parameter", "Range (paper)", "ABE value", "Petascale value"},
	}
	t.AddRow("Disk MTBF (hours)", "100000-3000000", abeCfg.Storage.Disk.MTBFHours, peta.Storage.Disk.MTBFHours)
	t.AddRow("Annualized Failure Rate (AFR)", "0.40%-8.6%", fmt.Sprintf("%.2f%%", abeCfg.Storage.Disk.AFR()*100), fmt.Sprintf("%.2f%%", peta.Storage.Disk.AFR()*100))
	t.AddRow("Weibull shape parameter", "0.6-1.0", abeCfg.Storage.Disk.ShapeBeta, peta.Storage.Disk.ShapeBeta)
	t.AddRow("Number of DDN", "2-20", abeCfg.Storage.DDNUnits, peta.Storage.DDNUnits)
	t.AddRow("Number of compute nodes", "1200-32000", abeCfg.Workload.ComputeNodes, peta.Workload.ComputeNodes)
	t.AddRow("Average time to replace disks (hours)", "1-12", abeCfg.Storage.Disk.ReplaceHours, peta.Storage.Disk.ReplaceHours)
	t.AddRow("Average time to replace hardware (hours)", "12-36", fmt.Sprintf("%g-%g", abeCfg.OSS.HWRepairLoHours, abeCfg.OSS.HWRepairHiHours), fmt.Sprintf("%g-%g", peta.OSS.HWRepairLoHours, peta.OSS.HWRepairHiHours))
	t.AddRow("Average time to fix software (hours)", "2-6", fmt.Sprintf("%g-%g", abeCfg.OSS.SWRepairLoHours, abeCfg.OSS.SWRepairHiHours), fmt.Sprintf("%g-%g", peta.OSS.SWRepairLoHours, peta.OSS.SWRepairHiHours))
	t.AddRow("Job requests per hour", "12-15", abeCfg.Workload.JobsPerHour, peta.Workload.JobsPerHour)
	t.AddRow("Hardware failure rate (per pair per 720h)", "1-2", 720/abeCfg.OSS.HWMTBFHours*2, 720/peta.OSS.HWMTBFHours*2)
	t.AddRow("Software failure rate (per pair per 720h)", "1-2", 720/abeCfg.OSS.SWMTBFHours*2, 720/peta.OSS.SWMTBFHours*2)
	t.AddRow("OSS units", "8-80", abeCfg.ScratchOSSPairs, peta.ScratchOSSPairs)
	t.AddRow("Correlated-failure propagation probability", "small p", abeCfg.OSS.PropagationProb, peta.OSS.PropagationProb)
	return t
}

// ---------------------------------------------------------------------------
// Figure 1: composed model
// ---------------------------------------------------------------------------

// Figure1Composition renders the replicate/join composition tree of the ABE
// model (the paper's Figure 1), validates that the composed model builds,
// and reports the model_stats view: the flat ABE model size next to the
// lumped size of its exponential-forms variant (the representation the
// petascale scaling points use).
func Figure1Composition() (string, error) {
	cfg := abe.ABE()
	model := san.NewModel(cfg.Name)
	if _, err := abe.Build(model, cfg); err != nil {
		return "", err
	}
	tree := abe.CompositionTree(cfg)
	lumped, err := cfg.WithExponentialForms().WithLumping(true).ModelStats()
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%s\nplaces=%d activities=%d\nmodel_stats (exponential forms, lumped): places=%d activities=%d (flat expansion: places=%d activities=%d)\n",
		tree.Render(), model.NumPlaces(), model.NumActivities(),
		lumped.Places, lumped.Activities, lumped.FlatPlaces, lumped.FlatActivities), nil
}

// ---------------------------------------------------------------------------
// Figure 2: storage availability vs scale
// ---------------------------------------------------------------------------

// DiskSeries identifies one curve of Figures 2 and 3 by the tuple the paper
// uses as the label: (Weibull shape, AFR %, RAID geometry, replacement hours).
type DiskSeries struct {
	Shape        float64
	AFRPercent   float64
	Geometry     raid.TierGeometry
	ReplaceHours float64
}

// Label renders the tuple the way the paper's legends do.
func (s DiskSeries) Label() string {
	return fmt.Sprintf("%.1f,%.2f,%d+%d,%g", s.Shape, s.AFRPercent, s.Geometry.Data, s.Geometry.Parity, s.ReplaceHours)
}

// Figure2Series are the curves plotted in Figure 2.
func Figure2Series() []DiskSeries {
	g82 := raid.TierGeometry{Data: 8, Parity: 2}
	g83 := raid.TierGeometry{Data: 8, Parity: 3}
	return []DiskSeries{
		{Shape: 0.6, AFRPercent: 8.76, Geometry: g82, ReplaceHours: 4},
		{Shape: 0.6, AFRPercent: 4.38, Geometry: g82, ReplaceHours: 4},
		{Shape: 0.7, AFRPercent: 2.92, Geometry: g82, ReplaceHours: 4}, // ABE
		{Shape: 0.6, AFRPercent: 8.76, Geometry: g83, ReplaceHours: 4}, // Blue Waters style parity
	}
}

// Figure2ScalePointsTB are the storage sizes (in TB) the sweep covers, from
// the ABE scratch partition (96 TB) toward the petascale target (12 PB).
// Quick mode uses a subset.
func Figure2ScalePointsTB(quick bool) []float64 {
	if quick {
		return []float64{96, 1536, 12288}
	}
	return []float64{96, 384, 1536, 6144, 12288}
}

// Figure2StorageAvailability reproduces Figure 2: the availability of the
// storage hardware (DDN units in isolation: RAID6 tiers + controllers) as the
// file system is scaled from 96 TB to 12 PB, for several
// (shape, AFR, geometry, replacement) configurations.
func Figure2StorageAvailability(opts Options) (report.Figure, error) {
	opts = opts.withDefaults()
	fig := report.Figure{
		Title:  "Figure 2: Availability of storage with respect to disk failures",
		XLabel: "storage size (TB)",
		YLabel: "storage availability",
	}
	base := raid.ABEStorage()
	for _, series := range Figure2Series() {
		for _, tb := range Figure2ScalePointsTB(opts.Quick) {
			cfg := base
			cfg.Geometry = series.Geometry
			cfg.Disk.ShapeBeta = series.Shape
			cfg.Disk.MTBFHours = 8760 / (series.AFRPercent / 100)
			cfg.Disk.ReplaceHours = series.ReplaceHours
			// Figure 2 scales by raw storage size with ABE-era disk
			// capacities (no capacity growth), as the x axis is terabytes of
			// the same architecture.
			scaled, err := cfg.ScaledToUsableTB(tb, 0, 0)
			if err != nil {
				return report.Figure{}, err
			}
			model := san.NewModel("figure2")
			sp, err := raid.BuildStorage(model, "storage", scaled)
			if err != nil {
				return report.Figure{}, err
			}
			rewards := []san.RewardVariable{sp.AvailabilityReward("storage_availability")}
			study, err := san.RunReplications(model, rewards, opts.sanOptions())
			if err != nil {
				return report.Figure{}, err
			}
			ci, err := study.Interval("storage_availability")
			if err != nil {
				return report.Figure{}, err
			}
			fig.AddPoint(series.Label(), report.Point{X: tb, Y: ci.Mean, HalfWidth: ci.HalfWidth})
		}
	}
	return fig, nil
}

// ---------------------------------------------------------------------------
// Figure 3: disk replacements per week vs number of disks
// ---------------------------------------------------------------------------

// Figure3Series are the curves plotted in Figure 3 (all at shape 0.7, 8+2,
// 4 h replacement, varying AFR).
func Figure3Series() []DiskSeries {
	g82 := raid.TierGeometry{Data: 8, Parity: 2}
	return []DiskSeries{
		{Shape: 0.7, AFRPercent: 8.76, Geometry: g82, ReplaceHours: 4},
		{Shape: 0.7, AFRPercent: 4.38, Geometry: g82, ReplaceHours: 4},
		{Shape: 0.7, AFRPercent: 2.92, Geometry: g82, ReplaceHours: 4}, // ABE
		{Shape: 0.7, AFRPercent: 0.88, Geometry: g82, ReplaceHours: 4},
	}
}

// Figure3ScalePointsDisks are the disk counts of the Figure 3 sweep
// (480 = ABE up to 4800).
func Figure3ScalePointsDisks(quick bool) []int {
	if quick {
		return []int{480, 2400, 4800}
	}
	return []int{480, 960, 1440, 1920, 2400, 2880, 3360, 3840, 4320, 4800}
}

// Figure3DiskReplacement reproduces Figure 3: the average number of disks
// that need to be replaced per week to sustain availability, as the system
// grows from 480 to 4800 disks. Simulated values carry confidence intervals;
// the analytic renewal-rate expectation is reported as its own series.
func Figure3DiskReplacement(opts Options) (report.Figure, error) {
	opts = opts.withDefaults()
	fig := report.Figure{
		Title:  "Figure 3: Average number of disks that need to be replaced per week",
		XLabel: "number of disks",
		YLabel: "disk replacements per week",
	}
	base := raid.ABEStorage()
	for _, series := range Figure3Series() {
		for _, disks := range Figure3ScalePointsDisks(opts.Quick) {
			cfg := base
			cfg.Geometry = series.Geometry
			cfg.Disk.ShapeBeta = series.Shape
			cfg.Disk.MTBFHours = 8760 / (series.AFRPercent / 100)
			cfg.Disk.ReplaceHours = series.ReplaceHours
			scaled, err := cfg.ScaledToDisks(disks)
			if err != nil {
				return report.Figure{}, err
			}
			model := san.NewModel("figure3")
			sp, err := raid.BuildStorage(model, "storage", scaled)
			if err != nil {
				return report.Figure{}, err
			}
			rewards := []san.RewardVariable{sp.ReplacementCountReward("replacements")}
			study, err := san.RunReplications(model, rewards, opts.sanOptions())
			if err != nil {
				return report.Figure{}, err
			}
			ci, err := study.Interval("replacements")
			if err != nil {
				return report.Figure{}, err
			}
			perWeek := 168.0 / study.Options.Mission
			fig.AddPoint(series.Label(), report.Point{X: float64(disks), Y: ci.Mean * perWeek, HalfWidth: ci.HalfWidth * perWeek})

			analytic, err := raid.ExpectedReplacementsPerWeek(scaled)
			if err != nil {
				return report.Figure{}, err
			}
			fig.AddPoint(series.Label()+" (analytic)", report.Point{X: float64(disks), Y: analytic})
		}
	}
	return fig, nil
}

// ---------------------------------------------------------------------------
// Figure 4: CFS availability and cluster utility vs scale
// ---------------------------------------------------------------------------

// Figure4ScaleFactors are the scale multipliers applied to the ABE I/O
// subsystem (1x = ABE ... 10x = petascale).
func Figure4ScaleFactors(quick bool) []float64 {
	if quick {
		return []float64{1, 4, 10}
	}
	return []float64{1, 2, 4, 6, 8, 10}
}

// Figure4Points builds the sweep points of the Figure 4 scaling study over
// the hard-coded ABE base configuration. It is the single source of truth
// shared by Figure4Sweep, the petascale_scaling example, and
// BenchmarkFigure4Sweep; the paper_full experiment uses Figure4PointsFrom
// with a log-calibrated base instead.
func Figure4Points(seed uint64, factors []float64) []sweep.Point {
	return Figure4PointsFrom(abe.ABE(), seed, factors)
}

// Figure4PointsFrom builds the sweep points of a Figure 4-style scaling
// study from the given base configuration: a (base, spare-OSS) pair per
// scale factor, in factor order, every point pinned to the given study seed
// (common random numbers), which keeps the spare-vs-base comparison at each
// scale sharper than independent draws would be.
func Figure4PointsFrom(base abe.Config, seed uint64, factors []float64) []sweep.Point {
	points := make([]sweep.Point, 0, 2*len(factors))
	for _, factor := range factors {
		cfg := base.ScaledBy(factor)
		points = append(points,
			sweep.Point{Config: cfg, Seed: seed},
			sweep.Point{Label: cfg.Name + " +spare OSS", Config: cfg.WithSpareOSS(true), Seed: seed},
		)
	}
	return points
}

// Figure4CrossCheckPoints returns the solver cross-check pair appended after
// the Figure 4 (base, spare) pairs: the fully exponential mini configuration
// once for the certified uniformization solver and once forced through the
// simulator, both pinned to the same seed. The pair puts an exact analytic
// answer and a simulation estimate of the same model side by side in every
// figure4 report, so the two tiers audit each other on every run.
func Figure4CrossCheckPoints(seed uint64) []sweep.Point {
	cfg := abe.MiniExponential()
	return []sweep.Point{
		{Label: cfg.Name + " [solver cross-check]", Config: cfg, Seed: seed},
		{Label: cfg.Name + " [simulated twin]", Config: cfg, Seed: seed, ForceSimulation: true},
	}
}

// Figure4ErlangCrossCheckPoints is the phase-type expansion counterpart of
// Figure4CrossCheckPoints: the Gamma-Erlang-repair mini configuration —
// which the certificate tier refuses as built (`non-memoryless`) and
// certifies only after san.ExpandPhases — once answered analytically through
// the expansion and once forced through simulation with the same seed. The
// pair audits the expansion's exactness end to end: the expanded analytic
// answer must land inside the simulation's 95% confidence interval.
func Figure4ErlangCrossCheckPoints(seed uint64) []sweep.Point {
	cfg := abe.MiniErlang()
	return []sweep.Point{
		{Label: cfg.Name + " [solver cross-check]", Config: cfg, Seed: seed},
		{Label: cfg.Name + " [simulated twin]", Config: cfg, Seed: seed, ForceSimulation: true},
	}
}

// Figure4FitTolerance is the certified CDF-distance tolerance the Weibull
// cross-check pair opts into: the shape-1.5 disk surrogate certifies a
// Kolmogorov bound well under it (~0.05), so the approximate analytic answer
// must agree with its simulated twin within the simulation interval widened
// by the per-activity bounds.
const Figure4FitTolerance = 0.1

// Figure4WeibullCrossCheckPoints is the approximate-fitting counterpart of
// Figure4ErlangCrossCheckPoints: the Weibull-disk mini configuration — which
// both the plain certificate tier and exact expansion refuse — once answered
// analytically on a certified phase-type surrogate (the sweep must opt in
// via san.Options.PHFitTolerance) and once forced through simulation with
// the same seed. The pair audits the fit's certified accuracy end to end:
// the approximate analytic answer must land inside the simulation's 95%
// confidence interval widened by the certificate's stated bound.
func Figure4WeibullCrossCheckPoints(seed uint64) []sweep.Point {
	cfg := abe.MiniWeibull()
	return []sweep.Point{
		{Label: cfg.Name + " [solver cross-check]", Config: cfg, Seed: seed},
		{Label: cfg.Name + " [simulated twin]", Config: cfg, Seed: seed, ForceSimulation: true},
	}
}

// Figure4Sweep runs the Figure 4 scaling study as one sharded sweep: base and
// spare-OSS variants of every scale factor are evaluated over a single shared
// worker pool, so the slow petascale points overlap with the fast ABE-scale
// ones instead of each draining its own pool. The solver cross-check pairs
// (Figure4CrossCheckPoints and the phase-type expansion twin of
// Figure4ErlangCrossCheckPoints) ride along after the figure's own points,
// and the Weibull pair (Figure4WeibullCrossCheckPoints) runs as a second
// small sweep with the approximate tier opted in — keeping PHFitTolerance
// off the figure's own points, whose Weibull-disk models must keep refusing
// straight to simulation without paying a fitted exploration each — and is
// merged after them.
func Figure4Sweep(opts Options) (*sweep.Result, error) {
	opts = opts.withDefaults()
	points := append(Figure4Points(opts.Seed, Figure4ScaleFactors(opts.Quick)), Figure4CrossCheckPoints(opts.Seed)...)
	points = append(points, Figure4ErlangCrossCheckPoints(opts.Seed)...)
	res, err := sweep.Run(points, opts.sanOptions())
	if err != nil {
		return nil, err
	}
	fitOpts := opts.sanOptions()
	fitOpts.PHFitTolerance = Figure4FitTolerance
	fitRes, err := sweep.Run(Figure4WeibullCrossCheckPoints(opts.Seed), fitOpts)
	if err != nil {
		return nil, err
	}
	res.Points = append(res.Points, fitRes.Points...)
	res.TotalEvents += fitRes.TotalEvents
	return res, nil
}

// figure4FromSweep projects the (base, spare) point pairs of the Figure 4
// sweep onto the figure's four series.
func figure4FromSweep(res *sweep.Result, factors []float64) report.Figure {
	fig := report.Figure{
		Title:  "Figure 4: Availability and utility of the ABE cluster when scaled to a petaflop-petabyte system",
		XLabel: "scale factor (x ABE I/O subsystem)",
		YLabel: "availability / utility",
	}
	for i, factor := range factors {
		measures := res.Points[2*i].Measures
		spareMeasures := res.Points[2*i+1].Measures
		storageCI := measures.Intervals[abe.RewardStorageAvailability]
		cfsCI := measures.Intervals[abe.RewardCFSAvailability]
		spareCI := spareMeasures.Intervals[abe.RewardCFSAvailability]
		fig.AddPoint("Storage-availability", report.Point{X: factor, Y: measures.StorageAvailability, HalfWidth: storageCI.HalfWidth})
		fig.AddPoint("CFS-Availability", report.Point{X: factor, Y: measures.CFSAvailability, HalfWidth: cfsCI.HalfWidth})
		fig.AddPoint("CU", report.Point{X: factor, Y: measures.ClusterUtility})
		fig.AddPoint("CFS-Availability-spare-OSS", report.Point{X: factor, Y: spareMeasures.CFSAvailability, HalfWidth: spareCI.HalfWidth})
	}
	return fig
}

// runFigure4 is the single construction path behind both the Figure 4 API
// and the abesim artifact: one sharded sweep, projected onto the figure.
func runFigure4(opts Options) (figure4Artifact, error) {
	opts = opts.withDefaults()
	res, err := Figure4Sweep(opts)
	if err != nil {
		return figure4Artifact{}, err
	}
	return figure4Artifact{fig: figure4FromSweep(res, Figure4ScaleFactors(opts.Quick)), res: res}, nil
}

// Figure4AvailabilityAndCU reproduces Figure 4: storage availability, CFS
// availability, cluster utility, and CFS availability with a standby-spare
// OSS, as the ABE design is scaled to a petaflop-petabyte system.
func Figure4AvailabilityAndCU(opts Options) (report.Figure, error) {
	a, err := runFigure4(opts)
	return a.fig, err
}

// ---------------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------------

// AblationCorrelation sweeps the correlated-failure propagation probability
// p at petascale, isolating the effect the paper attributes the CFS
// availability drop to ("the reduction is mainly due to correlated failures
// in OSS and hardware").
func AblationCorrelation(opts Options) (report.Figure, error) {
	opts = opts.withDefaults()
	fig := report.Figure{
		Title:  "Ablation: effect of correlated-failure propagation probability on petascale CFS availability",
		XLabel: "propagation probability p",
		YLabel: "CFS availability",
	}
	ps := []float64{0, 0.01, 0.02, 0.05, 0.1}
	if opts.Quick {
		ps = []float64{0, 0.02, 0.1}
	}
	for _, p := range ps {
		cfg := abe.Petascale()
		cfg.OSS.PropagationProb = p
		measures, err := abe.Evaluate(cfg, opts.sanOptions())
		if err != nil {
			return report.Figure{}, err
		}
		ci := measures.Intervals[abe.RewardCFSAvailability]
		fig.AddPoint("CFS-Availability", report.Point{X: p, Y: measures.CFSAvailability, HalfWidth: ci.HalfWidth})
	}
	return fig, nil
}

// AblationAnalyticVsSim cross-checks the SAN simulation of a single RAID
// tier against the analytic birth-death model for exponential (shape=1)
// disks, the regime where both are exact.
func AblationAnalyticVsSim(opts Options) (report.Table, error) {
	opts = opts.withDefaults()
	t := report.Table{
		Title:   "Ablation: analytic (birth-death) vs simulated tier unavailability, exponential disks",
		Headers: []string{"Geometry", "MTBF (h)", "MTTR (h)", "Analytic unavailability", "Simulated unavailability"},
	}
	cases := []struct {
		geometry raid.TierGeometry
		mtbf     float64
		mttr     float64
	}{
		{raid.TierGeometry{Data: 1, Parity: 0}, 1000, 10},
		{raid.TierGeometry{Data: 4, Parity: 1}, 2000, 24},
		{raid.TierGeometry{Data: 8, Parity: 2}, 1000, 48},
	}
	for _, c := range cases {
		analytic, err := raid.TierUnavailabilityExponential(c.geometry, c.mtbf, c.mttr)
		if err != nil {
			return report.Table{}, err
		}
		cfg := raid.StorageConfig{
			DDNUnits:    1,
			TiersPerDDN: 1,
			Geometry:    c.geometry,
			Disk:        raid.DiskConfig{ShapeBeta: 1, MTBFHours: c.mtbf, ReplaceHours: c.mttr, CapacityGB: 250},
			// A practically unfailing controller isolates the disk effect.
			Controller: raid.ControllerConfig{MTBFHours: 1e9, RepairLoHours: 1, RepairHiHours: 2},
		}
		model := san.NewModel("ablation")
		sp, err := raid.BuildStorage(model, "storage", cfg)
		if err != nil {
			return report.Table{}, err
		}
		// The analytic model assumes exponential repair; approximate the
		// deterministic replacement comparison by matching means (documented
		// deviation — this ablation is a sanity cross-check, not an equality).
		rewards := []san.RewardVariable{sp.AvailabilityReward("availability")}
		study, err := san.RunReplications(model, rewards, opts.sanOptions())
		if err != nil {
			return report.Table{}, err
		}
		t.AddRow(c.geometry.String(), c.mtbf, c.mttr, fmt.Sprintf("%.3e", analytic), fmt.Sprintf("%.3e", 1-study.Mean("availability")))
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// Rare-event acceleration: data-loss probability by importance splitting
// ---------------------------------------------------------------------------

// RareEventConfig returns the high-redundancy storage configuration the
// rare-event experiment estimates data loss for: a single (8+4) tier (the
// Blue Waters-style move beyond 8+3) whose fifth concurrent disk failure
// loses data. Parameters are chosen so the per-mission data-loss probability
// (~2e-5) is far below what the naive Monte Carlo budget can resolve while
// each splitting level's conditional probability stays individually
// estimable. The controller is made practically unfailing so the measure
// isolates disk-induced data loss.
func RareEventConfig() raid.StorageConfig {
	return raid.StorageConfig{
		DDNUnits:    1,
		TiersPerDDN: 1,
		Geometry:    raid.TierGeometry{Data: 8, Parity: 4},
		Disk: raid.DiskConfig{
			ShapeBeta:    1.0, // exponential lifetimes
			MTBFHours:    6000,
			ReplaceHours: 48,
			CapacityGB:   raid.DefaultDiskCapacityGB,
		},
		Controller: raid.ControllerConfig{MTBFHours: 1e12, RepairLoHours: 1, RepairHiHours: 2},
	}
}

// RareEventDataLoss estimates the probability that the high-redundancy
// configuration loses data (any tier exceeding its parity) within the
// mission, twice: by fixed-effort multilevel splitting and by naive Monte
// Carlo at the same simulated-event budget. The table demonstrates the point
// of the rare-event engine — at equal cost, the splitting confidence
// interval is orders of magnitude narrower than the naive one, which
// typically observes no event at all.
func RareEventDataLoss(opts Options) (report.Table, error) {
	opts = opts.withDefaults()
	cfg := RareEventConfig()
	model := san.NewModel("rare_event")
	sp, err := raid.BuildStorage(model, "storage", cfg)
	if err != nil {
		return report.Table{}, err
	}
	importance := sp.MaxFailedDisksImportance()
	levels := cfg.DataLossLevels()

	// Effort ramps toward the deeper levels: the first crossing is nearly
	// certain (one disk fails sometime during the year), while the deeper
	// conditional probabilities are a few percent and need the trajectories.
	base := 500
	if opts.Quick {
		base = 150
	}
	effort := make([]int, len(levels))
	for i := range effort {
		switch i {
		case 0:
			effort[i] = base
		case 1:
			effort[i] = 4 * base
		default:
			effort[i] = 5 * base
		}
	}
	split, err := rareevent.Run(model, importance, rareevent.Options{
		Mission: opts.MissionHours,
		Levels:  levels,
		Effort:  effort,
		Seed:    opts.Seed,
		// Disk lifetimes are exponential (ShapeBeta 1), so re-drawing the
		// pending failure times when a trajectory is cloned is exactly
		// distribution-preserving and keeps the clones of one entry state
		// from sharing the same frozen next-failure schedule. Replacement
		// completions (deterministic) are preserved.
		ResampleOnRestore: func(a *san.Activity) bool {
			return strings.HasSuffix(a.Name(), "/fail")
		},
	})
	if err != nil {
		return report.Table{}, err
	}

	naive, err := rareevent.RunNaive(model, importance, rareevent.NaiveOptions{
		Mission:     opts.MissionHours,
		Level:       levels[len(levels)-1],
		EventBudget: split.TotalEvents,
		Seed:        opts.Seed,
	})
	if err != nil {
		return report.Table{}, err
	}

	t := report.Table{
		Title: fmt.Sprintf("Rare event: P(data loss within %.0f h) for a %s tier, disk MTBF %.0f h, replace %.0f h",
			opts.MissionHours, cfg.Geometry, cfg.Disk.MTBFHours, cfg.Disk.ReplaceHours),
		Headers: []string{"Method", "Estimate", "95% CI half-width", "Trajectories", "Simulated events"},
	}
	t.AddRow("Multilevel splitting",
		fmt.Sprintf("%.3e", split.Probability),
		fmt.Sprintf("%.3e", split.Interval.HalfWidth),
		split.Interval.N,
		split.TotalEvents)
	t.AddRow("Naive Monte Carlo (equal budget)",
		fmt.Sprintf("%.3e", naive.Probability),
		fmt.Sprintf("%.3e", naive.Interval.HalfWidth),
		naive.Replications,
		naive.TotalEvents)
	for _, sr := range split.Stages {
		t.AddRow(fmt.Sprintf("  level %.0f (>= %.0f disks down)", sr.Level, sr.Level),
			fmt.Sprintf("p=%.4f", sr.ConditionalProbability()),
			fmt.Sprintf("hits %d/%d", sr.Hits, sr.Trials),
			sr.PoolSize,
			sr.Events)
	}
	ratio := math.Inf(1)
	if split.Interval.HalfWidth > 0 {
		ratio = naive.Interval.HalfWidth / split.Interval.HalfWidth
	}
	t.AddRow("CI narrowing factor (naive / splitting)", fmt.Sprintf("%.1fx", ratio), "acceptance: >= 10x", "", "")
	return t, nil
}

// ExtensionCheckpoint is the future-work extension the paper's introduction
// motivates: couple the measured CFS dependability to application-level
// checkpoint/restart efficiency and show how much of a petascale machine's
// time is left for useful computation.
func ExtensionCheckpoint(opts Options) (report.Table, error) {
	opts = opts.withDefaults()
	t := report.Table{
		Title: "Extension: checkpoint/restart efficiency implied by the CFS dependability",
		Headers: []string{
			"Configuration", "CFS availability", "Checkpoint (h)", "Optimal interval (h)",
			"Checkpoint overhead", "Rework overhead", "Utilization",
		},
	}
	cp := checkpoint.DefaultClusterParams()
	for _, cfg := range []abe.Config{abe.ABE(), abe.ABE().ScaledBy(4), abe.Petascale()} {
		measures, err := abe.Evaluate(cfg, opts.sanOptions())
		if err != nil {
			return report.Table{}, err
		}
		params, err := checkpoint.ForCluster(cfg, measures, cp)
		if err != nil {
			return report.Table{}, err
		}
		eff, err := checkpoint.Analyze(params)
		if err != nil {
			return report.Table{}, err
		}
		t.AddRow(cfg.Name,
			fmt.Sprintf("%.4f", measures.CFSAvailability),
			fmt.Sprintf("%.2f", eff.CheckpointHours),
			fmt.Sprintf("%.2f", eff.OptimalIntervalHours),
			fmt.Sprintf("%.1f%%", eff.CheckpointOverhead*100),
			fmt.Sprintf("%.1f%%", eff.ReworkOverhead*100),
			fmt.Sprintf("%.1f%%", eff.Utilization*100),
		)
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// Named dispatch (used by cmd/abesim)
// ---------------------------------------------------------------------------

// Names lists the experiments Run understands.
func Names() []string {
	return []string{
		"table1", "table2", "table3", "table4", "table5",
		"figure1", "figure2", "figure3", "figure4",
		"paper_full",
		"rare_event_dataloss",
		"ablation-correlation", "ablation-analytic",
		"extension-checkpoint",
	}
}

// figure4Artifact renders the Figure 4 series as text but exposes the richer
// sweep report — per-point measures with unit-scaled confidence intervals —
// as its machine-readable form.
type figure4Artifact struct {
	fig report.Figure
	res *sweep.Result
}

// Render returns the figure's text table.
func (a figure4Artifact) Render() string { return a.fig.Render() }

// JSON returns the sweep report behind the figure.
func (a figure4Artifact) JSON() (string, error) { return a.res.JSON() }

// RunArtifact executes the named experiment and returns its result as a
// report.Artifact, so callers choose between the human-readable rendering
// (Render) and the machine-readable one (JSON).
func RunArtifact(name string, opts Options) (report.Artifact, error) {
	switch name {
	case "table1":
		t, err := Table1Outages(opts)
		return t, err
	case "table2":
		t, err := Table2MountFailures(opts)
		return t, err
	case "table3":
		t, err := Table3JobStats(opts)
		return t, err
	case "table4":
		t, err := Table4DiskSurvival(opts)
		return t, err
	case "table5":
		return Table5Parameters(), nil
	case "figure1":
		s, err := Figure1Composition()
		return report.Text(s), err
	case "figure2":
		f, err := Figure2StorageAvailability(opts)
		return f, err
	case "figure3":
		f, err := Figure3DiskReplacement(opts)
		return f, err
	case "figure4":
		a, err := runFigure4(opts)
		if err != nil {
			return nil, err
		}
		return a, nil
	case "paper_full":
		r, err := PaperFull(opts)
		if err != nil {
			return nil, err
		}
		return r, nil
	case "rare_event_dataloss":
		t, err := RareEventDataLoss(opts)
		return t, err
	case "ablation-correlation":
		f, err := AblationCorrelation(opts)
		return f, err
	case "ablation-analytic":
		t, err := AblationAnalyticVsSim(opts)
		return t, err
	case "extension-checkpoint":
		t, err := ExtensionCheckpoint(opts)
		return t, err
	default:
		return nil, fmt.Errorf("%w: %q (known: %v)", ErrUnknownExperiment, name, Names())
	}
}

// Run executes the named experiment and returns its rendered text output.
func Run(name string, opts Options) (string, error) {
	a, err := RunArtifact(name, opts)
	if err != nil {
		return "", err
	}
	return a.Render(), nil
}
