package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/abe"
	"repro/internal/raid"
	"repro/internal/san"
	"repro/internal/statespace"
	"repro/internal/sweep"
)

// quick returns cheap options for CI-speed experiment runs.
func quick() Options {
	return Options{Quick: true, Replications: 6, MissionHours: 4380, Seed: 5}
}

func TestTable1Outages(t *testing.T) {
	table, err := Table1Outages(quick())
	if err != nil {
		t.Fatal(err)
	}
	out := table.Render()
	if !strings.Contains(out, "Availability") {
		t.Errorf("Table 1 missing availability row:\n%s", out)
	}
	if !strings.Contains(out, raidCauseAny(out)) {
		t.Errorf("Table 1 has no outage cause rows:\n%s", out)
	}
	if len(table.Rows) < 3 {
		t.Errorf("Table 1 has %d rows, want at least a few outages", len(table.Rows))
	}
}

// raidCauseAny returns one of the known causes present in the output, or a
// string that will fail the containment check.
func raidCauseAny(out string) string {
	for _, c := range []string{"I/O hardware", "File system", "Network", "Batch system"} {
		if strings.Contains(out, c) {
			return c
		}
	}
	return "<<no cause found>>"
}

func TestTable2MountFailures(t *testing.T) {
	table, err := Table2MountFailures(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) == 0 {
		t.Error("Table 2 empty")
	}
}

func TestTable3JobStats(t *testing.T) {
	table, err := Table3JobStats(quick())
	if err != nil {
		t.Fatal(err)
	}
	out := table.Render()
	for _, want := range []string{"Total jobs submitted", "transient network errors", "other/file system errors"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 3 missing %q:\n%s", want, out)
		}
	}
}

func TestTable4DiskSurvival(t *testing.T) {
	table, err := Table4DiskSurvival(quick())
	if err != nil {
		t.Fatal(err)
	}
	out := table.Render()
	for _, want := range []string{"Weibull shape (MLE)", "Implied MTBF", "Failures per week"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 4 missing %q:\n%s", want, out)
		}
	}
}

func TestTable5Parameters(t *testing.T) {
	out := Table5Parameters().Render()
	for _, want := range []string{"Disk MTBF", "Number of DDN", "1200", "32000", "2-20", "8-80"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 5 missing %q:\n%s", want, out)
		}
	}
}

func TestFigure1Composition(t *testing.T) {
	out, err := Figure1Composition()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Join(CLUSTER)", "SAN(CLIENT)", "Replicate(DDN_UNITS", "places=", "activities="} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 1 output missing %q:\n%s", want, out)
		}
	}
}

func TestDiskSeriesLabel(t *testing.T) {
	s := DiskSeries{Shape: 0.7, AFRPercent: 2.92, Geometry: raid.TierGeometry{Data: 8, Parity: 2}, ReplaceHours: 4}
	if got := s.Label(); got != "0.7,2.92,8+2,4" {
		t.Errorf("Label = %q, want the paper's tuple format", got)
	}
}

func TestFigure2StorageAvailability(t *testing.T) {
	opts := quick()
	fig, err := Figure2StorageAvailability(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != len(Figure2Series()) {
		t.Fatalf("series = %d, want %d", len(fig.Series), len(Figure2Series()))
	}
	points := Figure2ScalePointsTB(true)
	for _, s := range fig.Series {
		if len(s.Points) != len(points) {
			t.Errorf("series %q has %d points, want %d", s.Name, len(s.Points), len(points))
		}
		for _, p := range s.Points {
			if p.Y < 0 || p.Y > 1 {
				t.Errorf("series %q availability %v out of [0,1]", s.Name, p.Y)
			}
		}
		// First data point (ABE scale) should be ~1 for every configuration,
		// the paper's key Figure 2 observation.
		if s.Points[0].Y < 0.999 {
			t.Errorf("series %q ABE-scale availability = %v, want ~1", s.Name, s.Points[0].Y)
		}
	}
}

func TestFigure3DiskReplacement(t *testing.T) {
	fig, err := Figure3DiskReplacement(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Simulated + analytic series per configuration.
	if len(fig.Series) != 2*len(Figure3Series()) {
		t.Fatalf("series = %d, want %d", len(fig.Series), 2*len(Figure3Series()))
	}
	// The ABE configuration at 480 disks must fall in the paper's observed
	// 0-2 replacements per week; higher AFR must replace more disks; and the
	// curves must grow with the number of disks.
	abeSeries := fig.SeriesY("0.7,2.92,8+2,4")
	if len(abeSeries) == 0 {
		t.Fatal("ABE series missing")
	}
	if abeSeries[0] < 0 || abeSeries[0] > 2 {
		t.Errorf("ABE replacements/week at 480 disks = %v, want 0-2", abeSeries[0])
	}
	if last := abeSeries[len(abeSeries)-1]; !(last > abeSeries[0]) {
		t.Errorf("replacements should grow with disk count: %v", abeSeries)
	}
	high := fig.SeriesY("0.7,8.76,8+2,4")
	low := fig.SeriesY("0.7,0.88,8+2,4")
	if len(high) == 0 || len(low) == 0 {
		t.Fatal("expected AFR series missing")
	}
	if !(high[len(high)-1] > low[len(low)-1]) {
		t.Errorf("higher AFR should need more replacements: %v vs %v", high, low)
	}
}

func TestFigure4AvailabilityAndCU(t *testing.T) {
	fig, err := Figure4AvailabilityAndCU(quick())
	if err != nil {
		t.Fatal(err)
	}
	cfs := fig.SeriesY("CFS-Availability")
	storage := fig.SeriesY("Storage-availability")
	cu := fig.SeriesY("CU")
	spare := fig.SeriesY("CFS-Availability-spare-OSS")
	if len(cfs) == 0 || len(storage) == 0 || len(cu) == 0 || len(spare) == 0 {
		t.Fatalf("missing series: %+v", fig)
	}
	last := len(cfs) - 1
	if !(cfs[last] < cfs[0]) {
		t.Errorf("CFS availability should decrease with scale: %v", cfs)
	}
	if storage[last] < 0.99 {
		t.Errorf("storage availability should stay ~1: %v", storage)
	}
	if !(cu[last] < cfs[last]) {
		t.Errorf("CU should sit below CFS availability at petascale: %v vs %v", cu[last], cfs[last])
	}
	if !(spare[last] > cfs[last]) {
		t.Errorf("spare OSS should improve petascale availability: %v vs %v", spare[last], cfs[last])
	}
}

// TestFigure4CrossCheckAgreement is the solver-vs-simulation audit the
// figure4 sweep ships: the certified uniformization answer to the fully
// exponential mini configuration must agree with a 60-replication simulation
// of the same model within the simulation's own 95% confidence interval.
func TestFigure4CrossCheckAgreement(t *testing.T) {
	points := Figure4CrossCheckPoints(7)
	res, err := sweep.Run(points, san.Options{Mission: 8760, Replications: 60, Confidence: 0.95, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(res.Points))
	}
	analytic, twin := res.Points[0], res.Points[1]
	if analytic.Solver.Method != sweep.MethodUniformization {
		t.Fatalf("cross-check point solved by %q (reasons %v), want uniformization",
			analytic.Solver.Method, analytic.Solver.Reasons)
	}
	if analytic.Solver.Certificate == nil || !analytic.Solver.Certificate.Certified() {
		t.Fatalf("analytic point must carry a certified certificate: %+v", analytic.Solver.Certificate)
	}
	if twin.Solver.Method != sweep.MethodSimulation || len(twin.Solver.Reasons) == 0 {
		t.Fatalf("forced twin must simulate with a recorded reason: %+v", twin.Solver)
	}
	for _, name := range []string{abe.RewardStorageAvailability, abe.RewardCFSAvailability} {
		a := analytic.Measures.Intervals[name]
		ci := twin.Measures.Intervals[name]
		if a.HalfWidth != 0 {
			t.Errorf("%s: analytic interval must be exact (zero half-width), got %v", name, a.HalfWidth)
		}
		if ci.N != 60 || ci.HalfWidth <= 0 {
			t.Fatalf("%s: twin interval not a 60-replication estimate: %+v", name, ci)
		}
		if diff := math.Abs(a.Mean - ci.Mean); diff > ci.HalfWidth {
			t.Errorf("%s: analytic %v vs simulated %v ± %v — outside the 95%% CI",
				name, a.Mean, ci.Mean, ci.HalfWidth)
		}
	}
}

// TestFigure4ErlangCrossCheckAgreement is the phase-expansion twin of the
// cross-check above: the Erlang-repair mini configuration is refused as
// written (non-memoryless), becomes certified after san.ExpandPhases, and
// the expanded analytic answer must agree with a 60-replication simulation
// of the ORIGINAL (unexpanded) model within the simulation's own 95% CI.
func TestFigure4ErlangCrossCheckAgreement(t *testing.T) {
	points := Figure4ErlangCrossCheckPoints(7)
	res, err := sweep.Run(points, san.Options{Mission: 8760, Replications: 60, Confidence: 0.95, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(res.Points))
	}
	analytic, twin := res.Points[0], res.Points[1]
	if analytic.Solver.Method != sweep.MethodUniformization {
		t.Fatalf("Erlang point solved by %q (reasons %v), want uniformization after expansion",
			analytic.Solver.Method, analytic.Solver.Reasons)
	}
	cert := analytic.Solver.Certificate
	if cert == nil || !cert.Certified() {
		t.Fatalf("Erlang point must carry a certified certificate: %+v", cert)
	}
	if len(cert.Expansions) == 0 {
		t.Fatalf("certificate must record the phase expansion evidence: %+v", cert)
	}
	if !strings.Contains(cert.Summary(), "after phase expansion") {
		t.Fatalf("certificate summary must surface the expansion: %q", cert.Summary())
	}
	if twin.Solver.Method != sweep.MethodSimulation || len(twin.Solver.Reasons) == 0 {
		t.Fatalf("forced twin must simulate with a recorded reason: %+v", twin.Solver)
	}
	for _, name := range []string{abe.RewardStorageAvailability, abe.RewardCFSAvailability} {
		a := analytic.Measures.Intervals[name]
		ci := twin.Measures.Intervals[name]
		if a.HalfWidth != 0 {
			t.Errorf("%s: analytic interval must be exact (zero half-width), got %v", name, a.HalfWidth)
		}
		if ci.N != 60 || ci.HalfWidth <= 0 {
			t.Fatalf("%s: twin interval not a 60-replication estimate: %+v", name, ci)
		}
		if diff := math.Abs(a.Mean - ci.Mean); diff > ci.HalfWidth {
			t.Errorf("%s: expanded analytic %v vs simulated %v ± %v — outside the 95%% CI",
				name, a.Mean, ci.Mean, ci.HalfWidth)
		}
	}
}

// TestFigure4WeibullCrossCheckAgreement is the approximate-fitting twin of
// the cross-checks above: the Weibull-disk mini configuration is refused by
// both the plain certificate tier and exact expansion, becomes certified on
// a phase-type surrogate under san.FitPhases (opted in via PHFitTolerance),
// and the approximate analytic answer must agree with a 60-replication
// simulation of the ORIGINAL (Weibull) model within the simulation's own
// 95% CI widened by the certificate's stated per-activity bound.
func TestFigure4WeibullCrossCheckAgreement(t *testing.T) {
	points := Figure4WeibullCrossCheckPoints(7)
	res, err := sweep.Run(points, san.Options{
		Mission: 8760, Replications: 60, Confidence: 0.95, Seed: 7,
		PHFitTolerance: Figure4FitTolerance,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(res.Points))
	}
	analytic, twin := res.Points[0], res.Points[1]
	if analytic.Solver.Method != sweep.MethodUniformizationApprox {
		t.Fatalf("Weibull point solved by %q (reasons %v), want uniformization-approx after fitting",
			analytic.Solver.Method, analytic.Solver.Reasons)
	}
	cert := analytic.Solver.Certificate
	if cert == nil || !cert.Certified() {
		t.Fatalf("Weibull point must carry a certified certificate: %+v", cert)
	}
	if len(cert.Approximations) == 0 {
		t.Fatalf("certificate must record the fit evidence: %+v", cert)
	}
	bound := 0.0
	for _, ev := range cert.Approximations {
		if !(ev.Bound > 0 && ev.Bound <= Figure4FitTolerance) {
			t.Fatalf("fit %q bound %v outside (0, %v]", ev.Activity, ev.Bound, Figure4FitTolerance)
		}
		if ev.Bound > bound {
			bound = ev.Bound
		}
	}
	if !strings.Contains(cert.Summary(), "approximate") {
		t.Fatalf("certificate summary must surface the approximation: %q", cert.Summary())
	}
	if twin.Solver.Method != sweep.MethodSimulation || len(twin.Solver.Reasons) == 0 {
		t.Fatalf("forced twin must simulate with a recorded reason: %+v", twin.Solver)
	}
	for _, name := range []string{abe.RewardStorageAvailability, abe.RewardCFSAvailability} {
		a := analytic.Measures.Intervals[name]
		ci := twin.Measures.Intervals[name]
		if a.HalfWidth != 0 {
			t.Errorf("%s: approximate analytic interval must be exact for the surrogate (zero half-width), got %v",
				name, a.HalfWidth)
		}
		if ci.N != 60 || ci.HalfWidth <= 0 {
			t.Fatalf("%s: twin interval not a 60-replication estimate: %+v", name, ci)
		}
		if diff := math.Abs(a.Mean - ci.Mean); diff > ci.HalfWidth+bound {
			t.Errorf("%s: approximate analytic %v vs simulated %v ± %v — outside the CI widened by the certified bound %v",
				name, a.Mean, ci.Mean, ci.HalfWidth, bound)
		}
	}
}

// TestMiniErlangRefusedWithoutExpansion pins the before side of the story:
// the Erlang-repair mini configuration is refused by the plain certificate
// tier with a non-memoryless reason that names the expansion remedy.
func TestMiniErlangRefusedWithoutExpansion(t *testing.T) {
	cfg := abe.MiniErlang()
	m := san.NewModel(cfg.Name)
	mp, err := abe.Build(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := san.Compile(m, mp.Rewards())
	if err != nil {
		t.Fatal(err)
	}
	_, cert := statespace.Certify(cm, statespace.Options{})
	if cert.Certified() {
		t.Fatal("unexpanded Erlang config must be refused")
	}
	found := false
	for _, r := range cert.Refusals {
		if strings.HasPrefix(r, san.RefusalNonMemoryless) {
			found = true
			if !strings.Contains(r, "expandable into") {
				t.Errorf("refusal should name the expansion remedy: %q", r)
			}
		}
	}
	if !found {
		t.Fatalf("expected a non-memoryless refusal, got %v", cert.Refusals)
	}
}

func TestAblationCorrelation(t *testing.T) {
	fig, err := AblationCorrelation(quick())
	if err != nil {
		t.Fatal(err)
	}
	ys := fig.SeriesY("CFS-Availability")
	if len(ys) < 3 {
		t.Fatalf("ablation points = %d", len(ys))
	}
	if !(ys[len(ys)-1] < ys[0]) {
		t.Errorf("higher propagation probability should reduce availability: %v", ys)
	}
}

func TestAblationAnalyticVsSim(t *testing.T) {
	table, err := AblationAnalyticVsSim(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 3 {
		t.Errorf("rows = %d, want 3", len(table.Rows))
	}
}

func TestRunDispatch(t *testing.T) {
	opts := quick()
	for _, name := range []string{"table3", "table5", "figure1"} {
		out, err := Run(name, opts)
		if err != nil {
			t.Errorf("Run(%q): %v", name, err)
		}
		if out == "" {
			t.Errorf("Run(%q) produced no output", name)
		}
	}
	if _, err := Run("bogus", opts); err == nil {
		t.Error("unknown experiment accepted")
	}
	if len(Names()) != 14 {
		t.Errorf("Names() = %v", Names())
	}
}

func TestPaperFull(t *testing.T) {
	res, err := PaperFull(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 5 {
		t.Fatalf("tables = %d, want 5 (Tables 1-5)", len(res.Tables))
	}
	out := res.Render()
	for _, want := range []string{
		"Table 1", "Table 2", "Table 3", "Table 4",
		"Table 5: simulation model parameters derived from log analysis",
		"log-calibrated", "Round trip",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("paper_full rendering missing %q", want)
		}
	}

	// The sweep must run the *calibrated* configuration, not the hard-coded
	// ABE constants: its disk parameters must equal the derived rates.
	cal := res.Calibration
	for _, pt := range res.Sweep.Points {
		cfg := pt.Measures.Config
		if cfg.Storage.Disk.ShapeBeta != cal.Rates.DiskWeibullShape {
			t.Fatalf("sweep point %q disk shape %v, want derived %v", pt.Label, cfg.Storage.Disk.ShapeBeta, cal.Rates.DiskWeibullShape)
		}
		if cfg.Storage.Disk.MTBFHours != cal.Rates.DiskMTBFHours {
			t.Fatalf("sweep point %q disk MTBF %v, want derived %v", pt.Label, cfg.Storage.Disk.MTBFHours, cal.Rates.DiskMTBFHours)
		}
	}
	if got, want := len(res.Sweep.Points), 2*len(Figure4ScaleFactors(true)); got != want {
		t.Errorf("sweep points = %d, want %d (base + spare per factor)", got, want)
	}

	// Round trip: the statistically stable rates must re-derive tightly.
	for name, tol := range map[string]float64{
		"jobs_per_hour":     0.10,
		"cfs_availability":  0.05,
		"outages_per_month": 0.50,
	} {
		if got := res.RoundTrip.RelativeError[name]; !(got <= tol) {
			t.Errorf("round-trip %s error %v, want <= %v", name, got, tol)
		}
	}

	// JSON: one valid document with the sweep schema at the top level and a
	// calibration section.
	doc, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		MissionHours float64 `json:"mission_hours"`
		Points       []struct {
			Label string `json:"label"`
		} `json:"points"`
		Calibration struct {
			Population int `json:"population"`
			Parameters []struct {
				Name   string `json:"name"`
				Source string `json:"source"`
			} `json:"parameters"`
		} `json:"calibration"`
		RoundTrip struct {
			RelativeError map[string]float64 `json:"relative_error"`
		} `json:"round_trip"`
	}
	if err := json.Unmarshal([]byte(doc), &parsed); err != nil {
		t.Fatalf("paper_full JSON invalid: %v", err)
	}
	if parsed.MissionHours != 4380 || len(parsed.Points) != len(res.Sweep.Points) {
		t.Errorf("JSON sweep section wrong: %+v", parsed)
	}
	if parsed.Calibration.Population != 480 || len(parsed.Calibration.Parameters) < 10 {
		t.Errorf("JSON calibration section wrong: %+v", parsed.Calibration)
	}
	if len(parsed.RoundTrip.RelativeError) == 0 {
		t.Error("JSON round_trip section missing")
	}
}

func TestPaperFullDeterministicAcrossParallelism(t *testing.T) {
	serial := quick()
	serial.Parallelism = 1
	parallel := quick()
	parallel.Parallelism = 4
	a, err := PaperFull(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PaperFull(parallel)
	if err != nil {
		t.Fatal(err)
	}
	ja, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if ja != jb {
		t.Error("paper_full JSON differs across parallelism settings")
	}
}

func TestExtensionCheckpoint(t *testing.T) {
	table, err := ExtensionCheckpoint(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (ABE, 4x, petascale)", len(table.Rows))
	}
	out := table.Render()
	for _, want := range []string{"ABE", "Petascale", "Utilization"} {
		if !strings.Contains(out, want) {
			t.Errorf("extension table missing %q:\n%s", want, out)
		}
	}
}

func TestRareEventDataLoss(t *testing.T) {
	// The experiment's own quick mode (not the cheaper quick() helper): the
	// acceptance criterion is that splitting's confidence interval is at
	// least 10x narrower than naive Monte Carlo's at equal event budget.
	tab, err := RareEventDataLoss(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	out := tab.Render()
	for _, want := range []string{"Multilevel splitting", "Naive Monte Carlo (equal budget)", "CI narrowing factor"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Parse the narrowing factor from its row ("<factor>x").
	var factor float64
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, "CI narrowing factor") {
			continue
		}
		fields := strings.Fields(line)
		for _, f := range fields {
			if strings.HasSuffix(f, "x") {
				if _, err := fmt.Sscanf(f, "%fx", &factor); err == nil && factor > 0 {
					break
				}
			}
		}
	}
	if factor < 10 {
		t.Errorf("CI narrowing factor %.1fx below the 10x acceptance threshold:\n%s", factor, out)
	}
}

func TestRareEventConfigValid(t *testing.T) {
	cfg := RareEventConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	levels := cfg.DataLossLevels()
	if len(levels) != cfg.Geometry.Parity+1 {
		t.Errorf("levels %v for parity %d", levels, cfg.Geometry.Parity)
	}
	if levels[len(levels)-1] != float64(cfg.Geometry.Parity+1) {
		t.Errorf("top level %v, want %d", levels[len(levels)-1], cfg.Geometry.Parity+1)
	}
}
