package dist

import (
	"math"

	"repro/internal/rng"
)

// Weibull models disk lifetimes: shape < 1 expresses infant mortality (the
// regime the ABE field logs exhibit for a newly deployed population),
// shape = 1 degenerates to the exponential, and shape > 1 expresses
// wear-out.
type Weibull struct {
	shape, scale float64
}

// NewWeibull returns a Weibull distribution with the given shape (beta) and
// scale (eta) parameters.
func NewWeibull(shape, scale float64) (Weibull, error) {
	if err := checkPositive("shape", shape); err != nil {
		return Weibull{}, err
	}
	if err := checkPositive("scale", scale); err != nil {
		return Weibull{}, err
	}
	return Weibull{shape: shape, scale: scale}, nil
}

// NewWeibullFromMTBF returns the Weibull with the given shape whose mean
// equals mtbf, solving mtbf = scale * Gamma(1 + 1/shape) for the scale. This
// is how the paper's disk sensitivity series hold the field AFR fixed while
// varying the shape.
func NewWeibullFromMTBF(shape, mtbf float64) (Weibull, error) {
	if err := checkPositive("shape", shape); err != nil {
		return Weibull{}, err
	}
	if err := checkPositive("MTBF", mtbf); err != nil {
		return Weibull{}, err
	}
	scale := mtbf / math.Gamma(1+1/shape)
	if err := checkPositive("derived scale", scale); err != nil {
		return Weibull{}, err
	}
	return Weibull{shape: shape, scale: scale}, nil
}

// Shape returns the shape (beta) parameter.
func (w Weibull) Shape() float64 { return w.shape }

// Scale returns the scale (eta) parameter.
func (w Weibull) Scale() float64 { return w.scale }

// Sample draws via the inverse-CDF transform scale*(-ln U)^(1/shape).
func (w Weibull) Sample(s *rng.Stream) float64 {
	return w.scale * math.Pow(-math.Log(s.OpenFloat64()), 1/w.shape)
}

// Mean returns scale * Gamma(1 + 1/shape).
func (w Weibull) Mean() float64 {
	return w.scale * math.Gamma(1+1/w.shape)
}

// Variance returns scale^2 * (Gamma(1+2/shape) - Gamma(1+1/shape)^2).
func (w Weibull) Variance() float64 {
	g1 := math.Gamma(1 + 1/w.shape)
	g2 := math.Gamma(1 + 2/w.shape)
	return w.scale * w.scale * (g2 - g1*g1)
}

// ThirdMoment returns E[X^3] = scale^3 * Gamma(1 + 3/shape).
func (w Weibull) ThirdMoment() float64 {
	return w.scale * w.scale * w.scale * math.Gamma(1+3/w.shape)
}

// CDF returns 1 - exp(-(x/scale)^shape) for x >= 0.
func (w Weibull) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-math.Pow(x/w.scale, w.shape))
}

// Quantile returns scale*(-ln(1-p))^(1/shape).
func (w Weibull) Quantile(p float64) float64 {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return math.NaN()
	}
	return w.scale * math.Pow(-math.Log1p(-p), 1/w.shape)
}

// Name implements Distribution.
func (Weibull) Name() string { return "weibull" }

// Params implements Distribution.
func (w Weibull) Params() map[string]float64 {
	return map[string]float64{"shape": w.shape, "scale": w.scale}
}
