package san_test

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/san"
)

// fpModel builds a small model exercising every fingerprinted surface:
// places, input arcs, an input gate with predicate and transform, a fixed
// exponential delay, a marking-dependent delay, probabilistic cases with
// output arcs and an output gate, and rate plus impulse rewards. mutate, when
// non-nil, edits the builder before compilation.
func fpModel(t *testing.T, mutate func(m *san.Model, up, down *san.Place)) *san.CompiledModel {
	t.Helper()
	m := san.NewModel("fp")
	up := m.AddPlace("up", 2)
	down := m.AddPlace("down", 0)
	fail := m.AddTimedActivity("fail", fpExp(t, 0.001))
	fail.AddInputArc(up, 1)
	fail.AddCase(san.Case{
		Probability: func(mr san.MarkingReader) float64 { return 0.75 },
		OutputArcs:  []san.Arc{{Place: down, Mult: 1}},
	})
	fail.AddCase(san.Case{
		Probability: func(mr san.MarkingReader) float64 { return 0.25 },
		OutputArcs:  []san.Arc{{Place: down, Mult: 1}},
		OutputGates: []*san.OutputGate{{
			Name:      "drain",
			Transform: func(mw san.MarkingWriter) { mw.SetTokens(down, mw.Tokens(down)) },
		}},
	})
	repair := m.AddTimedActivityFunc("repair", func(mr san.MarkingReader) dist.Distribution {
		return fpExp(t, 0.1*float64(1+mr.Tokens(down)))
	})
	repair.AddInputArc(down, 1)
	repair.AddInputGate(&san.InputGate{
		Name:    "crew",
		Reads:   []*san.Place{up},
		Enabled: func(mr san.MarkingReader) bool { return mr.Tokens(up) < 2 },
	})
	repair.AddOutputArc(up, 1)
	repair.SetReactivation(true)
	if mutate != nil {
		mutate(m, up, down)
	}
	cm, err := san.Compile(m, []san.RewardVariable{
		san.UpFraction("avail", func(mr san.MarkingReader) bool { return mr.Tokens(up) > 0 }),
		san.CompletionCount("repairs", "repair"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return cm
}

func fpExp(t *testing.T, rate float64) dist.Exponential {
	t.Helper()
	d, err := dist.NewExponentialFromRate(rate)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestFingerprintStable pins the fingerprint of the fixture model to a golden
// value, proving the serialization is stable across processes and runs (no
// map-order or pointer-value dependence can survive a fixed golden). Building
// the same model twice must also agree without consulting the golden.
func TestFingerprintStable(t *testing.T) {
	a := fpModel(t, nil).Fingerprint()
	b := fpModel(t, nil).Fingerprint()
	if a != b {
		t.Fatalf("fingerprint not reproducible: %s vs %s", a, b)
	}
	const golden = "3f036ed8234f9eb3d587b961202ee0fbb8ba940c6934c8fddf804e3cb18cfcbc"
	if a != golden {
		t.Fatalf("fingerprint drifted from golden:\n got %s\nwant %s\n(an intentional serialization change must update the golden)", a, golden)
	}
}

// TestFingerprintSensitivity flips every fingerprinted field one at a time
// and asserts the hash moves each time.
func TestFingerprintSensitivity(t *testing.T) {
	base := fpModel(t, nil).Fingerprint()
	variants := map[string]func(m *san.Model, up, down *san.Place){
		"extra place":     func(m *san.Model, up, down *san.Place) { m.AddPlace("spare", 0) },
		"initial marking": func(m *san.Model, up, down *san.Place) { m.AddPlace("pool", 3) },
		"place name":      func(m *san.Model, up, down *san.Place) { m.AddPlace("renamed", 0) },
		"extra activity": func(m *san.Model, up, down *san.Place) {
			m.AddTimedActivity("age", fpExp(t, 2)).AddInputArc(up, 1).AddOutputArc(up, 1)
		},
		"arc multiplicity": func(m *san.Model, up, down *san.Place) { m.Activity("fail").AddInputArc(up, 1) },
		"delay rate": func(m *san.Model, up, down *san.Place) {
			m.AddTimedActivity("age", fpExp(t, 3)).AddInputArc(up, 1).AddOutputArc(up, 1)
		},
		"gate predicate": func(m *san.Model, up, down *san.Place) {
			m.Activity("fail").AddInputGate(&san.InputGate{Name: "g", Reads: []*san.Place{down}, Enabled: func(mr san.MarkingReader) bool { return mr.Tokens(down) < 5 }})
		},
		"output gate": func(m *san.Model, up, down *san.Place) {
			m.Activity("repair").AddOutputGate(&san.OutputGate{Name: "og", Transform: func(mw san.MarkingWriter) { mw.Add(down, 0) }})
		},
		"reactivation flag": func(m *san.Model, up, down *san.Place) { m.Activity("repair").SetReactivation(false) },
	}
	seen := map[string]string{"": base}
	for name, mutate := range variants {
		fp := fpModel(t, mutate).Fingerprint()
		if fp == base {
			t.Errorf("variant %q did not change the fingerprint", name)
		}
		for prev, prevFP := range seen {
			if prevFP == fp {
				t.Errorf("variants %q and %q collide", name, prev)
			}
		}
		seen[name] = fp
	}
}

// TestFingerprintClosureBehavior asserts behavioral sensitivity of closure
// probing: case probabilities, marking-dependent delay specs, gate
// transforms, and reward functions that differ in behavior (not just
// identity) produce different fingerprints, while recompiling closures with
// identical behavior does not.
func TestFingerprintClosureBehavior(t *testing.T) {
	base := fpModel(t, nil).Fingerprint()

	caseProb := fpModel(t, func(m *san.Model, up, down *san.Place) {
		cases := m.Activity("fail").Cases()
		cases[0].Probability = func(mr san.MarkingReader) float64 { return 0.9 }
		cases[1].Probability = func(mr san.MarkingReader) float64 { return 0.1 }
	}).Fingerprint()
	if caseProb == base {
		t.Error("changed case probability did not change the fingerprint")
	}

	delayFn := fpModel(t, func(m *san.Model, up, down *san.Place) {
		m.AddTimedActivityFunc("repair2", func(mr san.MarkingReader) dist.Distribution {
			return fpExp(t, 0.2*float64(1+mr.Tokens(down)))
		}).AddInputArc(down, 1).AddOutputArc(up, 1)
	}).Fingerprint()
	delayFn2 := fpModel(t, func(m *san.Model, up, down *san.Place) {
		m.AddTimedActivityFunc("repair2", func(mr san.MarkingReader) dist.Distribution {
			return fpExp(t, 0.3*float64(1+mr.Tokens(down)))
		}).AddInputArc(down, 1).AddOutputArc(up, 1)
	}).Fingerprint()
	if delayFn == delayFn2 {
		t.Error("marking-dependent delays with different rates collide")
	}

	// Rewards: same model, different reward rate behavior.
	m1 := san.NewModel("r")
	p1 := m1.AddPlace("p", 1)
	m1.AddTimedActivity("t", fpExp(t, 1)).AddInputArc(p1, 1).AddOutputArc(p1, 1)
	cmA, err := san.Compile(m1, []san.RewardVariable{san.TokenTimeAverage("tokens", p1)})
	if err != nil {
		t.Fatal(err)
	}
	m2 := san.NewModel("r")
	p2 := m2.AddPlace("p", 1)
	m2.AddTimedActivity("t", fpExp(t, 1)).AddInputArc(p2, 1).AddOutputArc(p2, 1)
	cmB, err := san.Compile(m2, []san.RewardVariable{{
		Name: "tokens", Mode: san.TimeAveraged,
		Rate: func(mr san.MarkingReader) float64 { return 2 * float64(mr.Tokens(p2)) },
	}})
	if err != nil {
		t.Fatal(err)
	}
	if cmA.Fingerprint() == cmB.Fingerprint() {
		t.Error("different reward rate behavior collides")
	}

	// Identical content built from two independent builders must agree.
	m3 := san.NewModel("r")
	p3 := m3.AddPlace("p", 1)
	m3.AddTimedActivity("t", fpExp(t, 1)).AddInputArc(p3, 1).AddOutputArc(p3, 1)
	cmC, err := san.Compile(m3, []san.RewardVariable{san.TokenTimeAverage("tokens", p3)})
	if err != nil {
		t.Fatal(err)
	}
	if cmA.Fingerprint() != cmC.Fingerprint() {
		t.Errorf("identical models disagree: %s vs %s", cmA.Fingerprint(), cmC.Fingerprint())
	}
}
