// Package dist is a miniature stand-in for the real distribution package,
// just large enough for the distliteral rule to resolve its types and
// constructors against it. Composite literals inside this package (the
// constructors' own bodies) are exempt, exactly as in the real package.
package dist

// Distribution is the delay interface.
type Distribution interface{ Mean() float64 }

// Exponential is a memoryless delay.
type Exponential struct{ RateVal float64 }

// Mean returns the expected delay.
func (e Exponential) Mean() float64 { return 1 / e.RateVal }

// NewExponential constructs a validated Exponential from its mean.
func NewExponential(mean float64) Exponential { return Exponential{RateVal: 1 / mean} }

// Uniform is a window delay.
type Uniform struct{ Lo, Hi float64 }

// Mean returns the window midpoint.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// NewUniform constructs a validated Uniform.
func NewUniform(lo, hi float64) Uniform { return Uniform{Lo: lo, Hi: hi} }

// Component is a plain argument record (a weighted mixture branch); it does
// not implement Distribution, so literals of it are not flagged.
type Component struct {
	Weight float64
	Dist   Distribution
}
