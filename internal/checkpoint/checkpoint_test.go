package checkpoint

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/abe"
	"repro/internal/san"
)

func validParams() Params {
	return Params{
		CheckpointBytes:      10 * 1 << 40, // 10 TiB
		BandwidthBytesPerSec: 3 * 1 << 30,  // 3 GiB/s
		MTBFHours:            24,
		RestartHours:         0.25,
	}
}

func TestParamsValidate(t *testing.T) {
	if err := validParams().Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	for name, mutate := range map[string]func(*Params){
		"zero checkpoint": func(p *Params) { p.CheckpointBytes = 0 },
		"zero bandwidth":  func(p *Params) { p.BandwidthBytesPerSec = 0 },
		"zero mtbf":       func(p *Params) { p.MTBFHours = 0 },
		"negative restart": func(p *Params) {
			p.RestartHours = -1
		},
	} {
		p := validParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestCheckpointHours(t *testing.T) {
	p := validParams()
	want := p.CheckpointBytes / p.BandwidthBytesPerSec / 3600
	if got := p.CheckpointHours(); math.Abs(got-want) > 1e-12 {
		t.Errorf("CheckpointHours = %v, want %v", got, want)
	}
}

func TestOptimalIntervalFirstOrder(t *testing.T) {
	// For delta << M, Daly's interval approaches sqrt(2*delta*M).
	p := Params{CheckpointBytes: 1 << 30, BandwidthBytesPerSec: 1 << 30, MTBFHours: 1000, RestartHours: 0}
	delta := p.CheckpointHours() // ~2.78e-4 h
	tau, err := p.OptimalInterval()
	if err != nil {
		t.Fatal(err)
	}
	firstOrder := math.Sqrt(2 * delta * p.MTBFHours)
	if math.Abs(tau-firstOrder)/firstOrder > 0.02 {
		t.Errorf("tau = %v, want ~%v (first-order)", tau, firstOrder)
	}
}

func TestOptimalIntervalDegenerateRegime(t *testing.T) {
	// When writing a checkpoint takes longer than 2*MTBF the analysis clamps
	// the interval to the MTBF.
	p := Params{CheckpointBytes: 1 << 40, BandwidthBytesPerSec: 1 << 20, MTBFHours: 10, RestartHours: 0}
	tau, err := p.OptimalInterval()
	if err != nil {
		t.Fatal(err)
	}
	if tau != p.MTBFHours {
		t.Errorf("tau = %v, want MTBF %v in the degenerate regime", tau, p.MTBFHours)
	}
	bad := Params{}
	if _, err := bad.OptimalInterval(); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestAnalyzeOverheadsAndBounds(t *testing.T) {
	eff, err := Analyze(validParams())
	if err != nil {
		t.Fatal(err)
	}
	if eff.Utilization <= 0 || eff.Utilization >= 1 {
		t.Errorf("utilization = %v, want in (0,1)", eff.Utilization)
	}
	sum := eff.Utilization + eff.CheckpointOverhead + eff.ReworkOverhead
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("overheads + utilization = %v, want 1", sum)
	}
	if eff.OptimalIntervalHours <= 0 || eff.CheckpointHours <= 0 {
		t.Errorf("degenerate efficiency: %+v", eff)
	}
	if _, err := Analyze(Params{}); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestAnalyzeMoreBandwidthHelps(t *testing.T) {
	slow := validParams()
	fast := validParams()
	fast.BandwidthBytesPerSec *= 10
	slowEff, err := Analyze(slow)
	if err != nil {
		t.Fatal(err)
	}
	fastEff, err := Analyze(fast)
	if err != nil {
		t.Fatal(err)
	}
	if !(fastEff.Utilization > slowEff.Utilization) {
		t.Errorf("more CFS bandwidth should raise utilization: %v vs %v", fastEff.Utilization, slowEff.Utilization)
	}
}

func TestClusterParamsValidate(t *testing.T) {
	if err := DefaultClusterParams().Validate(); err != nil {
		t.Errorf("default cluster params invalid: %v", err)
	}
	bad := DefaultClusterParams()
	bad.PerOSSBandwidthBytesPerSec = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero bandwidth accepted")
	}
}

func TestForClusterScalingReproducesCheckpointWall(t *testing.T) {
	// The motivation cited by the paper: on very large systems a dominant
	// share of time goes to checkpointing and rework. Evaluate the ABE and
	// petascale configurations (cheap simulation settings) and check that
	// utilization degrades with scale and that the checkpoint+rework share
	// at petascale is substantial.
	opts := san.Options{Mission: 4380, Replications: 8, Seed: 5}
	abeCfg := abe.ABE()
	abeMeasures, err := abe.Evaluate(abeCfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	petaCfg := abe.Petascale()
	petaMeasures, err := abe.Evaluate(petaCfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	cp := DefaultClusterParams()

	abeParams, err := ForCluster(abeCfg, abeMeasures, cp)
	if err != nil {
		t.Fatal(err)
	}
	petaParams, err := ForCluster(petaCfg, petaMeasures, cp)
	if err != nil {
		t.Fatal(err)
	}
	// Petascale writes a much larger state over only 10x the bandwidth and
	// is interrupted more often.
	if !(petaParams.CheckpointBytes > abeParams.CheckpointBytes*20) {
		t.Errorf("petascale checkpoint %v should dwarf ABE %v", petaParams.CheckpointBytes, abeParams.CheckpointBytes)
	}
	if !(petaParams.MTBFHours < abeParams.MTBFHours) {
		t.Errorf("petascale MTBF %v should be below ABE %v", petaParams.MTBFHours, abeParams.MTBFHours)
	}

	abeEff, err := Analyze(abeParams)
	if err != nil {
		t.Fatal(err)
	}
	petaEff, err := Analyze(petaParams)
	if err != nil {
		t.Fatal(err)
	}
	if !(petaEff.Utilization < abeEff.Utilization) {
		t.Errorf("utilization should drop with scale: %v vs %v", petaEff.Utilization, abeEff.Utilization)
	}
	if lost := 1 - petaEff.Utilization; lost < 0.2 {
		t.Errorf("petascale checkpoint+rework share = %v, expected a substantial fraction", lost)
	}
	// Error paths.
	if _, err := ForCluster(abe.Config{}, abeMeasures, cp); err == nil {
		t.Error("invalid cluster config accepted")
	}
	badCP := cp
	badCP.MemoryPerNodeBytes = 0
	if _, err := ForCluster(abeCfg, abeMeasures, badCP); err == nil {
		t.Error("invalid cluster params accepted")
	}
}

// Property: for any valid parameters the efficiency decomposition stays in
// bounds and sums to one.
func TestQuickEfficiencyBounds(t *testing.T) {
	f := func(ckptGB, bwMBs, mtbfSeed uint16, restartSeed uint8) bool {
		p := Params{
			CheckpointBytes:      float64(ckptGB%4000+1) * float64(1<<30),
			BandwidthBytesPerSec: float64(bwMBs%8000+1) * float64(1<<20),
			MTBFHours:            float64(mtbfSeed%2000) + 0.5,
			RestartHours:         float64(restartSeed % 4),
		}
		eff, err := Analyze(p)
		if err != nil {
			return false
		}
		if eff.Utilization < 0 || eff.Utilization > 1 {
			return false
		}
		if eff.CheckpointOverhead < 0 || eff.CheckpointOverhead > 1 || eff.ReworkOverhead < 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
