package san

import (
	"errors"
	"fmt"

	"repro/internal/dist"
)

// Lumping errors.
var (
	// ErrNotLumpable reports a structurally invalid replica class (bad state
	// graph, bad replica count, duplicate names).
	ErrNotLumpable = errors.New("san: replica class not lumpable")
	// ErrNonExponential reports a replica-class transition whose delay is not
	// exponential. Lumping replaces n per-replica transitions by one
	// aggregate transition whose rate is count x rate, which is exact only
	// for memoryless delays; anything else must be expanded flat, never
	// silently mis-lumped.
	ErrNonExponential = errors.New("san: replica class transition is not exponential")
)

// ReplicaTransition is one local-state transition of a replica class.
type ReplicaTransition struct {
	// Name labels the aggregate activity (qualified under the class prefix).
	Name string
	// From and To are local state names. A firing moves exactly one replica
	// from From to To.
	From, To string
	// Delay is the per-replica delay distribution. It must be a
	// dist.Exponential; ReplicateLumped rejects anything else with
	// ErrNonExponential because the count x rate aggregation below is exact
	// only under memorylessness.
	Delay dist.Distribution
	// Effect, when non-nil, is a shared-place side effect applied once per
	// firing (e.g. incrementing an outage counter when a replica enters its
	// failed state). It runs after the counting places have been updated, as
	// an output gate of the aggregate activity, and must touch only shared
	// places — per-replica identity does not exist in lumped form.
	Effect GateFunc
}

// ReplicaClass describes a population of stochastically identical,
// memoryless replicas: a local state space and exponential transitions
// between local states, plus side effects on shared places. Because the
// replicas are exchangeable and exponential, the vector of per-state counts
// is a strongly lumped Markov chain of the flat n-fold replication: the
// aggregate transition rate out of a state with count k is exactly k x the
// per-replica rate. ReplicateLumped builds that counted representation.
type ReplicaClass struct {
	// States are the local state names, in a fixed order.
	States []string
	// Initial is the state every replica starts in.
	Initial string
	// Transitions are the local transitions.
	Transitions []ReplicaTransition
}

// Validate checks the class structure and that every transition delay is
// exponential.
func (c ReplicaClass) Validate() error {
	if len(c.States) == 0 {
		return fmt.Errorf("%w: no states", ErrNotLumpable)
	}
	seen := make(map[string]bool, len(c.States))
	for _, s := range c.States {
		if s == "" {
			return fmt.Errorf("%w: empty state name", ErrNotLumpable)
		}
		if seen[s] {
			return fmt.Errorf("%w: duplicate state %q", ErrNotLumpable, s)
		}
		seen[s] = true
	}
	if !seen[c.Initial] {
		return fmt.Errorf("%w: initial state %q not in state list", ErrNotLumpable, c.Initial)
	}
	names := make(map[string]bool, len(c.Transitions))
	for _, tr := range c.Transitions {
		if tr.Name == "" {
			return fmt.Errorf("%w: transition with empty name", ErrNotLumpable)
		}
		if names[tr.Name] {
			return fmt.Errorf("%w: duplicate transition %q", ErrNotLumpable, tr.Name)
		}
		names[tr.Name] = true
		if !seen[tr.From] || !seen[tr.To] {
			return fmt.Errorf("%w: transition %q connects unknown states %q -> %q", ErrNotLumpable, tr.Name, tr.From, tr.To)
		}
		if tr.From == tr.To {
			return fmt.Errorf("%w: transition %q is a self-loop", ErrNotLumpable, tr.Name)
		}
		if _, ok := tr.Delay.(dist.Exponential); !ok {
			name := "nil"
			if tr.Delay != nil {
				name = tr.Delay.Name()
			}
			return fmt.Errorf("%w: transition %q has %s delay", ErrNonExponential, tr.Name, name)
		}
	}
	return nil
}

// LumpedPlaces exposes the counting places and activity names of a lumped
// replica class.
type LumpedPlaces struct {
	// N is the replica count.
	N int
	// Class echoes the class specification.
	Class ReplicaClass

	states     map[string]*Place
	stateOrder []*Place
	activities map[string]string // transition name -> activity name
}

// State returns the counting place of the named local state, or nil.
func (lp *LumpedPlaces) State(name string) *Place { return lp.states[name] }

// StatePlaces returns the counting places in class state order.
func (lp *LumpedPlaces) StatePlaces() []*Place { return lp.stateOrder }

// ActivityName returns the qualified activity name of the named transition,
// or "".
func (lp *LumpedPlaces) ActivityName(transition string) string { return lp.activities[transition] }

// ReplicateLumped composes n identical memoryless replicas of class under
// prefix as one counted population: one counting place per local state
// ("<prefix>/state/<name>", n tokens initially in the Initial state) and one
// aggregate timed activity per transition ("<prefix>/<transition name>")
// whose exponential rate is count(From) x the per-replica rate, re-evaluated
// (marking-dependent delay with reactivation) whenever the count changes.
// This is the exact strong lumping of the flat Replicate expansion: both
// chains have identical reward processes for any reward that reads only the
// shared places and per-state counts, but the lumped form costs
// O(states + transitions) places and activities instead of O(n x submodel).
//
// Non-exponential transitions are rejected with ErrNonExponential; n <= 0 is
// rejected rather than silently building an empty population.
func ReplicateLumped(m *Model, prefix string, n int, class ReplicaClass) (*LumpedPlaces, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: replicate %q with count %d", ErrNotLumpable, prefix, n)
	}
	if err := class.Validate(); err != nil {
		return nil, fmt.Errorf("san: replicate %q: %w", prefix, err)
	}
	lp := &LumpedPlaces{
		N:          n,
		Class:      class,
		states:     make(map[string]*Place, len(class.States)),
		activities: make(map[string]string, len(class.Transitions)),
	}
	for _, name := range class.States {
		initial := 0
		if name == class.Initial {
			initial = n
		}
		p, err := m.AddPlaceErr(Qualify(prefix, "state/"+name), initial)
		if err != nil {
			return nil, err
		}
		lp.states[name] = p
		lp.stateOrder = append(lp.stateOrder, p)
	}
	for _, tr := range class.Transitions {
		exp := tr.Delay.(dist.Exponential) // checked by Validate
		rate := exp.Rate()
		from := lp.states[tr.From]
		to := lp.states[tr.To]
		actName := Qualify(prefix, tr.Name)
		if m.Activity(actName) != nil {
			return nil, fmt.Errorf("%w: %q", ErrDuplicateActivity, actName)
		}
		// Pre-build the aggregate delay for every possible count so the hot
		// path allocates nothing: delays[k] has rate k x rate.
		delays := make([]dist.Distribution, n+1)
		for k := 1; k <= n; k++ {
			d, err := dist.NewExponentialFromRate(rate * float64(k))
			if err != nil {
				return nil, err
			}
			delays[k] = d
		}
		act := m.AddTimedActivityFunc(actName, func(mr MarkingReader) dist.Distribution {
			k := mr.Tokens(from)
			// The activity is disabled at k == 0 (input arc below), so the
			// clamp only guards against gate functions that mutate the count
			// between scheduling and sampling.
			if k < 1 {
				k = 1
			}
			if k > n {
				k = n
			}
			return delays[k]
		})
		// Reactivation makes the delay track the count: whenever the From
		// count changes while the aggregate activity stays enabled, the
		// pending completion is resampled at the new k x rate. For
		// exponential delays this is exactly distribution-preserving
		// (memorylessness), which is the same argument that makes the
		// lumping itself exact.
		act.SetReactivation(true)
		act.AddInputArc(from, 1)
		act.AddOutputArc(to, 1)
		if tr.Effect != nil {
			act.AddOutputGate(&OutputGate{Name: actName + "_og", Transform: tr.Effect})
		}
		lp.activities[tr.Name] = actName
	}
	return lp, nil
}
