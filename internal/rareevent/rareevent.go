// Package rareevent estimates rare-event probabilities on SAN models with
// RESTART-style fixed-effort multilevel importance splitting.
//
// The target measure is the transient probability that an importance
// function over the marking reaches a top level within the mission time —
// for the paper's storage models, the probability that some RAID tier
// accumulates more concurrent disk failures than its parity can absorb
// (data loss). Naive Monte Carlo needs on the order of 1/p replications to
// observe a single such event; splitting decomposes p into a product of
// per-level conditional probabilities, each large enough to estimate with
// modest effort:
//
//	p = P(L_m) = P(L_1) · P(L_2|L_1) · ... · P(L_m|L_{m-1})
//
// Stage 0 launches trajectories from time 0 and snapshots each one the
// first time its importance reaches level 1 (marking, pending activity
// completions, reward accumulators, and RNG state — see san.Snapshot).
// Stage k restarts a fixed effort of trajectories from the snapshots pooled
// at level k, with fresh per-restart random streams, and counts how many
// reach level k+1 before the mission ends. The product of the per-stage hit
// fractions is the unbiased fixed-effort estimator; its confidence interval
// comes from stats.ProductBinomialInterval.
package rareevent

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/rng"
	"repro/internal/san"
	"repro/internal/stats"
)

// ErrBadOptions reports ill-formed splitting options.
var ErrBadOptions = errors.New("rareevent: invalid options")

// Options configures a fixed-effort splitting study.
type Options struct {
	// Mission is the horizon T of the transient probability
	// P(importance reaches the top level within [0, T]) in hours.
	Mission float64
	// Levels are the strictly increasing importance thresholds; reaching
	// the last level is the rare event.
	Levels []float64
	// Effort is the number of trajectories launched per stage and must have
	// one entry per level: Effort[0] trajectories start fresh at time 0,
	// Effort[k] restart round-robin from the snapshot pool collected at
	// Levels[k-1].
	Effort []int
	// Confidence is the level for reported intervals (default 0.95).
	Confidence float64
	// Seed seeds the master stream (default 1).
	Seed uint64
	// Parallelism is the number of worker goroutines (default GOMAXPROCS).
	// Results are bit-identical across Parallelism settings: per-trajectory
	// seeds and entry snapshots are assigned by trajectory index, and
	// reductions run in index order.
	Parallelism int
	// ResampleOnRestore, when non-nil, selects activities whose pending
	// delays are re-drawn from the entry marking instead of preserved when a
	// trajectory is cloned (see san.ResamplePredicate). For exponential
	// (memoryless) delays this is exactly distribution-preserving and
	// de-correlates the clones sharing an entry state, which otherwise
	// dominate the deepest level's variance; leave nil for non-exponential
	// delays.
	ResampleOnRestore san.ResamplePredicate
}

func (o Options) withDefaults() Options {
	if o.Confidence == 0 {
		o.Confidence = 0.95
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Parallelism == 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

func (o Options) validate() error {
	if !(o.Mission > 0) {
		return fmt.Errorf("%w: mission %v", ErrBadOptions, o.Mission)
	}
	if len(o.Levels) == 0 {
		return fmt.Errorf("%w: no levels", ErrBadOptions)
	}
	for i := 1; i < len(o.Levels); i++ {
		if !(o.Levels[i] > o.Levels[i-1]) {
			return fmt.Errorf("%w: levels must be strictly increasing, got %v", ErrBadOptions, o.Levels)
		}
	}
	if len(o.Effort) != len(o.Levels) {
		return fmt.Errorf("%w: %d effort entries for %d levels", ErrBadOptions, len(o.Effort), len(o.Levels))
	}
	for i, n := range o.Effort {
		if n < 1 {
			return fmt.Errorf("%w: stage %d effort %d", ErrBadOptions, i, n)
		}
	}
	return nil
}

// StageResult reports one splitting stage.
type StageResult struct {
	// Level is the importance threshold this stage tried to reach.
	Level float64
	// Trials and Hits are the binomial counts of the stage.
	Trials int
	Hits   int
	// PoolSize is the number of entry snapshots the stage restarted from
	// (0 for the first stage, which starts fresh).
	PoolSize int
	// Events is the number of activity completions simulated in the stage.
	Events uint64
}

// ConditionalProbability returns Hits/Trials.
func (sr StageResult) ConditionalProbability() float64 {
	return float64(sr.Hits) / float64(sr.Trials)
}

// Estimate is the result of a splitting study.
type Estimate struct {
	// Probability is the product estimator of the rare-event probability.
	Probability float64
	// Interval is the delta-method confidence interval around Probability.
	Interval stats.Interval
	// Stages reports each level's counts.
	Stages []StageResult
	// TotalEvents is the number of activity completions simulated across
	// all stages — the budget spent, used for fair comparisons with naive
	// Monte Carlo.
	TotalEvents uint64
	// Options echoes the effective options.
	Options Options
}

// trajectoryOutcome is the per-trajectory result of one stage.
type trajectoryOutcome struct {
	crossed bool
	snap    *san.Snapshot
	events  uint64
	err     error
}

// parallelFor runs fn(i) for every i in [0, n) on up to workers goroutines.
// It is the package's deterministic fan-out primitive: callers pre-assign
// per-index inputs (seeds, entry snapshots) and have fn write into index i
// of an outcome slice, so scheduling never affects results.
func parallelFor(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	jobs := make(chan int, n)
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Run estimates P(importance reaches Levels[len-1] within Mission) for the
// model by fixed-effort multilevel splitting. The model must be valid; it is
// shared read-only across worker goroutines, each of which owns a private
// simulator and stream.
func Run(model *san.Model, importance san.ImportanceFunc, opts Options) (*Estimate, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if importance == nil {
		return nil, fmt.Errorf("%w: nil importance function", ErrBadOptions)
	}
	master := rng.NewStream(opts.Seed, "splitting-master")
	// The "validate" split is still drawn so seed derivation is unchanged by
	// the compile-layer refactor; validation now happens in Compile, whose
	// result every trajectory's simulator shares.
	_ = master.Split("validate")
	cm, err := san.Compile(model, nil)
	if err != nil {
		return nil, err
	}

	est := &Estimate{Options: opts}
	var pool []*san.Snapshot
	for stage := range opts.Levels {
		sr, next, err := runStage(cm, importance, opts, master, stage, pool)
		if err != nil {
			return nil, err
		}
		est.Stages = append(est.Stages, sr)
		est.TotalEvents += sr.Events
		if len(next) == 0 {
			// Extinction: no trajectory reached this level, so deeper levels
			// are unreachable with this effort. Record the remaining stages
			// as untried (zero hits over the configured effort would claim
			// evidence we do not have), and stop.
			break
		}
		pool = next
	}

	counts := make([]stats.SplittingStage, len(est.Stages))
	for i, sr := range est.Stages {
		counts[i] = stats.SplittingStage{Trials: sr.Trials, Hits: sr.Hits}
	}
	ci, err := stats.ProductBinomialInterval(counts, opts.Confidence)
	if err != nil {
		return nil, err
	}
	if len(est.Stages) < len(opts.Levels) {
		// The product over completed stages only bounds the rare-event
		// probability from above; report zero with the bound as half width.
		ci.Mean = 0
		est.Probability = 0
	} else {
		est.Probability = ci.Mean
	}
	est.Interval = ci
	return est, nil
}

// runStage executes one fixed-effort stage: Effort[stage] trajectories
// aiming for Levels[stage], restarting from entries (round-robin) unless
// this is the first stage. It returns the stage counts and the snapshot pool
// for the next stage, in deterministic trajectory-index order.
func runStage(cm *san.CompiledModel, importance san.ImportanceFunc, opts Options, master *rng.Stream, stage int, entries []*san.Snapshot) (StageResult, []*san.Snapshot, error) {
	effort := opts.Effort[stage]
	threshold := opts.Levels[stage]
	sr := StageResult{Level: threshold, Trials: effort, PoolSize: len(entries)}

	// Seeds are drawn from the master stream in trajectory order so the
	// study is reproducible and independent of scheduling.
	seeds := make([]uint64, effort)
	for i := range seeds {
		seeds[i] = master.Uint64()
	}

	outcomes := make([]trajectoryOutcome, effort)
	parallelFor(effort, opts.Parallelism, func(i int) {
		outcomes[i] = runTrajectory(cm, importance, opts, stage, threshold, seeds[i], entries, i)
	})

	var pool []*san.Snapshot
	for _, out := range outcomes {
		if out.err != nil {
			return StageResult{}, nil, out.err
		}
		sr.Events += out.events
		if out.crossed {
			sr.Hits++
			pool = append(pool, out.snap)
		}
	}
	return sr, pool, nil
}

// runTrajectory runs one trajectory of a stage: from time 0 for the first
// stage, otherwise restarted from its round-robin entry snapshot with a
// fresh stream. It stops at the first crossing of the stage threshold.
func runTrajectory(cm *san.CompiledModel, importance san.ImportanceFunc, opts Options, stage int, threshold float64, seed uint64, entries []*san.Snapshot, index int) trajectoryOutcome {
	stream := rng.NewStream(seed, fmt.Sprintf("stage-%d-traj-%d", stage, index))
	sim, err := cm.NewSimulator(stream)
	if err != nil {
		return trajectoryOutcome{err: err}
	}
	var out trajectoryOutcome
	mon := &san.Monitor{
		Importance: importance,
		Threshold:  threshold,
		OnCross: func(_ float64, snap *san.Snapshot) {
			out.crossed = true
			out.snap = snap
		},
		StopOnCross: true,
	}
	var res san.Result
	if stage == 0 {
		res, err = sim.RunMonitored(opts.Mission, mon)
		if err != nil {
			return trajectoryOutcome{err: err}
		}
		out.events = res.Events
	} else {
		entry := entries[index%len(entries)].Clone()
		// A fresh stream state makes the clone's future independent of its
		// siblings and of the parent trajectory; the residual completion
		// times in the snapshot are preserved — they are part of the state —
		// unless the caller opted into memoryless resampling.
		entry.Reseed(stream.Uint64())
		res, err = sim.RunFrom(entry, opts.Mission, mon, opts.ResampleOnRestore)
		if err != nil {
			return trajectoryOutcome{err: err}
		}
		out.events = res.Events - entry.Events
	}
	return out
}

// ---------------------------------------------------------------------------
// Naive Monte Carlo comparator
// ---------------------------------------------------------------------------

// NaiveOptions configures the naive Monte Carlo baseline estimate of the
// same transient probability, metered by simulated-event budget so the
// comparison with splitting is at equal cost.
type NaiveOptions struct {
	// Mission is the horizon T in hours.
	Mission float64
	// Level is the rare-event importance threshold.
	Level float64
	// EventBudget stops the study once this many activity completions have
	// been simulated (at least MinReplications replications always run).
	EventBudget uint64
	// MinReplications is the floor on replications (default 10).
	MinReplications int
	// MaxReplications caps the study when the model generates very few
	// events per replication (default 1e6).
	MaxReplications int
	// Confidence for the reported interval (default 0.95).
	Confidence float64
	// Seed seeds the master stream (default 1).
	Seed uint64
	// Parallelism is the number of worker goroutines (default GOMAXPROCS).
	Parallelism int
}

func (o NaiveOptions) withDefaults() NaiveOptions {
	if o.MinReplications == 0 {
		o.MinReplications = 10
	}
	if o.MaxReplications == 0 {
		o.MaxReplications = 1_000_000
	}
	if o.Confidence == 0 {
		o.Confidence = 0.95
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Parallelism == 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// NaiveEstimate is the naive Monte Carlo result.
type NaiveEstimate struct {
	// Probability is the hit fraction.
	Probability float64
	// Interval is the binomial confidence interval (rule-of-three half
	// width when no hits were observed).
	Interval stats.Interval
	// Replications and Hits are the binomial counts.
	Replications int
	Hits         int
	// TotalEvents is the number of activity completions simulated.
	TotalEvents uint64
}

// naiveBatchSize is fixed (not tied to Parallelism) so the number of
// replications a budget buys is deterministic.
const naiveBatchSize = 64

// RunNaive estimates P(importance reaches Level within Mission) by standard
// Monte Carlo: independent replications from time 0, each stopping at its
// first crossing, until the event budget is exhausted. Replications run in
// fixed-size batches so the replication count depends only on the budget and
// seed, never on Parallelism.
func RunNaive(model *san.Model, importance san.ImportanceFunc, opts NaiveOptions) (*NaiveEstimate, error) {
	opts = opts.withDefaults()
	if !(opts.Mission > 0) {
		return nil, fmt.Errorf("%w: mission %v", ErrBadOptions, opts.Mission)
	}
	if importance == nil {
		return nil, fmt.Errorf("%w: nil importance function", ErrBadOptions)
	}
	master := rng.NewStream(opts.Seed, "naive-master")
	_ = master.Split("validate") // preserve historical seed derivation
	cm, err := san.Compile(model, nil)
	if err != nil {
		return nil, err
	}

	est := &NaiveEstimate{}
	for est.Replications < opts.MaxReplications {
		batch := naiveBatchSize
		if rem := opts.MaxReplications - est.Replications; batch > rem {
			batch = rem
		}
		seeds := make([]uint64, batch)
		for i := range seeds {
			seeds[i] = master.Uint64()
		}
		outcomes := make([]trajectoryOutcome, batch)
		parallelFor(batch, opts.Parallelism, func(i int) {
			stream := rng.NewStream(seeds[i], fmt.Sprintf("naive-%d", i))
			sim, err := cm.NewSimulator(stream)
			if err != nil {
				outcomes[i] = trajectoryOutcome{err: err}
				return
			}
			var out trajectoryOutcome
			mon := &san.Monitor{
				Importance:  importance,
				Threshold:   opts.Level,
				OnCross:     func(float64, *san.Snapshot) { out.crossed = true },
				StopOnCross: true,
			}
			res, err := sim.RunMonitored(opts.Mission, mon)
			if err != nil {
				outcomes[i] = trajectoryOutcome{err: err}
				return
			}
			out.events = res.Events
			outcomes[i] = out
		})
		for _, out := range outcomes {
			if out.err != nil {
				return nil, out.err
			}
			est.Replications++
			est.TotalEvents += out.events
			if out.crossed {
				est.Hits++
			}
		}
		if est.Replications >= opts.MinReplications && est.TotalEvents >= opts.EventBudget {
			break
		}
	}

	ci, err := stats.BinomialProportionInterval(est.Hits, est.Replications, opts.Confidence)
	if err != nil {
		return nil, err
	}
	est.Probability = ci.Mean
	est.Interval = ci
	return est, nil
}
