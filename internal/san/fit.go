package san

import (
	"errors"
	"fmt"

	"repro/internal/dist"
	"repro/internal/phfit"
)

// This file is the certified approximate phase-type fitting pass: the
// static model-to-model transformation one tier below ExpandPhases. Where
// expansion rewrites only delays with an *exact* finite phase form, FitPhases
// substitutes moment-matched phase-type surrogates for the delays that have
// none — Weibull wear-out, uniform repair windows, lognormal outages,
// empirical samples, deterministic timers — and adopts a surrogate only
// together with a machine-checked bound on its CDF distance to the original
// (internal/phfit). The substitution is therefore never silent: every fit
// carries its evidence (FitEvidence) into the solver certificate's
// Approximations, and callers must label the resulting analytic answers as
// approximate.
//
// Soundness splits into two obligations:
//
//   - Accuracy: the surrogate's certified Kolmogorov (or, for point masses,
//     relative Lévy) distance to the original delay is within the caller's
//     tolerance. phfit proves this before the surrogate is ever adopted;
//     anything over tolerance is refused with a classified
//     RefusalNonFittable reason.
//   - Realization: the rewritten model's delay for the activity is
//     distributed exactly as the fitted surrogate. Chain surrogates reuse
//     the expansion pass's chain rewrite and therefore inherit its
//     stable-enabling preconditions (a half-walked chain must never
//     misrepresent a cancel-and-resample). Mixture surrogates are realized
//     as an instantaneous branch selector: a spin place feeds a two-case
//     instantaneous activity that marks a branch place with 1 or 2 tokens;
//     the activity reads the branch through an input gate, draws the
//     branch's exponential rate, and on completion returns the spin token
//     and clears the branch so the next cycle redraws. Because the branch
//     is chosen independently of everything the model observes, an enabled,
//     disabled, or reactivated activity sees exactly a fresh
//     hyperexponential sample each time — memorylessness of the branches
//     plus independence of the selector make the realization exact for the
//     surrogate even though the branch outlives individual enablings.
//
// FitReport.Verify re-checks the realization obligation (every touched
// activity ends up memoryless, marking-dependent ones with reactivation);
// statespace.Certify then independently re-proves memorylessness at every
// reachable marking, so an unsound fit cannot reach the solver even if
// Verify were wrong.

// ErrFitUnsound reports a violated fitting proof obligation: an activity the
// pass claims to have fitted does not have a memoryless delay. It indicates
// a bug in the pass itself, never a property of the input model.
var ErrFitUnsound = fmt.Errorf("san: phase-type fit proof obligation violated")

// FitEvidence is the machine-checked record of one adopted surrogate: what
// was replaced, what replaced it, and the proven distance bound with its
// metric. It is carried into Certificate.Approximations so a report can
// never present a fitted answer as exact.
type FitEvidence struct {
	// Activity names the fitted activity.
	Activity string `json:"activity"`
	// Original describes the replaced delay distribution.
	Original string `json:"original"`
	// Surrogate describes the adopted phase-type surrogate.
	Surrogate string `json:"surrogate"`
	// Family is the surrogate family (erlang, hypoexponential,
	// hyperexponential, exponential).
	Family string `json:"family"`
	// Phases is the surrogate's phase count.
	Phases int `json:"phases"`
	// Metric names the certified distance: phfit.MetricKolmogorov for
	// continuous originals, phfit.MetricLevy for point masses.
	Metric string `json:"metric"`
	// Bound is the certified upper bound on the metric distance.
	Bound float64 `json:"bound"`
	// Tolerance is the caller's tolerance the bound was proven against.
	Tolerance float64 `json:"tolerance"`
	// MomentsMatched counts the leading raw moments matched exactly.
	MomentsMatched int `json:"moments_matched"`
}

// FitReport is the fitting certificate FitPhases emits: evidence for every
// adopted surrogate and a classified refusal for every non-memoryless
// activity left in place. Activities that were already memoryless appear in
// neither list.
type FitReport struct {
	// Fits holds one evidence record per fitted activity. Callers copy it
	// into san.Certificate.Approximations.
	Fits []FitEvidence `json:"fits,omitempty"`
	// Refusals holds one RefusalNonFittable-prefixed reason per
	// non-memoryless activity the pass could not fit within tolerance.
	Refusals []string `json:"refusals,omitempty"`
	// touched names every timed activity the pass created or mutated, for
	// the Verify proof obligation.
	touched []string
}

// Touched returns the names of every timed activity the pass created or
// rewrote, in deterministic (declaration) order.
func (r *FitReport) Touched() []string {
	return append([]string(nil), r.touched...)
}

// Verify is the analyzer rule behind the fit's realization proof
// obligation: every timed activity the pass created or rewrote must exist
// in m and be memoryless — a fixed exponential delay for chain stages, or a
// marking-dependent delay that is exponential at the initial marking and
// reactivates (the branch-selector realization) for mixtures.
// statespace.Certify additionally re-proves memorylessness at every
// reachable marking, so an unsound fit cannot reach the solver even if this
// rule were wrong.
func (r *FitReport) Verify(m *Model) error {
	for _, name := range r.touched {
		a := m.Activity(name)
		if a == nil {
			return fmt.Errorf("%w: fitted activity %q missing from model", ErrFitUnsound, name)
		}
		if a.fixedDelay != nil {
			if reason := DelayLumpability(fmt.Sprintf("activity %q", name), a.fixedDelay); reason != "" {
				return fmt.Errorf("%w: %s", ErrFitUnsound, reason)
			}
			continue
		}
		if !a.reactivate {
			return fmt.Errorf("%w: activity %q has a marking-dependent fitted delay without reactivation", ErrFitUnsound, name)
		}
		if reason := delayLumpabilityAt(a, m.InitialMarking()); reason != "" {
			return fmt.Errorf("%w: activity %q: %s", ErrFitUnsound, name, reason)
		}
	}
	return nil
}

// FitPhases rewrites, in place, every timed activity of m whose delay is
// non-memoryless and has no exact finite phase-type form into a certified
// approximate phase-type surrogate within tol (a Kolmogorov/Lévy CDF
// distance in (0, 1)), and reports classified refusals for everything it
// could not fit. It must run on the model builder before Compile — and, in
// a certified pipeline, after ExpandPhases, which owns the delays that
// expand exactly (FitPhases refuses them rather than approximating what has
// an exact answer).
//
// The pass never adopts a surrogate silently: every fit is recorded as
// FitEvidence with its proven bound, and the caller is responsible for
// carrying that evidence into the certificate and labeling the resulting
// answers approximate.
func FitPhases(m *Model, tol float64) (*FitReport, error) {
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("san: fit phases: %w", err)
	}
	// Delegate tolerance validation to the fitter so the two can never
	// disagree; a Deterministic(1) probe delay is always constructible.
	probe, err := dist.NewDeterministic(1)
	if err != nil {
		return nil, fmt.Errorf("san: fit phases: %w", err)
	}
	if _, err := phfit.Fit(probe, tol); err != nil && !errors.Is(err, phfit.ErrNonFittable) {
		return nil, fmt.Errorf("san: fit phases: %w", err)
	}
	report := &FitReport{}

	// Static write/consume discovery for the chain rewrite's stable-enabling
	// proof, exactly as in ExpandPhases.
	ps := newProbeSet(len(m.places))
	bases := baseMarkings(m.InitialMarking())
	for _, a := range m.activities {
		for _, g := range a.inputGates {
			if g.Transform != nil {
				fn := g.Transform
				ps.probe(bases, func(pm *probeMarking) { fn(pm) })
			}
		}
		for _, c := range a.cases {
			for _, og := range c.OutputGates {
				if og.Transform != nil {
					fn := og.Transform
					ps.probe(bases, func(pm *probeMarking) { fn(pm) })
				}
			}
		}
	}
	consumers := make([]int, len(m.places))
	for _, a := range m.activities {
		for _, arc := range a.inputArcs {
			consumers[arc.Place.index]++
		}
	}

	refuse := func(a *Activity, format string, args ...any) {
		report.Refusals = append(report.Refusals, fmt.Sprintf(
			"%s: activity %q: %s", RefusalNonFittable, a.name, fmt.Sprintf(format, args...)))
	}

	// Snapshot the activity list: the rewrites append stage and selector
	// activities that must not themselves be revisited.
	original := append([]*Activity(nil), m.activities...)
	for _, a := range original {
		if a.kind != Timed {
			continue
		}
		d := a.fixedDelay
		if d == nil {
			if reason := delayLumpabilityAt(a, m.InitialMarking()); reason != "" {
				refuse(a, "marking-dependent delay is not statically fittable (%s)", reason)
			}
			continue
		}
		if DelayLumpability("delay", d) == "" {
			continue // already memoryless
		}
		if k, ok := PhaseExpandable(d); ok {
			refuse(a, "%s has an exact %d-phase expansion; fitting applies only to non-expandable delays (run ExpandPhases first)",
				dist.Describe(d), k)
			continue
		}
		res, err := phfit.Fit(d, tol)
		if err != nil {
			if errors.Is(err, phfit.ErrNonFittable) {
				refuse(a, "%v", err)
				continue
			}
			return nil, fmt.Errorf("san: fit phases: activity %q: %w", a.name, err)
		}
		sur := res.Surrogate
		if !sur.Mixture() && sur.Phases() > 1 {
			// The chain realization reuses the expansion rewrite and needs
			// its stable-enabling argument: a disabled half-walked chain
			// would not model the surrogate's cancel-and-resample.
			if reason := chainStabilityRefusal(a, ps, consumers, sur.Describe()); reason != "" {
				refuse(a, "%s", reason)
				continue
			}
		}
		if sur.Mixture() {
			if err := fitMixtureActivity(m, a, sur); err != nil {
				return nil, err
			}
			report.touched = append(report.touched, a.name)
		} else {
			if err := expandActivity(m, a, sur.Rates()); err != nil {
				return nil, err
			}
			report.touched = append(report.touched, a.name)
			for i := 1; i < sur.Phases(); i++ {
				report.touched = append(report.touched, phaseName(a.name, i))
			}
		}
		report.Fits = append(report.Fits, FitEvidence{
			Activity:       a.name,
			Original:       dist.Describe(d),
			Surrogate:      sur.Describe(),
			Family:         sur.Family(),
			Phases:         sur.Phases(),
			Metric:         res.Metric,
			Bound:          res.Bound,
			Tolerance:      res.Tolerance,
			MomentsMatched: res.MomentsMatched,
		})
	}
	if err := report.Verify(m); err != nil {
		return nil, err
	}
	return report, nil
}

// chainStabilityRefusal checks the expansion pass's stable-enabling
// preconditions for a chain rewrite of a, returning a refusal reason or "".
func chainStabilityRefusal(a *Activity, ps *probeSet, consumers []int, surrogate string) string {
	if a.reactivate {
		return fmt.Sprintf("reactivation resamples the whole delay on marking changes; a fitted chain (%s) cannot", surrogate)
	}
	if len(a.inputGates) > 0 {
		return "input-gate enabling cannot be proven stable across a fitted chain"
	}
	if ps.opaque && len(a.inputArcs) > 0 {
		return "a gate transform is unanalyzable, so enabling stability cannot be proven"
	}
	for _, arc := range a.inputArcs {
		if consumers[arc.Place.index] > 1 {
			return fmt.Sprintf("input place %q has other consumers, so enabling stability cannot be proven", arc.Place.name)
		}
		if !ps.opaque && ps.writes[arc.Place.index] {
			return fmt.Sprintf("input place %q is written by a gate transform, so enabling stability cannot be proven", arc.Place.name)
		}
	}
	return ""
}

// fitMixtureActivity realizes a two-branch hyperexponential surrogate on a:
// an instantaneous selector draws the branch into a fresh branch place, the
// activity's delay becomes the branch's exponential, and every completion
// returns the spin token and clears the branch for the next draw.
func fitMixtureActivity(m *Model, a *Activity, sur phfit.Surrogate) error {
	rates := sur.Rates()
	slow, err := dist.NewExponentialFromRate(rates[0])
	if err != nil {
		return fmt.Errorf("san: fit phases: activity %q: %w", a.name, err)
	}
	fast, err := dist.NewExponentialFromRate(rates[1])
	if err != nil {
		return fmt.Errorf("san: fit phases: activity %q: %w", a.name, err)
	}
	p := sur.BranchProbability()
	spin, err := m.AddPlaceErr(a.name+"/spin", 1)
	if err != nil {
		return fmt.Errorf("san: fit phases: %w", err)
	}
	branch, err := m.AddPlaceErr(a.name+"/branch", 0)
	if err != nil {
		return fmt.Errorf("san: fit phases: %w", err)
	}
	// The selector consumes the spin token (so it cannot loop) and marks
	// the branch place with 1 (slow branch, probability p) or 2 tokens. It
	// uses output arcs, not gates, so the instantaneous-cycle analysis sees
	// its writes exactly.
	m.AddInstantaneousActivity(a.name+"/select").
		AddInputArc(spin, 1).
		AddCase(Case{
			Probability: func(MarkingReader) float64 { return p },
			OutputArcs:  []Arc{{Place: branch, Mult: 1}},
		}).
		AddCase(Case{
			Probability: func(MarkingReader) float64 { return 1 - p },
			OutputArcs:  []Arc{{Place: branch, Mult: 2}},
		})
	a.AddInputGate(&InputGate{
		Name:  a.name + "/fit-ig",
		Reads: []*Place{branch},
		Enabled: func(mr MarkingReader) bool {
			return mr.Tokens(branch) > 0
		},
	})
	// The delay defaults to the slow branch so it is well-defined at
	// markings where the branch is empty (the activity is disabled there;
	// the certificate tier still evaluates the delay everywhere).
	a.delay = func(mr MarkingReader) dist.Distribution {
		if mr.Tokens(branch) == 2 {
			return fast
		}
		return slow
	}
	a.fixedDelay = nil
	// The branch rate differs across markings, so the CTMC semantics
	// require reactivation; resampling an exponential at an unchanged rate
	// is distributionally invisible in the simulator.
	a.SetReactivation(true)
	a.ensureDefaultCase()
	for i := range a.cases {
		c := &a.cases[i]
		c.OutputArcs = append(c.OutputArcs, Arc{Place: spin, Mult: 1})
		c.OutputGates = append(c.OutputGates, &OutputGate{
			Name: fmt.Sprintf("%s/fit-og%d", a.name, i),
			Transform: func(mw MarkingWriter) {
				mw.SetTokens(branch, 0)
			},
		})
	}
	return nil
}

// FitPhases rewrites every non-exponential, non-expandable transition of a
// replica class into a certified chain surrogate within tol and then runs
// the exact expansion, so fitted chains become local phase states and the
// population stays counted — a petascale point keeps costing per state
// class rather than per replica. It returns the rewritten class, one
// FitEvidence per fitted transition, and the expansion evidence strings for
// the chain rewrites (including any transitions that expanded exactly
// without fitting).
//
// Mixture surrogates are refused: a hyperexponential needs a probabilistic
// branch at enabling time, and a replica-class transition is a single
// race — there is nowhere to put the branch without breaking the lumping.
// The refusal (RefusalNonFittable inside the returned error) keeps the
// never-silently-approximate contract.
func (c ReplicaClass) FitPhases(tol float64) (ReplicaClass, []FitEvidence, []string, error) {
	fitted := ReplicaClass{
		States:      append([]string(nil), c.States...),
		Initial:     c.Initial,
		Transitions: append([]ReplicaTransition(nil), c.Transitions...),
	}
	var evidence []FitEvidence
	for i, tr := range fitted.Transitions {
		if _, ok := tr.Delay.(dist.Exponential); ok {
			continue
		}
		if _, ok := PhaseExpandable(tr.Delay); ok {
			continue // the exact expansion below owns these
		}
		res, err := phfit.Fit(tr.Delay, tol)
		if err != nil {
			return ReplicaClass{}, nil, nil, fmt.Errorf("%w: %s: transition %q: %v",
				ErrNonExponential, RefusalNonFittable, tr.Name, err)
		}
		sur := res.Surrogate
		if sur.Mixture() {
			return ReplicaClass{}, nil, nil, fmt.Errorf(
				"%w: %s: transition %q: %s fits a hyperexponential, which a replica class cannot represent (no probabilistic branch)",
				ErrNonExponential, RefusalNonFittable, tr.Name, dist.Describe(tr.Delay))
		}
		surrogate, err := chainDistribution(sur)
		if err != nil {
			return ReplicaClass{}, nil, nil, fmt.Errorf("san: fit phases: transition %q: %w", tr.Name, err)
		}
		fitted.Transitions[i].Delay = surrogate
		evidence = append(evidence, FitEvidence{
			Activity:       tr.Name,
			Original:       dist.Describe(tr.Delay),
			Surrogate:      sur.Describe(),
			Family:         sur.Family(),
			Phases:         sur.Phases(),
			Metric:         res.Metric,
			Bound:          res.Bound,
			Tolerance:      res.Tolerance,
			MomentsMatched: res.MomentsMatched,
		})
	}
	out, expansions, err := fitted.ExpandPhases()
	if err != nil {
		return ReplicaClass{}, nil, nil, err
	}
	return out, evidence, expansions, nil
}

// chainDistribution renders a chain surrogate as a dist value (a single
// exponential or a Sum of stage exponentials), which PhaseExpandable
// recognizes exactly.
func chainDistribution(sur phfit.Surrogate) (dist.Distribution, error) {
	rates := sur.Rates()
	parts := make([]dist.Distribution, len(rates))
	for i, r := range rates {
		e, err := dist.NewExponentialFromRate(r)
		if err != nil {
			return nil, err
		}
		parts[i] = e
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return dist.NewSum(parts...)
}
