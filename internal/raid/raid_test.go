package raid

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/rng"
	"repro/internal/san"
)

func TestTierGeometry(t *testing.T) {
	g := TierGeometry{Data: 8, Parity: 2}
	if g.Disks() != 10 {
		t.Errorf("Disks = %d, want 10", g.Disks())
	}
	if g.String() != "8+2" {
		t.Errorf("String = %q", g.String())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("valid geometry rejected: %v", err)
	}
	if err := (TierGeometry{Data: 0, Parity: 2}).Validate(); err == nil {
		t.Error("zero data disks accepted")
	}
	if err := (TierGeometry{Data: 8, Parity: -1}).Validate(); err == nil {
		t.Error("negative parity accepted")
	}
}

func TestDiskConfig(t *testing.T) {
	d := DefaultDisk()
	if err := d.Validate(); err != nil {
		t.Fatalf("default disk invalid: %v", err)
	}
	if math.Abs(d.AFR()-0.0292) > 0.001 {
		t.Errorf("default AFR = %v, want ~0.0292", d.AFR())
	}
	d.MTBFHours = 0
	if err := d.Validate(); err == nil {
		t.Error("zero MTBF accepted")
	}
}

func TestControllerConfig(t *testing.T) {
	c := DefaultController()
	if err := c.Validate(); err != nil {
		t.Fatalf("default controller invalid: %v", err)
	}
	c.RepairHiHours = c.RepairLoHours - 1
	if err := c.Validate(); err == nil {
		t.Error("inverted repair range accepted")
	}
}

func TestABEStorageConfig(t *testing.T) {
	cfg := ABEStorage()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("ABE config invalid: %v", err)
	}
	if cfg.TotalDisks() != 480 {
		t.Errorf("TotalDisks = %d, want 480 (paper Section 3.2)", cfg.TotalDisks())
	}
	if cfg.TotalTiers() != 48 {
		t.Errorf("TotalTiers = %d, want 48", cfg.TotalTiers())
	}
	if math.Abs(cfg.UsableTB()-96) > 0.01 {
		t.Errorf("UsableTB = %v, want 96", cfg.UsableTB())
	}
}

func TestStorageConfigValidate(t *testing.T) {
	cfg := ABEStorage()
	cfg.DDNUnits = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero DDN units accepted")
	}
	cfg = ABEStorage()
	cfg.Geometry.Data = 0
	if err := cfg.Validate(); err == nil {
		t.Error("bad geometry accepted")
	}
	cfg = ABEStorage()
	cfg.Disk.ReplaceHours = 0
	if err := cfg.Validate(); err == nil {
		t.Error("bad disk accepted")
	}
	cfg = ABEStorage()
	cfg.Controller.MTBFHours = 0
	if err := cfg.Validate(); err == nil {
		t.Error("bad controller accepted")
	}
}

func TestScaledToDisks(t *testing.T) {
	cfg := ABEStorage()
	scaled, err := cfg.ScaledToDisks(4800)
	if err != nil {
		t.Fatal(err)
	}
	if scaled.DDNUnits != 20 {
		t.Errorf("DDNUnits = %d, want 20", scaled.DDNUnits)
	}
	if scaled.TotalDisks() != 4800 {
		t.Errorf("TotalDisks = %d, want 4800", scaled.TotalDisks())
	}
	// Rounds up when the target is not a multiple of a DDN unit.
	scaled, err = cfg.ScaledToDisks(500)
	if err != nil {
		t.Fatal(err)
	}
	if scaled.DDNUnits != 3 {
		t.Errorf("DDNUnits = %d, want 3", scaled.DDNUnits)
	}
	if _, err := cfg.ScaledToDisks(0); err == nil {
		t.Error("zero disks accepted")
	}
}

func TestScaledToUsableTB(t *testing.T) {
	cfg := ABEStorage()
	// Same capacity per disk (0 years of growth): 12x the capacity needs 12x
	// the DDN units.
	scaled, err := cfg.ScaledToUsableTB(96*12, 0.33, 0)
	if err != nil {
		t.Fatal(err)
	}
	if scaled.DDNUnits != 24 {
		t.Errorf("DDNUnits = %d, want 24", scaled.DDNUnits)
	}
	// With 4 years of 33% capacity growth, 12 PB needs far fewer units than
	// it would at 250 GB/disk.
	petascale, err := cfg.ScaledToUsableTB(12000, 0.33, 4)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := cfg.ScaledToUsableTB(12000, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if petascale.DDNUnits >= naive.DDNUnits {
		t.Errorf("capacity growth should reduce the units needed: %d vs %d", petascale.DDNUnits, naive.DDNUnits)
	}
	if petascale.UsableTB() < 12000 {
		t.Errorf("scaled capacity %v TB < target", petascale.UsableTB())
	}
	if _, err := cfg.ScaledToUsableTB(-1, 0.33, 4); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestBuildStorageStructure(t *testing.T) {
	m := san.NewModel("storage-test")
	cfg := StorageConfig{
		DDNUnits:    2,
		TiersPerDDN: 3,
		Geometry:    TierGeometry{Data: 8, Parity: 2},
		Disk:        DefaultDisk(),
		Controller:  DefaultController(),
	}
	sp, err := BuildStorage(m, "storage", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("built model invalid: %v", err)
	}
	// 2 DDN x 3 tiers x 10 disks = 60 disks, one replace activity each.
	if len(sp.ReplaceActivities) != 60 {
		t.Errorf("replace activities = %d, want 60", len(sp.ReplaceActivities))
	}
	// Places: 3 global counters + per DDN (1 pairDown + 2x2 controller) +
	// per tier (1 + 10x2 disks).
	wantPlaces := 3 + 2*(1+4) + 6*(1+20)
	if m.NumPlaces() != wantPlaces {
		t.Errorf("NumPlaces = %d, want %d", m.NumPlaces(), wantPlaces)
	}
	// Activities: per controller 2 (fail/repair) x 2 x 2 DDN = 8, per disk 2 x 60 = 120.
	if m.NumActivities() != 128 {
		t.Errorf("NumActivities = %d, want 128", m.NumActivities())
	}
	if m.Place("storage/ddn[1]/tier[2]/disk[9]/up") == nil {
		t.Error("expected hierarchical place names")
	}
	for _, name := range sp.ReplaceActivities {
		if !strings.Contains(name, "replace") {
			t.Errorf("unexpected replace activity name %q", name)
		}
	}
	// Rebuilding under the same prefix must fail (duplicate names).
	if _, err := BuildStorage(m, "storage", cfg); err == nil {
		t.Error("duplicate prefix accepted")
	}
	// Invalid config rejected.
	bad := cfg
	bad.DDNUnits = 0
	if _, err := BuildStorage(san.NewModel("x"), "s", bad); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestStorageSimulationHighReliability(t *testing.T) {
	// With ABE-like parameters at small scale the storage availability must
	// be essentially 1 and the replacement count must match the analytic
	// renewal rate.
	m := san.NewModel("abe-small")
	cfg := StorageConfig{
		DDNUnits:    1,
		TiersPerDDN: 4,
		Geometry:    TierGeometry{Data: 8, Parity: 2},
		Disk:        DiskConfig{ShapeBeta: 1.0, MTBFHours: 50000, ReplaceHours: 4, CapacityGB: 250},
		Controller:  DefaultController(),
	}
	sp, err := BuildStorage(m, "storage", cfg)
	if err != nil {
		t.Fatal(err)
	}
	rewards := []san.RewardVariable{
		sp.AvailabilityReward("storage_availability"),
		sp.ReplacementCountReward("replacements"),
	}
	res, err := san.RunReplications(m, rewards, san.Options{Mission: 8760, Replications: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	avail := res.Mean("storage_availability")
	if avail < 0.999 {
		t.Errorf("storage availability = %v, want ~1 at this scale", avail)
	}
	// Expected replacements per year: 40 disks * 8760/50004 ≈ 7.0.
	wantPerYear := float64(cfg.TotalDisks()) * 8760 / (cfg.Disk.MTBFHours + cfg.Disk.ReplaceHours)
	got := res.Mean("replacements")
	if math.Abs(got-wantPerYear)/wantPerYear > 0.25 {
		t.Errorf("replacements per year = %v, want ~%v", got, wantPerYear)
	}
}

func TestStorageSimulationTierFailureInjection(t *testing.T) {
	// Failure injection: disks that live a deterministic 10 hours and take
	// 100 hours to replace guarantee that a (1+1) tier loses redundancy, so
	// the tier must be observed failed and availability must drop well below
	// 1.
	m := san.NewModel("inject")
	sp := &StoragePlaces{}
	var err error
	sp.TiersFailed, err = m.AddPlaceErr("tiers_failed", 0)
	if err != nil {
		t.Fatal(err)
	}
	sp.DDNFailed, _ = m.AddPlaceErr("ddn_failed", 0)
	sp.DisksDown, _ = m.AddPlaceErr("disks_down", 0)
	life, _ := dist.NewDeterministic(10)
	replace, _ := dist.NewDeterministic(100)
	if err := buildTier(m, "tier", TierGeometry{Data: 1, Parity: 1}, life, replace, sp); err != nil {
		t.Fatal(err)
	}
	rewards := []san.RewardVariable{
		sp.AvailabilityReward("avail"),
		san.CompletionCount("tier_failures", findActivities(m, "fail")...),
	}
	sim, err := san.NewSimulator(m, rewards, newTestStream())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(200)
	if err != nil {
		t.Fatal(err)
	}
	// Both disks fail at t=10 and stay down until t=110: at least 100 of the
	// 200 hours are unavailable.
	if got := res.Rewards["avail"]; got > 0.55 {
		t.Errorf("availability = %v, want <= 0.55 under forced double failure", got)
	}
	if got := res.Rewards["tier_failures"]; got < 2 {
		t.Errorf("disk failures = %v, want >= 2", got)
	}
}

func TestControllerDoubleFaultCausesDDNFailure(t *testing.T) {
	// Failure injection for the controller pair: both controllers fail
	// deterministically and take long to repair, so the DDN must be counted
	// as failed for part of the mission.
	m := san.NewModel("ctrl-inject")
	sp := &StoragePlaces{}
	sp.TiersFailed, _ = m.AddPlaceErr("tiers_failed", 0)
	sp.DDNFailed, _ = m.AddPlaceErr("ddn_failed", 0)
	sp.DisksDown, _ = m.AddPlaceErr("disks_down", 0)
	life, _ := dist.NewDeterministic(10)
	repair, _ := dist.NewDeterministic(50)
	if err := buildControllerPair(m, "ddn", life, repair, sp); err != nil {
		t.Fatal(err)
	}
	sim, err := san.NewSimulator(m, []san.RewardVariable{sp.AvailabilityReward("avail")}, newTestStream())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(60)
	if err != nil {
		t.Fatal(err)
	}
	// Both fail at t=10, repaired at t=60: 50 of 60 hours unavailable.
	if got := res.Rewards["avail"]; math.Abs(got-10.0/60.0) > 1e-9 {
		t.Errorf("availability = %v, want %v", got, 10.0/60.0)
	}
}

func TestTierUnavailabilityExponential(t *testing.T) {
	// RAID0 (no parity) single-disk tier: unavailability = MTTR/(MTBF+MTTR).
	u, err := TierUnavailabilityExponential(TierGeometry{Data: 1, Parity: 0}, 1000, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := 10.0 / 1010.0
	if math.Abs(u-want) > 1e-12 {
		t.Errorf("single-disk unavailability = %v, want %v", u, want)
	}
	// More parity is strictly better.
	u2, _ := TierUnavailabilityExponential(TierGeometry{Data: 8, Parity: 2}, 100000, 4)
	u3, _ := TierUnavailabilityExponential(TierGeometry{Data: 8, Parity: 3}, 100000, 4)
	if !(u3 < u2) {
		t.Errorf("8+3 unavailability %v should be < 8+2 %v", u3, u2)
	}
	if u2 <= 0 || u2 >= 1 {
		t.Errorf("unavailability out of range: %v", u2)
	}
	if _, err := TierUnavailabilityExponential(TierGeometry{Data: 0}, 100, 1); err == nil {
		t.Error("bad geometry accepted")
	}
	if _, err := TierUnavailabilityExponential(TierGeometry{Data: 1}, 0, 1); err == nil {
		t.Error("zero MTBF accepted")
	}
}

func TestStorageUnavailabilityExponentialMonotoneInScale(t *testing.T) {
	small := ABEStorage()
	small.Disk.ShapeBeta = 1.0
	big, err := small.ScaledToDisks(4800)
	if err != nil {
		t.Fatal(err)
	}
	uSmall, err := StorageUnavailabilityExponential(small, small.Disk.ReplaceHours)
	if err != nil {
		t.Fatal(err)
	}
	uBig, err := StorageUnavailabilityExponential(big, big.Disk.ReplaceHours)
	if err != nil {
		t.Fatal(err)
	}
	if !(uBig > uSmall) {
		t.Errorf("unavailability should grow with scale: %v vs %v", uSmall, uBig)
	}
	bad := small
	bad.DDNUnits = 0
	if _, err := StorageUnavailabilityExponential(bad, 4); err == nil {
		t.Error("bad config accepted")
	}
}

func TestExpectedReplacementsPerWeek(t *testing.T) {
	cfg := ABEStorage()
	perWeek, err := ExpectedReplacementsPerWeek(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The paper observes 0-2 replacements per week on ABE; the analytic value
	// for 480 disks at 300,000 h MTBF is ~0.27/week.
	if perWeek < 0.1 || perWeek > 2 {
		t.Errorf("ABE replacements per week = %v, want within the paper's 0-2 band", perWeek)
	}
	scaled, _ := cfg.ScaledToDisks(4800)
	scaledPerWeek, _ := ExpectedReplacementsPerWeek(scaled)
	if math.Abs(scaledPerWeek-10*perWeek)/scaledPerWeek > 0.01 {
		t.Errorf("10x disks should give 10x replacements: %v vs %v", scaledPerWeek, perWeek)
	}
	bad := cfg
	bad.Disk.MTBFHours = -1
	if _, err := ExpectedReplacementsPerWeek(bad); err == nil {
		t.Error("bad config accepted")
	}
}

// Property: analytic tier unavailability is within (0,1), decreases with
// added parity, and increases with MTTR.
func TestQuickTierUnavailabilityProperties(t *testing.T) {
	f := func(dataSeed, paritySeed uint8, mtbfSeed, mttrSeed uint16) bool {
		g := TierGeometry{Data: int(dataSeed%12) + 1, Parity: int(paritySeed % 4)}
		mtbf := 1000 + float64(mtbfSeed)
		mttr := 1 + float64(mttrSeed%200)
		u, err := TierUnavailabilityExponential(g, mtbf, mttr)
		if err != nil {
			return false
		}
		if u <= 0 || u >= 1 {
			return false
		}
		better, err := TierUnavailabilityExponential(TierGeometry{Data: g.Data, Parity: g.Parity + 1}, mtbf, mttr)
		if err != nil || better >= u {
			return false
		}
		slower, err := TierUnavailabilityExponential(g, mtbf, mttr*2)
		if err != nil || slower <= u {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// findActivities returns the names of activities containing substr.
func findActivities(m *san.Model, substr string) []string {
	var out []string
	for _, a := range m.Activities() {
		if strings.Contains(a.Name(), substr) {
			out = append(out, a.Name())
		}
	}
	return out
}

// newTestStream returns a deterministic stream for single-run simulations in
// this package's tests.
func newTestStream() *rng.Stream {
	return rng.NewStream(123, "raid-test")
}
