package report

import (
	"encoding/json"
	"fmt"
)

// Artifact is any renderable experiment output: human-readable text via
// Render and a machine-readable encoding via JSON. Tables, figures, and plain
// text blocks all satisfy it, so experiment dispatchers can hand back one
// type regardless of how a result is presented.
type Artifact interface {
	// Render returns the artifact as human-readable text.
	Render() string
	// JSON returns the artifact as indented JSON.
	JSON() (string, error)
}

// ToJSON encodes v as deterministic, indented JSON (map keys are sorted by
// encoding/json). It is the single encoder every artifact's JSON method goes
// through, so reports stay diffable across runs.
func ToJSON(v interface{}) (string, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return "", fmt.Errorf("report: encoding JSON: %w", err)
	}
	return string(b) + "\n", nil
}

// JSON encodes the table with its title, headers, and rows.
func (t Table) JSON() (string, error) { return ToJSON(t) }

// JSON encodes the figure with its axes and labeled series.
func (f Figure) JSON() (string, error) { return ToJSON(f) }

// Text is a plain text artifact (e.g. a rendered composition tree) wrapped so
// it can travel through Artifact-typed interfaces alongside tables and
// figures.
type Text string

// Render returns the text unchanged.
func (t Text) Render() string { return string(t) }

// JSON encodes the text as {"text": ...}.
func (t Text) JSON() (string, error) {
	return ToJSON(struct {
		Text string `json:"text"`
	}{Text: string(t)})
}
