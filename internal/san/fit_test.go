package san

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/phfit"
	"repro/internal/rng"
)

func mustWeibull(t *testing.T, shape, scale float64) dist.Distribution {
	t.Helper()
	d, err := dist.NewWeibull(shape, scale)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func mustLognormal(t *testing.T, mu, sigma float64) dist.Distribution {
	t.Helper()
	d, err := dist.NewLognormal(mu, sigma)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestFitPhasesChainStructure pins the chain rewrite for a Weibull wear-out
// delay: the surrogate is a 3-stage hypoexponential (cv^2 ~ 0.46), realized
// through the same chain rewrite as exact expansion, with full evidence.
func TestFitPhasesChainStructure(t *testing.T) {
	m := NewModel("fit-chain")
	pending := m.AddPlace("pending", 1)
	done := m.AddPlace("done", 0)
	m.AddTimedActivity("wear", mustWeibull(t, 1.5, 1000)).
		AddInputArc(pending, 1).
		AddOutputArc(done, 1)

	rep, err := FitPhases(m, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Refusals) != 0 {
		t.Fatalf("unexpected refusals: %v", rep.Refusals)
	}
	if len(rep.Fits) != 1 {
		t.Fatalf("expected one fit, got %v", rep.Fits)
	}
	ev := rep.Fits[0]
	if ev.Activity != "wear" || ev.Family != "hypoexponential" || ev.Phases != 3 {
		t.Fatalf("evidence = %+v, want wear/hypoexponential/3", ev)
	}
	if ev.Metric != phfit.MetricKolmogorov {
		t.Fatalf("metric = %q, want %q", ev.Metric, phfit.MetricKolmogorov)
	}
	if !(ev.Bound > 0 && ev.Bound <= ev.Tolerance) || ev.Tolerance != 0.2 {
		t.Fatalf("bound/tolerance = %v/%v, want bound in (0, 0.2]", ev.Bound, ev.Tolerance)
	}
	if ev.MomentsMatched != 2 {
		t.Fatalf("moments matched = %d, want 2", ev.MomentsMatched)
	}
	if !strings.Contains(ev.Original, "weibull") {
		t.Fatalf("evidence must describe the original: %q", ev.Original)
	}
	wantTouched := []string{"wear", "wear/phase1", "wear/phase2"}
	got := rep.Touched()
	if len(got) != len(wantTouched) {
		t.Fatalf("touched = %v, want %v", got, wantTouched)
	}
	for i := range got {
		if got[i] != wantTouched[i] {
			t.Fatalf("touched = %v, want %v", got, wantTouched)
		}
	}
	// Two fresh phase places, two new stage activities, exponential delays.
	if m.NumPlaces() != 4 || m.NumActivities() != 3 {
		t.Fatalf("fitted model has %d places, %d activities; want 4, 3",
			m.NumPlaces(), m.NumActivities())
	}
	for _, name := range wantTouched {
		a := m.Activity(name)
		if a == nil {
			t.Fatalf("touched activity %q missing", name)
		}
		if _, ok := a.fixedDelay.(dist.Exponential); !ok {
			t.Fatalf("stage %q delay not exponential: %T", name, a.fixedDelay)
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("fitted model invalid: %v", err)
	}
	if err := rep.Verify(m); err != nil {
		t.Fatalf("fresh fit must verify: %v", err)
	}
	// Idempotence: everything is memoryless now; a second pass is a no-op.
	rep2, err := FitPhases(m, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Fits) != 0 || len(rep2.Refusals) != 0 {
		t.Fatalf("second pass must be a no-op, got %v / %v", rep2.Fits, rep2.Refusals)
	}
}

// TestFitPhasesMixtureStructure pins the branch-selector realization for a
// heavy-tailed lognormal (cv^2 > 1): a spin place feeds an instantaneous
// selector marking a branch place, and the activity reads the branch with a
// reactivating marking-dependent exponential.
func TestFitPhasesMixtureStructure(t *testing.T) {
	m := NewModel("fit-mixture")
	pending := m.AddPlace("pending", 1)
	done := m.AddPlace("done", 0)
	m.AddTimedActivity("outage", mustLognormal(t, 1.2, 1.0)).
		AddInputArc(pending, 1).
		AddOutputArc(done, 1)

	rep, err := FitPhases(m, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Refusals) != 0 {
		t.Fatalf("unexpected refusals: %v", rep.Refusals)
	}
	if len(rep.Fits) != 1 {
		t.Fatalf("expected one fit, got %v", rep.Fits)
	}
	ev := rep.Fits[0]
	if ev.Family != "hyperexponential" || ev.Phases != 2 || ev.MomentsMatched != 3 {
		t.Fatalf("evidence = %+v, want hyperexponential/2/3 moments", ev)
	}
	if got := rep.Touched(); len(got) != 1 || got[0] != "outage" {
		t.Fatalf("touched = %v, want [outage]", got)
	}
	// Fresh spin and branch places, one selector activity.
	if m.Place("outage/spin") == nil || m.Place("outage/branch") == nil {
		t.Fatal("spin/branch places missing")
	}
	sel := m.Activity("outage/select")
	if sel == nil {
		t.Fatal("selector activity missing")
	}
	if sel.kind != Instantaneous {
		t.Fatalf("selector must be instantaneous")
	}
	if len(sel.cases) != 2 {
		t.Fatalf("selector must have two cases, got %d", len(sel.cases))
	}
	a := m.Activity("outage")
	if a.fixedDelay != nil {
		t.Fatalf("fitted mixture delay must be marking-dependent, got fixed %T", a.fixedDelay)
	}
	if !a.reactivate {
		t.Fatal("fitted mixture activity must reactivate")
	}
	if len(a.inputGates) != 1 {
		t.Fatalf("fitted mixture activity must gain one input gate, got %d", len(a.inputGates))
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("fitted model invalid: %v", err)
	}
	if err := rep.Verify(m); err != nil {
		t.Fatalf("fresh fit must verify: %v", err)
	}
}

// TestFitPhasesMatchesSurrogateCDF closes the realization loop by
// simulation: the fitted model's completion-time CDF must match the
// certified surrogate's closed-form CDF — for both the chain and the
// branch-selector realization.
func TestFitPhasesMatchesSurrogateCDF(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation cross-check")
	}
	cases := []struct {
		name string
		d    dist.Distribution
		tol  float64
	}{
		{"chain", mustWeibull(t, 1.5, 1000), 0.2},
		{"mixture", mustLognormal(t, 1.2, 1.0), 0.25},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := phfit.Fit(tc.d, tc.tol)
			if err != nil {
				t.Fatal(err)
			}
			m := NewModel("fit-sim-" + tc.name)
			pending := m.AddPlace("pending", 1)
			done := m.AddPlace("done", 0)
			m.AddTimedActivity("a", tc.d).AddInputArc(pending, 1).AddOutputArc(done, 1)
			if _, err := FitPhases(m, tc.tol); err != nil {
				t.Fatal(err)
			}
			sim, err := NewSimulator(m, []RewardVariable{
				{Name: "done", Mode: InstantAtEnd, Rate: func(mr MarkingReader) float64 {
					return float64(mr.Tokens(done))
				}},
			}, rng.NewStream(11, "fit-sim-"+tc.name))
			if err != nil {
				t.Fatal(err)
			}
			const n = 20000
			for _, p := range []float64{0.25, 0.5, 0.75} {
				mission := res.Surrogate.Quantile(p)
				hits := 0
				for i := 0; i < n; i++ {
					r, err := sim.Run(mission)
					if err != nil {
						t.Fatal(err)
					}
					if r.Rewards["done"] >= 1 {
						hits++
					}
				}
				emp := float64(hits) / n
				want := res.Surrogate.CDF(mission)
				// ~3 sigma of a Bernoulli(p) mean over n runs, plus slack.
				if math.Abs(emp-want) > 0.015 {
					t.Errorf("P(done by q%.2f) = %v, surrogate CDF = %v", p, emp, want)
				}
			}
		})
	}
}

// TestFitPhasesRefusals pins the classification of everything the pass must
// leave alone, including delays that belong to exact expansion.
func TestFitPhasesRefusals(t *testing.T) {
	cases := []struct {
		name  string
		build func(t *testing.T, m *Model)
		want  string
	}{
		{
			name: "exactly expandable",
			build: func(t *testing.T, m *Model) {
				p := m.AddPlace("p", 1)
				m.AddTimedActivity("a", mustErlang(t, 3, 0.5)).AddInputArc(p, 1)
			},
			want: "run ExpandPhases first",
		},
		{
			name: "marking-dependent delay",
			build: func(t *testing.T, m *Model) {
				p := m.AddPlace("p", 1)
				u := mustUniform(t, 1, 2)
				m.AddTimedActivityFunc("a", func(MarkingReader) dist.Distribution { return u }).
					AddInputArc(p, 1)
			},
			want: "marking-dependent delay is not statically fittable",
		},
		{
			name: "no certified surrogate within tolerance",
			build: func(t *testing.T, m *Model) {
				p := m.AddPlace("p", 1)
				m.AddTimedActivity("a", mustUniform(t, 99, 101)).AddInputArc(p, 1)
			},
			want: "non-fittable",
		},
		{
			name: "reactivated chain candidate",
			build: func(t *testing.T, m *Model) {
				p := m.AddPlace("p", 1)
				m.AddTimedActivity("a", mustWeibull(t, 1.5, 1000)).AddInputArc(p, 1).
					SetReactivation(true)
			},
			want: "reactivation resamples",
		},
		{
			name: "shared consumer of a chain candidate",
			build: func(t *testing.T, m *Model) {
				p := m.AddPlace("p", 1)
				q := m.AddPlace("q", 0)
				m.AddTimedActivity("a", mustWeibull(t, 1.5, 1000)).AddInputArc(p, 1).AddOutputArc(q, 1)
				m.AddTimedActivity("rival", mustExpRate(t, 1)).AddInputArc(p, 1).AddOutputArc(q, 1)
			},
			want: `input place "p" has other consumers`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := NewModel("fit-refusal-" + tc.name)
			tc.build(t, m)
			before := m.NumActivities()
			rep, err := FitPhases(m, 0.2)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Fits) != 0 {
				t.Fatalf("nothing may be fitted, got %v", rep.Fits)
			}
			if len(rep.Refusals) != 1 {
				t.Fatalf("expected one refusal, got %v", rep.Refusals)
			}
			r := rep.Refusals[0]
			if !strings.HasPrefix(r, RefusalNonFittable) {
				t.Fatalf("refusal %q must carry the %q prefix", r, RefusalNonFittable)
			}
			if !strings.Contains(r, tc.want) {
				t.Fatalf("refusal %q must mention %q", r, tc.want)
			}
			if m.NumActivities() != before {
				t.Fatalf("refused model must keep its shape: %d -> %d activities",
					before, m.NumActivities())
			}
		})
	}

	// Unusable tolerances are errors, not refusals.
	m := NewModel("fit-tol")
	p := m.AddPlace("p", 1)
	m.AddTimedActivity("a", mustWeibull(t, 1.5, 1000)).AddInputArc(p, 1)
	for _, tol := range []float64{0, 1, -0.5, math.NaN()} {
		if _, err := FitPhases(m, tol); err == nil {
			t.Errorf("FitPhases(tol=%v) must error", tol)
		}
	}
	// Memoryless activities appear in neither list.
	m2 := NewModel("fit-memoryless")
	p2 := m2.AddPlace("p", 1)
	m2.AddTimedActivity("a", mustExpRate(t, 2)).AddInputArc(p2, 1)
	rep, err := FitPhases(m2, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Fits) != 0 || len(rep.Refusals) != 0 {
		t.Fatalf("exponential activity must be untouched, got %v / %v", rep.Fits, rep.Refusals)
	}
}

// TestFitReportVerifyTamper pins the ErrFitUnsound proof obligation for both
// realizations.
func TestFitReportVerifyTamper(t *testing.T) {
	m := NewModel("fit-verify-chain")
	p := m.AddPlace("p", 1)
	m.AddTimedActivity("a", mustWeibull(t, 1.5, 1000)).AddInputArc(p, 1)
	rep, err := FitPhases(m, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	m.Activity("a").fixedDelay = mustUniform(t, 1, 2)
	if err := rep.Verify(m); !errors.Is(err, ErrFitUnsound) {
		t.Fatalf("tampered chain delay must fail verification, got %v", err)
	}

	m2 := NewModel("fit-verify-mixture")
	p2 := m2.AddPlace("p", 1)
	m2.AddTimedActivity("a", mustLognormal(t, 1.2, 1.0)).AddInputArc(p2, 1)
	rep2, err := FitPhases(m2, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	m2.Activity("a").reactivate = false
	if err := rep2.Verify(m2); !errors.Is(err, ErrFitUnsound) {
		t.Fatalf("de-reactivated mixture must fail verification, got %v", err)
	}

	ghost := &FitReport{touched: []string{"ghost"}}
	if err := ghost.Verify(m); !errors.Is(err, ErrFitUnsound) {
		t.Fatalf("missing touched activity must fail verification, got %v", err)
	}
}

// TestReplicaClassFitPhases pins the petascale path: a non-expandable delay
// becomes a certified chain of stage exponentials, then the exact expansion
// turns the chain into counted local phase states.
func TestReplicaClassFitPhases(t *testing.T) {
	c := ReplicaClass{
		States:  []string{"up", "down"},
		Initial: "up",
		Transitions: []ReplicaTransition{
			{Name: "fail", From: "up", To: "down", Delay: mustExpRate(t, 0.01)},
			{Name: "repair", From: "down", To: "up", Delay: mustWeibull(t, 1.5, 1000)},
		},
	}
	out, fits, expansions, err := c.FitPhases(0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(fits) != 1 {
		t.Fatalf("expected one fit, got %v", fits)
	}
	ev := fits[0]
	if ev.Activity != "repair" || ev.Family != "hypoexponential" || ev.Phases != 3 {
		t.Fatalf("evidence = %+v, want repair/hypoexponential/3", ev)
	}
	if !(ev.Bound > 0 && ev.Bound <= 0.2) {
		t.Fatalf("bound = %v, want in (0, 0.2]", ev.Bound)
	}
	found := false
	for _, e := range expansions {
		if strings.Contains(e, `transition "repair"`) {
			found = true
		}
	}
	if !found {
		t.Fatalf("expansion evidence for the fitted chain missing: %v", expansions)
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("fitted class invalid: %v", err)
	}
	// 2 original states + 2 phase states of the 3-stage chain.
	if len(out.States) != 4 {
		t.Fatalf("States = %v, want 4 entries", out.States)
	}
	for _, tr := range out.Transitions {
		if _, ok := tr.Delay.(dist.Exponential); !ok {
			t.Fatalf("transition %q delay not exponential after fit+expand: %T", tr.Name, tr.Delay)
		}
	}
	// The original class is untouched.
	if _, ok := c.Transitions[1].Delay.(dist.Weibull); !ok {
		t.Fatalf("input class mutated: %T", c.Transitions[1].Delay)
	}

	// Mixture surrogates are refused: no probabilistic branch in a replica
	// class.
	cMix := ReplicaClass{
		States:  []string{"up", "down"},
		Initial: "up",
		Transitions: []ReplicaTransition{
			{Name: "fail", From: "up", To: "down", Delay: mustExpRate(t, 0.01)},
			{Name: "outage", From: "down", To: "up", Delay: mustLognormal(t, 1.2, 1.0)},
		},
	}
	if _, _, _, err := cMix.FitPhases(0.25); err == nil ||
		!errors.Is(err, ErrNonExponential) ||
		!strings.Contains(err.Error(), RefusalNonFittable) ||
		!strings.Contains(err.Error(), "hyperexponential") {
		t.Fatalf("mixture fit must refuse with classified reason, got %v", err)
	}

	// Delays the fitter cannot certify refuse with the fitter's reason.
	cBad := ReplicaClass{
		States:  []string{"up", "down"},
		Initial: "up",
		Transitions: []ReplicaTransition{
			{Name: "t", From: "up", To: "down", Delay: mustUniform(t, 99, 101)},
		},
	}
	if _, _, _, err := cBad.FitPhases(0.2); err == nil ||
		!errors.Is(err, ErrNonExponential) ||
		!strings.Contains(err.Error(), RefusalNonFittable) {
		t.Fatalf("non-fittable delay must refuse with classified reason, got %v", err)
	}

	// Exactly expandable delays skip fitting and expand exactly.
	cErl := ReplicaClass{
		States:  []string{"up", "down"},
		Initial: "up",
		Transitions: []ReplicaTransition{
			{Name: "fail", From: "up", To: "down", Delay: mustExpRate(t, 0.01)},
			{Name: "repair", From: "down", To: "up", Delay: mustErlang(t, 3, 0.5)},
		},
	}
	outErl, fitsErl, expErl, err := cErl.FitPhases(0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(fitsErl) != 0 {
		t.Fatalf("exact expansion must not report fits, got %v", fitsErl)
	}
	if len(expErl) != 1 {
		t.Fatalf("expected one expansion evidence entry, got %v", expErl)
	}
	if err := outErl.Validate(); err != nil {
		t.Fatal(err)
	}
}
