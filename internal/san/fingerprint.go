package san

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"

	"repro/internal/dist"
)

// This file computes the content fingerprint of a compiled model: a canonical
// hash over everything that determines the model's stochastic behavior —
// places, activities, arcs, gates, delay distribution specs, case
// probabilities, impulse and rate rewards, and the initial marking. Two
// compiled models with equal fingerprints describe the same chain, so solver
// results keyed by the fingerprint (plus mission time and solver options) can
// be shared between sweep points without re-certifying or re-solving.
//
// Closures (gate predicates and transforms, marking-dependent delays, case
// probabilities, reward functions) have no inspectable structure, so they are
// fingerprinted behaviorally: each closure is executed against an
// instrumented marking to discover the places it reads, then evaluated on a
// deterministic family of probe markings — the analyzer's base markings plus
// single-place perturbations of every place the closure reads — and the
// observed outputs are hashed. The probe family is fixed, so the fingerprint
// never depends on execution details (scheduling, parallelism, prior calls),
// only on model content. Closures that differ only on markings outside the
// probe family can alias; the family covers the token counts (0, initial, 1,
// 2, and per-read-place bumps) that the repository's gate and reward logic
// branches on.

// Fingerprint returns the canonical content hash of the compiled model as a
// hex string. It is deterministic across processes (no map iteration order,
// no pointers, no wall clock reaches the hash) and changes when any place,
// activity, arc, gate, delay spec, case probability, impulse, reward, or the
// initial marking changes.
func (cm *CompiledModel) Fingerprint() string {
	w := &fpWriter{h: sha256.New()}
	model := cm.model
	probes := fingerprintProbes(cm.initial)

	w.str("places")
	w.num(model.NumPlaces())
	for _, p := range model.places {
		w.str(p.name)
		w.num(p.initial)
	}

	w.str("initial")
	for _, n := range cm.initial {
		w.num(n)
	}

	w.str("activities")
	w.num(model.NumActivities())
	for _, a := range model.activities {
		w.str(a.name)
		w.num(int(a.kind))
		w.bool(a.reactivate)
		w.str("input-arcs")
		for _, arc := range a.inputArcs {
			w.num(arc.Place.index)
			w.num(arc.Mult)
		}
		w.str("input-gates")
		for _, g := range a.inputGates {
			w.str(g.Name)
			for _, p := range g.Reads {
				w.num(p.index)
			}
			w.str("enabled")
			if g.Enabled != nil {
				pred := g.Enabled
				w.probeFloat(probes, func(pm *probeMarking) float64 {
					if pred(pm) {
						return 1
					}
					return 0
				})
			}
			w.str("transform")
			if g.Transform != nil {
				w.probeTransform(probes, g.Transform)
			}
		}
		w.str("delay")
		w.delaySpec(a, probes)
		w.str("cases")
		w.num(len(a.cases))
		for _, c := range a.cases {
			w.str("prob")
			if c.Probability != nil {
				prob := c.Probability
				w.probeFloat(probes, func(pm *probeMarking) float64 { return prob(pm) })
			}
			w.str("output-arcs")
			for _, arc := range c.OutputArcs {
				w.num(arc.Place.index)
				w.num(arc.Mult)
			}
			w.str("output-gates")
			for _, og := range c.OutputGates {
				if og == nil {
					w.str("<nil>")
					continue
				}
				w.str(og.Name)
				if og.Transform != nil {
					w.probeTransform(probes, og.Transform)
				}
			}
		}
	}

	w.str("rewards")
	w.num(len(cm.rewards))
	for _, rv := range cm.rewards {
		w.str(rv.Name)
		w.num(int(rv.Mode))
		w.str("rate")
		if rv.Rate != nil {
			rate := rv.Rate
			w.probeFloat(probes, func(pm *probeMarking) float64 { return rate(pm) })
		}
		w.str("impulses")
		for _, actName := range sortedKeys(rv.Impulses) {
			w.str(actName)
			fn := rv.Impulses[actName]
			w.probeFloat(probes, func(pm *probeMarking) float64 { return fn(pm) })
		}
	}

	return hex.EncodeToString(w.h.Sum(nil))
}

// fpWriter hashes length-prefixed tokens so distinct token sequences can
// never collide by concatenation.
type fpWriter struct {
	h   hash.Hash
	buf [10]byte
}

// write feeds bytes to the digest. hash.Hash.Write is documented to never
// return an error; panicking makes that impossibility explicit instead of
// discarding it.
func (w *fpWriter) write(b []byte) {
	if _, err := w.h.Write(b); err != nil {
		panic(err)
	}
}

func (w *fpWriter) str(s string) {
	binary.LittleEndian.PutUint64(w.buf[:8], uint64(len(s)))
	w.write(w.buf[:8])
	w.write([]byte(s))
}

func (w *fpWriter) num(n int) {
	binary.LittleEndian.PutUint64(w.buf[:8], uint64(int64(n)))
	w.write(w.buf[:8])
}

func (w *fpWriter) float(f float64) {
	binary.LittleEndian.PutUint64(w.buf[:8], math.Float64bits(f))
	w.write(w.buf[:8])
}

func (w *fpWriter) bool(b bool) {
	if b {
		w.num(1)
	} else {
		w.num(0)
	}
}

// fingerprintProbes builds the deterministic probe markings closures are
// evaluated against: the analyzer's base markings (all-zero, initial, all-one,
// all-two) plus, for read-set sensitivity, per-place bumps of the initial
// marking. The per-place bumps are applied lazily per closure — only to the
// places the closure actually reads — so fingerprinting stays linear in model
// size even for models with thousands of places.
type fpProbes struct {
	bases   [][]int
	initial []int
}

func fingerprintProbes(initial []int) *fpProbes {
	return &fpProbes{bases: baseMarkings(initial), initial: initial}
}

// run evaluates fn on every base marking, discovers the closure's read set,
// and then re-evaluates it on per-read-place perturbations of the initial
// marking. record receives every observation in a deterministic order; a
// panicking evaluation records a fixed marker instead.
func (p *fpProbes) run(eval func(pm *probeMarking) (float64, bool), record func(v float64, panicked bool)) {
	n := len(p.initial)
	reads := make([]bool, n)
	evalAt := func(tokens []int) {
		pm := &probeMarking{tokens: tokens, reads: make([]bool, n), writes: make([]bool, n)}
		v, ok := eval(pm)
		record(v, !ok)
		for i, r := range pm.reads {
			reads[i] = reads[i] || r
		}
	}
	for _, base := range p.bases {
		evalAt(append([]int(nil), base...))
	}
	// Per-read-place sensitivity: bump each place the closure read, one at a
	// time, in place-index order.
	for pi := 0; pi < n; pi++ {
		if !reads[pi] {
			continue
		}
		for _, bump := range []int{1, 3} {
			tokens := append([]int(nil), p.initial...)
			tokens[pi] += bump
			evalAt(tokens)
		}
	}
}

// probeFloat hashes the observed outputs of a float-valued closure over the
// probe family.
func (w *fpWriter) probeFloat(probes *fpProbes, fn func(pm *probeMarking) float64) {
	probes.run(
		func(pm *probeMarking) (v float64, ok bool) {
			defer func() {
				if recover() != nil {
					ok = false
				}
			}()
			return fn(pm), true
		},
		func(v float64, panicked bool) {
			if panicked {
				w.str("panic")
				return
			}
			w.float(v)
		},
	)
}

// probeTransform hashes the marking deltas a gate transform produces over the
// probe family: the set of written places and their resulting token counts.
func (w *fpWriter) probeTransform(probes *fpProbes, fn GateFunc) {
	probes.run(
		func(pm *probeMarking) (v float64, ok bool) {
			defer func() {
				if recover() != nil {
					ok = false
				}
			}()
			fn(pm)
			// Fold the post-transform marking of written places into one
			// deterministic observation stream via the writer callback; the
			// scalar return is unused for transforms.
			for pi, written := range pm.writes {
				if written {
					w.num(pi)
					w.num(pm.tokens[pi])
				}
			}
			return 0, true
		},
		func(v float64, panicked bool) {
			if panicked {
				w.str("panic")
				return
			}
			w.str("|")
		},
	)
}

// delaySpec hashes a timed activity's delay specification. A fixed delay
// (AddTimedActivity) hashes its distribution spec directly; a
// marking-dependent delay (AddTimedActivityFunc) is probed like any other
// closure, hashing the distribution spec observed at every probe marking.
func (w *fpWriter) delaySpec(a *Activity, probes *fpProbes) {
	if a.kind != Timed {
		return
	}
	if d := a.fixedDelay; d != nil {
		w.str("fixed")
		w.str(distSpec(d))
		return
	}
	if a.delay == nil {
		w.str("<nil>")
		return
	}
	w.str("func")
	delay := a.delay
	probes.run(
		func(pm *probeMarking) (v float64, ok bool) {
			defer func() {
				if recover() != nil {
					ok = false
				}
			}()
			w.str(distSpec(delay(pm)))
			return 0, true
		},
		func(v float64, panicked bool) {
			if panicked {
				w.str("panic")
				return
			}
			w.str("|")
		},
	)
}

// distSpec renders a distribution's canonical spec string: the family name
// with its sorted parameters, the same rendering dist.Describe uses for
// reports.
func distSpec(d dist.Distribution) string {
	if d == nil {
		return "<nil>"
	}
	return dist.Describe(d)
}
