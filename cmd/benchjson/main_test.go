package main

import (
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Test CPU
BenchmarkA-8   	      10	 123456 ns/op	    2048 B/op	      12 allocs/op
BenchmarkB/sub-8   	       5	 234567 ns/op	     9.5 events/rep
PASS
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Pkg != "repro" || doc.CPU != "Test CPU" {
		t.Errorf("header wrong: %+v", doc)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %d, want 2", len(doc.Benchmarks))
	}
	a := doc.Benchmarks[0]
	if a.Name != "BenchmarkA-8" || a.Runs != 10 || a.Metrics["ns/op"] != 123456 || a.Metrics["allocs/op"] != 12 {
		t.Errorf("benchmark A parsed wrong: %+v", a)
	}
	if b := doc.Benchmarks[1]; b.Metrics["events/rep"] != 9.5 {
		t.Errorf("custom metric parsed wrong: %+v", b)
	}
}

func TestParseRejectsDuplicateNames(t *testing.T) {
	dup := benchOutput + "BenchmarkA-8   \t      20\t 111111 ns/op\n"
	_, err := parse(strings.NewReader(dup))
	if err == nil {
		t.Fatal("duplicate benchmark names accepted")
	}
	if !strings.Contains(err.Error(), "BenchmarkA-8") {
		t.Errorf("error %q does not name the duplicate", err)
	}
}

func TestParseRejectsMalformedLines(t *testing.T) {
	for _, line := range []string{
		"BenchmarkOnly",            // no iteration count
		"BenchmarkX-8 notanumber",  // bad count
		"BenchmarkX-8 3 12.5",      // value without unit
		"BenchmarkX-8 3 abc ns/op", // bad metric value
	} {
		if _, err := parse(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("malformed line %q accepted", line)
		}
	}
}
