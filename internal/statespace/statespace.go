// Package statespace is the structural analysis tier between the model layer
// (internal/san) and the numerical solvers: it derives the incidence matrix
// of a compiled model, computes place and transition invariants over the
// rationals, exhaustively generates the reachable state graph with vanishing
// markings eliminated on the fly, and emits a sparse CTMC generator with a
// machine-checked certificate (san.Certificate) proving the solver
// preconditions — memoryless timed behavior, terminating instantaneous
// behavior, and a finite state space — before any numerics run. Models that
// fail a precondition are refused with a structured reason, never silently
// solved.
//
// The package mirrors the simulator's firing semantics exactly (input arcs,
// input-gate transforms, case selection mass normalization, sweep-ordered
// instantaneous closure, post-fire impulse evaluation), so the generated
// chain is the chain the simulator samples.
package statespace

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/dist"
	"repro/internal/san"
)

// Options bound the structural analysis.
type Options struct {
	// MaxStates caps the exhaustive exploration. Zero means DefaultMaxStates.
	MaxStates int
	// MaxInvariantPlaces and MaxInvariantColumns cap the incidence tableau;
	// larger models skip invariant computation (bounds then come from
	// exploration alone). Zero means the defaults.
	MaxInvariantPlaces  int
	MaxInvariantColumns int
	// MaxFarkasRows caps the intermediate tableau growth of the invariant
	// computation. Zero means DefaultMaxFarkasRows.
	MaxFarkasRows int
	// Parallelism is the worker count for the parallel exploration and
	// solver kernels. Zero means GOMAXPROCS; one forces sequential
	// execution. Results are bit-identical at every setting: the parallel
	// kernels partition work into fixed-size chunks (independent of the
	// worker count) and reduce per-chunk partials in chunk-index order.
	Parallelism int
	// Baseline routes exploration and the solvers through the sequential
	// reference implementations (string-keyed interning, scatter SpMV).
	// It exists for differential tests and benchmarks of the optimized
	// tier; production callers leave it false.
	Baseline bool
}

// Default analysis budgets.
const (
	DefaultMaxStates           = 50000
	DefaultMaxInvariantPlaces  = 600
	DefaultMaxInvariantColumns = 1200
	DefaultMaxFarkasRows       = 4096
	maxVanishingSweeps         = 10000
	maxRefusalPlacesListed     = 8
)

func (o Options) withDefaults() Options {
	if o.MaxStates <= 0 {
		o.MaxStates = DefaultMaxStates
	}
	if o.MaxInvariantPlaces <= 0 {
		o.MaxInvariantPlaces = DefaultMaxInvariantPlaces
	}
	if o.MaxInvariantColumns <= 0 {
		o.MaxInvariantColumns = DefaultMaxInvariantColumns
	}
	if o.MaxFarkasRows <= 0 {
		o.MaxFarkasRows = DefaultMaxFarkasRows
	}
	return o
}

// StateProb is one atom of a probability distribution over generated states.
type StateProb struct {
	State int
	Prob  float64
}

// Transition is one edge of the generated CTMC: a timed activity firing (one
// probabilistic case, one vanishing-elimination path) from one tangible
// state to another. Parallel edges between the same pair of states are kept
// separate so each carries its own impulse-reward vector; the solver merges
// them when it builds the uniformized matrix.
type Transition struct {
	// From and To index Generator.States.
	From, To int
	// Activity is the timed activity whose firing produced the edge.
	Activity string
	// Rate is the exponential rate of the edge: the activity's rate times
	// the case probability times the probability of the vanishing path.
	Rate float64
	// Impulses holds, per reward variable (Generator.cm.Rewards() order),
	// the impulse reward earned when the edge fires — the firing activity's
	// impulses plus those of every instantaneous activity on the path.
	Impulses []float64
}

// Generator is the exhaustively generated CTMC of a certified model: the
// tangible reachable states in deterministic BFS order, the initial
// distribution (after eliminating a vanishing initial marking), and the
// outgoing transitions of every state.
type Generator struct {
	cm *san.CompiledModel
	// States holds the tangible markings in discovery (BFS) order, each a
	// full marking vector in place-index order. States[0] is the first
	// tangible state reached from the initial marking.
	States [][]int
	// Initial is the distribution over States at time zero. A tangible
	// initial marking gives the single atom {0, 1}; a vanishing one may
	// split across the outcomes of its instantaneous closure.
	Initial []StateProb
	// InitialImpulses holds the expected impulse rewards (per reward
	// variable) earned during the initial vanishing closure, before time
	// starts.
	InitialImpulses []float64
	// Transitions[s] lists the outgoing edges of state s, in deterministic
	// (activity declaration, case, path) order.
	Transitions [][]Transition

	// par and baseline are carried over from the certify Options: the
	// worker count for the parallel solver kernels (0 = GOMAXPROCS) and
	// whether solves run on the sequential reference path.
	par      int
	baseline bool
}

// NumTransitions returns the total edge count.
func (g *Generator) NumTransitions() int {
	n := 0
	for _, ts := range g.Transitions {
		n += len(ts)
	}
	return n
}

// Rewards returns the reward variables of the underlying compiled model, in
// the order Transition.Impulses and InitialImpulses are indexed by.
func (g *Generator) Rewards() []san.RewardVariable { return g.cm.Rewards() }

// Certify runs the full structural pipeline on a compiled model: memoryless
// pre-check, vanishing-loop analysis, invariant computation, and exhaustive
// state-space generation. It returns the generated CTMC together with the
// certificate; the generator is nil unless the certificate is Certified.
//
// The pipeline fails fast: a non-exponential delay or a vanishing loop
// refuses before exploration spends any budget, and the refusal strings are
// prefixed with the san.Refusal* constants so callers can classify them.
func Certify(cm *san.CompiledModel, opts Options) (*Generator, san.Certificate) {
	opts = opts.withDefaults()
	var cert san.Certificate

	// 1. Memoryless pre-check at the initial marking. Per-state rates are
	// re-derived during exploration; this catches structurally hopeless
	// models (uniform repairs, Weibull wear-out) before any state is built.
	initial := cm.InitialMarking()
	cert.Memoryless = true
	for _, a := range cm.Model().Activities() {
		if a.Kind() != san.Timed {
			continue
		}
		if _, err := activityRate(a, markingVec(initial)); err != nil {
			cert.Memoryless = false
			cert.Refusals = append(cert.Refusals, fmt.Sprintf("%s: %v", san.RefusalNonMemoryless, err))
		}
	}

	// 2. Vanishing behavior: with no instantaneous activities elimination is
	// trivially terminating; otherwise the instantaneous-loop analysis must
	// rule out loops, or on-the-fly elimination has no termination proof.
	cert.VanishingFree = true
	if len(cm.Instantaneous()) > 0 {
		rep := san.Analyze(cm)
		for _, loop := range rep.VanishingLoops {
			cert.VanishingFree = false
			cert.Refusals = append(cert.Refusals,
				fmt.Sprintf("%s: instantaneous cycle %v", san.RefusalVanishingLoop, loop.Activities))
		}
	}

	if !cert.Memoryless || !cert.VanishingFree {
		return nil, cert
	}

	// 3. Invariants over the rationals. Budget overruns downgrade gracefully:
	// bounds then rest on exploration alone.
	inv := computeInvariants(cm, opts)
	cert.PInvariants = len(inv.pInvariants)
	cert.TInvariants = inv.tInvariants

	// 4. Exhaustive exploration with on-the-fly vanishing elimination.
	gen, exp := explore(cm, opts)
	if exp.err != nil {
		cert.Bounded = false
		cert.Refusals = append(cert.Refusals, fmt.Sprintf("%s: %v", san.RefusalExploration, exp.err))
		return nil, cert
	}
	if exp.nonMemoryless != "" {
		cert.Memoryless = false
		cert.Refusals = append(cert.Refusals, fmt.Sprintf("%s: %s", san.RefusalNonMemoryless, exp.nonMemoryless))
		return nil, cert
	}
	if exp.budgetExceeded {
		cert.Bounded = false
		uncovered := inv.uncoveredPlaces(cm)
		if len(uncovered) > 0 {
			if n := len(uncovered); n > maxRefusalPlacesListed {
				// The truncation must be visible: a refusal naming 8 of 900
				// uncovered places would read as if it named all of them.
				uncovered = append(uncovered[:maxRefusalPlacesListed],
					fmt.Sprintf("... and %d more", n-maxRefusalPlacesListed))
			}
			cert.Refusals = append(cert.Refusals, fmt.Sprintf(
				"%s: exploration exceeded %d states and no place invariant bounds %v",
				san.RefusalUnbounded, opts.MaxStates, uncovered))
		} else {
			cert.Refusals = append(cert.Refusals, fmt.Sprintf(
				"%s: state space provably finite (every place invariant-bounded) but larger than the %d-state budget",
				san.RefusalBudget, opts.MaxStates))
		}
		return nil, cert
	}

	cert.Bounded = true
	cert.States = len(gen.States)
	cert.Transitions = gen.NumTransitions()
	cert.PlaceBounds = placeBounds(cm, inv, exp.observedMax)
	gen.par = opts.Parallelism
	gen.baseline = opts.Baseline
	return gen, cert
}

// placeBounds assembles the per-place boundedness certificates: the
// invariant-derived bound where one exists and is consistent with the
// explored maximum (the invariant vector reported as evidence), otherwise
// the exhaustively observed maximum.
func placeBounds(cm *san.CompiledModel, inv invariantResult, observedMax []int) []san.PlaceBound {
	places := cm.Model().Places()
	bounds := make([]san.PlaceBound, 0, len(places))
	for _, p := range places {
		pi := p.Index()
		pb := san.PlaceBound{Place: p.Name(), Bound: observedMax[pi], Proof: san.ProofExploration}
		if b, ev, ok := inv.boundFor(pi, cm); ok && b >= observedMax[pi] {
			// An invariant bound below the observed maximum would mean the
			// probed gate deltas were not the real ones; the exploration
			// proof is then the trustworthy one.
			pb.Bound = b
			pb.Proof = san.ProofPInvariant
			pb.Invariant = ev
		}
		bounds = append(bounds, pb)
	}
	return bounds
}

// markingVec adapts a marking vector (place-index order) to san.MarkingReader.
type markingVec []int

func (v markingVec) Tokens(p *san.Place) int { return v[p.Index()] }

// activityRate classifies a timed activity's delay distribution at marking m
// as exponential and returns its rate, or an error naming why the delay is
// not memoryless. Weibull with shape 1 is the exponential in disguise the
// calibration layer produces.
func activityRate(a *san.Activity, m san.MarkingReader) (rate float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("activity %q: delay evaluation panicked: %v", a.Name(), r)
		}
	}()
	d := a.DelayAt(m)
	switch dd := d.(type) {
	case dist.Exponential:
		return dd.Rate(), nil
	case dist.Weibull:
		if dd.Shape() == 1 {
			return 1 / dd.Mean(), nil
		}
		return 0, fmt.Errorf("activity %q: Weibull delay with shape %g", a.Name(), dd.Shape())
	case nil:
		return 0, fmt.Errorf("activity %q: nil delay", a.Name())
	default:
		// Name the remedy when one exists: a refusal over an exactly
		// expandable delay points the reader (and the solver tier's retry)
		// at san.ExpandPhases.
		if k, ok := san.PhaseExpandable(d); ok {
			return 0, fmt.Errorf("activity %q: %T delay (exactly expandable into %d exponential phases)", a.Name(), d, k)
		}
		return 0, fmt.Errorf("activity %q: %T delay", a.Name(), d)
	}
}

// stateKey encodes a marking vector as a map key.
func stateKey(mark []int) string {
	buf := make([]byte, 8*len(mark))
	for i, v := range mark {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(int64(v)))
	}
	return string(buf)
}

// sortedPlaceNames returns the names of the given place indices in sorted
// order, for deterministic refusal messages.
func sortedPlaceNames(cm *san.CompiledModel, idx []int) []string {
	names := make([]string, 0, len(idx))
	for _, i := range idx {
		names = append(names, cm.Model().Places()[i].Name())
	}
	sort.Strings(names)
	return names
}

// CertifyExpanded is the certificate tier's entry point for the phase-type
// expansion pass: it runs san.ExpandPhases on the (uncompiled) model builder,
// compiles the expanded image against the given rewards, and certifies it.
// The expansion evidence lands in Certificate.Expansions and, when the
// expanded model is still refused, the pass's classified non-expandable
// reasons are appended after the certificate's own refusals — so a reader
// sees both what was proven non-memoryless and why it could not be fixed.
//
// The model is mutated in place; callers that also need the original model
// (e.g. for a simulation fallback that must stay bit-identical to the
// unexpanded build) must build a fresh one for this call. The error return
// covers structural failures only (invalid model, unsound expansion, compile
// failure) — a refused certificate is a result, not an error.
func CertifyExpanded(m *san.Model, rewards []san.RewardVariable, opts Options) (*Generator, san.Certificate, *san.ExpansionReport, error) {
	rep, err := san.ExpandPhases(m)
	if err != nil {
		return nil, san.Certificate{}, nil, err
	}
	cm, err := san.Compile(m, rewards)
	if err != nil {
		return nil, san.Certificate{}, nil, fmt.Errorf("statespace: compile expanded model: %w", err)
	}
	gen, cert := Certify(cm, opts)
	cert.Expansions = append([]string(nil), rep.Expanded...)
	if !cert.Certified() {
		cert.Refusals = append(cert.Refusals, rep.Refusals...)
	}
	return gen, cert, rep, nil
}

// CertifyFitted is the certificate tier's entry point for the approximate
// phase-type fitting pass, one tier below CertifyExpanded: it first runs the
// exact expansion (delays with an exact finite phase form always take it),
// then san.FitPhases with the given tolerance on the non-expandable
// remainder, compiles the image, and certifies it. Expansion evidence lands
// in Certificate.Expansions and the certified fit evidence — original
// distribution, adopted surrogate, proven distance bound and metric — in
// Certificate.Approximations, so a certificate with non-empty Approximations
// can never be mistaken for an exact one. When the fitted model is still
// refused, both passes' classified reasons are appended after the
// certificate's own refusals.
//
// The model is mutated in place; callers that also need the original model
// (e.g. for a simulation fallback) must build a fresh one for this call. The
// error return covers structural failures only (invalid model or tolerance,
// unsound pass, compile failure) — a refused certificate is a result, not an
// error.
func CertifyFitted(m *san.Model, rewards []san.RewardVariable, tol float64, opts Options) (*Generator, san.Certificate, *san.FitReport, error) {
	exp, err := san.ExpandPhases(m)
	if err != nil {
		return nil, san.Certificate{}, nil, err
	}
	rep, err := san.FitPhases(m, tol)
	if err != nil {
		return nil, san.Certificate{}, nil, err
	}
	cm, err := san.Compile(m, rewards)
	if err != nil {
		return nil, san.Certificate{}, nil, fmt.Errorf("statespace: compile fitted model: %w", err)
	}
	gen, cert := Certify(cm, opts)
	cert.Expansions = append([]string(nil), exp.Expanded...)
	cert.Approximations = append([]san.FitEvidence(nil), rep.Fits...)
	if !cert.Certified() {
		cert.Refusals = append(cert.Refusals, exp.Refusals...)
		cert.Refusals = append(cert.Refusals, rep.Refusals...)
	}
	return gen, cert, rep, nil
}
