// The disk_sensitivity example reproduces the spirit of the paper's disk
// sensitivity study (Figures 2/3): it holds the disk MTBF fixed and sweeps
// the Weibull shape parameter across infant-mortality (shape < 1),
// exponential (shape = 1), and wear-out (shape > 1) lifetime assumptions,
// reporting storage availability and weekly disk replacements for each.
//
// It then exercises the families the seed models do not reach on their own:
// the same storage system is simulated with its controller repair time
// drawn from an Erlang multi-stage repair, a lognormal, and a bimodal
// mixture (fast on-site swap vs. slow vendor dispatch) of equal mean, and
// finally from an Empirical distribution resampled from "field" repair
// measurements — showing that availability is sensitive to the repair-time
// shape, not just its mean.
package main

import (
	"fmt"
	"log"

	"repro/internal/dist"
	"repro/internal/raid"
	"repro/internal/rng"
	"repro/internal/san"
)

// simOptions keeps all runs on the same mission and replication budget so
// the series are comparable.
var simOptions = san.Options{
	Mission:      dist.HoursPerYear,
	Replications: 200,
	Seed:         20080624, // DSN 2008
}

// storageConfig is a one-DDN, four-tier RAID6 group: small enough to
// simulate quickly, large enough to show the sensitivity.
func storageConfig(shape float64) raid.StorageConfig {
	disk := raid.DefaultDisk()
	disk.ShapeBeta = shape
	return raid.StorageConfig{
		DDNUnits:    1,
		TiersPerDDN: 4,
		Geometry:    raid.TierGeometry{Data: 8, Parity: 2},
		Disk:        disk,
		Controller:  raid.DefaultController(),
	}
}

// runStorage builds and simulates one storage model, returning availability
// and replacements-per-week with confidence intervals.
func runStorage(cfg raid.StorageConfig) (avail, weeklyRepl string, err error) {
	model := san.NewModel("disk-sensitivity")
	storage, err := raid.BuildStorage(model, "storage", cfg)
	if err != nil {
		return "", "", err
	}
	rewards := []san.RewardVariable{
		storage.AvailabilityReward("availability"),
		storage.ReplacementCountReward("replacements"),
	}
	study, err := san.RunReplications(model, rewards, simOptions)
	if err != nil {
		return "", "", err
	}
	availCI, err := study.Interval("availability")
	if err != nil {
		return "", "", err
	}
	perWeek := study.Mean("replacements") * dist.HoursPerWeek / simOptions.Mission
	return availCI.String(), fmt.Sprintf("%.3f", perWeek), nil
}

// sweepShape is the Weibull-vs-exponential MTBF sensitivity: same AFR, three
// lifetime shapes.
func sweepShape() error {
	fmt.Println("== disk lifetime shape sweep (MTBF fixed) ==")
	cfg := storageConfig(1)
	fmt.Printf("disks: %d in %d tiers, MTBF %.0f h (AFR %.4f), replace %.0f h\n",
		cfg.TotalDisks(), cfg.TotalTiers(), cfg.Disk.MTBFHours, cfg.Disk.AFR(), cfg.Disk.ReplaceHours)
	for _, tc := range []struct {
		label string
		shape float64
	}{
		{"infant mortality", 0.7},
		{"exponential", 1.0},
		{"wear-out", 1.5},
	} {
		life, err := dist.NewWeibullFromMTBF(tc.shape, cfg.Disk.MTBFHours)
		if err != nil {
			return err
		}
		avail, repl, err := runStorage(storageConfig(tc.shape))
		if err != nil {
			return err
		}
		fmt.Printf("  %-16s %-34s availability %s  replacements/week %s\n",
			tc.label, dist.Describe(life), avail, repl)
	}
	return nil
}

// repairAlternative pairs a display label with a repair-time distribution.
type repairAlternative struct {
	label string
	d     dist.Distribution
}

// repairDistributions builds the equal-mean repair alternatives in report
// order: the controller repair baseline is uniform 12-36 h (mean 24 h).
func repairDistributions() ([]repairAlternative, error) {
	var out []repairAlternative

	uniform, err := dist.NewUniform(12, 36)
	if err != nil {
		return nil, err
	}
	out = append(out, repairAlternative{"uniform (baseline)", uniform})

	// Three exponential stages (diagnose, ship, install) of mean 8 h each.
	erlang, err := dist.NewErlang(3, 1.0/8.0)
	if err != nil {
		return nil, err
	}
	out = append(out, repairAlternative{"erlang k=3", erlang})

	lognormal, err := dist.NewLognormalFromMoments(24, 30)
	if err != nil {
		return nil, err
	}
	out = append(out, repairAlternative{"lognormal", lognormal})

	// 80% fast on-site swaps of ~6 h, 20% vendor dispatches of ~96 h:
	// mean 0.8*6 + 0.2*96 = 24 h.
	fast, err := dist.NewGamma(4, 1.5)
	if err != nil {
		return nil, err
	}
	slow, err := dist.NewLognormalFromMoments(96, 48)
	if err != nil {
		return nil, err
	}
	mixture, err := dist.NewMixture(
		dist.Component{Weight: 0.8, Dist: fast},
		dist.Component{Weight: 0.2, Dist: slow},
	)
	if err != nil {
		return nil, err
	}
	out = append(out, repairAlternative{"mixture fast/slow", mixture})

	// Resample "field measurements": draws from the mixture, as if read back
	// from repair logs, turned into an empirical distribution.
	s := rng.NewStream(7, "field-repairs")
	field := make([]float64, 500)
	for i := range field {
		field[i] = mixture.Sample(s)
	}
	empirical, err := dist.NewEmpirical(field)
	if err != nil {
		return nil, err
	}
	out = append(out, repairAlternative{"empirical (n=500)", empirical})

	return out, nil
}

// runRepairAlternative simulates the storage model with the controller
// repair replaced by the given distribution. raid.BuildStorage derives the
// controller repair from its lo/hi uniform configuration, so this variant
// drives a controller pair directly through the san API instead.
func runRepairAlternative(repair dist.Distribution) (string, error) {
	model := san.NewModel("repair-sensitivity")
	down := model.AddPlace("ctrl_down", 0)
	life, err := dist.NewExponentialFromMean(raid.DefaultControllerMTBFHours)
	if err != nil {
		return "", err
	}
	up := model.AddPlace("ctrl_up", 1)
	fail := model.AddTimedActivity("fail", life)
	fail.AddInputArc(up, 1).AddOutputArc(down, 1)
	repairAct := model.AddTimedActivity("repair", repair)
	repairAct.AddInputArc(down, 1).AddOutputArc(up, 1)

	rewards := []san.RewardVariable{
		san.UpFraction("availability", func(m san.MarkingReader) bool {
			return m.Tokens(down) == 0
		}),
	}
	study, err := san.RunReplications(model, rewards, simOptions)
	if err != nil {
		return "", err
	}
	ci, err := study.Interval("availability")
	if err != nil {
		return "", err
	}
	return ci.String(), nil
}

// sweepRepair compares equal-mean repair-time families.
func sweepRepair() error {
	fmt.Println("\n== controller repair-time family sweep (equal means) ==")
	repairs, err := repairDistributions()
	if err != nil {
		return err
	}
	for _, alt := range repairs {
		avail, err := runRepairAlternative(alt.d)
		if err != nil {
			return err
		}
		p95 := "     n/a"
		if q, ok := alt.d.(dist.Quantiler); ok {
			p95 = fmt.Sprintf("%7.2f h", q.Quantile(0.95))
		}
		fmt.Printf("  %-18s mean %6.2f h  p95 %s  availability %s\n",
			alt.label, alt.d.Mean(), p95, avail)
	}
	return nil
}

func main() {
	log.SetFlags(0)
	if err := sweepShape(); err != nil {
		log.Fatal(err)
	}
	if err := sweepRepair(); err != nil {
		log.Fatal(err)
	}
}
