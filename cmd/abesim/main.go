// Command abesim regenerates the paper's evaluation: every table and figure
// plus the ablation studies, using the reimplemented SAN simulator and the
// ABE/petascale configurations. The rare_event_dataloss experiment
// demonstrates the multilevel importance-splitting engine: it estimates a
// data-loss probability far below naive Monte Carlo's resolution and reports
// how much narrower the splitting confidence interval is at equal
// simulated-event budget.
//
// Usage:
//
//	abesim -experiment figure4 [-replications 60] [-mission 8760] [-seed 1] [-quick]
//	abesim -experiment rare_event_dataloss -quick
//	abesim -list
//	abesim -all -quick
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("abesim: ")

	var (
		name         = flag.String("experiment", "", "experiment to run (see -list)")
		list         = flag.Bool("list", false, "list available experiments and exit")
		all          = flag.Bool("all", false, "run every experiment")
		replications = flag.Int("replications", 0, "replications per design point (0 = default)")
		mission      = flag.Float64("mission", 0, "mission time per replication in hours (0 = one year)")
		seed         = flag.Uint64("seed", 0, "random seed (0 = default)")
		quick        = flag.Bool("quick", false, "fewer replications and sweep points")
	)
	flag.Parse()

	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return
	}

	opts := experiments.Options{
		Replications: *replications,
		MissionHours: *mission,
		Seed:         *seed,
		Quick:        *quick,
	}

	names := []string{*name}
	if *all {
		names = experiments.Names()
	} else if *name == "" {
		flag.Usage()
		os.Exit(2)
	}

	for _, n := range names {
		out, err := experiments.Run(n, opts)
		if err != nil {
			log.Fatalf("experiment %q: %v", n, err)
		}
		fmt.Printf("### %s\n\n%s\n", n, out)
	}
}
