package sweep

import (
	"sync"

	"repro/internal/abe"
	"repro/internal/san"
	"repro/internal/statespace"
)

// This file is the content-addressed solve cache behind the sweep's analytic
// tier. A sweep point's certification cascade and transient solve depend
// only on the compiled model's content, the mission time, the solver cascade
// in effect, and the fit tolerance — never on the point's label, seed, or
// position — so points sharing a model fingerprint (design alternatives
// swept under common random numbers, repeated calibrated sweeps, the
// analytic half of cross-check twins) can share one computation. The cache
// memoizes the full outcome: the analytic rewards when the solve succeeded,
// or the certificate/refusal evidence when the point must simulate.
//
// Determinism contract (see docs/determinism.md): a cache hit returns the
// exact object the miss computed, so a hit is byte-identical to a recompute
// in every report; and the per-point "hit"/"miss" labels are assigned by
// point index order against the cache's pre-sweep contents — never by
// execution timing — so reports are byte-identical at any Parallelism.

// Cache labels recorded in Solver.Cache.
const (
	CacheMiss = "miss"
	CacheHit  = "hit"
)

// solveKey identifies one memoized solver outcome: the compiled model's
// content fingerprint, the mission time, the solver cascade identifier, and
// the phase-type fit tolerance. Execution details (parallelism, seeds,
// labels) never enter the key.
type solveKey struct {
	fingerprint string
	mission     float64
	tier        string
	fitTol      float64
}

// solverTier names the retry cascade the sweep options enable, so outcomes
// computed under different cascades can never alias.
func solverTier(opts san.Options) string {
	if opts.PHFitTolerance > 0 {
		return "uniformization+expand+fit"
	}
	return "uniformization+expand"
}

// solveEntry is one memoized outcome. The once gate gives once-per-key
// execution: duplicate in-flight points block on the first computation
// instead of racing it.
type solveEntry struct {
	once    sync.Once
	rewards map[string]float64 // non-nil iff the point is answered analytically
	solver  Solver             // method, reasons, certificate evidence
	err     error              // hard failure (model rebuild etc.); aborts the sweep
}

// SolveCache is a deterministic, concurrency-safe memo of solver outcomes.
// Run uses a fresh cache per sweep (deduplicating within the sweep);
// RunWithCache lets callers keep one across sweeps — e.g. a long-lived
// service answering repeated sweeps over recurring configurations.
type SolveCache struct {
	mu      sync.Mutex
	entries map[solveKey]*solveEntry
}

// NewSolveCache returns an empty cache.
func NewSolveCache() *SolveCache {
	return &SolveCache{entries: make(map[solveKey]*solveEntry)}
}

// entry returns the entry for k, creating it if absent.
func (c *SolveCache) entry(k solveKey) *solveEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if !ok {
		e = &solveEntry{}
		c.entries[k] = e
	}
	return e
}

// snapshot returns the set of keys present before a sweep starts; hit/miss
// labeling is computed against it, in point order, so labels never depend on
// which worker reached a key first. Set construction is order-insensitive.
func (c *SolveCache) snapshot() map[solveKey]bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make(map[solveKey]bool, len(c.entries))
	for k := range c.entries { //lint:sorted
		keys[k] = true
	}
	return keys
}

// solvePoint runs the certification cascade — plain certify, phase-type
// expansion retry, optional approximate-fit retry — and the transient solve
// for one configuration. It is the body of the original per-point solver
// pre-pass, hoisted out of Run so the cache can execute it once per key. A
// nil rewards map with a nil error means the point must simulate, with the
// evidence in the returned Solver.
func solvePoint(cfg abe.Config, cm *san.CompiledModel, mission, fitTol float64) (map[string]float64, Solver, error) {
	var out Solver
	gen, cert := statespace.Certify(cm, statespace.Options{})
	if !cert.Certified() && hasPrefix(cert.Refusals, san.RefusalNonMemoryless) {
		// Phase-type expansion retry: rebuild the point's model fresh
		// (ExpandPhases mutates its input and the simulation fallback must
		// keep the original compiled model bit-identical), expand, and
		// certify the expanded image. When the pass rewrote nothing the
		// original certificate stands; when it did, the expanded certificate
		// — evidence, refusals, and all — replaces it.
		exGen, exCert, rep, err := expandedCertify(cfg)
		if err != nil {
			return nil, out, err
		}
		if len(rep.Expanded) > 0 {
			gen, cert = exGen, exCert
		}
	}
	if !cert.Certified() && hasPrefix(cert.Refusals, san.RefusalNonMemoryless) && fitTol > 0 {
		// Approximate-fitting retry, opted into via PHFitTolerance: some
		// delay has no exact phase form, so rebuild once more and run the
		// certified fitting tier over the non-expandable remainder. Only an
		// image that actually adopted surrogates replaces the standing
		// certificate; the answer is then labeled uniformization-approx,
		// never plain uniformization.
		fitGen, fitCert, rep, err := fittedCertify(cfg, fitTol)
		if err != nil {
			return nil, out, err
		}
		if len(rep.Fits) > 0 {
			gen, cert = fitGen, fitCert
		}
	}
	c := cert
	out.Certificate = &c
	if !cert.Certified() {
		out.Method = MethodSimulation
		out.Reasons = cert.Refusals
		return nil, out, nil
	}
	rewards, err := gen.SolveTransient(mission)
	if err != nil {
		out.Method = MethodSimulation
		out.Reasons = []string{err.Error()}
		return nil, out, nil
	}
	if len(cert.Approximations) > 0 {
		out.Method = MethodUniformizationApprox
	} else {
		out.Method = MethodUniformization
	}
	return rewards, out, nil
}
