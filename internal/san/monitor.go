package san

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
)

// ImportanceFunc maps a marking to a scalar measuring how close the state is
// to a rare event of interest (e.g. the maximum number of concurrently
// failed disks in any RAID tier). Importance-splitting drivers partition its
// range into levels and clone trajectories at level upcrossings.
type ImportanceFunc func(m MarkingReader) float64

// Monitor observes an importance function during a replication. The
// simulator evaluates Importance after initialization and after every
// activity completion; the first time the value reaches Threshold, OnCross
// is invoked with the simulation time and a full state snapshot.
type Monitor struct {
	// Importance is the observed function (required for the monitor to have
	// any effect).
	Importance ImportanceFunc
	// Threshold is the level whose first upcrossing fires OnCross.
	Threshold float64
	// OnCross is called at the first completion whose importance reaches
	// Threshold. The snapshot is freshly allocated and owned by the callback.
	OnCross func(now float64, snap *Snapshot)
	// StopOnCross halts the replication at the crossing, making the
	// threshold set absorbing — the right semantics for estimating the
	// probability of hitting the set within the mission time.
	StopOnCross bool
}

// Snapshot captures the complete state of an in-progress replication: the
// simulation clock, the marking, every pending activity completion (as an
// absolute firing time), the reward accumulators, the fired-event count, and
// the random-stream state (via rng.Stream.State). A snapshot taken at a
// level crossing can be restored with Simulator.RunFrom to clone the
// trajectory, either replaying it exactly (same RNG state) or continuing it
// with fresh randomness (overwrite RNG before restoring).
type Snapshot struct {
	// Time is the simulation clock at the snapshot instant.
	Time float64
	// Tokens is the marking, indexed like Model.Places().
	Tokens []int
	// Scheduled holds the absolute completion time of each activity's
	// pending event, indexed like Model.Activities(); NaN means the activity
	// has no pending completion.
	Scheduled []float64
	// ScheduledSeq holds the engine insertion sequence of each pending
	// event, parallel to Scheduled. Restoring re-schedules pending events in
	// ascending sequence so ties in completion time fire in the same
	// relative order as in the parent trajectory (the event heap breaks time
	// ties by insertion order). May be nil for hand-built snapshots, in
	// which case activity index order is used.
	ScheduledSeq []uint64
	// RateAccum, LastRate, and Impulses are the reward accumulators, indexed
	// like the simulator's reward variables.
	RateAccum []float64
	LastRate  []float64
	Impulses  []float64
	// RNG is the generator state of the simulator's stream.
	RNG [4]uint64
	// Events is the number of activity completions executed so far.
	Events uint64
}

// Clone returns a deep copy of the snapshot, so a splitting driver can
// restart several trajectories from one stored entry state (overwriting RNG
// per restart) without aliasing.
func (sn *Snapshot) Clone() *Snapshot {
	out := *sn
	out.Tokens = append([]int(nil), sn.Tokens...)
	out.Scheduled = append([]float64(nil), sn.Scheduled...)
	out.ScheduledSeq = append([]uint64(nil), sn.ScheduledSeq...)
	out.RateAccum = append([]float64(nil), sn.RateAccum...)
	out.LastRate = append([]float64(nil), sn.LastRate...)
	out.Impulses = append([]float64(nil), sn.Impulses...)
	return &out
}

// snapshot captures st at time now. Reward integrals are current through now
// because complete integrates before observing the monitor.
func (s *Simulator) snapshot(st *runState, now float64) *Snapshot {
	snap := &Snapshot{
		Time:         now,
		Tokens:       append([]int(nil), st.mark.tokens...),
		Scheduled:    make([]float64, len(st.scheduled)),
		ScheduledSeq: make([]uint64, len(st.scheduled)),
		RateAccum:    append([]float64(nil), st.rateAccum...),
		LastRate:     append([]float64(nil), st.lastRate...),
		Impulses:     append([]float64(nil), st.impulses...),
		RNG:          s.stream.State(),
		Events:       st.engine.Fired(),
	}
	for i, ev := range st.scheduled {
		if ev == nil || ev.Canceled() {
			snap.Scheduled[i] = math.NaN()
		} else {
			snap.Scheduled[i] = ev.Time()
			snap.ScheduledSeq[i] = ev.Sequence()
		}
	}
	return snap
}

// validateSnapshot checks that snap is structurally compatible with the
// simulator's model and rewards.
func (s *Simulator) validateSnapshot(snap *Snapshot, mission float64) error {
	if snap == nil {
		return fmt.Errorf("san: nil snapshot")
	}
	if len(snap.Tokens) != s.cm.model.NumPlaces() {
		return fmt.Errorf("san: snapshot has %d places, model has %d", len(snap.Tokens), s.cm.model.NumPlaces())
	}
	if len(snap.Scheduled) != s.cm.model.NumActivities() {
		return fmt.Errorf("san: snapshot has %d activities, model has %d", len(snap.Scheduled), s.cm.model.NumActivities())
	}
	if len(snap.RateAccum) != len(s.cm.rewards) || len(snap.LastRate) != len(s.cm.rewards) || len(snap.Impulses) != len(s.cm.rewards) {
		return fmt.Errorf("san: snapshot reward accumulators do not match %d reward variables", len(s.cm.rewards))
	}
	if math.IsNaN(snap.Time) || snap.Time < 0 {
		return fmt.Errorf("san: snapshot time %v invalid", snap.Time)
	}
	if !(mission > snap.Time) || math.IsInf(mission, 0) || math.IsNaN(mission) {
		return fmt.Errorf("san: mission %v must exceed snapshot time %v", mission, snap.Time)
	}
	return nil
}

// ResamplePredicate selects activities whose pending delay is re-drawn
// (from the restored marking) instead of preserved when a snapshot is
// restored. For exponential delays re-drawing is exactly
// distribution-preserving (memorylessness), and it de-correlates clones
// restarted from a shared entry state — without it, a splitting stage's
// outcome can be dominated by the frozen residual times all clones of an
// entry inherit. For non-exponential delays resampling changes the estimand
// and should not be requested.
type ResamplePredicate func(a *Activity) bool

// RunFrom resumes a replication from a snapshot and runs it to the mission
// end, observing mon like RunMonitored. The simulator's stream is restored
// from snap.RNG: restoring an unmodified snapshot replays the original
// trajectory bit-for-bit, while a splitting driver that wants an independent
// clone overwrites snap.RNG (via Clone) with a fresh stream state first.
// Residual completion times of pending activities are preserved exactly —
// they are part of the trajectory state being cloned — except for
// activities selected by resample (may be nil), whose delays are re-drawn.
func (s *Simulator) RunFrom(snap *Snapshot, mission float64, mon *Monitor, resample ResamplePredicate) (Result, error) {
	if err := s.validateSnapshot(snap, mission); err != nil {
		return Result{}, err
	}
	if err := s.stream.Restore(snap.RNG); err != nil {
		return Result{}, err
	}
	st := s.newRunState()
	st.monitor = mon
	copy(st.mark.tokens, snap.Tokens)
	copy(st.rateAccum, snap.RateAccum)
	copy(st.lastRate, snap.LastRate)
	copy(st.impulses, snap.Impulses)
	st.lastTime = snap.Time
	if err := st.engine.ResumeAt(snap.Time, snap.Events); err != nil {
		return Result{}, err
	}
	// Re-schedule pending events in their original insertion order: the
	// event heap breaks completion-time ties by sequence, so restoring in
	// activity-index order could fire tied deterministic completions in a
	// different order than the parent trajectory.
	type pendingEvent struct {
		index int
		seq   uint64
	}
	var pend []pendingEvent
	for i, t := range snap.Scheduled {
		if math.IsNaN(t) {
			continue
		}
		seq := uint64(i)
		if len(snap.ScheduledSeq) == len(snap.Scheduled) {
			seq = snap.ScheduledSeq[i]
		}
		pend = append(pend, pendingEvent{index: i, seq: seq})
	}
	sort.Slice(pend, func(a, b int) bool { return pend[a].seq < pend[b].seq })
	for _, pe := range pend {
		t := snap.Scheduled[pe.index]
		a := s.cm.model.activities[pe.index]
		if resample != nil && resample(a) {
			// Fresh delay from the restored marking; the engine clock is
			// already at snap.Time, so this schedules at snap.Time + delay.
			s.scheduleCompletion(st, a)
			continue
		}
		if t < snap.Time {
			return Result{}, fmt.Errorf("san: snapshot schedules activity %q at %v before snapshot time %v",
				a.name, t, snap.Time)
		}
		if err := s.scheduleCompletionAt(st, a, t); err != nil {
			return Result{}, err
		}
	}

	// The entry state may already sit at or above the (higher) threshold —
	// e.g. when one completion jumps several importance levels at once.
	s.observe(st, snap.Time)
	if !(st.crossed && mon.StopOnCross) {
		st.engine.Run(mission)
	}
	if st.err != nil {
		return Result{}, st.err
	}
	return s.finishRun(st, mission), nil
}

// Reseed overwrites the snapshot's RNG state with a freshly seeded stream
// state, so a restored trajectory continues with randomness independent of
// the parent trajectory (the splitting driver's clone semantics).
func (sn *Snapshot) Reseed(seed uint64) {
	sn.RNG = rng.NewStream(seed, "snapshot-reseed").State()
}
