package dist

import (
	"math"

	"repro/internal/rng"
)

// Gamma models multi-stage repair and service processes; the Erlang special
// case (integer shape) is the classical "k exponential stages in series"
// repair model. Shape 1 degenerates to the exponential.
type Gamma struct {
	shape, scale float64
}

// NewGamma returns a gamma distribution with the given shape (k) and scale
// (theta) parameters.
func NewGamma(shape, scale float64) (Gamma, error) {
	if err := checkPositive("shape", shape); err != nil {
		return Gamma{}, err
	}
	if err := checkPositive("scale", scale); err != nil {
		return Gamma{}, err
	}
	return Gamma{shape: shape, scale: scale}, nil
}

// NewErlang returns the Erlang distribution with k exponential stages of the
// given rate: a Gamma with integer shape k and scale 1/rate.
func NewErlang(k int, rate float64) (Gamma, error) {
	if k <= 0 {
		return Gamma{}, errInvalidf("Erlang stage count must be positive, got %d", k)
	}
	if err := checkPositive("rate", rate); err != nil {
		return Gamma{}, err
	}
	return Gamma{shape: float64(k), scale: 1 / rate}, nil
}

// Shape returns the shape (k) parameter.
func (g Gamma) Shape() float64 { return g.shape }

// Scale returns the scale (theta) parameter.
func (g Gamma) Scale() float64 { return g.scale }

// Sample draws using the Marsaglia-Tsang (2000) squeeze method. For
// shape < 1 it applies the standard boost: draw from Gamma(shape+1) and
// multiply by U^(1/shape).
func (g Gamma) Sample(s *rng.Stream) float64 {
	shape := g.shape
	boost := 1.0
	if shape < 1 {
		boost = math.Pow(s.OpenFloat64(), 1/shape)
		shape++
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := s.Normal()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := s.OpenFloat64()
		// Cheap squeeze first, exact log acceptance second.
		if u < 1-0.0331*x*x*x*x || math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * g.scale * boost
		}
	}
}

// Mean returns shape*scale.
func (g Gamma) Mean() float64 { return g.shape * g.scale }

// Variance returns shape*scale^2.
func (g Gamma) Variance() float64 { return g.shape * g.scale * g.scale }

// ThirdMoment returns E[X^3] = scale^3 * shape*(shape+1)*(shape+2).
func (g Gamma) ThirdMoment() float64 {
	return g.scale * g.scale * g.scale * g.shape * (g.shape + 1) * (g.shape + 2)
}

// CDF returns the regularized lower incomplete gamma P(shape, x/scale).
func (g Gamma) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return regularizedGammaP(g.shape, x/g.scale)
}

// Quantile inverts the CDF numerically; the gamma quantile has no closed
// form. The initial bracket comes from the distribution's mean and standard
// deviation and is expanded as needed.
func (g Gamma) Quantile(p float64) float64 {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return math.NaN()
	}
	if p == 1 {
		return math.Inf(1)
	}
	hi := g.Mean() + 10*math.Sqrt(g.Variance())
	return invertCDF(g.CDF, p, 0, hi)
}

// Name implements Distribution.
func (Gamma) Name() string { return "gamma" }

// Params implements Distribution.
func (g Gamma) Params() map[string]float64 {
	return map[string]float64{"shape": g.shape, "scale": g.scale}
}

// regularizedGammaP computes P(a, x) = gamma(a, x)/Gamma(a), the regularized
// lower incomplete gamma function, by series expansion for x < a+1 and by
// the Lentz continued fraction for the complement otherwise (Numerical
// Recipes 6.2).
func regularizedGammaP(a, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x < a+1 {
		return gammaPSeries(a, x)
	}
	return 1 - gammaQContinuedFraction(a, x)
}

const (
	gammaMaxIter = 500
	gammaEps     = 3e-15
)

// gammaPSeries evaluates P(a, x) by its power series, convergent for
// x < a+1.
func gammaPSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < gammaMaxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*gammaEps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaQContinuedFraction evaluates Q(a, x) = 1 - P(a, x) by the modified
// Lentz continued fraction, convergent for x >= a+1.
func gammaQContinuedFraction(a, x float64) float64 {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= gammaMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}
