package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/abe"
	"repro/internal/calibrate"
	"repro/internal/loganalysis"
	"repro/internal/loggen"
	"repro/internal/report"
	"repro/internal/sweep"
)

// PaperFullResult is the single-run reproduction of the paper: the synthetic
// ABE logs are generated, analyzed (Tables 1-4), calibrated into model
// parameters with provenance (Table 5), and the Figure 4/5 scaling sweep is
// evaluated from the *derived* configuration — no hard-coded Table 5
// constants sit between the logs and the simulation. A round trip
// (regenerate logs under the calibrated parameters, re-derive the rates)
// quantifies how tightly the loop closes.
type PaperFullResult struct {
	// Calibration is the full log-to-model calibration.
	Calibration *calibrate.Calibration
	// Tables holds Tables 1-5 in paper order (Table 5 is the provenance
	// table of the calibrated parameters).
	Tables []report.Table
	// Figure is the Figure 4 scaling study projected from Sweep.
	Figure report.Figure
	// Sweep is the underlying scaling sweep over the calibrated
	// configuration.
	Sweep *sweep.Result
	// RoundTrip compares the calibration inputs against rates re-derived
	// from logs regenerated under the calibrated parameters.
	RoundTrip RoundTrip
}

// RoundTrip is the measured-data loop check of the paper_full experiment.
type RoundTrip struct {
	// InputRates are the rates the calibration derived from the original
	// logs.
	InputRates loganalysis.DerivedRates `json:"input_rates"`
	// RederivedRates are the rates derived from logs regenerated under the
	// calibrated parameters.
	RederivedRates loganalysis.DerivedRates `json:"rederived_rates"`
	// RelativeError maps rate names to |rederived - input| / |input|.
	RelativeError map[string]float64 `json:"relative_error"`
}

// roundTrip regenerates logs under the calibrated parameters and re-derives
// the rates.
func roundTrip(cal *calibrate.Calibration, base loggen.Config) (RoundTrip, error) {
	regen, err := loggen.Generate(cal.LogConfig(base))
	if err != nil {
		return RoundTrip{}, fmt.Errorf("paper_full: regenerating logs: %w", err)
	}
	rerates, err := loganalysis.DeriveRates(regen, cal.Population)
	if err != nil {
		return RoundTrip{}, fmt.Errorf("paper_full: re-deriving rates: %w", err)
	}
	in, out := cal.Rates, rerates
	relErr := func(a, b float64) float64 {
		if a == 0 {
			return math.Abs(b)
		}
		return math.Abs(b-a) / math.Abs(a)
	}
	return RoundTrip{
		InputRates:     in,
		RederivedRates: out,
		RelativeError: map[string]float64{
			"cfs_availability":               relErr(in.CFSAvailability, out.CFSAvailability),
			"outages_per_month":              relErr(in.OutagesPerMonth, out.OutagesPerMonth),
			"mean_outage_hours":              relErr(in.MeanOutageHours, out.MeanOutageHours),
			"jobs_per_hour":                  relErr(in.JobsPerHour, out.JobsPerHour),
			"transient_job_failure_fraction": relErr(in.TransientJobFailureFraction, out.TransientJobFailureFraction),
			"other_job_failure_fraction":     relErr(in.OtherJobFailureFraction, out.OtherJobFailureFraction),
			"disk_weibull_shape":             relErr(in.DiskWeibullShape, out.DiskWeibullShape),
			"disk_mtbf_hours":                relErr(in.DiskMTBFHours, out.DiskMTBFHours),
			"disk_replacements_per_week":     relErr(in.DiskReplacementsPerWeek, out.DiskReplacementsPerWeek),
		},
	}, nil
}

// PaperFull runs the whole paper in one shot from measured (synthetic) logs:
// generate -> analyze -> calibrate -> simulate -> round-trip.
func PaperFull(opts Options) (*PaperFullResult, error) {
	opts = opts.withDefaults()
	genCfg := loggen.ABEConfig()
	// Like abeLogs for the standalone tables: opts.Seed (default 1) seeds
	// the generator, so paper_full's Tables 1-4 match tableN runs with the
	// same options.
	genCfg.Seed = opts.Seed
	logs, err := loggen.Generate(genCfg)
	if err != nil {
		return nil, fmt.Errorf("paper_full: generating logs: %w", err)
	}
	// The ABE base supplies only the parameters logs cannot identify (RAID
	// geometry, OSS pair counts, controller rates); every log-identifiable
	// parameter is overridden by the calibration.
	cal, err := calibrate.CalibrateWith(logs, genCfg.Disks, abe.ABE())
	if err != nil {
		return nil, fmt.Errorf("paper_full: %w", err)
	}

	// Tables 1-5 render the exact analyses the calibration ran — the logs
	// are not re-analyzed.
	res := &PaperFullResult{
		Calibration: cal,
		Tables: []report.Table{
			table1FromReport(cal.Outages),
			table2FromDays(cal.Mounts),
			table3FromStats(cal.Jobs),
			table4FromReport(cal.Disks, cal.Population),
			table5FromCalibration(cal),
		},
	}

	// Figure 4/5 scaling sweep over the *calibrated* configuration.
	factors := Figure4ScaleFactors(opts.Quick)
	res.Sweep, err = sweep.Run(Figure4PointsFrom(cal.Config, opts.Seed, factors), opts.sanOptions())
	if err != nil {
		return nil, fmt.Errorf("paper_full: scaling sweep: %w", err)
	}
	res.Figure = figure4FromSweep(res.Sweep, factors)
	res.Figure.Title = "Figure 4: Availability and utility at scale, from the log-calibrated model"

	if res.RoundTrip, err = roundTrip(cal, genCfg); err != nil {
		return nil, err
	}
	return res, nil
}

// table5FromCalibration is the paper_full version of Table 5: the model
// parameters with their log-analysis provenance, instead of the hard-coded
// configuration constants Table5Parameters reports.
func table5FromCalibration(cal *calibrate.Calibration) report.Table {
	t := cal.Table()
	t.Title = "Table 5: simulation model parameters derived from log analysis"
	return t
}

// Render returns the tables, the scaling figure, and the round-trip summary
// as one text report.
func (r *PaperFullResult) Render() string {
	var b strings.Builder
	for _, t := range r.Tables {
		b.WriteString(t.Render())
		b.WriteByte('\n')
	}
	b.WriteString(r.Figure.Render())
	b.WriteByte('\n')
	rt := report.Table{
		Title:   "Round trip: rates re-derived from logs regenerated under the calibrated parameters",
		Headers: []string{"Rate", "Input", "Re-derived", "Relative error"},
	}
	in, out := r.RoundTrip.InputRates, r.RoundTrip.RederivedRates
	for _, row := range []struct {
		name    string
		in, out float64
	}{
		{"cfs_availability", in.CFSAvailability, out.CFSAvailability},
		{"outages_per_month", in.OutagesPerMonth, out.OutagesPerMonth},
		{"mean_outage_hours", in.MeanOutageHours, out.MeanOutageHours},
		{"jobs_per_hour", in.JobsPerHour, out.JobsPerHour},
		{"transient_job_failure_fraction", in.TransientJobFailureFraction, out.TransientJobFailureFraction},
		{"other_job_failure_fraction", in.OtherJobFailureFraction, out.OtherJobFailureFraction},
		{"disk_weibull_shape", in.DiskWeibullShape, out.DiskWeibullShape},
		{"disk_mtbf_hours", in.DiskMTBFHours, out.DiskMTBFHours},
		{"disk_replacements_per_week", in.DiskReplacementsPerWeek, out.DiskReplacementsPerWeek},
	} {
		rt.AddRow(row.name, fmt.Sprintf("%.4g", row.in), fmt.Sprintf("%.4g", row.out),
			fmt.Sprintf("%.1f%%", r.RoundTrip.RelativeError[row.name]*100))
	}
	b.WriteString(rt.Render())
	return b.String()
}

// paperFullReport extends the sweep's machine-readable report (schema in
// ROADMAP.md) with the calibration, the tables, and the round trip.
type paperFullReport struct {
	sweep.Report
	Calibration calibrate.Report `json:"calibration"`
	Tables      []report.Table   `json:"tables"`
	RoundTrip   RoundTrip        `json:"round_trip"`
}

// JSON returns the experiment as one JSON document: the sweep report's
// fields at the top level plus "calibration", "tables", and "round_trip"
// sections. Execution details (parallelism) are excluded, so the document is
// bit-identical however the sweep was scheduled.
func (r *PaperFullResult) JSON() (string, error) {
	return report.ToJSON(paperFullReport{
		Report:      r.Sweep.Report(),
		Calibration: r.Calibration.Report(),
		Tables:      r.Tables,
		RoundTrip:   r.RoundTrip,
	})
}
