// Package mutate exercises the nocompiledmutation rule.
package mutate

import "fixture/san"

// BuildAndMutate keeps mutating a model after compiling it; the compiled
// snapshot never sees the late places.
func BuildAndMutate() (*san.CompiledModel, error) {
	m := san.NewModel()
	m.AddPlace("up", 1)
	cm, err := san.Compile(m)
	if err != nil {
		return nil, err
	}
	m.AddPlace("late", 0) // want nocompiledmutation
	m.SetName("renamed")  // want nocompiledmutation
	return cm, nil
}

// StrictThenMutate: CompileStrict snapshots too.
func StrictThenMutate() error {
	m := san.NewModel()
	_, err := san.CompileStrict(m)
	if err != nil {
		return err
	}
	m.AddPlace("late", 0) // want nocompiledmutation
	return nil
}

// FreshModelAllowed compiles one model and then builds a different one;
// mutating the fresh model is fine.
func FreshModelAllowed() error {
	m := san.NewModel()
	if _, err := san.Compile(m); err != nil {
		return err
	}
	m2 := san.NewModel()
	m2.AddPlace("ok", 1)
	_, err := san.Compile(m2)
	return err
}

// BuildThenCompileAllowed is the intended order.
func BuildThenCompileAllowed() (*san.CompiledModel, error) {
	m := san.NewModel()
	m.AddPlace("up", 1)
	m.SetName("good")
	return san.Compile(m)
}

// Deprecated uses the package-level constructor, which recompiles per call.
func Deprecated() (*san.Simulator, error) {
	m := san.NewModel()
	return san.NewSimulator(m, 1) // want nocompiledmutation
}

// MethodAllowed uses the compiled model's method, which is the intended
// per-replication path.
func MethodAllowed() (*san.Simulator, error) {
	m := san.NewModel()
	cm, err := san.Compile(m)
	if err != nil {
		return nil, err
	}
	return cm.NewSimulator(1)
}
