package dist

import (
	"math"
	"sort"

	"repro/internal/rng"
)

// Empirical is the piecewise-linear distribution interpolating a measured
// sample — the bridge from log analysis (observed repair times, outage
// durations) back into the simulation models. Its quantile function linearly
// interpolates the order statistics (the "type 7" estimator), and sampling
// is the inverse-CDF transform of that interpolant, so an Empirical built
// from field data reproduces the data's quantiles exactly.
type Empirical struct {
	sorted []float64
	mean   float64
}

// NewEmpirical returns the empirical distribution over the given values,
// which must be non-empty, finite, and non-negative (delays). The input
// slice is copied.
func NewEmpirical(values []float64) (Empirical, error) {
	if len(values) == 0 {
		return Empirical{}, errInvalidf("empirical needs at least one value")
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	for _, v := range sorted {
		if err := checkFinite("empirical value", v); err != nil {
			return Empirical{}, err
		}
		if v < 0 {
			return Empirical{}, errInvalidf("empirical values must be >= 0, got %v", v)
		}
	}
	sort.Float64s(sorted)
	// The mean of the piecewise-linear interpolant is the trapezoidal
	// average of the order statistics, which matches Sample's expectation.
	mean := sorted[0]
	if n := len(sorted); n > 1 {
		sum := sorted[0] / 2
		for _, v := range sorted[1 : n-1] {
			sum += v
		}
		sum += sorted[n-1] / 2
		mean = sum / float64(n-1)
	}
	return Empirical{sorted: sorted, mean: mean}, nil
}

// N returns the number of underlying observations.
func (e Empirical) N() int { return len(e.sorted) }

// Sample draws by inverse transform through the interpolated quantile
// function.
func (e Empirical) Sample(s *rng.Stream) float64 {
	return e.Quantile(s.Float64())
}

// Mean returns the mean of the interpolated distribution.
func (e Empirical) Mean() float64 { return e.mean }

// Variance returns the variance of the piecewise-linear interpolant: an
// equal-weight mixture of uniform segments over consecutive order
// statistics, so E[X^2] is the average of the segment second moments
// (a^2+ab+b^2)/3 (which degenerates correctly for tied observations).
func (e Empirical) Variance() float64 {
	n := len(e.sorted)
	if n == 1 {
		return 0
	}
	var m2 float64
	for i := 0; i < n-1; i++ {
		a, b := e.sorted[i], e.sorted[i+1]
		m2 += (a*a + a*b + b*b) / 3
	}
	m2 /= float64(n - 1)
	return m2 - e.mean*e.mean
}

// ThirdMoment returns E[X^3] of the piecewise-linear interpolant: the
// average of the segment third moments (a^3+a^2b+ab^2+b^3)/4, the
// cancellation-free form of (b^4-a^4)/(4(b-a)).
func (e Empirical) ThirdMoment() float64 {
	n := len(e.sorted)
	if n == 1 {
		v := e.sorted[0]
		return v * v * v
	}
	var m3 float64
	for i := 0; i < n-1; i++ {
		a, b := e.sorted[i], e.sorted[i+1]
		m3 += (a*a*a + a*a*b + a*b*b + b*b*b) / 4
	}
	return m3 / float64(n-1)
}

// Quantile linearly interpolates the order statistics at rank (n-1)*p.
func (e Empirical) Quantile(p float64) float64 {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return math.NaN()
	}
	n := len(e.sorted)
	if n == 1 {
		return e.sorted[0]
	}
	h := float64(n-1) * p
	i := int(h)
	if i >= n-1 {
		return e.sorted[n-1]
	}
	frac := h - float64(i)
	return e.sorted[i] + frac*(e.sorted[i+1]-e.sorted[i])
}

// CDF inverts the interpolated quantile function: it returns the rank
// fraction of x within the sample, interpolating between adjacent order
// statistics.
func (e Empirical) CDF(x float64) float64 {
	n := len(e.sorted)
	if x < e.sorted[0] {
		return 0
	}
	if x >= e.sorted[n-1] {
		return 1
	}
	// First index with sorted[i] > x; x lies in [sorted[i-1], sorted[i]).
	i := sort.SearchFloat64s(e.sorted, x)
	for i < n && e.sorted[i] <= x {
		i++
	}
	lo, hi := e.sorted[i-1], e.sorted[i]
	frac := 0.0
	if hi > lo {
		frac = (x - lo) / (hi - lo)
	}
	return (float64(i-1) + frac) / float64(n-1)
}

// Name implements Distribution.
func (Empirical) Name() string { return "empirical" }

// Params implements Distribution.
func (e Empirical) Params() map[string]float64 {
	return map[string]float64{"n": float64(len(e.sorted)), "mean": e.mean}
}
