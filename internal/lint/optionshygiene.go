package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// optionsHygiene enforces that exported functions normalize a san.Options
// parameter — opts.Validate() or opts.WithDefaults() — before reading any
// of its fields. Reading a raw field first means zero-value defaults (no
// replications, zero confidence) silently steer a study. Methods declared
// on san.Options itself are exempt: they are the normalization.
func optionsHygiene(p *Package, sanPath string) []Finding {
	var findings []Finding
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if fd.Recv != nil && len(fd.Recv.List) == 1 && isOptionsType(p.Info.Types[fd.Recv.List[0].Type].Type, sanPath) {
				continue
			}
			if fd.Type.Params == nil {
				continue
			}
			for _, field := range fd.Type.Params.List {
				if !isOptionsType(p.Info.Types[field.Type].Type, sanPath) {
					continue
				}
				for _, name := range field.Names {
					obj := p.Info.ObjectOf(name)
					if obj == nil {
						continue
					}
					findings = append(findings, optionsParamHygiene(p, fd, obj)...)
				}
			}
		}
	}
	return findings
}

// isOptionsType reports whether t is san.Options or *san.Options.
func isOptionsType(t types.Type, sanPath string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == sanPath && obj.Name() == "Options"
}

// optionsParamHygiene flags the first field read of the options parameter
// if it precedes every Validate/WithDefaults call on it.
func optionsParamHygiene(p *Package, fd *ast.FuncDecl, param types.Object) []Finding {
	var firstRead *ast.SelectorExpr
	var normalizedAt token.Pos = -1
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || p.Info.ObjectOf(base) != param {
			return true
		}
		if s := p.Info.Selections[sel]; s != nil && s.Kind() == types.FieldVal {
			if firstRead == nil || sel.Pos() < firstRead.Pos() {
				firstRead = sel
			}
			return true
		}
		if sel.Sel.Name == "Validate" || sel.Sel.Name == "WithDefaults" {
			if normalizedAt < 0 || sel.Pos() < normalizedAt {
				normalizedAt = sel.Pos()
			}
		}
		return true
	})
	if firstRead == nil || (normalizedAt >= 0 && normalizedAt < firstRead.Pos()) {
		return nil
	}
	return []Finding{{
		Pos:     p.Fset.Position(firstRead.Pos()),
		Rule:    "optionshygiene",
		Message: "field " + firstRead.Sel.Name + " of san.Options read before Validate/WithDefaults; normalize the options first",
	}}
}
