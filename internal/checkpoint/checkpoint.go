// Package checkpoint extends the dependability analysis toward the paper's
// future work: coupling the file-system availability results to application
// performance. Petascale applications tolerate failures by writing periodic
// coordinated checkpoints through the cluster file system; the time spent
// checkpointing, the work lost to failures, and the time spent waiting out
// CFS outages together determine how much of the machine's capacity reaches
// science. The paper's introduction cites exactly this effect ("more than
// half the computation time would be spent checkpointing" on very large
// systems, after Long et al. / Oliner et al.); this package reproduces that
// analysis on top of the reproduced CFS model.
//
// The model is the standard first-order checkpoint/restart analysis with
// Daly's higher-order optimal interval, parameterized by the aggregate CFS
// write bandwidth (which scales with the number of OSS pairs) and the
// system's mean time between job-visible interrupts.
package checkpoint

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/abe"
)

// ErrBadParameters reports an invalid checkpoint-analysis configuration.
var ErrBadParameters = errors.New("checkpoint: invalid parameters")

// Params describes one checkpointed application running on the cluster.
type Params struct {
	// CheckpointBytes is the size of one coordinated checkpoint (application
	// state across all nodes).
	CheckpointBytes float64
	// BandwidthBytesPerSec is the aggregate sustained CFS write bandwidth
	// available for checkpointing.
	BandwidthBytesPerSec float64
	// MTBFHours is the mean time between job-visible interrupts (node,
	// network, or CFS failures that kill or stall the application).
	MTBFHours float64
	// RestartHours is the time to restart and re-read the last checkpoint
	// after an interrupt.
	RestartHours float64
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if !(p.CheckpointBytes > 0) || !(p.BandwidthBytesPerSec > 0) || !(p.MTBFHours > 0) || p.RestartHours < 0 {
		return fmt.Errorf("%w: %+v", ErrBadParameters, p)
	}
	return nil
}

// CheckpointHours returns δ, the time to write one checkpoint, in hours.
func (p Params) CheckpointHours() float64 {
	return p.CheckpointBytes / p.BandwidthBytesPerSec / 3600.0
}

// OptimalInterval returns Daly's higher-order estimate of the optimal
// compute time between checkpoints (hours):
//
//	τ_opt = sqrt(2δM) · [1 + 1/3·sqrt(δ/(2M)) + 1/9·(δ/(2M))] − δ   for δ < 2M
//	τ_opt = M                                                        otherwise
//
// where δ is the checkpoint write time and M the MTBF.
func (p Params) OptimalInterval() (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	delta := p.CheckpointHours()
	m := p.MTBFHours
	if delta >= 2*m {
		return m, nil
	}
	x := math.Sqrt(delta / (2 * m))
	tau := math.Sqrt(2*delta*m)*(1+x/3+x*x/9) - delta
	if tau <= 0 {
		tau = delta
	}
	return tau, nil
}

// Efficiency is the outcome of the checkpoint/restart analysis for one
// configuration.
type Efficiency struct {
	// OptimalIntervalHours is the compute time between checkpoints.
	OptimalIntervalHours float64
	// CheckpointHours is the time to write one checkpoint.
	CheckpointHours float64
	// CheckpointOverhead is the fraction of wall-clock time spent writing
	// checkpoints.
	CheckpointOverhead float64
	// ReworkOverhead is the fraction lost to recomputing work destroyed by
	// interrupts (half an interval on average, plus the restart time).
	ReworkOverhead float64
	// Utilization is the fraction of wall-clock time doing useful
	// computation: 1 - CheckpointOverhead - ReworkOverhead.
	Utilization float64
}

// Analyze runs the first-order checkpoint/restart analysis at the optimal
// interval.
func Analyze(p Params) (Efficiency, error) {
	tau, err := p.OptimalInterval()
	if err != nil {
		return Efficiency{}, err
	}
	delta := p.CheckpointHours()
	m := p.MTBFHours

	// Fraction of each checkpoint period spent writing the checkpoint.
	checkpointOverhead := delta / (tau + delta)
	// Interrupts arrive at rate 1/M; each destroys on average half an
	// interval of work plus the restart time.
	reworkPerInterrupt := (tau+delta)/2 + p.RestartHours
	reworkOverhead := reworkPerInterrupt / m
	if reworkOverhead > 1 {
		reworkOverhead = 1
	}
	util := 1 - checkpointOverhead - reworkOverhead
	if util < 0 {
		util = 0
	}
	return Efficiency{
		OptimalIntervalHours: tau,
		CheckpointHours:      delta,
		CheckpointOverhead:   checkpointOverhead,
		ReworkOverhead:       reworkOverhead,
		Utilization:          util,
	}, nil
}

// ---------------------------------------------------------------------------
// Coupling to the CFS model
// ---------------------------------------------------------------------------

// ClusterParams derives checkpoint-analysis parameters from a cluster
// configuration and its measured dependability.
type ClusterParams struct {
	// MemoryPerNodeBytes is the application state per compute node that must
	// be checkpointed (ABE nodes have 8-16 GB of RAM; a typical checkpoint
	// writes a large fraction of it).
	MemoryPerNodeBytes float64
	// PerOSSBandwidthBytesPerSec is the sustained write bandwidth of one OSS
	// fail-over pair into its storage.
	PerOSSBandwidthBytesPerSec float64
	// NodeMTBFHours is the per-compute-node MTBF for failures that kill the
	// job (independent of the CFS).
	NodeMTBFHours float64
	// RestartHours is the restart/reload time after an interrupt.
	RestartHours float64
}

// DefaultClusterParams returns parameters representative of the ABE era:
// half of each node's 8 GB of RAM checkpointed, ~500 MB/s sustained per OSS
// pair, a per-node MTBF of 15 years (job-killing failures only), and a
// 0.25 h restart.
func DefaultClusterParams() ClusterParams {
	return ClusterParams{
		MemoryPerNodeBytes:         4 * 1 << 30,
		PerOSSBandwidthBytesPerSec: 500 * 1 << 20,
		NodeMTBFHours:              15 * 8760,
		RestartHours:               0.25,
	}
}

// Validate checks the parameters.
func (cp ClusterParams) Validate() error {
	if !(cp.MemoryPerNodeBytes > 0) || !(cp.PerOSSBandwidthBytesPerSec > 0) || !(cp.NodeMTBFHours > 0) || cp.RestartHours < 0 {
		return fmt.Errorf("%w: %+v", ErrBadParameters, cp)
	}
	return nil
}

// ForCluster derives Params for an application spanning every compute node
// of cfg, with the CFS contribution to the interrupt rate taken from the
// measured CFS availability (an unavailable CFS stalls or kills the job the
// same way a node crash does, because the application cannot write its
// checkpoint or its output).
func ForCluster(cfg abe.Config, measures abe.Measures, cp ClusterParams) (Params, error) {
	if err := cp.Validate(); err != nil {
		return Params{}, err
	}
	if err := cfg.Validate(); err != nil {
		return Params{}, err
	}
	nodes := float64(cfg.Workload.ComputeNodes)
	checkpointBytes := cp.MemoryPerNodeBytes * nodes
	bandwidth := cp.PerOSSBandwidthBytesPerSec * float64(cfg.ScratchOSSPairs)

	// Interrupt rate: node failures across the whole job plus CFS-visible
	// outages. The CFS outage rate is approximated from its unavailability
	// and the mean outage duration implied by the model's repair times.
	nodeRate := nodes / cp.NodeMTBFHours
	cfsUnavail := 1 - measures.CFSAvailability
	meanOutageHours := (cfg.OSS.HWRepairLoHours + cfg.OSS.HWRepairHiHours) / 4 // outage ends at the first repair of the pair
	if meanOutageHours <= 0 {
		meanOutageHours = 12
	}
	cfsRate := 0.0
	if cfsUnavail > 0 {
		cfsRate = cfsUnavail / meanOutageHours
	}
	totalRate := nodeRate + cfsRate
	if totalRate <= 0 {
		return Params{}, fmt.Errorf("%w: non-positive interrupt rate", ErrBadParameters)
	}
	return Params{
		CheckpointBytes:      checkpointBytes,
		BandwidthBytesPerSec: bandwidth,
		MTBFHours:            1 / totalRate,
		RestartHours:         cp.RestartHours,
	}, nil
}
