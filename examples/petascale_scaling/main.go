// The petascale_scaling example reproduces the paper's headline scaling
// study (Figure 4): it evaluates the ABE cluster-file-system design at its
// current scale and as it is scaled toward a petaflop-petabyte system,
// reporting storage availability, CFS availability, cluster utility, and the
// gain from a standby-spare OSS at each scale.
//
// All twelve design points (six scale factors, with and without the spare
// OSS) run as one sharded sweep over a shared worker pool — models are
// composed once per point, simulators are reused across replications, and
// the slow petascale points overlap with the fast ABE-scale ones. Every
// point shares one study seed (common random numbers), so the spare-OSS
// column is directly comparable to the base one. Pass -json to emit the
// sweep's machine-readable report instead of the text table.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/abe"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/san"
	"repro/internal/sweep"
)

func main() {
	log.SetFlags(0)
	jsonOut := flag.Bool("json", false, "emit the machine-readable sweep report instead of the text table")
	flag.Parse()

	opts := san.Options{
		Mission:      8760,
		Replications: 40,
		Seed:         2008,
	}

	factors := experiments.Figure4ScaleFactors(false)
	res, err := sweep.Run(experiments.Figure4Points(opts.Seed, factors), opts)
	if err != nil {
		log.Fatal(err)
	}

	if *jsonOut {
		out, err := res.JSON()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(out)
		return
	}

	fmt.Println("Scaling the ABE CFS design toward petascale (Figure 4 reproduction)")
	fmt.Println()
	fmt.Printf("%-8s  %-12s  %-12s  %-10s  %-12s  %-12s\n",
		"scale", "storage", "CFS avail", "CU", "CFS+spare", "disks/week")

	for i, factor := range factors {
		base := res.Points[2*i].Measures
		spare := res.Points[2*i+1].Measures
		fmt.Printf("%-8.0fx %-12.5f  %-12.4f  %-10.4f  %-12.4f  %-12.2f\n",
			factor, base.StorageAvailability, base.CFSAvailability, base.ClusterUtility,
			spare.CFSAvailability, base.DiskReplacementsPerWeek)
	}
	fmt.Printf("\n%d points, %d replications each, %d simulated events total\n",
		len(res.Points), res.Options.Replications, res.TotalEvents)

	fmt.Println()
	rec, err := core.RecommendSpareOSS(abe.Petascale(), opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("design recommendation:", rec.Finding)
}
