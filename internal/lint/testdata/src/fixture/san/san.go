// Package san is a miniature stand-in for the real SAN package, just large
// enough for the lint rules to resolve Compile, Options, and the deprecated
// package-level NewSimulator against it.
package san

import "errors"

// Model is a mutable model builder.
type Model struct{ places int }

// NewModel returns an empty model.
func NewModel() *Model { return &Model{} }

// AddPlace adds a place.
func (m *Model) AddPlace(name string, initial int) { m.places++ }

// SetName renames the model.
func (m *Model) SetName(name string) {}

// CompiledModel is an immutable compiled snapshot.
type CompiledModel struct{}

// Compile snapshots the model.
func Compile(m *Model) (*CompiledModel, error) {
	if m == nil {
		return nil, errors.New("nil model")
	}
	return &CompiledModel{}, nil
}

// CompileStrict compiles and analyzes.
func CompileStrict(m *Model) (*CompiledModel, error) { return Compile(m) }

// Simulator runs a compiled model.
type Simulator struct{}

// NewSimulator returns a simulator for the compiled model.
func (cm *CompiledModel) NewSimulator(seed int64) (*Simulator, error) { return &Simulator{}, nil }

// NewSimulator is the deprecated package-level constructor.
//
// Deprecated: compile once, then use CompiledModel.NewSimulator.
func NewSimulator(m *Model, seed int64) (*Simulator, error) {
	cm, err := Compile(m)
	if err != nil {
		return nil, err
	}
	return cm.NewSimulator(seed)
}

// Options configures a study.
type Options struct {
	Mission      float64
	Replications int
}

// Validate rejects out-of-range options.
func (o Options) Validate() error {
	if o.Replications < 0 {
		return errors.New("negative replications")
	}
	return nil
}

// WithDefaults fills zero fields.
func (o Options) WithDefaults() Options {
	if o.Replications == 0 {
		o.Replications = 1
	}
	return o
}
