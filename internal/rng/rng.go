// Package rng provides deterministic, splittable pseudo-random number
// streams for the simulation engine.
//
// The package implements the xoshiro256** generator seeded through
// SplitMix64. Each model component draws from its own Stream so that
// experiments are reproducible and so that changing the event ordering in
// one component does not perturb the random sequence consumed by another
// (common random numbers across design alternatives).
package rng

import (
	"errors"
	"fmt"
	"math"
)

// golden is the 64-bit golden-ratio increment used by SplitMix64.
const golden = 0x9e3779b97f4a7c15

// Stream is a single pseudo-random number stream. It is NOT safe for
// concurrent use; create one Stream per goroutine or per model component.
//
// The zero value is not usable; construct streams with NewStream or
// Stream.Split.
type Stream struct {
	state [4]uint64
	label string
}

// ErrDegenerateSeed is returned when seeding produces an all-zero state,
// which xoshiro256** cannot escape.
var ErrDegenerateSeed = errors.New("rng: degenerate all-zero state")

// splitMix64 advances the SplitMix64 state and returns the next value.
func splitMix64(state *uint64) uint64 {
	*state += golden
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewStream returns a Stream seeded from seed. Distinct seeds yield
// statistically independent sequences. The label is used only for
// diagnostics (Stream.String).
func NewStream(seed uint64, label string) *Stream {
	s := &Stream{label: label}
	sm := seed
	for i := range s.state {
		s.state[i] = splitMix64(&sm)
	}
	// SplitMix64 cannot produce four consecutive zeros from any seed, but we
	// keep the guard so that manual state injection cannot wedge the stream.
	if s.state[0]|s.state[1]|s.state[2]|s.state[3] == 0 {
		s.state[0] = golden
	}
	return s
}

// Split derives a new, statistically independent Stream from s without
// disturbing the sequence that s itself will produce. It is the mechanism by
// which a model hands private streams to each of its components.
func (s *Stream) Split(label string) *Stream {
	// Derive the child seed from a dedicated draw so parent and child do not
	// share any future state.
	seed := s.Uint64() ^ golden
	child := NewStream(seed, label)
	return child
}

// String identifies the stream for diagnostics.
func (s *Stream) String() string {
	return fmt.Sprintf("rng.Stream(%s)", s.label)
}

// Label returns the diagnostic label supplied at construction.
func (s *Stream) Label() string { return s.label }

func rotl(x uint64, k uint) uint64 {
	return (x << k) | (x >> (64 - k))
}

// Uint64 returns the next 64 uniformly distributed bits (xoshiro256**).
func (s *Stream) Uint64() uint64 {
	result := rotl(s.state[1]*5, 7) * 9

	t := s.state[1] << 17
	s.state[2] ^= s.state[0]
	s.state[3] ^= s.state[1]
	s.state[1] ^= s.state[2]
	s.state[0] ^= s.state[3]
	s.state[2] ^= t
	s.state[3] = rotl(s.state[3], 45)

	return result
}

// Int63 returns a non-negative 63-bit integer. It exists so a Stream can be
// used anywhere a math/rand.Source is accepted.
func (s *Stream) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Seed is present to satisfy math/rand.Source. Reseeding mid-run would break
// reproducibility guarantees, so it re-derives the full state from seed.
func (s *Stream) Seed(seed int64) {
	ns := NewStream(uint64(seed), s.label)
	s.state = ns.state
}

// Float64 returns a uniform value in the half-open interval [0, 1) with 53
// bits of precision.
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// OpenFloat64 returns a uniform value in the open interval (0, 1). It is the
// right primitive for inverse-transform sampling of distributions whose
// quantile function diverges at 0 or 1 (e.g. the exponential at u=1).
func (s *Stream) OpenFloat64() float64 {
	for {
		u := s.Float64()
		if u > 0 && u < 1 {
			return u
		}
	}
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0, mirroring
// math/rand.Intn.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(s.boundedUint64(uint64(n)))
}

// boundedUint64 returns a uniform value in [0, bound) using Lemire's
// nearly-divisionless rejection method.
func (s *Stream) boundedUint64(bound uint64) uint64 {
	for {
		v := s.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32

	t := aLo * bLo
	w0 := t & mask32
	k := t >> 32

	t = aHi*bLo + k
	w1 := t & mask32
	w2 := t >> 32

	t = aLo*bHi + w1
	k = t >> 32

	hi = aHi*bHi + w2 + k
	lo = (t << 32) | w0
	return hi, lo
}

// Bool returns true with probability p. Values of p outside [0,1] are
// clamped, so Bool(1.2) is always true and Bool(-3) is always false.
func (s *Stream) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Normal returns a draw from the standard normal distribution using the
// Marsaglia polar method.
func (s *Stream) Normal() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q == 0 || q >= 1 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(q)/q)
	}
}

// Perm returns a random permutation of [0, n) using Fisher-Yates.
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// State exposes the raw generator state for checkpointing a simulation run.
func (s *Stream) State() [4]uint64 { return s.state }

// Restore overwrites the generator state, e.g. when resuming a checkpointed
// run. It returns ErrDegenerateSeed when the state is all zero.
func (s *Stream) Restore(state [4]uint64) error {
	if state[0]|state[1]|state[2]|state[3] == 0 {
		return ErrDegenerateSeed
	}
	s.state = state
	return nil
}
