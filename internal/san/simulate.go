package san

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/des"
	"repro/internal/rng"
	"repro/internal/stats"
)

// marking is the simulator's mutable token vector. It records which places
// changed during an activity completion so that only dependent activities
// need to be re-evaluated.
type marking struct {
	tokens  []int
	touched []int  // indices of places changed since last clearTouched
	dirty   []bool // per-place "already recorded as touched" flag
}

func newMarking(initial []int) *marking {
	tokens := make([]int, len(initial))
	copy(tokens, initial)
	return &marking{tokens: tokens, dirty: make([]bool, len(initial))}
}

// Tokens implements MarkingReader.
func (m *marking) Tokens(p *Place) int { return m.tokens[p.index] }

// SetTokens implements MarkingWriter.
func (m *marking) SetTokens(p *Place, n int) {
	if n < 0 {
		panic(fmt.Errorf("%w: place %q set to %d", ErrNegativeTokens, p.name, n))
	}
	if m.tokens[p.index] != n {
		m.tokens[p.index] = n
		m.touch(p.index)
	}
}

// Add implements MarkingWriter.
func (m *marking) Add(p *Place, delta int) {
	m.SetTokens(p, m.tokens[p.index]+delta)
}

func (m *marking) touch(idx int) {
	if !m.dirty[idx] {
		m.dirty[idx] = true
		m.touched = append(m.touched, idx)
	}
}

func (m *marking) clearTouched() {
	for _, idx := range m.touched {
		m.dirty[idx] = false
	}
	m.touched = m.touched[:0]
}

// Result holds the reward values of a single replication.
type Result struct {
	// Rewards maps reward-variable name to its value for this replication.
	Rewards map[string]float64
	// Events is the number of activity completions executed.
	Events uint64
	// FinalTime is the simulation end time (the mission time).
	FinalTime float64
}

// Simulator runs terminating simulations of a SAN model. It is a light
// per-worker handle over a shared, immutable CompiledModel: all structure
// and derived indexes live on the compiled model, so constructing a
// Simulator from one (CompiledModel.NewSimulator) is O(activities) — just
// the per-simulator scratch — rather than the O(model) validation and index
// derivation the package-level NewSimulator shim performs.
type Simulator struct {
	cm     *CompiledModel
	stream *rng.Stream

	// seenGeneration/currentGeneration implement an allocation-free "visited
	// this event" set over activities for reconcile.
	seenGeneration    []uint64
	currentGeneration uint64

	// maxInstFirings bounds consecutive instantaneous completions at one
	// time instant to detect ill-formed models (vanishing-marking loops).
	maxInstFirings int
}

// impulseBinding couples a reward index with the impulse function to apply.
type impulseBinding struct {
	rewardIndex int
	fn          ImpulseFunc
}

// ErrUnstableModel reports a model that fires instantaneous activities in an
// unbounded loop without time advancing.
var ErrUnstableModel = errors.New("san: instantaneous activity loop (unstable model)")

// NewSimulator validates the model and reward variables and returns a
// simulator drawing randomness from stream. It is the compatibility shim
// over the compile layer: every call pays a full Compile. Callers that run
// many replications (or share one model across workers) should Compile once
// and use CompiledModel.NewSimulator instead.
func NewSimulator(model *Model, rewards []RewardVariable, stream *rng.Stream) (*Simulator, error) {
	cm, err := Compile(model, rewards)
	if err != nil {
		return nil, err
	}
	return cm.NewSimulator(stream)
}

// Reset prepares the simulator to run another independent replication
// drawing randomness from stream. All per-run state lives in the run itself,
// so Reset only swaps the random stream; the compiled model — which depends
// solely on the immutable model and reward variables — is kept, making
// Reset+Run much cheaper than constructing a new Simulator for every
// replication of a large composed model.
func (s *Simulator) Reset(stream *rng.Stream) error {
	if stream == nil {
		return errors.New("san: nil random stream")
	}
	s.stream = stream
	return nil
}

// Compiled returns the compiled model the simulator runs.
func (s *Simulator) Compiled() *CompiledModel { return s.cm }

// runState is the per-replication mutable state.
type runState struct {
	mark      *marking
	engine    *des.Engine
	scheduled []*des.Event // per-activity pending completion (nil if not scheduled)
	// handlers caches the per-activity completion callback so rescheduling —
	// which reactivating marking-dependent activities do on every rate
	// change — does not allocate a fresh closure each time.
	handlers []des.Handler

	// Reward accumulation.
	rateAccum []float64 // integral of rate reward so far
	lastRate  []float64 // rate value since last marking change
	lastTime  float64
	impulses  []float64

	// err records a fatal model error (e.g. ErrUnstableModel) raised inside an
	// event handler, where it cannot be returned directly; Run surfaces it.
	err error

	// monitor, when non-nil, observes the importance function after every
	// completion; crossed latches the first threshold upcrossing.
	monitor *Monitor
	crossed bool
}

func (s *Simulator) newRunState() *runState {
	return &runState{
		mark:      newMarking(s.cm.initial),
		engine:    des.NewEngine(),
		scheduled: make([]*des.Event, s.cm.model.NumActivities()),
		handlers:  make([]des.Handler, s.cm.model.NumActivities()),
		rateAccum: make([]float64, len(s.cm.rewards)),
		lastRate:  make([]float64, len(s.cm.rewards)),
		impulses:  make([]float64, len(s.cm.rewards)),
	}
}

// handlerFor returns the cached completion callback of a for this run.
func (s *Simulator) handlerFor(st *runState, a *Activity) des.Handler {
	h := st.handlers[a.index]
	if h == nil {
		h = func(now float64) {
			st.scheduled[a.index] = nil
			s.complete(st, a, now)
		}
		st.handlers[a.index] = h
	}
	return h
}

// finishRun closes out reward integration at the mission end and assembles
// the replication result.
func (s *Simulator) finishRun(st *runState, mission float64) Result {
	s.integrateRates(st, mission)
	res := Result{Rewards: make(map[string]float64, len(s.cm.rewards)), Events: st.engine.Fired(), FinalTime: mission}
	for i, rv := range s.cm.rewards {
		switch rv.Mode {
		case TimeAveraged:
			res.Rewards[rv.Name] = (st.rateAccum[i] + st.impulses[i]) / mission
		case Accumulated:
			res.Rewards[rv.Name] = st.rateAccum[i] + st.impulses[i]
		case InstantAtEnd:
			if rv.Rate != nil {
				res.Rewards[rv.Name] = rv.Rate(st.mark)
			}
		}
	}
	return res
}

// Run executes a single terminating replication over [0, mission] hours and
// returns the reward values.
func (s *Simulator) Run(mission float64) (Result, error) {
	return s.RunMonitored(mission, nil)
}

// RunMonitored executes a single terminating replication like Run, observing
// mon (if non-nil) after initialization and after every activity completion.
// Rare-event drivers use the monitor to detect importance-threshold
// crossings and to snapshot the trajectory state at the crossing.
func (s *Simulator) RunMonitored(mission float64, mon *Monitor) (Result, error) {
	if !(mission > 0) || math.IsInf(mission, 0) || math.IsNaN(mission) {
		return Result{}, fmt.Errorf("san: invalid mission time %v", mission)
	}
	st := s.newRunState()
	st.monitor = mon

	// Resolve initial instantaneous activities, then schedule enabled timed
	// activities, then capture initial reward rates.
	if err := s.fireInstantaneous(st); err != nil {
		return Result{}, err
	}
	for _, a := range s.cm.model.activities {
		s.refreshActivity(st, a)
	}
	s.snapshotRates(st)
	// The initial marking may already sit at or above the threshold. Engine.Run
	// clears the stop flag on entry, so an absorbing crossing at t=0 must skip
	// the run rather than rely on observe's Stop call.
	s.observe(st, 0)

	if !(st.crossed && mon.StopOnCross) {
		st.engine.Run(mission)
	}
	if st.err != nil {
		return Result{}, st.err
	}
	return s.finishRun(st, mission), nil
}

// snapshotRates records the current reward rates so that the next
// integration step uses the post-change values.
func (s *Simulator) snapshotRates(st *runState) {
	for i, rv := range s.cm.rewards {
		if rv.Rate != nil {
			st.lastRate[i] = rv.Rate(st.mark)
		}
	}
}

// integrateRates advances the rate-reward integrals from st.lastTime to now.
func (s *Simulator) integrateRates(st *runState, now float64) {
	dt := now - st.lastTime
	if dt > 0 {
		for i := range s.cm.rewards {
			st.rateAccum[i] += st.lastRate[i] * dt
		}
		st.lastTime = now
	}
}

// refreshActivity reconciles the scheduling state of a single activity with
// the current marking: scheduling a completion if it became enabled,
// canceling if it became disabled, or resampling if reactivation is on.
func (s *Simulator) refreshActivity(st *runState, a *Activity) {
	if a.kind != Timed {
		return
	}
	enabled := a.enabled(st.mark)
	pending := st.scheduled[a.index]
	switch {
	case enabled && pending == nil:
		s.scheduleCompletion(st, a)
	case !enabled && pending != nil:
		st.engine.Cancel(pending)
		st.scheduled[a.index] = nil
	case enabled && pending != nil && a.reactivate:
		st.engine.Cancel(pending)
		st.scheduled[a.index] = nil
		s.scheduleCompletion(st, a)
	}
}

func (s *Simulator) scheduleCompletion(st *runState, a *Activity) {
	d := a.delay(st.mark)
	delay := d.Sample(s.stream)
	if delay < 0 || math.IsNaN(delay) {
		delay = 0
	}
	ev, err := st.engine.ScheduleAfter(delay, s.handlerFor(st, a))
	if err != nil {
		// ScheduleAfter only fails for NaN/negative times, which the clamp
		// above prevents; treat any residual failure as a disabled activity.
		return
	}
	st.scheduled[a.index] = ev
}

// scheduleCompletionAt registers a pending completion of a at the absolute
// time t. It is the snapshot-restore path: the delay was already sampled by
// the trajectory the snapshot was taken from, so no randomness is consumed.
func (s *Simulator) scheduleCompletionAt(st *runState, a *Activity, t float64) error {
	ev, err := st.engine.Schedule(t, s.handlerFor(st, a))
	if err != nil {
		return err
	}
	st.scheduled[a.index] = ev
	return nil
}

// complete fires activity a at time now: integrates rewards up to now,
// applies the marking change, earns impulse rewards, and reconciles the
// activities whose enabling may have changed.
func (s *Simulator) complete(st *runState, a *Activity, now float64) {
	// A timed activity may have been disabled and re-enabled between
	// scheduling and firing only via Cancel, so reaching here means it is
	// still enabled; still, guard against stale enabling caused by gate
	// functions that mutate undeclared places.
	if !a.enabled(st.mark) {
		s.refreshActivity(st, a)
		return
	}
	s.integrateRates(st, now)
	s.fire(st, a)

	// Earn impulse rewards for this completion.
	for _, ib := range s.cm.impulsesByActivity[a.index] {
		st.impulses[ib.rewardIndex] += ib.fn(st.mark)
	}

	if err := s.fireInstantaneous(st); err != nil {
		// Record the instability and stop the run; Run returns the error to
		// its caller instead of silently delivering truncated-run rewards.
		st.err = err
		st.engine.Stop()
		return
	}
	changed := len(st.mark.touched) > 0
	s.currentGeneration++
	gen := s.currentGeneration
	s.reconcile(st, gen)
	// The completed activity may still (or again) be enabled — e.g. a source
	// activity with no input arcs — and is not necessarily covered by the
	// dependency index, so reconcile it explicitly. The generation check
	// skips the duplicate when reconcile already refreshed it, which for
	// reactivating aggregate activities (the lumped hot path) would
	// otherwise cancel and resample the same completion twice per firing.
	if s.seenGeneration[a.index] != gen {
		s.seenGeneration[a.index] = gen
		s.refreshActivity(st, a)
	}
	// Reward rates are functions of the marking alone, so a completion that
	// changed nothing (e.g. a pure impulse source) cannot have moved them.
	if changed {
		s.snapshotRates(st)
	}
	s.observe(st, now)
}

// observe evaluates the monitor's importance function against its threshold
// after a state change at time now, firing the crossing callback on the
// first upcrossing.
func (s *Simulator) observe(st *runState, now float64) {
	mon := st.monitor
	if mon == nil || st.crossed || mon.Importance == nil {
		return
	}
	if mon.Importance(st.mark) < mon.Threshold {
		return
	}
	st.crossed = true
	if mon.OnCross != nil {
		mon.OnCross(now, s.snapshot(st, now))
	}
	if mon.StopOnCross {
		st.engine.Stop()
	}
}

// fire applies the marking transformation of a single activity completion.
func (s *Simulator) fire(st *runState, a *Activity) {
	// Input side: remove tokens, run input-gate transformations.
	for _, arc := range a.inputArcs {
		st.mark.Add(arc.Place, -arc.Mult)
	}
	for _, g := range a.inputGates {
		if g.Transform != nil {
			g.Transform(st.mark)
		}
	}
	// Select a case.
	c := s.selectCase(st, a)
	if c != nil {
		for _, arc := range c.OutputArcs {
			st.mark.Add(arc.Place, arc.Mult)
		}
		for _, og := range c.OutputGates {
			if og.Transform != nil {
				og.Transform(st.mark)
			}
		}
	}
}

// selectCase picks a probabilistic case of a. Activities without cases
// return nil; a single case is returned directly.
//
// Explicit (marking-dependent) probabilities cannot be checked at model
// validation time, so selection is defensive against ill-formed values:
// negative probabilities are clamped to 0, and when the explicit mass does
// not sum to 1 — over-unity, or under-unity with no nil-probability case to
// absorb the leftovers — the draw is scaled to the total mass, degrading
// gracefully to selection by relative weight instead of silently starving
// or inflating the tail cases.
func (s *Simulator) selectCase(st *runState, a *Activity) *Case {
	switch len(a.cases) {
	case 0:
		return nil
	case 1:
		return &a.cases[0]
	}
	// Cases with nil probability share the mass left over by explicit ones.
	var explicit float64
	nilCount := 0
	for _, c := range a.cases {
		if c.Probability != nil {
			explicit += math.Max(0, c.Probability(st.mark))
		} else {
			nilCount++
		}
	}
	remainder := math.Max(0, 1-explicit)
	// Total selectable mass: 1 for well-formed models (the scaling below is
	// then a no-op up to float rounding), the explicit sum when it exceeds 1,
	// and — with no nil case to absorb the leftover — the explicit sum also
	// when it falls short of 1, so the last case is not silently inflated.
	total := math.Max(1, explicit)
	if nilCount == 0 {
		total = explicit
	}
	u := s.stream.Float64() * total
	cum := 0.0
	for i := range a.cases {
		p := remainder / float64(maxInt(nilCount, 1))
		if a.cases[i].Probability != nil {
			p = math.Max(0, a.cases[i].Probability(st.mark))
		}
		cum += p
		if u < cum {
			return &a.cases[i]
		}
	}
	return &a.cases[len(a.cases)-1]
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// fireInstantaneous repeatedly fires enabled instantaneous activities until
// none remain enabled, returning ErrUnstableModel if the loop does not
// terminate within the configured bound.
func (s *Simulator) fireInstantaneous(st *runState) error {
	if len(s.cm.instantaneous) == 0 {
		return nil
	}
	for iter := 0; ; iter++ {
		if iter > s.maxInstFirings {
			return fmt.Errorf("%w after %d firings", ErrUnstableModel, iter)
		}
		fired := false
		for _, a := range s.cm.instantaneous {
			if a.enabled(st.mark) {
				s.fire(st, a)
				for _, ib := range s.cm.impulsesByActivity[a.index] {
					st.impulses[ib.rewardIndex] += ib.fn(st.mark)
				}
				fired = true
			}
		}
		if !fired {
			return nil
		}
	}
}

// reconcile refreshes the scheduling state of every activity that depends on
// a place whose marking changed during the last completion, marking each as
// visited in generation gen (allocated by the caller, who may use it to
// avoid refreshing the completed activity twice).
func (s *Simulator) reconcile(st *runState, gen uint64) {
	if len(st.mark.touched) == 0 {
		return
	}
	for _, idx := range st.mark.touched {
		for _, a := range s.cm.dependents[idx] {
			if s.seenGeneration[a.index] != gen {
				s.seenGeneration[a.index] = gen
				s.refreshActivity(st, a)
			}
		}
	}
	st.mark.clearTouched()
}

// ---------------------------------------------------------------------------
// Replication runner
// ---------------------------------------------------------------------------

// Options configures a replicated terminating simulation study.
//
// The zero value of every field means "use the default"; any other value is
// taken literally and must be sensible — Validate rejects nonsense (negative
// mission times, one replication, confidence levels at or above 1) instead of
// silently remapping it.
type Options struct {
	// Mission is the length of each replication in hours. Zero means the
	// default of 8760 (one year).
	Mission float64
	// Replications is the number of independent replications. Zero means the
	// default of 100; a study needs at least 2.
	Replications int
	// Confidence is the confidence level for reported intervals, in (0, 1).
	// Zero means the default of 0.95, matching the paper.
	Confidence float64
	// Seed seeds the master random stream. Zero means the default seed 1, so
	// that the zero Options value is fully specified; pass any nonzero seed
	// for a different reproducible study.
	Seed uint64
	// Parallelism is the number of worker goroutines. Zero means the default
	// of GOMAXPROCS.
	Parallelism int
	// PHFitTolerance, when positive, opts a study into the approximate
	// phase-type fitting solver tier: after exact expansion fails, the sweep
	// engine may adopt fitted surrogates (FitPhases) whose certified CDF
	// distance bounds stay within this tolerance, labeling every such answer
	// as approximate with the per-activity bounds. Zero (the default) keeps
	// the tier off: refused points fall back to simulation. Must be in
	// [0, 1); there is no non-zero default because adopting an approximation
	// is the caller's explicit decision.
	PHFitTolerance float64
}

// Validate rejects option values that are neither a zero "use the default"
// marker nor a usable setting. RunReplications (and the sweep engine built on
// it) call Validate before applying defaults, so a negative mission or a
// 99.9% confidence typo fails loudly instead of producing misbehaving
// studies.
func (o Options) Validate() error {
	if o.Mission < 0 || math.IsNaN(o.Mission) || math.IsInf(o.Mission, 0) {
		return fmt.Errorf("san: invalid mission time %v (zero means the one-year default)", o.Mission)
	}
	if o.Replications < 0 || o.Replications == 1 {
		return fmt.Errorf("san: invalid replication count %d: a study needs at least 2 (zero means the default of 100)", o.Replications)
	}
	if o.Confidence < 0 || o.Confidence >= 1 || math.IsNaN(o.Confidence) {
		return fmt.Errorf("san: confidence %v outside (0,1) (zero means the default 0.95)", o.Confidence)
	}
	if o.Parallelism < 0 {
		return fmt.Errorf("san: negative parallelism %d (zero means GOMAXPROCS)", o.Parallelism)
	}
	if o.PHFitTolerance < 0 || o.PHFitTolerance >= 1 || math.IsNaN(o.PHFitTolerance) {
		return fmt.Errorf("san: phase-fit tolerance %v outside [0,1) (zero keeps the approximate tier off)", o.PHFitTolerance)
	}
	return nil
}

// WithDefaults returns a copy of the options with every zero field replaced
// by its documented default. It does not validate; callers that accept
// user-supplied options should call Validate first.
func (o Options) WithDefaults() Options {
	if o.Mission == 0 {
		o.Mission = 8760
	}
	if o.Replications == 0 {
		o.Replications = 100
	}
	if o.Confidence == 0 {
		o.Confidence = 0.95
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Parallelism == 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// StudyResult aggregates reward estimates across replications.
type StudyResult struct {
	// Summaries maps reward names to their cross-replication summaries.
	Summaries map[string]*stats.Summary
	// Options echoes the effective options used.
	Options Options
	// TotalEvents is the number of activity completions across all
	// replications.
	TotalEvents uint64
}

// NewStudyResult returns an empty study with one summary per reward variable
// and the given (effective) options. Replication results are folded in with
// Add; callers that run replications themselves (the sweep engine) use this
// together with ReplicationSeeds so their reductions are bit-identical to
// RunReplications.
func NewStudyResult(rewards []RewardVariable, opts Options) *StudyResult {
	r := &StudyResult{Summaries: make(map[string]*stats.Summary, len(rewards)), Options: opts}
	for _, rv := range rewards {
		r.Summaries[rv.Name] = stats.NewSummary()
	}
	return r
}

// Add folds one replication result into the study. Welford accumulation in
// stats.Summary is order-sensitive in floating point, so callers must Add
// results in replication-index order to keep studies bit-identical across
// Parallelism settings.
func (r *StudyResult) Add(res Result) {
	r.TotalEvents += res.Events
	// Each reward folds into its own independent Summary, so the visit
	// order across names cannot affect any accumulated value.
	for name, value := range res.Rewards { //lint:sorted
		if s, ok := r.Summaries[name]; ok {
			s.Add(value)
		}
	}
}

// Interval returns the confidence interval of the named reward at the
// study's confidence level.
func (r *StudyResult) Interval(reward string) (stats.Interval, error) {
	s, ok := r.Summaries[reward]
	if !ok {
		return stats.Interval{}, fmt.Errorf("san: unknown reward %q", reward)
	}
	return s.ConfidenceInterval(r.Options.Confidence)
}

// Mean returns the mean of the named reward across replications, or NaN when
// the reward is unknown.
func (r *StudyResult) Mean(reward string) float64 {
	s, ok := r.Summaries[reward]
	if !ok {
		return math.NaN()
	}
	return s.Mean()
}

// studySeeds derives the validation stream and the per-replication seeds of a
// study from opts.Seed. The derivation is part of the reproducibility
// contract: seeds are drawn from a master stream in replication order (after
// one reserved split for the validation simulator), so results do not depend
// on which worker picks a job up. opts must already have defaults applied.
func studySeeds(opts Options) (*rng.Stream, []uint64) {
	master := rng.NewStream(opts.Seed, "study-master")
	validate := master.Split("validate")
	seeds := make([]uint64, opts.Replications)
	for i := range seeds {
		seeds[i] = master.Uint64()
	}
	return validate, seeds
}

// ReplicationSeeds returns the per-replication seeds RunReplications derives
// from opts.Seed (defaults applied). Sweep engines that schedule the
// replications of several studies over one shared worker pool use it to make
// each study bit-identical to a standalone RunReplications call with the same
// options.
func ReplicationSeeds(opts Options) []uint64 {
	_, seeds := studySeeds(opts.WithDefaults())
	return seeds
}

// ReplicationStream returns the random stream replication rep of a study is
// run with, given its derived seed. It is the other half of the contract
// exposed by ReplicationSeeds.
func ReplicationStream(seed uint64, rep int) *rng.Stream {
	return rng.NewStream(seed, fmt.Sprintf("rep-%d", rep))
}

// RunReplications runs opts.Replications independent terminating simulations
// of the model and aggregates each reward variable across replications. The
// model is compiled once (validation plus index derivation) and shared
// read-only; replications are distributed over opts.Parallelism goroutines,
// each worker owning a private Simulator (constructed once from the compiled
// model and Reset per replication) and a per-replication random stream.
func RunReplications(model *Model, rewards []RewardVariable, opts Options) (*StudyResult, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	cm, err := Compile(model, rewards)
	if err != nil {
		return nil, err
	}
	return RunReplicationsCompiled(cm, opts)
}

// RunReplicationsCompiled is RunReplications over an already-compiled model,
// for callers (the sweep engine, benchmarks) that build the compiled model
// once and run many studies against it.
func RunReplicationsCompiled(cm *CompiledModel, opts Options) (*StudyResult, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.WithDefaults()
	// studySeeds still reserves the historical "validate" split before
	// drawing replication seeds, so seed derivation is unchanged by the
	// compile-layer refactor.
	_, seeds := studySeeds(opts)

	type repJob struct {
		rep  int
		seed uint64
	}
	type repOutcome struct {
		res Result
		err error
	}
	jobs := make(chan repJob, opts.Replications)
	// Outcomes are indexed by replication so the reduction below is in
	// replication order regardless of worker completion order.
	outcomes := make([]repOutcome, opts.Replications)
	for rep, seed := range seeds {
		jobs <- repJob{rep: rep, seed: seed}
	}
	close(jobs)

	workers := opts.Parallelism
	if workers > opts.Replications {
		workers = opts.Replications
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One simulator per worker, over the shared compiled model, Reset
			// onto each replication's private stream.
			var sim *Simulator
			for job := range jobs {
				stream := ReplicationStream(job.seed, job.rep)
				if sim == nil {
					var err error
					sim, err = cm.NewSimulator(stream)
					if err != nil {
						outcomes[job.rep] = repOutcome{err: err}
						continue
					}
				} else if err := sim.Reset(stream); err != nil {
					outcomes[job.rep] = repOutcome{err: err}
					continue
				}
				res, err := sim.Run(opts.Mission)
				outcomes[job.rep] = repOutcome{res: res, err: err}
			}
		}()
	}
	wg.Wait()

	// Reduce in replication-index order: Welford accumulation in
	// stats.Summary is order-sensitive in floating point, so draining in
	// completion order would make same-seed studies differ across
	// Parallelism settings.
	result := NewStudyResult(cm.rewards, opts)
	for _, out := range outcomes {
		if out.err != nil {
			return nil, out.err
		}
		result.Add(out.res)
	}
	return result, nil
}
