// Equivalence tests for the certified approximate fitting tier, pinned
// against closed forms: the probability that a single fitted transition has
// fired by time T is exactly the surrogate's CDF at T, so the certified
// solver on the fitted model must reproduce phfit's closed-form surrogate
// CDF to solver tolerance — and sit within the certified bound of the
// original delay's CDF. An external test package because the solver lives
// downstream of san.
package san_test

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/phfit"
	"repro/internal/san"
	"repro/internal/statespace"
)

// fittedAbsorbedProbability builds pending -> activity(delay) -> done, runs
// the certified fitting tier, requires certification with exactly one
// adopted surrogate, and returns P[done at T] for each T plus the evidence.
func fittedAbsorbedProbability(t *testing.T, delay dist.Distribution, tol float64, times []float64) ([]float64, san.FitEvidence) {
	t.Helper()
	m := san.NewModel("fit-equiv")
	pending := m.AddPlace("pending", 1)
	done := m.AddPlace("done", 0)
	m.AddTimedActivity("transfer", delay).
		AddInputArc(pending, 1).
		AddOutputArc(done, 1)
	rewards := []san.RewardVariable{{
		Name: "absorbed",
		Mode: san.InstantAtEnd,
		Rate: func(mr san.MarkingReader) float64 { return float64(mr.Tokens(done)) },
	}}
	gen, cert, rep, err := statespace.CertifyFitted(m, rewards, tol, statespace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !cert.Certified() {
		t.Fatalf("fitted model must certify, refusals: %v", cert.Refusals)
	}
	if len(rep.Fits) != 1 || len(cert.Approximations) != 1 {
		t.Fatalf("expected exactly one fit, got %v / %v", rep.Fits, cert.Approximations)
	}
	out := make([]float64, len(times))
	for i, T := range times {
		res, err := gen.SolveTransient(T)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = res["absorbed"]
	}
	return out, rep.Fits[0]
}

// TestFittedWeibullMatchesSurrogateCDF pins the chain realization through
// the solver: the analytic answer equals the surrogate's closed-form CDF to
// solver tolerance, and differs from the original Weibull CDF by no more
// than the certified bound.
func TestFittedWeibullMatchesSurrogateCDF(t *testing.T) {
	w, err := dist.NewWeibull(1.5, 1000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := phfit.Fit(w, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	times := []float64{100, 300, 700, 1200, 2500}
	got, ev := fittedAbsorbedProbability(t, w, 0.2, times)
	if ev.Bound != res.Bound {
		t.Fatalf("evidence bound %v differs from fitter bound %v", ev.Bound, res.Bound)
	}
	for i, T := range times {
		if diff := math.Abs(got[i] - res.Surrogate.CDF(T)); diff > 1e-8 {
			t.Errorf("T=%v: solver %v vs surrogate CDF %v (diff %v)", T, got[i], res.Surrogate.CDF(T), diff)
		}
		if diff := math.Abs(got[i] - w.CDF(T)); diff > ev.Bound {
			t.Errorf("T=%v: solver %v differs from Weibull CDF %v by %v, over the certified bound %v",
				T, got[i], w.CDF(T), diff, ev.Bound)
		}
	}
}

// TestFittedLognormalMixtureMatchesSurrogateCDF pins the branch-selector
// realization through the explorer and solver: vanishing selector states are
// eliminated exactly, so the analytic answer equals the hyperexponential
// closed form, within the certified bound of the lognormal CDF.
func TestFittedLognormalMixtureMatchesSurrogateCDF(t *testing.T) {
	ln, err := dist.NewLognormal(1.2, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := phfit.Fit(ln, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Surrogate.Mixture() {
		t.Fatalf("lognormal(1.2, 1.0) must fit a mixture, got %s", res.Surrogate.Describe())
	}
	times := []float64{1, 3, 6, 12, 30}
	got, ev := fittedAbsorbedProbability(t, ln, 0.25, times)
	for i, T := range times {
		if diff := math.Abs(got[i] - res.Surrogate.CDF(T)); diff > 1e-8 {
			t.Errorf("T=%v: solver %v vs surrogate CDF %v (diff %v)", T, got[i], res.Surrogate.CDF(T), diff)
		}
		if diff := math.Abs(got[i] - ln.CDF(T)); diff > ev.Bound {
			t.Errorf("T=%v: solver %v differs from lognormal CDF %v by %v, over the certified bound %v",
				T, got[i], ln.CDF(T), diff, ev.Bound)
		}
	}
}

// TestCertifyFittedCarriesEvidence pins the statespace entry point on a
// mixed model: the exact expansion still owns the Erlang delay, the fit owns
// the Weibull delay, and the certificate records both kinds of evidence with
// an approximate-labeled summary.
func TestCertifyFittedCarriesEvidence(t *testing.T) {
	m := san.NewModel("certify-fitted")
	p1 := m.AddPlace("p1", 1)
	p2 := m.AddPlace("p2", 1)
	done := m.AddPlace("done", 0)
	erl, err := dist.NewErlang(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	w, err := dist.NewWeibull(1.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	m.AddTimedActivity("exact", erl).AddInputArc(p1, 1).AddOutputArc(done, 1)
	m.AddTimedActivity("approx", w).AddInputArc(p2, 1).AddOutputArc(done, 1)
	rewards := []san.RewardVariable{{
		Name: "absorbed",
		Mode: san.InstantAtEnd,
		Rate: func(mr san.MarkingReader) float64 { return float64(mr.Tokens(done)) },
	}}
	_, cert, rep, err := statespace.CertifyFitted(m, rewards, 0.2, statespace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !cert.Certified() {
		t.Fatalf("mixed model must certify, refusals: %v", cert.Refusals)
	}
	if len(cert.Expansions) != 1 {
		t.Fatalf("the Erlang delay must expand exactly, got %v", cert.Expansions)
	}
	if len(cert.Approximations) != 1 || cert.Approximations[0].Activity != "approx" {
		t.Fatalf("the Weibull delay must carry fit evidence, got %v", cert.Approximations)
	}
	if len(rep.Fits) != 1 {
		t.Fatalf("report must match the certificate, got %v", rep.Fits)
	}
	sum := cert.Summary()
	if !strings.Contains(sum, "approximate: 1 fitted surrogates with certified bounds") {
		t.Fatalf("summary must surface the approximation: %q", sum)
	}

	// A delay neither pass can handle refuses with both classified reasons.
	m2 := san.NewModel("certify-fitted-refused")
	p := m2.AddPlace("p", 1)
	q := m2.AddPlace("q", 0)
	narrow, err := dist.NewUniform(99, 101)
	if err != nil {
		t.Fatal(err)
	}
	m2.AddTimedActivity("a", narrow).AddInputArc(p, 1).AddOutputArc(q, 1)
	rewards2 := []san.RewardVariable{{
		Name: "absorbed",
		Mode: san.InstantAtEnd,
		Rate: func(mr san.MarkingReader) float64 { return float64(mr.Tokens(q)) },
	}}
	_, cert2, _, err := statespace.CertifyFitted(m2, rewards2, 0.2, statespace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cert2.Certified() {
		t.Fatal("non-fittable delay must refuse certification")
	}
	joined := strings.Join(cert2.Refusals, "; ")
	for _, want := range []string{san.RefusalNonMemoryless, san.RefusalNonExpandable, san.RefusalNonFittable} {
		if !strings.Contains(joined, want) {
			t.Errorf("refusals must carry %q: %v", want, cert2.Refusals)
		}
	}
	if len(cert2.Approximations) != 0 {
		t.Errorf("refused certificate must carry no fit evidence, got %v", cert2.Approximations)
	}
}
