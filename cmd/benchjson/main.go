// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON document, keeping the raw benchmark lines alongside
// the parsed metrics so downstream tooling can either consume the JSON
// directly or reconstruct a benchstat-compatible input
// (jq -r '.benchmarks[].raw' BENCH_sweep.json | benchstat /dev/stdin).
//
// Usage:
//
//	go test -bench ... -benchmem | benchjson -out BENCH_sweep.json
//	benchjson -in BENCH_sweep.txt -out BENCH_sweep.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the full benchmark name including the -<procs> suffix.
	Name string `json:"name"`
	// Runs is the iteration count chosen by the benchmark harness.
	Runs int64 `json:"runs"`
	// Metrics maps unit (ns/op, B/op, allocs/op, custom units like
	// events/rep) to value.
	Metrics map[string]float64 `json:"metrics"`
	// Raw is the unmodified output line, for benchstat reconstruction.
	Raw string `json:"raw"`
}

// Document is the top-level JSON schema.
type Document struct {
	// Goos, Goarch, Pkg, and CPU echo the `go test -bench` header lines.
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	Pkg    string `json:"pkg,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// Benchmarks holds one entry per benchmark result line, in input order.
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	in := flag.String("in", "", "input file with go test -bench output (default stdin)")
	out := flag.String("out", "", "output JSON file (default stdout)")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	doc, err := parse(r)
	if err != nil {
		log.Fatal(err)
	}
	if len(doc.Benchmarks) == 0 {
		log.Fatal("no benchmark result lines found in input")
	}
	text, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	text = append(text, '\n')
	if *out == "" {
		if _, err := os.Stdout.Write(text); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := os.WriteFile(*out, text, 0o644); err != nil {
		log.Fatal(err)
	}
}

// parse reads go test -bench output: header key: value lines followed by
// benchmark result lines of the form
//
//	BenchmarkName-8   123   456.7 ns/op   89 B/op   1 allocs/op
func parse(r io.Reader) (*Document, error) {
	doc := &Document{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseBenchmarkLine(line)
			if err != nil {
				return nil, err
			}
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// Duplicate benchmark names mean the input holds more than one run of the
	// same benchmark (-count > 1, or two concatenated bench passes). Tooling
	// downstream keys on the name, so a silent last-one-wins (or first-one-
	// wins) pick would misreport the perf trajectory; refuse instead.
	seen := make(map[string]bool, len(doc.Benchmarks))
	for _, b := range doc.Benchmarks {
		if seen[b.Name] {
			return nil, fmt.Errorf("duplicate benchmark name %q in input; run with -count=1 or split the inputs", b.Name)
		}
		seen[b.Name] = true
	}
	return doc, nil
}

// parseBenchmarkLine parses one result line into name, iteration count, and
// (value, unit) metric pairs.
func parseBenchmarkLine(line string) (Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, fmt.Errorf("malformed benchmark line %q", line)
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("malformed iteration count in %q: %w", line, err)
	}
	b := Benchmark{Name: fields[0], Runs: runs, Metrics: make(map[string]float64), Raw: line}
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return Benchmark{}, fmt.Errorf("odd metric fields in %q", line)
	}
	for i := 0; i < len(rest); i += 2 {
		value, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("malformed metric value %q in %q: %w", rest[i], line, err)
		}
		b.Metrics[rest[i+1]] = value
	}
	return b, nil
}
