package dist

import (
	"math"

	"repro/internal/rng"
)

// Component is one weighted branch of a finite Mixture.
type Component struct {
	// Weight is the (unnormalized) probability of this branch.
	Weight float64
	// Dist is the branch distribution.
	Dist Distribution
}

// Mixture is a finite mixture of distributions: with probability
// proportional to its weight, a draw comes from that component. It models
// bimodal repair regimes — e.g. a fast on-site disk swap most of the time
// versus a slow vendor dispatch — without invalidating the delay interface
// the simulator consumes.
type Mixture struct {
	comps []Component
	// cum[i] is the normalized cumulative weight through component i.
	cum []float64
}

// NewMixture returns a mixture over the given components. Weights must be
// positive and finite and are normalized to sum to 1; at least one component
// is required and no component distribution may be nil.
func NewMixture(comps ...Component) (Mixture, error) {
	if len(comps) == 0 {
		return Mixture{}, errInvalidf("mixture needs at least one component")
	}
	total := 0.0
	for i, c := range comps {
		if c.Dist == nil {
			return Mixture{}, errInvalidf("mixture component %d has nil distribution", i)
		}
		if err := checkPositive("mixture weight", c.Weight); err != nil {
			return Mixture{}, err
		}
		total += c.Weight
	}
	owned := make([]Component, len(comps))
	copy(owned, comps)
	cum := make([]float64, len(owned))
	acc := 0.0
	for i, c := range owned {
		acc += c.Weight / total
		cum[i] = acc
	}
	cum[len(cum)-1] = 1 // guard against accumulated rounding
	return Mixture{comps: owned, cum: cum}, nil
}

// Components returns the components with their normalized weights.
func (m Mixture) Components() []Component {
	out := make([]Component, len(m.comps))
	copy(out, m.comps)
	for i := range out {
		if i == 0 {
			out[i].Weight = m.cum[0]
		} else {
			out[i].Weight = m.cum[i] - m.cum[i-1]
		}
	}
	return out
}

// Sample picks a component by weight, then samples it.
func (m Mixture) Sample(s *rng.Stream) float64 {
	u := s.Float64()
	for i, c := range m.cum {
		if u < c {
			return m.comps[i].Dist.Sample(s)
		}
	}
	return m.comps[len(m.comps)-1].Dist.Sample(s)
}

// Mean returns the weight-averaged component means.
func (m Mixture) Mean() float64 {
	sum := 0.0
	prev := 0.0
	for i, c := range m.comps {
		w := m.cum[i] - prev
		prev = m.cum[i]
		sum += w * c.Dist.Mean()
	}
	return sum
}

// CDF returns the weighted sum of component CDFs. It returns NaN when any
// component does not implement CDFer.
func (m Mixture) CDF(x float64) float64 {
	sum := 0.0
	prev := 0.0
	for i, c := range m.comps {
		w := m.cum[i] - prev
		prev = m.cum[i]
		cd, ok := c.Dist.(CDFer)
		if !ok {
			return math.NaN()
		}
		sum += w * cd.CDF(x)
	}
	return sum
}

// Quantile inverts the mixture CDF by bisection. It returns NaN when any
// component does not implement CDFer.
func (m Mixture) Quantile(p float64) float64 {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return math.NaN()
	}
	if math.IsNaN(m.CDF(0)) {
		return math.NaN()
	}
	hi := math.Max(m.Mean()*2, 1)
	return invertCDF(m.CDF, p, 0, hi)
}

// Name implements Distribution.
func (Mixture) Name() string { return "mixture" }

// Params implements Distribution.
func (m Mixture) Params() map[string]float64 {
	return map[string]float64{"components": float64(len(m.comps))}
}
