package raid

import (
	"strings"
	"testing"

	"repro/internal/san"
)

// TestStorageVerdictsMatchPredicates: the verdict accessors and the Lumps*
// predicates derive from the same classification, and each failure mode
// carries its class's reason.
func TestStorageVerdictsMatchPredicates(t *testing.T) {
	base := lumpableStorage(2, 3, TierGeometry{Data: 2, Parity: 1}, 1000, 48)
	weibull := base
	weibull.Disk.ShapeBeta = 0.7
	detReplace := base
	detReplace.Disk.ExponentialReplace = false
	crews := base
	crews.RepairCrews = 2
	uniformCtrl := base
	uniformCtrl.Controller.ExponentialRepair = false
	off := base
	off.Lumped = false

	cases := []struct {
		name       string
		cfg        StorageConfig
		tierReason string // "" means tier family lumpable
		ctrlReason string // "" means controller family lumpable
	}{
		{"exponential", base, "", ""},
		{"weibull-disks", weibull, san.ReasonAgedState, ""},
		{"deterministic-replace", detReplace, san.ReasonAgedState, ""},
		{"shared-crews", crews, san.ReasonCrewCoupling, ""},
		{"uniform-controller-repair", uniformCtrl, "", san.ReasonNonExponential},
		{"opt-out", off, "", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tier := tc.cfg.TierLumpability()
			ctrl := tc.cfg.ControllerLumpability()
			if tier.Lumped != tc.cfg.LumpsTiers() || ctrl.Lumped != tc.cfg.LumpsControllers() {
				t.Fatalf("verdict Lumped (%v,%v) disagrees with predicates (%v,%v)",
					tier.Lumped, ctrl.Lumped, tc.cfg.LumpsTiers(), tc.cfg.LumpsControllers())
			}
			if tier.Count != tc.cfg.TotalTiers() || ctrl.Count != tc.cfg.DDNUnits {
				t.Fatalf("verdict counts wrong: tier %d ctrl %d", tier.Count, ctrl.Count)
			}
			assertReason(t, "tier", tier, tc.tierReason)
			assertReason(t, "controller", ctrl, tc.ctrlReason)
		})
	}
}

func assertReason(t *testing.T, label string, v san.LumpabilityVerdict, prefix string) {
	t.Helper()
	if prefix == "" {
		if !v.Lumpable || len(v.Reasons) != 0 {
			t.Fatalf("%s family should be lumpable, got %+v", label, v)
		}
		return
	}
	if v.Lumpable {
		t.Fatalf("%s family should not be lumpable: %+v", label, v)
	}
	for _, r := range v.Reasons {
		if strings.HasPrefix(r, prefix) {
			return
		}
	}
	t.Fatalf("%s reasons %v missing %q", label, v.Reasons, prefix)
}
