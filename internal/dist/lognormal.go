package dist

import (
	"math"

	"repro/internal/rng"
)

// Lognormal models heavy-tailed positive delays: repair durations and
// cluster-wide outage lengths, where most events are short but a few run
// very long.
type Lognormal struct {
	mu, sigma float64
}

// NewLognormal returns a lognormal distribution parameterized by the mean mu
// and standard deviation sigma of the underlying normal (log-scale
// parameters).
func NewLognormal(mu, sigma float64) (Lognormal, error) {
	if err := checkFinite("mu", mu); err != nil {
		return Lognormal{}, err
	}
	if err := checkPositive("sigma", sigma); err != nil {
		return Lognormal{}, err
	}
	return Lognormal{mu: mu, sigma: sigma}, nil
}

// NewLognormalFromMoments returns the lognormal whose (arithmetic) mean and
// standard deviation match the given values — the natural parameterization
// when fitting outage durations from logs ("mean 6 h, spread 8 h").
func NewLognormalFromMoments(mean, stddev float64) (Lognormal, error) {
	if err := checkPositive("mean", mean); err != nil {
		return Lognormal{}, err
	}
	if err := checkPositive("stddev", stddev); err != nil {
		return Lognormal{}, err
	}
	cv := stddev / mean
	sigma2 := math.Log1p(cv * cv)
	mu := math.Log(mean) - sigma2/2
	return Lognormal{mu: mu, sigma: math.Sqrt(sigma2)}, nil
}

// Mu returns the log-scale location parameter.
func (l Lognormal) Mu() float64 { return l.mu }

// Sigma returns the log-scale spread parameter.
func (l Lognormal) Sigma() float64 { return l.sigma }

// Sample returns exp(mu + sigma*Z) with Z standard normal.
func (l Lognormal) Sample(s *rng.Stream) float64 {
	return math.Exp(l.mu + l.sigma*s.Normal())
}

// Mean returns exp(mu + sigma^2/2).
func (l Lognormal) Mean() float64 {
	return math.Exp(l.mu + l.sigma*l.sigma/2)
}

// Variance returns (exp(sigma^2)-1) * exp(2mu + sigma^2).
func (l Lognormal) Variance() float64 {
	s2 := l.sigma * l.sigma
	return math.Expm1(s2) * math.Exp(2*l.mu+s2)
}

// ThirdMoment returns E[X^3] = exp(3*mu + 4.5*sigma^2).
func (l Lognormal) ThirdMoment() float64 {
	return math.Exp(3*l.mu + 4.5*l.sigma*l.sigma)
}

// CDF returns Phi((ln x - mu)/sigma) for x > 0.
func (l Lognormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := (math.Log(x) - l.mu) / l.sigma
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// Quantile returns exp(mu + sigma*Phi^-1(p)).
func (l Lognormal) Quantile(p float64) float64 {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return math.NaN()
	}
	switch p {
	case 0:
		return 0
	case 1:
		return math.Inf(1)
	}
	z := math.Sqrt2 * math.Erfinv(2*p-1)
	return math.Exp(l.mu + l.sigma*z)
}

// Name implements Distribution.
func (Lognormal) Name() string { return "lognormal" }

// Params implements Distribution.
func (l Lognormal) Params() map[string]float64 {
	return map[string]float64{"mu": l.mu, "sigma": l.sigma}
}
