// Package opts exercises the optionshygiene rule.
package opts

import "fixture/san"

// RunRaw reads a field of an unvalidated Options parameter.
func RunRaw(o san.Options) int {
	return o.Replications // want optionshygiene
}

// RunLate validates only after the field already steered the study.
func RunLate(o san.Options) (int, error) {
	n := o.Replications // want optionshygiene
	if err := o.Validate(); err != nil {
		return 0, err
	}
	return n, nil
}

// RunValidated normalizes first: allowed.
func RunValidated(o san.Options) (int, error) {
	if err := o.Validate(); err != nil {
		return 0, err
	}
	o = o.WithDefaults()
	return o.Replications, nil
}

// RunDefaults normalizes with WithDefaults alone: allowed.
func RunDefaults(o san.Options) int {
	o = o.WithDefaults()
	return o.Replications
}

// Forward passes the options along without reading fields: the callee is
// responsible, so this is allowed.
func Forward(o san.Options) (int, error) {
	return RunValidated(o)
}

// runInternal is unexported; the rule only holds API boundaries to the
// contract.
func runInternal(o san.Options) int {
	return o.Replications
}

// Touch keeps runInternal referenced.
func Touch() int { return runInternal(san.Options{}) }
