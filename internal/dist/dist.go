// Package dist provides the probability distributions that parameterize the
// paper's stochastic activity network models: every timed activity in the
// ABE dependability models draws its firing delay from a Distribution, and
// the log generator uses the same families to synthesize failure traces.
//
// The families mirror Table 5 of Gaonkar et al. (DSN 2008), which drives the
// petascale file-system models with
//
//   - exponential delays for memoryless failure processes (node hardware and
//     software MTBF, controller MTBF, outage inter-arrivals),
//   - Weibull delays for disk lifetimes, whose shape parameter expresses
//     infant mortality (shape < 1) or wear-out (shape > 1) relative to the
//     fitted field AFR,
//   - lognormal delays for heavy-tailed repair and outage durations,
//   - uniform delays for bounded manual repair windows (e.g. 12-36 h
//     hardware replacement), and
//   - deterministic delays for fixed operations such as spare activation.
//
// Beyond the families the paper uses directly, the package provides Gamma
// (and Erlang) delays for multi-stage repair processes, finite Mixtures for
// bimodal repair regimes (fast on-site swap vs. slow vendor dispatch), and
// Empirical distributions resampled from measured data, so sensitivity
// studies can swap any of them into a model without touching model code.
//
// All sampling is driven by a deterministic *rng.Stream, so replications are
// reproducible and design alternatives can share common random numbers.
// Continuous families use validated inverse-CDF transforms where the
// quantile function has a closed form; the Gamma sampler uses the
// Marsaglia-Tsang squeeze method.
package dist

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/rng"
)

// Calendar unit conversions used when reporting rates (replacements per
// week, lost jobs per year) from mission-time measures, and when converting
// between annualized failure rates and MTBF.
const (
	// HoursPerYear is the length of a (non-leap) year in hours.
	HoursPerYear = 8760.0
	// HoursPerWeek is the length of a week in hours.
	HoursPerWeek = 168.0
	// HoursPerDay is the length of a day in hours.
	HoursPerDay = 24.0
)

// ErrInvalidParam is wrapped by every constructor error so callers can test
// for parameter-validation failures with errors.Is.
var ErrInvalidParam = errors.New("dist: invalid parameter")

// Distribution is a univariate probability distribution over delay values
// (hours, in the paper's models). Implementations are immutable values, safe
// to share between goroutines; all randomness comes from the Stream passed
// to Sample.
type Distribution interface {
	// Sample draws one value from the distribution using s.
	Sample(s *rng.Stream) float64
	// Mean returns the expected value.
	Mean() float64
	// Name returns the family name (e.g. "weibull") for reporting.
	Name() string
	// Params returns the parameterization for reporting and logging.
	Params() map[string]float64
}

// CDFer is implemented by distributions that can evaluate their cumulative
// distribution function.
type CDFer interface {
	// CDF returns P(X <= x).
	CDF(x float64) float64
}

// Quantiler is implemented by distributions that can invert their CDF.
type Quantiler interface {
	// Quantile returns the smallest x with CDF(x) >= p for p in [0, 1].
	// It returns NaN for p outside [0, 1].
	Quantile(p float64) float64
}

// Variancer is implemented by distributions that can report their variance
// in closed form.
type Variancer interface {
	// Variance returns E[(X-mean)^2].
	Variance() float64
}

// ThirdMomenter is implemented by distributions that can report their third
// raw moment in closed form. Together with Mean and Variance this gives the
// first three raw moments, which is what phase-type moment matching needs.
type ThirdMomenter interface {
	// ThirdMoment returns E[X^3].
	ThirdMoment() float64
}

// RawMoments extracts the first three raw moments (E[X], E[X^2], E[X^3]) of
// d. ok reports whether d exposes both a closed-form variance and a
// closed-form third moment; when false the moment values are zero.
func RawMoments(d Distribution) (m1, m2, m3 float64, ok bool) {
	v, okV := d.(Variancer)
	t, okT := d.(ThirdMomenter)
	if !okV || !okT {
		return 0, 0, 0, false
	}
	m1 = d.Mean()
	return m1, v.Variance() + m1*m1, t.ThirdMoment(), true
}

// AFRToMTBFHours converts an annualized failure rate (failures per
// disk-year, e.g. 0.0088 for a 1e6-hour-MTBF disk) to a mean time between
// failures in hours. It is the inverse of MTBF -> AFR = HoursPerYear/MTBF
// used when labeling the paper's Figure 2/3 sensitivity series.
func AFRToMTBFHours(afr float64) (float64, error) {
	if err := checkPositive("AFR", afr); err != nil {
		return 0, err
	}
	return HoursPerYear / afr, nil
}

// Describe formats a distribution as "name(k1=v1, k2=v2)" with keys sorted,
// for experiment logs and reports.
func Describe(d Distribution) string {
	params := d.Params()
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(d.Name())
	b.WriteByte('(')
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%g", k, params[k])
	}
	b.WriteByte(')')
	return b.String()
}

// errInvalidf builds a parameter-validation error wrapping ErrInvalidParam.
func errInvalidf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvalidParam, fmt.Sprintf(format, args...))
}

// checkPositive returns an ErrInvalidParam error unless v is strictly
// positive and finite. The negated comparison also rejects NaN.
func checkPositive(name string, v float64) error {
	if !(v > 0) || math.IsInf(v, 0) {
		return fmt.Errorf("%w: %s must be positive and finite, got %v", ErrInvalidParam, name, v)
	}
	return nil
}

// checkFinite returns an ErrInvalidParam error unless v is finite.
func checkFinite(name string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("%w: %s must be finite, got %v", ErrInvalidParam, name, v)
	}
	return nil
}

// invertCDF numerically inverts cdf at probability p by bisection on
// [lo, hi]. The bracket is expanded geometrically until it contains p, so
// callers only need a plausible starting upper bound.
func invertCDF(cdf func(float64) float64, p, lo, hi float64) float64 {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return math.NaN()
	}
	if p == 0 {
		return lo
	}
	for cdf(hi) < p {
		lo = hi
		hi *= 2
		if math.IsInf(hi, 1) {
			return math.Inf(1)
		}
	}
	for i := 0; i < 200; i++ {
		mid := lo + (hi-lo)/2
		if mid <= lo || mid >= hi {
			break // float precision exhausted
		}
		if cdf(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}
