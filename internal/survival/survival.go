// Package survival implements the survival-analysis techniques the paper
// applies to the ABE disk-failure logs: Kaplan-Meier estimation and
// maximum-likelihood fitting of a Weibull hazard model with right-censored
// observations (the paper reports a fitted shape parameter of 0.6963571 with
// standard deviation 0.1923109 on n=480 disks).
package survival

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/stats"
)

// Observation is a single subject in a survival study: a time on test (in
// hours) and whether the event of interest (failure) was observed or the
// subject was right-censored at that time (still working when the log ends).
type Observation struct {
	Time  float64
	Event bool // true = failure observed, false = right-censored
}

// Errors returned by the fitting routines.
var (
	ErrNoEvents    = errors.New("survival: no failure events in sample")
	ErrInvalidTime = errors.New("survival: observation with non-positive time")
	ErrNoData      = errors.New("survival: empty sample")
)

// ---------------------------------------------------------------------------
// Kaplan-Meier
// ---------------------------------------------------------------------------

// KMPoint is one step of the Kaplan-Meier survival curve.
type KMPoint struct {
	Time     float64 // event time
	AtRisk   int     // subjects at risk just before Time
	Events   int     // failures at Time
	Survival float64 // estimated S(Time)
}

// KaplanMeier computes the product-limit estimate of the survival function.
// Censored observations reduce the risk set but do not produce steps.
func KaplanMeier(obs []Observation) ([]KMPoint, error) {
	if len(obs) == 0 {
		return nil, ErrNoData
	}
	sorted := make([]Observation, len(obs))
	copy(sorted, obs)
	for _, o := range sorted {
		if o.Time <= 0 || math.IsNaN(o.Time) || math.IsInf(o.Time, 0) {
			return nil, fmt.Errorf("%w: %v", ErrInvalidTime, o.Time)
		}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Time < sorted[j].Time })

	var curve []KMPoint
	surv := 1.0
	atRisk := len(sorted)
	i := 0
	for i < len(sorted) {
		t := sorted[i].Time
		events, censored := 0, 0
		for i < len(sorted) && sorted[i].Time == t {
			if sorted[i].Event {
				events++
			} else {
				censored++
			}
			i++
		}
		if events > 0 {
			surv *= 1 - float64(events)/float64(atRisk)
			curve = append(curve, KMPoint{Time: t, AtRisk: atRisk, Events: events, Survival: surv})
		}
		atRisk -= events + censored
	}
	return curve, nil
}

// MedianSurvivalTime returns the first time at which the Kaplan-Meier curve
// drops to 0.5 or below, or an error if the curve never reaches 0.5.
func MedianSurvivalTime(curve []KMPoint) (float64, error) {
	for _, p := range curve {
		if p.Survival <= 0.5 {
			return p.Time, nil
		}
	}
	return 0, errors.New("survival: curve never reaches 0.5 (median not reached)")
}

// ---------------------------------------------------------------------------
// Weibull maximum likelihood with right censoring
// ---------------------------------------------------------------------------

// WeibullFit is the result of fitting a Weibull lifetime model to censored
// data by maximum likelihood.
type WeibullFit struct {
	Shape       float64 // β
	Scale       float64 // η (hours)
	ShapeStdErr float64 // standard error of β from observed information
	Events      int     // number of uncensored failures
	N           int     // total observations
	LogLik      float64 // maximized log-likelihood
}

// MTBF returns the mean time between failures implied by the fit,
// η·Γ(1+1/β), in hours.
func (f WeibullFit) MTBF() float64 {
	return f.Scale * math.Gamma(1+1/f.Shape)
}

// AFR returns the annualized failure rate fraction implied by the fitted
// MTBF (AFR = 8760/MTBF).
func (f WeibullFit) AFR() float64 {
	return 8760.0 / f.MTBF()
}

// String summarizes the fit in the form the paper reports it.
func (f WeibullFit) String() string {
	return fmt.Sprintf("Weibull fit: shape=%.7f (se %.7f), scale=%.1f h, events=%d/%d",
		f.Shape, f.ShapeStdErr, f.Scale, f.Events, f.N)
}

// FitWeibull fits a Weibull distribution to right-censored survival data by
// profile maximum likelihood. For a fixed shape β the MLE of the scale has
// the closed form η^β = Σ t_i^β / d (sum over all observations, d = number of
// events), so only a one-dimensional search over β is needed. The shape
// standard error is derived from the numerically evaluated observed
// information matrix.
func FitWeibull(obs []Observation) (WeibullFit, error) {
	if len(obs) == 0 {
		return WeibullFit{}, ErrNoData
	}
	events := 0
	for _, o := range obs {
		if o.Time <= 0 || math.IsNaN(o.Time) || math.IsInf(o.Time, 0) {
			return WeibullFit{}, fmt.Errorf("%w: %v", ErrInvalidTime, o.Time)
		}
		if o.Event {
			events++
		}
	}
	if events == 0 {
		return WeibullFit{}, ErrNoEvents
	}

	// profileScore is the derivative of the profile log-likelihood w.r.t. β
	// (up to a positive factor); its root is the MLE of β.
	profileScore := func(beta float64) float64 {
		var sumTB, sumTBlnT, sumLnTEvents float64
		for _, o := range obs {
			tb := math.Pow(o.Time, beta)
			lnT := math.Log(o.Time)
			sumTB += tb
			sumTBlnT += tb * lnT
			if o.Event {
				sumLnTEvents += lnT
			}
		}
		return sumTBlnT/sumTB - 1/beta - sumLnTEvents/float64(events)
	}

	// Bracket the root. profileScore is increasing in β for typical data;
	// scan a broad range to find a sign change.
	lo, hi := 1e-3, 1.0
	fLo := profileScore(lo)
	fHi := profileScore(hi)
	for fHi < 0 && hi < 1e3 {
		lo, fLo = hi, fHi
		hi *= 2
		fHi = profileScore(hi)
	}
	for fLo > 0 && lo > 1e-9 {
		hi, fHi = lo, fLo
		lo /= 2
		fLo = profileScore(lo)
	}
	if fLo > 0 || fHi < 0 {
		return WeibullFit{}, errors.New("survival: failed to bracket Weibull shape MLE")
	}
	// Bisection: robust and plenty fast for a 1-D root.
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if profileScore(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	shape := (lo + hi) / 2

	// Closed-form scale given shape.
	var sumTB float64
	for _, o := range obs {
		sumTB += math.Pow(o.Time, shape)
	}
	scale := math.Pow(sumTB/float64(events), 1/shape)

	fit := WeibullFit{Shape: shape, Scale: scale, Events: events, N: len(obs)}
	fit.LogLik = weibullLogLik(obs, shape, scale)
	fit.ShapeStdErr = shapeStdErr(obs, shape, scale)
	return fit, nil
}

// weibullLogLik evaluates the censored Weibull log-likelihood.
func weibullLogLik(obs []Observation, shape, scale float64) float64 {
	var ll float64
	for _, o := range obs {
		z := o.Time / scale
		zb := math.Pow(z, shape)
		if o.Event {
			ll += math.Log(shape/scale) + (shape-1)*math.Log(z) - zb
		} else {
			ll += -zb
		}
	}
	return ll
}

// shapeStdErr approximates the standard error of the shape estimate from the
// observed information matrix, evaluated by central finite differences of
// the log-likelihood and inverted analytically (2x2 matrix).
func shapeStdErr(obs []Observation, shape, scale float64) float64 {
	hB := math.Max(1e-5, shape*1e-4)
	hE := math.Max(1e-3, scale*1e-4)
	ll := func(b, e float64) float64 { return weibullLogLik(obs, b, e) }

	l0 := ll(shape, scale)
	dbb := (ll(shape+hB, scale) - 2*l0 + ll(shape-hB, scale)) / (hB * hB)
	dee := (ll(shape, scale+hE) - 2*l0 + ll(shape, scale-hE)) / (hE * hE)
	dbe := (ll(shape+hB, scale+hE) - ll(shape+hB, scale-hE) -
		ll(shape-hB, scale+hE) + ll(shape-hB, scale-hE)) / (4 * hB * hE)

	// Observed information I = -Hessian; Var(shape) = [I^{-1}]_{11}.
	ibb, iee, ibe := -dbb, -dee, -dbe
	det := ibb*iee - ibe*ibe
	if det <= 0 {
		return math.NaN()
	}
	varShape := iee / det
	if varShape <= 0 {
		return math.NaN()
	}
	return math.Sqrt(varShape)
}

// ShapeConfidenceInterval returns the Wald confidence interval for the fitted
// shape parameter at the given confidence level.
func (f WeibullFit) ShapeConfidenceInterval(confidence float64) (stats.Interval, error) {
	if !(confidence > 0 && confidence < 1) {
		return stats.Interval{}, fmt.Errorf("survival: confidence %v outside (0,1)", confidence)
	}
	if math.IsNaN(f.ShapeStdErr) {
		return stats.Interval{}, errors.New("survival: shape standard error unavailable")
	}
	z := stats.StudentTQuantile(1-(1-confidence)/2, float64(f.N-1))
	return stats.Interval{Mean: f.Shape, HalfWidth: z * f.ShapeStdErr, Confidence: confidence, N: f.N}, nil
}

// ExponentialMTBF is the baseline estimator that ignores the Weibull shape:
// total time on test divided by the number of failures. The paper's
// MTBF=300,000 h estimate is of this flavor (matched via simulation).
func ExponentialMTBF(obs []Observation) (float64, error) {
	if len(obs) == 0 {
		return 0, ErrNoData
	}
	var totalTime float64
	events := 0
	for _, o := range obs {
		if o.Time <= 0 || math.IsNaN(o.Time) || math.IsInf(o.Time, 0) {
			return 0, fmt.Errorf("%w: %v", ErrInvalidTime, o.Time)
		}
		totalTime += o.Time
		if o.Event {
			events++
		}
	}
	if events == 0 {
		return 0, ErrNoEvents
	}
	return totalTime / float64(events), nil
}
