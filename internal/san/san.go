// Package san implements the stochastic activity network (SAN) formalism
// that the paper's dependability models are expressed in, together with a
// discrete-event simulator and a replication runner that reports reward
// measures with confidence intervals — the role Möbius plays for the
// original study.
//
// A SAN consists of places holding tokens, timed and instantaneous
// activities, input gates (enabling predicates plus marking transformations)
// and output gates (marking transformations), and probabilistic cases on
// activities. Models are composed from submodels with Join/Replicate-style
// builders (see compose.go); reward variables (reward.go) define the
// measures of interest; the simulator (simulate.go) estimates them by
// terminating Monte Carlo simulation.
package san

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dist"
)

// Common model-construction errors.
var (
	ErrDuplicatePlace    = errors.New("san: duplicate place name")
	ErrDuplicateActivity = errors.New("san: duplicate activity name")
	ErrUnknownPlace      = errors.New("san: place does not belong to this model")
	ErrNoDelay           = errors.New("san: timed activity without a delay distribution")
	ErrBadCase           = errors.New("san: activity case probabilities must be positive and sum to 1")
	ErrNegativeTokens    = errors.New("san: marking update drove a place negative")
)

// Place is a token holder. Places are created through Model.AddPlace and are
// identified by a hierarchical name (e.g. "cfs/oss[3]/up").
type Place struct {
	name    string
	index   int
	initial int
}

// Name returns the fully qualified place name.
func (p *Place) Name() string { return p.name }

// Initial returns the initial marking of the place.
func (p *Place) Initial() int { return p.initial }

// MarkingReader is read-only access to the current marking, passed to gate
// predicates, delay functions, case-probability functions, and reward
// functions.
type MarkingReader interface {
	// Tokens returns the number of tokens currently in p.
	Tokens(p *Place) int
}

// MarkingWriter is read-write access to the marking, passed to gate and case
// functions when an activity completes.
type MarkingWriter interface {
	MarkingReader
	// SetTokens sets the marking of p to n (n must be >= 0).
	SetTokens(p *Place, n int)
	// Add adds delta (possibly negative) tokens to p.
	Add(p *Place, delta int)
}

// Predicate is an input-gate enabling predicate.
type Predicate func(m MarkingReader) bool

// GateFunc is a marking transformation executed when an activity completes.
type GateFunc func(m MarkingWriter)

// DelayFunc returns the firing-delay distribution of a timed activity given
// the marking at the instant the activity became enabled. Marking-dependent
// rates (e.g. a failure rate proportional to the number of operational
// components) are expressed this way.
type DelayFunc func(m MarkingReader) dist.Distribution

// InputGate couples an enabling predicate with a marking transformation.
// Reads must list every place the predicate inspects so the simulator can
// re-evaluate enabling only when a relevant place changes.
type InputGate struct {
	Name      string
	Reads     []*Place
	Enabled   Predicate
	Transform GateFunc // optional; runs when the owning activity completes
}

// OutputGate is a marking transformation attached to an activity case.
type OutputGate struct {
	Name      string
	Transform GateFunc
}

// Arc connects an activity to a place with a multiplicity.
type Arc struct {
	Place *Place
	Mult  int
}

// Case is one probabilistic outcome of an activity. Probability may depend
// on the marking at completion time; the probabilities of all cases of an
// activity must sum to 1.
type Case struct {
	// Probability returns the case probability given the marking at
	// completion. If nil, the case is given the remaining probability mass
	// split evenly with other nil cases.
	Probability func(m MarkingReader) float64
	OutputArcs  []Arc
	OutputGates []*OutputGate
}

// ActivityKind distinguishes timed from instantaneous activities.
type ActivityKind int

// Supported activity kinds. Following the style guide, the enum starts at 1
// so the zero value is invalid and cannot be used by accident.
const (
	// Timed activities complete after a random delay drawn from their
	// distribution.
	Timed ActivityKind = iota + 1
	// Instantaneous activities complete immediately once enabled, before any
	// timed activity at the same instant.
	Instantaneous
)

// String implements fmt.Stringer.
func (k ActivityKind) String() string {
	switch k {
	case Timed:
		return "timed"
	case Instantaneous:
		return "instantaneous"
	default:
		return fmt.Sprintf("ActivityKind(%d)", int(k))
	}
}

// Activity is a state-changing unit of a SAN.
type Activity struct {
	name  string
	kind  ActivityKind
	index int
	delay DelayFunc
	// fixedDelay records the marking-independent distribution behind delay
	// when the activity was built with AddTimedActivity; it stays nil for
	// AddTimedActivityFunc activities. Static passes (ExpandPhases) need the
	// distribution itself, not just samples from it.
	fixedDelay dist.Distribution
	inputArcs  []Arc
	inputGates []*InputGate
	cases      []Case
	// reactivate, when true, causes the activity's delay to be resampled
	// whenever a dependent place changes while the activity remains enabled
	// (Möbius "reactivation predicate" behaviour). The default (false) keeps
	// the originally sampled completion time.
	reactivate bool
}

// Name returns the activity name.
func (a *Activity) Name() string { return a.name }

// Kind returns whether the activity is timed or instantaneous.
func (a *Activity) Kind() ActivityKind { return a.kind }

// SetReactivation enables resampling of the delay on marking changes.
func (a *Activity) SetReactivation(on bool) { a.reactivate = on }

// AddInputArc requires mult tokens in p for the activity to be enabled and
// removes them when it completes.
func (a *Activity) AddInputArc(p *Place, mult int) *Activity {
	a.inputArcs = append(a.inputArcs, Arc{Place: p, Mult: mult})
	return a
}

// AddInputGate attaches an input gate.
func (a *Activity) AddInputGate(g *InputGate) *Activity {
	a.inputGates = append(a.inputGates, g)
	return a
}

// AddCase appends a probabilistic case.
func (a *Activity) AddCase(c Case) *Activity {
	a.cases = append(a.cases, c)
	return a
}

// AddOutputArc adds an output arc to the default (single) case, creating it
// if necessary. It must not be mixed with explicit AddCase calls.
func (a *Activity) AddOutputArc(p *Place, mult int) *Activity {
	a.ensureDefaultCase()
	a.cases[0].OutputArcs = append(a.cases[0].OutputArcs, Arc{Place: p, Mult: mult})
	return a
}

// AddOutputGate adds an output gate to the default (single) case.
func (a *Activity) AddOutputGate(g *OutputGate) *Activity {
	a.ensureDefaultCase()
	a.cases[0].OutputGates = append(a.cases[0].OutputGates, g)
	return a
}

func (a *Activity) ensureDefaultCase() {
	if len(a.cases) == 0 {
		a.cases = append(a.cases, Case{})
	}
}

// enabled reports whether the activity is enabled in marking m.
func (a *Activity) enabled(m MarkingReader) bool {
	for _, arc := range a.inputArcs {
		if m.Tokens(arc.Place) < arc.Mult {
			return false
		}
	}
	for _, g := range a.inputGates {
		if g.Enabled != nil && !g.Enabled(m) {
			return false
		}
	}
	return true
}

// Model is a stochastic activity network: a set of places and activities.
// A Model is immutable during simulation, so one Model value can back many
// concurrent replications.
type Model struct {
	name       string
	places     []*Place
	placeByNm  map[string]*Place
	activities []*Activity
	actByName  map[string]*Activity
	// families holds the replicated-family lumpability verdicts declared by
	// model builders (DeclareFamily), reported by Analyze.
	families []LumpabilityVerdict
	// externalReads holds the declared out-of-model place readers
	// (DeclareExternalReader), folded into Analyze's read set.
	externalReads []externalRead
}

// NewModel returns an empty model with the given name.
func NewModel(name string) *Model {
	return &Model{
		name:      name,
		placeByNm: make(map[string]*Place),
		actByName: make(map[string]*Activity),
	}
}

// Name returns the model name.
func (m *Model) Name() string { return m.name }

// AddPlace creates a place with the given name and initial marking. It
// panics on duplicate names because that is always a programming error in
// model construction; use AddPlaceErr when the name is computed from
// external input.
func (m *Model) AddPlace(name string, initial int) *Place {
	p, err := m.AddPlaceErr(name, initial)
	if err != nil {
		panic(err)
	}
	return p
}

// AddPlaceErr creates a place, reporting duplicates as errors.
func (m *Model) AddPlaceErr(name string, initial int) (*Place, error) {
	if _, ok := m.placeByNm[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrDuplicatePlace, name)
	}
	if initial < 0 {
		return nil, fmt.Errorf("san: place %q initial marking %d < 0", name, initial)
	}
	p := &Place{name: name, index: len(m.places), initial: initial}
	m.places = append(m.places, p)
	m.placeByNm[name] = p
	return p, nil
}

// Place returns the place with the given name, or nil.
func (m *Model) Place(name string) *Place { return m.placeByNm[name] }

// Places returns all places in creation order.
func (m *Model) Places() []*Place { return m.places }

// NumPlaces returns the number of places.
func (m *Model) NumPlaces() int { return len(m.places) }

// NumActivities returns the number of activities.
func (m *Model) NumActivities() int { return len(m.activities) }

// Activity returns the activity with the given name, or nil.
func (m *Model) Activity(name string) *Activity { return m.actByName[name] }

// Activities returns all activities in creation order.
func (m *Model) Activities() []*Activity { return m.activities }

// AddTimedActivity creates a timed activity with a fixed delay distribution.
func (m *Model) AddTimedActivity(name string, delay dist.Distribution) *Activity {
	a := m.addActivity(name, Timed, func(MarkingReader) dist.Distribution { return delay })
	a.fixedDelay = delay
	return a
}

// AddTimedActivityFunc creates a timed activity whose delay distribution is
// re-evaluated from the marking each time the activity becomes enabled.
func (m *Model) AddTimedActivityFunc(name string, delay DelayFunc) *Activity {
	return m.addActivity(name, Timed, delay)
}

// AddInstantaneousActivity creates an instantaneous activity.
func (m *Model) AddInstantaneousActivity(name string) *Activity {
	return m.addActivity(name, Instantaneous, nil)
}

func (m *Model) addActivity(name string, kind ActivityKind, delay DelayFunc) *Activity {
	if _, ok := m.actByName[name]; ok {
		panic(fmt.Errorf("%w: %q", ErrDuplicateActivity, name))
	}
	a := &Activity{name: name, kind: kind, delay: delay, index: len(m.activities)}
	m.activities = append(m.activities, a)
	m.actByName[name] = a
	return a
}

// Validate checks structural consistency of the model: every referenced
// place belongs to the model, timed activities have delays, and case
// probabilities are well-formed where they are marking-independent.
func (m *Model) Validate() error {
	owned := make(map[*Place]bool, len(m.places))
	for _, p := range m.places {
		owned[p] = true
	}
	checkArc := func(ctx string, arc Arc) error {
		if arc.Place == nil || !owned[arc.Place] {
			return fmt.Errorf("%w: %s references foreign or nil place", ErrUnknownPlace, ctx)
		}
		if arc.Mult <= 0 {
			return fmt.Errorf("san: %s has non-positive arc multiplicity %d", ctx, arc.Mult)
		}
		return nil
	}
	for _, a := range m.activities {
		if a.kind == Timed && a.delay == nil {
			return fmt.Errorf("%w: activity %q", ErrNoDelay, a.name)
		}
		for _, arc := range a.inputArcs {
			if err := checkArc("activity "+a.name+" input", arc); err != nil {
				return err
			}
		}
		for _, g := range a.inputGates {
			for _, p := range g.Reads {
				if !owned[p] {
					return fmt.Errorf("%w: gate %q of activity %q reads foreign place", ErrUnknownPlace, g.Name, a.name)
				}
			}
		}
		for ci, c := range a.cases {
			for _, arc := range c.OutputArcs {
				if err := checkArc(fmt.Sprintf("activity %s case %d output", a.name, ci), arc); err != nil {
					return err
				}
			}
		}
		if len(a.cases) > 1 {
			// When every probability is marking-independent we can check the sum.
			sum := 0.0
			allStatic := true
			for _, c := range a.cases {
				if c.Probability == nil {
					allStatic = false
					break
				}
				sum += c.Probability(zeroMarking{})
			}
			if allStatic && math.Abs(sum-1) > 1e-9 {
				return fmt.Errorf("%w: activity %q probabilities sum to %v", ErrBadCase, a.name, sum)
			}
		}
	}
	return nil
}

// zeroMarking is a MarkingReader that reports zero tokens everywhere; it is
// used only to probe marking-independent case probabilities in Validate.
type zeroMarking struct{}

// Tokens implements MarkingReader.
func (zeroMarking) Tokens(*Place) int { return 0 }

// InitialMarking returns the initial token vector of the model.
func (m *Model) InitialMarking() []int {
	out := make([]int, len(m.places))
	for i, p := range m.places {
		out[i] = p.initial
	}
	return out
}
