// The calibrated_abe example demonstrates the closed measured-data loop the
// paper is built on, end to end in one program:
//
//  1. generate the synthetic ABE failure logs (the stand-in for NCSA's
//     proprietary logs);
//  2. calibrate the stochastic model from them with internal/calibrate —
//     the survival fit becomes the Weibull disk-lifetime distribution, the
//     raw outage durations and repair lags become empirical distributions,
//     and every derived parameter carries provenance;
//  3. simulate the calibrated composed model and compare its predictions
//     against the availability observed in the logs;
//  4. close the loop: regenerate logs under the calibrated parameters and
//     re-derive the rates, which must match the calibration inputs.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/abe"
	"repro/internal/calibrate"
	"repro/internal/loganalysis"
	"repro/internal/loggen"
	"repro/internal/san"
)

func main() {
	log.SetFlags(0)

	// 1. Measured data: the synthetic ABE logs.
	genCfg := loggen.ABEConfig()
	logs, err := loggen.Generate(genCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d SAN events and %d compute events\n\n", len(logs.SAN), len(logs.Compute))

	// 2. Calibration with provenance.
	cal, err := calibrate.Calibrate(logs, genCfg.Disks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(cal.Table().Render())
	fmt.Printf("disk lifetime:   Weibull(shape=%.3f, scale=%.0f h), mean %.0f h\n",
		cal.DiskLifetime.Shape(), cal.DiskLifetime.Scale(), cal.DiskLifetime.Mean())
	fmt.Printf("outage duration: empirical over %d outages, mean %.2f h\n",
		cal.OutageDuration.N(), cal.OutageDuration.Mean())
	if cal.HasDiskRepair {
		fmt.Printf("disk repair:     empirical over %d incidents, mean %.2f h\n",
			cal.DiskRepair.N(), cal.DiskRepair.Mean())
	}

	// 3. Simulate the calibrated model and validate against the log.
	measures, err := abe.Evaluate(cal.Config, san.Options{Mission: 8760, Replications: 40, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlog-observed CFS availability:    %.4f\n", cal.Rates.CFSAvailability)
	fmt.Printf("model-predicted CFS availability: %.4f (|diff| = %.4f)\n",
		measures.CFSAvailability, math.Abs(measures.CFSAvailability-cal.Rates.CFSAvailability))
	fmt.Printf("model-predicted disks/week:       %.2f (log observed %.2f)\n",
		measures.DiskReplacementsPerWeek, cal.Rates.DiskReplacementsPerWeek)

	// 4. Round trip: regenerate logs under the calibrated parameters and
	// re-derive the rates.
	regen, err := loggen.Generate(cal.LogConfig(genCfg))
	if err != nil {
		log.Fatal(err)
	}
	rerates, err := loganalysis.DeriveRates(regen, genCfg.Disks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nround trip (regenerated logs -> re-derived rates):\n")
	fmt.Printf("  availability:  %.4f -> %.4f\n", cal.Rates.CFSAvailability, rerates.CFSAvailability)
	fmt.Printf("  jobs/hour:     %.2f -> %.2f\n", cal.Rates.JobsPerHour, rerates.JobsPerHour)
	fmt.Printf("  outages/month: %.2f -> %.2f\n", cal.Rates.OutagesPerMonth, rerates.OutagesPerMonth)
	fmt.Printf("  disk shape:    %.3f -> %.3f\n", cal.Rates.DiskWeibullShape, rerates.DiskWeibullShape)
}
