// Package lint implements sanlint, a stdlib-only static-analysis pass over
// this module that proves the determinism contract and model-construction
// invariants before anything runs. It parses and type-checks every non-test
// file with go/parser + go/types (stdlib source importer; no external
// dependencies) and applies six rule passes:
//
//   - nodeterminism: inside the deterministic package set, forbid wall-clock
//     reads (time.Now), the global math/rand generators, and map iteration in
//     unspecified order — unless the range is annotated //lint:sorted or uses
//     the collect-keys-then-sort idiom.
//   - floatorder: inside the deterministic package set, flag floating-point
//     accumulation (+=, x = x + e, Add of float-carrying values) inside map
//     or channel ranges, whose visit order is unspecified — float addition is
//     not associative, so such folds are order-sensitive bit-for-bit. The
//     index-order-reduction idiom (store to indexed slots, fold later in
//     index order) and //lint:sorted annotations are exempt.
//   - nocompiledmutation: flag builder mutations (Add*/Set* calls) on a model
//     after it was handed to san.Compile/CompileStrict in the same function,
//     and any use of the deprecated package-level san.NewSimulator outside
//     package san.
//   - optionshygiene: exported functions that read fields of a san.Options
//     parameter before calling its Validate or WithDefaults are flagged —
//     options must be normalized before they steer a study.
//   - errcheck: discarded error returns (bare call statements and blank
//     assignments) in non-test code.
//   - distliteral: outside the dist package itself, composite literals of
//     dist-defined types implementing dist.Distribution are flagged — they
//     bypass the New* constructors' validation, and static passes
//     (san.ExpandPhases, the lumpability predicates) reason about
//     distributions on the premise that their invariants hold.
//
// Findings carry positions and rule names; sanlint prints them and exits
// non-zero, which is how `make lint` gates CI.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Config selects the module to lint and the packages held to the
// determinism contract. It is explicit (rather than derived from go.mod) so
// the fixture module under testdata can exercise the same rules.
type Config struct {
	// Root is the module root directory.
	Root string
	// ModulePath is the module import path ("repro" for this repo).
	ModulePath string
	// DeterministicPkgs lists the import paths of packages whose outputs
	// must be byte-identical across runs; the nodeterminism pass applies
	// only to them.
	DeterministicPkgs []string
	// SANPath is the import path of the package defining Compile, Options,
	// and NewSimulator (the targets of the model-invariant rules).
	SANPath string
	// DistPath is the import path of the distribution package whose types
	// the distliteral rule protects; the rule is skipped when empty.
	DistPath string
}

// DefaultConfig returns the lint configuration for this repository rooted
// at root: the deterministic set is every package on the model-to-report
// path whose output the determinism contract covers.
func DefaultConfig(root string) Config {
	return Config{
		Root:       root,
		ModulePath: "repro",
		DeterministicPkgs: []string{
			"repro/internal/san",
			"repro/internal/statespace",
			"repro/internal/sweep",
			"repro/internal/rareevent",
			"repro/internal/calibrate",
			"repro/internal/dist",
			"repro/internal/phfit",
			"repro/internal/stats",
			"repro/internal/report",
		},
		SANPath:  "repro/internal/san",
		DistPath: "repro/internal/dist",
	}
}

func (c Config) deterministic(pkgPath string) bool {
	for _, p := range c.DeterministicPkgs {
		if p == pkgPath {
			return true
		}
	}
	return false
}

// Finding is one rule violation at a position.
type Finding struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the finding in the file:line:col: rule: message form the
// sanlint command prints.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Message)
}

// JSONFinding is the machine-readable form of a Finding (sanlint -json).
type JSONFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// RenderJSON renders the findings as an indented JSON array — always an
// array, `[]` when the module is clean — so CI can annotate PRs without
// parsing the text form.
func RenderJSON(findings []Finding) (string, error) {
	out := make([]JSONFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, JSONFinding{
			File: f.Pos.Filename, Line: f.Pos.Line, Column: f.Pos.Column,
			Rule: f.Rule, Message: f.Message,
		})
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b) + "\n", nil
}

// Package is one loaded, type-checked package with everything a rule pass
// needs.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// sortedLines[filename] holds the lines carrying a //lint:sorted
	// annotation; a map range on line L is annotated if an entry exists at
	// L or L-1 (trailing comment or the line above).
	sortedLines map[string]map[int]bool
}

// loader resolves module-internal import paths by parsing and type-checking
// the package directory, and delegates everything else to the compiler's
// source importer — so the linter needs only the stdlib.
type loader struct {
	fset *token.FileSet
	cfg  Config
	std  types.Importer
	pkgs map[string]*Package
}

func newLoader(cfg Config) *loader {
	return &loader{
		fset: token.NewFileSet(),
		cfg:  cfg,
		std:  importer.ForCompiler(token.NewFileSet(), "source", nil),
		pkgs: map[string]*Package{},
	}
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p.Types, nil
	}
	mod := l.cfg.ModulePath
	if path == mod || strings.HasPrefix(path, mod+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks the non-test files of the package at the
// given module-internal import path.
func (l *loader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.cfg.ModulePath), "/")
	dir := filepath.Join(l.cfg.Root, rel)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p := &Package{
		Path:        path,
		Dir:         dir,
		Fset:        l.fset,
		Files:       files,
		Types:       tpkg,
		Info:        info,
		sortedLines: map[string]map[int]bool{},
	}
	for _, f := range files {
		fname := l.fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.Contains(c.Text, "lint:sorted") {
					if p.sortedLines[fname] == nil {
						p.sortedLines[fname] = map[int]bool{}
					}
					p.sortedLines[fname][l.fset.Position(c.Pos()).Line] = true
				}
			}
		}
	}
	l.pkgs[path] = p
	return p, nil
}

// sortedAnnotated reports whether the node's line carries (or follows) a
// //lint:sorted annotation.
func (p *Package) sortedAnnotated(pos token.Pos) bool {
	at := p.Fset.Position(pos)
	lines := p.sortedLines[at.Filename]
	return lines != nil && (lines[at.Line] || lines[at.Line-1])
}

// discoverPackages walks the module tree and returns the import path of
// every directory holding non-test Go files, skipping testdata, vendor, and
// hidden directories.
func discoverPackages(cfg Config) ([]string, error) {
	var paths []string
	err := filepath.WalkDir(cfg.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != cfg.Root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		rel, err := filepath.Rel(cfg.Root, dir)
		if err != nil {
			return err
		}
		imp := cfg.ModulePath
		if rel != "." {
			imp = cfg.ModulePath + "/" + filepath.ToSlash(rel)
		}
		for _, p := range paths {
			if p == imp {
				return nil
			}
		}
		paths = append(paths, imp)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

// Run lints every package of the configured module and returns the findings
// sorted by position. A type-check failure anywhere is an error: the linter
// refuses to certify a module it cannot fully analyze.
func Run(cfg Config) ([]Finding, error) {
	paths, err := discoverPackages(cfg)
	if err != nil {
		return nil, err
	}
	l := newLoader(cfg)
	var findings []Finding
	for _, path := range paths {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		if cfg.deterministic(path) {
			findings = append(findings, noDeterminism(p)...)
			findings = append(findings, floatOrder(p)...)
		}
		findings = append(findings, noCompiledMutation(p, cfg.SANPath)...)
		findings = append(findings, optionsHygiene(p, cfg.SANPath)...)
		findings = append(findings, errCheck(p)...)
		findings = append(findings, distLiteral(p, cfg.DistPath)...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return findings, nil
}

// calleeFunc resolves the called function object of a call expression, or
// nil when it is not a direct (identifier or selector) call.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	f, _ := info.Uses[id].(*types.Func)
	return f
}

// rootIdent unwraps a selector chain (a.b.c) to its base identifier, or nil.
func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		default:
			return nil
		}
	}
}
