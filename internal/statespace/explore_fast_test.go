package statespace_test

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/san"
	"repro/internal/statespace"
)

// buildComponentFarm builds n independent two-state components with distinct
// rates, a two-case failure branch (one case through an output gate), and
// both rate and impulse rewards. Its state space is the full 2^n hypercube
// with BFS levels up to C(n, n/2) states wide, so exploration at
// parallelism > 1 exercises the chunked level-parallel path.
func buildComponentFarm(t *testing.T, n int) *san.CompiledModel {
	t.Helper()
	m := san.NewModel("farm")
	downs := make([]*san.Place, n)
	for i := 0; i < n; i++ {
		up := m.AddPlace(name("up", i), 1)
		down := m.AddPlace(name("down", i), 0)
		downs[i] = down
		fail := m.AddTimedActivity(name("fail", i), mustExpRate(t, 0.001*float64(i+1)))
		fail.AddInputArc(up, 1)
		fail.AddCase(san.Case{
			Probability: func(mr san.MarkingReader) float64 { return 0.7 },
			OutputArcs:  []san.Arc{{Place: down, Mult: 1}},
		})
		fail.AddCase(san.Case{
			Probability: func(mr san.MarkingReader) float64 { return 0.3 },
			OutputGates: []*san.OutputGate{{
				Name:      name("drop", i),
				Transform: func(mw san.MarkingWriter) { mw.SetTokens(down, 1) },
			}},
		})
		repair := m.AddTimedActivity(name("repair", i), mustExpRate(t, 0.05*float64(i+1)))
		repair.AddInputArc(down, 1)
		repair.AddOutputArc(up, 1)
	}
	cm, err := san.Compile(m, []san.RewardVariable{
		san.UpFraction("all_up", func(mr san.MarkingReader) bool {
			for _, d := range downs {
				if mr.Tokens(d) > 0 {
					return false
				}
			}
			return true
		}),
		san.CompletionCount("repairs0", name("repair", 0)),
	})
	if err != nil {
		t.Fatal(err)
	}
	return cm
}

func name(prefix string, i int) string {
	return prefix + string(rune('a'+i))
}

// certifyFarm certifies the component farm with the given options and fails
// the test on refusal.
func certifyFarm(t *testing.T, cm *san.CompiledModel, opts statespace.Options) *statespace.Generator {
	t.Helper()
	gen, cert := statespace.Certify(cm, opts)
	if !cert.Certified() {
		t.Fatalf("refused: %s", cert.Summary())
	}
	return gen
}

// sameChain asserts two generators are the same CTMC, state for state and
// bit for bit. Impulse vectors are compared semantically: the optimized
// explorer emits nil for impulse-free edges where the reference emits an
// all-zero vector, and the two contribute identically to every reward.
func sameChain(t *testing.T, got, want *statespace.Generator) {
	t.Helper()
	if len(got.States) != len(want.States) {
		t.Fatalf("state count: got %d want %d", len(got.States), len(want.States))
	}
	for si := range want.States {
		gm, wm := got.States[si], want.States[si]
		for pi := range wm {
			if gm[pi] != wm[pi] {
				t.Fatalf("state %d marking differs at place %d: got %d want %d", si, pi, gm[pi], wm[pi])
			}
		}
	}
	if len(got.Initial) != len(want.Initial) {
		t.Fatalf("initial atoms: got %d want %d", len(got.Initial), len(want.Initial))
	}
	for i := range want.Initial {
		if got.Initial[i] != want.Initial[i] {
			t.Fatalf("initial atom %d: got %+v want %+v", i, got.Initial[i], want.Initial[i])
		}
	}
	for ri := range want.InitialImpulses {
		if got.InitialImpulses[ri] != want.InitialImpulses[ri] {
			t.Fatalf("initial impulse %d: got %v want %v", ri, got.InitialImpulses[ri], want.InitialImpulses[ri])
		}
	}
	for si := range want.Transitions {
		ge, we := got.Transitions[si], want.Transitions[si]
		if len(ge) != len(we) {
			t.Fatalf("state %d: got %d edges want %d", si, len(ge), len(we))
		}
		for k := range we {
			g, w := ge[k], we[k]
			if g.From != w.From || g.To != w.To || g.Activity != w.Activity ||
				math.Float64bits(g.Rate) != math.Float64bits(w.Rate) {
				t.Fatalf("state %d edge %d: got %+v want %+v", si, k, g, w)
			}
			n := len(g.Impulses)
			if len(w.Impulses) > n {
				n = len(w.Impulses)
			}
			for ri := 0; ri < n; ri++ {
				var gi, wi float64
				if ri < len(g.Impulses) {
					gi = g.Impulses[ri]
				}
				if ri < len(w.Impulses) {
					wi = w.Impulses[ri]
				}
				if math.Float64bits(gi) != math.Float64bits(wi) {
					t.Fatalf("state %d edge %d impulse %d: got %v want %v", si, k, ri, gi, wi)
				}
			}
		}
	}
}

// TestExploreFastMatchesBaseline checks the interned explorer against the
// sequential reference implementation on the hypercube fixture: identical
// state numbering, markings, initial distribution, and edges, at
// parallelism 1 and at a worker count far above the chunk count.
func TestExploreFastMatchesBaseline(t *testing.T) {
	cm := buildComponentFarm(t, 8)
	ref := certifyFarm(t, cm, statespace.Options{Baseline: true})
	if len(ref.States) != 256 {
		t.Fatalf("fixture: got %d states, want 256", len(ref.States))
	}
	for _, par := range []int{1, 8} {
		fast := certifyFarm(t, cm, statespace.Options{Parallelism: par})
		sameChain(t, fast, ref)
	}
}

// TestExploreFastMatchesBaselineVanishing repeats the differential check on
// a model with instantaneous activities, covering the vanishing-elimination
// route of the optimized explorer.
func TestExploreFastMatchesBaselineVanishing(t *testing.T) {
	build := func() *san.CompiledModel {
		m := san.NewModel("vanish")
		up := m.AddPlace("up", 2)
		staged := m.AddPlace("staged", 0)
		downA := m.AddPlace("down_a", 0)
		downB := m.AddPlace("down_b", 0)
		fail := m.AddTimedActivity("fail", mustExpRate(t, 0.01))
		fail.AddInputArc(up, 1)
		fail.AddOutputArc(staged, 1)
		route := m.AddInstantaneousActivity("route")
		route.AddInputArc(staged, 1)
		route.AddCase(san.Case{
			Probability: func(mr san.MarkingReader) float64 { return 0.5 },
			OutputArcs:  []san.Arc{{Place: downA, Mult: 1}},
		})
		route.AddCase(san.Case{
			Probability: func(mr san.MarkingReader) float64 { return 0.5 },
			OutputArcs:  []san.Arc{{Place: downB, Mult: 1}},
		})
		repairA := m.AddTimedActivity("repair_a", mustExpRate(t, 0.2))
		repairA.AddInputArc(downA, 1)
		repairA.AddOutputArc(up, 1)
		repairB := m.AddTimedActivity("repair_b", mustExpRate(t, 0.3))
		repairB.AddInputArc(downB, 1)
		repairB.AddOutputArc(up, 1)
		cm, err := san.Compile(m, []san.RewardVariable{
			san.UpFraction("avail", func(mr san.MarkingReader) bool { return mr.Tokens(up) > 0 }),
			san.CompletionCount("routed", "route"),
		})
		if err != nil {
			t.Fatal(err)
		}
		return cm
	}
	ref := certifyFarm(t, build(), statespace.Options{Baseline: true})
	fast := certifyFarm(t, build(), statespace.Options{Parallelism: 4})
	sameChain(t, fast, ref)
}

// TestExploreGoldenNumbering pins the state numbering of the hypercube
// fixture to a golden digest. The baseline and optimized explorers are
// required to agree with each other *and* with this constant, so neither can
// silently drift — the interned index must keep assigning indices in the
// reference discovery order.
func TestExploreGoldenNumbering(t *testing.T) {
	const golden = "c4ad5665ce507fab4bd04e4f95bb3e4bc8a543d60056960d57949dd0b445d6a4"
	cm := buildComponentFarm(t, 8)
	for _, opts := range []statespace.Options{{Baseline: true}, {}, {Parallelism: 8}} {
		gen := certifyFarm(t, cm, opts)
		h := sha256.New()
		var buf [8]byte
		for _, mark := range gen.States {
			for _, v := range mark {
				binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
				h.Write(buf[:])
			}
		}
		if got := hex.EncodeToString(h.Sum(nil)); got != golden {
			t.Fatalf("state numbering drifted (opts %+v):\n got %s\nwant %s", opts, got, golden)
		}
	}
}

// TestSolveBitIdenticalAcrossParallelism runs explore + SolveTransient +
// SolveSteadyState at parallelism 1 and at several higher worker counts and
// asserts the reward maps are bit-identical: the fixed-chunk kernels must
// make the worker count unobservable in the floating-point result.
func TestSolveBitIdenticalAcrossParallelism(t *testing.T) {
	cm := buildComponentFarm(t, 8)
	base := certifyFarm(t, cm, statespace.Options{Parallelism: 1})
	wantTr, err := base.SolveTransient(5000)
	if err != nil {
		t.Fatal(err)
	}
	wantSS, err := base.SolveSteadyState()
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 4, 16} {
		gen := certifyFarm(t, cm, statespace.Options{Parallelism: par})
		gotTr, err := gen.SolveTransient(5000)
		if err != nil {
			t.Fatal(err)
		}
		gotSS, err := gen.SolveSteadyState()
		if err != nil {
			t.Fatal(err)
		}
		for name, want := range wantTr {
			if math.Float64bits(gotTr[name]) != math.Float64bits(want) {
				t.Errorf("parallelism %d: transient %q = %v, want bit-identical %v", par, name, gotTr[name], want)
			}
		}
		for name, want := range wantSS {
			if math.Float64bits(gotSS[name]) != math.Float64bits(want) {
				t.Errorf("parallelism %d: steady-state %q = %v, want bit-identical %v", par, name, gotSS[name], want)
			}
		}
	}
}

// TestFastSolverMatchesBaselineNumerically checks the gather kernel against
// the scatter reference: same chain, same series, results equal to
// reassociation-level tolerance.
func TestFastSolverMatchesBaselineNumerically(t *testing.T) {
	cm := buildComponentFarm(t, 6)
	ref := certifyFarm(t, cm, statespace.Options{Baseline: true})
	fast := certifyFarm(t, cm, statespace.Options{Parallelism: 4})
	want, err := ref.SolveTransient(5000)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fast.SolveTransient(5000)
	if err != nil {
		t.Fatal(err)
	}
	for name, w := range want {
		if diff := math.Abs(got[name] - w); diff > 1e-9*(1+math.Abs(w)) {
			t.Errorf("reward %q: fast %v vs baseline %v (diff %g)", name, got[name], w, diff)
		}
	}
}

// TestExploreFastRefusalsMatchBaseline checks that the optimized explorer
// reproduces the reference explorer's refusals — text and classification —
// for marking-dependent rates without reactivation and for budget overruns.
func TestExploreFastRefusalsMatchBaseline(t *testing.T) {
	build := func() *san.CompiledModel {
		m := san.NewModel("nm")
		p := m.AddPlace("p", 2)
		q := m.AddPlace("q", 0)
		// Marking-dependent rate without reactivation: refused during
		// exploration, not at the initial-marking pre-check.
		a := m.AddTimedActivityFunc("drain", func(mr san.MarkingReader) dist.Distribution {
			return mustExpRate(t, float64(1+mr.Tokens(p)))
		})
		a.AddInputArc(p, 1)
		a.AddOutputArc(q, 1)
		cm, err := san.Compile(m, []san.RewardVariable{
			san.UpFraction("up", func(mr san.MarkingReader) bool { return mr.Tokens(p) > 0 }),
		})
		if err != nil {
			t.Fatal(err)
		}
		return cm
	}
	_, refCert := statespace.Certify(build(), statespace.Options{Baseline: true})
	_, fastCert := statespace.Certify(build(), statespace.Options{Parallelism: 4})
	if refCert.Certified() || fastCert.Certified() {
		t.Fatal("fixture unexpectedly certified")
	}
	if got, want := fastCert.Summary(), refCert.Summary(); got != want {
		t.Fatalf("refusal text differs:\nfast:     %s\nbaseline: %s", got, want)
	}

	// Budget overrun: both paths must stop at the same budget with the same
	// refusal.
	cm := buildComponentFarm(t, 8)
	_, refCert = statespace.Certify(cm, statespace.Options{Baseline: true, MaxStates: 100})
	_, fastCert = statespace.Certify(cm, statespace.Options{Parallelism: 4, MaxStates: 100})
	if refCert.Certified() || fastCert.Certified() {
		t.Fatal("budget fixture unexpectedly certified")
	}
	if got, want := fastCert.Summary(), refCert.Summary(); got != want {
		t.Fatalf("budget refusal differs:\nfast:     %s\nbaseline: %s", got, want)
	}
}
