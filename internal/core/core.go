// Package core assembles the paper's primary contribution as a reusable
// dependability-analysis workflow: calibrate the stochastic model from
// failure logs, evaluate the cluster file system design at its current and
// future scale, and compare design alternatives (standby-spare OSS, RAID
// geometry, disk quality) so storage architects can make informed choices.
package core

import (
	"errors"
	"fmt"

	"repro/internal/abe"
	"repro/internal/calibrate"
	"repro/internal/loganalysis"
	"repro/internal/loggen"
	"repro/internal/report"
	"repro/internal/san"
	"repro/internal/sweep"
)

// ErrNoDesigns is returned when a comparison is requested over no designs.
var ErrNoDesigns = errors.New("core: no designs to compare")

// DesignChoice is one named configuration under evaluation.
type DesignChoice struct {
	Name   string
	Config abe.Config
}

// CalibrateFromLogs applies the rates extracted from failure logs to a base
// configuration, mirroring the paper's two-pronged approach: log analysis
// feeds the stochastic model. It is a thin veneer over calibrate.CalibrateWith
// (which fits the disk Weibull, the empirical outage and repair durations,
// and the workload rates, with per-parameter provenance); the derived rates
// are returned so callers can report them (Table 5's "obtained from log file
// analysis" entries). Callers that want the fitted distributions or the
// provenance record should use package calibrate directly.
func CalibrateFromLogs(logs *loggen.Logs, base abe.Config, diskPopulation int) (abe.Config, loganalysis.DerivedRates, error) {
	cal, err := calibrate.CalibrateWith(logs, diskPopulation, base)
	if err != nil {
		return abe.Config{}, loganalysis.DerivedRates{}, fmt.Errorf("core: calibration: %w", err)
	}
	return cal.Config, cal.Rates, nil
}

// CompareDesigns evaluates each design and returns a comparison table plus
// the raw measures, in input order. The designs run as one sharded sweep over
// a shared worker pool, and every design is pinned to the same study seed
// (common random numbers), so measured differences reflect the designs, not
// the draws.
func CompareDesigns(designs []DesignChoice, opts san.Options) (report.Table, []abe.Measures, error) {
	if len(designs) == 0 {
		return report.Table{}, nil, ErrNoDesigns
	}
	opts = opts.WithDefaults()
	points := make([]sweep.Point, len(designs))
	for i, d := range designs {
		points[i] = sweep.Point{Label: d.Name, Config: d.Config, Seed: opts.Seed}
	}
	res, err := sweep.Run(points, opts)
	if err != nil {
		return report.Table{}, nil, fmt.Errorf("core: %w", err)
	}
	table := res.Table("Design comparison")
	table.Headers[0] = "Design"
	measures := make([]abe.Measures, len(res.Points))
	for i, pt := range res.Points {
		measures[i] = pt.Measures
	}
	return table, measures, nil
}

// ScalingStudy evaluates the base configuration at each scale factor and
// returns the availability/utility curves (the core of Figure 4) plus the
// raw measures. Like CompareDesigns, the factors run as one sharded sweep
// with a shared seed.
func ScalingStudy(base abe.Config, factors []float64, opts san.Options) (report.Figure, []abe.Measures, error) {
	if len(factors) == 0 {
		return report.Figure{}, nil, errors.New("core: no scale factors")
	}
	opts = opts.WithDefaults()
	points := make([]sweep.Point, len(factors))
	for i, f := range factors {
		points[i] = sweep.Point{Config: base.ScaledBy(f), Seed: opts.Seed}
	}
	res, err := sweep.Run(points, opts)
	if err != nil {
		return report.Figure{}, nil, fmt.Errorf("core: %w", err)
	}
	fig := report.Figure{
		Title:  fmt.Sprintf("Scaling study of %s", base.Name),
		XLabel: "scale factor",
		YLabel: "availability / utility",
	}
	measures := make([]abe.Measures, len(res.Points))
	for i, f := range factors {
		m := res.Points[i].Measures
		measures[i] = m
		fig.AddPoint("Storage-availability", report.Point{X: f, Y: m.StorageAvailability})
		fig.AddPoint("CFS-Availability", report.Point{X: f, Y: m.CFSAvailability})
		fig.AddPoint("CU", report.Point{X: f, Y: m.ClusterUtility})
	}
	return fig, measures, nil
}

// Recommendation is a qualitative design finding derived from measured
// differences, phrased the way the paper's conclusions are.
type Recommendation struct {
	Finding string
	Delta   float64
}

// RecommendSpareOSS quantifies the paper's standby-spare design alternative
// at the given configuration: it evaluates the configuration with and
// without a spare OSS and reports the availability gain.
func RecommendSpareOSS(cfg abe.Config, opts san.Options) (Recommendation, error) {
	without, err := abe.Evaluate(cfg.WithSpareOSS(false), opts)
	if err != nil {
		return Recommendation{}, err
	}
	with, err := abe.Evaluate(cfg.WithSpareOSS(true), opts)
	if err != nil {
		return Recommendation{}, err
	}
	delta := with.CFSAvailability - without.CFSAvailability
	return Recommendation{
		Finding: fmt.Sprintf("a standby-spare OSS improves CFS availability by %.1f%% (%.4f -> %.4f) at %s scale",
			delta*100, without.CFSAvailability, with.CFSAvailability, cfg.Name),
		Delta: delta,
	}, nil
}
