package statespace

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file holds the production solver kernels behind SolveTransient and
// SolveSteadyState: a gather-oriented (transposed) sparse matrix–vector
// product partitioned into fixed-size row chunks that any number of workers
// can execute, with every order-sensitive reduction — per-chunk L1 partials —
// folded in chunk-index order. The chunk size is a constant, never derived
// from the worker count, so the floating-point result is bit-identical at
// every parallelism, including 1. solve.go keeps the sequential scatter
// reference implementation, reachable via Options.Baseline.
//
// The gather layout stores P transposed: row t lists the source states s with
// an edge s→t, so dst[t] = v[t]·stay[t] + Σ_s v[s]·P[s,t] is a single
// accumulation the computing worker owns — no scatter conflicts, no atomics,
// and each row's sum runs in a fixed (ascending-source) order.

// solveChunkRows is the fixed row-partition size of the parallel kernels.
const solveChunkRows = 4096

// SolveTransient computes every reward variable at mission time T by
// uniformization — see solveTransientBaseline for the math. Production calls
// run on the parallel gather kernels; certificates produced with
// Options.Baseline route to the sequential reference implementation.
func (g *Generator) SolveTransient(T float64) (map[string]float64, error) {
	if g.baseline {
		return g.solveTransientBaseline(T)
	}
	return g.solveTransientFast(T)
}

// SolveSteadyState computes the long-run value of every reward variable —
// see solveSteadyStateBaseline for the math and the aperiodicity argument.
func (g *Generator) SolveSteadyState() (map[string]float64, error) {
	if g.baseline {
		return g.solveSteadyStateBaseline()
	}
	return g.solveSteadyStateFast()
}

// workers resolves the generator's worker count.
func (g *Generator) workers() int {
	if g.par > 0 {
		return g.par
	}
	return runtime.GOMAXPROCS(0)
}

// gatherCSR is the uniformized matrix P = I + Q/Λ stored transposed for
// gather-style products. Parallel edges between the same state pair stay
// separate entries (their contributions sum in fixed source order), and
// self-loops are excluded from the dynamics exactly as in the scatter form.
type gatherCSR struct {
	rowStart []int32 // per destination state: start of its source entries
	srcIdx   []int32
	val      []float64
	stay     []float64 // diagonal: 1 - exit_s/Λ
}

// buildGather assembles the transposed uniformized matrix at rate lambda.
// Entries of destination row t are produced by scanning sources in ascending
// state order, so the row's accumulation order is deterministic by
// construction.
func (g *Generator) buildGather(lambda float64) *gatherCSR {
	n := len(g.States)
	m := &gatherCSR{rowStart: make([]int32, n+1), stay: make([]float64, n)}
	counts := make([]int32, n)
	for s := 0; s < n; s++ {
		exit := 0.0
		for _, t := range g.Transitions[s] {
			if t.To == s {
				continue
			}
			exit += t.Rate
			counts[t.To]++
		}
		m.stay[s] = 1 - exit/lambda
	}
	total := int32(0)
	for t := 0; t < n; t++ {
		m.rowStart[t] = total
		total += counts[t]
	}
	m.rowStart[n] = total
	m.srcIdx = make([]int32, total)
	m.val = make([]float64, total)
	pos := make([]int32, n)
	copy(pos, m.rowStart[:n])
	for s := 0; s < n; s++ {
		for _, t := range g.Transitions[s] {
			if t.To == s {
				continue
			}
			k := pos[t.To]
			pos[t.To] = k + 1
			m.srcIdx[k] = int32(s)
			m.val[k] = t.Rate / lambda
		}
	}
	return m
}

// stepRange computes rows [lo,hi) of dst = v·P. The row sum runs on four
// independent accumulators so consecutive products do not serialize on one
// floating-point add chain (the add latency, not the loads, bounds the naive
// loop); the lane assignment and the final combine order are fixed functions
// of the row, so the result is deterministic — it just associates the sum
// differently than a strict left fold.
func (m *gatherCSR) stepRange(dst, v []float64, lo, hi int) {
	rowStart := m.rowStart
	for t := lo; t < hi; t++ {
		a, b := rowStart[t], rowStart[t+1]
		src := m.srcIdx[a:b]
		val := m.val[a:b][:len(src)]
		var s0, s1, s2, s3 float64
		k := 0
		for ; k+4 <= len(src); k += 4 {
			s0 += v[src[k]] * val[k]
			s1 += v[src[k+1]] * val[k+1]
			s2 += v[src[k+2]] * val[k+2]
			s3 += v[src[k+3]] * val[k+3]
		}
		acc := v[t] * m.stay[t]
		for ; k < len(src); k++ {
			acc += v[src[k]] * val[k]
		}
		dst[t] = acc + ((s0 + s2) + (s1 + s3))
	}
}

// nChunksFor returns the number of fixed-size row chunks covering n rows.
func nChunksFor(n int) int {
	return (n + solveChunkRows - 1) / solveChunkRows
}

// chunkRun partitions [0,n) into fixed-size row chunks and runs fn on each,
// using up to par workers pulling chunks off an atomic counter. Chunk
// boundaries do not depend on par and callers reduce per-chunk partials in
// chunk-index order, so results are bit-identical at any parallelism.
func chunkRun(n, par int, fn func(chunk, lo, hi int)) {
	nChunks := nChunksFor(n)
	if par > nChunks {
		par = nChunks
	}
	if par <= 1 {
		for c := 0; c < nChunks; c++ {
			lo := c * solveChunkRows
			hi := min(lo+solveChunkRows, n)
			fn(c, lo, hi)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(cursor.Add(1)) - 1
				if c >= nChunks {
					return
				}
				lo := c * solveChunkRows
				hi := min(lo+solveChunkRows, n)
				fn(c, lo, hi)
			}
		}()
	}
	wg.Wait()
}

// vecPool recycles iteration vectors across solves. Vectors are zero-filled
// on the way out, so reuse cannot leak state between solves.
var vecPool sync.Pool

func getVec(n int) []float64 {
	if p, ok := vecPool.Get().(*[]float64); ok && cap(*p) >= n {
		v := (*p)[:n]
		clear(v)
		return v
	}
	return make([]float64, n)
}

func putVec(v []float64) {
	v = v[:cap(v)]
	vecPool.Put(&v)
}

// fusedUpdate folds one uniformization term into the accumulators for rows
// [lo,hi): pi += w·next, sojourn += tl·next, returning the L1 difference
// between next and the previous iterate v for steady-state detection. The
// w == 0 branch (fully underflowed Poisson weight — the entire pre-mode ramp
// of a large-ΛT series) skips the pi pass; adding w·x = +0.0 to a
// non-negative accumulator is exact, so the skip is bit-identical.
func fusedUpdate(next, v, pi, sojourn []float64, w, tl float64, lo, hi int) float64 {
	diff := 0.0
	if w == 0 {
		for s := lo; s < hi; s++ {
			x := next[s]
			sojourn[s] += tl * x
			diff += math.Abs(x - v[s])
		}
		return diff
	}
	for s := lo; s < hi; s++ {
		x := next[s]
		pi[s] += w * x
		sojourn[s] += tl * x
		diff += math.Abs(x - v[s])
	}
	return diff
}

// solveTransientFast is the production uniformization path: identical series,
// weights, tolerances, and steady-state collapse as solveTransientBaseline,
// executed on the fused gather kernel with pooled vectors. Within this path
// results are bit-identical at every parallelism; against the baseline they
// agree to floating-point reassociation (the gather accumulation order
// differs from scatter).
func (g *Generator) solveTransientFast(T float64) (map[string]float64, error) {
	if !(T > 0) || math.IsInf(T, 0) {
		return nil, fmt.Errorf("%w: mission time %v", ErrSolve, T)
	}
	n := len(g.States)
	par := g.workers()
	pi := getVec(n)      // π(T)
	sojourn := getVec(n) // L(T)
	defer putVec(pi)
	defer putVec(sojourn)
	for _, sp := range g.Initial {
		pi[sp.State] = sp.Prob
	}

	lambda := g.maxExitRate()
	if lambda == 0 {
		// No timed behavior: the chain sits in its initial distribution.
		for s, p := range pi {
			sojourn[s] = p * T
		}
		return g.evalRewards(pi, sojourn, T)
	}
	lt := lambda * T
	if lt > maxUniformizationConstant {
		return nil, fmt.Errorf("%w: uniformization constant %v too large", ErrSolve, lt)
	}

	P := g.buildGather(lambda)
	v := getVec(n)
	next := getVec(n)
	defer putVec(v)
	defer putVec(next)
	for _, sp := range g.Initial {
		v[sp.State] = sp.Prob
	}

	// Iteratively updated Poisson weights in log space; see the baseline for
	// the series and the usedTime bookkeeping.
	logWeight := -lt
	w := math.Exp(logWeight)
	accumulated := w
	tl := (1 - accumulated) / lambda
	for s := range v {
		pi[s] = w * v[s]
		sojourn[s] = tl * v[s]
	}
	usedTime := tl

	const tol = 1e-12
	const ssTol = 1e-13
	maxIter := int(lt + 12*math.Sqrt(lt+1) + 50)
	diffs := make([]float64, nChunksFor(n))
	for it := 1; it <= maxIter; it++ {
		logWeight += math.Log(lt) - math.Log(float64(it))
		w = math.Exp(logWeight)
		accumulated += w
		tail := 1 - accumulated
		if tail < 0 {
			tail = 0
		}
		tl = tail / lambda
		wTerm, tlTerm := w, tl
		chunkRun(n, par, func(c, lo, hi int) {
			P.stepRange(next, v, lo, hi)
			diffs[c] = fusedUpdate(next, v, pi, sojourn, wTerm, tlTerm, lo, hi)
		})
		usedTime += tl
		v, next = next, v
		if it > int(lt) && 1-accumulated < tol {
			break
		}
		diff := 0.0
		for _, d := range diffs {
			diff += d
		}
		if diff < ssTol {
			// Steady-state collapse: every remaining term multiplies the
			// same vector (see the baseline).
			remMass := 1 - accumulated
			if remMass < 0 {
				remMass = 0
			}
			remTime := T - usedTime
			if remTime < 0 {
				remTime = 0
			}
			for s := range v {
				pi[s] += remMass * v[s]
				sojourn[s] += remTime * v[s]
			}
			break
		}
	}
	return g.evalRewards(pi, sojourn, T)
}

// solveSteadyStateFast is the production power-iteration path: identical
// iteration and tolerance as solveSteadyStateBaseline on the parallel gather
// kernel.
func (g *Generator) solveSteadyStateFast() (map[string]float64, error) {
	n := len(g.States)
	par := g.workers()
	pi := getVec(n)
	defer putVec(pi)
	for _, sp := range g.Initial {
		pi[sp.State] = sp.Prob
	}
	lambda := g.maxExitRate()
	if lambda > 0 {
		P := g.buildGather(lambda * 1.05)
		next := getVec(n)
		defer putVec(next)
		const tol = 1e-14
		maxIter := 5_000_000
		converged := false
		diffs := make([]float64, nChunksFor(n))
		for it := 0; it < maxIter; it++ {
			chunkRun(n, par, func(c, lo, hi int) {
				P.stepRange(next, pi, lo, hi)
				d := 0.0
				for s := lo; s < hi; s++ {
					d += math.Abs(next[s] - pi[s])
				}
				diffs[c] = d
			})
			pi, next = next, pi
			diff := 0.0
			for _, d := range diffs {
				diff += d
			}
			if diff < tol {
				converged = true
				break
			}
		}
		if !converged {
			return nil, fmt.Errorf("%w: steady-state power iteration did not converge within %d steps", ErrSolve, maxIter)
		}
	}
	return g.longRunRewards(pi)
}
