// Package stats provides the statistical machinery used to report simulation
// results the way the paper does: running summaries, Student-t confidence
// intervals at 95%, batch means for steady-state estimation, histograms, and
// simple regression utilities.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrInsufficientData reports an estimator invoked with too few observations.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Summary accumulates observations with Welford's online algorithm so that a
// reward variable can be summarized without storing every replication result.
type Summary struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
	sum  float64
}

// NewSummary returns an empty summary.
func NewSummary() *Summary {
	return &Summary{min: math.Inf(1), max: math.Inf(-1)}
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	s.sum += x
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
	if x < s.min {
		s.min = x
	}
	if x > s.max {
		s.max = x
	}
}

// AddAll records every observation in xs.
func (s *Summary) AddAll(xs []float64) {
	for _, x := range xs {
		s.Add(x)
	}
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 when empty).
func (s *Summary) Mean() float64 { return s.mean }

// Sum returns the sum of observations.
func (s *Summary) Sum() float64 { return s.sum }

// Min returns the smallest observation (+Inf when empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (-Inf when empty).
func (s *Summary) Max() float64 { return s.max }

// Variance returns the unbiased sample variance. It returns 0 when fewer
// than two observations have been recorded.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// StdErr returns the standard error of the mean.
func (s *Summary) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// Interval is a two-sided confidence interval around a point estimate.
type Interval struct {
	Mean       float64
	HalfWidth  float64
	Confidence float64
	N          int
}

// Lower returns the lower bound of the interval.
func (ci Interval) Lower() float64 { return ci.Mean - ci.HalfWidth }

// Upper returns the upper bound of the interval.
func (ci Interval) Upper() float64 { return ci.Mean + ci.HalfWidth }

// Contains reports whether x lies inside the interval.
func (ci Interval) Contains(x float64) bool {
	return x >= ci.Lower() && x <= ci.Upper()
}

// String formats the interval as "mean ± halfwidth (conf%)".
func (ci Interval) String() string {
	return fmt.Sprintf("%.6g ± %.3g (%.0f%%, n=%d)", ci.Mean, ci.HalfWidth, ci.Confidence*100, ci.N)
}

// ConfidenceInterval returns the Student-t confidence interval of the mean at
// the given confidence level (e.g. 0.95). It returns ErrInsufficientData when
// fewer than two observations are available.
func (s *Summary) ConfidenceInterval(confidence float64) (Interval, error) {
	if s.n < 2 {
		return Interval{}, fmt.Errorf("%w: need >=2 observations, have %d", ErrInsufficientData, s.n)
	}
	if !(confidence > 0 && confidence < 1) {
		return Interval{}, fmt.Errorf("stats: confidence %v outside (0,1)", confidence)
	}
	tq := StudentTQuantile(1-(1-confidence)/2, float64(s.n-1))
	return Interval{
		Mean:       s.mean,
		HalfWidth:  tq * s.StdErr(),
		Confidence: confidence,
		N:          s.n,
	}, nil
}

// RelativeHalfWidth returns the confidence-interval half width divided by the
// mean, used as a stopping criterion for sequential replication.
func (s *Summary) RelativeHalfWidth(confidence float64) float64 {
	ci, err := s.ConfidenceInterval(confidence)
	if err != nil || ci.Mean == 0 {
		return math.Inf(1)
	}
	return ci.HalfWidth / math.Abs(ci.Mean)
}

// ---------------------------------------------------------------------------
// Student-t distribution
// ---------------------------------------------------------------------------

// StudentTCDF returns P(T <= t) for a Student-t random variable with df
// degrees of freedom.
func StudentTCDF(t, df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	x := df / (df + t*t)
	ib := RegularizedIncompleteBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - 0.5*ib
	}
	return 0.5 * ib
}

// StudentTQuantile returns the p-quantile of the Student-t distribution with
// df degrees of freedom, computed by bisection on the CDF.
func StudentTQuantile(p, df float64) float64 {
	if df <= 0 || math.IsNaN(p) {
		return math.NaN()
	}
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	if p == 0.5 {
		return 0
	}
	lo, hi := -1e3, 1e3
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if StudentTCDF(mid, df) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// NormalQuantile returns the p-quantile of the standard normal distribution,
// computed by bisection on the CDF. It is the large-sample limit of
// StudentTQuantile and is used by estimators whose sampling distribution is
// asymptotically normal (binomial proportions, splitting products).
func NormalQuantile(p float64) float64 {
	if math.IsNaN(p) {
		return math.NaN()
	}
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	if p == 0.5 {
		return 0
	}
	cdf := func(x float64) float64 { return 0.5 * (1 + math.Erf(x/math.Sqrt2)) }
	lo, hi := -40.0, 40.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if cdf(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// ---------------------------------------------------------------------------
// Binomial and product-of-binomials estimators (rare-event splitting)
// ---------------------------------------------------------------------------

// BinomialProportionInterval returns the normal-approximation confidence
// interval for a binomial proportion hits/trials. When no successes were
// observed the half width falls back to the "rule of three" upper bound
// ln(1/alpha)/trials (≈3/trials at 95%), so an all-miss naive Monte Carlo
// study reports an honest nonzero uncertainty instead of a zero-width
// interval.
func BinomialProportionInterval(hits, trials int, confidence float64) (Interval, error) {
	if trials < 1 || hits < 0 || hits > trials {
		return Interval{}, fmt.Errorf("stats: invalid binomial counts %d/%d", hits, trials)
	}
	if !(confidence > 0 && confidence < 1) {
		return Interval{}, fmt.Errorf("stats: confidence %v outside (0,1)", confidence)
	}
	n := float64(trials)
	p := float64(hits) / n
	var half float64
	switch {
	case hits == 0 || hits == trials:
		half = math.Log(1/(1-confidence)) / n
	default:
		z := NormalQuantile(1 - (1-confidence)/2)
		half = z * math.Sqrt(p*(1-p)/n)
	}
	return Interval{Mean: p, HalfWidth: half, Confidence: confidence, N: trials}, nil
}

// SplittingStage records one stage of a fixed-effort multilevel splitting
// run: how many trajectories were launched and how many reached the next
// importance level.
type SplittingStage struct {
	Trials int
	Hits   int
}

// ProductBinomialInterval estimates p = Π p_k from per-stage binomial counts
// — the fixed-effort multilevel splitting estimator, which is unbiased when
// each stage's restarts preserve the entry state of the trajectories that
// crossed the previous level. The confidence interval comes from the delta
// method on log p̂, treating stages as independent:
//
//	Var(p̂)/p̂² ≈ Σ_k (1 - p_k) / (N_k p_k)
//
// (conditional on the entry-state pools; entry-state reuse makes this an
// approximation). When some stage observed no crossings the estimate is 0
// and the half width degrades to the product of the per-stage upper bounds
// (rule of three for the zero stages), an honest conservative bound.
func ProductBinomialInterval(stages []SplittingStage, confidence float64) (Interval, error) {
	if len(stages) == 0 {
		return Interval{}, fmt.Errorf("%w: no splitting stages", ErrInsufficientData)
	}
	if !(confidence > 0 && confidence < 1) {
		return Interval{}, fmt.Errorf("stats: confidence %v outside (0,1)", confidence)
	}
	totalTrials := 0
	product := 1.0
	relVar := 0.0
	anyZero := false
	upper := 1.0
	for i, st := range stages {
		if st.Trials < 1 || st.Hits < 0 || st.Hits > st.Trials {
			return Interval{}, fmt.Errorf("stats: stage %d has invalid counts %d/%d", i, st.Hits, st.Trials)
		}
		totalTrials += st.Trials
		n := float64(st.Trials)
		pk := float64(st.Hits) / n
		product *= pk
		if st.Hits == 0 {
			anyZero = true
			upper *= math.Log(1/(1-confidence)) / n
			continue
		}
		upper *= pk
		relVar += (1 - pk) / (n * pk)
	}
	if anyZero {
		return Interval{Mean: 0, HalfWidth: upper, Confidence: confidence, N: totalTrials}, nil
	}
	z := NormalQuantile(1 - (1-confidence)/2)
	return Interval{
		Mean:       product,
		HalfWidth:  z * product * math.Sqrt(relVar),
		Confidence: confidence,
		N:          totalTrials,
	}, nil
}

// RegularizedIncompleteBeta computes I_x(a, b) using the continued-fraction
// expansion (Numerical Recipes style, re-derived from the standard Lentz
// algorithm).
func RegularizedIncompleteBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lnBeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(lnBeta + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaContinuedFraction(a, b, x) / a
	}
	return 1 - front*betaContinuedFraction(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

func betaContinuedFraction(a, b, x float64) float64 {
	const (
		maxIter = 500
		eps     = 3e-14
		fpMin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpMin {
		d = fpMin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpMin {
			d = fpMin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpMin {
			c = fpMin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpMin {
			d = fpMin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpMin {
			c = fpMin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// ---------------------------------------------------------------------------
// Batch means
// ---------------------------------------------------------------------------

// BatchMeans estimates the mean of a correlated time series (e.g. a
// steady-state reward sampled along one long run) by grouping observations
// into batches and treating batch averages as independent.
type BatchMeans struct {
	batchSize int
	current   []float64
	batches   *Summary
}

// NewBatchMeans returns a batch-means estimator with the given batch size.
func NewBatchMeans(batchSize int) (*BatchMeans, error) {
	if batchSize < 1 {
		return nil, fmt.Errorf("stats: batch size %d < 1", batchSize)
	}
	return &BatchMeans{batchSize: batchSize, batches: NewSummary()}, nil
}

// Add records one observation, closing a batch when it is full.
func (b *BatchMeans) Add(x float64) {
	b.current = append(b.current, x)
	if len(b.current) == b.batchSize {
		var sum float64
		for _, v := range b.current {
			sum += v
		}
		b.batches.Add(sum / float64(b.batchSize))
		b.current = b.current[:0]
	}
}

// Batches returns the number of completed batches.
func (b *BatchMeans) Batches() int { return b.batches.N() }

// Mean returns the mean across completed batches.
func (b *BatchMeans) Mean() float64 { return b.batches.Mean() }

// ConfidenceInterval returns the CI over completed batch means.
func (b *BatchMeans) ConfidenceInterval(confidence float64) (Interval, error) {
	return b.batches.ConfidenceInterval(confidence)
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

// Histogram is a fixed-bin histogram over [lo, hi); values outside the range
// are counted in the underflow/overflow buckets.
type Histogram struct {
	lo, hi    float64
	bins      []int
	underflow int
	overflow  int
	total     int
}

// NewHistogram returns a histogram with n equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, n int) (*Histogram, error) {
	if n < 1 || !(hi > lo) {
		return nil, fmt.Errorf("stats: invalid histogram [%v,%v) with %d bins", lo, hi, n)
	}
	return &Histogram{lo: lo, hi: hi, bins: make([]int, n)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.lo:
		h.underflow++
	case x >= h.hi:
		h.overflow++
	default:
		idx := int((x - h.lo) / (h.hi - h.lo) * float64(len(h.bins)))
		if idx >= len(h.bins) {
			idx = len(h.bins) - 1
		}
		h.bins[idx]++
	}
}

// Counts returns a copy of the bin counts.
func (h *Histogram) Counts() []int {
	out := make([]int, len(h.bins))
	copy(out, h.bins)
	return out
}

// Total returns the number of observations recorded, including out-of-range.
func (h *Histogram) Total() int { return h.total }

// OutOfRange returns the (underflow, overflow) counts.
func (h *Histogram) OutOfRange() (int, int) { return h.underflow, h.overflow }

// BinCenter returns the center of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	width := (h.hi - h.lo) / float64(len(h.bins))
	return h.lo + (float64(i)+0.5)*width
}

// ---------------------------------------------------------------------------
// Regression and correlation
// ---------------------------------------------------------------------------

// LinearFit is the result of an ordinary least squares fit y = Slope*x +
// Intercept.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// LinearRegression fits a straight line by ordinary least squares. It returns
// ErrInsufficientData when fewer than two points are supplied or when all x
// values are identical.
func LinearRegression(x, y []float64) (LinearFit, error) {
	if len(x) != len(y) {
		return LinearFit{}, fmt.Errorf("stats: x and y lengths differ (%d vs %d)", len(x), len(y))
	}
	if len(x) < 2 {
		return LinearFit{}, fmt.Errorf("%w: need >=2 points, have %d", ErrInsufficientData, len(x))
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, fmt.Errorf("%w: x values are all identical", ErrInsufficientData)
	}
	slope := sxy / sxx
	fit := LinearFit{Slope: slope, Intercept: my - slope*mx}
	if syy > 0 {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	} else {
		fit.R2 = 1
	}
	return fit, nil
}

// Pearson returns the Pearson correlation coefficient of x and y.
func Pearson(x, y []float64) (float64, error) {
	fit, err := LinearRegression(x, y)
	if err != nil {
		return 0, err
	}
	sign := 1.0
	if fit.Slope < 0 {
		sign = -1
	}
	return sign * math.Sqrt(fit.R2), nil
}

// ---------------------------------------------------------------------------
// Quantiles of raw samples
// ---------------------------------------------------------------------------

// Quantile returns the p-quantile of the sample using linear interpolation
// between order statistics. The input slice is not modified.
func Quantile(sample []float64, p float64) (float64, error) {
	if len(sample) == 0 {
		return 0, fmt.Errorf("%w: empty sample", ErrInsufficientData)
	}
	sorted := make([]float64, len(sample))
	copy(sorted, sample)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0], nil
	}
	if p >= 1 {
		return sorted[len(sorted)-1], nil
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}
