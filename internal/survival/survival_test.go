package survival

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/rng"
)

func TestKaplanMeierSimple(t *testing.T) {
	// Classic small example: failures at 1, 2, 4; censored at 3.
	obs := []Observation{
		{Time: 1, Event: true},
		{Time: 2, Event: true},
		{Time: 3, Event: false},
		{Time: 4, Event: true},
	}
	curve, err := KaplanMeier(obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 3 {
		t.Fatalf("curve has %d steps, want 3", len(curve))
	}
	want := []float64{0.75, 0.5, 0.0}
	for i, p := range curve {
		if math.Abs(p.Survival-want[i]) > 1e-12 {
			t.Errorf("step %d survival = %v, want %v", i, p.Survival, want[i])
		}
	}
	if curve[0].AtRisk != 4 || curve[1].AtRisk != 3 || curve[2].AtRisk != 1 {
		t.Errorf("at-risk counts wrong: %+v", curve)
	}
}

func TestKaplanMeierTiedEvents(t *testing.T) {
	obs := []Observation{
		{Time: 5, Event: true},
		{Time: 5, Event: true},
		{Time: 10, Event: false},
		{Time: 12, Event: true},
	}
	curve, err := KaplanMeier(obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 2 {
		t.Fatalf("curve has %d steps, want 2", len(curve))
	}
	if math.Abs(curve[0].Survival-0.5) > 1e-12 {
		t.Errorf("S(5) = %v, want 0.5", curve[0].Survival)
	}
	if curve[0].Events != 2 {
		t.Errorf("events at t=5 = %d, want 2", curve[0].Events)
	}
}

func TestKaplanMeierErrors(t *testing.T) {
	if _, err := KaplanMeier(nil); err != ErrNoData {
		t.Errorf("KaplanMeier(nil) = %v, want ErrNoData", err)
	}
	if _, err := KaplanMeier([]Observation{{Time: -1, Event: true}}); err == nil {
		t.Error("negative time accepted")
	}
}

func TestMedianSurvivalTime(t *testing.T) {
	curve := []KMPoint{
		{Time: 10, Survival: 0.8},
		{Time: 20, Survival: 0.45},
		{Time: 30, Survival: 0.2},
	}
	m, err := MedianSurvivalTime(curve)
	if err != nil {
		t.Fatal(err)
	}
	if m != 20 {
		t.Errorf("median = %v, want 20", m)
	}
	if _, err := MedianSurvivalTime([]KMPoint{{Time: 1, Survival: 0.9}}); err == nil {
		t.Error("median found although curve never reaches 0.5")
	} else if !strings.Contains(err.Error(), "never reaches 0.5") {
		t.Errorf("error text %q should match the <= 0.5 check (\"never reaches\", not \"never falls below\")", err)
	}
	// A curve that lands exactly on 0.5 satisfies the <= 0.5 check; the error
	// text above must agree with this boundary behavior.
	if m, err := MedianSurvivalTime([]KMPoint{{Time: 7, Survival: 0.5}}); err != nil || m != 7 {
		t.Errorf("median at exactly 0.5 = %v, %v; want 7, nil", m, err)
	}
}

// generateWeibullSample draws a censored sample from a known Weibull
// distribution: every lifetime beyond the study window is censored at the
// window end, mirroring how the ABE disk logs truncate at the log end date.
func generateWeibullSample(t *testing.T, shape, scale, window float64, n int, seed uint64) []Observation {
	t.Helper()
	w, err := dist.NewWeibull(shape, scale)
	if err != nil {
		t.Fatal(err)
	}
	s := rng.NewStream(seed, "survival-gen")
	obs := make([]Observation, 0, n)
	for i := 0; i < n; i++ {
		life := w.Sample(s)
		if life > window {
			obs = append(obs, Observation{Time: window, Event: false})
		} else {
			obs = append(obs, Observation{Time: life, Event: true})
		}
	}
	return obs
}

func TestFitWeibullRecoversParametersUncensored(t *testing.T) {
	obs := generateWeibullSample(t, 1.5, 1000, math.Inf(1), 4000, 42)
	fit, err := FitWeibull(obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Shape-1.5) > 0.08 {
		t.Errorf("fitted shape = %v, want ~1.5", fit.Shape)
	}
	if math.Abs(fit.Scale-1000)/1000 > 0.05 {
		t.Errorf("fitted scale = %v, want ~1000", fit.Scale)
	}
	if fit.Events != 4000 || fit.N != 4000 {
		t.Errorf("events/N = %d/%d, want 4000/4000", fit.Events, fit.N)
	}
}

func TestFitWeibullRecoversParametersCensored(t *testing.T) {
	// Heavy censoring, like the disk logs: most disks survive the window.
	obs := generateWeibullSample(t, 0.7, 300000, 2000, 5000, 7)
	fit, err := FitWeibull(obs)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Events == 0 || fit.Events == fit.N {
		t.Fatalf("expected partial censoring, got %d/%d events", fit.Events, fit.N)
	}
	if math.Abs(fit.Shape-0.7) > 0.25 {
		t.Errorf("fitted shape = %v, want ~0.7 (±0.25 with heavy censoring)", fit.Shape)
	}
	if fit.ShapeStdErr <= 0 || math.IsNaN(fit.ShapeStdErr) {
		t.Errorf("shape stderr = %v, want positive", fit.ShapeStdErr)
	}
	ci, err := fit.ShapeConfidenceInterval(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !ci.Contains(0.7) {
		t.Errorf("95%% CI %v does not contain true shape 0.7", ci)
	}
}

func TestFitWeibullExponentialData(t *testing.T) {
	// Exponential data should fit with shape ~1.
	obs := generateWeibullSample(t, 1.0, 500, math.Inf(1), 3000, 11)
	fit, err := FitWeibull(obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Shape-1.0) > 0.06 {
		t.Errorf("fitted shape = %v, want ~1.0", fit.Shape)
	}
	if math.Abs(fit.MTBF()-500)/500 > 0.06 {
		t.Errorf("fitted MTBF = %v, want ~500", fit.MTBF())
	}
}

func TestFitWeibullErrors(t *testing.T) {
	if _, err := FitWeibull(nil); err != ErrNoData {
		t.Errorf("FitWeibull(nil) = %v, want ErrNoData", err)
	}
	if _, err := FitWeibull([]Observation{{Time: 10, Event: false}}); err != ErrNoEvents {
		t.Errorf("all-censored fit error = %v, want ErrNoEvents", err)
	}
	if _, err := FitWeibull([]Observation{{Time: 0, Event: true}}); err == nil {
		t.Error("zero time accepted")
	}
}

func TestWeibullFitDerivedQuantities(t *testing.T) {
	fit := WeibullFit{Shape: 1, Scale: 8760, N: 10, Events: 5, ShapeStdErr: 0.1}
	if math.Abs(fit.MTBF()-8760) > 1e-9 {
		t.Errorf("MTBF = %v, want 8760", fit.MTBF())
	}
	if math.Abs(fit.AFR()-1.0) > 1e-9 {
		t.Errorf("AFR = %v, want 1.0", fit.AFR())
	}
	if fit.String() == "" {
		t.Error("String empty")
	}
	if _, err := fit.ShapeConfidenceInterval(2); err == nil {
		t.Error("confidence 2 accepted")
	}
	bad := WeibullFit{Shape: 1, Scale: 1, ShapeStdErr: math.NaN(), N: 5}
	if _, err := bad.ShapeConfidenceInterval(0.95); err == nil {
		t.Error("NaN stderr accepted")
	}
}

func TestExponentialMTBF(t *testing.T) {
	obs := []Observation{
		{Time: 100, Event: true},
		{Time: 200, Event: true},
		{Time: 300, Event: false},
	}
	mtbf, err := ExponentialMTBF(obs)
	if err != nil {
		t.Fatal(err)
	}
	if mtbf != 300 {
		t.Errorf("MTBF = %v, want 300", mtbf)
	}
	if _, err := ExponentialMTBF(nil); err != ErrNoData {
		t.Error("nil accepted")
	}
	if _, err := ExponentialMTBF([]Observation{{Time: 5, Event: false}}); err != ErrNoEvents {
		t.Error("no-event sample accepted")
	}
	if _, err := ExponentialMTBF([]Observation{{Time: -5, Event: true}}); err == nil {
		t.Error("negative time accepted")
	}
}

// Property: the Kaplan-Meier survival curve is non-increasing and stays in
// [0, 1] for arbitrary positive observation sets.
func TestQuickKaplanMeierMonotone(t *testing.T) {
	f := func(times []float64, eventBits uint64) bool {
		obs := make([]Observation, 0, len(times))
		for i, tm := range times {
			v := math.Abs(tm)
			if v == 0 || math.IsNaN(v) || math.IsInf(v, 0) || v > 1e12 {
				continue
			}
			obs = append(obs, Observation{Time: v, Event: eventBits>>(uint(i)%64)&1 == 1})
		}
		if len(obs) == 0 {
			return true
		}
		curve, err := KaplanMeier(obs)
		if err != nil {
			return false
		}
		prev := 1.0
		for _, p := range curve {
			if p.Survival > prev+1e-12 || p.Survival < -1e-12 || p.Survival > 1+1e-12 {
				return false
			}
			prev = p.Survival
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: FitWeibull recovers the generating shape within a loose tolerance
// for random parameters on uncensored moderate samples.
func TestQuickFitWeibullRecovery(t *testing.T) {
	f := func(shapeSeed, scaleSeed uint16, seed uint64) bool {
		shape := 0.5 + float64(shapeSeed%20)/10.0 // 0.5 .. 2.4
		scale := 100 + float64(scaleSeed%10000)   // 100 .. 10100
		w, err := dist.NewWeibull(shape, scale)
		if err != nil {
			return false
		}
		s := rng.NewStream(seed, "quick-fit")
		obs := make([]Observation, 800)
		for i := range obs {
			obs[i] = Observation{Time: w.Sample(s), Event: true}
		}
		fit, err := FitWeibull(obs)
		if err != nil {
			return false
		}
		return math.Abs(fit.Shape-shape)/shape < 0.25
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
