// Package cluster provides the generic dependability building blocks that
// the ABE cluster-file-system model is composed from: repairable components,
// fail-over pairs with hardware and software failure processes, correlated
// failure propagation between the members of a pair, and optional
// standby-spare take-over. Each builder contributes an atomic SAN submodel
// (places, activities, gates) and maintains shared counter places so that
// system-level reward predicates stay cheap to evaluate.
package cluster

import (
	"errors"
	"fmt"

	"repro/internal/dist"
	"repro/internal/san"
)

// Validation errors.
var ErrBadConfig = errors.New("cluster: invalid configuration")

// RepairableConfig describes a single repairable component with an
// exponential time to failure and an arbitrary repair-time distribution.
type RepairableConfig struct {
	// MTBFHours is the mean time between failures.
	MTBFHours float64
	// Repair is the repair-time distribution.
	Repair dist.Distribution
}

// Validate checks the configuration.
func (c RepairableConfig) Validate() error {
	if !(c.MTBFHours > 0) || c.Repair == nil {
		return fmt.Errorf("%w: repairable %+v", ErrBadConfig, c)
	}
	return nil
}

// ErlangRepair returns the multi-stage repair distribution for a repairable
// component whose repair window is calibrated as [loHours, hiHours]: an
// Erlang with the given number of exponential stages and the window's mean.
// Matching the mean keeps the availability target of the calibration while
// the stage count sets the variance (k stages cut the squared coefficient of
// variation to 1/k — between the uniform window's near-determinism and the
// exponential's full variance). The Erlang form is what san.ExpandPhases
// rewrites into exact exponential phases, so a repairable built with it is
// certifiable by the statespace tier.
func ErlangRepair(stages int, loHours, hiHours float64) (dist.Distribution, error) {
	if stages < 2 {
		return nil, fmt.Errorf("%w: Erlang repair needs >= 2 stages, got %d", ErrBadConfig, stages)
	}
	mean := (loHours + hiHours) / 2
	if !(mean > 0) {
		return nil, fmt.Errorf("%w: Erlang repair window [%g, %g] has non-positive mean", ErrBadConfig, loHours, hiHours)
	}
	return dist.NewErlang(stages, float64(stages)/mean)
}

// BuildRepairable adds a two-state repairable component under prefix. While
// the component is failed it holds one token in the shared outage counter
// place downCounter, so a system is up when all its components' shared
// counters read zero.
func BuildRepairable(m *san.Model, prefix string, cfg RepairableConfig, downCounter *san.Place) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if downCounter == nil {
		return fmt.Errorf("%w: nil down counter", ErrBadConfig)
	}
	life, err := dist.NewExponentialFromMean(cfg.MTBFHours)
	if err != nil {
		return err
	}
	up, err := m.AddPlaceErr(san.Qualify(prefix, "up"), 1)
	if err != nil {
		return err
	}
	down, err := m.AddPlaceErr(san.Qualify(prefix, "down"), 0)
	if err != nil {
		return err
	}
	m.AddTimedActivity(san.Qualify(prefix, "fail"), life).
		AddInputArc(up, 1).
		AddOutputArc(down, 1).
		AddOutputArc(downCounter, 1)
	m.AddTimedActivity(san.Qualify(prefix, "repair"), cfg.Repair).
		AddInputArc(down, 1).
		AddInputArc(downCounter, 1).
		AddOutputArc(up, 1)
	return nil
}

// PairConfig describes an OSS-style fail-over pair: two servers, each
// subject to hardware and software failures. The pair causes a visible
// outage only while both members are down. A failure propagates to the
// partner with probability PropagationProb (the paper's correlated-failure
// parameter p). Optionally a standby spare masks the outage after an
// activation delay (state reconstruction / fail-over time).
type PairConfig struct {
	// HWMTBFHours is the per-server mean time between hardware failures.
	// The paper's Table 5 rate of 1-2 per 720 h is read per fail-over pair,
	// i.e. each server fails at half that rate.
	HWMTBFHours float64
	// HWRepair is the hardware repair distribution (12-36 h, vendor parts).
	HWRepair dist.Distribution
	// SWMTBFHours is the per-server mean time between software failures
	// (Lustre/fsck class errors).
	SWMTBFHours float64
	// SWRepair is the software repair distribution (2-6 h).
	SWRepair dist.Distribution
	// PropagationProb is the probability that a failure propagates to the
	// partner server (correlated failure), taking the whole pair down.
	PropagationProb float64
	// Spare enables a standby-spare server that takes over a failed pair
	// after SpareActivationHours.
	Spare bool
	// SpareActivationHours is the deterministic state-transfer time before
	// the spare can serve (ignored unless Spare is true).
	SpareActivationHours float64
}

// Validate checks the configuration.
func (c PairConfig) Validate() error {
	if !(c.HWMTBFHours > 0) || !(c.SWMTBFHours > 0) || c.HWRepair == nil || c.SWRepair == nil {
		return fmt.Errorf("%w: pair %+v", ErrBadConfig, c)
	}
	if c.PropagationProb < 0 || c.PropagationProb > 1 {
		return fmt.Errorf("%w: propagation probability %v", ErrBadConfig, c.PropagationProb)
	}
	if c.Spare && !(c.SpareActivationHours > 0) {
		return fmt.Errorf("%w: spare enabled with activation time %v", ErrBadConfig, c.SpareActivationHours)
	}
	return nil
}

// PairPlaces exposes the internal state of one fail-over pair for tests and
// detailed rewards.
type PairPlaces struct {
	// UpCount holds the number of currently working servers (0-2).
	UpCount *san.Place
	// Masked holds 1 while a spare is standing in for the failed pair.
	Masked *san.Place
	// SpareAvailable holds 1 while the spare is idle (only when Spare).
	SpareAvailable *san.Place
}

// BuildFailoverPair adds one fail-over pair under prefix. While the pair is
// effectively down (both members failed and no spare active) it holds one
// token in the shared counter place pairsOut.
func BuildFailoverPair(m *san.Model, prefix string, cfg PairConfig, pairsOut *san.Place) (*PairPlaces, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if pairsOut == nil {
		return nil, fmt.Errorf("%w: nil pairs-out counter", ErrBadConfig)
	}
	hwLife, err := dist.NewExponentialFromMean(cfg.HWMTBFHours)
	if err != nil {
		return nil, err
	}
	swLife, err := dist.NewExponentialFromMean(cfg.SWMTBFHours)
	if err != nil {
		return nil, err
	}

	pp := &PairPlaces{}
	pp.UpCount, err = m.AddPlaceErr(san.Qualify(prefix, "up_count"), 2)
	if err != nil {
		return nil, err
	}
	pp.Masked, err = m.AddPlaceErr(san.Qualify(prefix, "masked"), 0)
	if err != nil {
		return nil, err
	}
	if cfg.Spare {
		pp.SpareAvailable, err = m.AddPlaceErr(san.Qualify(prefix, "spare_available"), 1)
		if err != nil {
			return nil, err
		}
	}

	// takeDown marks one server's transition from up to down in the pair
	// bookkeeping: decrement the up count and, if the pair just became fully
	// down and is not masked by a spare, record the outage.
	takeDown := func(mw san.MarkingWriter) {
		mw.Add(pp.UpCount, -1)
		if mw.Tokens(pp.UpCount) == 0 && mw.Tokens(pp.Masked) == 0 {
			mw.Add(pairsOut, 1)
		}
	}
	// bringUp marks one server's repair: if the pair was fully down, either
	// clear the outage or release the spare that was masking it.
	bringUp := func(mw san.MarkingWriter) {
		if mw.Tokens(pp.UpCount) == 0 {
			if mw.Tokens(pp.Masked) == 1 {
				mw.SetTokens(pp.Masked, 0)
				if pp.SpareAvailable != nil {
					mw.SetTokens(pp.SpareAvailable, 1)
				}
			} else {
				mw.Add(pairsOut, -1)
			}
		}
		mw.Add(pp.UpCount, 1)
	}

	type serverPlaces struct {
		up, downHW, downSW *san.Place
	}
	servers := make([]serverPlaces, 2)

	err = san.Replicate(m, san.Qualify(prefix, "server"), 2, func(m *san.Model, sPrefix string, idx int) error {
		up, err := m.AddPlaceErr(san.Qualify(sPrefix, "up"), 1)
		if err != nil {
			return err
		}
		downHW, err := m.AddPlaceErr(san.Qualify(sPrefix, "down_hw"), 0)
		if err != nil {
			return err
		}
		downSW, err := m.AddPlaceErr(san.Qualify(sPrefix, "down_sw"), 0)
		if err != nil {
			return err
		}
		servers[idx] = serverPlaces{up: up, downHW: downHW, downSW: downSW}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Second pass: activities, now that both servers' places exist so the
	// correlated case can reach the partner.
	for idx := 0; idx < 2; idx++ {
		self := servers[idx]
		partner := servers[1-idx]
		sPrefix := fmt.Sprintf("%s[%d]", san.Qualify(prefix, "server"), idx)

		addFailure := func(kind string, life dist.Distribution, downPlace *san.Place, partnerDown *san.Place) {
			act := m.AddTimedActivity(san.Qualify(sPrefix, kind+"_fail"), life).AddInputArc(self.up, 1)
			p := cfg.PropagationProb
			// Case 1: isolated failure of this server.
			act.AddCase(san.Case{
				Probability: func(san.MarkingReader) float64 { return 1 - p },
				OutputArcs:  []san.Arc{{Place: downPlace, Mult: 1}},
				OutputGates: []*san.OutputGate{{
					Name:      san.Qualify(sPrefix, kind+"_fail_og"),
					Transform: takeDown,
				}},
			})
			// Case 2: correlated failure that propagates to the partner.
			act.AddCase(san.Case{
				Probability: func(san.MarkingReader) float64 { return p },
				OutputArcs:  []san.Arc{{Place: downPlace, Mult: 1}},
				OutputGates: []*san.OutputGate{{
					Name: san.Qualify(sPrefix, kind+"_fail_corr_og"),
					Transform: func(mw san.MarkingWriter) {
						takeDown(mw)
						if mw.Tokens(partner.up) > 0 {
							mw.Add(partner.up, -1)
							mw.Add(partnerDown, 1)
							takeDown(mw)
						}
					},
				}},
			})
		}
		addFailure("hw", hwLife, self.downHW, partner.downHW)
		addFailure("sw", swLife, self.downSW, partner.downSW)

		m.AddTimedActivity(san.Qualify(sPrefix, "hw_repair"), cfg.HWRepair).
			AddInputArc(self.downHW, 1).
			AddOutputArc(self.up, 1).
			AddOutputGate(&san.OutputGate{Name: san.Qualify(sPrefix, "hw_repair_og"), Transform: bringUp})
		m.AddTimedActivity(san.Qualify(sPrefix, "sw_repair"), cfg.SWRepair).
			AddInputArc(self.downSW, 1).
			AddOutputArc(self.up, 1).
			AddOutputGate(&san.OutputGate{Name: san.Qualify(sPrefix, "sw_repair_og"), Transform: bringUp})
	}

	if cfg.Spare {
		activation, err := dist.NewDeterministic(cfg.SpareActivationHours)
		if err != nil {
			return nil, err
		}
		m.AddTimedActivity(san.Qualify(prefix, "spare_activate"), activation).
			AddInputArc(pp.SpareAvailable, 1).
			AddInputGate(&san.InputGate{
				Name:  san.Qualify(prefix, "spare_needed"),
				Reads: []*san.Place{pp.UpCount, pp.Masked},
				Enabled: func(mr san.MarkingReader) bool {
					return mr.Tokens(pp.UpCount) == 0 && mr.Tokens(pp.Masked) == 0
				},
			}).
			AddOutputGate(&san.OutputGate{
				Name: san.Qualify(prefix, "spare_activate_og"),
				Transform: func(mw san.MarkingWriter) {
					mw.SetTokens(pp.Masked, 1)
					mw.Add(pairsOut, -1)
				},
			})
	}
	return pp, nil
}

// ---------------------------------------------------------------------------
// Lumped fail-over pairs
// ---------------------------------------------------------------------------

// Lumpability derives the fail-over-pair lumpability verdict from the
// distributions the pair actually draws from: failures are exponential by
// construction, so the verdict turns on the two repair distributions and on
// the standby spare, whose deterministic activation delay is an aged-state
// timer. The verdict is per pair (Count 1, Lumped false); composition layers
// that replicate pairs override Family, Count, and Lumped.
func (c PairConfig) Lumpability() san.LumpabilityVerdict {
	delays := []san.NamedDelay{
		{Label: "hw_repair", Delay: c.HWRepair},
		{Label: "sw_repair", Delay: c.SWRepair},
	}
	var structural []string
	if c.Spare {
		if d, err := dist.NewDeterministic(c.SpareActivationHours); err == nil {
			delays = append(delays, san.NamedDelay{Label: "spare_activation", Delay: d})
		} else {
			structural = append(structural, san.ReasonAgedState+": spare activation timer")
		}
	}
	return san.DeriveLumpability("failover_pair", 1, false, delays, structural...)
}

// Lumpable reports whether the pair configuration admits exact strong
// lumping. It is the boolean projection of Lumpability, so the predicate
// cannot drift from the derived verdict: every distribution the pair draws
// from must be memoryless (failures are by construction; both repairs must
// be), and the standby spare must be disabled — its deterministic activation
// delay is not, so spared pairs always expand flat.
func (c PairConfig) Lumpable() bool {
	return c.Lumpability().Lumpable
}

// Fail-over pair local states: each letter is one server, u = up, h = down
// with a hardware fault, s = down with a software fault. Servers within a
// pair are themselves exchangeable, so unordered pairs suffice — six states
// instead of nine.
const (
	pairUU = "uu"
	pairUH = "uh"
	pairUS = "us"
	pairHH = "hh"
	pairHS = "hs"
	pairSS = "ss"
)

// FailoverPairClass returns the replica class of one fail-over pair for
// ReplicateLumped: the six unordered (server x server) local states and the
// exponential transitions of BuildFailoverPair, with the correlated-failure
// case expressed by exponential thinning (a failure at rate lambda that
// propagates with probability p is the race of an isolated failure at
// lambda(1-p) and a correlated one at lambda p — exactly the flat case
// split). Transitions into a fully-down state increment pairsOut;
// transitions out of one decrement it, matching the flat takeDown/bringUp
// bookkeeping.
func FailoverPairClass(cfg PairConfig, pairsOut *san.Place) (san.ReplicaClass, error) {
	if err := cfg.Validate(); err != nil {
		return san.ReplicaClass{}, err
	}
	if !cfg.Lumpable() {
		return san.ReplicaClass{}, fmt.Errorf("%w: pair requires exponential repairs and no spare for lumping", ErrBadConfig)
	}
	if pairsOut == nil {
		return san.ReplicaClass{}, fmt.Errorf("%w: nil pairs-out counter", ErrBadConfig)
	}
	lambdaHW := 1 / cfg.HWMTBFHours
	lambdaSW := 1 / cfg.SWMTBFHours
	muHW := cfg.HWRepair.(dist.Exponential).Rate()
	muSW := cfg.SWRepair.(dist.Exponential).Rate()
	p := cfg.PropagationProb

	goDown := func(mw san.MarkingWriter) { mw.Add(pairsOut, 1) }
	comeUp := func(mw san.MarkingWriter) { mw.Add(pairsOut, -1) }

	class := san.ReplicaClass{
		States:  []string{pairUU, pairUH, pairUS, pairHH, pairHS, pairSS},
		Initial: pairUU,
	}
	add := func(name, from, to string, rate float64, effect san.GateFunc) error {
		if rate == 0 {
			return nil // e.g. p == 0 removes the correlated transitions
		}
		d, err := dist.NewExponentialFromRate(rate)
		if err != nil {
			return err
		}
		class.Transitions = append(class.Transitions, san.ReplicaTransition{
			Name: name, From: from, To: to, Delay: d, Effect: effect,
		})
		return nil
	}
	transitions := []struct {
		name, from, to string
		rate           float64
		effect         san.GateFunc
	}{
		// Both servers up: either fails (x2), isolated or propagating. A
		// propagated failure takes the partner down with the same fault kind,
		// as in the flat correlated case.
		{"hw_fail", pairUU, pairUH, 2 * lambdaHW * (1 - p), nil},
		{"hw_fail_corr", pairUU, pairHH, 2 * lambdaHW * p, goDown},
		{"sw_fail", pairUU, pairUS, 2 * lambdaSW * (1 - p), nil},
		{"sw_fail_corr", pairUU, pairSS, 2 * lambdaSW * p, goDown},
		// One server down: the survivor fails (propagation is a no-op when
		// the partner is already down, so the full rate flows to one state),
		// or the down server is repaired.
		{"hw_fail_degraded", pairUH, pairHH, lambdaHW, goDown},
		{"sw_fail_degraded_hw", pairUH, pairHS, lambdaSW, goDown},
		{"hw_repair", pairUH, pairUU, muHW, nil},
		{"hw_fail_degraded_sw", pairUS, pairHS, lambdaHW, goDown},
		{"sw_fail_degraded", pairUS, pairSS, lambdaSW, goDown},
		{"sw_repair", pairUS, pairUU, muSW, nil},
		// Both servers down: each pending repair proceeds independently.
		{"hw_repair_double", pairHH, pairUH, 2 * muHW, comeUp},
		{"hw_repair_mixed", pairHS, pairUS, muHW, comeUp},
		{"sw_repair_mixed", pairHS, pairUH, muSW, comeUp},
		{"sw_repair_double", pairSS, pairUS, 2 * muSW, comeUp},
	}
	for _, tr := range transitions {
		if err := add(tr.name, tr.from, tr.to, tr.rate, tr.effect); err != nil {
			return san.ReplicaClass{}, err
		}
	}
	return class, nil
}

// BuildFailoverPairsLumped adds n stochastically identical fail-over pairs
// under prefix in lumped (counted) form — the exact strong lumping of n
// BuildFailoverPair expansions for Lumpable configurations. Rewards that
// read only pairsOut (availability, time-averaged pairs down) are unchanged
// in distribution; the model costs 6 places and <= 14 activities regardless
// of n.
func BuildFailoverPairsLumped(m *san.Model, prefix string, n int, cfg PairConfig, pairsOut *san.Place) (*san.LumpedPlaces, error) {
	class, err := FailoverPairClass(cfg, pairsOut)
	if err != nil {
		return nil, err
	}
	return san.ReplicateLumped(m, prefix, n, class)
}

// TransientConfig describes a source of transient errors (intermittent
// network faults between the compute nodes and the CFS). Transient errors do
// not take the CFS down for long, but each one kills the jobs that depended
// on the affected components.
type TransientConfig struct {
	// EventsPerHour is the rate of transient error events.
	EventsPerHour float64
	// OutageLoHours and OutageHiHours bound the short unavailability window
	// each event induces (minutes, expressed in hours).
	OutageLoHours float64
	OutageHiHours float64
	// ExponentialOutages replaces the uniform outage window with an
	// exponential of the same mean, making the on-off source a CTMC so the
	// structural certificate tier (internal/statespace) can solve the
	// composed model exactly instead of simulating it.
	ExponentialOutages bool
}

// Validate checks the configuration.
func (c TransientConfig) Validate() error {
	if !(c.EventsPerHour > 0) || !(c.OutageLoHours > 0) || c.OutageHiHours < c.OutageLoHours {
		return fmt.Errorf("%w: transient %+v", ErrBadConfig, c)
	}
	return nil
}

// outageDist returns the outage-window distribution: uniform over the
// configured bounds, or — under ExponentialOutages — an exponential with the
// same mean, preserving the long-run outage fraction while restoring
// memorylessness.
func (c TransientConfig) outageDist() (dist.Distribution, error) {
	if c.ExponentialOutages {
		return dist.NewExponentialFromMean((c.OutageLoHours + c.OutageHiHours) / 2)
	}
	return dist.NewUniform(c.OutageLoHours, c.OutageHiHours)
}

// TransientPlaces exposes the transient-error submodel.
type TransientPlaces struct {
	// Active holds 1 while a transient error is in progress.
	Active *san.Place
	// EventActivity is the name of the activity that fires once per
	// transient error event, for impulse rewards.
	EventActivity string
}

// BuildTransientSource adds a transient-error process under prefix. Each
// event raises Active for a short uniformly distributed window (exponential
// of the same mean under ExponentialOutages) and then clears it.
func BuildTransientSource(m *san.Model, prefix string, cfg TransientConfig) (*TransientPlaces, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	inter, err := dist.NewExponentialFromMean(1 / cfg.EventsPerHour)
	if err != nil {
		return nil, err
	}
	outage, err := cfg.outageDist()
	if err != nil {
		return nil, err
	}
	tp := &TransientPlaces{}
	tp.Active, err = m.AddPlaceErr(san.Qualify(prefix, "active"), 0)
	if err != nil {
		return nil, err
	}
	idle, err := m.AddPlaceErr(san.Qualify(prefix, "idle"), 1)
	if err != nil {
		return nil, err
	}
	tp.EventActivity = san.Qualify(prefix, "event")
	m.AddTimedActivity(tp.EventActivity, inter).
		AddInputArc(idle, 1).
		AddOutputArc(tp.Active, 1)
	m.AddTimedActivity(san.Qualify(prefix, "clear"), outage).
		AddInputArc(tp.Active, 1).
		AddOutputArc(idle, 1)
	return tp, nil
}

// BuildTransientImpulseSource adds the lumped form of the transient-error
// process: a single recurring source activity whose renewal interval is the
// exponential inter-arrival plus the uniform outage window — the exact
// inter-event law of BuildTransientSource's event activity — carrying the
// per-event impulse rewards. The Active window place is lumped away, which
// is reward-exact whenever nothing reads it (true for the composed CFS
// model: transient errors kill jobs via impulses but do not enter the CFS
// availability predicate), and halves the transient event count: one
// completion per error instead of an event/clear pair. TransientPlaces.
// Active is nil in this form.
func BuildTransientImpulseSource(m *san.Model, prefix string, cfg TransientConfig) (*TransientPlaces, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	inter, err := dist.NewExponentialFromMean(1 / cfg.EventsPerHour)
	if err != nil {
		return nil, err
	}
	outage, err := cfg.outageDist()
	if err != nil {
		return nil, err
	}
	renewal, err := dist.NewSum(inter, outage)
	if err != nil {
		return nil, err
	}
	tp := &TransientPlaces{EventActivity: san.Qualify(prefix, "event")}
	// No input arcs: a source activity is always enabled and rescheduled
	// after every completion.
	m.AddTimedActivity(tp.EventActivity, renewal)
	return tp, nil
}
