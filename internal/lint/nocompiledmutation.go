package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// noCompiledMutation enforces the build-then-compile discipline: Compile
// snapshots the model, so builder mutations (Add*/Set* calls) on a model
// after it was handed to san.Compile or san.CompileStrict in the same
// function silently diverge from the compiled snapshot. It also flags the
// deprecated package-level san.NewSimulator (compile once, then
// cm.NewSimulator per replication) everywhere outside package san.
func noCompiledMutation(p *Package, sanPath string) []Finding {
	var findings []Finding
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			findings = append(findings, mutationsAfterCompile(p, fd, sanPath)...)
		}
		if p.Path != sanPath {
			findings = append(findings, deprecatedNewSimulator(p, file, sanPath)...)
		}
	}
	return findings
}

// mutationsAfterCompile flags builder calls on a model identifier after the
// position where that identifier was passed to Compile/CompileStrict.
func mutationsAfterCompile(p *Package, fd *ast.FuncDecl, sanPath string) []Finding {
	compiledAt := map[types.Object]ast.Node{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		f := calleeFunc(p.Info, call)
		if f == nil || f.Pkg() == nil || f.Pkg().Path() != sanPath {
			return true
		}
		if f.Name() != "Compile" && f.Name() != "CompileStrict" {
			return true
		}
		if id := rootIdent(call.Args[0]); id != nil {
			if obj := p.Info.ObjectOf(id); obj != nil {
				if _, seen := compiledAt[obj]; !seen {
					compiledAt[obj] = call
				}
			}
		}
		return true
	})
	if len(compiledAt) == 0 {
		return nil
	}
	var findings []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		if !strings.HasPrefix(name, "Add") && !strings.HasPrefix(name, "Set") {
			return true
		}
		id := rootIdent(sel.X)
		if id == nil {
			return true
		}
		obj := p.Info.ObjectOf(id)
		if obj == nil {
			return true
		}
		at, compiled := compiledAt[obj]
		if !compiled || call.Pos() <= at.Pos() {
			return true
		}
		findings = append(findings, Finding{
			Pos:     p.Fset.Position(call.Pos()),
			Rule:    "nocompiledmutation",
			Message: name + " on " + id.Name + " after it was compiled; Compile snapshots the model, so this mutation never reaches the compiled form",
		})
		return true
	})
	return findings
}

// deprecatedNewSimulator flags uses of the package-level san.NewSimulator
// (signature without a CompiledModel receiver) outside package san.
func deprecatedNewSimulator(p *Package, file *ast.File, sanPath string) []Finding {
	var findings []Finding
	ast.Inspect(file, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		f, ok := p.Info.Uses[id].(*types.Func)
		if !ok || f.Pkg() == nil || f.Pkg().Path() != sanPath || f.Name() != "NewSimulator" {
			return true
		}
		if sig, ok := f.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return true
		}
		findings = append(findings, Finding{
			Pos:     p.Fset.Position(id.Pos()),
			Rule:    "nocompiledmutation",
			Message: "package-level san.NewSimulator recompiles the model per call; use san.Compile once and cm.NewSimulator per replication",
		})
		return true
	})
	return findings
}
