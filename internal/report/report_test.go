package report

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	table := Table{
		Title:   "Demo",
		Headers: []string{"Name", "Value"},
	}
	table.AddRow("availability", 0.972)
	table.AddRow("disks", 480)
	out := table.Render()
	for _, want := range []string{"Demo", "Name", "Value", "availability", "0.972", "480"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // title, underline, header, separator, 2 rows
		t.Errorf("rendered table has %d lines, want 6:\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	table := Table{Headers: []string{"a", "b"}}
	table.AddRow("plain", `has,comma and "quote"`)
	csv := table.CSV()
	if !strings.Contains(csv, "a,b\n") {
		t.Errorf("CSV missing header: %q", csv)
	}
	if !strings.Contains(csv, `"has,comma and \"quote\""`) {
		t.Errorf("CSV did not quote special cell: %q", csv)
	}
}

func TestFigureAddPointAndRender(t *testing.T) {
	fig := Figure{Title: "F", XLabel: "x", YLabel: "y"}
	fig.AddPoint("s1", Point{X: 1, Y: 0.9, HalfWidth: 0.01})
	fig.AddPoint("s1", Point{X: 2, Y: 0.8})
	fig.AddPoint("s2", Point{X: 1, Y: 0.5})
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d, want 2", len(fig.Series))
	}
	out := fig.Render()
	for _, want := range []string{"F", "x", "s1", "s2", "0.9 ±0.01", "0.8", "0.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered figure missing %q:\n%s", want, out)
		}
	}
	ys := fig.SeriesY("s1")
	if len(ys) != 2 || ys[0] != 0.9 || ys[1] != 0.8 {
		t.Errorf("SeriesY = %v", ys)
	}
	if fig.SeriesY("missing") != nil {
		t.Error("SeriesY for unknown series should be nil")
	}
}

func TestFigureRenderMissingCells(t *testing.T) {
	fig := Figure{Title: "gaps", XLabel: "x"}
	fig.AddPoint("a", Point{X: 1, Y: 1})
	fig.AddPoint("b", Point{X: 2, Y: 2})
	out := fig.Render()
	// Both x values appear even though each series has only one of them.
	if !strings.Contains(out, "1") || !strings.Contains(out, "2") {
		t.Errorf("figure with gaps rendered incorrectly:\n%s", out)
	}
}

func TestTableJSON(t *testing.T) {
	table := Table{Title: "Demo", Headers: []string{"Name", "Value"}}
	table.AddRow("availability", 0.972)
	out, err := table.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Title   string     `json:"title"`
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("table JSON invalid: %v\n%s", err, out)
	}
	if doc.Title != "Demo" || len(doc.Headers) != 2 || len(doc.Rows) != 1 {
		t.Errorf("decoded table = %+v", doc)
	}
	if doc.Rows[0][0] != "availability" {
		t.Errorf("row = %v", doc.Rows[0])
	}
}

func TestFigureJSON(t *testing.T) {
	fig := Figure{Title: "F", XLabel: "x", YLabel: "y"}
	fig.AddPoint("s1", Point{X: 1, Y: 0.9, HalfWidth: 0.01})
	fig.AddPoint("s1", Point{X: 2, Y: 0.8})
	out, err := fig.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Title  string `json:"title"`
		XLabel string `json:"x_label"`
		Series []struct {
			Name   string `json:"name"`
			Points []struct {
				X         float64 `json:"x"`
				Y         float64 `json:"y"`
				HalfWidth float64 `json:"half_width"`
			} `json:"points"`
		} `json:"series"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("figure JSON invalid: %v\n%s", err, out)
	}
	if doc.XLabel != "x" || len(doc.Series) != 1 || len(doc.Series[0].Points) != 2 {
		t.Errorf("decoded figure = %+v", doc)
	}
	if doc.Series[0].Points[0].HalfWidth != 0.01 {
		t.Errorf("half width lost: %+v", doc.Series[0].Points[0])
	}
	// Zero half widths are omitted from the encoding.
	if strings.Contains(out, `"half_width": 0,`) {
		t.Errorf("zero half width encoded:\n%s", out)
	}
}

func TestTextArtifact(t *testing.T) {
	var a Artifact = Text("hello\nworld")
	if a.Render() != "hello\nworld" {
		t.Errorf("Render = %q", a.Render())
	}
	out, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Text string `json:"text"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("text JSON invalid: %v", err)
	}
	if doc.Text != "hello\nworld" {
		t.Errorf("decoded text = %q", doc.Text)
	}
}
