// The raid_tradeoff example explores the storage design space of Figures 2
// and 3: RAID (8+2) versus (8+3), disk quality (AFR), infant mortality
// (Weibull shape), and replacement time, reporting storage availability and
// the disk-replacement burden at ABE and petascale sizes.
package main

import (
	"fmt"
	"log"

	"repro/internal/raid"
	"repro/internal/san"
)

type design struct {
	name         string
	shape        float64
	afrPercent   float64
	geometry     raid.TierGeometry
	replaceHours float64
}

func main() {
	log.SetFlags(0)

	designs := []design{
		{"ABE disks, RAID6 8+2", 0.7, 2.92, raid.TierGeometry{Data: 8, Parity: 2}, 4},
		{"High infant mortality, 8+2", 0.6, 8.76, raid.TierGeometry{Data: 8, Parity: 2}, 4},
		{"High infant mortality, 8+3 (Blue Waters)", 0.6, 8.76, raid.TierGeometry{Data: 8, Parity: 3}, 4},
		{"Slow replacement (12 h), 8+2", 0.7, 2.92, raid.TierGeometry{Data: 8, Parity: 2}, 12},
	}
	scales := []int{480, 4800} // ABE and petascale disk counts

	opts := san.Options{Mission: 8760, Replications: 40, Seed: 7}

	fmt.Println("Storage design trade-offs (Figures 2 and 3 reproduction)")
	fmt.Println()
	for _, d := range designs {
		for _, disks := range scales {
			cfg := raid.ABEStorage()
			cfg.Geometry = d.geometry
			cfg.Disk.ShapeBeta = d.shape
			cfg.Disk.MTBFHours = 8760 / (d.afrPercent / 100)
			cfg.Disk.ReplaceHours = d.replaceHours
			scaled, err := cfg.ScaledToDisks(disks)
			if err != nil {
				log.Fatal(err)
			}

			model := san.NewModel("raid-tradeoff")
			sp, err := raid.BuildStorage(model, "storage", scaled)
			if err != nil {
				log.Fatal(err)
			}
			study, err := san.RunReplications(model, []san.RewardVariable{
				sp.AvailabilityReward("availability"),
				sp.ReplacementCountReward("replacements"),
			}, opts)
			if err != nil {
				log.Fatal(err)
			}
			analytic, err := raid.ExpectedReplacementsPerWeek(scaled)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-42s  disks=%-5d  availability=%.6f  replacements/week=%.2f (analytic %.2f)\n",
				d.name, scaled.TotalDisks(), study.Mean("availability"),
				study.Mean("replacements")*168/opts.Mission, analytic)
		}
	}
}
