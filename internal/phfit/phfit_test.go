package phfit

import (
	"errors"
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/rng"
)

// surrogateRawMoments computes the surrogate's first three raw moments in
// closed form, for checking the constructions against their targets.
func surrogateRawMoments(s Surrogate) (m1, m2, m3 float64) {
	if s.Mixture() {
		r := s.Rates()
		p := s.BranchProbability()
		m1 = p/r[0] + (1-p)/r[1]
		m2 = 2 * (p/(r[0]*r[0]) + (1-p)/(r[1]*r[1]))
		m3 = 6 * (p/(r[0]*r[0]*r[0]) + (1-p)/(r[1]*r[1]*r[1]))
		return
	}
	// Sum of independent exponentials: cumulants add.
	var mean, variance, kappa3 float64
	for _, r := range s.Rates() {
		mean += 1 / r
		variance += 1 / (r * r)
		kappa3 += 2 / (r * r * r)
	}
	m1 = mean
	m2 = variance + mean*mean
	m3 = kappa3 + 3*mean*variance + mean*mean*mean
	return
}

// bruteForceSup scans a dense grid for the largest observed |F - G|; the
// certified bound must dominate it.
func bruteForceSup(t *testing.T, target cdfQuantiler, s Surrogate) float64 {
	t.Helper()
	hi := math.Max(target.Quantile(0.99999), s.Quantile(0.99999))
	if math.IsInf(hi, 1) || hi <= 0 {
		t.Fatalf("unusable scan bound %v", hi)
	}
	sup := 0.0
	const n = 20000
	for i := 0; i <= n; i++ {
		x := hi * float64(i) / n
		if d := math.Abs(target.CDF(x) - s.CDF(x)); d > sup {
			sup = d
		}
	}
	return sup
}

func TestFitFamiliesMatchMomentsAndCertifyBounds(t *testing.T) {
	mustDist := func(d dist.Distribution, err error) dist.Distribution {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	cases := []struct {
		name        string
		d           dist.Distribution
		tol         float64
		family      string
		wantMoments int
	}{
		{"weibull-wearout", mustDist(asDist(dist.NewWeibull(1.5, 1000))), 0.2, "hypoexponential", 2},
		{"uniform-window", mustDist(asDist(dist.NewUniform(12, 36))), 0.2, "erlang", 2},
		{"lognormal-heavy", mustDist(asDist(dist.NewLognormal(1.2, 1.0))), 0.25, "hyperexponential", 3},
		{"empirical", mustDist(asDist(dist.NewEmpirical([]float64{1, 2, 2, 3, 4, 4, 5, 8, 13, 21}))), 0.3, "", 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Fit(tc.d, tc.tol)
			if err != nil {
				t.Fatalf("Fit(%s, %v): %v", dist.Describe(tc.d), tc.tol, err)
			}
			if res.Metric != MetricKolmogorov {
				t.Fatalf("metric = %q, want %q", res.Metric, MetricKolmogorov)
			}
			if res.Bound > tc.tol || res.Bound <= 0 {
				t.Fatalf("bound = %v, want in (0, %v]", res.Bound, tc.tol)
			}
			if tc.family != "" && res.Surrogate.Family() != tc.family {
				t.Fatalf("family = %q, want %q", res.Surrogate.Family(), tc.family)
			}
			if tc.wantMoments != 0 && res.MomentsMatched != tc.wantMoments {
				t.Fatalf("moments matched = %d, want %d", res.MomentsMatched, tc.wantMoments)
			}
			m1, m2, m3 := surrogateRawMoments(res.Surrogate)
			targets := []float64{res.TargetMoments[0], res.TargetMoments[1], res.TargetMoments[2]}
			got := []float64{m1, m2, m3}
			for i := 0; i < res.MomentsMatched; i++ {
				if rel := math.Abs(got[i]-targets[i]) / targets[i]; rel > 1e-9 {
					t.Errorf("raw moment %d: surrogate %v vs target %v (rel err %v)", i+1, got[i], targets[i], rel)
				}
			}
			if res.Surrogate.Phases() > MaxPhases {
				t.Errorf("surrogate uses %d phases, over the %d budget", res.Surrogate.Phases(), MaxPhases)
			}
			sup := bruteForceSup(t, tc.d.(cdfQuantiler), res.Surrogate)
			if sup > res.Bound+1e-9 {
				t.Errorf("observed sup distance %v exceeds certified bound %v", sup, res.Bound)
			}
		})
	}
}

func asDist[T dist.Distribution](d T, err error) (dist.Distribution, error) { return d, err }

func TestFitDeterministicUsesLevyMetric(t *testing.T) {
	d, err := dist.NewDeterministic(48)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Fit(d, 0.15)
	if err != nil {
		t.Fatalf("Fit(deterministic(48), 0.15): %v", err)
	}
	if res.Metric != MetricLevy {
		t.Fatalf("metric = %q, want %q", res.Metric, MetricLevy)
	}
	if res.Surrogate.Family() != "erlang" {
		t.Fatalf("family = %q, want erlang", res.Surrogate.Family())
	}
	if res.Surrogate.Phases() > MaxPhases {
		t.Fatalf("order %d over budget", res.Surrogate.Phases())
	}
	if mean := res.Surrogate.Mean(); math.Abs(mean-48)/48 > 1e-12 {
		t.Fatalf("surrogate mean = %v, want 48", mean)
	}
	// Re-check the certified predicate directly: the bound eps must satisfy
	// F(d(1-eps)) <= eps and 1-F(d(1+eps)) <= eps.
	eps := res.Bound
	if got := res.Surrogate.CDF(48 * (1 - eps)); got > eps {
		t.Errorf("CDF(d(1-eps)) = %v > eps %v", got, eps)
	}
	if got := 1 - res.Surrogate.CDF(48*(1+eps)); got > eps {
		t.Errorf("1-CDF(d(1+eps)) = %v > eps %v", got, eps)
	}

	if _, err := Fit(d, 0.01); !errors.Is(err, ErrNonFittable) {
		t.Fatalf("Fit(deterministic, 0.01) = %v, want ErrNonFittable", err)
	}
}

func TestFitRefusals(t *testing.T) {
	// A mixture exposes no closed-form third moment.
	e1, err := dist.NewExponentialFromMean(1)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := dist.NewExponentialFromMean(10)
	if err != nil {
		t.Fatal(err)
	}
	mix, err := dist.NewMixture(dist.Component{Weight: 1, Dist: e1}, dist.Component{Weight: 1, Dist: e2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Fit(mix, 0.2); !errors.Is(err, ErrNonFittable) {
		t.Fatalf("Fit(mixture) = %v, want ErrNonFittable", err)
	}

	// A nearly deterministic window needs more phases than the budget.
	narrow, err := dist.NewUniform(99, 101)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Fit(narrow, 0.2); !errors.Is(err, ErrNonFittable) {
		t.Fatalf("Fit(narrow uniform) = %v, want ErrNonFittable", err)
	}

	// An unachievable tolerance refuses with the achievable bound.
	wide, err := dist.NewUniform(12, 36)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Fit(wide, 0.001); !errors.Is(err, ErrNonFittable) {
		t.Fatalf("Fit(uniform, 0.001) = %v, want ErrNonFittable", err)
	}

	// Unusable tolerances are plain errors, not classified refusals.
	if _, err := Fit(wide, 0); err == nil || errors.Is(err, ErrNonFittable) {
		t.Fatalf("Fit(tol=0) = %v, want plain error", err)
	}
	if _, err := Fit(wide, 1); err == nil || errors.Is(err, ErrNonFittable) {
		t.Fatalf("Fit(tol=1) = %v, want plain error", err)
	}
}

// TestSurrogateCDFAgainstSampling pins the closed-form surrogate CDFs
// (including the log-space hypoexponential branch) against seeded sampling
// of the same phase structure.
func TestSurrogateCDFAgainstSampling(t *testing.T) {
	w, err := dist.NewWeibull(1.5, 1000)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := dist.NewLognormal(1.2, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		d    dist.Distribution
		tol  float64
	}{
		{"chain", w, 0.2},
		{"mixture", ln, 0.25},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Fit(tc.d, tc.tol)
			if err != nil {
				t.Fatal(err)
			}
			s := rng.NewStream(7, "phfit-test-"+tc.name)
			const n = 200000
			samples := make([]float64, n)
			for i := range samples {
				samples[i] = sampleSurrogate(res.Surrogate, s)
			}
			// Compare the empirical CDF to the closed form at the deciles.
			for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
				x := res.Surrogate.Quantile(p)
				count := 0
				for _, v := range samples {
					if v <= x {
						count++
					}
				}
				emp := float64(count) / n
				if math.Abs(emp-p) > 0.005 {
					t.Errorf("CDF mismatch at p=%v: empirical %v at closed-form quantile %v", p, emp, x)
				}
			}
		})
	}
}

// sampleSurrogate draws one value from the surrogate's phase structure.
func sampleSurrogate(s Surrogate, stream *rng.Stream) float64 {
	if s.Mixture() {
		r := s.Rates()
		rate := r[1]
		if stream.Float64() < s.BranchProbability() {
			rate = r[0]
		}
		return -math.Log(stream.OpenFloat64()) / rate
	}
	total := 0.0
	for _, r := range s.Rates() {
		total += -math.Log(stream.OpenFloat64()) / r
	}
	return total
}

// TestErlangChainCDFMatchesGamma pins the equal-rate chain CDF against the
// dist package's independent regularized-gamma implementation.
func TestErlangChainCDFMatchesGamma(t *testing.T) {
	g, err := dist.NewErlang(12, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	s := Surrogate{k: 12, rate1: 0.5, rate2: 0.5}
	for _, x := range []float64{1, 5, 10, 24, 30, 50, 100} {
		if got, want := s.CDF(x), g.CDF(x); math.Abs(got-want) > 1e-12 {
			t.Errorf("CDF(%v) = %v, want %v", x, got, want)
		}
	}
}
